"""Setup shim.

Kept so that ``pip install -e .`` works on environments without the ``wheel``
package (pip then falls back to the legacy ``setup.py develop`` code path
instead of building a PEP 660 wheel).  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()

#!/usr/bin/env python3
"""Extension (paper Sec. VII-D): coordinating ZigBee and Bluetooth.

BiCord's idea — the constrained device's transmissions double as a channel
request the powerful device learns to honor — maps onto BLE as adaptive
frequency hopping: the BLE master attributes its connection-event failures
to the hop channels overlapping the ZigBee transmitter and *excludes* them,
granting ZigBee a permanent spectral white space.

Run:  python examples/ble_coexistence.py
"""

from repro.experiments.ble_extension import run_ble_coexistence


def main() -> None:
    print("A fast BLE connection (7.5 ms events) next to a ~50%-duty ZigBee link\n")
    print("AFH    ble-success  early  late   excluded-channels  zigbee-delivery")
    for afh in (False, True):
        r = run_ble_coexistence(afh_enabled=afh, duration=10.0, seed=1)
        print(f"{'on ' if afh else 'off'}    "
              f"{r.ble_success_rate:11.3f}  {r.ble_early_success_rate:.3f}  "
              f"{r.ble_late_success_rate:.3f}  {str(r.excluded_channels):17}  "
              f"{r.zigbee_delivery_ratio:.3f}")
    print("\nWith AFH on, the hop channel overlapping ZigBee channel 24 (BLE data")
    print("channel 34 at 2470 MHz) is excluded and the BLE link finishes the run")
    print("collision-free — the spectral analogue of BiCord's white spaces.")


if __name__ == "__main__":
    main()

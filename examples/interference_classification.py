#!/usr/bin/env python3
"""CTI detection demo: who is jamming my ZigBee channel?

Reproduces the Sec. VII-A pipeline end to end: a ZigBee collector records
40 kHz RSSI traces while different devices transmit (another ZigBee node, a
Bluetooth headset, Wi-Fi senders at several distances, a microwave oven),
extracts the four ZiSense features, trains the decision tree, and then
identifies individual Wi-Fi transmitters with Smoggy-Link fingerprints and
Manhattan-distance k-means.

Run:  python examples/interference_classification.py
"""

import numpy as np

from repro.core import CtiClassifier, InterfererClass, extract_features
from repro.experiments import run_device_identification
from repro.experiments.cti_dataset import build_cti_dataset, collect_traces


def main() -> None:
    print("Collecting RSSI traces (40 kHz x 5 ms, per-source campaigns)...")
    dataset = build_cti_dataset(n_traces=60, seed=3, include_microwave=True)

    rng = np.random.default_rng(0)
    order = rng.permutation(len(dataset.features))
    split = len(order) // 2
    train = [dataset.features[i] for i in order[:split]]
    train_y = [dataset.labels[i] for i in order[:split]]
    test = [dataset.features[i] for i in order[split:]]
    test_y = [dataset.labels[i] for i in order[split:]]

    classifier = CtiClassifier().fit(train, train_y)
    print(f"interferer classes      : {[c.name for c in InterfererClass]}")
    print(f"multiclass accuracy     : {classifier.accuracy(test, test_y):.3f}")
    print(f"Wi-Fi-or-not accuracy   : "
          f"{classifier.wifi_detection_accuracy(test, test_y):.3f}  (paper: 0.9639)")

    # Peek at what the tree sees: one fresh trace per source.
    print("\nexample feature vectors (on-air ms, min-gap ms, PAPR, under-floor):")
    for source in ("zigbee", "bluetooth", "wifi", "microwave"):
        traces, floor = collect_traces(source, distance_m=2.0, n_traces=1, seed=99)
        f = extract_features(traces[0], floor)
        verdict = classifier.classify(f).name
        print(f"  {source:10} -> ({f.avg_on_air_time * 1e3:5.2f}, "
              f"{f.min_packet_interval * 1e3:5.2f}, {f.peak_to_average_ratio:8.1f}, "
              f"{f.under_noise_floor:.2f})  classified as {verdict}")

    print("\nIdentifying individual Wi-Fi transmitters (1 m / 3 m / 5 m)...")
    device_id = run_device_identification(n_traces=60, seed=3)
    print(f"k-means identification accuracy: {device_id.accuracy:.3f}  (paper: 0.8976)")


if __name__ == "__main__":
    main()

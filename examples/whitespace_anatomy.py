#!/usr/bin/env python3
"""Anatomy of a BiCord run: timelines, gap statistics, learning staircase.

Renders a full coexistence run as terminal figures:

* the natural idle-gap distribution of the saturated Wi-Fi channel — the
  quantitative reason passive white-space exploitation starves;
* the learning staircase of granted white spaces (Fig. 7's shape);
* a timeline strip showing where the granted white spaces sit;
* the ZigBee per-packet delay histogram.

Run:  python examples/whitespace_anatomy.py
"""

import numpy as np

from repro.analysis import analyze_trace
from repro.core import BicordCoordinator, BicordNode
from repro.experiments import build_office, location_powermap
from repro.experiments.figures import histogram, sparkline, timeline
from repro.mac.frames import FrameType
from repro.traffic import WifiPacketSource, ZigbeeBurstSource


def main() -> None:
    office = build_office(seed=11, location="A", trace_kinds={"medium.tx_start"})
    cal = office.calibration
    WifiPacketSource(office.ctx, office.wifi_sender.mac, "F",
                     payload_bytes=cal.wifi_payload_bytes, interval=cal.wifi_interval)
    coordinator = BicordCoordinator(office.wifi_receiver)
    node = BicordNode(office.zigbee_sender, "ZR", powermap=location_powermap("A"))

    whitespaces = []

    def on_sent(frame):
        if frame.frame_type is FrameType.CTS and frame.meta.get("bicord"):
            now = office.ctx.sim.now
            whitespaces.append((now, now + frame.meta["nav_duration"]))

    office.wifi_receiver.mac.sent_listeners.append(on_sent)
    ZigbeeBurstSource(office.ctx, node.offer_burst, n_packets=10, payload_bytes=50,
                      interval_mean=0.25, poisson=False, max_bursts=14)
    horizon = 4.0
    office.ctx.sim.run(until=horizon)

    print("=== the channel without coordination ===")
    exchange_need = 4.5e-3
    # Measure the *natural* gaps on a separate, uncoordinated run (the run
    # above contains BiCord's own white spaces, which are exactly the gaps
    # coordination creates).
    plain = build_office(seed=11, location="A", trace_kinds={"medium.tx_start"})
    WifiPacketSource(plain.ctx, plain.wifi_sender.mac, "F",
                     payload_bytes=cal.wifi_payload_bytes, interval=cal.wifi_interval)
    plain.ctx.sim.run(until=2.0)
    stats = analyze_trace(plain.ctx.trace, 0.1, 2.0, need=exchange_need)
    print(f"natural Wi-Fi idle gaps: {stats.n_gaps} gaps, median "
          f"{stats.median * 1e3:.2f} ms, p90 {stats.p90 * 1e3:.2f} ms")
    print(f"idle time usable for one ZigBee exchange (needs "
          f"{exchange_need * 1e3:.1f} ms): {stats.usable_fraction:.1%}")

    print("\n=== the learning staircase (Fig. 7) ===")
    grants_ms = [g * 1e3 for g in coordinator.allocator.whitespace_trajectory()]
    print("grant lengths (ms):", ", ".join(f"{g:.0f}" for g in grants_ms[:18]))
    print("shape:", sparkline(grants_ms))
    print(f"converged white space: {coordinator.current_whitespace * 1e3:.1f} ms")

    print("\n=== where the white spaces sit (first 2 s) ===")
    print(timeline(whitespaces, 0.0, 2.0, width=78))

    print("\n=== ZigBee per-packet delay ===")
    delays_ms = [d * 1e3 for d in node.packet_delays]
    print(histogram(delays_ms, n_bins=8, width=30))
    print(f"\ndelivered {node.packets_delivered} packets, mean delay "
          f"{np.mean(delays_ms):.1f} ms, {node.control_packets_sent} control packets")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Smart home: two ZigBee sensors coexisting with a busy Wi-Fi AP.

The scenario the paper's introduction motivates: a home full of IoT sensors
sharing 2.4 GHz with a Wi-Fi access point.  A motion sensor reports small
frequent bursts; a camera-trigger sensor occasionally uploads a large burst.
Both coordinate with the same Wi-Fi receiver through BiCord.  The
deployment is the library scenario ``smart-home``; this script drives it
through the stable ``repro.api`` facade — resolving the spec by name,
running one trial, and re-reading the cached result afterwards.

Run:  python examples/smart_home.py
"""

import repro.api as bicord


def main() -> None:
    # The spec is data: resolve it by name to inspect before running.
    spec = bicord.load_scenario("smart-home")
    print(f"scenario {spec.name!r}: {len(spec.zigbee)} ZigBee link(s), "
          f"{len(spec.wifi)} Wi-Fi link(s), "
          f"{spec.duration:.0f} s [{spec.fingerprint()[:12]}]\n")

    result = bicord.run("scenario", scenario="smart-home", seed=7)

    labels = {"motion": "motion sensor", "camera": "camera trigger"}
    for name, link in result.links.items():
        print(f"{labels.get(name, name):14}: {link.delivered:3d} packets, "
              f"mean delay {link.mean_delay * 1e3:6.1f} ms, "
              f"{link.control_packets} control packets")
    print(f"coordinator   : {result.whitespaces_issued} white spaces, "
          f"current grant {result.current_whitespace * 1e3:.1f} ms, "
          f"{result.whitespace_airtime * 1e3:.0f} ms reserved in total")
    wifi = next(iter(result.wifi.values()))
    print(f"Wi-Fi AP      : {wifi.delivered} frames delivered "
          f"(PRR {wifi.prr:.3f})")

    # The trial above ran outside the cache (bicord.run is one-shot); a
    # one-seed sweep memoizes it, after which get_result() serves the
    # identical result without simulating anything.
    bicord.sweep("scenario", base={"scenario": "smart-home"}, seeds=(7,))
    cached = bicord.get_result("scenario", {"scenario": "smart-home"}, seed=7)
    assert cached is not None and cached.trace_digest == result.trace_digest
    print("\ncached replay matches the live run "
          f"(trace digest {result.trace_digest[:12]})")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Smart home: two ZigBee sensors coexisting with a busy Wi-Fi AP.

The scenario the paper's introduction motivates: a home full of IoT sensors
sharing 2.4 GHz with a Wi-Fi access point.  A motion sensor reports small
frequent bursts; a camera-trigger sensor occasionally uploads a large burst.
Both coordinate with the same Wi-Fi receiver through BiCord — the Wi-Fi
device learns each demand pattern from the signaling rounds alone.

Run:  python examples/smart_home.py
"""

import numpy as np

from repro.core import BicordCoordinator, BicordNode
from repro.devices import ZigbeeDevice
from repro.experiments import build_office
from repro.phy.propagation import Position
from repro.traffic import WifiPacketSource, ZigbeeBurstSource


def main() -> None:
    office = build_office(seed=7, location="A")
    ctx = office.ctx
    cal = office.calibration

    WifiPacketSource(
        ctx, office.wifi_sender.mac, "F",
        payload_bytes=cal.wifi_payload_bytes, interval=cal.wifi_interval,
    )
    coordinator = BicordCoordinator(office.wifi_receiver)

    # Sensor 1: the office's standard ZigBee pair = motion sensor.
    motion = BicordNode(office.zigbee_sender, "ZR")
    ZigbeeBurstSource(
        ctx, motion.offer_burst, n_packets=3, payload_bytes=30,
        interval_mean=0.25, poisson=True, max_bursts=20, name="motion",
    )

    # Sensor 2: a camera trigger near location A, larger and rarer bursts.
    cam_dev = ZigbeeDevice(ctx, "CAM", Position(2.2, 1.3), channel=cal.zigbee_channel,
                           tx_power_dbm=cal.zigbee_data_power_dbm)
    cam_rx = ZigbeeDevice(ctx, "CAM-HUB", Position(3.2, 1.8), channel=cal.zigbee_channel)
    camera = BicordNode(cam_dev, "CAM-HUB")
    ZigbeeBurstSource(
        ctx, camera.offer_burst, n_packets=12, payload_bytes=80,
        interval_mean=1.0, poisson=True, max_bursts=5, name="camera",
        start_delay=0.4,
    )

    ctx.sim.run(until=7.0)

    for name, node in [("motion sensor", motion), ("camera trigger", camera)]:
        delays = node.packet_delays
        print(f"{name:14}: {node.packets_delivered:3d} packets, "
              f"mean delay {np.mean(delays) * 1e3 if delays else 0:6.1f} ms, "
              f"{node.control_packets_sent} control packets")
    print(f"coordinator   : {coordinator.grants_issued} white spaces, "
          f"current grant {coordinator.current_whitespace * 1e3:.1f} ms, "
          f"{coordinator.whitespace_airtime * 1e3:.0f} ms reserved in total")
    wifi = office.wifi_sender.mac
    print(f"Wi-Fi AP      : {wifi.data_delivered} frames delivered "
          f"(PRR {wifi.data_delivered / max(wifi.data_sent, 1):.3f})")


if __name__ == "__main__":
    main()

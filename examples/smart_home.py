#!/usr/bin/env python3
"""Smart home: two ZigBee sensors coexisting with a busy Wi-Fi AP.

The scenario the paper's introduction motivates: a home full of IoT sensors
sharing 2.4 GHz with a Wi-Fi access point.  A motion sensor reports small
frequent bursts; a camera-trigger sensor occasionally uploads a large burst.
Both coordinate with the same Wi-Fi receiver through BiCord.  The
deployment is the library scenario ``smart-home`` (``repro.scenarios``);
this script compiles it and prints the report.

Run:  python examples/smart_home.py
"""

from repro.scenarios import compile_scenario, get_scenario


def main() -> None:
    result = compile_scenario(get_scenario("smart-home"), seed=7).run()

    labels = {"motion": "motion sensor", "camera": "camera trigger"}
    for name, link in result.links.items():
        print(f"{labels.get(name, name):14}: {link.delivered:3d} packets, "
              f"mean delay {link.mean_delay * 1e3:6.1f} ms, "
              f"{link.control_packets} control packets")
    print(f"coordinator   : {result.whitespaces_issued} white spaces, "
          f"current grant {result.current_whitespace * 1e3:.1f} ms, "
          f"{result.whitespace_airtime * 1e3:.0f} ms reserved in total")
    wifi = next(iter(result.wifi.values()))
    print(f"Wi-Fi AP      : {wifi.delivered} frames delivered "
          f"(PRR {wifi.prr:.3f})")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: BiCord vs no coordination in the paper's office.

Builds the Fig. 6 office (Wi-Fi sender E and receiver F 3 m apart, a ZigBee
pair at location A), saturates the channel with the paper's Wi-Fi workload
(100 B every 1 ms at 1 Mbps), and delivers ZigBee bursts two ways:

1. plain 802.15.4 CSMA/CA — starves under Wi-Fi (the paper's motivation);
2. BiCord — the node signals its needs, the Wi-Fi device grants adaptive
   white spaces, and the burst sails through.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.baselines import CsmaNode
from repro.core import BicordCoordinator, BicordNode
from repro.experiments import build_office, location_powermap
from repro.traffic import WifiPacketSource, ZigbeeBurstSource


def run(scheme: str, seed: int = 42) -> None:
    office = build_office(seed=seed, location="A")
    ctx = office.ctx
    cal = office.calibration

    # The interfering Wi-Fi link: 100 B every 1 ms, essentially saturating
    # the channel at 1 Mbps.
    WifiPacketSource(
        ctx, office.wifi_sender.mac, "F",
        payload_bytes=cal.wifi_payload_bytes, interval=cal.wifi_interval,
    )

    if scheme == "bicord":
        coordinator = BicordCoordinator(office.wifi_receiver)
        node = BicordNode(office.zigbee_sender, "ZR", powermap=location_powermap("A"))
    else:
        coordinator = None
        node = CsmaNode(office.zigbee_sender, "ZR")

    # ZigBee bursts: 5 packets of 50 B, Poisson-spaced at 200 ms on average.
    source = ZigbeeBurstSource(
        ctx, node.offer_burst, n_packets=5, payload_bytes=50,
        interval_mean=0.2, poisson=True, max_bursts=25,
    )

    ctx.sim.run(until=6.0)

    offered = source.bursts_generated * 5
    delays = node.packet_delays
    print(f"--- {scheme} ---")
    print(f"  packets delivered : {node.packets_delivered}/{offered}")
    if delays:
        print(f"  mean delay        : {np.mean(delays) * 1e3:7.1f} ms")
        print(f"  95th pct delay    : {np.percentile(delays, 95) * 1e3:7.1f} ms")
    if coordinator is not None:
        print(f"  white spaces      : {coordinator.grants_issued} "
              f"({coordinator.whitespace_airtime * 1e3:.0f} ms reserved)")
        print(f"  converged grant   : {coordinator.current_whitespace * 1e3:.1f} ms")
        print(f"  control packets   : {node.control_packets_sent}")
    wifi = office.wifi_sender.mac
    print(f"  Wi-Fi delivered   : {wifi.data_delivered} frames "
          f"(PRR {wifi.data_delivered / max(wifi.data_sent, 1):.3f})")


if __name__ == "__main__":
    print("BiCord quickstart: ZigBee bursts under saturated Wi-Fi\n")
    run("csma")
    print()
    run("bicord")
    print("\nBiCord turns a starved ZigBee link into a low-latency one while")
    print("the Wi-Fi link keeps a ~1.0 packet reception ratio.")

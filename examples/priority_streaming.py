#!/usr/bin/env python3
"""Prioritized Wi-Fi traffic (the paper's Sec. VIII-G scenario).

The Wi-Fi device alternates between high-priority video streaming and
low-priority file transfer.  While streaming, it *ignores* ZigBee requests
(BiCord never forces the powerful device to yield); while transferring
files, it serves them.  The ZigBee node's salvos that go unanswered are
abandoned and retried later — its delay grows with the high-priority share,
while video traffic sees essentially zero extra delay.

Run:  python examples/priority_streaming.py
"""

from repro.experiments import run_priority_experiment


def main() -> None:
    print("high-prio  scheme   util   zigbee-util  lo-prio-delay  hi-prio-delay  zigbee-delay")
    for proportion in (0.1, 0.3, 0.5):
        for scheme in ("bicord", "ecc"):
            r = run_priority_experiment(
                scheme, high_proportion=proportion, total_duration=6.0, seed=11
            )
            print(
                f"   {proportion:.1f}    {scheme:7} {r.utilization:6.3f}   "
                f"{r.zigbee_utilization:6.3f}      "
                f"{r.low_priority_wifi_delay * 1e3:7.2f} ms    "
                f"{r.high_priority_wifi_delay * 1e3:7.2f} ms   "
                f"{r.zigbee_mean_delay * 1e3:7.1f} ms"
            )
    print("\nWith BiCord the Wi-Fi device keeps full control: video traffic is")
    print("never preempted, and ZigBee still gets served between the streams.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Prioritized Wi-Fi traffic (the paper's Sec. VIII-G scenario).

The Wi-Fi device alternates between high-priority video streaming and
low-priority file transfer.  While streaming, it *ignores* ZigBee requests
(BiCord never forces the powerful device to yield); while transferring
files, it serves them.  The workload is the library scenario
``priority-streaming`` (``repro.scenarios``) swept here over the
high-priority share and the coordination scheme.

Run:  python examples/priority_streaming.py
"""

from repro.scenarios import compile_scenario, get_scenario


def main() -> None:
    print("high-prio  scheme   util   zigbee-util  lo-prio-delay  hi-prio-delay  zigbee-delay")
    for proportion in (0.1, 0.3, 0.5):
        for scheme in ("bicord", "ecc"):
            spec = get_scenario(
                "priority-streaming", scheme=scheme,
                high_proportion=proportion, total_duration=6.0,
            )
            r = compile_scenario(spec, seed=11).run()
            wifi = next(iter(r.wifi.values()))
            print(
                f"   {proportion:.1f}    {scheme:7} {r.channel_utilization:6.3f}   "
                f"{r.zigbee_utilization:6.3f}      "
                f"{wifi.mean_low_priority_delay * 1e3:7.2f} ms    "
                f"{wifi.mean_high_priority_delay * 1e3:7.2f} ms   "
                f"{r.mean_delay * 1e3:7.1f} ms"
            )
    print("\nWith BiCord the Wi-Fi device keeps full control: video traffic is")
    print("never preempted, and ZigBee still gets served between the streams.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Mobility: BiCord with a walking person and a moving ZigBee sender.

Reproduces the Sec. VIII-F scenarios: (1) a person walks around the Wi-Fi
receiver, perturbing CSI and occasionally making the detector fire without
any ZigBee signal (wasted white spaces); (2) the ZigBee sender itself moves
within a 1 m radius (think a handheld scanner in a workshop), adding link
variation and retransmissions.

Run:  python examples/mobile_workshop.py
"""

from repro.experiments import CoexistenceConfig, run_coexistence


def main() -> None:
    print("scenario           util    zigbee-util  mean-delay  delivered")
    base = dict(scheme="bicord", n_bursts=25, burst_interval=0.2, seed=21)
    for mobility, label in [("none", "static"), ("person", "person walking"),
                            ("device", "device moving")]:
        r = run_coexistence(CoexistenceConfig(mobility=mobility, **base))
        print(f"{label:16}  {r.channel_utilization:6.3f}   {r.zigbee_utilization:6.3f}"
              f"      {r.mean_delay * 1e3:6.1f} ms   "
              f"{r.zigbee_packets_delivered}/{r.zigbee_packets_offered}")
    print("\nAs in the paper, mobility costs a few points of utilization and a")
    print("few ms of delay, but BiCord keeps the link serviceable throughout.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Mobility: BiCord with a walking person and a moving ZigBee sender.

Reproduces the Sec. VIII-F scenarios: (1) a person walks around the Wi-Fi
receiver, perturbing CSI and occasionally making the detector fire without
any ZigBee signal (wasted white spaces); (2) the ZigBee sender itself moves
within a 1 m radius (think a handheld scanner in a workshop), adding link
variation and retransmissions.  The deployment is the library scenario
``mobile-workshop`` (``repro.scenarios``), parameterized by mobility kind.

Run:  python examples/mobile_workshop.py
"""

from repro.scenarios import compile_scenario, get_scenario


def main() -> None:
    print("scenario           util    zigbee-util  mean-delay  delivered")
    for mobility, label in [("none", "static"), ("person", "person walking"),
                            ("device", "device moving")]:
        spec = get_scenario("mobile-workshop", mobility=mobility)
        r = compile_scenario(spec, seed=21).run()
        print(f"{label:16}  {r.channel_utilization:6.3f}   {r.zigbee_utilization:6.3f}"
              f"      {r.mean_delay * 1e3:6.1f} ms   "
              f"{r.packets_delivered}/{r.packets_offered}")
    print("\nAs in the paper, mobility costs a few points of utilization and a")
    print("few ms of delay, but BiCord keeps the link serviceable throughout.")


if __name__ == "__main__":
    main()

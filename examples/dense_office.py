#!/usr/bin/env python3
"""Dense office stress: four ZigBee links, one Wi-Fi link, one coordinator.

The Wi-Fi device cannot tell which ZigBee node is asking — CSI fluctuations
are anonymous — so a single adaptive allocator serves the *aggregate*
demand (Sec. VI's multi-node discussion).  This example runs four sensor
links with different traffic patterns and shows the shared white spaces
carrying all of them.

Run:  python examples/dense_office.py
"""

import numpy as np

from repro.core import BicordCoordinator, BicordNode
from repro.devices import ZigbeeDevice
from repro.experiments import build_office, location_powermap
from repro.traffic import WifiPacketSource, ZigbeeBurstSource

SENSORS = [
    # (name, dx, dy, packets/burst, payload, mean interval)
    ("door", 0.0, 0.0, 2, 20, 0.5),
    ("hvac", -0.4, 0.3, 5, 50, 0.3),
    ("meter", -0.8, 0.1, 8, 80, 0.6),
    ("cam-trigger", 0.3, 0.5, 12, 100, 1.2),
]


def main() -> None:
    office = build_office(seed=17, location="A")
    cal = office.calibration
    WifiPacketSource(office.ctx, office.wifi_sender.mac, "F",
                     payload_bytes=cal.wifi_payload_bytes, interval=cal.wifi_interval)
    coordinator = BicordCoordinator(office.wifi_receiver)

    nodes = {}
    base = office.zigbee_sender.position
    for i, (name, dx, dy, packets, payload, interval) in enumerate(SENSORS):
        if i == 0:
            device, receiver = office.zigbee_sender, "ZR"
        else:
            device = ZigbeeDevice(office.ctx, f"{name}", base.moved(dx, dy),
                                  channel=cal.zigbee_channel,
                                  tx_power_dbm=cal.zigbee_data_power_dbm)
            hub = ZigbeeDevice(office.ctx, f"{name}-hub", base.moved(dx + 1.1, dy + 0.5),
                               channel=cal.zigbee_channel)
            receiver = hub.name
        node = BicordNode(device, receiver, powermap=location_powermap("A"))
        ZigbeeBurstSource(office.ctx, node.offer_burst, n_packets=packets,
                          payload_bytes=payload, interval_mean=interval,
                          poisson=True, max_bursts=10, name=name,
                          start_delay=0.1 * i)
        nodes[name] = node

    office.ctx.sim.run(until=14.0)
    coordinator.stop()

    print(f"{'sensor':12} {'delivered':>10} {'mean delay':>11} {'ctrl pkts':>10}")
    for name, node in nodes.items():
        delays = node.packet_delays
        print(f"{name:12} {node.packets_delivered:>10} "
              f"{np.mean(delays) * 1e3 if delays else 0:>9.1f} ms "
              f"{node.control_packets_sent:>9}")
    total = sum(n.packets_delivered for n in nodes.values())
    print(f"\ntotal: {total} packets over {coordinator.grants_issued} shared "
          f"white spaces ({coordinator.whitespace_airtime:.2f} s reserved);")
    print(f"the allocator settled at {coordinator.current_whitespace * 1e3:.0f} ms "
          f"per grant for the aggregate demand.")


if __name__ == "__main__":
    main()

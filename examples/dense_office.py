#!/usr/bin/env python3
"""Dense office stress: four ZigBee links, one Wi-Fi link, one coordinator.

The Wi-Fi device cannot tell which ZigBee node is asking — CSI fluctuations
are anonymous — so a single adaptive allocator serves the *aggregate*
demand (Sec. VI's multi-node discussion).  The deployment itself lives in
the scenario library (``repro.scenarios``, name ``dense-office``); this
script only compiles it and reports the per-sensor numbers.

Run:  python examples/dense_office.py
"""

from repro.scenarios import compile_scenario, get_scenario


def main() -> None:
    result = compile_scenario(get_scenario("dense-office"), seed=17).run()

    print(f"{'sensor':12} {'delivered':>10} {'mean delay':>11} {'ctrl pkts':>10}")
    for name, link in result.links.items():
        print(f"{name:12} {link.delivered:>10} "
              f"{link.mean_delay * 1e3:>9.1f} ms "
              f"{link.control_packets:>9}")
    print(f"\ntotal: {result.packets_delivered} packets over "
          f"{result.whitespaces_issued} shared white spaces "
          f"({result.whitespace_airtime:.2f} s reserved);")
    print(f"the allocator settled at {result.current_whitespace * 1e3:.0f} ms "
          f"per grant for the aggregate demand.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Dense office stress: four ZigBee links, one Wi-Fi link, one coordinator.

The Wi-Fi device cannot tell which ZigBee node is asking — CSI fluctuations
are anonymous — so a single adaptive allocator serves the *aggregate*
demand (Sec. VI's multi-node discussion).  The deployment itself lives in
the scenario library (``repro.scenarios``, name ``dense-office``); this
script drives it through the stable ``repro.api`` facade: one trial for
the per-sensor detail, then a small multi-seed sweep for seed-robust
aggregate numbers.

Run:  python examples/dense_office.py
"""

import repro.api as bicord


def main() -> None:
    # One trial, full detail: the "scenario" experiment runs any library
    # scenario by name and returns a ScenarioResult (ExperimentResult
    # contract: .scheme/.seed identity, .metrics(), .to_dict()).
    result = bicord.run("scenario", scenario="dense-office", seed=17)

    print(f"{'sensor':12} {'delivered':>10} {'mean delay':>11} {'ctrl pkts':>10}")
    for name, link in result.links.items():
        print(f"{name:12} {link.delivered:>10} "
              f"{link.mean_delay * 1e3:>9.1f} ms "
              f"{link.control_packets:>9}")
    print(f"\ntotal: {result.packets_delivered} packets over "
          f"{result.whitespaces_issued} shared white spaces "
          f"({result.whitespace_airtime:.2f} s reserved);")
    print(f"the allocator settled at {result.current_whitespace * 1e3:.0f} ms "
          f"per grant for the aggregate demand.")

    # Seed-averaged view: the same scenario over a few seeds through the
    # cached sweep engine (re-running this script re-executes nothing).
    sweep = bicord.sweep(
        "scenario", base={"scenario": "dense-office"}, seeds=range(3)
    )
    delivery = [r.delivery_ratio for r in sweep.results]
    print(f"\nover {len(delivery)} seeds: delivery ratio "
          f"{min(delivery):.3f}..{max(delivery):.3f} "
          f"({sweep.cached_hits} trial(s) served from cache)")


if __name__ == "__main__":
    main()

"""Scaling — multiple ZigBee nodes sharing one BiCord coordinator.

Sec. VI's white-space adjustment covers "multiple ZigBee nodes with
different traffic patterns coexisting in the surroundings": the Wi-Fi
device cannot attribute CSI fluctuations to individual nodes, so one
allocator serves the aggregate demand.  This bench grows the node
population and checks that service quality degrades gracefully: everything
is still delivered, delays grow sub-linearly (nodes share white spaces),
and the aggregate ZigBee utilization rises with offered load.
"""

import numpy as np

from repro.core import BicordCoordinator, BicordNode
from repro.devices import ZigbeeDevice
from repro.experiments import build_office, format_table, location_powermap
from repro.phy.propagation import Position
from repro.traffic import WifiPacketSource, ZigbeeBurstSource

from .conftest import scaled

POPULATIONS = (1, 2, 4)


def _run(n_nodes: int, seed: int):
    office = build_office(seed=seed, location="A")
    cal = office.calibration
    WifiPacketSource(office.ctx, office.wifi_sender.mac, "F",
                     payload_bytes=cal.wifi_payload_bytes, interval=cal.wifi_interval)
    coordinator = BicordCoordinator(office.wifi_receiver)
    nodes = []
    sources = []
    base = office.zigbee_sender.position
    n_bursts = scaled(10, minimum=6)
    for i in range(n_nodes):
        if i == 0:
            device = office.zigbee_sender
            receiver = "ZR"
        else:
            device = ZigbeeDevice(
                office.ctx, f"ZS{i}", base.moved(-0.3 * i, 0.25 * i),
                channel=cal.zigbee_channel, tx_power_dbm=cal.zigbee_data_power_dbm,
            )
            rx = ZigbeeDevice(
                office.ctx, f"ZR{i}", base.moved(1.0 - 0.2 * i, 0.7 + 0.2 * i),
                channel=cal.zigbee_channel,
            )
            receiver = rx.name
        node = BicordNode(device, receiver, powermap=location_powermap("A"))
        source = ZigbeeBurstSource(
            office.ctx, node.offer_burst, n_packets=5, payload_bytes=50,
            interval_mean=0.25 * n_nodes,  # keep aggregate offered load fixed
            poisson=True, max_bursts=n_bursts, name=f"src{i}",
            start_delay=0.05 * i,
        )
        sources.append(source)
        nodes.append(node)
    horizon = n_bursts * 0.25 * n_nodes + 1.5
    office.ctx.sim.run(until=horizon)
    # Grace: drain whatever is still queued (Poisson tails can place the
    # last bursts right at the horizon).
    deadline = horizon + 3.0
    while any(n.outstanding_packets for n in nodes) and office.ctx.sim.now < deadline:
        office.ctx.sim.run(until=office.ctx.sim.now + 0.2)
    coordinator.stop()
    delivered = sum(n.packets_delivered for n in nodes)
    offered = sum(s.bursts_generated for s in sources) * 5
    delays = [d for n in nodes for d in n.packet_delays]
    return {
        "delivered": delivered,
        "offered": offered,
        "mean_delay_ms": float(np.mean(delays)) * 1e3 if delays else 0.0,
        "p95_delay_ms": float(np.percentile(delays, 95)) * 1e3 if delays else 0.0,
        "grants": coordinator.grants_issued,
        "whitespace_s": coordinator.whitespace_airtime,
    }


def test_scaling_multinode(benchmark, emit):
    def run():
        return {n: _run(n, seed=3) for n in POPULATIONS}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for n, r in results.items():
        rows.append([
            n, f"{r['delivered']}/{r['offered']}", r["mean_delay_ms"],
            r["p95_delay_ms"], float(r["grants"]), r["whitespace_s"],
        ])
    emit(
        "scaling_multinode",
        format_table(
            ["nodes", "delivered", "mean_delay_ms", "p95_delay_ms",
             "grants", "whitespace_s"],
            rows, title="Scaling: ZigBee nodes per coordinator "
                        "(fixed aggregate load)",
            float_format="{:.1f}",
        ),
    )
    for n, r in results.items():
        assert r["delivered"] == r["offered"], f"lost packets with {n} nodes"
    # Delay grows with population but stays within the same order of
    # magnitude (nodes share the granted white spaces).
    d1 = results[POPULATIONS[0]]["mean_delay_ms"]
    dmax = results[POPULATIONS[-1]]["mean_delay_ms"]
    assert dmax < 10 * max(d1, 1.0)

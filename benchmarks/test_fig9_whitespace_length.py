"""Fig. 9 — white space generated after the adjustment phase.

Paper: the converged white space grows with the duration of ZigBee
transmissions and with the step size, and over-provisions the data airtime
by roughly 27.1% / 12.5% / 20.4% for 5/10/15-packet bursts — an acceptable
cost since, unlike ECC's, the white space is always used.
"""

import numpy as np

from repro.experiments import format_table


def test_fig9_whitespace_length(benchmark, learning_grid, emit):
    grid = benchmark.pedantic(learning_grid, rounds=1, iterations=1)
    headers = ["burst", "step", "location", "whitespace ms", "burst airtime ms",
               "overprovision %"]
    rows = []
    over_by_packets = {}
    for n_packets in (5, 10, 15):
        for step in (30e-3, 40e-3):
            for location in ("A", "B"):
                trials = grid[(n_packets, step, location)]
                ws = float(np.mean([t.final_whitespace for t in trials]))
                airtime = trials[0].burst_airtime
                over = 100.0 * (ws - airtime) / airtime
                over_by_packets.setdefault(n_packets, []).append(over)
                rows.append(
                    [f"{n_packets} pkts", f"{step * 1e3:.0f} ms", location,
                     ws * 1e3, airtime * 1e3, over]
                )
    emit(
        "fig9_whitespace_length",
        format_table(headers, rows,
                     title="Fig. 9: white space after adjustment",
                     float_format="{:.1f}"),
    )

    def mean_ws(n, step, loc):
        return np.mean([t.final_whitespace for t in grid[(n, step, loc)]])

    # Longer bursts get longer white spaces (paper's core adaptive claim).
    assert mean_ws(15, 30e-3, "A") > mean_ws(5, 30e-3, "A")
    assert mean_ws(15, 40e-3, "B") > mean_ws(5, 40e-3, "B")
    # A longer step tends to leave longer white spaces (5-packet bursts).
    assert mean_ws(5, 40e-3, "A") >= mean_ws(5, 30e-3, "A") - 1e-3
    # Over-provisioning stays bounded (paper: 12-27%; we allow a wide band).
    mean_over = np.mean([np.mean(v) for v in over_by_packets.values()])
    assert -10.0 < mean_over < 120.0

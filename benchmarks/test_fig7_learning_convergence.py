"""Fig. 7 — white space length across the learning phase.

Paper: with 10-packet bursts (~62.7 ms) and 30 ms steps, the Wi-Fi device
lengthens the white space over ~5 iterations and converges around 70 ms.
"""

from repro.experiments import format_series, run_learning_trial

from .conftest import scaled


def test_fig7_learning_convergence(benchmark, emit):
    result = benchmark.pedantic(
        lambda: run_learning_trial(
            n_packets=10, step=30e-3, location="A",
            n_bursts=scaled(14, minimum=10), seed=1,
        ),
        rounds=1, iterations=1,
    )
    series_ms = [round(g * 1e3, 1) for g in result.trajectory]
    text = "\n".join(
        [
            "Fig. 7: white space per grant during learning (10 pkts, 30 ms step)",
            format_series("grant_ms", list(range(1, len(series_ms) + 1)), series_ms,
                          y_format="{:.1f}"),
            f"converged: {result.converged}, final white space: "
            f"{result.final_whitespace * 1e3:.1f} ms "
            f"(burst airtime ~{result.burst_airtime * 1e3:.1f} ms; paper: ~70 ms "
            f"for a 62.7 ms burst)",
        ]
    )
    emit("fig7_learning_convergence", text)
    assert result.converged
    # Converged white space in the paper's ballpark (single-grant coverage).
    assert 0.05 <= result.final_whitespace <= 0.13
    # The trajectory is non-decreasing (Fig. 7's monotone growth).
    grants = result.trajectory
    assert all(b >= a - 1e-9 for a, b in zip(grants, grants[1:]))

"""Ablation — the paper's future-work piggyback extension (Sec. VII-B).

The paper suggests shrinking signaling energy by reusing control packets as
data packets.  Our reproduction quantifies the catch: a piggybacked control
packet must be *decoded* by the ZigBee receiver, yet it is transmitted to
*overlap Wi-Fi traffic by design*, so it is usually corrupted — most
deliveries still ride the white-space path.  The extension is mildly useful
(it never costs packets, and occasionally saves a round trip) but not the
free win the sketch implies.
"""

import numpy as np

from repro.core import BicordConfig, BicordCoordinator, BicordNode
from repro.experiments import build_office, format_table, location_powermap
from repro.traffic import WifiPacketSource, ZigbeeBurstSource

from .conftest import scaled


def _run(piggyback: bool, seed: int):
    office = build_office(seed=seed, location="A")
    cal = office.calibration
    WifiPacketSource(office.ctx, office.wifi_sender.mac, "F",
                     payload_bytes=cal.wifi_payload_bytes, interval=cal.wifi_interval)
    config = BicordConfig()
    config.signaling.piggyback_data = piggyback
    BicordCoordinator(office.wifi_receiver, config=config)
    node = BicordNode(office.zigbee_sender, "ZR", config=config,
                      powermap=location_powermap("A"))
    n_bursts = scaled(15, minimum=8)
    ZigbeeBurstSource(office.ctx, node.offer_burst, n_packets=5, payload_bytes=50,
                      interval_mean=0.2, poisson=False, max_bursts=n_bursts)
    office.sim.run(until=n_bursts * 0.2 + 1.0)
    return {
        "delivered": node.packets_delivered,
        "offered": n_bursts * 5,
        "piggyback_deliveries": node.piggyback_deliveries,
        "control_packets": node.control_packets_sent,
        "mean_delay_ms": float(np.mean(node.packet_delays)) * 1e3,
        "energy_mj": office.zigbee_sender.energy.total_mj,
    }


def test_ablation_piggyback(benchmark, emit):
    def run():
        seeds = range(scaled(3, minimum=2))
        return {
            flag: [_run(flag, seed) for seed in seeds] for flag in (False, True)
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for flag, runs in results.items():
        rows.append([
            "piggyback" if flag else "baseline",
            float(np.mean([r["delivered"] / r["offered"] for r in runs])),
            float(np.mean([r["piggyback_deliveries"] for r in runs])),
            float(np.mean([r["control_packets"] for r in runs])),
            float(np.mean([r["mean_delay_ms"] for r in runs])),
            float(np.mean([r["energy_mj"] for r in runs])),
        ])
    emit(
        "ablation_piggyback",
        format_table(
            ["variant", "delivery", "piggyback_dlv", "ctrl_pkts",
             "delay_ms", "energy_mJ"],
            rows, title="Ablation: control-packet piggyback (future work)",
            float_format="{:.3f}",
        ),
    )
    # Never loses packets; energy must not get materially worse.
    for runs in results.values():
        for r in runs:
            assert r["delivered"] == r["offered"]
    base_energy = np.mean([r["energy_mj"] for r in results[False]])
    piggy_energy = np.mean([r["energy_mj"] for r in results[True]])
    assert piggy_energy < base_energy * 1.15

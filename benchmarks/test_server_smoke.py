"""Job-server smoke: a real ``repro serve`` subprocess driven end to end.

Not a figure reproduction: this is the CI canary for the coordination
server (``repro.server``).  It boots the server as a subprocess, submits
two jobs at different priorities from separate clients, streams at least
one live telemetry snapshot off the watch socket, SIGTERMs the process
mid-run, and restarts it over the same state directory to check that the
interrupted work replays and completes.  Runs in the non-blocking
``server-smoke`` CI lane (see .github/workflows/ci.yml), not in the
tier-1 suite (which has its own in-process lifecycle suite plus one full
subprocess acceptance test).
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.api import Client
from repro.server import JobState

SRC = Path(__file__).resolve().parent.parent / "src"

TINY = {"scenario": "office", "duration": 0.02}
SLOW = {"scenario": "office", "duration": 5.0}


def _spawn(state_dir, cache):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC)
    env["BICORD_SWEEP_CACHE"] = str(cache)
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--state-dir", str(state_dir), "--quiet",
            "--workers", "1", "--queue-depth", "8",
            "--snapshot-interval", "0.05", "--drain-grace", "0.2",
        ],
        env=env,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )


def test_server_smoke(tmp_path):
    state = tmp_path / "state"
    cache = tmp_path / "cache"
    proc = _spawn(state, cache)
    try:
        alice = Client.from_state_dir(state, retry_for=30.0,
                                      client_name="alice")
        bob = Client.from_state_dir(state, retry_for=5.0, client_name="bob")
        assert alice.ping()["state"] == "serving"

        # Two clients, two priorities, behind one long-running blocker.
        blocker = alice.submit(params=SLOW, seeds=[0, 1])
        low = alice.submit(params=TINY, seeds=[10], priority=5)
        high = bob.submit(params=TINY, seeds=[11], priority=0)

        # Stream live telemetry off the running blocker.
        frames = []
        for frame in alice.watch(blocker["job_id"]):
            frames.append(frame)
            if len(frames) >= 3 and frame["type"] == "snapshot":
                break
        assert any(f["type"] == "snapshot" for f in frames)

        # The high-priority job overtakes the low-priority one.
        high_rec = bob.wait(high["job_id"], timeout=120)
        low_rec = alice.wait(low["job_id"], timeout=120)
        assert high_rec["state"] == low_rec["state"] == JobState.DONE
        assert high_rec["started_at"] < low_rec["started_at"]

        # SIGTERM mid-job: graceful exit (grace < one trial).
        victim = alice.submit(params=SLOW, seeds=[2, 3])
        deadline = time.monotonic() + 60
        while alice.status(victim["job_id"])["state"] != JobState.RUNNING:
            assert time.monotonic() < deadline
            time.sleep(0.02)
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=60) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()

    # Restart over the same state dir: the interrupted job replays and
    # finishes (completed trials come back from cache).
    proc2 = _spawn(state, cache)
    try:
        carol = Client.from_state_dir(state, retry_for=30.0,
                                      client_name="carol")
        done = carol.wait(victim["job_id"], timeout=180)
        assert done["state"] == JobState.DONE
        assert done["done_trials"] == done["total_trials"] == 2
        carol.shutdown()
        assert proc2.wait(timeout=60) == 0
    finally:
        if proc2.poll() is None:
            proc2.kill()
            proc2.wait()

"""Ablation — the allocator's conservative estimation margin.

The paper subtracts 2*T_c per round ("a conservative estimation") before
multiplying by the round count.  This sweep varies that margin: with no
margin the estimate overshoots (longer white spaces, fewer iterations, more
idle tail); with a large margin learning is slower but the converged grant
is tighter.
"""

import numpy as np

from repro.core import BicordConfig
from repro.experiments import CoexistenceConfig, format_table, run_coexistence

from .conftest import scaled


def test_ablation_allocator(benchmark, emit):
    def run():
        results = {}
        for margin in (0.0, 1.0, 2.0, 3.0):
            config = BicordConfig()
            config.allocator.estimation_margin_control_packets = margin
            runs = [
                run_coexistence(CoexistenceConfig(
                    scheme="bicord", burst_packets=10,
                    n_bursts=scaled(20, minimum=10),
                    bicord_config=config, seed=seed, poisson=False,
                ))
                for seed in range(scaled(2, minimum=2))
            ]
            results[margin] = runs
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for margin, runs in results.items():
        rows.append([
            f"{margin:.0f}*Tc",
            float(np.mean([r.channel_utilization for r in runs])),
            float(np.mean([r.mean_delay for r in runs])) * 1e3,
            float(np.mean([r.whitespace_airtime for r in runs])),
            float(np.mean([r.delivery_ratio for r in runs])),
        ])
    emit(
        "ablation_allocator",
        format_table(
            ["margin", "utilization", "mean_delay_ms", "ws_airtime_s", "delivery"],
            rows, title="Ablation: estimation margin (10-packet bursts)",
            float_format="{:.3f}",
        ),
    )
    # Every variant still delivers the traffic — the margin trades
    # utilization/delay, not correctness.
    for runs in results.values():
        for r in runs:
            assert r.delivery_ratio > 0.9

"""Campaign-runner smoke: 2-shard capped-event campaign with forced kill+resume.

Not a figure reproduction: this is the CI canary for the campaign runner
(``repro.experiments.campaign``).  It runs a small two-shard scenario
campaign under a capped event budget, SIGTERMs the process mid-run, resumes
it through the CLI, and checks the crash-safety contract: every journaled
trial is served from cache on resume (zero recomputation) and the final
report carries per-scheme confidence intervals.  Runs in the non-blocking
``campaign-smoke`` CI lane (see .github/workflows/ci.yml), not in the
tier-1 suite.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.experiments.campaign import CampaignJournal, CampaignRunner

SRC = Path(__file__).resolve().parent.parent / "src"

# Two library scenarios x two seeds, sharded 2-ways, each trial capped to a
# few thousand simulator events so the whole campaign stays under a minute.
CAMPAIGN_ARGS = [
    "campaign", "run", "--name", "ci-smoke",
    "--experiment", "scenario",
    "--param", "scenario=smart-home,office",
    "--base", "max_events=4000",
    "--seeds", "2", "--shards", "2", "--compare-by", "scenario", "--quiet",
]
TOTAL_TRIALS = 4


def _spawn(directory, cache):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC)
    env["BICORD_SWEEP_CACHE"] = str(cache)
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *CAMPAIGN_ARGS,
         "--dir", str(directory)],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )


def _wait_for_journal(path, n_trials, timeout=120.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, done = CampaignJournal(path).read()
        if len(done) >= n_trials:
            return done
        time.sleep(0.05)
    raise AssertionError(f"journal never reached {n_trials} trials")


def test_campaign_smoke_kill_and_resume(tmp_path):
    directory = tmp_path / "smoke"
    cache = tmp_path / "cache"

    proc = _spawn(directory, cache)
    try:
        _wait_for_journal(directory / "journal.jsonl", 1)
        proc.send_signal(signal.SIGTERM)
        proc.wait(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    _, done_before = CampaignJournal(directory / "journal.jsonl").read()
    assert len(done_before) >= 1

    # Resume in-process: only the un-journaled remainder may execute.
    run = CampaignRunner(directory, cache_dir=cache, quiet=True).run()
    assert run.complete and run.total == TOTAL_TRIALS
    assert run.executed <= TOTAL_TRIALS - len(done_before)
    assert run.executed + run.cached_hits == TOTAL_TRIALS - len(done_before)

    # The campaign report aggregates per scenario with 95% CIs.
    report = json.loads((directory / "report.json").read_text())
    assert set(report) == {"smart-home", "office"}
    for group in report.values():
        assert all("ci95" in summary for summary in group.values())

    # A second full run is pure replay: zero cache misses.
    replay = CampaignRunner(directory, cache_dir=cache, quiet=True).run()
    assert replay.complete and replay.executed == 0
    assert replay.cached_hits == 0  # nothing pending: journal already full

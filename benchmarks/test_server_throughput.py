"""Job-server throughput: the coordination-as-a-service headline numbers.

Three rows for ``BENCH_kernels.json``:

* submissions/sec — full protocol round trips for cache-hit submissions
  (connect, fingerprint, cache probe, respond).  This is the server's
  intake ceiling, and it must stay far above any realistic client rate.
* p99 time-to-result — submit-to-result-in-hand latency for a cached job,
  the interactive "ask again" path (``extra_info.p99_time_to_result_s``).
* concurrent-run ceiling — with W workers, W jobs execute simultaneously
  and the makespan of 2W single-trial jobs is ~2 batches, not 2W trials
  (``extra_info.concurrent_run_ceiling``).

The server runs in-process (its own asyncio loop in a daemon thread) so
the numbers measure the server, not process startup.
"""

import asyncio
import threading
import time
from contextlib import contextmanager

from repro.api import Client
from repro.experiments.sweep import SweepEngine
from repro.server import JobServer, ServerConfig

#: Cache-hit workload: milliseconds of wall time when actually executed.
TINY = {"scenario": "office", "duration": 0.02}
#: Executed workload for the ceiling bench (~0.1 s wall per trial).
SHORT = {"scenario": "office", "duration": 1.0}


@contextmanager
def running_server(tmp_path, **overrides):
    options = dict(
        state_dir=tmp_path / "state",
        cache_dir=tmp_path / "cache",
        workers=2,
        queue_depth=64,
        snapshot_interval=0.5,
        drain_grace=30.0,
    )
    options.update(overrides)
    server = JobServer(ServerConfig(**options))
    thread = threading.Thread(
        target=lambda: asyncio.run(server.serve()), daemon=True
    )
    thread.start()
    client = Client.from_state_dir(
        options["state_dir"], retry_for=15.0, client_name="bench"
    )
    try:
        yield server, client
    finally:
        try:
            client.shutdown()
        except OSError:
            pass
        thread.join(timeout=60)


def _warm_cache(tmp_path, seeds):
    engine = SweepEngine(cache_dir=tmp_path / "cache")
    engine.run_pairs("scenario", [(TINY, seed) for seed in seeds])


def test_server_submissions_per_second(benchmark, tmp_path):
    """One cache-hit submission per round: ops/s == submissions/sec."""
    _warm_cache(tmp_path, seeds=[0])
    with running_server(tmp_path) as (_, client):

        def submit():
            job = client.submit(params=TINY, seeds=[0])
            assert job["cached"] is True

        benchmark(submit)
    benchmark.extra_info["path"] = "cache_hit"


def test_server_time_to_result(benchmark, tmp_path):
    """Submit + fetch results, p99 over the benchmark's own rounds."""
    _warm_cache(tmp_path, seeds=[0, 1])
    with running_server(tmp_path) as (_, client):

        def submit_and_fetch():
            job = client.submit(params=TINY, seeds=[0, 1])
            rows = client.result(job["job_id"])["results"]
            assert len(rows) == 2

        benchmark(submit_and_fetch)
    rounds = sorted(benchmark.stats.stats.data)
    p99 = rounds[min(len(rounds) - 1, int(0.99 * len(rounds)))]
    benchmark.extra_info["p99_time_to_result_s"] = p99


def test_server_concurrent_run_ceiling(benchmark, tmp_path):
    """2W single-trial jobs across W workers: makespan ~ 2 batches.

    Each round uses fresh seeds so every trial truly executes; a stats
    poller records the highest simultaneous RUNNING count, which must
    reach the worker count (the advertised concurrent-run ceiling).
    """
    workers = 2
    seen = {"max_running": 0}
    seed_base = iter(range(10_000, 1_000_000, 100))

    with running_server(tmp_path, workers=workers) as (_, client):

        def makespan():
            base = next(seed_base)
            jobs = [
                client.submit(params=SHORT, seeds=[base + i])
                for i in range(2 * workers)
            ]
            while True:
                stats = client.stats()
                seen["max_running"] = max(
                    seen["max_running"], stats["running"]
                )
                if stats["running"] == 0 and stats["queued"] == 0:
                    break
                time.sleep(0.01)
            for job in jobs:
                record = client.status(job["job_id"])
                assert record["state"] == "done"

        benchmark.pedantic(makespan, rounds=3, iterations=1, warmup_rounds=1)

    assert seen["max_running"] == workers
    benchmark.extra_info["concurrent_run_ceiling"] = seen["max_running"]
    benchmark.extra_info["jobs_per_round"] = 2 * workers

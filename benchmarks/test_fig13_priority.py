"""Fig. 13 — prioritized Wi-Fi traffic.

Paper: with video (high priority, requests ignored) and file transfer (low
priority) mixed over 10 s, BiCord beats ECC-20/ECC-30 on total utilization
by ~3.1%/9.8% and on ZigBee utilization by ~46%/28%; high-priority Wi-Fi
sees near-zero extra delay; BiCord's low-priority Wi-Fi delay is close to
ECC's (paper: ~6% lower on average).
"""

import numpy as np

from repro.experiments import format_table, run_priority_experiment

from .conftest import scaled

PROPORTIONS = (0.1, 0.2, 0.3, 0.4, 0.5)
VARIANTS = (("bicord", None), ("ecc", 20e-3), ("ecc", 30e-3))


def test_fig13_priority(benchmark, emit):
    def run():
        duration = scaled(10, minimum=4)
        results = {}
        for proportion in PROPORTIONS:
            for scheme, whitespace in VARIANTS:
                label = scheme if whitespace is None else f"ecc-{int(whitespace * 1e3)}ms"
                results[(proportion, label)] = run_priority_experiment(
                    scheme, high_proportion=proportion,
                    total_duration=float(duration),
                    ecc_whitespace=whitespace or 20e-3, seed=2,
                )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    labels = ["bicord", "ecc-20ms", "ecc-30ms"]
    blocks = []
    for metric in ("utilization", "zigbee_utilization", "low_priority_wifi_delay",
                   "high_priority_wifi_delay"):
        rows = []
        for label in labels:
            row = [label]
            for proportion in PROPORTIONS:
                value = getattr(results[(proportion, label)], metric)
                if metric.endswith("delay"):
                    value *= 1e3
                row.append(value)
            rows.append(row)
        headers = ["scheme"] + [f"{p:.1f}" for p in PROPORTIONS]
        blocks.append(format_table(headers, rows, title=f"Fig. 13 {metric}",
                                   float_format="{:.3f}"))
    emit("fig13_priority", "\n\n".join(blocks))

    # ZigBee utilization: BiCord far above both ECC variants (paper: +46/+28%).
    for proportion in PROPORTIONS:
        bicord = results[(proportion, "bicord")].zigbee_utilization
        for label in labels[1:]:
            assert bicord > results[(proportion, label)].zigbee_utilization
    # High-priority Wi-Fi traffic is protected: its delay never exceeds the
    # low-priority delay by much under BiCord.
    for proportion in PROPORTIONS:
        r = results[(proportion, "bicord")]
        assert r.high_priority_wifi_delay <= r.low_priority_wifi_delay * 1.25 + 1e-3
    # Low-priority Wi-Fi delay comparable to ECC's (paper: ~6% lower).
    bicord_low = np.mean([results[(p, "bicord")].low_priority_wifi_delay
                          for p in PROPORTIONS])
    ecc_low = np.mean([results[(p, lab)].low_priority_wifi_delay
                       for p in PROPORTIONS for lab in labels[1:]])
    assert bicord_low < ecc_low * 2.0

"""Sec. VII-A — accuracy of CTI detection and Wi-Fi device identification.

Paper: 96.39% average accuracy detecting Wi-Fi among RSSI segments from all
technologies; 89.76% (+-2.14) identifying which Wi-Fi device transmits.
"""

import numpy as np

from repro.experiments import (
    format_table,
    run_cti_accuracy,
    run_device_identification,
)

from .conftest import scaled


def test_cti_detection_accuracy(benchmark, emit):
    def run():
        cti = run_cti_accuracy(n_traces=scaled(60, minimum=30), seed=0)
        device_accs = [
            run_device_identification(n_traces=scaled(60, minimum=30), seed=seed).accuracy
            for seed in range(scaled(4, minimum=2))
        ]
        return cti, device_accs

    cti, device_accs = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ["Wi-Fi detection accuracy", cti.wifi_detection_accuracy, 0.9639],
        ["multiclass interferer accuracy", cti.multiclass_accuracy, float("nan")],
        ["device identification (mean)", float(np.mean(device_accs)), 0.8976],
        ["device identification (std)", float(np.std(device_accs)), 0.0214],
    ]
    emit(
        "cti_detection_accuracy",
        format_table(["metric", "measured", "paper"], rows,
                     title="Sec. VII-A: CTI detection accuracy"),
    )
    assert cti.wifi_detection_accuracy > 0.9
    assert np.mean(device_accs) > 0.7

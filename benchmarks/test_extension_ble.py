"""Extension bench (Sec. VII-D) — ZigBee/Bluetooth coordination via AFH.

Not a paper figure (the paper only sketches this direction); we quantify
it: with AFH the BLE link's late-run success rate reaches ~1.0 and the hop
channel overlapping the ZigBee transmitter is excluded, while the ZigBee
link keeps its delivery ratio.
"""

import numpy as np

from repro.experiments import format_table
from repro.experiments.ble_extension import run_ble_coexistence

from .conftest import scaled


def test_extension_ble(benchmark, emit):
    def run():
        duration = float(scaled(10, minimum=6))
        seeds = range(scaled(2, minimum=2))
        return {
            afh: [run_ble_coexistence(afh_enabled=afh, duration=duration, seed=s)
                  for s in seeds]
            for afh in (False, True)
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for afh, runs in results.items():
        rows.append([
            "on" if afh else "off",
            float(np.mean([r.ble_success_rate for r in runs])),
            float(np.mean([r.ble_early_success_rate for r in runs])),
            float(np.mean([r.ble_late_success_rate for r in runs])),
            float(np.mean([len(r.excluded_channels) for r in runs])),
            float(np.mean([r.zigbee_delivery_ratio for r in runs])),
        ])
    emit(
        "extension_ble",
        format_table(
            ["AFH", "ble_success", "early", "late", "excluded_ch", "zigbee_dlv"],
            rows, title="Extension: ZigBee/BLE coordination via AFH (Sec. VII-D)",
            float_format="{:.3f}",
        ),
    )
    on = results[True]
    off = results[False]
    assert np.mean([r.ble_late_success_rate for r in on]) >= np.mean(
        [r.ble_late_success_rate for r in off]
    )
    assert all(r.excluded_channels for r in on)
    assert all(not r.excluded_channels for r in off)
    for runs in results.values():
        for r in runs:
            assert r.zigbee_delivery_ratio > 0.75

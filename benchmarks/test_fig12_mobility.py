"""Fig. 12 — mobile scenarios.

Paper: utilization in mobile scenarios drops at most ~9% vs static (person
mobility causes spurious CSI detections and therefore unused white spaces;
device mobility causes retransmissions), and delay rises by only a few ms.
"""

import numpy as np

from repro.experiments import SweepEngine, format_table

from .conftest import BENCH_JOBS, scaled

SCENARIOS = ("none", "person", "device")
INTERVALS = (200e-3, 1.0)


def test_fig12_mobility(benchmark, emit):
    # Grid via the sweep engine: scenarios x intervals x seeds in parallel.
    keys = []
    trials = []
    for mobility in SCENARIOS:
        for interval in INTERVALS:
            keys.append((mobility, interval))
            trials.append(dict(
                mobility=mobility, burst_interval=interval,
                n_bursts=scaled(max(10, int(5.0 / interval)), minimum=8),
            ))
    seeds = tuple(range(scaled(3, minimum=2)))

    def run():
        engine = SweepEngine(jobs=BENCH_JOBS, cache=False)
        sweep = engine.run_trials("coexistence", trials, seeds=seeds)
        results = {}
        for record in sweep.records:
            key = keys[record.index // len(seeds)]
            results.setdefault(key, []).append(record.result)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for mobility in SCENARIOS:
        for interval in INTERVALS:
            runs = results[(mobility, interval)]
            rows.append([
                mobility, f"{interval * 1e3:.0f}ms",
                float(np.mean([r.channel_utilization for r in runs])),
                float(np.mean([r.zigbee_utilization for r in runs])),
                float(np.mean([r.mean_delay for r in runs])) * 1e3,
                float(np.mean([r.delivery_ratio for r in runs])),
            ])
    emit(
        "fig12_mobility",
        format_table(
            ["scenario", "interval", "util", "zigbee_util", "delay_ms", "delivery"],
            rows, title="Fig. 12: mobility", float_format="{:.3f}",
        ),
    )

    def mean_util(mobility, interval):
        return np.mean([r.channel_utilization for r in results[(mobility, interval)]])

    def mean_delay(mobility, interval):
        return np.mean([r.mean_delay for r in results[(mobility, interval)]])

    for interval in INTERVALS:
        static = mean_util("none", interval)
        for mobility in ("person", "device"):
            # Paper: at most ~9% lower utilization; we allow a margin.
            assert mean_util(mobility, interval) > static - 0.15
            # The link keeps working while mobile.
            for r in results[(mobility, interval)]:
                assert r.delivery_ratio > 0.8
        # Delay inflation stays small (paper: ~3 ms).
        assert mean_delay("device", interval) < mean_delay("none", interval) + 0.03

"""Scale ceiling: a generator-built dense deployment on both scheduler backends.

The coexistence surveys BiCord targets study deployments far denser than the
paper's office — hundreds of Wi-Fi pairs contending with thousands of ZigBee
links.  This benchmark compiles such a deployment from the ``grid`` generator
and drives a fixed event budget through it on **each scheduler backend**,
recording realtime factor and engine event throughput into the benchmark JSON
(``BENCH_kernels.json`` when refreshed locally; see docs/reproducing.md) so
every future PR moves a tracked number.

One pedantic round per backend: the run is expensive and the quantity of
interest (events/s at density) is stable enough that round-to-round variance
is dominated by machine noise anyway.  ``BICORD_BENCH_SCALE`` scales the
deployment for smoke runs.

At this density the per-event cost is dominated by Medium/coordination work,
not the scheduler — the backends should land within a few percent of each
other here, while the scheduler-bound micro benchmark
(``test_kernel_performance.py::test_engine_event_throughput*``) shows the
calendar queue's full advantage.  Tracking both pins down where the next
ceiling is.
"""

from __future__ import annotations

import pytest

from repro.phy.medium import set_default_medium_kernel
from repro.phy.propagation import Position
from repro.scenarios import compile_scenario, get_scenario
from repro.sim.engine import set_default_backend
from repro.sim.process import Process

from .conftest import scaled

#: Dense deployment: thousands of ZigBee links, hundreds of Wi-Fi pairs.
N_ZIGBEE_LINKS = scaled(1000)
N_WIFI_PAIRS = scaled(200)
#: Event budget per measured run (per-event cost at this density is ~1 ms,
#: so the budget bounds a round to a few seconds).
MAX_EVENTS = scaled(3000)

KERNELS = ["legacy", "vector"]

#: Radio-density axis: total radio counts for the kernel scaling curve.
#: The grid generator places 2 radios per ZigBee link and 2 per Wi-Fi pair;
#: the splits below keep 80% of the radios on ZigBee links at every density.
DENSITIES = [50, 200, 800]
MAX_EVENTS_DENSITY = scaled(1500)


def _scale_run(backend: str, kernel=None,
               n_zigbee=N_ZIGBEE_LINKS, n_wifi=N_WIFI_PAIRS,
               max_events=MAX_EVENTS):
    previous_backend = set_default_backend(backend)
    previous_kernel = set_default_medium_kernel(kernel) if kernel else None
    try:
        spec = get_scenario("grid", n_zigbee_links=n_zigbee, n_wifi_pairs=n_wifi)
        compiled = compile_scenario(spec, seed=7, trace_kinds=set())
        assert compiled.sim.backend_name == backend
        if kernel:
            assert compiled.ctx.medium.kernel_name == kernel
        result = compiled.run(max_events=max_events)
        return result.events_processed, compiled.sim.now
    finally:
        set_default_backend(previous_backend)
        if previous_kernel:
            set_default_medium_kernel(previous_kernel)


def _report(emit, variant, benchmark, events, sim_seconds,
            n_zigbee=N_ZIGBEE_LINKS, n_wifi=N_WIFI_PAIRS):
    wall = benchmark.stats.stats.mean
    emit(
        f"scale_ceiling_{variant}",
        f"scale ceiling ({variant}): {n_zigbee} zigbee links + "
        f"{n_wifi} wifi pairs, {events} events in {wall:.2f} s wall -> "
        f"{events / wall:.0f} events/s, realtime factor "
        f"{sim_seconds / wall:.5f}x ({sim_seconds * 1e3:.2f} ms simulated)",
    )


@pytest.mark.parametrize("backend", ["heap", "calendar"])
def test_scale_ceiling_backend(benchmark, emit, backend):
    events, sim_seconds = benchmark.pedantic(
        _scale_run, args=(backend,), rounds=1, iterations=1
    )
    assert events == MAX_EVENTS  # the deployment saturates the budget
    _report(emit, backend, benchmark, events, sim_seconds)


@pytest.mark.parametrize("kernel", KERNELS)
def test_scale_ceiling_kernel(benchmark, emit, kernel):
    """Both medium kernels at full density on the calendar backend.

    These two rows are the like-for-like pair behind the vectorized kernel's
    headline speedup: identical deployment, seed, backend, and event budget,
    differing only in the Medium implementation.  The regression gate
    (``check_throughput_regression.py``) divides them.
    """
    events, sim_seconds = benchmark.pedantic(
        _scale_run, args=("calendar", kernel), rounds=1, iterations=1
    )
    assert events == MAX_EVENTS
    _report(emit, f"kernel_{kernel}", benchmark, events, sim_seconds)


#: Mobility-churn axis: a moderate deployment driven for a fixed sim
#: horizon while a platoon of ZigBee senders is batch-moved 0, 1, or 10
#: times per simulated second.  Both kernels process a bitwise-identical
#: event stream (moves only invalidate lazily-rebuilt link state), so the
#: events/s rows are like-for-like and the regression gate can divide them.
CHURN_ZIGBEE = scaled(60)
CHURN_WIFI = scaled(8)
CHURN_HORIZON = 1.0
CHURN_RATES = [0, 1, 10]


def _churn_run(kernel: str, moves_per_s: int):
    previous_backend = set_default_backend("calendar")
    previous_kernel = set_default_medium_kernel(kernel)
    try:
        spec = get_scenario(
            "grid", n_zigbee_links=CHURN_ZIGBEE, n_wifi_pairs=CHURN_WIFI
        )
        compiled = compile_scenario(spec, seed=7, trace_kinds=set())
        assert compiled.ctx.medium.kernel_name == kernel
        movers = [
            link.sender.radio for link in compiled.zigbee_links.values()
        ][: max(4, CHURN_ZIGBEE // 4)]
        if moves_per_s:
            medium = compiled.ctx.medium

            def churn():
                step = 0
                while True:
                    yield 1.0 / moves_per_s
                    step += 1
                    dx = 0.5 if step % 2 else -0.5
                    medium.move_many(
                        (radio, Position(radio.position.x + dx, radio.position.y))
                        for radio in movers
                    )

            Process(compiled.sim, churn(), name="churn")
        # A huge cap keeps run() on the capped path (no grace drain) while
        # the sim horizon, not the budget, ends the run.
        result = compiled.run(until=CHURN_HORIZON, max_events=10**9)
        return result.events_processed, compiled.sim.now
    finally:
        set_default_backend(previous_backend)
        set_default_medium_kernel(previous_kernel)


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("moves", CHURN_RATES)
def test_mobility_churn(benchmark, emit, moves, kernel):
    """Events/s under batched topology churn (0/1/10 moves per sim second).

    The 0-row is the static control; the 10-row is the roaming regime.  The
    gap between a kernel's own 0- and 10-rows prices its invalidation path
    (epoch bump + lazy row rebuilds), and the vector/legacy ratio at 10
    moves/s is gated >= 1.5x by ``check_throughput_regression.py``.
    """
    events, sim_seconds = benchmark.pedantic(
        _churn_run, args=(kernel, moves), rounds=1, iterations=1
    )
    assert events > 0
    _report(emit, f"mobility_churn_{moves}_{kernel}", benchmark, events,
            sim_seconds, n_zigbee=CHURN_ZIGBEE, n_wifi=CHURN_WIFI)


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("radios", DENSITIES)
def test_medium_density(benchmark, emit, radios, kernel):
    """Events/s vs radio count, per kernel (the scaling curve itself).

    The legacy kernel's broadcast is O(radios) python work per transmission,
    so its events/s decays roughly linearly with density; the vectorized
    kernel amortizes the per-radio work into array sweeps and notification
    pruning, flattening the curve.  Tracking all six rows keeps the
    crossover visible rather than just the dense endpoint.
    """
    n_zigbee = radios * 2 // 5
    n_wifi = radios // 10
    events, sim_seconds = benchmark.pedantic(
        _scale_run,
        args=("calendar", kernel),
        kwargs={"n_zigbee": n_zigbee, "n_wifi": n_wifi,
                "max_events": MAX_EVENTS_DENSITY},
        rounds=1,
        iterations=1,
    )
    assert events == MAX_EVENTS_DENSITY
    _report(emit, f"density_{radios}_{kernel}", benchmark, events, sim_seconds,
            n_zigbee=n_zigbee, n_wifi=n_wifi)

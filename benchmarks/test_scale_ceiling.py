"""Scale ceiling: a generator-built dense deployment on both scheduler backends.

The coexistence surveys BiCord targets study deployments far denser than the
paper's office — hundreds of Wi-Fi pairs contending with thousands of ZigBee
links.  This benchmark compiles such a deployment from the ``grid`` generator
and drives a fixed event budget through it on **each scheduler backend**,
recording realtime factor and engine event throughput into the benchmark JSON
(``BENCH_kernels.json`` when refreshed locally; see docs/reproducing.md) so
every future PR moves a tracked number.

One pedantic round per backend: the run is expensive and the quantity of
interest (events/s at density) is stable enough that round-to-round variance
is dominated by machine noise anyway.  ``BICORD_BENCH_SCALE`` scales the
deployment for smoke runs.

At this density the per-event cost is dominated by Medium/coordination work,
not the scheduler — the backends should land within a few percent of each
other here, while the scheduler-bound micro benchmark
(``test_kernel_performance.py::test_engine_event_throughput*``) shows the
calendar queue's full advantage.  Tracking both pins down where the next
ceiling is.
"""

from __future__ import annotations

import pytest

from repro.scenarios import compile_scenario, get_scenario
from repro.sim.engine import set_default_backend

from .conftest import scaled

#: Dense deployment: thousands of ZigBee links, hundreds of Wi-Fi pairs.
N_ZIGBEE_LINKS = scaled(1000)
N_WIFI_PAIRS = scaled(200)
#: Event budget per measured run (per-event cost at this density is ~1 ms,
#: so the budget bounds a round to a few seconds).
MAX_EVENTS = scaled(3000)


def _scale_run(backend: str):
    previous = set_default_backend(backend)
    try:
        spec = get_scenario(
            "grid",
            n_zigbee_links=N_ZIGBEE_LINKS,
            n_wifi_pairs=N_WIFI_PAIRS,
        )
        compiled = compile_scenario(spec, seed=7, trace_kinds=set())
        assert compiled.sim.backend_name == backend
        result = compiled.run(max_events=MAX_EVENTS)
        return result.events_processed, compiled.sim.now
    finally:
        set_default_backend(previous)


def _report(emit, backend, benchmark, events, sim_seconds):
    wall = benchmark.stats.stats.mean
    emit(
        f"scale_ceiling_{backend}",
        f"scale ceiling ({backend}): {N_ZIGBEE_LINKS} zigbee links + "
        f"{N_WIFI_PAIRS} wifi pairs, {events} events in {wall:.2f} s wall -> "
        f"{events / wall:.0f} events/s, realtime factor "
        f"{sim_seconds / wall:.5f}x ({sim_seconds * 1e3:.2f} ms simulated)",
    )


@pytest.mark.parametrize("backend", ["heap", "calendar"])
def test_scale_ceiling_backend(benchmark, emit, backend):
    events, sim_seconds = benchmark.pedantic(
        _scale_run, args=(backend,), rounds=1, iterations=1
    )
    assert events == MAX_EVENTS  # the deployment saturates the budget
    _report(emit, backend, benchmark, events, sim_seconds)

"""Fig. 8 — iterations needed to adjust the white space.

Paper: the average number of learning iterations stays below 8; it grows
with more packets per burst and with a shorter step; location A can be
slightly worse because ZigBee *data* packets near F are themselves read as
channel requests, biasing the estimate low.
"""

import numpy as np

from repro.experiments import format_table


def test_fig8_iterations(benchmark, learning_grid, emit):
    grid = benchmark.pedantic(learning_grid, rounds=1, iterations=1)
    headers = ["burst", "step", "location", "mean iterations", "converged"]
    rows = []
    for n_packets in (5, 10, 15):
        for step in (30e-3, 40e-3):
            for location in ("A", "B"):
                trials = grid[(n_packets, step, location)]
                iterations = float(np.mean([t.iterations for t in trials]))
                converged = sum(t.converged for t in trials) / len(trials)
                rows.append(
                    [f"{n_packets} pkts", f"{step * 1e3:.0f} ms", location,
                     iterations, converged]
                )
    emit(
        "fig8_iterations",
        format_table(headers, rows, title="Fig. 8: learning iterations",
                     float_format="{:.2f}"),
    )
    # Paper: always below 8 on average.
    all_iters = [
        np.mean([t.iterations for t in trials]) for trials in grid.values()
    ]
    assert max(all_iters) < 8

    def mean_iters(n, step, loc):
        return np.mean([t.iterations for t in grid[(n, step, loc)]])

    # More packets per burst => at least as many iterations (30 ms step, B).
    assert mean_iters(15, 30e-3, "B") >= mean_iters(5, 30e-3, "B") - 0.5

#!/usr/bin/env python
"""Non-blocking throughput-regression check for the kernel benchmarks.

Compares a freshly produced pytest-benchmark JSON against the committed
baseline (``BENCH_kernels.json``) and warns when any shared benchmark's
ops/s dropped by more than the threshold (default 20%).  It always exits 0:
benchmark machines are noisy — especially shared CI runners — so this is a
tripwire for humans reading the job log, not a gate.

Usage::

    python benchmarks/check_throughput_regression.py fresh.json \
        [--baseline BENCH_kernels.json] [--threshold 0.20]

Benchmarks present on only one side (new benches, renamed rows) are listed
but never warned about.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_ops(path: Path) -> dict:
    """Map benchmark name -> ops/s from a pytest-benchmark JSON file."""
    with path.open() as fh:
        payload = json.load(fh)
    return {b["name"]: b["stats"]["ops"] for b in payload.get("benchmarks", [])}


def kernel_speedups(fresh: dict) -> list:
    """(vector row name, vector/legacy ops ratio) for same-run kernel pairs.

    Pairs are any two rows whose names differ only by ``vector`` vs
    ``legacy`` (e.g. ``test_scale_ceiling_kernel[vector]``), so both sides
    were measured in the *same* benchmark session — the like-for-like
    comparison the vectorized-kernel speedup target is defined over.
    """
    pairs = []
    for name in sorted(fresh):
        if "vector" not in name:
            continue
        legacy_name = name.replace("vector", "legacy")
        legacy_ops = fresh.get(legacy_name)
        if legacy_ops:
            pairs.append((name, fresh[name] / legacy_ops))
    return pairs


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", type=Path, help="newly produced benchmark JSON")
    parser.add_argument(
        "--baseline",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_kernels.json",
        help="committed baseline JSON (default: repo BENCH_kernels.json)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="fractional ops/s drop that triggers a warning (default 0.20)",
    )
    args = parser.parse_args(argv)

    try:
        baseline = load_ops(args.baseline)
        fresh = load_ops(args.fresh)
    except (OSError, json.JSONDecodeError, KeyError) as exc:
        print(f"throughput check skipped: could not load benchmark JSON ({exc})")
        return 0

    warned = False
    for name in sorted(baseline):
        if name not in fresh:
            print(f"  {name}: only in baseline (renamed or not run)")
            continue
        old, new = baseline[name], fresh[name]
        change = (new - old) / old if old else 0.0
        marker = ""
        if change < -args.threshold:
            marker = f"  <-- WARNING: >{args.threshold:.0%} slower than baseline"
            warned = True
        print(f"  {name}: {old:.2f} -> {new:.2f} ops/s ({change:+.1%}){marker}")
    for name in sorted(set(fresh) - set(baseline)):
        print(f"  {name}: new benchmark ({fresh[name]:.2f} ops/s, no baseline)")

    pairs = kernel_speedups(fresh)
    if pairs:
        print("\nmedium-kernel speedups (vector vs legacy, same run):")
        for name, speedup in pairs:
            marker = ""
            if "scale_ceiling_kernel" in name and speedup < 2.0:
                marker = "  <-- WARNING: below the 2x dense-deployment target"
                warned = True
            elif "mobility_churn" in name and speedup < 1.5:
                marker = "  <-- WARNING: below the 1.5x churn target"
                warned = True
            print(f"  {name}: {speedup:.2f}x{marker}")

    if warned:
        print(
            "\nthroughput regression(s) above threshold — investigate before "
            "refreshing BENCH_kernels.json (non-blocking; benchmark hosts are "
            "noisy)"
        )
    else:
        print("\nno throughput regressions above threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Energy-per-delivered-packet across schemes (Sec. VII-B's closing claim).

"In traditional approaches, ZigBee needs [to] keep sensing the channel to
analyze the channel hints or passively wait for Wi-Fi's notification, which
inevitably leads to long delays and even higher energy costs."  This bench
measures it: under the paper's saturated Wi-Fi, the passive gap-predictor
burns tens of mJ of idle listening and delivers nothing, plain CSMA burns
energy on doomed attempts, and BiCord pays a fraction of a mJ per
*delivered* packet.
"""

import numpy as np

from repro.baselines import CsmaNode, PredictiveNode
from repro.core import BicordCoordinator, BicordNode
from repro.experiments import build_office, format_table, location_powermap
from repro.traffic import WifiPacketSource, ZigbeeBurstSource

from .conftest import scaled


def _run(scheme: str, seed: int):
    office = build_office(seed=seed, location="A")
    cal = office.calibration
    WifiPacketSource(office.ctx, office.wifi_sender.mac, "F",
                     payload_bytes=cal.wifi_payload_bytes, interval=cal.wifi_interval)
    if scheme == "bicord":
        BicordCoordinator(office.wifi_receiver)
        node = BicordNode(office.zigbee_sender, "ZR", powermap=location_powermap("A"))
    elif scheme == "predictive":
        node = PredictiveNode(office.zigbee_sender, "ZR")
    else:
        node = CsmaNode(office.zigbee_sender, "ZR")
    n_bursts = scaled(8, minimum=4)
    ZigbeeBurstSource(office.ctx, node.offer_burst, n_packets=10, payload_bytes=120,
                      interval_mean=0.3, poisson=False, max_bursts=n_bursts)
    office.ctx.sim.run(until=n_bursts * 0.3 + 0.5)
    if hasattr(node, "stop"):
        node.stop()
    meter = office.zigbee_sender.energy
    delivered = node.packets_delivered
    return {
        "delivered": delivered,
        "offered": n_bursts * 10,
        "total_mj": meter.total_mj,
        "tx_mj": meter.tx_mj,
        "listen_mj": meter.listen_mj,
        "mj_per_packet": meter.total_mj / delivered if delivered else float("inf"),
    }


def test_energy_per_packet(benchmark, emit):
    def run():
        seeds = range(scaled(2, minimum=2))
        return {
            scheme: [_run(scheme, seed) for seed in seeds]
            for scheme in ("bicord", "csma", "predictive")
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for scheme, runs in results.items():
        delivered = np.mean([r["delivered"] for r in runs])
        offered = runs[0]["offered"]
        per = [r["mj_per_packet"] for r in runs if np.isfinite(r["mj_per_packet"])]
        rows.append([
            scheme,
            f"{delivered:.0f}/{offered}",
            float(np.mean([r["total_mj"] for r in runs])),
            float(np.mean([r["tx_mj"] for r in runs])),
            float(np.mean([r["listen_mj"] for r in runs])),
            float(np.mean(per)) if per else float("nan"),
        ])
    emit(
        "energy_per_packet",
        format_table(
            ["scheme", "delivered", "total_mJ", "tx_mJ", "listen_mJ", "mJ/pkt"],
            rows, title="Energy per delivered packet under saturated Wi-Fi "
                        "(Sec. VII-B)",
            float_format="{:.2f}",
        ),
    )
    bicord = results["bicord"]
    # BiCord delivers everything; the passive schemes deliver (almost) nothing
    # while burning comparable or more energy.
    for r in bicord:
        assert r["delivered"] == r["offered"]
    bicord_per = np.mean([r["mj_per_packet"] for r in bicord])
    for scheme in ("csma", "predictive"):
        for r in results[scheme]:
            assert r["delivered"] < 0.3 * r["offered"]
    predictive_listen = np.mean([r["listen_mj"] for r in results["predictive"]])
    assert predictive_listen > np.mean([r["total_mj"] for r in bicord])
    assert bicord_per < 1.0  # well under a millijoule per delivered packet

"""Shared infrastructure for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper and prints its
rows/series (also saved under ``results/``).  Absolute numbers come from our
RF simulator, not the authors' testbed; the quantities to compare are
orderings, trends, and approximate factors — see EXPERIMENTS.md.

``BICORD_BENCH_SCALE`` scales workload sizes (default 1.0); e.g. 0.3 for a
quick smoke run, 3.0 for tighter confidence intervals.

``BICORD_BENCH_JOBS`` sets the worker-process count the sweep-driven
benchmarks (Figs. 10/12, sweep scaling) fan out to; it defaults to the
machine's core count, capped at 4.  Parallel runs are bitwise-identical to
serial ones — only wall time changes.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

SCALE = float(os.environ.get("BICORD_BENCH_SCALE", "1.0"))
BENCH_JOBS = int(os.environ.get("BICORD_BENCH_JOBS", str(min(4, os.cpu_count() or 1))))


def scaled(n: int, minimum: int = 2) -> int:
    """Scale a workload size by BICORD_BENCH_SCALE, with a floor."""
    return max(minimum, int(round(n * SCALE)))


@pytest.fixture(scope="session")
def results_dir() -> Path:
    path = Path(__file__).resolve().parent.parent / "results"
    path.mkdir(exist_ok=True)
    return path


@pytest.fixture(scope="session")
def emit(results_dir):
    """Print a table/series block and persist it to results/<name>.txt."""

    def _emit(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _emit


# ----------------------------------------------------------------------
# Shared expensive computations (used by more than one benchmark file)
# ----------------------------------------------------------------------
@pytest.fixture(scope="session")
def signaling_grid():
    """Tables I and II share one sweep: location x power x packet count."""
    from repro.experiments import run_signaling_trial

    cache = {}

    def compute():
        if cache:
            return cache
        n_salvos = scaled(80, minimum=20)
        seeds = (1, 2)
        for location in "ABCD":
            for power in (0.0, -1.0, -3.0):
                for n_packets in (3, 4, 5):
                    trials = [
                        run_signaling_trial(
                            location=location, power_dbm=power,
                            n_control_packets=n_packets,
                            n_salvos=n_salvos, seed=seed,
                        )
                        for seed in seeds
                    ]
                    precision = sum(t.pr.precision for t in trials) / len(trials)
                    recall = sum(t.pr.recall for t in trials) / len(trials)
                    cache[(location, power, n_packets)] = (precision, recall)
        return cache

    return compute


@pytest.fixture(scope="session")
def learning_grid():
    """Figs. 8 and 9 share one sweep: burst size x step x location."""
    from repro.experiments import run_learning_trial

    cache = {}

    def compute():
        if cache:
            return cache
        seeds = range(scaled(4, minimum=2))
        for n_packets in (5, 10, 15):
            for step in (30e-3, 40e-3):
                for location in ("A", "B"):
                    trials = [
                        run_learning_trial(
                            n_packets=n_packets, step=step, location=location,
                            n_bursts=scaled(12, minimum=8), seed=seed,
                        )
                        for seed in seeds
                    ]
                    cache[(n_packets, step, location)] = trials
        return cache

    return compute

"""Table II — recall of cross-technology signaling.

Paper trends reproduced: recall increases with the number of control
packets; at A/B it decreases when the power drops; at C the best power is
-1 dBm (0 dBm trips the Wi-Fi sender's CCA); at D, closest to the Wi-Fi
sender, -3 dBm performs best.
"""

from repro.experiments import format_table
from repro.experiments.paper_data import (
    PAPER_TABLE2_RECALL,
    packet_count_trend_agreement,
    pairwise_order_agreement,
)


def test_table2_recall(benchmark, signaling_grid, emit):
    grid = benchmark.pedantic(signaling_grid, rounds=1, iterations=1)
    headers = ["Location"] + [
        f"{power:+.0f}dBm/{n}pkt" for power in (0, -1, -3) for n in (3, 4, 5)
    ]
    rows = []
    for location in "ABCD":
        row = [location]
        for power in (0.0, -1.0, -3.0):
            for n_packets in (3, 4, 5):
                _precision, recall = grid[(location, power, n_packets)]
                row.append(recall)
        rows.append(row)
    measured = {key: value[1] for key, value in grid.items()}
    trend = packet_count_trend_agreement(PAPER_TABLE2_RECALL, measured)
    keys = sorted(PAPER_TABLE2_RECALL)
    ordering = pairwise_order_agreement(
        [PAPER_TABLE2_RECALL[k] for k in keys],
        [measured[k] for k in keys],
        tolerance=0.05,
    )
    table = format_table(headers, rows,
                         title="Table II: recall of cross-technology signaling")
    emit(
        "table2_recall",
        table + "\n"
        + f"packet-count trend agreement with the paper: {trend:.2f}\n"
        + f"pairwise ordering agreement with the paper:  {ordering:.2f}",
    )

    def recall(location, power, n):
        return grid[(location, power, n)][1]

    # A: strongest signaling spot.
    assert recall("A", 0.0, 4) > 0.9
    # B: full power beats -3 dBm (distance to the Wi-Fi receiver dominates).
    assert recall("B", 0.0, 4) > recall("B", -3.0, 4) - 0.05
    # C: 0 dBm trips the Wi-Fi sender's CCA; -1 dBm must not be worse.
    assert recall("C", -1.0, 4) >= recall("C", 0.0, 4) - 0.05
    # D: closest to the Wi-Fi sender; -3 dBm is the best power.
    assert recall("D", -3.0, 4) >= recall("D", 0.0, 4) - 0.05

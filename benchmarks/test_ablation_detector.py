"""Ablation — the detector's continuity rule (N within T).

The paper picks N = 2 high-fluctuation samples within T = 5 ms to separate
ZigBee salvos from strong-noise spikes.  This sweep shows the trade-off the
choice navigates: N = 1 maximizes recall but fires on every noise spike
(precision collapses); larger N or smaller T suppresses noise but misses
weak salvos.
"""

from repro.core import DetectorConfig
from repro.experiments import format_table, run_signaling_trial

from .conftest import scaled


def test_ablation_detector(benchmark, emit):
    variants = [
        ("N=1, T=5ms", DetectorConfig(required_samples=1, window=5e-3)),
        ("N=2, T=2.5ms", DetectorConfig(required_samples=2, window=2.5e-3)),
        ("N=2, T=5ms (paper)", DetectorConfig(required_samples=2, window=5e-3)),
        ("N=2, T=10ms", DetectorConfig(required_samples=2, window=10e-3)),
        ("N=3, T=5ms", DetectorConfig(required_samples=3, window=5e-3)),
    ]

    def run():
        results = {}
        for label, config in variants:
            trial = run_signaling_trial(
                location="B", power_dbm=-3.0, n_control_packets=3,
                n_salvos=scaled(80, minimum=20), seed=4,
                detector_config=config,
            )
            results[label] = trial.pr
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [label, pr.precision, pr.recall, pr.false_positives]
        for label, pr in results.items()
    ]
    emit(
        "ablation_detector",
        format_table(["variant", "precision", "recall", "false positives"],
                     rows, title="Ablation: detector continuity rule (location B, "
                                 "-3 dBm, 3 packets)", float_format="{:.3f}"),
    )
    # N=1 recalls at least as well as N=2 but produces more false positives.
    assert results["N=1, T=5ms"].recall >= results["N=2, T=5ms (paper)"].recall - 0.02
    assert (results["N=1, T=5ms"].false_positives
            >= results["N=2, T=5ms (paper)"].false_positives)
    # Stricter rules can only lose recall.
    assert results["N=3, T=5ms"].recall <= results["N=2, T=5ms (paper)"].recall + 0.02
    assert results["N=2, T=2.5ms"].recall <= results["N=2, T=10ms"].recall + 0.02

"""Fig. 11 — impact of BiCord's parameters.

(a) ZigBee's channel share grows with packet length, total utilization
    roughly flat; (b) same for packets per burst; (c) utilization by sender
    location, ZigBee share strongest where signaling works best; (d) mean
    per-packet delay grows with burst size and stays under ~80 ms.
"""

from repro.experiments import CoexistenceConfig, format_table, run_coexistence

from .conftest import scaled

PAYLOADS = (20, 50, 80, 100)
BURSTS = (1, 5, 10, 15)
LOCATIONS = ("A", "B", "C", "D")


def test_fig11_parameters(benchmark, emit):
    def run():
        results = {"payload": {}, "burst": {}, "location": {}}
        n_bursts = scaled(25, minimum=10)
        for payload in PAYLOADS:
            results["payload"][payload] = run_coexistence(
                CoexistenceConfig(payload_bytes=payload, n_bursts=n_bursts, seed=5)
            )
        for n_packets in BURSTS:
            results["burst"][n_packets] = run_coexistence(
                CoexistenceConfig(burst_packets=n_packets, n_bursts=n_bursts, seed=5)
            )
        for location in LOCATIONS:
            results["location"][location] = run_coexistence(
                CoexistenceConfig(location=location, n_bursts=n_bursts, seed=5)
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    def rows_for(sweep, keys, key_label):
        rows = []
        for key in keys:
            r = results[sweep][key]
            rows.append([
                f"{key}", r.channel_utilization, r.zigbee_utilization,
                r.wifi_utilization, r.mean_delay * 1e3, r.delivery_ratio,
            ])
        headers = [key_label, "util", "zigbee_util", "wifi_util",
                   "mean_delay_ms", "delivery"]
        return format_table(headers, rows, float_format="{:.3f}")

    emit(
        "fig11_parameters",
        "\n\n".join([
            "Fig. 11a: vs ZigBee packet length (bytes)\n"
            + rows_for("payload", PAYLOADS, "payload_B"),
            "Fig. 11b: vs packets per burst\n"
            + rows_for("burst", BURSTS, "n_packets"),
            "Fig. 11c/d: vs sender location\n"
            + rows_for("location", LOCATIONS, "location"),
        ]),
    )

    # (a/b) ZigBee's share grows with offered ZigBee load.
    assert (results["payload"][100].zigbee_utilization
            > results["payload"][20].zigbee_utilization)
    assert (results["burst"][15].zigbee_utilization
            > results["burst"][1].zigbee_utilization)
    # (b/d) delay grows with burst size and stays bounded (paper: < 80 ms).
    assert (results["burst"][15].mean_delay > results["burst"][1].mean_delay)
    assert results["burst"][5].mean_delay < 0.08
    # (c) location A (best signaling) delivers everything.
    assert results["location"]["A"].delivery_ratio > 0.95
    # Total utilization stays in a band across the sweeps.  (Paper: ~80%
    # throughout; ours dips for the largest bursts because ZigBee's
    # application pacing gaps idle inside long white spaces — see
    # EXPERIMENTS.md for the accounting.)
    for sweep in ("payload", "burst"):
        for r in results[sweep].values():
            assert 0.4 < r.channel_utilization <= 1.0

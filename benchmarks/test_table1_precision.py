"""Table I — precision of cross-technology signaling.

Paper: precision grows with the number of control packets everywhere;
location A is best; C peaks at -1 dBm; D needs -3 dBm.  (Our simulated
noise floor is cleaner than the paper's office, so absolute precision runs
higher; the trends are the comparison target.)
"""

from repro.experiments import format_table


def test_table1_precision(benchmark, signaling_grid, emit):
    grid = benchmark.pedantic(signaling_grid, rounds=1, iterations=1)
    headers = ["Location"] + [
        f"{power:+.0f}dBm/{n}pkt" for power in (0, -1, -3) for n in (3, 4, 5)
    ]
    rows = []
    for location in "ABCD":
        row = [location]
        for power in (0.0, -1.0, -3.0):
            for n_packets in (3, 4, 5):
                precision, _recall = grid[(location, power, n_packets)]
                row.append(precision)
        rows.append(row)
    emit(
        "table1_precision",
        format_table(headers, rows,
                     title="Table I: precision of cross-technology signaling"),
    )
    # Shape assertions: more control packets never hurt much, A is strong.
    for location in "ABCD":
        for power in (0.0, -1.0, -3.0):
            p3 = grid[(location, power, 3)][0]
            p5 = grid[(location, power, 5)][0]
            assert p5 >= p3 - 0.1
    assert grid[("A", 0.0, 4)][0] > 0.9

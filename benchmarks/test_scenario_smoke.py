"""Smoke-run every library scenario with a capped event budget.

Not a figure reproduction: this is the CI canary for the scenario library.
Each built-in scenario must compile and simulate a few thousand events
without raising, and must report a well-formed :class:`ScenarioResult`.
Runs in the non-blocking ``scenario-smoke`` CI lane (see
.github/workflows/ci.yml), not in the tier-1 suite.
"""

import pytest

from repro.scenarios import (
    ScenarioResult,
    compile_scenario,
    get_scenario,
    scenario_names,
)

MAX_EVENTS = 5000


@pytest.mark.parametrize("name", scenario_names())
def test_library_scenario_smoke(name):
    spec = get_scenario(name)
    result = compile_scenario(spec, seed=0).run(max_events=MAX_EVENTS)
    assert isinstance(result, ScenarioResult)
    assert result.scenario == name
    assert result.spec_fingerprint == spec.fingerprint()
    assert result.events_processed > 0
    summary = result.summary()
    assert 0.0 <= summary["delivery_ratio"] <= 1.0
    assert 0.0 <= summary["utilization"] <= 1.5  # airtime ratio, loosely bounded


def test_campus_roaming_produces_handoffs():
    """The roaming scenarios aren't just compilable — run uncapped, the
    campus walk must actually cross an AP boundary and record the handoff."""
    spec = get_scenario("campus-roaming")
    result = compile_scenario(spec, seed=0).run()
    assert result.extra["roam_handoffs"] >= 1
    assert result.extra["roam_gap_ms"] > 0
    assert result.wifi["ped"].delivered > 0  # uplink survived the handoffs

"""Sec. VII-B — energy cost of BiCord on ZigBee nodes.

Paper: delivering ten 120 B packets per burst under strong Wi-Fi costs
BiCord 10-21% more energy than sending them on a clear channel — less than
two interference-induced retransmissions would cost — because a salvo is
usually just one or two control packets and the learned white space removes
repeated signaling.
"""

from repro.devices.energy import RX_CURRENT_MA, SUPPLY_VOLTAGE, tx_current_ma
from repro.experiments import format_table, run_energy_trial
from repro.mac.frames import zigbee_data_frame

from .conftest import scaled


def test_energy_overhead(benchmark, emit):
    result = benchmark.pedantic(
        lambda: run_energy_trial(n_packets=10, payload_bytes=120,
                                 n_bursts=scaled(8, minimum=4), seed=1),
        rounds=1, iterations=1,
    )
    # Cost of one interference-induced retransmission of a 120 B data packet.
    retx_mj = (
        zigbee_data_frame("ZS", "ZR", 120).duration()
        * tx_current_ma(0.0) * SUPPLY_VOLTAGE
        + 1e-3 * RX_CURRENT_MA * SUPPLY_VOLTAGE  # ACK wait
    )
    rows = [
        ["BiCord under Wi-Fi (mJ)", result.bicord_mj],
        ["clear channel (mJ)", result.clear_channel_mj],
        ["overhead (%)", result.overhead_fraction * 100.0],
        ["control packets sent", float(result.control_packets)],
        ["2 retransmissions equivalent (mJ)", 2 * retx_mj * 8],
    ]
    emit(
        "energy_overhead",
        format_table(["metric", "value"], rows,
                     title="Sec. VII-B: energy overhead (paper: 10-21%)",
                     float_format="{:.2f}"),
    )
    assert 0.0 < result.overhead_fraction < 0.8

"""Fig. 10 — BiCord vs ECC: utilization (a), delay (b), throughput (c).

Paper headlines: BiCord's channel utilization stays above ~80% at every
burst interval and beats ECC by up to 50.6% at the sparsest traffic (2 s);
BiCord's mean ZigBee delay stays in the tens of ms at every interval while
ECC's runs 100-300 ms (84.2% average reduction); BiCord's throughput tracks
the offered load while ECC is capped by its fixed window.
"""

import numpy as np

from repro.experiments import SweepEngine, format_table

from .conftest import BENCH_JOBS, scaled

#: The paper's burst intervals (13/26/52/128/256 ticks).
INTERVALS = (101.56e-3, 203.12e-3, 406.24e-3, 1.0, 2.0)
SCHEMES = (
    ("bicord", None),
    ("ecc", 20e-3),
    ("ecc", 30e-3),
    ("ecc", 40e-3),
)


def _bursts_for(interval: float) -> int:
    """Enough bursts per config for stable means, capped for long intervals."""
    return scaled(max(8, min(40, int(6.0 / interval))), minimum=5)


def test_fig10_comparison(benchmark, emit):
    # The full grid runs through the sweep engine so BICORD_BENCH_JOBS
    # worker processes share the work; results are identical to a serial run.
    keys = []
    trials = []
    for interval in INTERVALS:
        for scheme, whitespace in SCHEMES:
            label = scheme if whitespace is None else f"ecc-{int(whitespace * 1e3)}ms"
            keys.append((interval, label))
            trials.append(dict(
                scheme=scheme,
                ecc_whitespace=whitespace or 20e-3,
                burst_interval=interval,
                n_bursts=_bursts_for(interval),
            ))

    def run():
        engine = SweepEngine(jobs=BENCH_JOBS, cache=False)
        sweep = engine.run_trials("coexistence", trials, seeds=(3,))
        return dict(zip(keys, sweep.results))

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    labels = ["bicord", "ecc-20ms", "ecc-30ms", "ecc-40ms"]
    blocks = []
    for metric, fmt in [
        ("utilization", "{:.3f}"),
        ("mean_delay_ms", "{:.1f}"),
        ("throughput_kbps", "{:.2f}"),
    ]:
        rows = []
        for label in labels:
            row = [label]
            for interval in INTERVALS:
                r = results[(interval, label)]
                value = {
                    "utilization": r.channel_utilization,
                    "mean_delay_ms": r.mean_delay * 1e3,
                    "throughput_kbps": r.zigbee_throughput_bps / 1e3,
                }[metric]
                row.append(value)
            rows.append(row)
        headers = ["scheme"] + [f"{i * 1e3:.0f}ms" for i in INTERVALS]
        blocks.append(format_table(headers, rows, title=f"Fig. 10 {metric}",
                                   float_format=fmt))
    emit("fig10_comparison", "\n\n".join(blocks))

    # --- Shape assertions -------------------------------------------------
    # (a) at the 2 s interval BiCord's utilization clearly beats wide-window ECC.
    bicord_2s = results[(2.0, "bicord")].channel_utilization
    ecc40_2s = results[(2.0, "ecc-40ms")].channel_utilization
    assert bicord_2s > ecc40_2s * 1.2
    # (b) BiCord delay is far below every ECC variant at dense traffic.
    bicord_delay = results[(203.12e-3, "bicord")].mean_delay
    for label in labels[1:]:
        assert bicord_delay < results[(203.12e-3, label)].mean_delay
    assert bicord_delay < 0.08
    # (c) BiCord delivers at least as much throughput as any ECC variant.
    for interval in INTERVALS:
        bicord_thr = results[(interval, "bicord")].zigbee_throughput_bps
        for label in labels[1:]:
            assert bicord_thr >= results[(interval, label)].zigbee_throughput_bps * 0.85
    # Average delay reduction vs ECC across the grid (paper: 84.2%).
    reductions = []
    for interval in INTERVALS:
        bicord_d = results[(interval, "bicord")].mean_delay
        ecc_d = np.mean([results[(interval, lab)].mean_delay for lab in labels[1:]])
        if ecc_d > 0:
            reductions.append(1.0 - bicord_d / ecc_d)
    assert np.mean(reductions) > 0.4

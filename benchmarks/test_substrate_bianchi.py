"""Substrate validation — simulated 802.11 DCF vs Bianchi's model.

Not a paper figure: this bench certifies the MAC layer all coexistence
results stand on.  Saturation throughput and collision probability of the
simulated DCF must track the analytical model across contention levels.
"""

import math

from repro.analysis import saturation_throughput
from repro.context import build_context
from repro.devices import WifiDevice
from repro.experiments import format_table
from repro.phy.propagation import FadingModel, PathLossModel, Position
from repro.traffic import WifiPacketSource

from .conftest import scaled


def _simulate(n, payload=1000, rate=24.0, duration=1.0, seed=1):
    ctx = build_context(
        seed=seed,
        path_loss=PathLossModel(),
        fading=FadingModel(shadowing_sigma_db=0.0, fading_sigma_db=0.0),
        trace_kinds=set(),
    )
    WifiDevice(ctx, "AP", Position(0, 0), data_rate_mbps=rate)
    senders = []
    for i in range(n):
        angle = 2 * math.pi * i / max(n, 1)
        device = WifiDevice(
            ctx, f"S{i}",
            Position(0.5 * math.cos(angle), 0.5 * math.sin(angle)),
            data_rate_mbps=rate,
        )
        WifiPacketSource(ctx, device.mac, "AP", payload_bytes=payload,
                         interval=1e-4, queue_limit=10**6, name=f"src{i}")
        senders.append(device)
    ctx.sim.run(until=duration)
    bits = 8 * payload * sum(s.mac.data_delivered for s in senders)
    sent = sum(s.mac.data_sent for s in senders)
    missed = sum(s.mac.acks_missed for s in senders)
    return bits / duration, missed / max(sent, 1)


def test_substrate_bianchi(benchmark, emit):
    def run():
        duration = 0.5 * scaled(2, minimum=1)
        results = {}
        for n in (1, 2, 5, 10):
            model = saturation_throughput(n, payload_bytes=1000, rate_mbps=24.0)
            sim_thr, sim_coll = _simulate(n, duration=duration)
            results[n] = (model, sim_thr, sim_coll)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for n, (model, sim_thr, sim_coll) in results.items():
        rows.append([
            n, model.throughput_bps / 1e6, sim_thr / 1e6,
            sim_thr / model.throughput_bps, model.p_collision, sim_coll,
        ])
    emit(
        "substrate_bianchi",
        format_table(
            ["stations", "model Mbps", "sim Mbps", "ratio", "model p", "sim p"],
            rows, title="Substrate validation: DCF vs Bianchi (1000 B @ 24 Mbps)",
            float_format="{:.3f}",
        ),
    )
    for n, (model, sim_thr, sim_coll) in results.items():
        assert abs(sim_thr / model.throughput_bps - 1.0) < 0.12
        assert abs(sim_coll - model.p_collision) < 0.07

"""Motivation bench (Sec. III-B) — why signaling latency is the crux.

The paper rejects packet-level CTC for the request channel because its
synchronization alone costs ~110 ms (AdaComm), "neutralizing the benefits
of the coordination scheme."  This bench runs BiCord's exact protocol with
the request carried over such a channel, sweeping the CTC latency, and
shows the delay benefit evaporating: at 110 ms the coordinated scheme is
*worse than ECC*.
"""

import numpy as np

from repro.experiments import CoexistenceConfig, format_table, run_coexistence

from .conftest import scaled

LATENCIES = (5e-3, 30e-3, 110e-3)


def test_motivation_slow_ctc(benchmark, emit):
    def run():
        n_bursts = scaled(20, minimum=10)
        results = {}
        results["bicord"] = run_coexistence(
            CoexistenceConfig(scheme="bicord", n_bursts=n_bursts, seed=3)
        )
        results["ecc-30ms"] = run_coexistence(
            CoexistenceConfig(scheme="ecc", ecc_whitespace=30e-3,
                              n_bursts=n_bursts, seed=3)
        )
        # Sweep the CTC latency by monkey-constructing through the runner's
        # scheme plus per-run default (110 ms) and custom builds.
        from repro.baselines import SlowCtcCoordinator, SlowCtcNode
        from repro.experiments.metrics import AirtimeProbe, CoexistenceResult
        from repro.experiments.topology import build_office
        from repro.traffic import WifiPacketSource, ZigbeeBurstSource

        for latency in LATENCIES:
            office = build_office(seed=3, location="A")
            cal = office.calibration
            WifiPacketSource(office.ctx, office.wifi_sender.mac, "F",
                             payload_bytes=cal.wifi_payload_bytes,
                             interval=cal.wifi_interval)
            coordinator = SlowCtcCoordinator(office.wifi_receiver)
            node = SlowCtcNode(office.zigbee_sender, "ZR", coordinator,
                               ctc_latency=latency)
            source = ZigbeeBurstSource(
                office.ctx, node.offer_burst, n_packets=5, payload_bytes=50,
                interval_mean=0.2, poisson=True, max_bursts=n_bursts,
            )
            probe = AirtimeProbe(
                [office.wifi_sender.radio, office.wifi_receiver.radio],
                [office.zigbee_sender.radio, office.zigbee_receiver.radio],
            )
            probe.start(0.0)
            office.ctx.sim.run(until=n_bursts * 0.2 + 2.0)
            results[f"ctc-{latency * 1e3:.0f}ms"] = CoexistenceResult(
                scheme="slow-ctc", location="A", duration=office.ctx.sim.now,
                utilization=probe.snapshot(office.ctx.sim.now),
                zigbee_delays=list(node.packet_delays),
                zigbee_packets_offered=source.bursts_generated * 5,
                zigbee_packets_delivered=node.packets_delivered,
                zigbee_payload_bytes=node.delivered_payload_bytes,
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for label, r in results.items():
        rows.append([label, r.mean_delay * 1e3, r.channel_utilization,
                     r.delivery_ratio])
    emit(
        "motivation_slow_ctc",
        format_table(
            ["scheme", "mean_delay_ms", "utilization", "delivery"],
            rows, title="Sec. III-B: coordination over slow CTC "
                        "(request latency sweep)",
            float_format="{:.3f}",
        ),
    )
    bicord_delay = results["bicord"].mean_delay
    ecc_delay = results["ecc-30ms"].mean_delay
    # Latency monotonically erodes the benefit...
    delays = [results[f"ctc-{l * 1e3:.0f}ms"].mean_delay for l in LATENCIES]
    assert all(a <= b * 1.25 for a, b in zip(delays, delays[1:]))
    # ...and at AdaComm's 110 ms the coordinated scheme loses even to ECC.
    assert delays[-1] > ecc_delay
    assert bicord_delay < delays[0] * 1.5

"""Sweep engine scaling — serial vs parallel wall time on one grid.

Runs the same small coexistence grid with ``jobs=1`` and with
``jobs=BICORD_BENCH_JOBS`` (caching disabled for both so every trial
executes), asserts the two runs are bitwise-identical, and records both
wall times plus the speedup into the bench trajectory.  No speedup is
*asserted*: on a single-core container process fan-out can only add
overhead; the numbers are there to track the trend on real hardware.
"""

import time

from repro.experiments import SweepEngine, SweepSpec, format_table
from repro.serialization import canonical_dumps

from .conftest import BENCH_JOBS, scaled


def _spec() -> SweepSpec:
    return SweepSpec(
        experiment="coexistence",
        grid={
            "scheme": ["bicord", "ecc"],
            "burst_interval": [200e-3, 1.0],
        },
        base={"n_bursts": scaled(8, minimum=4)},
        seeds=tuple(range(scaled(2, minimum=2))),
    )


def test_sweep_scaling(benchmark, emit):
    spec = _spec()

    serial_start = time.perf_counter()
    serial = SweepEngine(jobs=1, cache=False).run(spec)
    serial_time = time.perf_counter() - serial_start

    def run_parallel():
        return SweepEngine(jobs=BENCH_JOBS, cache=False).run(spec)

    parallel = benchmark.pedantic(run_parallel, rounds=1, iterations=1)
    parallel_time = parallel.elapsed

    # Determinism: the parallel run is bitwise-identical to the serial one.
    assert len(parallel.records) == len(serial.records)
    for s_rec, p_rec in zip(serial.records, parallel.records):
        assert s_rec.key == p_rec.key
        assert canonical_dumps(s_rec.result) == canonical_dumps(p_rec.result)
    assert parallel.executed == len(parallel.records)

    speedup = serial_time / parallel_time if parallel_time > 0 else float("nan")
    benchmark.extra_info["serial_s"] = round(serial_time, 4)
    benchmark.extra_info["parallel_s"] = round(parallel_time, 4)
    benchmark.extra_info["jobs"] = BENCH_JOBS
    benchmark.extra_info["speedup"] = round(speedup, 3)

    emit(
        "sweep_scaling",
        format_table(
            ["trials", "jobs", "serial_s", "parallel_s", "speedup"],
            [[len(serial.records), BENCH_JOBS, serial_time, parallel_time, speedup]],
            title="Sweep scaling: serial vs parallel wall time",
            float_format="{:.3f}",
        ),
    )

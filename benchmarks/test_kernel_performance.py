"""Simulator performance: how much channel time a wall-clock second buys.

Unlike the reproduction benches (one expensive round each), these are
classic micro/meso benchmarks with multiple rounds: event-queue throughput,
medium transmit cost, and the simulated-seconds-per-wall-second of the full
paper scenario.  They guard against performance regressions that would make
the figure sweeps impractical.
"""

import time

import pytest

from repro.context import build_context
from repro.devices import WifiDevice, ZigbeeDevice
from repro.phy.medium import Technology
from repro.phy.propagation import FadingModel, PathLossModel, Position
from repro.phy.rssi import RssiSampler, set_default_capture_mode
from repro.sim.engine import Simulator
from repro.traffic import WifiPacketSource


def test_engine_event_throughput(benchmark):
    """Schedule + fire 10k no-op events on the default scheduler backend.

    This is the headline engine number tracked in ``BENCH_kernels.json``;
    the default backend is the calendar queue, so this row moved when the
    default flipped (the heap oracle stays tracked by the pinned variant
    below).
    """

    def run():
        sim = Simulator()
        for i in range(10_000):
            sim.schedule(i * 1e-6, _noop)
        sim.run()
        return sim.events_processed

    events = benchmark(run)
    assert events == 10_000


@pytest.mark.parametrize("backend", ["heap", "calendar"])
def test_engine_event_throughput_backend(benchmark, backend):
    """The same 10k-event workload pinned to each scheduler backend.

    Keeping both rows in the benchmark JSON makes the backend gap itself a
    tracked number, independent of which backend is the session default.
    """

    def run():
        sim = Simulator(backend=backend)
        for i in range(10_000):
            sim.schedule(i * 1e-6, _noop)
        sim.run()
        return sim.events_processed

    events = benchmark(run)
    assert events == 10_000


def _noop():
    pass


def test_medium_transmit_cost(benchmark):
    """1000 transmissions across a 6-radio medium (the office population)."""

    def setup():
        ctx = build_context(
            seed=1,
            path_loss=PathLossModel(),
            fading=FadingModel(shadowing_sigma_db=0.0, fading_sigma_db=0.0),
            trace_kinds=set(),
        )
        radios = []
        for i in range(6):
            device = ZigbeeDevice(ctx, f"Z{i}", Position(float(i), 0.0))
            device.radio.enabled = False  # pure energy accounting, no locking
            radios.append(device.radio)
        return ctx, radios

    def run():
        ctx, radios = setup()
        source = radios[0]
        for i in range(1000):
            ctx.medium.transmit(source, 1e-5, 0.0, source.band, Technology.ZIGBEE)
            ctx.sim.run(until=(i + 1) * 2e-5)
        return ctx.sim.events_processed

    benchmark(run)


@pytest.mark.parametrize("kernel", ["legacy", "vector"])
def test_medium_broadcast_cost(benchmark, emit, kernel):
    """500 broadcasts across a 150-radio medium, per kernel.

    The purest view of the medium hot path: one transmitter, everyone else
    listening, no MAC/traffic noise.  Fading is enabled so the vector kernel
    pays its per-frame draw machinery too, not just the link matrix.  The
    two rows in ``BENCH_kernels.json`` track the per-broadcast gap directly
    (the scenario-level gap lives in ``test_scale_ceiling.py``).
    """
    N_RADIOS = 150
    N_BROADCASTS = 500

    def setup():
        ctx = build_context(
            seed=1,
            path_loss=PathLossModel(),
            fading=FadingModel(shadowing_sigma_db=2.0, fading_sigma_db=2.5),
            trace_kinds=set(),
            medium_kernel=kernel,
        )
        radios = []
        for i in range(N_RADIOS):
            device = ZigbeeDevice(ctx, f"Z{i}", Position(float(i % 25), float(i // 25)))
            device.radio.enabled = False  # pure energy accounting, no locking
            radios.append(device.radio)
        return ctx, radios

    def run():
        ctx, radios = setup()
        source = radios[0]
        for i in range(N_BROADCASTS):
            ctx.medium.transmit(source, 1e-5, 0.0, source.band, Technology.ZIGBEE)
            ctx.sim.run(until=(i + 1) * 2e-5)
        return ctx.sim.events_processed

    benchmark(run)
    wall = benchmark.stats.stats.mean
    emit(
        f"medium_broadcast_{kernel}",
        f"medium broadcast ({kernel}): {N_BROADCASTS} broadcasts across "
        f"{N_RADIOS} radios in {wall * 1e3:.1f} ms "
        f"-> {wall / N_BROADCASTS * 1e6:.1f} us/broadcast",
    )


def test_scenario_realtime_factor(benchmark, emit):
    """Simulated seconds of the saturated-Wi-Fi office per wall second."""
    SIM_SECONDS = 2.0

    def run():
        ctx = build_context(
            seed=1,
            path_loss=PathLossModel(),
            fading=FadingModel(),
            trace_kinds=set(),
        )
        sender = WifiDevice(ctx, "E", Position(0, 0), data_rate_mbps=1.0)
        WifiDevice(ctx, "F", Position(3, 0), data_rate_mbps=1.0, with_csi=True)
        ZigbeeDevice(ctx, "ZS", Position(2.6, 0.9))
        ZigbeeDevice(ctx, "ZR", Position(3.8, 1.3))
        WifiPacketSource(ctx, sender.mac, "F", payload_bytes=100, interval=1e-3)
        ctx.sim.run(until=SIM_SECONDS)
        return ctx.sim.events_processed

    events = benchmark(run)
    stats = benchmark.stats.stats
    factor = SIM_SECONDS / stats.mean
    emit(
        "kernel_performance",
        f"scenario realtime factor: {factor:.1f}x "
        f"({events / SIM_SECONDS:.0f} events per simulated second, "
        f"{events / stats.mean:.0f} events/s wall)",
    )
    assert factor > 1.0  # the simulator must outrun the channel it models


def _rssi_capture_campaign(mode: str, n_captures: int) -> int:
    """Back-to-back 5 ms @ 40 kHz captures on a quiet medium (pure sampler cost)."""
    ctx = build_context(
        seed=2,
        path_loss=PathLossModel(),
        fading=FadingModel(),
        trace_kinds=set(),
    )
    device = ZigbeeDevice(ctx, "Z", Position(0.0, 0.0))
    sampler = RssiSampler(device.radio, ctx.sim, ctx.streams, mode=mode)
    captured = []

    def chain(i: int = 0) -> None:
        if i < n_captures:
            sampler.capture(
                5e-3, 40e3, lambda trace, i=i: (captured.append(trace), chain(i + 1))
            )

    chain()
    ctx.sim.run(until=n_captures * 5e-3 + 1.0)
    assert len(captured) == n_captures
    return sum(len(t) for t in captured)


def test_rssi_capture_cost(benchmark, emit):
    """Segment-based capture vs the legacy per-sample path (ZiSense workload).

    The segment path schedules one completion event per capture and
    synthesizes the trace vectorized, so its cost is independent of the
    sample rate; the legacy path pays one simulator event per sample.
    """
    N_CAPTURES = 25

    samples = benchmark(_rssi_capture_campaign, "segment", N_CAPTURES)
    assert samples == N_CAPTURES * 200

    legacy = min(
        _timed(_rssi_capture_campaign, "per_sample", N_CAPTURES) for _ in range(3)
    )
    factor = legacy / benchmark.stats.stats.mean
    emit(
        "rssi_capture_cost",
        f"rssi capture speedup: {factor:.1f}x "
        f"(segment {benchmark.stats.stats.mean * 1e3:.2f} ms, "
        f"per-sample {legacy * 1e3:.2f} ms for {N_CAPTURES} captures)",
    )
    assert factor >= 5.0


def test_rssi_capture_cost_legacy(benchmark):
    """Reference cost of the per-sample path (baseline row in BENCH_kernels.json)."""
    samples = benchmark(_rssi_capture_campaign, "per_sample", 25)
    assert samples == 25 * 200


def _timed(fn, *args):
    start = time.perf_counter()
    fn(*args)
    return time.perf_counter() - start


def test_rssi_scenario_realtime_factor(benchmark, emit):
    """Full CTI-collection scenario: simulated seconds per wall second.

    Unlike :func:`test_scenario_realtime_factor` (which never touches the
    RSSI register), this runs the Sec. IV trace-collection campaign — Wi-Fi
    traffic plus a ZigBee collector sampling 5 ms @ 40 kHz per trace — once
    with the segment capture path and once with the legacy path, and asserts
    the end-to-end improvement the fast path must deliver.
    """
    from repro.experiments.cti_dataset import collect_traces

    N_TRACES = 40

    def campaign() -> int:
        traces, _floor = collect_traces("wifi", n_traces=N_TRACES, seed=11)
        return len(traces)

    n = benchmark(campaign)
    assert n == N_TRACES

    previous = set_default_capture_mode("per_sample")
    try:
        legacy = min(_timed(campaign) for _ in range(3))
    finally:
        set_default_capture_mode(previous)
    # Min-to-min: the legacy side is already a best-of-3, so comparing it
    # against the segment *mean* makes the ratio collapse under machine
    # noise (long benchmark sessions inflate the mean with outlier rounds).
    factor = legacy / benchmark.stats.stats.min
    emit(
        "rssi_scenario_realtime_factor",
        f"cti campaign speedup: {factor:.2f}x "
        f"(segment {benchmark.stats.stats.min * 1e3:.1f} ms, "
        f"per-sample {legacy * 1e3:.1f} ms for {N_TRACES} traces)",
    )
    # The bound was 1.3 under the legacy medium; the vector kernel serves
    # per-sample energy queries from its interference accumulators, which
    # narrowed the end-to-end gap to ~1.2-1.4x (the capture path in
    # isolation is still >=5x — see test_rssi_capture_cost).
    assert factor >= 1.1

"""Simulator performance: how much channel time a wall-clock second buys.

Unlike the reproduction benches (one expensive round each), these are
classic micro/meso benchmarks with multiple rounds: event-queue throughput,
medium transmit cost, and the simulated-seconds-per-wall-second of the full
paper scenario.  They guard against performance regressions that would make
the figure sweeps impractical.
"""

from repro.context import build_context
from repro.devices import WifiDevice, ZigbeeDevice
from repro.phy.medium import Technology
from repro.phy.propagation import FadingModel, PathLossModel, Position
from repro.sim.engine import Simulator
from repro.traffic import WifiPacketSource


def test_engine_event_throughput(benchmark):
    """Schedule + fire 10k no-op events."""

    def run():
        sim = Simulator()
        for i in range(10_000):
            sim.schedule(i * 1e-6, _noop)
        sim.run()
        return sim.events_processed

    events = benchmark(run)
    assert events == 10_000


def _noop():
    pass


def test_medium_transmit_cost(benchmark):
    """1000 transmissions across a 6-radio medium (the office population)."""

    def setup():
        ctx = build_context(
            seed=1,
            path_loss=PathLossModel(),
            fading=FadingModel(shadowing_sigma_db=0.0, fading_sigma_db=0.0),
            trace_kinds=set(),
        )
        radios = []
        for i in range(6):
            device = ZigbeeDevice(ctx, f"Z{i}", Position(float(i), 0.0))
            device.radio.enabled = False  # pure energy accounting, no locking
            radios.append(device.radio)
        return ctx, radios

    def run():
        ctx, radios = setup()
        source = radios[0]
        for i in range(1000):
            ctx.medium.transmit(source, 1e-5, 0.0, source.band, Technology.ZIGBEE)
            ctx.sim.run(until=(i + 1) * 2e-5)
        return ctx.sim.events_processed

    benchmark(run)


def test_scenario_realtime_factor(benchmark, emit):
    """Simulated seconds of the saturated-Wi-Fi office per wall second."""
    SIM_SECONDS = 2.0

    def run():
        ctx = build_context(
            seed=1,
            path_loss=PathLossModel(),
            fading=FadingModel(),
            trace_kinds=set(),
        )
        sender = WifiDevice(ctx, "E", Position(0, 0), data_rate_mbps=1.0)
        WifiDevice(ctx, "F", Position(3, 0), data_rate_mbps=1.0, with_csi=True)
        ZigbeeDevice(ctx, "ZS", Position(2.6, 0.9))
        ZigbeeDevice(ctx, "ZR", Position(3.8, 1.3))
        WifiPacketSource(ctx, sender.mac, "F", payload_bytes=100, interval=1e-3)
        ctx.sim.run(until=SIM_SECONDS)
        return ctx.sim.events_processed

    events = benchmark(run)
    stats = benchmark.stats.stats
    factor = SIM_SECONDS / stats.mean
    emit(
        "kernel_performance",
        f"scenario realtime factor: {factor:.1f}x "
        f"({events / SIM_SECONDS:.0f} events per simulated second, "
        f"{events / stats.mean:.0f} events/s wall)",
    )
    assert factor > 1.0  # the simulator must outrun the channel it models

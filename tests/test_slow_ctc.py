"""Tests for the slow-CTC baseline (Sec. III-B motivation)."""

import numpy as np
import pytest

from repro.baselines import SlowCtcCoordinator, SlowCtcNode
from repro.experiments import CoexistenceConfig, run_coexistence
from repro.experiments.topology import build_office
from repro.traffic import Burst, WifiPacketSource, ZigbeeBurstSource


def build(seed=1, latency=110e-3, reliability=1.0):
    office = build_office(seed=seed, location="A")
    cal = office.calibration
    WifiPacketSource(
        office.ctx, office.wifi_sender.mac, "F",
        payload_bytes=cal.wifi_payload_bytes, interval=cal.wifi_interval,
    )
    coordinator = SlowCtcCoordinator(office.wifi_receiver)
    node = SlowCtcNode(office.zigbee_sender, "ZR", coordinator,
                       ctc_latency=latency, ctc_reliability=reliability)
    return office, coordinator, node


def test_delivers_bursts_eventually():
    office, coordinator, node = build()
    ZigbeeBurstSource(
        office.ctx, node.offer_burst, n_packets=5, payload_bytes=50,
        interval_mean=0.3, poisson=False, max_bursts=5,
    )
    office.ctx.sim.run(until=3.0)
    assert node.packets_delivered == 25
    assert coordinator.grants_issued >= 5


def test_requests_pay_the_ctc_latency():
    """The first packet of a burst cannot be served before the CTC latency."""
    office, coordinator, node = build(latency=110e-3)
    node.offer_burst(Burst(created_at=0.0, n_packets=3, payload_bytes=50, burst_id=1))
    office.ctx.sim.run(until=1.0)
    assert node.packets_delivered == 3
    assert min(node.packet_delays) > 0.1


def test_lost_requests_are_retried():
    office, coordinator, node = build(seed=5, reliability=0.5)
    ZigbeeBurstSource(
        office.ctx, node.offer_burst, n_packets=3, payload_bytes=50,
        interval_mean=0.4, poisson=False, max_bursts=4,
    )
    office.ctx.sim.run(until=4.0)
    assert node.packets_delivered == 12
    assert node.requests_lost > 0
    assert node.requests_sent > node.requests_lost


def test_slow_ctc_much_slower_than_bicord():
    """The paper's Sec. III-B claim, measured: ~110 ms of CTC sync latency
    neutralizes the coordination benefit (delays beyond even ECC's)."""
    bicord = run_coexistence(CoexistenceConfig(scheme="bicord", n_bursts=12, seed=3))
    slow = run_coexistence(CoexistenceConfig(scheme="slow-ctc", n_bursts=12, seed=3))
    assert slow.delivery_ratio > 0.9
    assert slow.mean_delay > 4 * bicord.mean_delay
    assert slow.mean_delay > 0.11  # cannot beat the sync latency


def test_scheme_reachable_from_config():
    result = run_coexistence(CoexistenceConfig(scheme="slow-ctc", n_bursts=5, seed=7))
    assert result.scheme == "slow-ctc"
    assert result.whitespaces_issued > 0

"""Mobility & multi-AP roaming subsystem: trajectories, policies, handoffs.

Covers the pure layers (trajectory kinematics, AP-selection policies, the
spec-side waypoint rounding that keeps fingerprints stable), the medium's
batched ``move_many`` invalidation + rebuild telemetry, and the wired-up
stack: a compiled roaming scenario must record handoffs, and the
``roaming`` experiment must carry its scenario fingerprint into the sweep
cache key.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro import telemetry
from repro.context import build_context
from repro.devices.base import Radio
from repro.experiments import get_experiment, run_experiment
from repro.experiments.roaming import RoamingTrialConfig, run_roaming_trial
from repro.mobility import (
    AP_SELECTION_POLICIES,
    APReading,
    RandomWaypointTrajectory,
    StickyPolicy,
    StrongestRssiPolicy,
    TrajectoryProcess,
    WaypointTrajectory,
    ap_selection_policy_names,
    make_ap_selection_policy,
)
from repro.phy.medium import Technology
from repro.phy.propagation import Position
from repro.phy.spectrum import zigbee_channel
from repro.scenarios import (
    MobilitySpec,
    ScenarioSpec,
    compile_scenario,
    get_scenario,
)


# ----------------------------------------------------------------------
# Trajectory kinematics
# ----------------------------------------------------------------------
def test_waypoint_trajectory_interpolates_legs():
    traj = WaypointTrajectory([(0.0, 0.0), (10.0, 0.0), (10.0, 5.0)], speed_mps=2.0)
    assert traj.position_at(0.0) == (0.0, 0.0)
    assert traj.position_at(2.5) == (5.0, 0.0)
    assert traj.position_at(5.0) == (10.0, 0.0)
    assert traj.position_at(6.0) == (10.0, 2.0)
    assert traj.end_time == pytest.approx(7.5)
    # Past the end the walker parks at the last waypoint.
    assert traj.position_at(100.0) == (10.0, 5.0)


def test_waypoint_trajectory_loop_wraps():
    traj = WaypointTrajectory(
        [(0.0, 0.0), (4.0, 0.0), (4.0, 4.0), (0.0, 4.0)], speed_mps=4.0, loop=True
    )
    assert traj.end_time is None  # endless
    period = traj.path_time
    assert period == pytest.approx(4.0)  # 16 m perimeter at 4 m/s
    for t in (0.3, 1.7, 2.9):
        assert traj.position_at(t + period) == pytest.approx(traj.position_at(t))


def test_waypoint_trajectory_per_leg_speeds():
    traj = WaypointTrajectory(
        [(0.0, 0.0), (6.0, 0.0), (6.0, 3.0)], leg_speeds=(3.0, 1.0)
    )
    assert traj.position_at(2.0) == (6.0, 0.0)  # first leg: 6 m at 3 m/s
    assert traj.position_at(3.5) == (6.0, 1.5)  # second leg: 3 m at 1 m/s
    with pytest.raises(ValueError):
        WaypointTrajectory([(0, 0), (1, 0)], leg_speeds=(1.0, 2.0))
    with pytest.raises(ValueError):
        WaypointTrajectory([(0, 0)])


def test_random_waypoint_is_seed_deterministic_and_bounded():
    kwargs = dict(area=(8.0, 4.0), speed_mps=2.0, pause=0.5, origin=(1.0, 1.0))
    a = RandomWaypointTrajectory(seed=7, **kwargs)
    b = RandomWaypointTrajectory(seed=7, **kwargs)
    c = RandomWaypointTrajectory(seed=8, **kwargs)
    times = [0.0, 0.9, 3.3, 7.7, 15.2]
    assert [a.position_at(t) for t in times] == [b.position_at(t) for t in times]
    assert [a.position_at(t) for t in times] != [c.position_at(t) for t in times]
    for t in times:
        x, y = a.position_at(t)
        assert 1.0 <= x <= 9.0 and 1.0 <= y <= 5.0
    # Queries may rewind (sim re-entrancy): earlier times still answer.
    assert a.position_at(0.9) == b.position_at(0.9)


def test_trajectory_process_moves_radio_and_stops_at_end():
    ctx = build_context(seed=0)
    radio = Radio(
        name="m", position=Position(0, 0), band=zigbee_channel(24),
        technology=Technology.ZIGBEE, sim=ctx.sim, streams=ctx.streams,
        trace=ctx.trace,
    )
    ctx.medium.attach(radio)
    traj = WaypointTrajectory([(0.0, 0.0), (4.0, 0.0)], speed_mps=2.0)
    proc = TrajectoryProcess(ctx, [radio], traj, tick=0.25)
    ctx.sim.run(until=1.0)
    assert radio.position.x == pytest.approx(2.0)
    ctx.sim.run(until=10.0)
    assert radio.position.x == pytest.approx(4.0)
    assert not proc.running  # finite path: the process retired itself
    assert proc.ticks_applied > 0


# ----------------------------------------------------------------------
# AP-selection policies
# ----------------------------------------------------------------------
def _readings(**rssi):
    return [APReading(name, value) for name, value in rssi.items()]


def test_strongest_rssi_policy_applies_hysteresis():
    policy = StrongestRssiPolicy(hysteresis_db=4.0)
    # Better, but within the hysteresis margin: stay.
    assert policy.select("ap0", _readings(ap0=-60.0, ap1=-57.0)) == "ap0"
    # Decisively better: roam.
    assert policy.select("ap0", _readings(ap0=-60.0, ap1=-55.0)) == "ap1"
    # Serving AP missing from the scan: take the strongest unconditionally.
    assert policy.select("ap9", _readings(ap0=-70.0, ap1=-65.0)) == "ap1"


def test_sticky_policy_stays_until_floor():
    policy = StickyPolicy(min_rssi_dbm=-75.0)
    assert policy.select("ap0", _readings(ap0=-74.0, ap1=-50.0)) == "ap0"
    assert policy.select("ap0", _readings(ap0=-76.0, ap1=-50.0)) == "ap1"


def test_policy_registry_builds_by_name():
    assert set(ap_selection_policy_names()) >= {"strongest-rssi", "sticky"}
    policy = make_ap_selection_policy("strongest-rssi", hysteresis_db=7.0,
                                      min_rssi_dbm=-60.0)  # foreign kwarg dropped
    assert isinstance(policy, StrongestRssiPolicy)
    assert policy.hysteresis_db == 7.0
    with pytest.raises(KeyError):
        make_ap_selection_policy("teleport")
    assert "sticky" in AP_SELECTION_POLICIES


# ----------------------------------------------------------------------
# Spec-side rounding: fingerprints stable across float spellings
# ----------------------------------------------------------------------
def test_waypoint_rounding_stabilizes_fingerprint():
    def spec_with(waypoints):
        return dataclasses.replace(
            ScenarioSpec(),
            mobility=MobilitySpec(
                kind="trajectory", model="waypoint", waypoints=waypoints
            ),
        )

    exact = spec_with(((0.0, 0.0), (1.2, 3.4)))
    noisy = spec_with(((0.0000004, 0.0), (1.2000001, 3.3999996)))
    assert exact.fingerprint() == noisy.fingerprint()
    assert exact.mobility.waypoints == ((0.0, 0.0), (1.2, 3.4))
    # A genuinely different path still splits the cache.
    other = spec_with(((0.0, 0.0), (1.3, 3.4)))
    assert other.fingerprint() != exact.fingerprint()


# ----------------------------------------------------------------------
# Medium: batched moves and rebuild telemetry
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kernel", ["legacy", "vector"])
def test_move_many_advances_epoch_once(kernel):
    ctx = build_context(seed=0, medium_kernel=kernel)
    radios = []
    for i in range(4):
        radio = Radio(
            name=f"r{i}", position=Position(float(i), 0.0),
            band=zigbee_channel(24), technology=Technology.ZIGBEE,
            sim=ctx.sim, streams=ctx.streams, trace=ctx.trace,
        )
        ctx.medium.attach(radio)
        radios.append(radio)
    epoch = ctx.channel.position_epoch
    ctx.medium.move_many(
        (radio, Position(radio.position.x + 1.0, 2.0)) for radio in radios
    )
    assert ctx.channel.position_epoch == epoch + 1  # one bump for the batch
    assert all(radio.position.y == 2.0 for radio in radios)
    # An empty batch is free: no invalidation at all.
    ctx.medium.move_many(())
    assert ctx.channel.position_epoch == epoch + 1


def test_link_rows_rebuilt_counter_counts_vector_rebuilds():
    registry = telemetry.MetricsRegistry()
    with telemetry.collect(registry):
        ctx = build_context(seed=0, medium_kernel="vector")
        a = Radio(name="a", position=Position(0, 0), band=zigbee_channel(24),
                  technology=Technology.ZIGBEE, sim=ctx.sim,
                  streams=ctx.streams, trace=ctx.trace)
        b = Radio(name="b", position=Position(5, 0), band=zigbee_channel(24),
                  technology=Technology.ZIGBEE, sim=ctx.sim,
                  streams=ctx.streams, trace=ctx.trace)
        ctx.medium.attach(a)
        ctx.medium.attach(b)
        counter = registry.counter("medium.link_rows_rebuilt")
        ctx.medium.transmit(a, 1e-3, 0.0, a.band, a.technology)
        ctx.sim.run(until=5e-3)
        assert counter.value == 0  # first build is not a rebuild
        ctx.medium.move_many([(b, Position(9.0, 0.0))])
        ctx.medium.transmit(a, 1e-3, 0.0, a.band, a.technology)
        ctx.sim.run(until=10e-3)
        assert counter.value == 1  # stale epoch forced exactly one row rebuild
        ctx.medium.transmit(a, 1e-3, 0.0, a.band, a.technology)
        ctx.sim.run(until=15e-3)
        assert counter.value == 1  # cached row reused: no further rebuilds


def test_link_rows_rebuilt_counter_silent_on_legacy():
    registry = telemetry.MetricsRegistry()
    with telemetry.collect(registry):
        ctx = build_context(seed=0, medium_kernel="legacy")
        a = Radio(name="a", position=Position(0, 0), band=zigbee_channel(24),
                  technology=Technology.ZIGBEE, sim=ctx.sim,
                  streams=ctx.streams, trace=ctx.trace)
        ctx.medium.attach(a)
        a.move_to(Position(1.0, 0.0))
        ctx.medium.transmit(a, 1e-3, 0.0, a.band, a.technology)
        ctx.sim.run(until=5e-3)
        assert registry.counter("medium.link_rows_rebuilt").value == 0


# ----------------------------------------------------------------------
# The wired stack: compiled roaming scenarios + the roaming experiment
# ----------------------------------------------------------------------
#: Cheap campus configuration: fast walker, coarse Wi-Fi interval — a few
#: thousand events instead of tens of thousands.
CHEAP_CAMPUS = dict(speed_mps=8.0, hysteresis_db=2.0, scan_interval=0.1,
                    wifi_interval=5e-3, duration=4.0)


def test_campus_roaming_records_handoffs():
    spec = get_scenario("campus-roaming", **CHEAP_CAMPUS)
    registry = telemetry.MetricsRegistry()
    with telemetry.collect(registry):
        compiled = compile_scenario(spec, seed=1)
        result = compiled.run()
    assert result.extra["roam_handoffs"] >= 1
    assert result.extra["roam_scans"] > 0
    assert result.extra["roam_gap_ms"] == pytest.approx(
        30.0 * result.extra["roam_handoffs"]
    )
    # The live telemetry counters carry the same story.
    assert registry.counter("roam.handoffs").value == result.extra["roam_handoffs"]
    assert registry.counter("roam.gap_ms").value > 0
    # Traffic follows the client: the serving AP changed at least once, and
    # the uplink kept delivering.
    assert result.wifi["ped"].delivered > 0


def test_static_scenarios_expose_no_roam_metrics():
    spec = get_scenario("grid", n_zigbee_links=2, duration=0.5)
    result = compile_scenario(spec, seed=0).run()
    assert not any(key.startswith("roam_") for key in result.extra)


def test_roaming_experiment_registered_with_contract():
    spec = get_experiment("roaming")
    assert spec.config_cls is RoamingTrialConfig
    assert get_experiment("roam") is spec  # alias


def test_roaming_trial_reports_motion_metrics():
    result = run_experiment(
        "roaming", scenario="campus-roaming", speed_mps=8.0, n_aps=2,
        scheme="csma", duration=3.0, max_events=30000,
        params={"hysteresis_db": 2.0, "scan_interval": 0.1,
                "wifi_interval": 5e-3},
        seed=3,
    )
    assert result.handoffs >= 1
    assert result.gap_ms == pytest.approx(30.0 * result.handoffs)
    assert result.handoff_rate_hz > 0
    assert 0.0 <= result.wifi_prr <= 1.0
    assert result.seed == 3
    summary = result.summary()
    assert summary["handoffs"] == float(result.handoffs)
    # Round-trips through the uniform result contract.
    restored = type(result).from_dict(result.to_dict())
    assert restored.handoffs == result.handoffs


def test_roaming_config_pins_spec_fingerprint():
    cfg = RoamingTrialConfig(scenario="campus-roaming", speed_mps=3.0, n_aps=2)
    assert cfg.spec_fingerprint == cfg.resolve_spec().fingerprint()
    # The fingerprint is an *axis-sensitive* part of the config (and hence
    # of the sweep cache key): changing any roaming axis changes it.
    other = RoamingTrialConfig(scenario="campus-roaming", speed_mps=4.0, n_aps=2)
    assert other.spec_fingerprint != cfg.spec_fingerprint
    denser = RoamingTrialConfig(scenario="campus-roaming", speed_mps=3.0, n_aps=3)
    assert denser.spec_fingerprint != cfg.spec_fingerprint
    with pytest.raises(ValueError):
        RoamingTrialConfig(scenario="office")
    with pytest.raises(ValueError):
        RoamingTrialConfig(scheme="warp-drive")


def test_roaming_sweep_cache_key_includes_fingerprint(tmp_path):
    from repro.experiments.sweep import SweepEngine, SweepSpec

    engine = SweepEngine(cache_dir=tmp_path, jobs=1)
    spec = SweepSpec(
        experiment="roaming",
        grid={"speed_mps": (6.0, 10.0)},
        base={
            "scenario": "campus-roaming", "n_aps": 2, "scheme": "csma",
            "duration": 2.0, "max_events": 15000,
            "params": {"wifi_interval": 5e-3, "scan_interval": 0.1},
        },
        seeds=(0,),
    )
    run = engine.run(spec)
    assert len(run.records) == 2
    keys = {record.key for record in run.records}
    assert len(keys) == 2  # distinct speeds -> distinct fingerprints -> keys
    # A second run is served entirely from cache.
    rerun = SweepEngine(cache_dir=tmp_path, jobs=1).run(spec)
    assert all(record.cached for record in rerun.records)


def test_run_roaming_trial_default_config_smoke():
    result = run_roaming_trial(
        RoamingTrialConfig(
            scenario="vehicular-corridor", speed_mps=40.0, n_aps=3,
            scheme="csma", duration=0.5, max_events=20000,
            params={"ap_spacing": 6.0, "hysteresis_db": 2.0,
                    "scan_interval": 0.05, "wifi_interval": 4e-3},
        ),
        seed=0,
    )
    assert result.scenario == "vehicular-corridor"
    assert result.scans > 0

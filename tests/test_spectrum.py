"""Tests for the 2.4 GHz spectrum model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.phy.spectrum import (
    Band,
    ble_channel,
    overlap_fraction,
    overlapping_zigbee_channels,
    wifi_channel,
    zigbee_channel,
)


def test_wifi_channel_centers():
    assert wifi_channel(1).center_mhz == 2412.0
    assert wifi_channel(6).center_mhz == 2437.0
    assert wifi_channel(11).center_mhz == 2462.0
    assert wifi_channel(13).center_mhz == 2472.0
    assert wifi_channel(14).center_mhz == 2484.0


def test_zigbee_channel_centers():
    assert zigbee_channel(11).center_mhz == 2405.0
    assert zigbee_channel(24).center_mhz == 2470.0
    assert zigbee_channel(26).center_mhz == 2480.0


def test_unknown_channels_raise():
    with pytest.raises(ValueError):
        wifi_channel(15)
    with pytest.raises(ValueError):
        zigbee_channel(10)
    with pytest.raises(ValueError):
        ble_channel(40)


def test_paper_channel_pairs_overlap():
    """The paper pairs Wi-Fi 11 with ZigBee 24 and Wi-Fi 13 with ZigBee 26."""
    assert zigbee_channel(24).overlaps(wifi_channel(11))
    assert zigbee_channel(26).overlaps(wifi_channel(13))
    assert 24 in overlapping_zigbee_channels(11)
    assert 26 in overlapping_zigbee_channels(13)


def test_non_overlapping_pair():
    # ZigBee channel 26 (2480) is outside Wi-Fi channel 1 (2402-2422).
    assert not zigbee_channel(26).overlaps(wifi_channel(1))
    assert overlap_fraction(zigbee_channel(26), wifi_channel(1)) == 0.0


def test_zigbee_into_wifi_captures_everything():
    """A 2 MHz ZigBee signal inside a 20 MHz Wi-Fi filter is fully captured."""
    fraction = overlap_fraction(zigbee_channel(24), wifi_channel(11))
    assert fraction == pytest.approx(1.0)


def test_wifi_into_zigbee_captures_ten_percent():
    """A ZigBee filter slices 2/20 of the Wi-Fi power: the -10 dB asymmetry."""
    fraction = overlap_fraction(wifi_channel(11), zigbee_channel(24))
    assert fraction == pytest.approx(0.1)


def test_partial_overlap_fraction():
    a = Band(center_mhz=2450.0, bandwidth_mhz=20.0)  # 2440-2460
    b = Band(center_mhz=2458.0, bandwidth_mhz=4.0)  # 2456-2460
    assert a.overlapped_mhz(b) == pytest.approx(4.0)
    assert overlap_fraction(a, b) == pytest.approx(4.0 / 20.0)
    assert overlap_fraction(b, a) == pytest.approx(1.0)


def test_band_rejects_nonpositive_bandwidth():
    with pytest.raises(ValueError):
        Band(center_mhz=2412.0, bandwidth_mhz=0.0)


@given(
    c1=st.floats(min_value=2400, max_value=2480),
    w1=st.floats(min_value=1, max_value=40),
    c2=st.floats(min_value=2400, max_value=2480),
    w2=st.floats(min_value=1, max_value=40),
)
def test_overlap_fraction_bounds_and_symmetric_overlap(c1, w1, c2, w2):
    a, b = Band(c1, w1), Band(c2, w2)
    assert 0.0 <= overlap_fraction(a, b) <= 1.0
    assert a.overlapped_mhz(b) == pytest.approx(b.overlapped_mhz(a))
    assert a.overlaps(b) == b.overlaps(a)


@given(c=st.floats(min_value=2400, max_value=2480), w=st.floats(min_value=1, max_value=40))
def test_band_fully_overlaps_itself(c, w):
    band = Band(c, w)
    assert overlap_fraction(band, band) == pytest.approx(1.0)

"""Tests for CTI feature extraction, classification, and fingerprinting."""

import numpy as np
import pytest

from repro.core import (
    CtiClassifier,
    DeviceIdentifier,
    Fingerprint,
    InterfererClass,
    RssiFeatures,
    extract_features,
    extract_fingerprint,
)
from repro.core.powermap import PowerMap, negotiate_power
from repro.phy.rssi import RssiTrace

FLOOR = -106.0


def trace_from(samples, rate=40e3):
    return RssiTrace(start_time=0.0, rate_hz=rate, samples_dbm=np.asarray(samples, float))


def synthetic_trace(on_len, off_len, n_pulses, level=-50.0, rate=40e3):
    """Square-wave RSSI: n_pulses of on_len samples at `level`, gaps at floor."""
    samples = []
    for _ in range(n_pulses):
        samples += [level] * on_len + [FLOOR] * off_len
    return trace_from(samples, rate)


# ----------------------------------------------------------------------
# Feature extraction
# ----------------------------------------------------------------------
def test_on_air_time_feature():
    trace = synthetic_trace(on_len=8, off_len=8, n_pulses=5)
    features = extract_features(trace, FLOOR)
    assert features.avg_on_air_time == pytest.approx(8 / 40e3)


def test_min_packet_interval_feature():
    samples = [-50.0] * 4 + [FLOOR] * 10 + [-50.0] * 4 + [FLOOR] * 2 + [-50.0] * 4
    features = extract_features(trace_from(samples), FLOOR)
    assert features.min_packet_interval == pytest.approx(2 / 40e3)


def test_single_run_interval_defaults_to_duration():
    trace = synthetic_trace(on_len=10, off_len=0, n_pulses=1)
    features = extract_features(trace, FLOOR)
    assert features.min_packet_interval == pytest.approx(trace.duration)


def test_under_noise_floor_feature():
    samples = [FLOOR] * 50 + [-50.0] * 50
    features = extract_features(trace_from(samples), FLOOR)
    assert features.under_noise_floor == pytest.approx(0.5)


def test_papr_flat_trace_is_one():
    features = extract_features(trace_from([-50.0] * 100), FLOOR)
    assert features.peak_to_average_ratio == pytest.approx(1.0)


def test_papr_spiky_trace_is_large():
    samples = [FLOOR] * 99 + [-40.0]
    features = extract_features(trace_from(samples), FLOOR)
    assert features.peak_to_average_ratio > 50


def test_idle_trace_features_are_degenerate():
    features = extract_features(trace_from([FLOOR] * 200), FLOOR)
    assert features.avg_on_air_time == 0.0
    assert features.under_noise_floor == pytest.approx(1.0)


def test_feature_vector_roundtrip():
    f = RssiFeatures(1e-3, 2e-3, 5.0, 0.3)
    assert f.as_vector() == [1e-3, 2e-3, 5.0, 0.3]


# ----------------------------------------------------------------------
# Classifier on synthetic square waves
# ----------------------------------------------------------------------
def build_synthetic_dataset(n_each=40, seed=0):
    """Wi-Fi: short dense pulses; ZigBee: long pulses; BT: rare spikes."""
    rng = np.random.default_rng(seed)
    features, labels = [], []
    for _ in range(n_each):
        # Wi-Fi: ~1 ms on (40 samples), ~0.3 ms gaps.
        on = int(rng.integers(35, 45))
        off = int(rng.integers(8, 16))
        features.append(extract_features(synthetic_trace(on, off, 3), FLOOR))
        labels.append(InterfererClass.WIFI)
        # ZigBee: ~1.8 ms on (72 samples), 2 ms gaps.
        on = int(rng.integers(65, 80))
        off = int(rng.integers(70, 90))
        features.append(extract_features(synthetic_trace(on, off, 2), FLOOR))
        labels.append(InterfererClass.ZIGBEE)
        # Bluetooth: one short spike in mostly-quiet trace.
        on = int(rng.integers(5, 12))
        features.append(extract_features(synthetic_trace(on, 180, 1), FLOOR))
        labels.append(InterfererClass.BLUETOOTH)
    return features, labels


def test_classifier_separates_synthetic_sources():
    features, labels = build_synthetic_dataset()
    classifier = CtiClassifier().fit(features, labels)
    assert classifier.accuracy(features, labels) > 0.95
    assert classifier.wifi_detection_accuracy(features, labels) > 0.95


def test_classifier_is_wifi_question():
    features, labels = build_synthetic_dataset()
    classifier = CtiClassifier().fit(features, labels)
    wifi_example = extract_features(synthetic_trace(40, 12, 3), FLOOR)
    zigbee_example = extract_features(synthetic_trace(72, 80, 2), FLOOR)
    assert classifier.is_wifi(wifi_example)
    assert not classifier.is_wifi(zigbee_example)


def test_classifier_requires_fit():
    classifier = CtiClassifier()
    with pytest.raises(RuntimeError):
        classifier.classify(RssiFeatures(0, 0, 1, 0))


def test_classifier_rejects_empty_evaluation():
    fitted = CtiClassifier().fit(*build_synthetic_dataset(5))
    with pytest.raises(ValueError):
        fitted.wifi_detection_accuracy([], [])


# ----------------------------------------------------------------------
# Fingerprinting
# ----------------------------------------------------------------------
def test_fingerprint_extraction():
    samples = [FLOOR] * 50 + [-50.0, -48.0, -52.0, -50.0] * 10 + [FLOOR] * 10
    fp = extract_fingerprint(trace_from(samples), FLOOR)
    assert fp.energy_span == pytest.approx(4.0)
    assert fp.energy_level == pytest.approx(-50.0)
    assert 0.0 < fp.occupancy_level < 1.0


def test_fingerprint_idle_trace():
    fp = extract_fingerprint(trace_from([FLOOR] * 100), FLOOR)
    assert fp.occupancy_level == 0.0
    assert fp.energy_level == FLOOR


def test_identifier_separates_devices_by_level_and_occupancy():
    rng = np.random.default_rng(1)
    fingerprints, truth = [], []
    # Device 0: strong and busy; device 1: weak and sparse.
    for _ in range(30):
        level = -45.0 + rng.normal(0, 1)
        samples = ([level] * 30 + [FLOOR] * 10) * 4
        fingerprints.append(extract_fingerprint(trace_from(samples), FLOOR))
        truth.append(0)
        level = -65.0 + rng.normal(0, 1)
        samples = ([level] * 10 + [FLOOR] * 40) * 3
        fingerprints.append(extract_fingerprint(trace_from(samples), FLOOR))
        truth.append(1)
    identifier = DeviceIdentifier(2, rng=np.random.default_rng(0))
    labels = identifier.fit(fingerprints)
    from repro.ml import clustering_accuracy

    assert clustering_accuracy(labels, np.asarray(truth)) > 0.95
    # identify() agrees with the training assignment for a training point.
    assert identifier.identify(fingerprints[0]) == labels[0]


def test_identifier_validation():
    with pytest.raises(ValueError):
        DeviceIdentifier(0)
    identifier = DeviceIdentifier(2)
    with pytest.raises(RuntimeError):
        identifier.identify(Fingerprint(0, -50, 0, 0.5))
    with pytest.raises(ValueError):
        identifier.fit([Fingerprint(0, -50, 0, 0.5)])


# ----------------------------------------------------------------------
# PowerMap
# ----------------------------------------------------------------------
def test_powermap_defaults_and_entries():
    pm = PowerMap(default_power_dbm=-1.0)
    assert pm.get("unknown") == -1.0
    assert pm.get(None) == -1.0
    pm.set("ap-1", -3.0)
    assert pm.get("ap-1") == -3.0
    assert "ap-1" in pm and len(pm) == 1
    assert pm.known_devices() == ["ap-1"]


def test_negotiate_power_far_node_uses_full_power():
    # ZigBee far from the Wi-Fi sender: 0 dBm stays under CCA.
    power = negotiate_power(rx_power_at_wifi_sender_dbm=-60.0,
                            wifi_cca_threshold_dbm=-50.0)
    assert power == 0.0


def test_negotiate_power_near_node_backs_off():
    # Node close to the Wi-Fi sender: must drop below 0 dBm.
    power = negotiate_power(rx_power_at_wifi_sender_dbm=-46.0,
                            wifi_cca_threshold_dbm=-50.0)
    assert power <= -7.0


def test_negotiate_power_monotonic_in_proximity():
    threshold = -50.0
    powers = [
        negotiate_power(rx, threshold) for rx in (-70.0, -55.0, -48.0, -40.0)
    ]
    assert all(a >= b for a, b in zip(powers, powers[1:]))


def test_negotiate_power_floor():
    # Even hopelessly close, the weakest candidate is returned.
    power = negotiate_power(-10.0, -50.0)
    assert power == -25.0

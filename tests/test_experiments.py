"""Tests for the experiment harness: topology, metrics, runners, reporting."""

import numpy as np
import pytest

from repro.experiments import (
    Calibration,
    CoexistenceConfig,
    LOCATIONS,
    LOCATION_POWERS_DBM,
    aggregate,
    build_office,
    format_series,
    format_table,
    run_coexistence,
    run_energy_trial,
    run_learning_trial,
    run_priority_experiment,
    run_signaling_trial,
)
from repro.experiments.metrics import (
    AirtimeProbe,
    PrecisionRecall,
    UtilizationSnapshot,
)
from repro.experiments.topology import WIFI_RECEIVER_POS, WIFI_SENDER_POS


# ----------------------------------------------------------------------
# Topology
# ----------------------------------------------------------------------
def test_office_geometry_matches_paper_setup():
    assert WIFI_SENDER_POS.distance_to(WIFI_RECEIVER_POS) == pytest.approx(3.0)
    office = build_office(location="A")
    assert office.wifi_receiver.csi is not None  # CSI extractor on F
    assert office.zigbee_sender.mac.tx_power_dbm == pytest.approx(-7.0)


def test_location_geometry_invariants():
    """A is closest to F; D is closest to E among C/D; B is farthest from F."""
    d_to_f = {k: p.distance_to(WIFI_RECEIVER_POS) for k, p in LOCATIONS.items()}
    d_to_e = {k: p.distance_to(WIFI_SENDER_POS) for k, p in LOCATIONS.items()}
    assert d_to_f["A"] == min(d_to_f.values())
    assert d_to_e["D"] < d_to_e["A"] and d_to_e["D"] < d_to_e["B"]
    assert d_to_e["C"] < d_to_e["A"]


def test_location_powers_follow_footnote3():
    assert LOCATION_POWERS_DBM == {"A": 0.0, "B": 0.0, "C": -1.0, "D": -3.0}


def test_unknown_location_rejected():
    with pytest.raises(ValueError):
        build_office(location="X")


def test_zigbee_channel_overlaps_wifi_channel():
    office = build_office()
    assert office.zigbee_sender.radio.band.overlaps(office.wifi_sender.radio.band)


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
def test_precision_recall_math():
    pr = PrecisionRecall(true_positives=90, false_positives=10, salvos=100,
                         salvos_detected=85)
    assert pr.precision == pytest.approx(0.9)
    assert pr.recall == pytest.approx(0.85)
    empty = PrecisionRecall(0, 0, 0, 0)
    assert empty.precision == 0.0 and empty.recall == 0.0


def test_utilization_snapshot():
    snap = UtilizationSnapshot(duration=10.0, wifi_airtime=7.0, zigbee_airtime=1.0)
    assert snap.channel_utilization == pytest.approx(0.8)
    assert snap.wifi_utilization == pytest.approx(0.7)
    assert snap.zigbee_utilization == pytest.approx(0.1)


def test_airtime_probe_windows():
    office = build_office(seed=1)
    probe = AirtimeProbe([office.wifi_sender.radio], [office.zigbee_sender.radio])
    probe.start(0.0)
    office.wifi_sender.radio.tx_airtime += 0.5
    snap = probe.snapshot(2.0)
    assert snap.wifi_airtime == pytest.approx(0.5)
    assert snap.duration == pytest.approx(2.0)


def test_aggregate_means_summaries():
    from repro.experiments.metrics import CoexistenceResult

    a = CoexistenceResult("bicord", "A", 1.0,
                          UtilizationSnapshot(1.0, 0.8, 0.1),
                          zigbee_delays=[0.01], zigbee_packets_offered=10,
                          zigbee_packets_delivered=10, zigbee_payload_bytes=500)
    b = CoexistenceResult("bicord", "A", 1.0,
                          UtilizationSnapshot(1.0, 0.6, 0.1),
                          zigbee_delays=[0.03], zigbee_packets_offered=10,
                          zigbee_packets_delivered=5, zigbee_payload_bytes=250)
    agg = aggregate([a, b])
    assert agg["utilization"] == pytest.approx(0.8)
    assert agg["mean_delay_ms"] == pytest.approx(20.0)
    with pytest.raises(ValueError):
        aggregate([])


# ----------------------------------------------------------------------
# Runners (small workloads; shape checks)
# ----------------------------------------------------------------------
def test_signaling_trial_returns_sane_pr():
    result = run_signaling_trial(location="A", power_dbm=0.0, n_control_packets=4,
                                 n_salvos=15, seed=1)
    assert 0.8 <= result.pr.recall <= 1.0
    assert 0.8 <= result.pr.precision <= 1.0
    assert result.wifi_prr > 0.9


def test_coexistence_config_validation():
    with pytest.raises(ValueError):
        CoexistenceConfig(scheme="magic")
    with pytest.raises(ValueError):
        CoexistenceConfig(mobility="teleport")


def test_coexistence_bicord_beats_ecc_on_delay():
    """The paper's headline comparison, at small scale."""
    bicord = run_coexistence(CoexistenceConfig(scheme="bicord", n_bursts=10, seed=2))
    ecc = run_coexistence(CoexistenceConfig(scheme="ecc", n_bursts=10, seed=2,
                                            ecc_whitespace=20e-3))
    assert bicord.delivery_ratio > 0.9
    assert ecc.delivery_ratio > 0.9
    assert bicord.mean_delay < ecc.mean_delay
    assert bicord.mean_delay < 0.08


def test_coexistence_csma_starves():
    result = run_coexistence(CoexistenceConfig(scheme="csma", n_bursts=8, seed=3))
    assert result.delivery_ratio < 0.3


def test_mobility_modes_run():
    static = run_coexistence(CoexistenceConfig(n_bursts=8, seed=4, mobility="none"))
    person = run_coexistence(CoexistenceConfig(n_bursts=8, seed=4, mobility="person"))
    device = run_coexistence(CoexistenceConfig(n_bursts=8, seed=4, mobility="device"))
    for r in (static, person, device):
        assert r.delivery_ratio > 0.8
    # Mobility cannot *increase* utilization by much (paper: <=9% drop).
    assert person.channel_utilization < static.channel_utilization + 0.05


def test_learning_trial_converges_for_ten_packets():
    result = run_learning_trial(n_packets=10, step=30e-3, n_bursts=12, seed=5)
    assert result.converged
    assert 0.05 < result.final_whitespace < 0.15
    assert result.iterations <= 8  # Fig. 8: average always below 8
    assert result.final_whitespace >= result.burst_airtime * 0.8


def test_learning_trial_bigger_bursts_need_longer_whitespace():
    small = run_learning_trial(n_packets=5, step=30e-3, n_bursts=10, seed=6)
    large = run_learning_trial(n_packets=15, step=30e-3, n_bursts=10, seed=6)
    assert large.final_whitespace > small.final_whitespace


def test_priority_experiment_high_priority_protected():
    result = run_priority_experiment("bicord", high_proportion=0.4,
                                     total_duration=3.0, seed=7)
    # High-priority Wi-Fi traffic must not suffer more than low-priority.
    assert result.high_priority_wifi_delay <= result.low_priority_wifi_delay * 1.2
    assert result.zigbee_utilization > 0.0


def test_priority_experiment_rejects_unknown_scheme():
    with pytest.raises(ValueError):
        run_priority_experiment("csma", 0.3, total_duration=1.0)


def test_energy_trial_overhead_band():
    """Sec. VII-B: BiCord costs extra energy, but within a small multiple."""
    result = run_energy_trial(n_bursts=4, seed=8)
    assert result.bicord_mj > result.clear_channel_mj
    assert 0.0 < result.overhead_fraction < 0.8
    assert result.control_packets > 0


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------
def test_format_table_alignment_and_floats():
    text = format_table(["name", "value"], [["a", 0.5], ["long-name", 1.25]],
                        title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "0.5000" in text and "1.2500" in text
    assert lines[1].index("value") == lines[3].index("0.5000")


def test_format_series():
    text = format_series("util", ["100ms", "2s"], [0.81, 0.9])
    assert text == "util: 100ms=0.810, 2s=0.900"

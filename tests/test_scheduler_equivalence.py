"""Calendar-queue scheduler vs the binary-heap oracle.

The calendar backend must be **bitwise identical** to the heap engine it
accelerates: same firing order, same ``events_processed``, same trace
digests, same metrics — across seeds, library scenarios, and fault plans
(modeled on ``tests/test_rssi_equivalence.py``, which keeps the legacy RSSI
path as oracle the same way).

Three layers of evidence:

* full compiled scenarios (5 seeds x 3 scenarios x 2 fault plans) compared
  on trace digest + event count + the whole summary dict;
* a hypothesis property test driving random schedule/cancel/run
  interleavings through both backends and comparing firing orders exactly;
* targeted adversarial cases for the wheel (overflow jumps, zero-delay
  chains, peek-during-callback).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.scenario import ScenarioTrialConfig, run_scenario_trial
from repro.sim.calendar import CalendarSimulator
from repro.sim.engine import Simulator, set_default_backend

SEEDS = [0, 1, 2, 3, 4]
SCENARIOS = [
    ("office", {}),
    ("grid", {"n_zigbee_links": 3, "n_wifi_pairs": 2}),
    ("random-uniform", {"n_zigbee_links": 4, "n_wifi_pairs": 2}),
]
FAULT_PLANS = ["inert", "lossy-control"]


def _run_with_backend(backend, scenario, params, fault_plan, seed):
    previous = set_default_backend(backend)
    try:
        cfg = ScenarioTrialConfig(
            scenario=scenario, params=params, duration=0.3, fault_plan=fault_plan
        )
        return run_scenario_trial(cfg, seed=seed)
    finally:
        set_default_backend(previous)


@pytest.mark.parametrize("fault_plan", FAULT_PLANS)
@pytest.mark.parametrize("scenario,params", SCENARIOS)
@pytest.mark.parametrize("seed", SEEDS)
def test_scenario_bitwise_equivalence(scenario, params, fault_plan, seed):
    heap = _run_with_backend("heap", scenario, params, fault_plan, seed)
    cal = _run_with_backend("calendar", scenario, params, fault_plan, seed)
    assert cal.trace_digest == heap.trace_digest
    assert cal.events_processed == heap.events_processed
    assert cal.summary() == heap.summary()
    assert heap.events_processed > 0  # the comparison actually exercised a run


# ----------------------------------------------------------------------
# Random interleavings of schedule / schedule_at / cancel / run
# ----------------------------------------------------------------------
_DELAYS = st.sampled_from(
    [0.0, 1e-7, 7e-6, 3.9e-5, 4e-5, 4.1e-5, 1e-3, 0.0102, 0.5, 3.0]
)  # straddles the calendar bucket width (40 us) and wheel span (10.24 ms)

_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("schedule"), _DELAYS),
        st.tuples(st.just("schedule_at"), _DELAYS),
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=200)),
        st.tuples(st.just("run_until"), _DELAYS),
        st.tuples(st.just("step"), st.just(None)),
        st.tuples(st.just("peek"), st.just(None)),
    ),
    min_size=1,
    max_size=60,
)


def _apply_ops(backend, ops, chain_seed):
    """Drive one backend through an op script; return the observable record.

    Callbacks themselves re-schedule and cancel pseudo-randomly (seeded per
    run), so dispatch-time mutation paths — insort into the live batch,
    compaction mid-batch — are exercised too.
    """
    sim = Simulator(backend=backend)
    rng = random.Random(chain_seed)
    fired = []
    events = []
    record = []

    def cb(tag):
        fired.append((sim.now, tag))
        roll = rng.random()
        if roll < 0.35 and len(events) < 4000:
            events.append(sim.schedule(rng.choice([0.0, 2e-6, 5e-5, 2e-3]), cb, -tag))
        if roll > 0.75 and events:
            events[rng.randrange(len(events))].cancel()

    tag = 0
    for op, arg in ops:
        if op == "schedule":
            events.append(sim.schedule(arg, cb, tag))
            tag += 1
        elif op == "schedule_at":
            events.append(sim.schedule_at(sim.now + arg, cb, tag))
            tag += 1
        elif op == "cancel":
            if events:
                events[arg % len(events)].cancel()
        elif op == "run_until":
            sim.run(until=sim.now + arg)
        elif op == "step":
            record.append(("step", sim.step()))
        elif op == "peek":
            record.append(("peek", sim.peek()))
    sim.run()
    record.append(("fired", tuple(fired)))
    record.append(("events_processed", sim.events_processed))
    record.append(("pending", sim.pending_count()))
    record.append(("now", sim.now))
    return record


@given(ops=_OPS, chain_seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=120, deadline=None)
def test_random_interleavings_fire_identically(ops, chain_seed):
    assert _apply_ops("heap", ops, chain_seed) == _apply_ops(
        "calendar", ops, chain_seed
    )


# ----------------------------------------------------------------------
# Adversarial wheel cases
# ----------------------------------------------------------------------
def _both(fn):
    heap_fired, cal_fired = [], []
    fn(Simulator(backend="heap"), heap_fired)
    fn(CalendarSimulator(nbuckets=8, bucket_width=1e-4), cal_fired)
    assert cal_fired == heap_fired
    return heap_fired


def test_overflow_jump_cannot_skip_events():
    """Sparse far-future events force repeated empty-wheel overflow jumps."""

    def drive(sim, fired):
        for i, t in enumerate([5.0, 0.1, 2.5, 0.1, 97.0, 2.5000001]):
            sim.schedule(t, lambda i=i: fired.append((sim.now, i)))
        sim.run()

    fired = _both(drive)
    assert [i for _, i in fired] == [1, 3, 2, 5, 0, 4]


def test_callback_scheduling_before_wheel_head_fires_first():
    """A callback scheduling sooner than anything queued must fire next."""

    def drive(sim, fired):
        def wedge():
            fired.append((sim.now, "wedge"))
            sim.schedule(1e-6, lambda: fired.append((sim.now, "squeezed")))

        sim.schedule(0.05, wedge)
        sim.schedule(0.3, lambda: fired.append((sim.now, "tail")))
        sim.run()

    fired = _both(drive)
    assert [tag for _, tag in fired] == ["wedge", "squeezed", "tail"]


def test_peek_inside_callback_keeps_dispatch_consistent():
    """peek() prunes cancelled entries at the consumption frontier; doing it
    from inside a callback must not double-count or skip anything."""

    def drive(sim, fired):
        victims = []

        def prober():
            fired.append((sim.now, "prober"))
            for v in victims:
                v.cancel()
            fired.append((sim.now, ("peek", sim.peek())))

        sim.schedule(0.01, prober)
        victims.append(sim.schedule(0.0100001, lambda: fired.append("dead1")))
        victims.append(sim.schedule(0.0100002, lambda: fired.append("dead2")))
        sim.schedule(0.0100003, lambda: fired.append((sim.now, "alive")))
        sim.run()
        fired.append(("pending", sim.pending_count()))

    fired = _both(drive)
    assert ("pending", 0) in fired


def test_interrupted_batch_resumes_in_place():
    """until= landing inside a same-bucket batch must resume exactly there."""

    def drive(sim, fired):
        for i in range(10):
            sim.schedule(0.01 + i * 1e-6, lambda i=i: fired.append(i))
        sim.run(until=0.010004)  # splits the 10-event bucket
        fired.append(("now", sim.now))
        sim.run()

    fired = _both(drive)
    assert [x for x in fired if isinstance(x, int)] == list(range(10))

"""End-to-end acceptance test of ``repro serve`` as a real subprocess.

Drives the whole advertised contract in one scenario: two clients
submitting concurrently at different priorities, a duplicate-fingerprint
submission served from cache without a worker slot, the queue rejecting
beyond its bound with a retry-after hint, and SIGTERM during a running
job draining gracefully with the interrupted job resumable on restart.
"""

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.api import Client, ServerError
from repro.server import JobState
from repro.server.journal import ServerJournal

SRC = Path(__file__).resolve().parent.parent / "src"

TINY = {"scenario": "office", "duration": 0.02}
SLOW = {"scenario": "office", "duration": 5.0}


def _spawn_server(state_dir, cache, **options):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC)
    env["BICORD_SWEEP_CACHE"] = str(cache)
    args = [
        sys.executable, "-m", "repro.cli", "serve",
        "--state-dir", str(state_dir), "--quiet",
    ]
    for name, value in options.items():
        args += [f"--{name.replace('_', '-')}", str(value)]
    return subprocess.Popen(
        args, env=env,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )


def test_serve_full_contract(tmp_path):
    state = tmp_path / "state"
    cache = tmp_path / "cache"
    proc = _spawn_server(
        state, cache, workers="1", queue_depth="2", drain_grace="0.2",
    )
    try:
        alice = Client.from_state_dir(state, retry_for=15.0,
                                      client_name="alice")
        bob = Client.from_state_dir(state, retry_for=5.0, client_name="bob")
        assert alice.ping()["state"] == "serving"

        # -- two clients submit concurrently at different priorities ----
        submissions = {}

        def submit(name, client, priority, seed):
            submissions[name] = client.submit(
                params=TINY, seeds=[seed], priority=priority
            )

        blocker = alice.submit(params=SLOW, seeds=[0, 1])
        threads = [
            threading.Thread(
                target=submit, args=("low", alice, 5, 10)
            ),
            threading.Thread(
                target=submit, args=("high", bob, 0, 11)
            ),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert submissions["low"]["state"] == "queued"
        assert submissions["high"]["state"] == "queued"

        low = alice.wait(submissions["low"]["job_id"], timeout=120)
        high = bob.wait(submissions["high"]["job_id"], timeout=120)
        assert low["state"] == high["state"] == JobState.DONE
        # Bob's priority-0 job left the queue before Alice's priority-5 one.
        assert high["started_at"] < low["started_at"]

        # -- duplicate fingerprint: served from cache, no worker slot ----
        executed_before = alice.stats()["counters"]["server.trials_executed"]
        dup = bob.submit(params=TINY, seeds=[10])  # alice's low job, again
        assert dup["cached"] is True and dup["state"] == "done"
        counters = alice.stats()["counters"]
        assert counters["server.trials_executed"] == executed_before
        assert counters["server.cache_hit_jobs"] == 1
        assert len(bob.result(dup["job_id"])["results"]) == 1

        # -- the queue rejects beyond its bound with retry-after --------
        alice.wait(blocker["job_id"], timeout=120)
        blocker2 = alice.submit(params=SLOW, seeds=[2, 3, 4])
        _wait_running(alice, blocker2["job_id"])
        fillers = [alice.submit(params=TINY, seeds=[20 + i]) for i in range(2)]
        with pytest.raises(ServerError) as excinfo:
            alice.submit(params=TINY, seeds=[99])
        assert "queue full" in str(excinfo.value)
        assert excinfo.value.retry_after > 0.0

        # -- SIGTERM during the running job: graceful, resumable drain --
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=60) == 0

        replayed = {
            r.job_id: r.state
            for r in ServerJournal(state / "jobs.jsonl").replay()
        }
        # The interrupted job and the queued fillers all came back queued.
        assert replayed[blocker2["job_id"]] == JobState.QUEUED
        for filler in fillers:
            assert replayed[filler["job_id"]] == JobState.QUEUED
        # Terminal jobs survived as-is.
        assert replayed[dup["job_id"]] == JobState.DONE
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()

    # -- restart: everything replays and completes -----------------------
    proc2 = _spawn_server(state, cache, workers="1", queue_depth="2")
    try:
        carol = Client.from_state_dir(state, retry_for=15.0,
                                      client_name="carol")
        done = carol.wait(blocker2["job_id"], timeout=180)
        assert done["state"] == JobState.DONE
        assert done["done_trials"] == done["total_trials"] == 3
        for filler in fillers:
            assert carol.wait(filler["job_id"], timeout=120)["state"] == \
                JobState.DONE
        carol.shutdown()
        assert proc2.wait(timeout=60) == 0
    finally:
        if proc2.poll() is None:
            proc2.kill()
            proc2.wait()


def _wait_running(client, job_id, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if client.status(job_id)["state"] == JobState.RUNNING:
            return
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} never started running")

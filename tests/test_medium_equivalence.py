"""Vectorized medium kernel vs the legacy per-pair oracle.

The struct-of-arrays kernel (``repro.phy.medium_fast``) must be **bitwise
identical** to the legacy :class:`~repro.phy.medium.Medium` it accelerates:
same trace digests, same event counts, same metrics — across seeds, library
scenarios, and fault plans (modeled on ``tests/test_scheduler_equivalence.py``,
which keeps the binary-heap engine as oracle the same way).

Three layers of evidence:

* full compiled scenarios (5 seeds x 3 scenarios x 2 fault plans) compared
  on trace digest + event count + the whole summary dict;
* targeted adversarial cases for the kernel's caches — mid-run mobility
  (position-epoch invalidation), BLE retunes while foreign transmissions are
  in flight (gather-profile + slot refresh), and a radio attached while a
  transmission is on the air (slot coverage fallback);
* a hypothesis property test driving random transmit/advance/move/retune
  interleavings and comparing the incremental interference accumulators
  against a brute-force re-sum oracle after every step.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.context import build_context
from repro.devices.base import Radio
from repro.devices.interferers import Emitter
from repro.experiments.scenario import ScenarioTrialConfig, run_scenario_trial
from repro.mac.ble import BleConnection
from repro.mac.frames import Frame, FrameType
from repro.phy.medium import Technology, set_default_medium_kernel
from repro.phy.propagation import FadingModel, Position
from repro.phy.spectrum import ble_channel, wifi_channel, zigbee_channel

SEEDS = [0, 1, 2, 3, 4]
SCENARIOS = [
    ("office", {}),
    ("grid", {"n_zigbee_links": 3, "n_wifi_pairs": 2}),
    ("random-uniform", {"n_zigbee_links": 4, "n_wifi_pairs": 2}),
]
FAULT_PLANS = ["inert", "lossy-control"]
KERNELS = ["legacy", "vector"]


def _run_with_kernel(kernel, scenario, params, fault_plan, seed):
    previous = set_default_medium_kernel(kernel)
    try:
        cfg = ScenarioTrialConfig(
            scenario=scenario, params=params, duration=0.3, fault_plan=fault_plan
        )
        return run_scenario_trial(cfg, seed=seed)
    finally:
        set_default_medium_kernel(previous)


@pytest.mark.parametrize("fault_plan", FAULT_PLANS)
@pytest.mark.parametrize("scenario,params", SCENARIOS)
@pytest.mark.parametrize("seed", SEEDS)
def test_scenario_bitwise_equivalence(scenario, params, fault_plan, seed):
    legacy = _run_with_kernel("legacy", scenario, params, fault_plan, seed)
    vector = _run_with_kernel("vector", scenario, params, fault_plan, seed)
    assert vector.trace_digest == legacy.trace_digest
    assert vector.events_processed == legacy.events_processed
    assert vector.summary() == legacy.summary()
    assert legacy.events_processed > 0  # the comparison actually exercised a run


#: A fast-motion roaming corridor: the client crosses an AP boundary well
#: inside the 0.3 s horizon, so the run exercises trajectory ticks
#: (batched ``move_many`` churn), roaming scans, and a handoff in both
#: kernels.
TRAJECTORY_PARAMS = {
    "speed_mps": 40.0,
    "n_aps": 3,
    "ap_spacing": 6.0,
    "hysteresis_db": 2.0,
    "scan_interval": 0.05,
    "tick": 0.02,
    "wifi_interval": 4e-3,
}


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_trajectory_roaming_bitwise_equivalence(seed):
    legacy = _run_with_kernel(
        "legacy", "vehicular-corridor", TRAJECTORY_PARAMS, None, seed
    )
    vector = _run_with_kernel(
        "vector", "vehicular-corridor", TRAJECTORY_PARAMS, None, seed
    )
    assert vector.trace_digest == legacy.trace_digest
    assert vector.events_processed == legacy.events_processed
    assert vector.summary() == legacy.summary()
    assert vector.extra == legacy.extra
    assert legacy.extra["roam_handoffs"] >= 1  # motion actually forced a handoff


# ----------------------------------------------------------------------
# Targeted adversarial cases, run through both kernels and diffed on the
# full trace (every record, every field — floats compare bitwise).
# ----------------------------------------------------------------------
def _dual_run(builder, seed=3, **ctx_kwargs):
    """Run ``builder(ctx)`` under both kernels; return {kernel: observables}."""
    out = {}
    for kernel in KERNELS:
        ctx = build_context(seed=seed, medium_kernel=kernel, **ctx_kwargs)
        extra = builder(ctx)
        out[kernel] = (
            [(r.time, r.kind, r.fields) for r in ctx.trace.records],
            dict(ctx.trace.counters),
            extra,
        )
    return out


def _attach_radio(ctx, name, pos, band, tech, **kwargs):
    radio = Radio(
        name=name, position=pos, band=band, technology=tech,
        sim=ctx.sim, streams=ctx.streams, trace=ctx.trace, **kwargs,
    )
    ctx.medium.attach(radio)
    return radio


def _zigbee_frame(src, dst, seq):
    return Frame(
        FrameType.DATA, Technology.ZIGBEE, src, dst,
        payload_bytes=40, mpdu_bytes=51, seq=seq,
    )


def test_mid_run_mobility_equivalence():
    """Moving a radio mid-run invalidates the link matrix identically."""

    def scenario(ctx):
        a = _attach_radio(ctx, "a", Position(0, 0), zigbee_channel(24), Technology.ZIGBEE)
        b = _attach_radio(ctx, "b", Position(8, 0), zigbee_channel(24), Technology.ZIGBEE)
        c = _attach_radio(ctx, "c", Position(4, 3), zigbee_channel(24), Technology.ZIGBEE)
        powers = []
        seq = [0]

        def send():
            seq[0] += 1
            a.transmit_frame(_zigbee_frame("a", "b", seq[0]), 0.0)

        for k in range(8):
            ctx.sim.schedule(5e-3 * k, send)
        # Walk the receiver away mid-run, then the transmitter itself.
        ctx.sim.schedule(12e-3, lambda: b.move_to(Position(20, 0)))
        ctx.sim.schedule(22e-3, lambda: a.move_to(Position(2, 2)))
        ctx.sim.schedule(27e-3, lambda: c.move_to(Position(2.5, 2)))
        # Sample energy between and during frames.
        for t in (3e-3, 11e-3, 16e-3, 26e-3, 31e-3, 36e-3):
            ctx.sim.schedule(t, lambda: powers.append((b.energy_dbm(), c.energy_dbm())))
        ctx.sim.run(until=45e-3)
        return powers

    out = _dual_run(scenario, fading=FadingModel(2.0, 2.5))
    assert out["vector"] == out["legacy"]


def test_ble_retune_during_foreign_transmission():
    """BLE hops while a wide Wi-Fi emission is in flight; captured powers and
    AFH statistics must match the legacy per-pair recomputation exactly."""

    def scenario(ctx):
        ble = BleConnection(
            ctx, "link", Position(0, 0), Position(2, 0),
            connection_interval=10e-3, afh_check_interval=50e-3,
        )
        ble.start()
        jammer = Emitter(ctx, "jam", Position(1, 1))
        # Long emissions spanning several connection events (and hence
        # several mid-flight retunes of both BLE endpoints).
        for k in range(6):
            ctx.sim.schedule(
                4e-3 + 35e-3 * k,
                lambda: jammer.emit(25e-3, 18.0, wifi_channel(1), Technology.WIFI),
            )
        ctx.sim.run(until=0.25)
        return (ble.events, ble.event_successes, ble.event_failures,
                ble.exclusions, ble.excluded_channels())

    out = _dual_run(scenario, fading=FadingModel(2.0, 2.5))
    assert out["vector"] == out["legacy"]


def test_radio_attached_mid_transmission():
    """A radio attached while a transmission is on the air sees the same
    (lazily computed) powers as the legacy dict fallback."""

    def scenario(ctx):
        a = _attach_radio(ctx, "a", Position(0, 0), zigbee_channel(24), Technology.ZIGBEE)
        _attach_radio(ctx, "b", Position(6, 0), zigbee_channel(24), Technology.ZIGBEE)
        readings = []
        late = []

        def start_long():
            a.transmit_frame(_zigbee_frame("a", "b", 1), 0.0)

        def attach_late():
            late.append(
                _attach_radio(ctx, "late", Position(3, 1),
                              zigbee_channel(24), Technology.ZIGBEE)
            )
            # Query immediately, during the in-flight transmission (legacy
            # computes through the dict-fallback; vector through its own).
            readings.append(late[0].energy_dbm())

        ctx.sim.schedule(0.0, start_long)
        ctx.sim.schedule(0.4e-3, attach_late)  # mid-flight (frame ~1.6 ms)
        ctx.sim.schedule(1.0e-3, lambda: readings.append(late[0].energy_dbm()))
        # After the first frame ends, transmit again: the new radio is now a
        # first-class column of the link matrix.
        ctx.sim.schedule(5e-3, start_long)
        ctx.sim.schedule(5.5e-3, lambda: readings.append(late[0].energy_dbm()))
        ctx.sim.run(until=10e-3)
        return readings

    out = _dual_run(scenario, fading=FadingModel(2.0, 2.5))
    assert out["vector"] == out["legacy"]
    assert len(out["vector"][2]) == 3


# ----------------------------------------------------------------------
# Incremental interference accumulators vs brute-force re-sum
# ----------------------------------------------------------------------
_BANDS = [
    ("zigbee", zigbee_channel(24), Technology.ZIGBEE),
    ("zigbee", zigbee_channel(26), Technology.ZIGBEE),
    ("wifi", wifi_channel(11), Technology.WIFI),
    ("wifi", wifi_channel(1), Technology.WIFI),
    ("ble", ble_channel(30), Technology.BLE),
]

_OPS = st.lists(
    st.one_of(
        st.tuples(
            st.just("tx"),
            st.integers(min_value=0, max_value=4),
            st.sampled_from([0.0, 10.0, 18.0]),
            st.sampled_from([0.8e-3, 2.5e-3, 7e-3]),
        ),
        st.tuples(st.just("advance"), st.sampled_from([0.4e-3, 1.1e-3, 6e-3]),
                  st.none(), st.none()),
        st.tuples(st.just("move"), st.integers(min_value=0, max_value=4),
                  st.sampled_from([0.5, 2.0, -1.5]), st.none()),
        st.tuples(st.just("move_many"), st.integers(min_value=0, max_value=4),
                  st.sampled_from([0.5, 2.0, -1.5]), st.none()),
        st.tuples(st.just("retune"), st.integers(min_value=0, max_value=4),
                  st.integers(min_value=0, max_value=len(_BANDS) - 1), st.none()),
    ),
    min_size=3,
    max_size=18,
)


def _oracle_interference(medium, radio, exclude=(), wanted=None):
    """The legacy fold, re-run from scratch against the live active set."""
    total = 0.0
    for tx in medium._active.values():
        if tx.source is radio or tx.tx_id in exclude:
            continue
        if wanted is not None and tx.technology not in wanted:
            continue
        total += medium.captured_power_mw(tx, radio)
    return total


@settings(max_examples=30, deadline=None)
@given(ops=_OPS, seed=st.integers(min_value=0, max_value=9))
def test_accumulators_match_bruteforce_oracle(ops, seed):
    ctx = build_context(seed=seed, medium_kernel="vector",
                        fading=FadingModel(2.0, 2.5), trace_kinds=set())
    medium = ctx.medium
    radios = [
        _attach_radio(ctx, f"r{i}", Position(1.5 * i, 0.7 * (i % 3)), band, tech)
        for i, (_, band, tech) in enumerate(_BANDS)
    ]
    busy_until = {}
    for op, a, b, c in ops:
        if op == "tx":
            src = radios[a]
            if busy_until.get(a, -1.0) > ctx.sim.now:
                continue
            busy_until[a] = ctx.sim.now + c
            medium.transmit(src, c, b, src.band, src.technology)
        elif op == "advance":
            ctx.sim.run(until=ctx.sim.now + a)
        elif op == "move":
            radios[a].move_to(Position(radios[a].position.x + b,
                                       radios[a].position.y))
        elif op == "move_many":
            # Batched churn: one epoch advance for a platoon of movers.
            medium.move_many(
                (radio, Position(radio.position.x + b, radio.position.y + 0.3))
                for radio in radios[a:a + 3]
            )
        elif op == "retune":
            radios[a].retune(_BANDS[b][1])
        active_ids = list(medium._active)
        for radio in radios:
            expected = _oracle_interference(medium, radio)
            assert medium.interference_mw(radio) == expected
            wanted = frozenset({Technology.WIFI})
            assert medium.interference_mw(radio, technologies=wanted) == (
                _oracle_interference(medium, radio, wanted=wanted)
            )
            if active_ids:
                excl = (active_ids[0],)
                assert medium.interference_mw(radio, exclude=excl) == (
                    _oracle_interference(medium, radio, exclude=excl)
                )
    ctx.sim.run(until=ctx.sim.now + 20e-3)  # drain; end-edge accounting
    for radio in radios:
        assert medium.interference_mw(radio) == 0.0

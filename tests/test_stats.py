"""Campaign statistics: t critical values and summary round-trips.

Regression coverage for two real bugs: the scipy-less ``t_critical``
fallback used to return z=1.96 for *all* degrees of freedom (df=4 needs
2.776 — a 42% wider interval), and ``MetricSummary.to_dict`` emitted ``n``
as an int inside a payload declared ``Dict[str, float]`` with no typed way
back from ``report.json``.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.experiments.stats import (
    _T95_TABLE,
    MetricSummary,
    aggregate_records,
    summarize,
    t_critical,
)

try:
    from scipy import stats as scipy_stats

    HAVE_SCIPY = True
except ImportError:  # pragma: no cover - CI installs scipy
    HAVE_SCIPY = False


def _fallback_t_critical(df, confidence=0.95):
    """Call t_critical as if scipy were absent."""
    import builtins
    import unittest.mock as mock

    real_import = builtins.__import__

    def no_scipy(name, *args, **kwargs):
        if name == "scipy" or name.startswith("scipy."):
            raise ImportError(name)
        return real_import(name, *args, **kwargs)

    with mock.patch.object(builtins, "__import__", side_effect=no_scipy):
        return t_critical(df, confidence)


def test_small_sample_critical_values_are_not_z():
    """The old fallback returned 1.96 for every df."""
    assert _fallback_t_critical(1) == pytest.approx(12.706, abs=1e-3)
    assert _fallback_t_critical(4) == pytest.approx(2.776, abs=1e-3)
    assert _fallback_t_critical(10) == pytest.approx(2.228, abs=1e-3)
    assert _fallback_t_critical(30) == pytest.approx(2.042, abs=1e-3)
    # Beyond the table the normal quantile is an adequate approximation.
    assert _fallback_t_critical(31) == pytest.approx(1.959963984540054, abs=1e-9)


@pytest.mark.skipif(not HAVE_SCIPY, reason="scipy not installed")
@pytest.mark.parametrize("df", list(range(1, 31)))
def test_t_table_pins_scipy_values(df):
    """The hardcoded table must match scipy to the printed precision."""
    exact = float(scipy_stats.t.ppf(0.975, df))
    assert _T95_TABLE[df - 1] == pytest.approx(exact, abs=5e-4)
    # With scipy present, t_critical uses scipy directly.
    assert t_critical(df) == pytest.approx(exact, abs=1e-12)


def test_fallback_non_95_confidence_uses_normal_quantile():
    assert _fallback_t_critical(4, confidence=0.99) == pytest.approx(
        2.5758293035489004, abs=1e-9
    )


def test_t_critical_invalid_df():
    assert math.isnan(t_critical(0))
    assert math.isnan(t_critical(-3))


def test_table_is_monotonic_towards_normal():
    assert all(a > b for a, b in zip(_T95_TABLE, _T95_TABLE[1:]))
    assert _T95_TABLE[-1] > 1.959963984540054


# ----------------------------------------------------------------------
# MetricSummary serialization round-trip
# ----------------------------------------------------------------------
def test_metric_summary_round_trips_typed_through_json():
    summary = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
    payload = json.loads(json.dumps(summary.to_dict()))
    restored = MetricSummary.from_dict(payload)
    assert restored == summary
    assert isinstance(restored.n, int)
    assert isinstance(restored.mean, float)
    assert restored.lo == summary.lo and restored.hi == summary.hi


def test_from_dict_coerces_types():
    restored = MetricSummary.from_dict(
        {"n": 3.0, "mean": "2.5", "std": 1, "stderr": 0.5, "ci95": 0.9}
    )
    assert restored.n == 3 and isinstance(restored.n, int)
    assert restored.std == 1.0 and isinstance(restored.std, float)


def test_ci_uses_t_not_z_for_small_samples():
    """df=4: the CI half-width must reflect t=2.776, not z=1.96."""
    summary = summarize([10.0, 12.0, 9.0, 11.0, 13.0])
    expected_t = t_critical(4)
    assert expected_t > 2.7
    assert summary.ci95 == pytest.approx(expected_t * summary.stderr)


def test_aggregate_records_summaries_round_trip():
    records = [
        ({"scheme": "bicord", "seed": s}, {"delivery": 0.9 + 0.01 * s})
        for s in range(4)
    ] + [
        ({"scheme": "ecc", "seed": s}, {"delivery": 0.7 + 0.01 * s})
        for s in range(4)
    ]
    report = aggregate_records(records)
    payload = {
        group: {name: s.to_dict() for name, s in metrics.items()}
        for group, metrics in report.items()
    }
    restored = {
        group: {
            name: MetricSummary.from_dict(p) for name, p in metrics.items()
        }
        for group, metrics in json.loads(json.dumps(payload)).items()
    }
    assert restored == report

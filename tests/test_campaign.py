"""Tests for the sharded resumable campaign runner and its statistics."""

import json
import math
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.experiments.campaign import (
    CampaignError,
    CampaignJournal,
    CampaignRunner,
    CampaignSpec,
    plan_campaign,
)
from repro.experiments.stats import (
    MetricSummary,
    aggregate_records,
    comparison_table,
    summarize,
    t_critical,
)

FAST = {"n_bursts": (3, 4)}  # learning trials finish in ~0.15 s each


def fast_spec(**overrides):
    base = dict(
        name="test", experiment="learning", grid=dict(FAST),
        seeds=(0, 1), shards=2,
        compare_by="n_bursts",
    )
    base.update(overrides)
    return CampaignSpec(**base)


# ----------------------------------------------------------------------
# Statistics
# ----------------------------------------------------------------------
def test_summarize_matches_scipy_t_interval():
    values = [1.0, 2.0, 4.0, 8.0, 16.0]
    summary = summarize(values)
    assert summary.n == 5
    assert summary.mean == pytest.approx(6.2)
    scipy_stats = pytest.importorskip("scipy.stats")
    lo, hi = scipy_stats.t.interval(
        0.95, df=4, loc=summary.mean, scale=summary.stderr
    )
    assert summary.lo == pytest.approx(lo)
    assert summary.hi == pytest.approx(hi)


def test_summarize_single_value_has_zero_interval():
    summary = summarize([3.5])
    assert summary.mean == 3.5
    assert summary.ci95 == 0.0 and summary.std == 0.0


def test_summarize_empty_raises():
    with pytest.raises(ValueError):
        summarize([])


def test_t_critical_fallback_is_normal_quantile():
    # Large df converges to the 1.96 normal quantile either way.
    assert t_critical(10_000) == pytest.approx(1.96, abs=0.01)


def test_aggregate_records_groups_by_compare_key():
    records = [
        ({"scheme": "bicord", "x": 1}, {"prr": 0.9}),
        ({"scheme": "bicord", "x": 2}, {"prr": 0.8}),
        ({"scheme": "ecc", "x": 1}, {"prr": 0.5}),
    ]
    out = aggregate_records(records, compare_by="scheme")
    assert set(out) == {"bicord", "ecc"}
    assert out["bicord"]["prr"].n == 2
    assert out["bicord"]["prr"].mean == pytest.approx(0.85)
    assert out["ecc"]["prr"].n == 1


def test_aggregate_records_batch_means_folds_seeds_per_combo():
    # Two combos x two seeds each: batch means sees 2 observations, not 4.
    records = [
        ({"scheme": "s", "combo": 1}, {"m": 0.0}),
        ({"scheme": "s", "combo": 1}, {"m": 1.0}),
        ({"scheme": "s", "combo": 2}, {"m": 10.0}),
        ({"scheme": "s", "combo": 2}, {"m": 11.0}),
    ]
    flat = aggregate_records(records, compare_by="scheme")
    batched = aggregate_records(records, compare_by="scheme", batch=True)
    assert flat["s"]["m"].n == 4
    assert batched["s"]["m"].n == 2
    assert batched["s"]["m"].mean == pytest.approx(5.5)
    # Batch observations are (0.5, 10.5).
    assert batched["s"]["m"].std == pytest.approx(
        math.sqrt((0.5 - 5.5) ** 2 * 2 / 1)
    )


def test_comparison_table_renders_groups_and_metrics():
    table = comparison_table({
        "a": {"prr": MetricSummary(3, 0.9, 0.1, 0.05, 0.2)},
        "b": {"prr": MetricSummary(3, 0.5, 0.1, 0.05, 0.2)},
    })
    assert "a" in table and "b" in table and "prr" in table
    assert "+-" in table


# ----------------------------------------------------------------------
# Planning
# ----------------------------------------------------------------------
def test_plan_campaign_is_deterministic_and_sharded():
    spec = fast_spec(shards=3)
    first = plan_campaign(spec)
    second = plan_campaign(spec)
    assert [t.key for t in first] == [t.key for t in second]
    assert len(first) == 4  # 2 grid points x 2 seeds
    assert [t.shard for t in first] == [0, 1, 2, 0]
    assert len({t.key for t in first}) == 4


def test_plan_campaign_scenario_grid_merges_into_params():
    spec = CampaignSpec(
        name="s", experiment="scenario",
        grid={"scenario": ("office",)},
        scenario_grid={"scheme": ("bicord", "ecc")},
        seeds=(0,),
    )
    trials = plan_campaign(spec)
    assert len(trials) == 2
    assert {t.params["params"]["scheme"] for t in trials} == {"bicord", "ecc"}


def test_spec_rejects_bad_shapes():
    with pytest.raises(KeyError):
        CampaignSpec(name="x", experiment="nope")
    with pytest.raises(ValueError):
        fast_spec(shards=0)
    with pytest.raises(ValueError):
        fast_spec(seeds=())
    with pytest.raises(ValueError):
        fast_spec(scenario_grid={"scheme": ("bicord",)})


def test_spec_fingerprint_tracks_content():
    assert fast_spec().fingerprint() == fast_spec().fingerprint()
    assert fast_spec().fingerprint() != fast_spec(seeds=(0, 2)).fingerprint()


# ----------------------------------------------------------------------
# Journal
# ----------------------------------------------------------------------
def test_journal_roundtrip_and_torn_line_tolerance(tmp_path):
    spec = fast_spec()
    journal = CampaignJournal(tmp_path / "journal.jsonl")
    journal.write_header(spec, 4)
    journal.close()
    # Simulate a kill mid-append: a torn, unterminated trial line.
    with open(journal.path, "a", encoding="utf-8") as handle:
        handle.write('{"kind": "trial", "index": 0, "ke')
    header, trials = CampaignJournal(journal.path).read()
    assert header["fingerprint"] == spec.fingerprint()
    assert header["total"] == 4
    assert trials == {}


# ----------------------------------------------------------------------
# Runner: end-to-end, resume, guards
# ----------------------------------------------------------------------
def test_campaign_runs_to_completion_and_reports(tmp_path):
    runner = CampaignRunner(
        tmp_path / "camp", cache_dir=tmp_path / "cache", quiet=True
    )
    run = runner.run(fast_spec())
    assert run.complete and run.total == 4 and run.executed == 4
    assert run.summaries is not None
    # compare_by=n_bursts: one group per grid value, n = seeds.
    assert set(run.summaries) == {3, 4}
    assert run.summaries[3]["iterations"].n == 2
    # Completion artifacts exist and agree.
    manifest = json.loads((tmp_path / "camp" / "manifest.json").read_text())
    assert manifest["fingerprint"] == fast_spec().fingerprint()
    assert manifest["trials"] == 4
    assert len(manifest["shard_manifests"]) == 2
    report = json.loads((tmp_path / "camp" / "report.json").read_text())
    assert set(report) == {"3", "4"}
    assert report["3"]["iterations"]["n"] == 2
    # Typed round-trip: report.json loads back as MetricSummary objects
    # that equal the in-memory summaries (n as int, statistics as float).
    loaded = runner.load_report()
    assert set(loaded) == {"3", "4"}
    for group, metrics in loaded.items():
        for name, summary in metrics.items():
            assert isinstance(summary.n, int)
            assert summary == run.summaries[int(group)][name]


def test_load_report_before_completion_raises(tmp_path):
    runner = CampaignRunner(tmp_path / "camp", quiet=True)
    runner.save_spec(fast_spec())
    with pytest.raises(CampaignError, match="no report.json"):
        runner.load_report()


def test_campaign_resume_skips_journaled_trials(tmp_path):
    directory = tmp_path / "camp"
    cache = tmp_path / "cache"
    first = CampaignRunner(directory, cache_dir=cache, quiet=True).run(
        fast_spec(), max_trials=3
    )
    assert not first.complete and first.completed == 3
    resumed = CampaignRunner(directory, cache_dir=cache, quiet=True).run()
    assert resumed.complete
    assert resumed.executed == 1  # only the trial the cap excluded


def test_campaign_resume_is_free_when_cache_survives(tmp_path):
    directory = tmp_path / "camp"
    cache = tmp_path / "cache"
    CampaignRunner(directory, cache_dir=cache, quiet=True).run(fast_spec())
    # Lose the journal but keep the cache: the re-run recomputes nothing.
    (directory / "journal.jsonl").unlink()
    rerun = CampaignRunner(directory, cache_dir=cache, quiet=True).run()
    assert rerun.complete and rerun.executed == 0
    assert rerun.cached_hits == 4


def test_campaign_rejects_spec_mismatch(tmp_path):
    directory = tmp_path / "camp"
    cache = tmp_path / "cache"
    CampaignRunner(directory, cache_dir=cache, quiet=True).run(
        fast_spec(), max_trials=1
    )
    with pytest.raises(CampaignError, match="different spec"):
        CampaignRunner(directory, cache_dir=cache, quiet=True).run(
            fast_spec(seeds=(5, 6))
        )


def test_campaign_status_and_verify_cache(tmp_path):
    directory = tmp_path / "camp"
    cache = tmp_path / "cache"
    runner = CampaignRunner(directory, cache_dir=cache, quiet=True)
    runner.run(fast_spec(), max_trials=3)
    status = runner.status()
    assert status.total == 4 and status.done == 3 and status.remaining == 1
    assert not status.complete
    assert sum(status.per_shard.values()) == 3
    hits, journaled = runner.verify_cache()
    assert (hits, journaled) == (3, 3)


def test_campaign_report_requires_trials(tmp_path):
    runner = CampaignRunner(tmp_path / "camp", quiet=True)
    runner.save_spec(fast_spec())
    with pytest.raises(CampaignError, match="no completed trials"):
        runner.report()


# ----------------------------------------------------------------------
# Kill/resume: the crash-safety contract (satellite acceptance test)
# ----------------------------------------------------------------------
CAMPAIGN_ARGS = [
    "campaign", "run", "--name", "killable",
    "--experiment", "learning", "--param", "n_bursts=3,4,5",
    "--seeds", "4", "--shards", "2", "--compare-by", "n_bursts", "--quiet",
]


def _spawn_campaign(directory, cache, jobs=1):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
    env["BICORD_SWEEP_CACHE"] = str(cache)
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *CAMPAIGN_ARGS,
         "--dir", str(directory), "--jobs", str(jobs)],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )


def _wait_for_journal(path, n_trials, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, done = CampaignJournal(path).read()
        if len(done) >= n_trials:
            return done
        time.sleep(0.05)
    raise AssertionError(f"journal never reached {n_trials} trials")


def test_sigterm_kill_then_resume_zero_recompute(tmp_path):
    """Kill the campaign process mid-run; resume must recompute nothing
    journaled, and the final aggregates must be bitwise-identical to an
    uninterrupted campaign's."""
    directory = tmp_path / "killed"
    cache = tmp_path / "cache"
    proc = _spawn_campaign(directory, cache)
    try:
        _wait_for_journal(directory / "journal.jsonl", 2)
        proc.send_signal(signal.SIGTERM)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    _, done_before = CampaignJournal(directory / "journal.jsonl").read()
    assert 0 < len(done_before) < 12, "kill landed before the campaign ended"

    resumed = CampaignRunner(directory, cache_dir=cache, quiet=True).run()
    assert resumed.complete and resumed.total == 12
    # Zero recomputation of journaled work: this invocation computed only
    # what the kill prevented (executed + journaled >= total because a
    # trial can finish its cache write but die before its journal line —
    # that trial resumes as a cache hit, not a recompute).
    assert resumed.executed <= 12 - len(done_before)
    assert resumed.executed + resumed.cached_hits == 12 - len(done_before)

    # An uninterrupted control campaign over the same cache is pure cache
    # hits (zero misses) and produces bitwise-identical aggregates.
    control = CampaignRunner(
        tmp_path / "control", cache_dir=cache, quiet=True
    ).run(resumed.spec)
    assert control.complete and control.executed == 0
    assert control.cached_hits == 12
    killed_report = (directory / "report.json").read_text()
    control_report = (tmp_path / "control" / "report.json").read_text()
    assert killed_report == control_report


def test_sigterm_worker_kill_is_recoverable(tmp_path):
    """Killing one worker process mid-shard breaks the pool, but every
    trial that finished first is journaled+cached; resume completes the
    campaign without recomputing them."""
    directory = tmp_path / "wkill"
    cache = tmp_path / "cache"
    proc = _spawn_campaign(directory, cache, jobs=2)
    try:
        _wait_for_journal(directory / "journal.jsonl", 1)
        # Enumerate the pool's worker processes via /proc.
        children = []
        for task in Path(f"/proc/{proc.pid}/task").iterdir():
            children += (task / "children").read_text().split()
        if children:
            os.kill(int(children[0]), signal.SIGTERM)
        proc.wait(timeout=120)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    _, done_before = CampaignJournal(directory / "journal.jsonl").read()
    assert len(done_before) >= 1

    resumed = CampaignRunner(directory, cache_dir=cache, quiet=True).run()
    assert resumed.complete and resumed.total == 12
    assert resumed.executed <= 12 - len(done_before)


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
def test_cli_campaign_run_status_report(tmp_path, capsys):
    directory = str(tmp_path / "camp")
    cache = str(tmp_path / "cache")
    code = main([
        "campaign", "run", "--dir", directory, "--name", "cli-test",
        "--experiment", "learning", "--param", "n_bursts=3,4",
        "--seeds", "2", "--shards", "2", "--compare-by", "n_bursts",
        "--cache-dir", cache, "--quiet",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "4/4 trials done" in out
    assert "95% CI" in out

    assert main(["campaign", "status", "--dir", directory,
                 "--cache-dir", cache]) == 0
    out = capsys.readouterr().out
    assert "cli-test" in out and "remaining" in out

    assert main(["campaign", "report", "--dir", directory]) == 0
    out = capsys.readouterr().out
    assert "+-" in out and "n_bursts" in out


def test_cli_campaign_range_expansion(tmp_path, capsys):
    code = main([
        "campaign", "run", "--dir", str(tmp_path / "camp"),
        "--experiment", "learning", "--param", "n_bursts=3:5",
        "--cache-dir", str(tmp_path / "cache"),
        "--compare-by", "n_bursts", "--quiet",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "2/2 trials done" in out  # 3:5 -> n_bursts in {3, 4}


def test_cli_campaign_status_without_campaign_errors(tmp_path, capsys):
    code = main(["campaign", "status", "--dir", str(tmp_path / "nope")])
    assert code == 2
    assert "error" in capsys.readouterr().err


def test_cli_shared_flags_present_everywhere():
    """Satellite: every subcommand exposes the shared flag set."""
    from repro.cli import build_parser

    parser = build_parser()
    subparsers = next(
        a for a in parser._actions
        if isinstance(a, type(parser._subparsers._group_actions[0]))
    )
    shared = {"--seed", "--seeds", "--jobs", "--cache-dir", "--no-cache",
              "--quiet", "--metrics-out", "--verbose"}
    for name, sub in subparsers.choices.items():
        if name == "list":  # pure listing, no execution to configure
            continue
        if name == "serve":  # daemon: no per-run seeds/jobs; it has its
            continue         # own --workers/--quiet/-v (see cmd_serve)
        options = {
            option for action in sub._actions
            for option in action.option_strings
        }
        missing = shared - options
        assert not missing, f"subcommand {name!r} is missing {sorted(missing)}"

"""Declarative scenario subsystem: spec, loader, compiler, generators, registry."""

import dataclasses
import warnings

import pytest

from repro.experiments import run_experiment
from repro.experiments.sweep import SweepEngine, trial_key
from repro.experiments.topology import build_office
from repro.scenarios import (
    BurstTrafficSpec,
    ScenarioResult,
    ScenarioSpec,
    ScenarioTrialConfig,
    SpecError,
    ZigbeeLinkSpec,
    clustered,
    compile_scenario,
    get_scenario,
    get_scenario_entry,
    grid,
    load_spec,
    random_uniform,
    run_scenario_trial,
    scenario_names,
    spec_from_dict,
)
from repro.serialization import canonical_dumps, to_dict
from repro.telemetry import build_manifest


FAST = grid(n_zigbee_links=2, duration=1.5, max_bursts=3)


# ----------------------------------------------------------------------
# Spec: round-trips and strict loading
# ----------------------------------------------------------------------
def test_spec_dict_roundtrip_preserves_fingerprint():
    for name in ("smart-home", "grid", "priority-streaming"):
        spec = get_scenario(name)
        restored = spec_from_dict(spec.to_dict())
        assert restored == spec
        assert restored.fingerprint() == spec.fingerprint()


def test_fingerprint_tracks_content_not_description():
    spec = get_scenario("office")
    relabeled = dataclasses.replace(spec, description="something else")
    assert relabeled.fingerprint() == spec.fingerprint()
    changed = dataclasses.replace(spec, duration=spec.duration + 1.0)
    assert changed.fingerprint() != spec.fingerprint()


def test_unknown_key_rejected_with_path():
    data = get_scenario("smart-home").to_dict()
    data["zigbee"][0]["traffic"]["n_pakets"] = 9
    with pytest.raises(SpecError, match=r"zigbee\[0\].traffic.*n_pakets"):
        spec_from_dict(data)


def test_bad_type_rejected_with_path():
    data = get_scenario("office").to_dict()
    data["duration"] = True  # bool must not pass as a float
    with pytest.raises(SpecError, match="duration"):
        spec_from_dict(data)


def test_bad_tuple_length_rejected():
    data = get_scenario("office").to_dict()
    data["zigbee"][0]["sender_pos"] = [1.0, 2.0, 3.0]
    with pytest.raises(SpecError, match=r"sender_pos"):
        spec_from_dict(data)


def test_validate_rejects_duplicate_device_names():
    spec = get_scenario("grid", n_zigbee_links=1)
    clash = dataclasses.replace(
        spec,
        zigbee=spec.zigbee + (
            ZigbeeLinkSpec(name="dup", sender=spec.zigbee[0].sender_name),
        ),
    )
    with pytest.raises(SpecError, match="sender"):
        clash.validate()


def test_office_backend_requires_canonical_names():
    spec = get_scenario("office")
    bad = dataclasses.replace(
        spec, zigbee=(dataclasses.replace(spec.zigbee[0], sender="Z9"),)
    )
    with pytest.raises(SpecError, match="office"):
        bad.validate()


def test_load_spec_toml(tmp_path):
    path = tmp_path / "tiny.toml"
    path.write_text(
        'name = "tiny"\nduration = 1.0\n\n'
        "[[zigbee]]\nname = \"z\"\n\n"
        "[[wifi]]\nname = \"wifi\"\n",
        encoding="utf-8",
    )
    spec = load_spec(path)
    assert spec.name == "tiny"
    assert spec.zigbee[0].name == "z"


def test_load_spec_rejects_unknown_extension(tmp_path):
    path = tmp_path / "spec.yaml"
    path.write_text("name: nope\n", encoding="utf-8")
    with pytest.raises(ValueError, match="yaml"):
        load_spec(path)


# ----------------------------------------------------------------------
# Compiler: determinism and the run contract
# ----------------------------------------------------------------------
def test_compiler_is_deterministic_per_seed():
    a = compile_scenario(FAST, seed=3).run(max_events=2500)
    b = compile_scenario(FAST, seed=3).run(max_events=2500)
    assert canonical_dumps(a) == canonical_dumps(b)
    assert a.trace_digest == b.trace_digest
    c = compile_scenario(FAST, seed=4).run(max_events=2500)
    assert canonical_dumps(a) != canonical_dumps(c)


def test_compiled_scenario_runs_once():
    compiled = compile_scenario(FAST, seed=0)
    compiled.run(max_events=500)
    with pytest.raises(RuntimeError, match="once"):
        compiled.run(max_events=500)


def test_result_carries_fingerprint_and_links():
    result = compile_scenario(FAST, seed=1).run(max_events=2500)
    assert isinstance(result, ScenarioResult)
    assert result.spec_fingerprint == FAST.fingerprint()
    assert set(result.links) == {link.name for link in FAST.zigbee}
    assert set(result.wifi) == {link.name for link in FAST.wifi}
    summary = result.summary()
    assert 0.0 <= summary["delivery_ratio"] <= 1.0


def test_compile_validates_spec():
    bad = dataclasses.replace(FAST, duration=-1.0)
    with pytest.raises(SpecError, match="duration"):
        compile_scenario(bad, seed=0)


# ----------------------------------------------------------------------
# Generators: bounds and placement seeding
# ----------------------------------------------------------------------
def test_grid_is_seedless_and_stable():
    assert grid(n_zigbee_links=5).fingerprint() == grid(n_zigbee_links=5).fingerprint()
    assert grid(n_zigbee_links=5).fingerprint() != grid(n_zigbee_links=6).fingerprint()


def test_random_uniform_respects_area_bounds():
    area = (10.0, 6.0)
    spec = random_uniform(n_zigbee_links=8, area=area, placement_seed=2)
    assert len(spec.zigbee) == 8
    for link in spec.zigbee:
        for x, y in (link.sender_pos, link.receiver_pos):
            assert 0.0 <= x <= area[0]
            assert 0.0 <= y <= area[1]


def test_placement_seed_controls_layout():
    same = random_uniform(placement_seed=7).fingerprint()
    assert random_uniform(placement_seed=7).fingerprint() == same
    assert random_uniform(placement_seed=8).fingerprint() != same


def test_clustered_keeps_links_near_centers():
    radius = 1.2
    spec = clustered(
        n_clusters=2, links_per_cluster=3, cluster_radius=radius,
        area=(14.0, 9.0), placement_seed=5,
    )
    assert len(spec.zigbee) == 6
    for link in spec.zigbee:
        assert 0.0 <= link.sender_pos[0] <= 14.0
        assert 0.0 <= link.sender_pos[1] <= 9.0


# ----------------------------------------------------------------------
# Registry and the experiment/sweep integration
# ----------------------------------------------------------------------
def test_library_names_and_unknown_scenario():
    names = scenario_names()
    assert "office" in names and "dense-office" in names
    with pytest.raises(KeyError, match="available"):
        get_scenario_entry("warehouse-on-mars")


def test_unknown_scenario_param_rejected():
    with pytest.raises(TypeError, match="valid"):
        get_scenario("office", n_burstss=3)


def test_lookup_is_separator_insensitive():
    assert get_scenario_entry("Smart_Home").name == "smart-home"


def test_run_experiment_scenario_matches_direct_call():
    cfg = ScenarioTrialConfig(scenario="grid",
                              params={"n_zigbee_links": 2, "max_bursts": 3},
                              duration=1.5, max_events=2000)
    via_registry = run_experiment("scenario", config=to_dict(cfg), seed=2)
    direct = run_scenario_trial(cfg, 2)
    assert canonical_dumps(via_registry) == canonical_dumps(direct)


def test_trial_key_includes_scenario_fingerprint():
    base = {"scenario": "grid", "duration": 1.5, "max_events": 2000}
    a = trial_key("scenario", {**base, "params": {"n_zigbee_links": 2}}, 0)
    b = trial_key("scenario", {**base, "params": {"n_zigbee_links": 3}}, 0)
    assert a != b
    cfg = ScenarioTrialConfig(scenario="grid", params={"n_zigbee_links": 2})
    assert cfg.spec_fingerprint == get_scenario("grid", n_zigbee_links=2).fingerprint()


def test_scenario_sweep_caches_typed_results(tmp_path):
    engine = SweepEngine(jobs=1, cache_dir=tmp_path)
    trials = [
        {"scenario": "grid", "duration": 1.5, "max_events": 1500,
         "params": {"n_zigbee_links": n, "max_bursts": 3}}
        for n in (1, 2)
    ]
    first = engine.run_trials("scenario", trials, seeds=(0,))
    assert (first.executed, first.cached_hits) == (2, 0)
    second = engine.run_trials("scenario", trials, seeds=(0,))
    assert (second.executed, second.cached_hits) == (0, 2)
    for result in second.results:
        assert isinstance(result, ScenarioResult)
        # dict-valued fields come back as typed dataclasses, not raw dicts
        assert all(hasattr(link, "delivery_ratio") for link in result.links.values())
    for a, b in zip(first.results, second.results):
        assert canonical_dumps(a) == canonical_dumps(b)


def test_manifest_records_scenario():
    manifest = build_manifest(
        experiment="scenario", seeds=(0,), scenario="office",
        scenario_fingerprint="abc123",
    )
    assert manifest.scenario == "office"
    assert manifest.scenario_fingerprint == "abc123"


# ----------------------------------------------------------------------
# Deprecation: hand-wiring build_office from examples scripts
# ----------------------------------------------------------------------
def test_build_office_warns_only_for_example_callers():
    code = compile("import repro.experiments.topology as t\n"
                   "office = t.build_office(seed=0)\n", "examples/fake.py", "exec")
    with pytest.warns(DeprecationWarning, match="repro.scenarios"):
        exec(code, {"__name__": "examples.fake", "__file__": "examples/fake.py"})
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        build_office(seed=0)  # non-example caller stays silent

"""Tests for the baseline schemes: ECC, plain CSMA, predictive."""

import numpy as np
import pytest

from repro.baselines import CsmaNode, EccCoordinator, EccNode, PredictiveNode
from repro.experiments.topology import build_office
from repro.traffic import Burst, WifiPacketSource, ZigbeeBurstSource


def office_with_wifi(seed=1):
    office = build_office(seed=seed, location="A")
    cal = office.calibration
    WifiPacketSource(
        office.ctx, office.wifi_sender.mac, "F",
        payload_bytes=cal.wifi_payload_bytes, interval=cal.wifi_interval,
    )
    return office


# ----------------------------------------------------------------------
# ECC
# ----------------------------------------------------------------------
def test_ecc_issues_periodic_whitespaces_regardless_of_demand():
    """ECC's core pathology: white spaces are reserved blindly."""
    office = office_with_wifi()
    coordinator = EccCoordinator(office.wifi_receiver, whitespace=20e-3, period=100e-3)
    office.sim.run(until=1.05)
    coordinator.stop()
    assert coordinator.whitespaces_issued == 10
    assert coordinator.whitespace_airtime == pytest.approx(0.2)


def test_ecc_delivers_bursts_inside_windows():
    office = office_with_wifi(seed=2)
    coordinator = EccCoordinator(
        office.wifi_receiver, whitespace=30e-3, period=100e-3, ctc_reliability=1.0
    )
    node = EccNode(office.zigbee_sender, "ZR")
    coordinator.register(node)
    ZigbeeBurstSource(
        office.ctx, node.offer_burst, n_packets=5, payload_bytes=50,
        interval_mean=0.2, poisson=False, max_bursts=5,
    )
    office.sim.run(until=1.6)
    coordinator.stop()
    assert node.packets_delivered == 25
    assert node.bursts_completed == 5


def test_ecc_delay_dominated_by_period():
    """A burst waits on average about half an ECC period before service."""
    office = office_with_wifi(seed=3)
    coordinator = EccCoordinator(
        office.wifi_receiver, whitespace=30e-3, period=100e-3, ctc_reliability=1.0
    )
    node = EccNode(office.zigbee_sender, "ZR")
    coordinator.register(node)
    ZigbeeBurstSource(
        office.ctx, node.offer_burst, n_packets=5, payload_bytes=50,
        interval_mean=0.2, poisson=True, max_bursts=10,
    )
    office.sim.run(until=3.0)
    coordinator.stop()
    assert np.mean(node.packet_delays) > 0.04  # >> BiCord's ~30 ms


def test_ecc_small_window_smears_burst_over_periods():
    """A 10-packet burst cannot fit a 20 ms window: served across periods."""
    office = office_with_wifi(seed=4)
    coordinator = EccCoordinator(
        office.wifi_receiver, whitespace=20e-3, period=100e-3, ctc_reliability=1.0
    )
    node = EccNode(office.zigbee_sender, "ZR")
    coordinator.register(node)
    node.offer_burst(Burst(created_at=0.0, n_packets=10, payload_bytes=50, burst_id=1))
    office.sim.run(until=1.0)
    coordinator.stop()
    assert node.packets_delivered == 10
    assert node.burst_latencies[0] > 0.25  # at least ~4 periods


def test_ecc_missed_ctc_skips_window():
    office = office_with_wifi(seed=5)
    coordinator = EccCoordinator(
        office.wifi_receiver, whitespace=30e-3, period=100e-3, ctc_reliability=0.0
    )
    node = EccNode(office.zigbee_sender, "ZR")
    coordinator.register(node)
    node.offer_burst(Burst(created_at=0.0, n_packets=2, payload_bytes=50, burst_id=1))
    office.sim.run(until=0.5)
    coordinator.stop()
    assert node.packets_delivered == 0  # never told about any white space


def test_ecc_grant_policy_skips_whitespaces():
    office = office_with_wifi(seed=6)
    coordinator = EccCoordinator(
        office.wifi_receiver, whitespace=20e-3, period=100e-3,
        grant_policy=lambda: False,
    )
    office.sim.run(until=0.55)
    coordinator.stop()
    assert coordinator.whitespaces_issued == 0
    assert coordinator.skipped == 5


def test_ecc_validates_whitespace_vs_period():
    office = office_with_wifi(seed=7)
    with pytest.raises(ValueError):
        EccCoordinator(office.wifi_receiver, whitespace=0.2, period=0.1)


# ----------------------------------------------------------------------
# Plain CSMA
# ----------------------------------------------------------------------
def test_csma_starves_under_saturated_wifi():
    """Paper Sec. VIII-A: >95% loss without coordination."""
    office = office_with_wifi(seed=8)
    node = CsmaNode(office.zigbee_sender, "ZR", app_retries=2)
    ZigbeeBurstSource(
        office.ctx, node.offer_burst, n_packets=5, payload_bytes=50,
        interval_mean=0.2, poisson=False, max_bursts=8,
    )
    office.sim.run(until=3.0)
    total = node.packets_delivered + node.packets_dropped
    assert total > 0
    assert node.packets_delivered / max(total, 1) < 0.2


def test_csma_works_fine_on_clear_channel():
    office = build_office(seed=9, location="A")  # no Wi-Fi traffic
    node = CsmaNode(office.zigbee_sender, "ZR")
    ZigbeeBurstSource(
        office.ctx, node.offer_burst, n_packets=5, payload_bytes=50,
        interval_mean=0.2, poisson=False, max_bursts=5,
    )
    office.sim.run(until=1.5)
    assert node.packets_delivered == 25
    assert node.packets_dropped == 0


# ----------------------------------------------------------------------
# Predictive
# ----------------------------------------------------------------------
def test_predictive_starves_under_saturated_wifi():
    """Local gap prediction finds no usable white space under saturation."""
    office = office_with_wifi(seed=10)
    node = PredictiveNode(office.zigbee_sender, "ZR")
    ZigbeeBurstSource(
        office.ctx, node.offer_burst, n_packets=5, payload_bytes=50,
        interval_mean=0.2, poisson=False, max_bursts=5,
    )
    office.sim.run(until=2.0)
    node.stop()
    assert node.packets_delivered <= 5  # essentially starved


def test_predictive_uses_clear_channel():
    office = build_office(seed=11, location="A")
    node = PredictiveNode(office.zigbee_sender, "ZR")
    ZigbeeBurstSource(
        office.ctx, node.offer_burst, n_packets=5, payload_bytes=50,
        interval_mean=0.3, poisson=False, max_bursts=4,
    )
    office.sim.run(until=3.0)
    node.stop()
    assert node.packets_delivered == 20
    assert node.transmit_opportunities >= 4


def test_predictive_exploits_long_artificial_gaps():
    """With Wi-Fi present but gappy, the predictor finds the gaps."""
    office = build_office(seed=12, location="A")
    cal = office.calibration
    # Sparse Wi-Fi: ~1.2 ms frames every 20 ms leave ~19 ms gaps — plenty
    # for a ZigBee exchange (~5 ms).
    WifiPacketSource(
        office.ctx, office.wifi_sender.mac, "F",
        payload_bytes=cal.wifi_payload_bytes, interval=20e-3,
    )
    node = PredictiveNode(office.zigbee_sender, "ZR", percentile=10.0)
    ZigbeeBurstSource(
        office.ctx, node.offer_burst, n_packets=3, payload_bytes=50,
        interval_mean=0.3, poisson=False, max_bursts=4,
    )
    office.sim.run(until=3.0)
    node.stop()
    assert node.packets_delivered >= 6

"""Tests for ``campaign_from_generator`` and the ``campaign gen`` CLI."""

import json

import pytest

from repro.cli import main
from repro.experiments import campaign_from_generator
from repro.experiments.campaign import plan_campaign


class TestCampaignFromGenerator:
    def test_builds_a_placement_sweep_spec(self):
        spec = campaign_from_generator(
            "placements", "random_uniform", count=5,
            params={"n_zigbee_links": 3}, seeds=(0, 1),
        )
        assert spec.experiment == "scenario"
        # The library canonicalizes generator names (hyphenated).
        assert spec.base["scenario"] == "random-uniform"
        assert spec.base["params"] == {"n_zigbee_links": 3}
        assert spec.scenario_grid == {"placement_seed": (0, 1, 2, 3, 4)}
        assert spec.seeds == (0, 1)
        # 5 placements x 2 seeds.
        assert len(plan_campaign(spec)) == 10

    def test_start_offsets_the_axis_range(self):
        spec = campaign_from_generator(
            "shifted", "random_uniform", count=3, start=100,
        )
        assert spec.scenario_grid == {"placement_seed": (100, 101, 102)}

    def test_base_and_grid_pass_through(self):
        spec = campaign_from_generator(
            "mixed", "random_uniform", count=2,
            base={"max_events": 50000},
            grid={"duration": (0.05, 0.1)},
        )
        assert spec.base["max_events"] == 50000
        assert spec.grid == {"duration": (0.05, 0.1)}
        # 2 placements x 2 durations x 1 seed.
        assert len(plan_campaign(spec)) == 4

    def test_grid_generator_has_no_placement_seed(self):
        # The deterministic 'grid' generator can't re-roll placements; the
        # helper must say so at build time, naming the valid knobs.
        with pytest.raises(ValueError, match="placement_seed"):
            campaign_from_generator("bad", "grid", count=4)

    def test_unknown_generator(self):
        with pytest.raises(KeyError):
            campaign_from_generator("bad", "no-such-generator", count=2)

    def test_unknown_fixed_param(self):
        with pytest.raises(ValueError, match="frobnicate"):
            campaign_from_generator(
                "bad", "random_uniform", count=2,
                params={"frobnicate": 1},
            )

    def test_axis_cannot_also_be_fixed(self):
        with pytest.raises(ValueError, match="swept, not fixed"):
            campaign_from_generator(
                "bad", "random_uniform", count=2,
                params={"placement_seed": 7},
            )

    def test_reserved_base_keys_rejected(self):
        with pytest.raises(ValueError, match="may not set"):
            campaign_from_generator(
                "bad", "random_uniform", count=2,
                base={"scenario": "office"},
            )
        with pytest.raises(ValueError, match="may not set"):
            campaign_from_generator(
                "bad", "random_uniform", count=2,
                grid={"params": ({},)},
            )

    def test_count_must_be_positive(self):
        with pytest.raises(ValueError, match="count must be"):
            campaign_from_generator("bad", "random_uniform", count=0)


class TestCampaignGenCli:
    def test_gen_runs_a_generator_campaign(self, tmp_path, monkeypatch):
        monkeypatch.setenv("BICORD_SWEEP_CACHE", str(tmp_path / "cache"))
        directory = tmp_path / "camp"
        code = main([
            "campaign", "gen", "--name", "cli-placements",
            "--generator", "random_uniform", "--count", "2",
            "--gen-param", "n_zigbee_links=2",
            "--base", "duration=0.02",
            "--dir", str(directory), "--quiet",
        ])
        assert code == 0
        manifest = json.loads((directory / "manifest.json").read_text())
        assert manifest["name"] == "cli-placements"
        assert manifest["trials"] == 2
        # The scheduler backend made it into provenance.
        assert all(m["backend"] for m in manifest["shard_manifests"])

    def test_gen_requires_a_generator(self, tmp_path, capsys):
        code = main([
            "campaign", "gen", "--name", "x", "--dir", str(tmp_path / "c"),
        ])
        assert code == 2
        assert "--generator" in capsys.readouterr().err

    def test_gen_surfaces_validation_errors(self, tmp_path, capsys):
        code = main([
            "campaign", "gen", "--name", "x",
            "--generator", "grid", "--count", "2",
            "--dir", str(tmp_path / "c"),
        ])
        assert code == 2
        assert "placement_seed" in capsys.readouterr().err

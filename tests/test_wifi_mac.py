"""Tests for the 802.11 DCF MAC."""

import pytest

from repro.mac.frames import FrameType, wifi_data_frame
from repro.mac.wifi import DIFS_S, WifiMac
from repro.traffic import WifiPacketSource

from .helpers import deterministic_context, wifi_pair


def enqueue_data(ctx, mac: WifiMac, destination="F", payload=100, seq=1, priority=0):
    frame = wifi_data_frame(
        mac.radio.name, destination, payload, mac.data_rate,
        created_at=ctx.sim.now, priority=priority,
    )
    frame.seq = seq
    mac.enqueue(frame)
    return frame


def test_unicast_delivery_with_ack():
    ctx = deterministic_context()
    sender, receiver = wifi_pair(ctx)
    enqueue_data(ctx, sender.mac)
    ctx.sim.run(until=0.01)
    assert sender.mac.data_delivered == 1
    assert sender.mac.acks_missed == 0
    assert receiver.radio.frames_received >= 1


def test_saturated_source_throughput_reasonable():
    """100 B at 24 Mbps every 1 ms is far below saturation: all delivered."""
    ctx = deterministic_context()
    sender, receiver = wifi_pair(ctx)
    WifiPacketSource(ctx, sender.mac, "F", payload_bytes=100, interval=1e-3)
    ctx.sim.run(until=0.2)
    assert sender.mac.data_delivered == pytest.approx(200, abs=2)


def test_delay_recorded_for_delivered_frames():
    ctx = deterministic_context()
    sender, _ = wifi_pair(ctx)
    enqueue_data(ctx, sender.mac)
    ctx.sim.run(until=0.01)
    assert len(sender.mac.delays) == 1
    # One exchange takes at least DIFS + frame + SIFS + ack.
    assert 1e-4 < sender.mac.delays[0] < 2e-3


def test_no_ack_triggers_retries_then_drop():
    ctx = deterministic_context()
    sender, receiver = wifi_pair(ctx)
    receiver.radio.enabled = False  # receiver gone: no ACKs ever
    enqueue_data(ctx, sender.mac)
    ctx.sim.run(until=0.5)
    assert sender.mac.data_delivered == 0
    assert sender.mac.data_dropped == 1
    assert sender.mac.acks_missed == 8  # RETRY_LIMIT + 1 attempts


def test_two_contending_senders_share_channel():
    ctx = deterministic_context(seed=5)
    from repro.devices import WifiDevice
    from repro.phy.propagation import Position

    a = WifiDevice(ctx, "A", Position(0, 0))
    b = WifiDevice(ctx, "B", Position(1, 0))
    receiver = WifiDevice(ctx, "R", Position(0.5, 1))
    WifiPacketSource(ctx, a.mac, "R", payload_bytes=500, interval=2e-4, name="sa")
    WifiPacketSource(ctx, b.mac, "R", payload_bytes=500, interval=2e-4, name="sb")
    ctx.sim.run(until=0.3)
    # Both make progress; losses come only from same-slot collisions, whose
    # rate for two saturated stations is Bianchi's p ~= 0.105.
    assert a.mac.data_delivered > 100
    assert b.mac.data_delivered > 100
    total_sent = a.mac.data_sent + b.mac.data_sent
    total_delivered = a.mac.data_delivered + b.mac.data_delivered
    assert total_delivered / total_sent > 0.82


def test_cts_to_self_silences_other_wifi():
    ctx = deterministic_context()
    sender, receiver = wifi_pair(ctx)
    WifiPacketSource(ctx, sender.mac, "F", payload_bytes=100, interval=1e-3)
    whitespace = 0.030

    def reserve():
        receiver.mac.reserve_whitespace(whitespace)

    ctx.sim.schedule(0.05, reserve)
    ctx.sim.run(until=0.15)
    # No data transmissions from the sender inside the white space.
    cts_time = None
    gap_txs = 0
    for record in ctx.trace.of_kind("wifi.tx"):
        pass  # trace kinds disabled in helper; use airtime check instead
    # Check via NAV: sender NAV extends past the reservation point.
    assert sender.mac.nav_until >= 0.05 + whitespace * 0.9


def test_suppression_window_blocks_own_tx():
    ctx = deterministic_context()
    sender, receiver = wifi_pair(ctx)
    sender.mac.suppress_until(0.02)
    enqueue_data(ctx, sender.mac)
    ctx.sim.run(until=0.019)
    assert sender.mac.data_sent == 0
    ctx.sim.run(until=0.05)
    assert sender.mac.data_sent == 1


def test_nav_blocks_transmission_until_expiry():
    ctx = deterministic_context()
    sender, receiver = wifi_pair(ctx)
    # Receiver reserves a white space; sender must stay silent then resume.
    ctx.sim.schedule(0.0, lambda: receiver.mac.reserve_whitespace(0.02))
    ctx.sim.schedule(0.005, lambda: enqueue_data(ctx, sender.mac))
    ctx.sim.run(until=0.0195)
    assert sender.mac.data_sent == 0
    ctx.sim.run(until=0.05)
    assert sender.mac.data_sent == 1
    assert sender.mac.data_delivered == 1


def test_backoff_freezes_while_medium_busy():
    """A frame enqueued during another transmission waits for it to end."""
    ctx = deterministic_context()
    from repro.devices import WifiDevice
    from repro.phy.propagation import Position

    a = WifiDevice(ctx, "A", Position(0, 0))
    b = WifiDevice(ctx, "B", Position(1, 0))
    WifiDevice(ctx, "R", Position(0.5, 1))
    # A sends a long frame; B enqueues mid-frame.
    long_frame = wifi_data_frame("A", "R", 1500, a.mac.data_rate)
    long_frame.seq = 1
    a.mac.enqueue(long_frame)
    a_duration = long_frame.duration()

    sent_times = []
    b.mac.sent_listeners.append(lambda f: sent_times.append(ctx.sim.now))
    ctx.sim.schedule(50e-6, lambda: enqueue_data(ctx, b.mac, destination="R", seq=2))
    ctx.sim.run(until=0.02)
    assert sent_times, "B never transmitted"
    # B's completion (first sent event) must come after A's frame ended + DIFS.
    assert sent_times[0] > DIFS_S + a_duration


def test_queue_priority_inspection():
    ctx = deterministic_context()
    sender, _ = wifi_pair(ctx)
    assert sender.mac.highest_queued_priority() == 0
    sender.mac.suppress_until(1.0)
    enqueue_data(ctx, sender.mac, seq=1, priority=0)
    enqueue_data(ctx, sender.mac, seq=2, priority=1)
    assert sender.mac.highest_queued_priority() == 1
    assert sender.mac.busy_with_traffic


def test_wifi_mac_requires_wifi_radio():
    ctx = deterministic_context()
    from repro.devices import ZigbeeDevice
    from repro.phy.propagation import Position

    z = ZigbeeDevice(ctx, "Z", Position(0, 0))
    with pytest.raises(ValueError):
        WifiMac(z.radio, ctx.sim)

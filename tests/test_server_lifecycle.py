"""Lifecycle tests for the in-process job server.

The server runs its own asyncio loop in a background thread; every test
talks to it exactly like an external client would (through
:class:`repro.api.Client` over the loopback socket), so these cover the
full protocol path — only SIGTERM delivery is left to the subprocess
end-to-end test in ``test_server_e2e.py``.
"""

import asyncio
import threading
import time
from contextlib import contextmanager

import pytest

from repro.api import Client, ServerError
from repro.experiments.sweep import SweepEngine
from repro.server import JobServer, JobState, ServerConfig

#: A trial that takes a few milliseconds of wall time.
TINY = {"scenario": "office", "duration": 0.02}
#: A trial slow enough (~0.5 s wall) to still be running when we poke it.
SLOW = {"scenario": "office", "duration": 5.0}


@contextmanager
def running_server(tmp_path, **overrides):
    options = dict(
        state_dir=tmp_path / "state",
        cache_dir=tmp_path / "cache",
        workers=1,
        queue_depth=2,
        snapshot_interval=0.05,
        drain_grace=10.0,
    )
    options.update(overrides)
    server = JobServer(ServerConfig(**options))
    thread = threading.Thread(
        target=lambda: asyncio.run(server.serve()), daemon=True
    )
    thread.start()
    client = Client.from_state_dir(
        options["state_dir"], retry_for=10.0, client_name="test"
    )
    try:
        yield server, client
    finally:
        try:
            client.shutdown()
        except (ServerError, ConnectionError, OSError):
            pass
        thread.join(timeout=60)
        assert not thread.is_alive(), "server thread failed to drain"


def _wait_for_state(client, job_id, state, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        record = client.status(job_id)
        if record["state"] == state:
            return record
        time.sleep(0.02)
    raise TimeoutError(f"job {job_id} never reached {state}")


class TestSubmitAndResult:
    def test_job_runs_to_done_with_results(self, tmp_path):
        with running_server(tmp_path) as (_, client):
            job = client.submit(params=TINY, seeds=[0, 1])
            assert job["state"] == "queued" and not job["cached"]
            record = client.wait(job["job_id"], timeout=60)
            assert record["state"] == JobState.DONE
            assert record["done_trials"] == record["total_trials"] == 2
            payload = client.result(job["job_id"])
            assert len(payload["results"]) == 2
            assert {row["seed"] for row in payload["results"]} == {0, 1}
            for row in payload["results"]:
                assert row["metrics"]["delivery_ratio"] >= 0.0

    def test_result_of_unfinished_job_is_an_error(self, tmp_path):
        with running_server(tmp_path) as (_, client):
            job = client.submit(params=SLOW, seeds=[0])
            with pytest.raises(ServerError) as excinfo:
                client.result(job["job_id"])
            assert "not done" in str(excinfo.value)
            client.wait(job["job_id"], timeout=60)

    def test_unknown_experiment_is_a_clean_error(self, tmp_path):
        with running_server(tmp_path) as (_, client):
            with pytest.raises(ServerError, match="unknown experiment"):
                client.submit(experiment="nonsense", params={})

    def test_duplicate_active_submission_deduplicates(self, tmp_path):
        with running_server(tmp_path) as (_, client):
            first = client.submit(params=SLOW, seeds=[0])
            second = client.submit(params=SLOW, seeds=[0])
            assert second["job_id"] == first["job_id"]
            assert second["deduplicated"] is True
            client.wait(first["job_id"], timeout=60)


class TestCacheHitFastPath:
    def test_cached_submission_never_touches_a_worker(self, tmp_path):
        # Warm the cache out-of-band, exactly as a prior sweep would have.
        engine = SweepEngine(cache_dir=tmp_path / "cache")
        engine.run_pairs("scenario", [(TINY, 0), (TINY, 1)])

        with running_server(tmp_path) as (_, client):
            job = client.submit(params=TINY, seeds=[0, 1])
            # Completed at submit time: no queue, no worker, no pool.
            assert job["cached"] is True and job["state"] == "done"
            record = client.status(job["job_id"])
            assert record["from_cache"] is True
            assert record["cached_hits"] == 2
            counters = client.stats()["counters"]
            assert counters.get("server.cache_hit_jobs") == 1
            assert "server.pool_spawned" not in counters
            assert "server.trials_executed" not in counters
            # And the results are served straight from the cache.
            payload = client.result(job["job_id"])
            assert len(payload["results"]) == 2


class TestBackpressureAndCancel:
    def test_full_queue_rejects_with_retry_after(self, tmp_path):
        with running_server(tmp_path, queue_depth=1) as (_, client):
            blocker = client.submit(params=SLOW, seeds=[0, 1, 2])
            _wait_for_state(client, blocker["job_id"], JobState.RUNNING)
            queued = client.submit(params=TINY, seeds=[0])
            assert queued["state"] == "queued"
            with pytest.raises(ServerError) as excinfo:
                client.submit(params=TINY, seeds=[1])
            assert "queue full" in str(excinfo.value)
            assert excinfo.value.retry_after is not None
            assert excinfo.value.retry_after > 0.0
            assert client.stats()["counters"]["server.rejections"] == 1
            client.cancel(blocker["job_id"])
            client.wait(blocker["job_id"], timeout=60)
            client.wait(queued["job_id"], timeout=60)

    def test_cancel_queued_job_is_immediate(self, tmp_path):
        with running_server(tmp_path) as (_, client):
            blocker = client.submit(params=SLOW, seeds=[0, 1])
            _wait_for_state(client, blocker["job_id"], JobState.RUNNING)
            queued = client.submit(params=TINY, seeds=[3])
            response = client.cancel(queued["job_id"])
            assert response["state"] == JobState.CANCELLED
            record = client.status(queued["job_id"])
            assert record["state"] == JobState.CANCELLED
            assert record["done_trials"] == 0
            client.cancel(blocker["job_id"])
            client.wait(blocker["job_id"], timeout=60)

    def test_cancel_running_job_stops_between_trials(self, tmp_path):
        with running_server(tmp_path) as (_, client):
            job = client.submit(params=SLOW, seeds=list(range(8)))
            _wait_for_state(client, job["job_id"], JobState.RUNNING)
            response = client.cancel(job["job_id"])
            assert response["cancelling"] is True
            record = client.wait(job["job_id"], timeout=60)
            assert record["state"] == JobState.CANCELLED
            # It stopped early: the in-flight trial finished, the rest never ran.
            assert record["done_trials"] < record["total_trials"]

    def test_cancel_terminal_job_is_an_error(self, tmp_path):
        with running_server(tmp_path) as (_, client):
            job = client.submit(params=TINY, seeds=[0])
            client.wait(job["job_id"], timeout=60)
            with pytest.raises(ServerError, match="already done"):
                client.cancel(job["job_id"])


class TestPriorityScheduling:
    def test_high_priority_overtakes_low_within_the_queue(self, tmp_path):
        with running_server(tmp_path, queue_depth=4) as (_, client):
            low_client = Client(
                client.host, client.port, client_name="low-roller"
            )
            high_client = Client(
                client.host, client.port, client_name="vip"
            )
            blocker = client.submit(params=SLOW, seeds=[0, 1])
            _wait_for_state(client, blocker["job_id"], JobState.RUNNING)
            # Submitted first at low priority, second at high priority.
            low = low_client.submit(params=TINY, seeds=[10], priority=5)
            high = high_client.submit(params=TINY, seeds=[11], priority=0)
            low_rec = client.wait(low["job_id"], timeout=60)
            high_rec = client.wait(high["job_id"], timeout=60)
            assert high_rec["started_at"] < low_rec["started_at"]


class TestWatchStream:
    def test_watch_streams_snapshots_until_end(self, tmp_path):
        with running_server(tmp_path) as (_, client):
            job = client.submit(params=SLOW, seeds=[0, 1, 2])
            frames = list(client.watch(job["job_id"]))
            kinds = [frame["type"] for frame in frames]
            assert kinds[0] == "snapshot"
            assert kinds[-1] == "end"
            assert frames[-1]["state"] == JobState.DONE
            # Snapshots carry live progress fields.
            snap = frames[0]
            assert {"done_trials", "total_trials", "cached_hits",
                    "queue_depth"} <= set(snap)

    def test_watch_of_finished_job_ends_immediately(self, tmp_path):
        with running_server(tmp_path) as (_, client):
            job = client.submit(params=TINY, seeds=[0])
            client.wait(job["job_id"], timeout=60)
            frames = list(client.watch(job["job_id"]))
            assert [f["type"] for f in frames] == ["snapshot", "end"]

    def test_watch_unknown_job_is_an_error(self, tmp_path):
        with running_server(tmp_path) as (_, client):
            with pytest.raises(ServerError, match="unknown job"):
                list(client.watch("j99999-nope"))


class TestDrainAndResume:
    def test_drain_rejects_new_submissions(self, tmp_path):
        with running_server(tmp_path) as (_, client):
            job = client.submit(params=SLOW, seeds=[0, 1])
            _wait_for_state(client, job["job_id"], JobState.RUNNING)
            client.shutdown()
            with pytest.raises((ServerError, ConnectionError)):
                client.submit(params=TINY, seeds=[9])

    def test_interrupted_jobs_resume_on_restart(self, tmp_path):
        # Server 1: one running and one queued job, then a hard drain
        # (grace shorter than a trial, so the running job is interrupted).
        with running_server(
            tmp_path, drain_grace=0.1, queue_depth=4
        ) as (_, client):
            running = client.submit(params=SLOW, seeds=[0, 1, 2, 3])
            _wait_for_state(client, running["job_id"], JobState.RUNNING)
            queued = client.submit(params=TINY, seeds=[7])
            assert queued["state"] == "queued"

        # Both jobs were journaled back to queued by the drain.
        from repro.server.journal import ServerJournal

        restored = {
            r.job_id: r.state
            for r in ServerJournal(tmp_path / "state" / "jobs.jsonl").replay()
        }
        assert restored[running["job_id"]] == JobState.QUEUED
        assert restored[queued["job_id"]] == JobState.QUEUED

        # Server 2 over the same state dir replays and finishes both;
        # trials that completed before the drain come back as cache hits.
        with running_server(tmp_path, queue_depth=4) as (_, client2):
            done = client2.wait(running["job_id"], timeout=120)
            assert done["state"] == JobState.DONE
            assert done["total_trials"] == 4
            other = client2.wait(queued["job_id"], timeout=120)
            assert other["state"] == JobState.DONE

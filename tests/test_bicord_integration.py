"""End-to-end BiCord protocol tests on the office topology."""

import numpy as np
import pytest

from repro.core import BicordConfig, BicordCoordinator, BicordNode
from repro.devices import WifiDevice
from repro.experiments.topology import Calibration, build_office, location_powermap
from repro.traffic import Burst, WifiPacketSource, ZigbeeBurstSource

from .helpers import deterministic_context


def standard_setup(seed=1, location="A", config=None, grant_policy=None):
    office = build_office(seed=seed, location=location)
    cal = office.calibration
    WifiPacketSource(
        office.ctx, office.wifi_sender.mac, "F",
        payload_bytes=cal.wifi_payload_bytes, interval=cal.wifi_interval,
    )
    coordinator = BicordCoordinator(
        office.wifi_receiver, config=config, grant_policy=grant_policy
    )
    node = BicordNode(
        office.zigbee_sender, "ZR", config=config,
        powermap=location_powermap(location),
    )
    return office, coordinator, node


def test_coordinator_requires_csi_device():
    ctx = deterministic_context()
    from repro.phy.propagation import Position

    plain = WifiDevice(ctx, "W", Position(0, 0))  # no CSI observer
    with pytest.raises(ValueError):
        BicordCoordinator(plain)


def test_burst_delivered_under_saturated_wifi():
    office, coordinator, node = standard_setup()
    ZigbeeBurstSource(
        office.ctx, node.offer_burst, n_packets=5, payload_bytes=50,
        interval_mean=0.2, poisson=False, max_bursts=5,
    )
    office.sim.run(until=1.5)
    assert node.packets_delivered == 25
    assert node.bursts_completed == 5
    assert coordinator.grants_issued >= 5


def test_signaling_is_used_when_needed():
    """Under saturated Wi-Fi the node must actually send control packets."""
    office, coordinator, node = standard_setup(seed=2)
    ZigbeeBurstSource(
        office.ctx, node.offer_burst, n_packets=10, payload_bytes=50,
        interval_mean=0.25, poisson=False, max_bursts=6,
    )
    office.sim.run(until=2.0)
    assert node.control_packets_sent > 0
    assert node.signaling_salvos > 0


def test_no_signaling_on_clear_channel():
    """Without Wi-Fi traffic the node never signals (CTI check gates it)."""
    office = build_office(seed=3)  # no Wi-Fi source attached
    node = BicordNode(office.zigbee_sender, "ZR", powermap=location_powermap("A"))
    ZigbeeBurstSource(
        office.ctx, node.offer_burst, n_packets=5, payload_bytes=50,
        interval_mean=0.2, poisson=False, max_bursts=3,
    )
    office.sim.run(until=1.0)
    assert node.packets_delivered == 15
    assert node.control_packets_sent == 0


def test_mean_delay_well_below_ecc_scale():
    """Fig. 10b headline: BiCord keeps mean delay in the tens of ms."""
    office, coordinator, node = standard_setup(seed=4)
    ZigbeeBurstSource(
        office.ctx, node.offer_burst, n_packets=5, payload_bytes=50,
        interval_mean=0.2, poisson=True, max_bursts=10,
    )
    office.sim.run(until=3.0)
    assert node.packets_delivered >= 45
    assert np.mean(node.packet_delays) < 0.08  # paper: ~30 ms; ECC: 100-300 ms


def test_allocator_learns_longer_whitespace_for_bigger_bursts():
    office, coordinator, node = standard_setup(seed=5)
    ZigbeeBurstSource(
        office.ctx, node.offer_burst, n_packets=10, payload_bytes=50,
        interval_mean=0.25, poisson=False, max_bursts=10,
    )
    office.sim.run(until=3.0)
    assert coordinator.allocator.current_whitespace > 0.04
    assert coordinator.allocator.learning_iterations >= 1


def test_grant_policy_veto_blocks_whitespaces():
    office, coordinator, node = standard_setup(seed=6, grant_policy=lambda: False)
    ZigbeeBurstSource(
        office.ctx, node.offer_burst, n_packets=5, payload_bytes=50,
        interval_mean=0.2, poisson=False, max_bursts=3,
    )
    office.sim.run(until=1.2)
    assert coordinator.grants_issued == 0
    assert coordinator.requests_ignored > 0
    assert node.salvos_abandoned > 0  # the node gave up salvos and backed off


def test_wifi_prr_barely_affected_by_signaling():
    """Sec. V: signaling degrades Wi-Fi PRR by only a few percent."""
    office, coordinator, node = standard_setup(seed=7)
    ZigbeeBurstSource(
        office.ctx, node.offer_burst, n_packets=5, payload_bytes=50,
        interval_mean=0.2, poisson=False, max_bursts=8,
    )
    office.sim.run(until=2.0)
    mac = office.wifi_sender.mac
    prr = mac.data_delivered / max(mac.data_sent, 1)
    assert prr > 0.9


def test_node_idle_property():
    office, coordinator, node = standard_setup(seed=8)
    assert node.idle
    node.offer_burst(Burst(created_at=0.0, n_packets=2, payload_bytes=30, burst_id=1))
    assert node.outstanding_packets == 2
    office.sim.run(until=1.0)
    assert node.idle


def test_reestimation_timer_fires():
    config = BicordConfig()
    config.allocator.reestimation_period = 0.3
    office, coordinator, node = standard_setup(seed=9, config=config)
    ZigbeeBurstSource(
        office.ctx, node.offer_burst, n_packets=10, payload_bytes=50,
        interval_mean=0.25, poisson=False, max_bursts=4,
    )
    office.sim.run(until=1.4)
    learned = coordinator.allocator.current_whitespace
    # After the last timer reset with no traffic, the allocator is back at
    # the initial step.
    office.sim.run(until=2.0)
    assert coordinator.allocator.current_whitespace == pytest.approx(
        config.allocator.initial_whitespace
    )


def test_coordinator_whitespace_accounting():
    office, coordinator, node = standard_setup(seed=10)
    ZigbeeBurstSource(
        office.ctx, node.offer_burst, n_packets=5, payload_bytes=50,
        interval_mean=0.2, poisson=False, max_bursts=4,
    )
    office.sim.run(until=1.2)
    assert coordinator.whitespace_airtime == pytest.approx(
        sum(g.duration for g in coordinator.allocator.grants), rel=0.01
    )

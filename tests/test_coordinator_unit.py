"""Coordinator unit behaviours driven by synthetic CSI (no ZigBee node)."""

import pytest

from repro.core import BicordConfig, BicordCoordinator
from repro.experiments.topology import build_office
from repro.phy.csi import CsiSample
from repro.traffic import WifiPacketSource


def coordinator_setup(seed=1, config=None, grant_policy=None):
    office = build_office(seed=seed, location="A")
    cal = office.calibration
    WifiPacketSource(
        office.ctx, office.wifi_sender.mac, "F",
        payload_bytes=cal.wifi_payload_bytes, interval=cal.wifi_interval,
    )
    coordinator = BicordCoordinator(
        office.wifi_receiver, config=config, grant_policy=grant_policy
    )
    return office, coordinator


def inject_detection(office, coordinator, at):
    """Force two high CSI samples through the detector at time ``at``."""

    def fire():
        coordinator.detector.observe(
            CsiSample(time=office.ctx.sim.now, deviation=0.9, zigbee_overlap=True)
        )
        coordinator.detector.observe(
            CsiSample(time=office.ctx.sim.now + 1e-4, deviation=0.9,
                      zigbee_overlap=True)
        )

    office.ctx.sim.schedule_at(at, fire)


def test_detection_triggers_exactly_one_grant():
    office, coordinator = coordinator_setup()
    inject_detection(office, coordinator, 0.05)
    office.ctx.sim.run(until=0.2)
    assert coordinator.grants_issued == 1
    assert coordinator.allocator.rounds_in_current_burst in (0, 1)


def test_detection_during_active_whitespace_is_ignored():
    office, coordinator = coordinator_setup()
    inject_detection(office, coordinator, 0.05)
    inject_detection(office, coordinator, 0.06)  # inside the 30 ms grant
    office.ctx.sim.run(until=0.2)
    assert coordinator.grants_issued == 1


def test_detection_after_whitespace_continues_burst():
    office, coordinator = coordinator_setup()
    inject_detection(office, coordinator, 0.05)
    # ~1 ms after the 30 ms white space ends: round 2 of the same burst.
    inject_detection(office, coordinator, 0.085)
    office.ctx.sim.run(until=0.2)
    assert coordinator.grants_issued == 2
    # Both grants belong to one burst -> the estimate updated once.
    assert coordinator.allocator.bursts_observed == 1
    assert coordinator.allocator.learning_iterations == 1


def test_silence_after_whitespace_ends_burst():
    office, coordinator = coordinator_setup()
    inject_detection(office, coordinator, 0.05)
    office.ctx.sim.run(until=0.3)
    assert coordinator.bursts_completed == 1
    assert coordinator.allocator.converged  # one-round burst


def test_policy_consulted_per_detection():
    calls = []

    def policy():
        calls.append(True)
        return False

    office, coordinator = coordinator_setup(grant_policy=policy)
    inject_detection(office, coordinator, 0.05)
    inject_detection(office, coordinator, 0.10)
    office.ctx.sim.run(until=0.2)
    assert coordinator.grants_issued == 0
    assert coordinator.requests_ignored == 2
    assert len(calls) == 2


def test_stop_cancels_timers():
    office, coordinator = coordinator_setup()
    inject_detection(office, coordinator, 0.05)
    office.ctx.sim.run(until=0.07)
    coordinator.stop()
    pending_before = office.ctx.sim.pending_count()
    office.ctx.sim.run(until=0.5)
    # No re-estimation keeps rescheduling itself after stop().
    assert coordinator._reestimation_event.cancelled


def test_whitespace_active_property():
    office, coordinator = coordinator_setup()
    inject_detection(office, coordinator, 0.05)
    states = {}
    office.ctx.sim.schedule_at(0.06, lambda: states.update(during=coordinator.whitespace_active))
    office.ctx.sim.schedule_at(0.15, lambda: states.update(after=coordinator.whitespace_active))
    office.ctx.sim.run(until=0.2)
    assert states["during"] is True
    assert states["after"] is False

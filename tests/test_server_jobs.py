"""Unit tests for the server's job model, fair queue, and journal."""

import asyncio
import json

import pytest

from repro.server import FairPriorityQueue, JobRecord, JobSpec, JobState, QueueFull
from repro.server.journal import SERVER_SCHEMA, ServerJournal


def _record(job_id="j1", client="a", priority=1, trials=1):
    spec = JobSpec(
        params={"scenario": "office"}, seeds=tuple(range(trials)),
        priority=priority, client=client,
    )
    return JobRecord(
        job_id=job_id, spec=spec, fingerprint=f"fp-{job_id}",
        total_trials=trials,
    )


# ----------------------------------------------------------------------
# Job model
# ----------------------------------------------------------------------
class TestJobModel:
    def test_spec_expands_grid_times_seeds(self):
        spec = JobSpec(
            params={"scenario": "office"},
            grid={"duration": (0.1, 0.2)},
            seeds=(0, 1, 2),
        )
        trials = spec.trials()
        assert len(trials) == 6
        assert all("scenario" in params for params, _ in trials)

    def test_fingerprint_ignores_grid_spelling(self):
        # The same fully-resolved work — spelled as a grid or as explicit
        # params — must share one fingerprint (that is what makes the
        # duplicate-submission cache path work).
        a = JobSpec(params={"scenario": "office", "duration": 0.1}, seeds=(0,))
        b = JobSpec(params={"scenario": "office"},
                    grid={"duration": (0.1,)}, seeds=(0,))
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_differs_on_seeds(self):
        a = JobSpec(params={"scenario": "office"}, seeds=(0,))
        b = JobSpec(params={"scenario": "office"}, seeds=(1,))
        assert a.fingerprint() != b.fingerprint()

    def test_wire_roundtrip(self):
        spec = JobSpec(
            experiment="scenario", params={"scenario": "office"},
            grid={"duration": (0.1, 0.2)}, seeds=(3, 4),
            priority=0, client="alice", backend="heap",
        )
        assert JobSpec.from_wire(spec.to_wire()) == spec
        record = _record()
        record.transition(JobState.RUNNING)
        clone = JobRecord.from_wire(record.to_wire())
        assert clone.state == JobState.RUNNING
        assert clone.spec == record.spec

    def test_legal_transitions(self):
        record = _record()
        record.transition(JobState.RUNNING)
        record.transition(JobState.DONE)
        assert record.terminal
        assert record.finished_at is not None

    def test_cache_hit_fast_path_transition(self):
        record = _record()
        record.transition(JobState.DONE)  # queued -> done is legal
        assert record.terminal

    @pytest.mark.parametrize("target", [JobState.QUEUED, JobState.RUNNING])
    def test_terminal_states_are_final(self, target):
        record = _record()
        record.transition(JobState.CANCELLED)
        with pytest.raises(ValueError):
            record.transition(target)

    def test_invalid_spec(self):
        with pytest.raises(ValueError):
            JobSpec(seeds=())
        with pytest.raises(ValueError):
            JobSpec(priority=-1)


# ----------------------------------------------------------------------
# Fair priority queue
# ----------------------------------------------------------------------
def _drain(queue, n):
    async def take():
        return [await queue.get() for _ in range(n)]

    return asyncio.run(take())


class TestFairPriorityQueue:
    def test_priority_bands_dispatch_lowest_first(self):
        async def scenario():
            queue = FairPriorityQueue(maxsize=8)
            queue.put(_record("low", priority=5))
            queue.put(_record("high", priority=0))
            queue.put(_record("mid", priority=2))
            return [(await queue.get()).job_id for _ in range(3)]

        assert asyncio.run(scenario()) == ["high", "mid", "low"]

    def test_round_robin_within_band(self):
        async def scenario():
            queue = FairPriorityQueue(maxsize=16)
            # Client a floods the band; client b submits one job after.
            for i in range(5):
                queue.put(_record(f"a{i}", client="a"))
            queue.put(_record("b0", client="b"))
            return [(await queue.get()).job_id for _ in range(6)]

        order = asyncio.run(scenario())
        # b's single job waits at most one turn, not five.
        assert order.index("b0") == 1
        # a's own jobs stay FIFO.
        a_jobs = [j for j in order if j.startswith("a")]
        assert a_jobs == [f"a{i}" for i in range(5)]

    def test_backpressure_raises_queue_full(self):
        queue = FairPriorityQueue(maxsize=2)
        queue.put(_record("j1"))
        queue.put(_record("j2"))
        with pytest.raises(QueueFull) as excinfo:
            queue.put(_record("j3"), retry_after=7.5)
        assert excinfo.value.retry_after == 7.5
        assert excinfo.value.depth == 2
        # force=True (journal replay) bypasses the bound.
        queue.put(_record("j3"), force=True)
        assert queue.depth == 3

    def test_remove_queued_job(self):
        queue = FairPriorityQueue(maxsize=4)
        queue.put(_record("j1"))
        queue.put(_record("j2"))
        removed = queue.remove("j1")
        assert removed is not None and removed.job_id == "j1"
        assert queue.remove("j1") is None
        assert [r.job_id for r in _drain(queue, 1)] == ["j2"]

    def test_queued_trials_counts_totals(self):
        queue = FairPriorityQueue(maxsize=4)
        queue.put(_record("j1", trials=3))
        queue.put(_record("j2", trials=2))
        assert queue.queued_trials() == 5

    def test_get_blocks_until_put(self):
        async def scenario():
            queue = FairPriorityQueue(maxsize=4)
            getter = asyncio.create_task(queue.get())
            await asyncio.sleep(0.01)
            assert not getter.done()
            queue.put(_record("late"))
            return (await asyncio.wait_for(getter, timeout=1.0)).job_id

        assert asyncio.run(scenario()) == "late"


# ----------------------------------------------------------------------
# Journal
# ----------------------------------------------------------------------
class TestServerJournal:
    def test_replay_demotes_interrupted_jobs(self, tmp_path):
        journal = ServerJournal(tmp_path / "jobs.jsonl")
        journal.write_header()
        queued = _record("j1")
        running = _record("j2")
        running.transition(JobState.RUNNING)
        done = _record("j3")
        done.transition(JobState.DONE)
        for record in (queued, running, done):
            journal.record_job(record)
        journal.close()

        restored = {r.job_id: r for r in ServerJournal(journal.path).replay()}
        assert restored["j1"].state == JobState.QUEUED
        assert restored["j2"].state == JobState.QUEUED  # demoted
        assert restored["j2"].started_at is None
        assert restored["j3"].state == JobState.DONE  # terminal survives

    def test_last_state_wins(self, tmp_path):
        journal = ServerJournal(tmp_path / "jobs.jsonl")
        record = _record("j1")
        journal.record_job(record)
        record.transition(JobState.RUNNING)
        record.transition(JobState.DONE)
        journal.record_job(record)
        journal.close()
        restored = ServerJournal(journal.path).replay()
        assert [r.state for r in restored] == [JobState.DONE]

    def test_torn_trailing_line_tolerated(self, tmp_path):
        journal = ServerJournal(tmp_path / "jobs.jsonl")
        journal.write_header()
        journal.record_job(_record("j1"))
        journal.close()
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "job", "job_id": "j2", "sta')  # torn
        restored = ServerJournal(journal.path).replay()
        assert [r.job_id for r in restored] == ["j1"]

    def test_schema_mismatch_starts_fresh(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(
                {"kind": "header", "schema": SERVER_SCHEMA + 1}
            ) + "\n")
            handle.write(json.dumps(
                {"kind": "job", "job_id": "j1", "state": "queued"}
            ) + "\n")
        assert ServerJournal(path).replay() == []

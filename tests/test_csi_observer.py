"""Unit tests for the CSI observable model (repro.phy.csi)."""

import numpy as np
import pytest

from repro.devices.base import RxInfo
from repro.mac.frames import wifi_data_frame
from repro.phy.csi import CsiModel, CsiObserver
from repro.phy.medium import Technology
from repro.phy.modulation import wifi_rate

from .helpers import deterministic_context, wifi_pair


def make_observer(seed=1, **model_kwargs):
    ctx = deterministic_context(seed=seed)
    sender, receiver = wifi_pair(ctx)
    observer = receiver.csi
    observer.model = CsiModel(**model_kwargs)
    samples = []
    observer.subscribe(samples.append)
    return ctx, receiver, observer, samples


def feed(observer, n, overlaps=()):
    frame = wifi_data_frame("E", "F", 100, wifi_rate(24.0))
    info = RxInfo(rx_power_dbm=-40.0, success_probability=1.0, min_sinr_db=20.0,
                  overlaps=list(overlaps))
    for _ in range(n):
        observer._on_frame(frame, info)


def test_sigmoid_midpoint_and_monotonicity():
    model = CsiModel(zigbee_midpoint_dbm=-50.0, zigbee_width_db=3.0)
    assert model.zigbee_high_probability(-50.0) == pytest.approx(0.5)
    probs = [model.zigbee_high_probability(p) for p in (-70, -60, -50, -40, -30)]
    assert all(a < b for a, b in zip(probs, probs[1:]))
    assert probs[0] < 0.01 and probs[-1] > 0.99


def test_baseline_samples_rarely_cross_threshold():
    ctx, receiver, observer, samples = make_observer(noise_spike_prob=0.0)
    feed(observer, 500)
    high = sum(1 for s in samples if s.deviation >= 0.25)
    assert high < 5  # base_sigma 0.06: crossing 0.25 is a >4-sigma event
    assert all(not s.zigbee_overlap for s in samples)


def test_noise_spikes_obey_configured_rate():
    ctx, receiver, observer, samples = make_observer(noise_spike_prob=0.1)
    feed(observer, 2000)
    high = sum(1 for s in samples if s.deviation >= 0.28)
    assert high / 2000 == pytest.approx(0.1, abs=0.03)


def test_strong_zigbee_overlap_produces_high_fluctuations():
    ctx, receiver, observer, samples = make_observer(noise_spike_prob=0.0)
    overlap = (Technology.ZIGBEE, "ZS", -40.0, 1e-3)  # far above the midpoint
    feed(observer, 300, overlaps=[overlap])
    high = sum(1 for s in samples if s.deviation >= 0.3)
    assert high / 300 > 0.95
    assert all(s.zigbee_overlap for s in samples)
    assert samples[0].zigbee_source == "ZS"


def test_weak_zigbee_overlap_rarely_crosses():
    ctx, receiver, observer, samples = make_observer(noise_spike_prob=0.0)
    overlap = (Technology.ZIGBEE, "ZS", -70.0, 1e-3)  # far below the midpoint
    feed(observer, 300, overlaps=[overlap])
    high = sum(1 for s in samples if s.deviation >= 0.3)
    assert high / 300 < 0.1


def test_too_short_overlap_is_ignored():
    ctx, receiver, observer, samples = make_observer(min_overlap_s=50e-6)
    overlap = (Technology.ZIGBEE, "ZS", -40.0, 10e-6)  # under the minimum
    feed(observer, 50, overlaps=[overlap])
    assert all(not s.zigbee_overlap for s in samples)


def test_strongest_overlapping_source_wins():
    ctx, receiver, observer, samples = make_observer()
    overlaps = [
        (Technology.ZIGBEE, "weak", -70.0, 1e-3),
        (Technology.ZIGBEE, "strong", -40.0, 1e-3),
    ]
    feed(observer, 20, overlaps=overlaps)
    assert all(s.zigbee_source == "strong" for s in samples)


def test_non_zigbee_overlaps_do_not_mark_samples():
    ctx, receiver, observer, samples = make_observer(noise_spike_prob=0.0)
    overlap = (Technology.BLE, "bt", -40.0, 1e-3)
    feed(observer, 50, overlaps=[overlap])
    assert all(not s.zigbee_overlap for s in samples)


def test_environment_hook_raises_deviation():
    ctx, receiver, observer, samples = make_observer(noise_spike_prob=0.0)
    observer.environment_deviation = lambda now: 0.8
    feed(observer, 10)
    assert all(s.deviation >= 0.8 for s in samples)


def test_samples_emitted_counter():
    ctx, receiver, observer, samples = make_observer()
    feed(observer, 42)
    assert observer.samples_emitted == 42
    assert len(samples) == 42

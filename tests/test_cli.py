"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_coexist_command_prints_metrics(capsys):
    code = main(["coexist", "--scheme", "bicord", "--bursts", "6", "--seed", "1"])
    out = capsys.readouterr().out
    assert code == 0
    assert "channel utilization" in out
    assert "delivery ratio" in out


def test_coexist_rejects_unknown_scheme():
    with pytest.raises(SystemExit):
        main(["coexist", "--scheme", "carrier-pigeon"])


def test_signaling_command(capsys):
    code = main(["signaling", "--location", "A", "--salvos", "10", "--seed", "2"])
    out = capsys.readouterr().out
    assert code == 0
    assert "precision" in out and "recall" in out


def test_learning_command(capsys):
    code = main(["learning", "--packets", "5", "--bursts", "8", "--seed", "3"])
    out = capsys.readouterr().out
    assert code == 0
    assert "trajectory (ms):" in out


def test_energy_command(capsys):
    code = main(["energy", "--bursts", "3", "--seed", "4"])
    out = capsys.readouterr().out
    assert code == 0
    assert "overhead (%)" in out


def test_ble_command_afh_toggle(capsys):
    code = main(["ble", "--no-afh", "--duration", "3", "--seed", "5"])
    out = capsys.readouterr().out
    assert code == 0
    assert "AFH off" in out


def test_priority_command(capsys):
    code = main(["priority", "--proportion", "0.2", "--duration", "2", "--seed", "6"])
    out = capsys.readouterr().out
    assert code == 0
    assert "high-priority wifi delay" in out

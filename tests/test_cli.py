"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_coexist_command_prints_metrics(capsys):
    code = main(["coexist", "--scheme", "bicord", "--bursts", "6", "--seed", "1"])
    out = capsys.readouterr().out
    assert code == 0
    assert "channel utilization" in out
    assert "delivery ratio" in out


def test_coexist_rejects_unknown_scheme():
    with pytest.raises(SystemExit):
        main(["coexist", "--scheme", "carrier-pigeon"])


def test_signaling_command(capsys):
    code = main(["signaling", "--location", "A", "--salvos", "10", "--seed", "2"])
    out = capsys.readouterr().out
    assert code == 0
    assert "precision" in out and "recall" in out


def test_learning_command(capsys):
    code = main(["learning", "--packets", "5", "--bursts", "8", "--seed", "3"])
    out = capsys.readouterr().out
    assert code == 0
    assert "trajectory (ms):" in out


def test_energy_command(capsys):
    code = main(["energy", "--bursts", "3", "--seed", "4"])
    out = capsys.readouterr().out
    assert code == 0
    assert "overhead (%)" in out


def test_ble_command_afh_toggle(capsys):
    code = main(["ble", "--no-afh", "--duration", "3", "--seed", "5"])
    out = capsys.readouterr().out
    assert code == 0
    assert "AFH off" in out


def test_priority_command(capsys):
    code = main(["priority", "--proportion", "0.2", "--duration", "2", "--seed", "6"])
    out = capsys.readouterr().out
    assert code == 0
    assert "high-priority wifi delay" in out


# ----------------------------------------------------------------------
# Multi-seed flags and the sweep subcommand
# ----------------------------------------------------------------------
def test_coexist_multi_seed_aggregates(tmp_path, capsys):
    code = main(["coexist", "--bursts", "4", "--seeds", "2", "--jobs", "2",
                 "--cache-dir", str(tmp_path)])
    out = capsys.readouterr().out
    assert code == 0
    assert "mean over 2 seeds" in out
    assert "2 trials: 2 executed, 0 cached" in out
    # Second invocation is served entirely from the cache.
    code = main(["coexist", "--bursts", "4", "--seeds", "2",
                 "--cache-dir", str(tmp_path)])
    out = capsys.readouterr().out
    assert code == 0
    assert "0 executed, 2 cached" in out


def test_signaling_multi_seed(tmp_path, capsys):
    code = main(["signaling", "--salvos", "6", "--seeds", "2",
                 "--cache-dir", str(tmp_path)])
    out = capsys.readouterr().out
    assert code == 0
    assert "mean over 2 seeds" in out
    assert "precision" in out and "recall" in out


def test_sweep_list(capsys):
    code = main(["sweep", "--list"])
    out = capsys.readouterr().out
    assert code == 0
    for name in ("coexistence", "signaling", "learning", "priority",
                 "energy", "cti", "device-id", "ble"):
        assert name in out


def test_sweep_runs_grid_and_caches(tmp_path, capsys):
    argv = ["sweep", "--experiment", "learning",
            "--param", "n_packets=3,5", "--param", "n_bursts=4",
            "--seeds", "2", "--cache-dir", str(tmp_path)]
    code = main(argv)
    out = capsys.readouterr().out
    assert code == 0
    assert "4 trials: 4 executed, 0 cached" in out
    code = main(argv)
    out = capsys.readouterr().out
    assert code == 0
    assert "4 trials: 0 executed, 4 cached" in out


def test_sweep_unknown_experiment_errors(capsys):
    code = main(["sweep", "--experiment", "quantum"])
    err = capsys.readouterr().err
    assert code == 2
    assert "unknown experiment" in err


def test_sweep_unknown_param_errors(capsys):
    code = main(["sweep", "--experiment", "learning", "--param", "warp=9"])
    err = capsys.readouterr().err
    assert code == 2
    assert "unknown parameter" in err


def test_sweep_requires_experiment(capsys):
    code = main(["sweep"])
    assert code == 2


def test_sweep_malformed_param_errors(capsys):
    code = main(["sweep", "--experiment", "learning", "--param", "n_packets"])
    err = capsys.readouterr().err
    assert code == 2
    assert "KEY=VALUE" in err
    code = main(["sweep", "--experiment", "learning", "--param", "n_packets="])
    err = capsys.readouterr().err
    assert code == 2
    assert "no values" in err


def test_jobs_must_be_positive():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["sweep", "--experiment", "learning",
                                   "--jobs", "0"])
    with pytest.raises(SystemExit):
        build_parser().parse_args(["coexist", "--seeds", "-1"])


def test_sweep_clear_cache(tmp_path, capsys):
    main(["sweep", "--experiment", "learning", "--param", "n_bursts=3",
          "--param", "n_packets=3", "--cache-dir", str(tmp_path), "--quiet"])
    capsys.readouterr()
    code = main(["sweep", "--clear-cache", "--cache-dir", str(tmp_path)])
    out = capsys.readouterr().out
    assert code == 0
    assert "cleared 1 cache entries" in out


# ----------------------------------------------------------------------
# Scenario subcommands
# ----------------------------------------------------------------------
def test_list_shows_experiments_and_scenarios(capsys):
    code = main(["list"])
    out = capsys.readouterr().out
    assert code == 0
    assert "coexistence" in out
    assert "dense-office" in out


def test_scenario_list(capsys):
    code = main(["scenario", "list"])
    out = capsys.readouterr().out
    assert code == 0
    assert "smart-home" in out and "grid" in out


def test_scenario_describe_prints_spec_and_fingerprint(capsys):
    code = main(["scenario", "describe", "office"])
    out = capsys.readouterr().out
    assert code == 0
    assert '"backend": "office"' in out
    assert "fingerprint" in out


def test_scenario_run_with_overrides(capsys):
    code = main(["scenario", "run", "grid", "--set", "n_zigbee_links=2",
                 "--set", "max_bursts=3", "--duration", "1.5",
                 "--max-events", "1500", "--seed", "0"])
    out = capsys.readouterr().out
    assert code == 0
    assert "delivery_ratio" in out
    assert "spec fingerprint:" in out


def test_scenario_run_unknown_name_errors(capsys):
    code = main(["scenario", "run", "atlantis"])
    err = capsys.readouterr().err
    assert code == 2
    assert "atlantis" in err


def test_scenario_run_unknown_param_errors(capsys):
    code = main(["scenario", "run", "grid", "--set", "warp=9"])
    err = capsys.readouterr().err
    assert code == 2
    assert "warp" in err

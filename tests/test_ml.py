"""Tests for the ML substrate (decision tree, k-means)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import (
    DecisionTreeClassifier,
    KMeans,
    clustering_accuracy,
    manhattan_distances,
)


# ----------------------------------------------------------------------
# Decision tree
# ----------------------------------------------------------------------
def test_tree_learns_axis_aligned_rule():
    rng = np.random.default_rng(0)
    X = rng.uniform(0, 1, size=(200, 2))
    y = (X[:, 0] > 0.5).astype(int)
    tree = DecisionTreeClassifier(max_depth=3).fit(X, y)
    assert tree.score(X, y) > 0.98


def test_tree_learns_xor_with_depth():
    rng = np.random.default_rng(1)
    X = rng.uniform(-1, 1, size=(400, 2))
    y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
    shallow = DecisionTreeClassifier(max_depth=1).fit(X, y)
    deep = DecisionTreeClassifier(max_depth=4).fit(X, y)
    assert deep.score(X, y) > 0.9
    assert deep.score(X, y) > shallow.score(X, y)


def test_tree_multiclass():
    rng = np.random.default_rng(2)
    centers = np.array([[0, 0], [5, 0], [0, 5]])
    X = np.vstack([c + rng.normal(0, 0.5, size=(50, 2)) for c in centers])
    y = np.repeat([0, 1, 2], 50)
    tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
    assert tree.score(X, y) > 0.95
    assert tree.n_classes_ == 3


def test_tree_pure_dataset_is_single_leaf():
    X = [[0.0], [1.0], [2.0]]
    y = [1, 1, 1]
    tree = DecisionTreeClassifier().fit(X, y)
    assert tree.depth() == 0
    assert tree.predict_one([5.0]) == 1


def test_tree_respects_max_depth():
    rng = np.random.default_rng(3)
    X = rng.uniform(0, 1, size=(500, 3))
    y = rng.integers(0, 2, size=500)  # noise: tree would love to overfit
    tree = DecisionTreeClassifier(max_depth=2).fit(X, y)
    assert tree.depth() <= 2


def test_tree_input_validation():
    tree = DecisionTreeClassifier()
    with pytest.raises(ValueError):
        tree.fit([], [])
    with pytest.raises(ValueError):
        tree.fit([[1.0]], [0, 1])
    with pytest.raises(ValueError):
        tree.fit([[1.0]], [-1])
    with pytest.raises(ValueError):
        DecisionTreeClassifier(max_depth=0)
    with pytest.raises(RuntimeError):
        tree.predict_one([1.0])


def test_tree_generalizes_to_held_out_data():
    rng = np.random.default_rng(4)
    X = rng.uniform(0, 1, size=(400, 2))
    y = ((X[:, 0] + X[:, 1]) > 1.0).astype(int)
    tree = DecisionTreeClassifier(max_depth=5).fit(X[:300], y[:300])
    assert tree.score(X[300:], y[300:]) > 0.85


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=2, max_value=30), st.integers(min_value=0, max_value=1000))
def test_tree_training_accuracy_beats_majority_class(n, seed):
    """On separable data the tree is never worse than the majority baseline."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 2))
    y = (X[:, 0] > 0).astype(int)
    tree = DecisionTreeClassifier(max_depth=4, min_samples_split=2,
                                  min_samples_leaf=1).fit(X, y)
    majority = max(np.mean(y), 1 - np.mean(y))
    assert tree.score(X, y) >= majority - 1e-9


# ----------------------------------------------------------------------
# k-means (L1)
# ----------------------------------------------------------------------
def test_manhattan_distances_reference():
    points = np.array([[0.0, 0.0], [1.0, 2.0]])
    centers = np.array([[1.0, 1.0]])
    distances = manhattan_distances(points, centers)
    assert distances[0, 0] == pytest.approx(2.0)
    assert distances[1, 0] == pytest.approx(1.0)


def test_kmeans_recovers_separated_clusters():
    rng = np.random.default_rng(5)
    centers = np.array([[0, 0], [10, 0], [0, 10]])
    X = np.vstack([c + rng.normal(0, 0.5, size=(40, 2)) for c in centers])
    truth = np.repeat([0, 1, 2], 40)
    result = KMeans(3, rng=np.random.default_rng(0)).fit(X)
    assert clustering_accuracy(result.labels, truth) > 0.95


def test_kmeans_centers_are_medians():
    """With L1 distance the optimal center coordinate is the median."""
    X = np.array([[0.0], [0.0], [0.0], [100.0]])  # outlier
    result = KMeans(1, rng=np.random.default_rng(0)).fit(X)
    assert result.centers[0, 0] == pytest.approx(0.0)  # median, not mean 25


def test_kmeans_predict_assigns_nearest_center():
    X = np.array([[0.0, 0.0], [0.1, 0.0], [9.9, 0.0], [10.0, 0.0]])
    km = KMeans(2, rng=np.random.default_rng(1))
    result = km.fit(X)
    predictions = km.predict([[0.05, 0.0], [9.95, 0.0]])
    assert predictions[0] != predictions[1]
    assert result.inertia < 1.0


def test_kmeans_input_validation():
    with pytest.raises(ValueError):
        KMeans(0)
    with pytest.raises(ValueError):
        KMeans(3).fit([[0.0], [1.0]])
    km = KMeans(2)
    with pytest.raises(RuntimeError):
        km.predict([[0.0, 0.0]])


def test_kmeans_deterministic_given_rng():
    X = np.random.default_rng(7).normal(size=(50, 3))
    r1 = KMeans(4, rng=np.random.default_rng(11)).fit(X)
    r2 = KMeans(4, rng=np.random.default_rng(11)).fit(X)
    assert np.array_equal(r1.labels, r2.labels)
    assert r1.inertia == pytest.approx(r2.inertia)


def test_kmeans_handles_duplicate_points():
    X = np.zeros((10, 2))
    result = KMeans(3, rng=np.random.default_rng(0)).fit(X)
    assert result.inertia == pytest.approx(0.0)


def test_clustering_accuracy_perfect_and_permuted():
    truth = np.array([0, 0, 1, 1, 2, 2])
    assert clustering_accuracy(truth, truth) == 1.0
    permuted = np.array([2, 2, 0, 0, 1, 1])  # same partition, renamed
    assert clustering_accuracy(permuted, truth) == 1.0


def test_clustering_accuracy_shape_mismatch():
    with pytest.raises(ValueError):
        clustering_accuracy(np.array([0, 1]), np.array([0]))

"""Finer-grained 802.11 DCF behaviours: freeze accounting, CW doubling,
NAV stacking, the carrier-sense vulnerability window, saturation sanity."""

import pytest

from repro.devices import WifiDevice
from repro.mac.frames import wifi_data_frame
from repro.mac.wifi import CW_MIN, DIFS_S, SENSE_DELAY_S, SLOT_S
from repro.phy.propagation import Position
from repro.traffic import WifiPacketSource

from .helpers import deterministic_context


def enqueue(ctx, mac, dest="R", payload=100, seq=1):
    frame = wifi_data_frame(mac.radio.name, dest, payload, mac.data_rate,
                            created_at=ctx.sim.now)
    frame.seq = seq
    mac.enqueue(frame)
    return frame


def test_backoff_slots_decrease_across_freezes():
    """A frozen countdown resumes with fewer (never more) slots."""
    ctx = deterministic_context(seed=3)
    a = WifiDevice(ctx, "A", Position(0, 0))
    b = WifiDevice(ctx, "B", Position(1, 0))
    WifiDevice(ctx, "R", Position(0.5, 1))
    # A transmits a long frame; B's countdown freezes against it.
    long_frame = wifi_data_frame("A", "R", 1500, a.mac.data_rate)
    a.mac.enqueue(long_frame)
    observed = []

    def watch():
        if b.mac._backoff_slots is not None:
            observed.append(b.mac._backoff_slots)

    enqueue(ctx, b.mac)
    for i in range(200):
        ctx.sim.schedule(i * 50e-6, watch)
    ctx.sim.run(until=0.02)
    decreasing = [s for s in observed]
    assert decreasing, "backoff slots never observed"
    assert all(x >= y for x, y in zip(decreasing, decreasing[1:]))


def test_contention_window_doubles_on_missed_ack():
    ctx = deterministic_context(seed=4)
    a = WifiDevice(ctx, "A", Position(0, 0))
    r = WifiDevice(ctx, "R", Position(1, 0))
    r.radio.enabled = False  # never ACKs
    enqueue(ctx, a.mac)
    windows = []

    def watch():
        windows.append(a.mac._cw)

    for i in range(100):
        ctx.sim.schedule(i * 2e-3, watch)
    ctx.sim.run(until=0.2)
    assert max(windows) > CW_MIN  # doubled at least once
    assert max(windows) <= 1023
    # After the drop the window resets.
    assert a.mac._cw == CW_MIN
    assert a.mac.data_dropped == 1


def test_nav_takes_maximum_of_overlapping_cts():
    ctx = deterministic_context(seed=5)
    a = WifiDevice(ctx, "A", Position(0, 0))
    b = WifiDevice(ctx, "B", Position(1, 0))
    WifiDevice(ctx, "R", Position(0.5, 1))
    b.mac.reserve_whitespace(0.05)
    ctx.sim.schedule(0.01, lambda: b.mac.reserve_whitespace(0.02))
    ctx.sim.run(until=0.02)
    # The second, shorter CTS must not shorten A's NAV.
    assert a.mac.nav_until >= 0.05


def test_sense_window_only_ignores_young_transmissions():
    """_medium_busy(min_age) ignores just-started transmissions but not
    established ones."""
    ctx = deterministic_context(seed=6)
    a = WifiDevice(ctx, "A", Position(0, 0))
    b = WifiDevice(ctx, "B", Position(1, 0))
    WifiDevice(ctx, "R", Position(0.5, 1))
    checks = {}

    def start_and_check():
        frame = wifi_data_frame("A", "R", 1500, a.mac.data_rate)
        a.radio.transmit_frame(frame, 20.0)  # directly on the air, now
        # At age ~0 the aged check is blind, the plain check is not.
        checks["young"] = b.mac._medium_busy(min_age=SENSE_DELAY_S)
        checks["young_plain"] = b.mac._medium_busy()

    def check_old():
        checks["old"] = b.mac._medium_busy(min_age=SENSE_DELAY_S)

    ctx.sim.schedule(1e-3, start_and_check)
    ctx.sim.schedule(1e-3 + 200e-6, check_old)  # 200 us into the frame
    ctx.sim.run(until=0.01)
    assert checks["young"] is False
    assert checks["young_plain"] is True
    assert checks["old"] is True


def test_saturated_single_link_efficiency():
    """One saturated station's MAC efficiency lands where DCF should: around
    60-70% of the 24 Mbps PHY rate for 1000 B frames."""
    ctx = deterministic_context(seed=7)
    a = WifiDevice(ctx, "A", Position(0, 0))
    WifiDevice(ctx, "R", Position(1, 0))
    WifiPacketSource(ctx, a.mac, "R", payload_bytes=1000, interval=1e-4,
                     queue_limit=10**6)
    ctx.sim.run(until=0.5)
    throughput = 8 * 1000 * a.mac.data_delivered / 0.5
    assert 0.55 * 24e6 < throughput < 0.72 * 24e6


def test_backoff_duration_matches_slot_math():
    """With no contention the frame starts exactly DIFS + k*SLOT after
    enqueue for some k in [0, CW_MIN]."""
    ctx = deterministic_context(seed=8)
    a = WifiDevice(ctx, "A", Position(0, 0))
    WifiDevice(ctx, "R", Position(1, 0))
    starts = []
    original = a.radio.transmit_frame

    def spy(frame, power):
        starts.append(ctx.sim.now)
        return original(frame, power)

    a.radio.transmit_frame = spy
    t0 = 0.01
    ctx.sim.schedule_at(t0, lambda: enqueue(ctx, a.mac))
    ctx.sim.run(until=0.05)
    assert starts
    elapsed = starts[0] - t0 - DIFS_S
    slots = elapsed / SLOT_S
    assert slots == pytest.approx(round(slots), abs=1e-6)
    assert 0 <= round(slots) <= CW_MIN

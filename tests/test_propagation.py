"""Tests for propagation: path loss, shadowing, fading."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.phy.propagation import Channel, FadingModel, PathLossModel, Position
from repro.sim.rng import RandomStreams


def make_channel(shadowing=0.0, fading=0.0, seed=1, **pl_kwargs):
    return Channel(
        PathLossModel(**pl_kwargs),
        FadingModel(shadowing_sigma_db=shadowing, fading_sigma_db=fading),
        RandomStreams(seed=seed),
    )


def test_position_distance():
    assert Position(0, 0).distance_to(Position(3, 4)) == pytest.approx(5.0)
    assert Position(1, 1).distance_to(Position(1, 1)) == 0.0


def test_position_moved_is_new_object():
    p = Position(1.0, 2.0)
    q = p.moved(0.5, -0.5)
    assert (q.x, q.y) == (1.5, 1.5)
    assert (p.x, p.y) == (1.0, 2.0)


def test_path_loss_reference_point():
    model = PathLossModel(pl0_db=40.0, exponent=3.0)
    assert model.loss_db(1.0) == pytest.approx(40.0)
    assert model.loss_db(10.0) == pytest.approx(70.0)


def test_path_loss_clamps_small_distances():
    model = PathLossModel(min_distance_m=0.3)
    assert model.loss_db(0.0) == model.loss_db(0.3)
    assert model.loss_db(0.1) == model.loss_db(0.3)


@given(
    d1=st.floats(min_value=0.5, max_value=100.0),
    d2=st.floats(min_value=0.5, max_value=100.0),
)
def test_path_loss_monotonic_in_distance(d1, d2):
    model = PathLossModel()
    if d1 < d2:
        assert model.loss_db(d1) <= model.loss_db(d2)


def test_deterministic_channel_rx_power():
    channel = make_channel()
    rx = channel.rx_power_dbm(0.0, "a", Position(0, 0), "b", Position(10, 0))
    assert rx == pytest.approx(-70.0)  # 40 + 30*log10(10)


def test_shadowing_is_static_per_link_and_symmetric():
    channel = make_channel(shadowing=4.0)
    p1 = channel.mean_rx_power_dbm(0.0, "a", Position(0, 0), "b", Position(5, 0))
    p2 = channel.mean_rx_power_dbm(0.0, "a", Position(0, 0), "b", Position(5, 0))
    assert p1 == p2  # static
    forward = channel.mean_rx_power_dbm(0.0, "a", Position(0, 0), "b", Position(5, 0))
    reverse = channel.mean_rx_power_dbm(0.0, "b", Position(5, 0), "a", Position(0, 0))
    assert forward == pytest.approx(reverse)  # reciprocity


def test_shadowing_differs_across_links():
    channel = make_channel(shadowing=4.0)
    ab = channel.mean_rx_power_dbm(0.0, "a", Position(0, 0), "b", Position(5, 0))
    ac = channel.mean_rx_power_dbm(0.0, "a", Position(0, 0), "c", Position(5, 0))
    assert ab != ac


def test_fading_varies_per_frame_with_fixed_mean():
    channel = make_channel(fading=3.0)
    draws = {channel.frame_fading_db("a", "b") for _ in range(20)}
    assert len(draws) > 1
    mean = channel.mean_rx_power_dbm(0.0, "a", Position(0, 0), "b", Position(5, 0))
    assert mean == channel.mean_rx_power_dbm(0.0, "a", Position(0, 0), "b", Position(5, 0))


def test_zero_sigma_channel_is_fully_deterministic():
    channel = make_channel()
    assert channel.frame_fading_db("a", "b") == 0.0
    a = channel.rx_power_dbm(10.0, "a", Position(0, 0), "b", Position(2, 0))
    b = channel.rx_power_dbm(10.0, "a", Position(0, 0), "b", Position(2, 0))
    assert a == b


def test_same_seed_reproduces_shadowing():
    c1 = make_channel(shadowing=4.0, seed=9)
    c2 = make_channel(shadowing=4.0, seed=9)
    assert c1.mean_rx_power_dbm(0.0, "a", Position(0, 0), "b", Position(5, 0)) == \
        c2.mean_rx_power_dbm(0.0, "a", Position(0, 0), "b", Position(5, 0))


def test_mobility_changes_distance_term_not_shadowing():
    channel = make_channel(shadowing=4.0)
    near = channel.mean_rx_power_dbm(0.0, "a", Position(0, 0), "b", Position(2, 0))
    far = channel.mean_rx_power_dbm(0.0, "a", Position(0, 0), "b", Position(8, 0))
    expected_delta = channel.path_loss.loss_db(8.0) - channel.path_loss.loss_db(2.0)
    assert near - far == pytest.approx(expected_delta)

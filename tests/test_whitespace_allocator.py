"""Tests for the adaptive white-space allocator (Sec. VI state machine)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AllocatorConfig
from repro.core.whitespace import AdaptiveWhitespaceAllocator, AllocatorPhase


def make(step=30e-3, tc=8e-3, **kwargs):
    return AdaptiveWhitespaceAllocator(
        AllocatorConfig(initial_whitespace=step, control_packet_time=tc, **kwargs)
    )


def drive_burst(allocator, n_rounds, start=0.0):
    """Simulate one ZigBee burst needing ``n_rounds`` grants."""
    t = start
    for _ in range(n_rounds):
        allocator.grant(t)
        t += allocator.current_whitespace
    allocator.on_burst_end(t + 20e-3)
    return t


def test_initial_grant_is_the_step():
    allocator = make(step=30e-3)
    assert allocator.grant(0.0) == pytest.approx(30e-3)
    assert allocator.phase is AllocatorPhase.LEARNING


def test_single_round_burst_converges_immediately():
    allocator = make()
    drive_burst(allocator, 1)
    assert allocator.converged
    assert allocator.current_whitespace == pytest.approx(30e-3)


def test_paper_estimation_formula():
    """T_estimation = (T_w - 2*T_c) * N_round, paper Sec. VI."""
    allocator = make(step=30e-3, tc=8e-3)
    drive_burst(allocator, 3)
    # (30 - 16) * 3 = 42 ms
    assert allocator.current_whitespace == pytest.approx(42e-3)
    assert not allocator.converged
    assert allocator.estimates[-1].estimation == pytest.approx(42e-3)


def test_fig7_convergence_sequence():
    """The paper's Fig. 7 example: 30 -> 42 -> 52 -> 72 ms, then converged.

    A 10-packet burst (~62.7 ms) needs 3 rounds at 30 ms, then 2 rounds at
    42 ms, 2 at 52 ms, and finally fits in one 72 ms white space.
    """
    allocator = make(step=30e-3, tc=8e-3)
    t = drive_burst(allocator, 3, 0.0)
    assert allocator.current_whitespace == pytest.approx(42e-3)
    t = drive_burst(allocator, 2, t + 0.2)
    assert allocator.current_whitespace == pytest.approx(52e-3)
    t = drive_burst(allocator, 2, t + 0.2)
    assert allocator.current_whitespace == pytest.approx(72e-3)
    drive_burst(allocator, 1, t + 0.2)
    assert allocator.converged
    assert allocator.current_whitespace == pytest.approx(72e-3)
    assert allocator.learning_iterations == 3


def test_whitespace_never_shrinks_during_learning():
    """Fig. 7: the white space lengthens monotonically.

    When the conservative estimate undershoots the current grant (2 rounds
    at 30 ms -> estimate 28 ms), the allocator still grows by T_c so the
    learning phase cannot deadlock.
    """
    allocator = make(step=30e-3, tc=8e-3)
    drive_burst(allocator, 2)
    assert allocator.current_whitespace == pytest.approx(38e-3)


def test_growth_resumes_after_convergence_with_debounce():
    """Traffic growth re-enters learning, but only after it repeats.

    A single multi-round burst after convergence is treated as back-to-back
    application bursts (chaining), not a pattern change; the second
    consecutive one triggers the adjustment phase.
    """
    allocator = make()
    drive_burst(allocator, 1)
    assert allocator.converged
    drive_burst(allocator, 3, start=1.0)
    assert allocator.converged  # debounced: no reaction yet
    assert allocator.current_whitespace == pytest.approx(30e-3)
    drive_burst(allocator, 3, start=2.0)
    assert not allocator.converged
    assert allocator.current_whitespace > 30e-3


def test_single_round_burst_resets_debounce():
    allocator = make()
    drive_burst(allocator, 1)
    drive_burst(allocator, 3, start=1.0)  # anomaly 1
    drive_burst(allocator, 1, start=2.0)  # pattern back to normal
    drive_burst(allocator, 3, start=3.0)  # anomaly 1 again (not 2)
    assert allocator.converged
    assert allocator.current_whitespace == pytest.approx(30e-3)


def test_reestimation_timer_resets_to_step():
    allocator = make(step=30e-3)
    drive_burst(allocator, 3)
    assert allocator.current_whitespace > 30e-3
    allocator.on_reestimation_timer(10.0)
    assert allocator.current_whitespace == pytest.approx(30e-3)
    assert allocator.phase is AllocatorPhase.LEARNING


def test_reestimation_timer_clears_anomaly_debounce():
    """Regression: a stale anomaly count surviving the timer reset made a
    *single* multi-round burst in the next converged period trigger growth,
    defeating the growth_debounce=2 requirement."""
    allocator = make()
    drive_burst(allocator, 1)  # converge
    drive_burst(allocator, 3, start=1.0)  # anomaly 1 (debounced away)
    assert allocator.converged
    allocator.on_reestimation_timer(10.0)  # full reset — forget everything
    drive_burst(allocator, 1, start=11.0)  # re-converge at the step
    drive_burst(allocator, 3, start=12.0)  # FIRST anomaly since the reset
    assert allocator.converged  # must still be debounced
    assert allocator.current_whitespace == pytest.approx(30e-3)
    drive_burst(allocator, 3, start=13.0)  # second consecutive: now react
    assert not allocator.converged


def test_reestimation_timer_mid_burst_then_burst_end_is_noop():
    """Timer firing mid-burst zeroes the round count; the burst's end must
    then be a no-op (no estimate from a half-observed burst)."""
    allocator = make()
    allocator.grant(0.0)
    allocator.grant(0.05)
    allocator.on_reestimation_timer(0.08)
    assert allocator.on_burst_end(0.1) is None
    assert allocator.bursts_observed == 0


def test_burst_end_without_rounds_is_noop():
    allocator = make()
    assert allocator.on_burst_end(0.0) is None
    assert allocator.bursts_observed == 0


def test_clamping_to_max():
    allocator = make(step=30e-3, max_whitespace=50e-3)
    drive_burst(allocator, 5)  # estimate (30-16)*5 = 70 -> clamped to 50
    assert allocator.current_whitespace == pytest.approx(50e-3)


def test_grant_history_records_rounds_and_phase():
    allocator = make()
    allocator.grant(0.0)
    allocator.grant(0.05)
    allocator.on_burst_end(0.1)
    allocator.grant(0.3)
    records = allocator.grants
    assert [r.round_in_burst for r in records] == [1, 2, 1]
    assert records[0].phase is AllocatorPhase.LEARNING
    assert len(allocator.whitespace_trajectory()) == 3


def test_invalid_config_rejected():
    with pytest.raises(ValueError):
        make(step=10e-3, tc=8e-3)  # step <= 2*Tc


@settings(max_examples=50, deadline=None)
@given(
    burst_ms=st.floats(min_value=20.0, max_value=150.0),
    step_ms=st.sampled_from([30.0, 40.0]),
)
def test_learning_always_converges_and_covers_burst(burst_ms, step_ms):
    """Property: for any stable burst length the allocator converges to a
    white space that fits the whole burst, in a bounded number of bursts."""
    tc_ms = 8.0
    allocator = make(step=step_ms * 1e-3, tc=tc_ms * 1e-3, max_whitespace=1.0)
    overhead_ms = 10.0  # Tf + Tc consumed at the start of each round

    t = 0.0
    for _burst in range(50):
        if allocator.converged and allocator.current_whitespace * 1e3 >= burst_ms:
            break
        remaining = burst_ms
        rounds = 0
        while remaining > 0:
            grant_ms = allocator.grant(t) * 1e3
            usable = max(grant_ms - overhead_ms, 1.0)
            remaining -= usable
            rounds += 1
            t += grant_ms * 1e-3
            if rounds > 100:
                raise AssertionError("burst never drained")
        allocator.on_burst_end(t + 0.02)
        t += 0.2
    assert allocator.converged
    # Converged white space covers the data plus per-round overhead.
    assert allocator.current_whitespace * 1e3 + 1e-6 >= burst_ms

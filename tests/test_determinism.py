"""Determinism: a run is a pure function of its seed.

This is the property the whole experiment harness leans on — repeated runs
with one seed must agree bit-for-bit, and different seeds must explore
different sample paths.
"""

from repro.experiments import (
    CoexistenceConfig,
    run_coexistence,
    run_learning_trial,
    run_signaling_trial,
)


def coexistence_fingerprint(seed):
    result = run_coexistence(CoexistenceConfig(scheme="bicord", n_bursts=10, seed=seed))
    return (
        result.zigbee_packets_delivered,
        tuple(result.zigbee_delays),
        result.utilization.wifi_airtime,
        result.utilization.zigbee_airtime,
        result.control_packets,
        result.whitespaces_issued,
    )


def test_coexistence_bit_identical_across_runs():
    assert coexistence_fingerprint(7) == coexistence_fingerprint(7)


def test_coexistence_differs_across_seeds():
    assert coexistence_fingerprint(7) != coexistence_fingerprint(8)


def test_signaling_trial_deterministic():
    a = run_signaling_trial(location="C", power_dbm=-1.0, n_salvos=20, seed=3)
    b = run_signaling_trial(location="C", power_dbm=-1.0, n_salvos=20, seed=3)
    assert a.pr == b.pr
    assert a.wifi_prr == b.wifi_prr


def test_learning_trial_deterministic():
    a = run_learning_trial(n_packets=10, n_bursts=8, seed=5)
    b = run_learning_trial(n_packets=10, n_bursts=8, seed=5)
    assert a.trajectory == b.trajectory
    assert a.final_whitespace == b.final_whitespace


def test_ecc_run_deterministic():
    def fingerprint():
        r = run_coexistence(CoexistenceConfig(scheme="ecc", n_bursts=10, seed=9))
        return (r.zigbee_packets_delivered, tuple(r.zigbee_delays))

    assert fingerprint() == fingerprint()

"""Tests for PowerMap auto-negotiation (Sec. VII-A)."""

import pytest

from repro.core import PowerMap, PowerNegotiator
from repro.experiments.topology import build_office
from repro.traffic import WifiPacketSource


def negotiate_at(location, seed=1):
    office = build_office(seed=seed, location=location)
    cal = office.calibration
    WifiPacketSource(
        office.ctx, office.wifi_sender.mac, "F",
        payload_bytes=cal.wifi_payload_bytes, interval=cal.wifi_interval,
    )
    powermap = PowerMap(default_power_dbm=0.0)
    results = []
    negotiator = PowerNegotiator(office.zigbee_sender)
    # Let Wi-Fi traffic settle, then listen.
    office.ctx.sim.schedule(30e-3, negotiator.negotiate, "E", powermap, results.append)
    office.ctx.sim.run(until=0.2)
    assert len(results) == 1
    return results[0], powermap


def test_far_locations_keep_full_power():
    """A and B are far from the Wi-Fi sender: 0 dBm never trips its CCA."""
    for location in ("A", "B"):
        result, powermap = negotiate_at(location)
        assert result.chosen_power_dbm == 0.0
        assert powermap.get("E") == 0.0


def test_near_locations_back_off():
    """C and D sit near the Wi-Fi sender: negotiation must reduce power."""
    for location in ("C", "D"):
        result, _ = negotiate_at(location)
        assert result.chosen_power_dbm < 0.0


def test_power_ordering_matches_proximity():
    """Closer to the Wi-Fi sender => weaker negotiated power (paper fn. 3)."""
    powers = {loc: negotiate_at(loc)[0].chosen_power_dbm for loc in "ABCD"}
    assert powers["A"] >= powers["C"] >= powers["D"]
    assert powers["B"] >= powers["C"]


def test_measured_rx_estimates_the_sender_not_the_receiver():
    """At location A the Wi-Fi *receiver* F is 1 m away and its ACKs are much
    stronger than E's data frames; the busy-percentile estimator must still
    report E's level (within a few dB), or the negotiated power would
    collapse."""
    result, _ = negotiate_at("A")
    # E at 2.75 m: in-band level about -43 dBm; F's ACKs about -30 dBm.
    assert result.rx_wifi_dbm < -38.0


def test_silent_channel_falls_back_to_full_power():
    office = build_office(seed=2, location="D")  # no Wi-Fi traffic at all
    powermap = PowerMap()
    results = []
    PowerNegotiator(office.zigbee_sender).negotiate("E", powermap, results.append)
    office.ctx.sim.run(until=0.2)
    assert len(results) == 1
    assert results[0].chosen_power_dbm == 0.0

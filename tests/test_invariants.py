"""System-level invariants, checked against full protocol runs.

These are the properties that must hold regardless of calibration: white
spaces actually silence Wi-Fi, accounting balances, and airtime never
exceeds wall-clock time.
"""

import pytest

from repro.core import BicordCoordinator, BicordNode
from repro.experiments.topology import build_office, location_powermap
from repro.mac.frames import FrameType
from repro.phy.medium import Technology
from repro.traffic import WifiPacketSource, ZigbeeBurstSource


def run_traced_scenario(seed=1, n_bursts=10):
    office = build_office(
        seed=seed, location="A",
        trace_kinds={"medium.tx_start", "bicord.grant", "wifi.nav_set"},
    )
    cal = office.calibration
    WifiPacketSource(
        office.ctx, office.wifi_sender.mac, "F",
        payload_bytes=cal.wifi_payload_bytes, interval=cal.wifi_interval,
    )
    coordinator = BicordCoordinator(office.wifi_receiver)
    node = BicordNode(office.zigbee_sender, "ZR", powermap=location_powermap("A"))

    whitespaces = []

    def on_sent(frame):
        if frame.frame_type is FrameType.CTS and frame.meta.get("bicord"):
            start = office.ctx.sim.now
            whitespaces.append((start, start + frame.meta["nav_duration"]))

    office.wifi_receiver.mac.sent_listeners.append(on_sent)
    source = ZigbeeBurstSource(
        office.ctx, node.offer_burst, n_packets=5, payload_bytes=50,
        interval_mean=0.2, poisson=False, max_bursts=n_bursts,
    )
    office.ctx.sim.run(until=n_bursts * 0.2 + 0.5)
    return office, coordinator, node, source, whitespaces


def test_whitespaces_silence_wifi():
    """Once a station *sets* its NAV, it starts no transmission before expiry.

    Note the CTS itself can be lost (it may collide with a same-slot data
    frame — a real coordination failure mode), so the invariant is checked
    against the NAV intervals each station actually recorded, not against
    every CTS the coordinator sent.
    """
    office, coordinator, node, source, whitespaces = run_traced_scenario()
    assert whitespaces, "no white spaces were granted"
    nav_intervals = [
        (record.time, record["until"])
        for record in office.ctx.trace.of_kind("wifi.nav_set")
        if record["mac"] == "E"
    ]
    assert nav_intervals, "E never received a CTS"
    violations = []
    for record in office.ctx.trace.of_kind("medium.tx_start"):
        if record["technology"] != Technology.WIFI.value:
            continue
        if record["source"] != "E":
            continue
        for start, end in nav_intervals:
            # Tiny guard: the ACK of the frame the CTS interrupted may still
            # fire after SIFS, exactly as on real hardware.
            if start + 0.5e-3 < record.time < end:
                violations.append((record.time, start, end))
    assert violations == []


def test_zigbee_transmits_mostly_inside_whitespaces():
    """ZigBee *data* airtime concentrates inside the granted white spaces."""
    office, coordinator, node, source, whitespaces = run_traced_scenario()
    inside = outside = 0
    for record in office.ctx.trace.of_kind("medium.tx_start"):
        if record["technology"] != Technology.ZIGBEE.value:
            continue
        if record["source"] != "ZS":
            continue
        if any(start <= record.time <= end for start, end in whitespaces):
            inside += 1
        else:
            outside += 1
    assert inside > outside


def test_packet_accounting_balances():
    office, coordinator, node, source, _ = run_traced_scenario()
    offered = source.bursts_generated * 5
    assert node.packets_delivered + node.outstanding_packets == offered
    assert len(node.packet_delays) == node.packets_delivered


def test_airtime_never_exceeds_duration():
    office, coordinator, node, source, _ = run_traced_scenario()
    duration = office.ctx.sim.now
    for device in (office.wifi_sender, office.wifi_receiver,
                   office.zigbee_sender, office.zigbee_receiver):
        assert 0.0 <= device.radio.tx_airtime <= duration


def test_energy_meter_consistent_with_radio_airtime():
    office, coordinator, node, source, _ = run_traced_scenario()
    meter = office.zigbee_sender.energy
    assert meter.tx_seconds == pytest.approx(office.zigbee_sender.radio.tx_airtime)
    assert meter.total_mj > 0.0


def test_delays_are_positive_and_ordered_with_creation():
    office, coordinator, node, source, _ = run_traced_scenario()
    assert all(d > 0.0 for d in node.packet_delays)


def test_whitespace_lengths_match_allocator_grants():
    office, coordinator, node, source, whitespaces = run_traced_scenario()
    granted = [g.duration for g in coordinator.allocator.grants]
    issued = [end - start for start, end in whitespaces]
    # Every CTS that made it to the air matches a grant decision.
    assert len(issued) <= len(granted)
    for duration in issued:
        assert any(abs(duration - g) < 1e-9 for g in granted)

"""Experiment registry: uniform contract, lookups, deprecation shims."""

import dataclasses

import pytest

from repro.experiments import (
    BleCoexistenceResult,
    CoexistenceConfig,
    CoexistenceResult,
    EnergyResult,
    LearningTrialConfig,
    LearningTrialResult,
    EXPERIMENTS,
    experiment_names,
    get_experiment,
    resolve_config,
    run_experiment,
    run_learning_trial,
    run_priority_experiment,
    run_signaling_trial,
)
from repro.serialization import canonical_dumps


ALL_EXPERIMENTS = (
    "signaling", "coexistence", "learning", "priority",
    "energy", "cti", "device-id", "ble", "robustness", "scenario",
    "roaming",
)


def test_all_experiments_registered():
    assert experiment_names() == tuple(sorted(ALL_EXPERIMENTS))
    for name in ALL_EXPERIMENTS:
        spec = get_experiment(name)
        assert spec.name == name
        assert callable(spec.runner)
        assert dataclasses.is_dataclass(spec.config_cls)
        assert dataclasses.is_dataclass(spec.result_cls)
        assert spec.description


def test_lookup_is_case_and_separator_insensitive():
    assert get_experiment("Device_ID").name == "device-id"
    assert get_experiment("coexist").name == "coexistence"  # alias
    assert get_experiment("signalling").name == "signaling"  # alias


def test_unknown_experiment_lists_available():
    with pytest.raises(KeyError, match="available: .*coexistence.*learning"):
        get_experiment("quantum-teleport")
    with pytest.raises(KeyError):
        run_experiment("nope")


def test_unknown_parameter_rejected_with_valid_list():
    with pytest.raises(TypeError, match="valid.*n_packets"):
        run_experiment("learning", n_pakcets=5)  # typo must not pass silently
    with pytest.raises(TypeError, match="unknown parameter"):
        resolve_config("coexistence", warp_factor=9)


def test_resolve_config_applies_defaults_and_overrides():
    cfg = resolve_config("learning", n_packets=7)
    assert isinstance(cfg, LearningTrialConfig)
    assert cfg.n_packets == 7
    assert cfg.n_bursts == LearningTrialConfig().n_bursts


def test_resolve_config_coerces_nested_dicts():
    cfg = resolve_config(
        "coexistence",
        bicord_config={"allocator": {"initial_whitespace": 0.04}},
    )
    assert isinstance(cfg, CoexistenceConfig)
    assert cfg.bicord_config.allocator.initial_whitespace == pytest.approx(0.04)
    # untouched sections keep their defaults
    assert cfg.bicord_config.detector.required_samples == 2


def test_run_experiment_learning_equals_direct_call():
    via_registry = run_experiment("learning", seed=5, n_packets=4, n_bursts=4)
    direct = run_learning_trial(LearningTrialConfig(n_packets=4, n_bursts=4), 5)
    assert isinstance(via_registry, LearningTrialResult)
    assert canonical_dumps(via_registry) == canonical_dumps(direct)


def test_run_experiment_coexistence_seed_override():
    a = run_experiment("coexistence", seed=3, n_bursts=4)
    b = run_experiment("coexistence", config=CoexistenceConfig(seed=3, n_bursts=4))
    assert isinstance(a, CoexistenceResult)
    assert canonical_dumps(a) == canonical_dumps(b)


def test_run_experiment_accepts_config_dict():
    a = run_experiment("learning", config={"n_packets": 4, "n_bursts": 4}, seed=1)
    b = run_experiment("learning", n_packets=4, n_bursts=4, seed=1)
    assert canonical_dumps(a) == canonical_dumps(b)


def test_run_experiment_energy_and_ble_types():
    energy = run_experiment("energy", n_bursts=2, seed=1)
    assert isinstance(energy, EnergyResult)
    ble = run_experiment("ble", duration=2.0, afh_enabled=False, seed=1)
    assert isinstance(ble, BleCoexistenceResult)


# ----------------------------------------------------------------------
# Deprecation shims (old keyword forms keep working)
# ----------------------------------------------------------------------
def test_legacy_keyword_form_warns_and_matches_new_form():
    with pytest.warns(DeprecationWarning, match="run_learning_trial"):
        legacy = run_learning_trial(n_packets=4, n_bursts=4, seed=5)
    fresh = run_experiment("learning", n_packets=4, n_bursts=4, seed=5)
    assert canonical_dumps(legacy) == canonical_dumps(fresh)


def test_legacy_positional_scheme_string_warns():
    with pytest.warns(DeprecationWarning, match="positionally"):
        with pytest.raises(ValueError, match="bicord and ecc"):
            run_priority_experiment("csma", total_duration=1.0)


def test_legacy_unknown_keyword_still_rejected():
    with pytest.raises(TypeError, match="unexpected keyword"):
        run_signaling_trial(locaton="A")  # typo: not silently accepted


def test_mixing_config_and_legacy_kwargs_overrides_fields():
    with pytest.warns(DeprecationWarning):
        result = run_learning_trial(
            LearningTrialConfig(n_packets=9, n_bursts=4), seed=2, n_packets=4
        )
    assert result.n_packets == 4

"""Tests for the BLE connection substrate and the Sec. VII-D extension."""

import pytest

from repro.devices import ZigbeeDevice
from repro.experiments.ble_extension import run_ble_coexistence
from repro.mac.ble import DATA_CHANNELS, MIN_USED_CHANNELS, BleConnection
from repro.mac.frames import zigbee_data_frame
from repro.phy.propagation import Position
from repro.sim.process import Process

from .helpers import deterministic_context


def make_link(ctx, **kwargs):
    return BleConnection(ctx, "link", Position(0, 0), Position(1.5, 0), **kwargs)


def test_clean_channel_events_succeed():
    ctx = deterministic_context()
    link = make_link(ctx, connection_interval=10e-3)
    link.start()
    ctx.sim.run(until=1.0)
    link.stop()
    assert link.events == pytest.approx(100, abs=2)
    assert link.event_success_rate > 0.99
    assert link.excluded_channels() == []


def test_hop_sequence_visits_many_channels():
    ctx = deterministic_context()
    link = make_link(ctx)
    seen = {link._next_channel() for _ in range(37)}
    assert len(seen) == 37  # hop increment 7 is coprime with 37


def test_remapping_avoids_excluded_channels():
    ctx = deterministic_context()
    link = make_link(ctx)
    link.used_channels = [ch for ch in DATA_CHANNELS if ch not in (33, 34)]
    for _ in range(200):
        assert link._next_channel() not in (33, 34)


def test_afh_excludes_jammed_channel():
    """A strong ZigBee transmitter on channel 24 (2470 MHz) must get BLE
    channel 34 excluded."""
    ctx = deterministic_context(seed=2)
    link = make_link(ctx, connection_interval=8e-3, afh_check_interval=0.4)
    zs = ZigbeeDevice(ctx, "ZS", Position(0.7, 0.4), channel=24, tx_power_dbm=0.0)

    def jam():
        while True:
            zs.mac.send_forced(zigbee_data_frame("ZS", "*", 100))
            yield 4.0e-3

    Process(ctx.sim, jam())
    link.start()
    ctx.sim.run(until=6.0)
    link.stop()
    assert 34 in link.excluded_channels()
    assert 34 not in link.used_channels


def test_afh_probation_readmits_channels():
    ctx = deterministic_context(seed=3)
    link = make_link(ctx, connection_interval=8e-3, afh_check_interval=0.3,
                     afh_probation=1.0)
    zs = ZigbeeDevice(ctx, "ZS", Position(0.7, 0.4), channel=24, tx_power_dbm=0.0)

    stop_at = 3.0
    def jam():
        while ctx.sim.now < stop_at:
            zs.mac.send_forced(zigbee_data_frame("ZS", "*", 100))
            yield 4.0e-3

    Process(ctx.sim, jam())
    link.start()
    ctx.sim.run(until=3.0)
    # The channel was excluded at least once while jammed (it may currently
    # be mid-probation-retry, so check the counter rather than the set).
    assert link.exclusions >= 1
    # Jammer gone: after probation the channel is re-admitted and stays.
    ctx.sim.run(until=8.0)
    link.stop()
    assert 34 not in link.excluded_channels()
    assert 34 in link.used_channels


def test_hop_map_never_shrinks_below_minimum():
    ctx = deterministic_context()
    link = make_link(ctx)
    # Pretend nearly everything failed.
    for ch in DATA_CHANNELS:
        link.stats[ch].attempts = 10
        link.stats[ch].failures = 10
    link._reclassify()
    assert len(link.used_channels) >= MIN_USED_CHANNELS


def test_double_start_rejected():
    ctx = deterministic_context()
    link = make_link(ctx)
    link.start()
    with pytest.raises(RuntimeError):
        link.start()
    link.stop()


def test_extension_experiment_afh_improves_ble():
    off = run_ble_coexistence(afh_enabled=False, duration=8.0, seed=1)
    on = run_ble_coexistence(afh_enabled=True, duration=8.0, seed=1)
    assert on.ble_late_success_rate >= off.ble_late_success_rate
    assert on.excluded_channels  # something was excluded
    assert on.zigbee_delivery_ratio > 0.8
    assert off.zigbee_delivery_ratio > 0.8

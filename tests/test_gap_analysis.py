"""Tests for the idle-gap analysis module."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    GapStatistics,
    analyze_trace,
    busy_intervals_from_trace,
    gaps_between,
    merge_intervals,
)
from repro.sim.trace import TraceRecorder


# ----------------------------------------------------------------------
# Interval merging
# ----------------------------------------------------------------------
def test_merge_disjoint_intervals():
    assert merge_intervals([(0, 1), (2, 3)]) == [(0, 1), (2, 3)]


def test_merge_overlapping_and_touching():
    assert merge_intervals([(0, 2), (1, 3), (3, 4)]) == [(0, 4)]


def test_merge_unsorted_input():
    assert merge_intervals([(5, 6), (0, 1)]) == [(0, 1), (5, 6)]


def test_merge_drops_empty_intervals():
    assert merge_intervals([(1, 1), (2, 1)]) == []


@settings(max_examples=100, deadline=None)
@given(st.lists(st.tuples(st.floats(0, 100), st.floats(0, 100)), max_size=30))
def test_merge_output_is_disjoint_and_ordered(raw):
    intervals = [(min(a, b), max(a, b)) for a, b in raw]
    merged = merge_intervals(intervals)
    for (s1, e1), (s2, e2) in zip(merged, merged[1:]):
        assert e1 < s2
    # Total covered length never shrinks below any single input interval.
    covered = sum(e - s for s, e in merged)
    for s, e in intervals:
        assert covered >= (e - s) - 1e-9


# ----------------------------------------------------------------------
# Gap extraction
# ----------------------------------------------------------------------
def test_gaps_simple():
    busy = [(1.0, 2.0), (3.0, 4.0)]
    assert gaps_between(busy, 0.0, 5.0) == [1.0, 1.0, 1.0]


def test_gaps_busy_covers_everything():
    assert gaps_between([(0.0, 10.0)], 0.0, 10.0) == []


def test_gaps_empty_channel():
    assert gaps_between([], 0.0, 4.0) == [4.0]


def test_gaps_clip_to_window():
    busy = [(-5.0, 1.0), (9.0, 20.0)]
    assert gaps_between(busy, 0.0, 10.0) == [8.0]


def test_gaps_invalid_window():
    with pytest.raises(ValueError):
        gaps_between([], 3.0, 3.0)


@settings(max_examples=100, deadline=None)
@given(st.lists(st.tuples(st.floats(0, 10), st.floats(0, 10)), max_size=20))
def test_gaps_plus_busy_equals_window(raw):
    busy = merge_intervals([(min(a, b), max(a, b)) for a, b in raw])
    window = (0.0, 12.0)
    gaps = gaps_between(busy, *window)
    busy_inside = sum(
        max(0.0, min(e, window[1]) - max(s, window[0])) for s, e in busy
    )
    assert sum(gaps) + busy_inside == pytest.approx(window[1] - window[0])


# ----------------------------------------------------------------------
# Statistics and the trace pipeline
# ----------------------------------------------------------------------
def test_statistics_usable_fraction():
    stats = GapStatistics.from_gaps([1.0, 1.0, 8.0], need=5.0)
    assert stats.n_gaps == 3
    assert stats.total_idle == pytest.approx(10.0)
    assert stats.usable_fraction == pytest.approx(0.8)
    assert stats.longest == 8.0


def test_statistics_empty():
    stats = GapStatistics.from_gaps([], need=1.0)
    assert stats.n_gaps == 0
    assert stats.usable_fraction == 0.0


def test_trace_pipeline():
    trace = TraceRecorder()
    trace.record(1.0, "medium.tx_start", source="E", technology="wifi",
                 duration=1.0, power_dbm=20.0)
    trace.record(4.0, "medium.tx_start", source="E", technology="wifi",
                 duration=2.0, power_dbm=20.0)
    trace.record(2.5, "medium.tx_start", source="Z", technology="zigbee",
                 duration=0.5, power_dbm=0.0)
    busy = busy_intervals_from_trace(trace, technologies=["wifi"])
    assert busy == [(1.0, 2.0), (4.0, 6.0)]
    stats = analyze_trace(trace, 0.0, 8.0, need=1.5)
    assert stats.n_gaps == 3  # [0,1], [2,4], [6,8]
    assert stats.usable_fraction == pytest.approx(4.0 / 5.0)


def test_saturated_wifi_leaves_no_usable_gaps():
    """The paper's workload: gaps almost never fit a ZigBee exchange."""
    from repro.experiments.topology import build_office
    from repro.traffic import WifiPacketSource

    office = build_office(seed=1, trace_kinds={"medium.tx_start"})
    cal = office.calibration
    WifiPacketSource(office.ctx, office.wifi_sender.mac, "F",
                     payload_bytes=cal.wifi_payload_bytes,
                     interval=cal.wifi_interval)
    office.ctx.sim.run(until=2.0)
    exchange_need = 4.5e-3  # one 50 B ZigBee packet exchange
    stats = analyze_trace(office.ctx.trace, 0.1, 2.0, need=exchange_need)
    assert stats.usable_fraction < 0.1
    assert stats.p90 < exchange_need

"""Failure injection: the protocol degrades gracefully, never crashes."""

import numpy as np
import pytest

from repro.core import BicordCoordinator, BicordNode
from repro.devices import ZigbeeDevice
from repro.experiments.topology import build_office, location_powermap
from repro.phy.propagation import Position
from repro.traffic import Burst, WifiPacketSource, ZigbeeBurstSource


def standard(seed=1):
    office = build_office(seed=seed, location="A")
    cal = office.calibration
    WifiPacketSource(
        office.ctx, office.wifi_sender.mac, "F",
        payload_bytes=cal.wifi_payload_bytes, interval=cal.wifi_interval,
    )
    coordinator = BicordCoordinator(office.wifi_receiver)
    node = BicordNode(office.zigbee_sender, "ZR", powermap=location_powermap("A"))
    return office, coordinator, node


def test_zigbee_receiver_dies_midway():
    """The node keeps signaling/retrying but never crashes or miscounts."""
    office, coordinator, node = standard()
    ZigbeeBurstSource(
        office.ctx, node.offer_burst, n_packets=5, payload_bytes=50,
        interval_mean=0.2, poisson=False, max_bursts=8,
    )

    def kill_receiver():
        office.zigbee_receiver.radio.enabled = False

    office.ctx.sim.schedule(0.5, kill_receiver)
    office.ctx.sim.run(until=2.5)
    assert 0 < node.packets_delivered < 40
    assert node.outstanding_packets == 40 - node.packets_delivered
    # Un-ACKed packets keep the salvo machinery busy, not broken.
    assert node.control_packets_sent > 0


def test_wifi_traffic_stops_midway():
    """When the interferer disappears, ZigBee proceeds without signaling."""
    office = build_office(seed=2, location="A")
    cal = office.calibration
    source = WifiPacketSource(
        office.ctx, office.wifi_sender.mac, "F",
        payload_bytes=cal.wifi_payload_bytes, interval=cal.wifi_interval,
    )
    coordinator = BicordCoordinator(office.wifi_receiver)
    node = BicordNode(office.zigbee_sender, "ZR", powermap=location_powermap("A"))
    ZigbeeBurstSource(
        office.ctx, node.offer_burst, n_packets=5, payload_bytes=50,
        interval_mean=0.2, poisson=False, max_bursts=10,
    )
    office.ctx.sim.schedule(0.8, source.stop)
    office.ctx.sim.run(until=2.6)
    assert node.packets_delivered == 50
    # Late bursts ride a clear channel: last delays comparable to clear CSMA.
    late = node.packet_delays[-5:]
    assert np.mean(late) < 0.05


def test_coordinator_stopped_midway():
    """Stopping the coordinator leaves the node on its own (it degrades to
    retry loops) without exceptions."""
    office, coordinator, node = standard(seed=3)
    ZigbeeBurstSource(
        office.ctx, node.offer_burst, n_packets=5, payload_bytes=50,
        interval_mean=0.2, poisson=False, max_bursts=6,
    )
    office.ctx.sim.schedule(0.45, coordinator.stop)
    office.ctx.sim.run(until=2.0)
    # Earlier bursts were served; later ones may be stuck, never negative.
    assert 0 < node.packets_delivered <= 30
    assert node.outstanding_packets >= 0


def test_detector_flood_does_not_blow_up_grants():
    """A CSI flood (pathological environment) cannot push grants past the
    clamp, and the simulation completes."""
    office, coordinator, node = standard(seed=4)
    # Environment deviation always huge: every sample is a high fluctuation.
    office.wifi_receiver.csi.environment_deviation = lambda now: 0.9
    ZigbeeBurstSource(
        office.ctx, node.offer_burst, n_packets=5, payload_bytes=50,
        interval_mean=0.2, poisson=False, max_bursts=5,
    )
    office.ctx.sim.run(until=1.5)
    max_ws = coordinator.config.allocator.max_whitespace
    for grant in coordinator.allocator.whitespace_trajectory():
        assert grant <= max_ws + 1e-12


def test_burst_while_previous_burst_unfinished():
    """Bursts offered faster than they drain queue up and eventually drain."""
    office, coordinator, node = standard(seed=5)
    for i in range(4):
        node.offer_burst(Burst(created_at=0.0, n_packets=5, payload_bytes=50,
                               burst_id=i + 1))
    office.ctx.sim.run(until=2.0)
    assert node.packets_delivered == 20
    assert node.bursts_completed == 4


def test_node_with_unknown_receiver_name():
    """Data addressed to a nonexistent node: no ACKs, no crash."""
    office, coordinator, node = standard(seed=6)
    node.receiver = "GHOST"
    node.offer_burst(Burst(created_at=0.0, n_packets=3, payload_bytes=50, burst_id=1))
    office.ctx.sim.run(until=1.0)
    assert node.packets_delivered == 0
    assert node.outstanding_packets == 3


def test_two_bicord_nodes_share_one_coordinator():
    """Multi-node scenario (Sec. VI, 'multiple ZigBee nodes'): both make
    progress through the shared allocator."""
    office, coordinator, node_a = standard(seed=7)
    second_sender = ZigbeeDevice(office.ctx, "ZS2", Position(2.3, 1.2),
                                 channel=24, tx_power_dbm=-7.0)
    second_receiver = ZigbeeDevice(office.ctx, "ZR2", Position(3.4, 1.7), channel=24)
    node_b = BicordNode(second_sender, "ZR2", powermap=location_powermap("A"))
    ZigbeeBurstSource(office.ctx, node_a.offer_burst, n_packets=4, payload_bytes=50,
                      interval_mean=0.25, poisson=False, max_bursts=6, name="a")
    ZigbeeBurstSource(office.ctx, node_b.offer_burst, n_packets=4, payload_bytes=50,
                      interval_mean=0.25, poisson=False, max_bursts=6, name="b",
                      start_delay=0.1)
    office.ctx.sim.run(until=2.5)
    assert node_a.packets_delivered == 24
    assert node_b.packets_delivered == 24

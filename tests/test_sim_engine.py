"""Tests for the discrete-event engine.

Every behavioral test runs against both scheduler backends (the heap oracle
and the calendar queue) via the parametrized ``sim`` fixture — the two must
be indistinguishable through the public API.
"""

import pytest

from repro.sim.engine import SCHEDULER_BACKENDS, SimulationError, Simulator


@pytest.fixture(params=SCHEDULER_BACKENDS)
def sim(request):
    return Simulator(backend=request.param)


def test_events_fire_in_time_order(sim):
    order = []
    sim.schedule(2.0, order.append, "b")
    sim.schedule(1.0, order.append, "a")
    sim.schedule(3.0, order.append, "c")
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_fire_fifo(sim):
    order = []
    for tag in ["first", "second", "third"]:
        sim.schedule(1.0, order.append, tag)
    sim.run()
    assert order == ["first", "second", "third"]


def test_clock_advances_to_event_time(sim):
    seen = []
    sim.schedule(1.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [1.5]
    assert sim.now == 1.5


def test_run_until_stops_before_later_events(sim):
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(5.0, fired.append, 5)
    sim.run(until=2.0)
    assert fired == [1]
    assert sim.now == 2.0  # clock parked exactly at the horizon


def test_run_until_past_queue_parks_clock(sim):
    sim.schedule(1.0, lambda: None)
    sim.run(until=10.0)
    assert sim.now == 10.0


def test_cancelled_event_does_not_fire(sim):
    fired = []
    event = sim.schedule(1.0, fired.append, "x")
    event.cancel()
    sim.run()
    assert fired == []
    assert not event.pending


def test_cancel_is_idempotent(sim):
    event = sim.schedule(1.0, lambda: None)
    event.cancel()
    event.cancel()
    sim.run()
    assert event.cancelled


def test_schedule_in_past_raises(sim):
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_events_scheduled_during_run_fire(sim):
    order = []

    def outer():
        order.append("outer")
        sim.schedule(1.0, order.append, "inner")

    sim.schedule(1.0, outer)
    sim.run()
    assert order == ["outer", "inner"]


def test_zero_delay_event_fires_at_current_time(sim):
    times = []
    sim.schedule(2.0, lambda: sim.schedule(0.0, lambda: times.append(sim.now)))
    sim.run()
    assert times == [2.0]


def test_stop_halts_run(sim):
    fired = []

    def first():
        fired.append(1)
        sim.stop()

    sim.schedule(1.0, first)
    sim.schedule(2.0, fired.append, 2)
    sim.run()
    assert fired == [1]  # stop prevented event 2
    assert sim.peek() == 2.0  # event 2 still queued


def test_max_events_bound(sim):
    fired = []
    for i in range(10):
        sim.schedule(float(i + 1), fired.append, i)
    sim.run(max_events=3)
    assert fired == [0, 1, 2]


def test_peek_skips_cancelled(sim):
    first = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    first.cancel()
    assert sim.peek() == 2.0


def test_pending_count(sim):
    events = [sim.schedule(float(i + 1), lambda: None) for i in range(5)]
    events[0].cancel()
    assert sim.pending_count() == 4


def test_events_processed_counter(sim):
    for i in range(4):
        sim.schedule(float(i + 1), lambda: None)
    sim.run()
    assert sim.events_processed == 4


def test_max_events_exhaustion_leaves_queue_and_resumes(sim):
    fired = []
    for i in range(6):
        sim.schedule(float(i + 1), fired.append, i)
    sim.run(max_events=4)
    assert fired == [0, 1, 2, 3]
    assert sim.now == 4.0  # clock rests at the last fired event
    assert sim.peek() == 5.0
    assert sim.pending_count() == 2
    sim.run()  # a second run drains the remainder
    assert fired == [0, 1, 2, 3, 4, 5]


def test_max_events_counts_only_fired_not_cancelled(sim):
    fired = []
    events = [sim.schedule(float(i + 1), fired.append, i) for i in range(6)]
    events[0].cancel()
    events[1].cancel()
    sim.run(max_events=2)
    # Cancelled events are skipped for free: the budget buys 2 real firings.
    assert fired == [2, 3]


def test_stop_mid_callback_does_not_advance_to_until(sim):
    fired = []

    def first():
        fired.append(sim.now)
        sim.stop()

    sim.schedule(1.0, first)
    sim.schedule(2.0, fired.append, 2.0)
    sim.run(until=10.0)
    assert fired == [1.0]
    assert sim.now == 1.0  # stop() pins the clock; no park at `until`


def test_stopped_run_can_be_resumed(sim):
    fired = []
    sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
    sim.schedule(2.0, fired.append, 2)
    sim.run()
    assert fired == [1]
    sim.run()  # a fresh run() clears the stop flag
    assert fired == [1, 2]


def test_peek_and_pending_count_agree_after_cancellations(sim):
    events = [sim.schedule(float(i + 1), lambda: None) for i in range(5)]
    for event in events[:3]:
        event.cancel()
    # peek() prunes cancelled heads; pending_count() filters the whole queue.
    assert sim.peek() == 4.0
    assert sim.pending_count() == 2
    events[3].cancel()
    events[4].cancel()
    assert sim.peek() is None
    assert sim.pending_count() == 0


def test_queue_hwm_and_wall_time_tracking(sim):
    for i in range(7):
        sim.schedule(float(i + 1), lambda: None)
    assert sim.queue_hwm == 7
    assert sim.wall_time == 0.0
    sim.run()
    assert sim.queue_hwm == 7  # draining never raises the high-water mark
    assert sim.wall_time > 0.0


def test_reentrant_run_rejected(sim):
    errors = []

    def nested():
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(1.0, nested)
    sim.run()
    assert len(errors) == 1


# ----------------------------------------------------------------------
# Backend selection
# ----------------------------------------------------------------------

def test_backend_selection_and_names():
    from repro.sim.calendar import CalendarSimulator

    assert Simulator().backend_name == "calendar"  # default since the flip
    assert Simulator(backend="heap").backend_name == "heap"
    calendar = Simulator(backend="calendar")
    assert calendar.backend_name == "calendar"
    assert isinstance(calendar, Simulator)
    assert isinstance(calendar, CalendarSimulator)
    with pytest.raises(ValueError):
        Simulator(backend="fibonacci")


def test_set_default_backend_round_trip():
    from repro.sim.engine import set_default_backend

    previous = set_default_backend("heap")
    try:
        assert previous == "calendar"
        assert Simulator().backend_name == "heap"
    finally:
        set_default_backend(previous)
    assert Simulator().backend_name == "calendar"
    with pytest.raises(ValueError):
        set_default_backend("fibonacci")


def test_build_context_backend_parameter():
    from repro.context import build_context

    assert build_context(seed=0, trace_kinds=set()).sim.backend_name == "calendar"
    ctx = build_context(seed=0, trace_kinds=set(), backend="heap")
    assert ctx.sim.backend_name == "heap"


def test_calendar_geometry_validation():
    from repro.sim.calendar import CalendarSimulator

    with pytest.raises(ValueError):
        CalendarSimulator(nbuckets=100)  # not a power of two
    with pytest.raises(ValueError):
        CalendarSimulator(bucket_width=0.0)
    # Tiny wheels exercise the overflow/migration path but stay correct.
    sim = CalendarSimulator(nbuckets=4, bucket_width=1e-3)
    order = []
    for i in (9, 2, 7, 0, 4):
        sim.schedule(i * 1e-3, order.append, i)
    sim.run()
    assert order == [0, 2, 4, 7, 9]


def test_calendar_rejects_non_finite_times():
    sim = Simulator(backend="calendar")
    with pytest.raises(SimulationError):
        sim.schedule(float("inf"), lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule(float("nan"), lambda: None)


# ----------------------------------------------------------------------
# Accounting fixes: pending high-water mark, O(1) pending, compaction
# ----------------------------------------------------------------------

def test_queue_hwm_excludes_cancelled_entries(sim):
    """queue_hwm tracks *pending* depth, not lazily-retained cancelled junk."""
    events = [sim.schedule(float(i + 1), lambda: None) for i in range(10)]
    assert sim.queue_hwm == 10
    for event in events[:6]:
        event.cancel()
    # The heap still physically holds 10 entries, but pending fell to 4:
    # new schedules must not raise the mark until depth really exceeds 10.
    for i in range(5):
        sim.schedule(20.0 + i, lambda: None)
    assert sim.pending_count() == 9
    assert sim.queue_hwm == 10
    for i in range(2):
        sim.schedule(30.0 + i, lambda: None)
    assert sim.queue_hwm == 11  # 9 + 2 pending beats the old mark


def test_pending_count_is_live_through_run_and_cancel(sim):
    events = [sim.schedule(float(i + 1), lambda: None) for i in range(6)]
    assert sim.pending_count() == 6
    events[5].cancel()
    assert sim.pending_count() == 5
    sim.run(max_events=2)
    assert sim.pending_count() == 3
    sim.run()
    assert sim.pending_count() == 0


def test_compaction_bounds_queue_under_backoff_replanning(sim):
    """Sustained schedule+cancel churn must not grow the queue unboundedly.

    Models MAC backoff re-planning: every round cancels the previous
    completion event and schedules a new one.  With lazy cancellation only,
    the queue would hold every cancelled entry until it surfaced; the
    compaction threshold keeps physical length <= 2x pending (+ slack below
    the trigger floor).
    """
    from repro.sim.engine import COMPACT_MIN_CANCELLED

    keepers = [sim.schedule(1000.0 + i, lambda: None) for i in range(40)]
    replanned = sim.schedule(500.0, lambda: None)
    for round_ in range(2000):
        replanned.cancel()
        replanned = sim.schedule(500.0 + round_ * 1e-3, lambda: None)
        pending = sim.pending_count()
        length = sim.queue_length()
        assert length <= max(2 * pending, pending + COMPACT_MIN_CANCELLED + 1)
    assert sim.pending_count() == len(keepers) + 1
    assert sim.compactions > 0
    sim.run()
    assert sim.events_processed == len(keepers) + 1


def test_cancel_after_fire_is_noop_for_accounting(sim):
    fired = []
    event = sim.schedule(1.0, fired.append, 1)
    sim.schedule(2.0, lambda: None)
    sim.run(max_events=1)
    assert fired == [1]
    event.cancel()  # already fired: must not disturb the pending counter
    assert sim.pending_count() == 1
    sim.run()
    assert sim.events_processed == 2


def test_queue_length_agrees_with_pending_when_clean(sim):
    for i in range(9):
        sim.schedule(float(i + 1), lambda: None)
    assert sim.queue_length() == 9
    assert sim.pending_count() == 9
    sim.run(max_events=4)
    assert sim.queue_length() == 5
    assert sim.pending_count() == 5

"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import SimulationError, Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(2.0, order.append, "b")
    sim.schedule(1.0, order.append, "a")
    sim.schedule(3.0, order.append, "c")
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_fire_fifo():
    sim = Simulator()
    order = []
    for tag in ["first", "second", "third"]:
        sim.schedule(1.0, order.append, tag)
    sim.run()
    assert order == ["first", "second", "third"]


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(1.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [1.5]
    assert sim.now == 1.5


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(5.0, fired.append, 5)
    sim.run(until=2.0)
    assert fired == [1]
    assert sim.now == 2.0  # clock parked exactly at the horizon


def test_run_until_past_queue_parks_clock():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run(until=10.0)
    assert sim.now == 10.0


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, "x")
    event.cancel()
    sim.run()
    assert fired == []
    assert not event.pending


def test_cancel_is_idempotent():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    event.cancel()
    event.cancel()
    sim.run()
    assert event.cancelled


def test_schedule_in_past_raises():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_events_scheduled_during_run_fire():
    sim = Simulator()
    order = []

    def outer():
        order.append("outer")
        sim.schedule(1.0, order.append, "inner")

    sim.schedule(1.0, outer)
    sim.run()
    assert order == ["outer", "inner"]


def test_zero_delay_event_fires_at_current_time():
    sim = Simulator()
    times = []
    sim.schedule(2.0, lambda: sim.schedule(0.0, lambda: times.append(sim.now)))
    sim.run()
    assert times == [2.0]


def test_stop_halts_run():
    sim = Simulator()
    fired = []

    def first():
        fired.append(1)
        sim.stop()

    sim.schedule(1.0, first)
    sim.schedule(2.0, fired.append, 2)
    sim.run()
    assert fired == [1]  # stop prevented event 2
    assert sim.peek() == 2.0  # event 2 still queued


def test_max_events_bound():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(float(i + 1), fired.append, i)
    sim.run(max_events=3)
    assert fired == [0, 1, 2]


def test_peek_skips_cancelled():
    sim = Simulator()
    first = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    first.cancel()
    assert sim.peek() == 2.0


def test_pending_count():
    sim = Simulator()
    events = [sim.schedule(float(i + 1), lambda: None) for i in range(5)]
    events[0].cancel()
    assert sim.pending_count() == 4


def test_events_processed_counter():
    sim = Simulator()
    for i in range(4):
        sim.schedule(float(i + 1), lambda: None)
    sim.run()
    assert sim.events_processed == 4


def test_max_events_exhaustion_leaves_queue_and_resumes():
    sim = Simulator()
    fired = []
    for i in range(6):
        sim.schedule(float(i + 1), fired.append, i)
    sim.run(max_events=4)
    assert fired == [0, 1, 2, 3]
    assert sim.now == 4.0  # clock rests at the last fired event
    assert sim.peek() == 5.0
    assert sim.pending_count() == 2
    sim.run()  # a second run drains the remainder
    assert fired == [0, 1, 2, 3, 4, 5]


def test_max_events_counts_only_fired_not_cancelled():
    sim = Simulator()
    fired = []
    events = [sim.schedule(float(i + 1), fired.append, i) for i in range(6)]
    events[0].cancel()
    events[1].cancel()
    sim.run(max_events=2)
    # Cancelled events are skipped for free: the budget buys 2 real firings.
    assert fired == [2, 3]


def test_stop_mid_callback_does_not_advance_to_until():
    sim = Simulator()
    fired = []

    def first():
        fired.append(sim.now)
        sim.stop()

    sim.schedule(1.0, first)
    sim.schedule(2.0, fired.append, 2.0)
    sim.run(until=10.0)
    assert fired == [1.0]
    assert sim.now == 1.0  # stop() pins the clock; no park at `until`


def test_stopped_run_can_be_resumed():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
    sim.schedule(2.0, fired.append, 2)
    sim.run()
    assert fired == [1]
    sim.run()  # a fresh run() clears the stop flag
    assert fired == [1, 2]


def test_peek_and_pending_count_agree_after_cancellations():
    sim = Simulator()
    events = [sim.schedule(float(i + 1), lambda: None) for i in range(5)]
    for event in events[:3]:
        event.cancel()
    # peek() prunes cancelled heads; pending_count() filters the whole queue.
    assert sim.peek() == 4.0
    assert sim.pending_count() == 2
    events[3].cancel()
    events[4].cancel()
    assert sim.peek() is None
    assert sim.pending_count() == 0


def test_queue_hwm_and_wall_time_tracking():
    sim = Simulator()
    for i in range(7):
        sim.schedule(float(i + 1), lambda: None)
    assert sim.queue_hwm == 7
    assert sim.wall_time == 0.0
    sim.run()
    assert sim.queue_hwm == 7  # draining never raises the high-water mark
    assert sim.wall_time > 0.0


def test_reentrant_run_rejected():
    sim = Simulator()
    errors = []

    def nested():
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(1.0, nested)
    sim.run()
    assert len(errors) == 1

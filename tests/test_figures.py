"""Tests for the terminal figure helpers."""

import pytest

from repro.experiments.figures import bar_chart, histogram, sparkline, timeline


def test_sparkline_shape():
    line = sparkline([0, 1, 2, 3])
    assert len(line) == 4
    assert line[0] == "▁" and line[-1] == "█"


def test_sparkline_flat_and_empty():
    assert sparkline([5, 5, 5]) == "▁▁▁"
    assert sparkline([]) == ""


def test_sparkline_monotone_levels():
    line = sparkline(list(range(8)))
    assert list(line) == sorted(line, key="▁▂▃▄▅▆▇█".index)


def test_bar_chart_rows_and_scaling():
    chart = bar_chart(["a", "bb"], [1.0, 2.0], width=10)
    lines = chart.splitlines()
    assert len(lines) == 2
    assert lines[1].count("█") == 10  # the peak fills the width
    assert lines[0].count("█") == 5


def test_bar_chart_length_mismatch():
    with pytest.raises(ValueError):
        bar_chart(["a"], [1.0, 2.0])


def test_timeline_marks_intervals():
    strip = timeline([(2.0, 4.0)], start=0.0, end=10.0, width=10)
    assert strip == "..###....." or strip.count("#") in (2, 3)
    assert len(strip) == 10


def test_timeline_clips_to_window():
    strip = timeline([(-5.0, 20.0)], start=0.0, end=10.0, width=10)
    assert strip == "#" * 10


def test_timeline_invalid_window():
    with pytest.raises(ValueError):
        timeline([], start=1.0, end=1.0)


def test_histogram_counts_sum():
    values = [0.1, 0.2, 0.2, 0.9]
    text = histogram(values, n_bins=4, width=10)
    counts = [int(line.rsplit(" ", 1)[1]) for line in text.splitlines()]
    assert sum(counts) == len(values)


def test_histogram_degenerate():
    assert "x3" in histogram([1.0, 1.0, 1.0])
    assert histogram([]) == "(no data)"

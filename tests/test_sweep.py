"""Sweep engine: grid expansion, caching, parallel determinism."""

import json

import pytest

from repro.experiments import (
    SweepEngine,
    SweepSpec,
    expand_grid,
    trial_key,
)
from repro.experiments.sweep import CACHE_SCHEMA, default_cache_dir
from repro.serialization import canonical_dumps


# ----------------------------------------------------------------------
# Grid expansion
# ----------------------------------------------------------------------
def test_expand_grid_cartesian_product_in_order():
    combos = expand_grid({"a": (1, 2), "b": ("x", "y", "z")})
    assert len(combos) == 6
    assert combos[0] == {"a": 1, "b": "x"}
    assert combos[-1] == {"a": 2, "b": "z"}
    # first axis varies slowest
    assert [c["a"] for c in combos] == [1, 1, 1, 2, 2, 2]


def test_expand_grid_merges_base_and_grid_wins():
    combos = expand_grid({"a": (1,)}, base={"a": 99, "b": 7})
    assert combos == [{"a": 1, "b": 7}]


def test_expand_grid_empty_grid_is_one_trial():
    assert expand_grid({}, base={"n": 3}) == [{"n": 3}]


def test_expand_grid_rejects_scalar_axis():
    with pytest.raises(TypeError):
        expand_grid({"a": 5})
    with pytest.raises(TypeError):
        expand_grid({"a": "AB"})  # a string is not a value list
    with pytest.raises(ValueError):
        expand_grid({"a": ()})


# ----------------------------------------------------------------------
# Trial keys (content addressing)
# ----------------------------------------------------------------------
def test_trial_key_stable_and_param_order_independent():
    k1 = trial_key("learning", {"n_packets": 5, "n_bursts": 4}, seed=1)
    k2 = trial_key("learning", {"n_bursts": 4, "n_packets": 5}, seed=1)
    assert k1 == k2
    assert len(k1) == 64


def test_trial_key_resolves_defaults():
    # Explicitly passing a default value hashes like omitting it.
    assert trial_key("learning", {"n_packets": 10}, 0) == trial_key("learning", {}, 0)


def test_trial_key_sensitive_to_config_seed_and_code_version():
    base = trial_key("learning", {"n_packets": 5}, seed=0)
    assert trial_key("learning", {"n_packets": 6}, seed=0) != base
    assert trial_key("learning", {"n_packets": 5}, seed=1) != base
    assert trial_key("learning", {"n_packets": 5}, seed=0,
                     code_version="other") != base


def test_default_cache_dir_env_override(monkeypatch, tmp_path):
    monkeypatch.setenv("BICORD_SWEEP_CACHE", str(tmp_path / "alt"))
    assert default_cache_dir() == tmp_path / "alt"


# ----------------------------------------------------------------------
# Cache hit / miss / invalidation
# ----------------------------------------------------------------------
LEARN_SPEC = SweepSpec(
    experiment="learning",
    grid={"n_packets": (3, 5)},
    base={"n_bursts": 4},
    seeds=(0, 1),
)


def test_second_run_is_all_cache_hits(tmp_path):
    engine = SweepEngine(jobs=1, cache_dir=tmp_path)
    first = engine.run(LEARN_SPEC)
    assert (first.executed, first.cached_hits) == (4, 0)
    second = engine.run(LEARN_SPEC)
    assert (second.executed, second.cached_hits) == (0, 4)
    for a, b in zip(first.results, second.results):
        assert canonical_dumps(a) == canonical_dumps(b)


def test_config_change_invalidates_cache(tmp_path):
    engine = SweepEngine(jobs=1, cache_dir=tmp_path)
    engine.run(LEARN_SPEC)
    changed = SweepSpec(
        experiment="learning",
        grid={"n_packets": (3, 5)},
        base={"n_bursts": 4, "payload_bytes": 60},  # changed field => new keys
        seeds=(0, 1),
    )
    rerun = engine.run(changed)
    assert rerun.executed == 4 and rerun.cached_hits == 0


def test_corrupt_cache_entry_is_a_miss(tmp_path):
    engine = SweepEngine(jobs=1, cache_dir=tmp_path)
    spec = SweepSpec("learning", base={"n_bursts": 3, "n_packets": 3})
    run = engine.run(spec)
    entry = engine._entry_path(run.records[0].key)
    entry.write_text("{not json", encoding="utf-8")
    rerun = engine.run(spec)
    assert rerun.executed == 1 and rerun.cached_hits == 0


def test_schema_bump_invalidates_entry(tmp_path):
    engine = SweepEngine(jobs=1, cache_dir=tmp_path)
    spec = SweepSpec("learning", base={"n_bursts": 3, "n_packets": 3})
    run = engine.run(spec)
    entry = engine._entry_path(run.records[0].key)
    data = json.loads(entry.read_text(encoding="utf-8"))
    assert data["schema"] == CACHE_SCHEMA
    data["schema"] = CACHE_SCHEMA + 1
    entry.write_text(json.dumps(data), encoding="utf-8")
    rerun = engine.run(spec)
    assert rerun.executed == 1


def test_corrupt_entry_in_full_sweep_reexecutes_only_that_trial(tmp_path):
    """A torn cache write must not crash a sweep nor poison its siblings:
    the corrupt entry is re-executed, the rest are served from cache, and
    the re-executed result is bitwise-identical to the original."""
    engine = SweepEngine(jobs=1, cache_dir=tmp_path)
    first = engine.run(LEARN_SPEC)
    assert first.executed == 4
    victim = engine._entry_path(first.records[1].key)
    victim.write_text('{"schema": ', encoding="utf-8")  # truncated mid-write
    rerun = engine.run(LEARN_SPEC)
    assert (rerun.executed, rerun.cached_hits) == (1, 3)
    for a, b in zip(first.results, rerun.results):
        assert canonical_dumps(a) == canonical_dumps(b)


def test_cache_store_leaves_no_temp_files(tmp_path):
    engine = SweepEngine(jobs=1, cache_dir=tmp_path)
    engine.run(SweepSpec("learning", base={"n_bursts": 3, "n_packets": 3}))
    assert not list(tmp_path.rglob("*.tmp*"))


def test_clear_cache_removes_entries(tmp_path):
    engine = SweepEngine(jobs=1, cache_dir=tmp_path)
    engine.run(SweepSpec("learning", base={"n_bursts": 3, "n_packets": 3}))
    assert engine.clear_cache() == 1
    assert engine.clear_cache() == 0


def test_clear_cache_sweeps_orphaned_temp_files(tmp_path):
    engine = SweepEngine(jobs=1, cache_dir=tmp_path)
    run = engine.run(SweepSpec("learning", base={"n_bursts": 3, "n_packets": 3}))
    entry = engine._entry_path(run.records[0].key)
    orphan = entry.with_name(entry.name + ".tmp99999")  # writer died pre-rename
    orphan.write_text("{", encoding="utf-8")
    assert engine.clear_cache() == 1  # orphans are not counted as entries
    assert not orphan.exists()


def test_cache_disabled_always_executes(tmp_path):
    engine = SweepEngine(jobs=1, cache_dir=tmp_path, cache=False)
    spec = SweepSpec("learning", base={"n_bursts": 3, "n_packets": 3})
    assert engine.run(spec).executed == 1
    assert engine.run(spec).executed == 1
    assert not any(tmp_path.rglob("*.json"))


# ----------------------------------------------------------------------
# Parallel execution
# ----------------------------------------------------------------------
def test_parallel_sweep_matches_serial_bitwise(tmp_path):
    """Acceptance: jobs=4 is bitwise-identical to jobs=1, per trial."""
    spec = SweepSpec(
        experiment="coexistence",
        grid={"location": ("A", "B")},
        base={"n_bursts": 4},
        seeds=(0, 1),
    )
    serial = SweepEngine(jobs=1, cache=False).run(spec)
    parallel = SweepEngine(jobs=4, cache=False).run(spec)
    assert [r.params for r in serial.records] == [r.params for r in parallel.records]
    assert [r.seed for r in serial.records] == [r.seed for r in parallel.records]
    for a, b in zip(serial.results, parallel.results):
        assert canonical_dumps(a) == canonical_dumps(b)
    assert parallel.jobs == 4 and serial.jobs == 1


def test_coexistence_sweep_rerun_hits_cache(tmp_path):
    """Acceptance: a 2-seed x 2-location coexistence sweep re-runs from cache."""
    spec = SweepSpec(
        experiment="coexistence",
        grid={"location": ("A", "B")},
        base={"n_bursts": 3},
        seeds=(0, 1),
    )
    engine = SweepEngine(jobs=1, cache_dir=tmp_path)
    first = engine.run(spec)
    assert first.executed == 4
    second = engine.run(spec)
    assert second.executed == 0 and second.cached_hits == 4
    for a, b in zip(first.results, second.results):
        assert canonical_dumps(a) == canonical_dumps(b)


def test_progress_callback_streams_all_trials(tmp_path):
    seen = []
    engine = SweepEngine(
        jobs=1, cache_dir=tmp_path,
        progress=lambda record, done, total: seen.append((done, total, record.cached)),
    )
    engine.run(LEARN_SPEC)
    assert [d for d, _, _ in seen] == [1, 2, 3, 4]
    assert all(t == 4 for _, t, _ in seen)
    assert not any(cached for _, _, cached in seen)
    seen.clear()
    engine.run(LEARN_SPEC)
    assert all(cached for _, _, cached in seen)


def test_run_trials_rejects_reserved_params(tmp_path):
    engine = SweepEngine(jobs=1, cache_dir=tmp_path)
    with pytest.raises(ValueError, match="seed"):
        engine.run_trials("learning", [{"seed": 3}])


def test_engine_rejects_bad_jobs():
    with pytest.raises(ValueError):
        SweepEngine(jobs=0)


def test_sweep_smoke_across_experiments(tmp_path):
    """Tier-1 smoke: tiny sweeps of two more experiments run end to end."""
    engine = SweepEngine(jobs=1, cache_dir=tmp_path)
    energy = engine.run(SweepSpec("energy", base={"n_bursts": 2}))
    assert energy.results[0].bicord_mj > 0
    ble = engine.run(SweepSpec(
        "ble", grid={"afh_enabled": (False,)}, base={"duration": 2.0},
    ))
    assert ble.results[0].ble_events > 0

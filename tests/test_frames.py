"""Tests for frame builders, sizes, and BER dispatch."""

import pytest

from repro.mac.frames import (
    BROADCAST,
    Frame,
    FrameType,
    WIFI_ACK_MPDU_BYTES,
    WIFI_MAC_OVERHEAD_BYTES,
    ZIGBEE_ACK_MPDU_BYTES,
    ZIGBEE_MAC_OVERHEAD_BYTES,
    wifi_ack_frame,
    wifi_cts_frame,
    wifi_data_frame,
    zigbee_ack_frame,
    zigbee_control_frame,
    zigbee_data_frame,
)
from repro.phy.medium import Technology
from repro.phy.modulation import wifi_rate


def test_wifi_data_frame_sizes_and_bits():
    frame = wifi_data_frame("a", "b", 100, wifi_rate(24.0), created_at=1.5)
    assert frame.mpdu_bytes == 100 + WIFI_MAC_OVERHEAD_BYTES
    assert frame.bits == 8 * frame.mpdu_bytes
    assert frame.created_at == 1.5
    assert not frame.is_broadcast


def test_zigbee_data_frame_overhead():
    frame = zigbee_data_frame("a", "b", 50)
    assert frame.mpdu_bytes == 50 + ZIGBEE_MAC_OVERHEAD_BYTES
    assert frame.technology is Technology.ZIGBEE


def test_ack_frames_fixed_sizes():
    assert wifi_ack_frame("a", "b", wifi_rate(6.0)).mpdu_bytes == WIFI_ACK_MPDU_BYTES
    ack = zigbee_ack_frame("a", "b", acked_seq=7)
    assert ack.mpdu_bytes == ZIGBEE_ACK_MPDU_BYTES
    assert ack.meta["acked_seq"] == 7


def test_cts_frame_carries_nav_and_meta():
    cts = wifi_cts_frame("a", 0.03, wifi_rate(6.0), bicord=True)
    assert cts.frame_type is FrameType.CTS
    assert cts.is_broadcast
    assert cts.meta["nav_duration"] == 0.03
    assert cts.meta["bicord"] is True


def test_control_frame_total_size_is_the_mpdu():
    control = zigbee_control_frame("a", 120)
    assert control.mpdu_bytes == 120
    assert control.destination == BROADCAST
    assert control.payload_bytes == 120 - ZIGBEE_MAC_OVERHEAD_BYTES


def test_frame_ids_are_unique():
    a = zigbee_data_frame("x", "y", 10)
    b = zigbee_data_frame("x", "y", 10)
    assert a.frame_id != b.frame_id


def test_durations_dispatch_by_technology():
    z = zigbee_data_frame("a", "b", 50)
    w = wifi_data_frame("a", "b", 100, wifi_rate(1.0))
    assert z.duration() == pytest.approx((6 + 61) * 32e-6)
    assert w.duration() == pytest.approx(192e-6 + 8 * 128 / 1e6)


def test_wifi_frame_without_rate_has_no_duration():
    frame = Frame(FrameType.DATA, Technology.WIFI, "a", "b", mpdu_bytes=10)
    with pytest.raises(ValueError):
        frame.duration()


def test_ber_dispatch():
    z = zigbee_data_frame("a", "b", 50)
    w = wifi_data_frame("a", "b", 100, wifi_rate(24.0))
    assert 0.0 <= z.ber(0.0) <= 0.5
    assert 0.0 <= w.ber(0.0) <= 0.5
    # ZigBee's DSSS decodes at SINRs that kill 24 Mbps OFDM.
    assert z.ber(3.0) < w.ber(3.0)


def test_microwave_frames_have_no_models():
    frame = Frame(FrameType.DATA, Technology.MICROWAVE, "oven", "*", mpdu_bytes=1)
    with pytest.raises(ValueError):
        frame.duration()
    with pytest.raises(ValueError):
        frame.ber(0.0)

"""Property-based tests (hypothesis) on the core protocol state machines."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AllocatorConfig, DetectorConfig, ZigbeeSignalDetector
from repro.core.whitespace import AdaptiveWhitespaceAllocator
from repro.phy.csi import CsiSample


# ----------------------------------------------------------------------
# Detector properties
# ----------------------------------------------------------------------
@st.composite
def csi_streams(draw):
    """A monotone-time stream of CSI samples with arbitrary deviations."""
    n = draw(st.integers(min_value=1, max_value=120))
    gaps = draw(
        st.lists(
            st.floats(min_value=1e-4, max_value=8e-3),
            min_size=n, max_size=n,
        )
    )
    deviations = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0),
            min_size=n, max_size=n,
        )
    )
    t = 0.0
    samples = []
    for gap, deviation in zip(gaps, deviations):
        t += gap
        samples.append(CsiSample(time=t, deviation=deviation, zigbee_overlap=False))
    return samples


@settings(max_examples=120, deadline=None)
@given(csi_streams())
def test_detection_implies_n_highs_within_window(samples):
    """Soundness: every detection is justified by >= N high samples within T."""
    config = DetectorConfig(fluctuation_threshold=0.25, required_samples=2,
                            window=5e-3, refractory=4e-3)
    detector = ZigbeeSignalDetector(config)
    highs = []
    for sample in samples:
        is_high = sample.deviation >= config.fluctuation_threshold
        fired = detector.observe(sample)
        if is_high:
            highs.append(sample.time)
        if fired:
            recent = [t for t in highs if t >= sample.time - config.window]
            assert len(recent) >= config.required_samples


@settings(max_examples=120, deadline=None)
@given(csi_streams())
def test_detections_respect_refractory(samples):
    config = DetectorConfig(refractory=4e-3)
    detector = ZigbeeSignalDetector(config)
    detection_times = []
    detector.on_detection.append(detection_times.append)
    for sample in samples:
        detector.observe(sample)
    for a, b in zip(detection_times, detection_times[1:]):
        assert b - a >= config.refractory - 1e-12


@settings(max_examples=60, deadline=None)
@given(csi_streams(), st.integers(min_value=1, max_value=4))
def test_stricter_n_never_detects_more(samples, n):
    loose = ZigbeeSignalDetector(DetectorConfig(required_samples=n))
    strict = ZigbeeSignalDetector(DetectorConfig(required_samples=n + 1))
    for sample in samples:
        loose.observe(sample)
        strict.observe(sample)
    assert strict.detections <= loose.detections


# ----------------------------------------------------------------------
# Allocator properties
# ----------------------------------------------------------------------
@st.composite
def burst_histories(draw):
    """A sequence of bursts, each needing a random number of rounds."""
    n_bursts = draw(st.integers(min_value=1, max_value=25))
    return draw(
        st.lists(
            st.integers(min_value=1, max_value=6),
            min_size=n_bursts, max_size=n_bursts,
        )
    )


def drive(allocator, history):
    t = 0.0
    for rounds in history:
        for _ in range(rounds):
            allocator.grant(t)
            t += allocator.current_whitespace
        allocator.on_burst_end(t + 0.02)
        t += 0.2


@settings(max_examples=150, deadline=None)
@given(burst_histories())
def test_grants_always_within_clamps(history):
    config = AllocatorConfig(initial_whitespace=30e-3, min_whitespace=5e-3,
                             max_whitespace=200e-3)
    allocator = AdaptiveWhitespaceAllocator(config)
    drive(allocator, history)
    for grant in allocator.whitespace_trajectory():
        assert config.min_whitespace <= grant <= config.max_whitespace


@settings(max_examples=150, deadline=None)
@given(burst_histories())
def test_whitespace_monotone_between_timer_resets(history):
    """Without the re-estimation timer, grants never shrink."""
    allocator = AdaptiveWhitespaceAllocator(AllocatorConfig())
    drive(allocator, history)
    grants = allocator.whitespace_trajectory()
    assert all(b >= a - 1e-12 for a, b in zip(grants, grants[1:]))


@settings(max_examples=150, deadline=None)
@given(burst_histories())
def test_growth_bounded_per_burst(history):
    """A single burst can at most double the white space (chaining guard)."""
    allocator = AdaptiveWhitespaceAllocator(AllocatorConfig())
    t = 0.0
    for rounds in history:
        before = allocator.current_whitespace
        for _ in range(rounds):
            allocator.grant(t)
            t += allocator.current_whitespace
        allocator.on_burst_end(t + 0.02)
        after = allocator.current_whitespace
        assert after <= max(2.0 * before, before + 8e-3) + 1e-12
        t += 0.2


@settings(max_examples=100, deadline=None)
@given(burst_histories())
def test_timer_reset_restores_initial_step(history):
    config = AllocatorConfig()
    allocator = AdaptiveWhitespaceAllocator(config)
    drive(allocator, history)
    allocator.on_reestimation_timer(1000.0)
    assert allocator.current_whitespace == config.initial_whitespace
    assert not allocator.converged


@settings(max_examples=100, deadline=None)
@given(burst_histories())
def test_round_counter_resets_between_bursts(history):
    allocator = AdaptiveWhitespaceAllocator(AllocatorConfig())
    drive(allocator, history)
    assert allocator.rounds_in_current_burst == 0
    assert allocator.bursts_observed == len(history)

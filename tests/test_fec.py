"""Tests for packet-level FEC: the code itself and the CSMA+FEC node."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import FecCsmaNode
from repro.core.fec import FecBlock, FecDecoder, FecEncoder
from repro.experiments.topology import build_office
from repro.traffic import Burst, WifiPacketSource, ZigbeeBurstSource


# ----------------------------------------------------------------------
# Coding logic
# ----------------------------------------------------------------------
def test_encoder_basic():
    block = FecEncoder(2).encode(6, burst_id=1)
    assert block.k == 6 and block.m == 2
    assert block.total_packets == 8
    assert block.group_members(0) == [0, 2, 4]
    assert block.group_members(1) == [1, 3, 5]


def test_parity_never_exceeds_data():
    block = FecEncoder(5).encode(2)
    assert block.m == 2


def test_encoder_validation():
    with pytest.raises(ValueError):
        FecEncoder(-1)
    with pytest.raises(ValueError):
        FecEncoder(1).encode(0)


def test_decoder_no_loss_complete():
    decoder = FecDecoder(FecEncoder(1).encode(4))
    for i in range(4):
        decoder.receive_data(i)
    assert decoder.complete
    assert decoder.delivered_count() == 4


def test_decoder_recovers_single_loss_per_group():
    decoder = FecDecoder(FecEncoder(1).encode(4))
    for i in (0, 1, 3):
        decoder.receive_data(i)
    decoder.receive_parity(0)
    assert decoder.missing_after_recovery() == []
    assert decoder.complete


def test_decoder_cannot_recover_double_loss_in_one_group():
    decoder = FecDecoder(FecEncoder(1).encode(4))
    decoder.receive_data(0)
    decoder.receive_data(1)  # lost: 2 and 3, same (single) parity group
    decoder.receive_parity(0)
    assert sorted(decoder.missing_after_recovery()) == [2, 3]


def test_decoder_two_groups_recover_two_losses():
    decoder = FecDecoder(FecEncoder(2).encode(6))
    for i in (0, 1, 2, 3):  # lost: 4 (group 0) and 5 (group 1)
        decoder.receive_data(i)
    decoder.receive_parity(0)
    decoder.receive_parity(1)
    assert decoder.complete


def test_decoder_index_validation():
    decoder = FecDecoder(FecEncoder(1).encode(3))
    with pytest.raises(IndexError):
        decoder.receive_data(3)
    with pytest.raises(IndexError):
        decoder.receive_parity(1)


@settings(max_examples=150, deadline=None)
@given(
    k=st.integers(min_value=1, max_value=12),
    m=st.integers(min_value=0, max_value=4),
    lost=st.sets(st.integers(min_value=0, max_value=11)),
)
def test_recovery_never_exceeds_one_per_group(k, m, lost):
    block = FecEncoder(m).encode(k)
    decoder = FecDecoder(block)
    lost = {i for i in lost if i < k}
    for i in range(k):
        if i not in lost:
            decoder.receive_data(i)
    for j in range(block.m):
        decoder.receive_parity(j)
    missing = decoder.missing_after_recovery()
    if block.m == 0:
        assert set(missing) == lost  # no parity, no recovery
        return
    # Everything missing must come from groups that lost >= 2 packets.
    for index in missing:
        group = block.parity_group(index)
        lost_in_group = [i for i in lost if block.parity_group(i) == group]
        assert len(lost_in_group) >= 2
    # And recovery never invents packets.
    assert set(missing).issubset(lost)


# ----------------------------------------------------------------------
# The CSMA+FEC node
# ----------------------------------------------------------------------
def test_fec_node_clean_channel_everything_arrives():
    office = build_office(seed=1, location="A")
    node = FecCsmaNode(office.zigbee_sender, "ZR", n_parity=1)
    node.offer_burst(Burst(created_at=0.0, n_packets=5, payload_bytes=50, burst_id=1))
    office.ctx.sim.run(until=1.0)
    assert node.packets_delivered == 5
    assert node.packets_recovered == 0
    assert node.bursts_completed == 1
    assert node.parity_sent == 1


def test_fec_recovers_under_mild_interference():
    """Sparse Wi-Fi (20 ms spacing) and a weak ZigBee link: losses are
    occasional (a Wi-Fi frame overlapping the weak data frame kills it),
    and FEC repairs a good share of them."""
    from repro.experiments.topology import Calibration

    office = build_office(
        seed=4, location="A",
        calibration=Calibration(zigbee_data_power_dbm=-25.0),
    )
    cal = office.calibration
    WifiPacketSource(office.ctx, office.wifi_sender.mac, "F",
                     payload_bytes=cal.wifi_payload_bytes, interval=20e-3)
    node = FecCsmaNode(office.zigbee_sender, "ZR", n_parity=2, app_retries=0)
    ZigbeeBurstSource(office.ctx, node.offer_burst, n_packets=8, payload_bytes=50,
                      interval_mean=0.2, poisson=False, max_bursts=20)
    office.ctx.sim.run(until=5.0)
    while node.outstanding_packets and office.ctx.sim.now < 20.0:
        office.ctx.sim.run(until=office.ctx.sim.now + 0.5)
    total = node.packets_delivered + node.packets_recovered + node.packets_lost
    assert total == 160
    assert node.effective_delivered > node.packets_delivered  # FEC earned its keep


def test_fec_useless_under_saturated_wifi():
    """The paper's argument: when the channel is owned by Wi-Fi, recovery
    schemes cannot help — coordination is required."""
    office = build_office(seed=5, location="A")
    cal = office.calibration
    WifiPacketSource(office.ctx, office.wifi_sender.mac, "F",
                     payload_bytes=cal.wifi_payload_bytes,
                     interval=cal.wifi_interval)
    node = FecCsmaNode(office.zigbee_sender, "ZR", n_parity=2, app_retries=1)
    ZigbeeBurstSource(office.ctx, node.offer_burst, n_packets=5, payload_bytes=50,
                      interval_mean=0.25, poisson=False, max_bursts=8)
    office.ctx.sim.run(until=4.0)
    while node.outstanding_packets and office.ctx.sim.now < 20.0:
        office.ctx.sim.run(until=office.ctx.sim.now + 0.5)
    total = node.packets_delivered + node.packets_recovered + node.packets_lost
    assert total == 40
    assert node.effective_delivered / total < 0.3

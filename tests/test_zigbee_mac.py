"""Tests for the 802.15.4 unslotted CSMA/CA MAC."""

import pytest

from repro.mac.frames import zigbee_control_frame, zigbee_data_frame
from repro.mac.zigbee import CHANNEL_ACCESS_FAILURE, NO_ACK, ZigbeeMac
from repro.phy.medium import Technology
from repro.traffic import WifiPacketSource

from .helpers import deterministic_context, wifi_pair, zigbee_pair


def wire(node):
    """Attach result recorders to a node's MAC."""
    results = {"ok": [], "fail": []}
    node.mac.on_send_success = lambda f: results["ok"].append(f.seq)
    node.mac.on_send_failure = lambda f, r: results["fail"].append((f.seq, r))
    return results


def send_data(ctx, node, dest="ZR", payload=50, seq=1):
    frame = zigbee_data_frame(node.name, dest, payload, created_at=ctx.sim.now)
    frame.seq = seq
    node.mac.send(frame)
    return frame


def test_clear_channel_delivery_with_ack():
    ctx = deterministic_context()
    sender, receiver = zigbee_pair(ctx)
    delivered = []
    receiver.mac.on_data_received = lambda f, i: delivered.append(f.seq)
    results = wire(sender)
    send_data(ctx, sender)
    ctx.sim.run(until=0.1)
    assert results["ok"] == [1]
    assert delivered == [1]


def test_burst_of_packets_all_delivered_on_clear_channel():
    ctx = deterministic_context()
    sender, receiver = zigbee_pair(ctx)
    delivered = []
    receiver.mac.on_data_received = lambda f, i: delivered.append(f.seq)
    results = wire(sender)
    for seq in range(1, 11):
        send_data(ctx, sender, seq=seq)
    ctx.sim.run(until=0.5)
    assert results["ok"] == list(range(1, 11))
    assert delivered == list(range(1, 11))
    assert results["fail"] == []


def test_duplicate_delivery_suppressed_at_receiver():
    """If the ACK is lost the sender retransmits, but the app sees one copy."""
    ctx = deterministic_context(seed=3)
    sender, receiver = zigbee_pair(ctx)
    delivered = []
    receiver.mac.on_data_received = lambda f, i: delivered.append(f.seq)
    # Jam only ACK-sized frames by disabling the sender's radio reception is
    # complex; instead deliver the same seq twice at MAC level directly:
    frame = zigbee_data_frame("ZS", "ZR", 50)
    frame.seq = 7
    from repro.devices.base import RxInfo

    info = RxInfo(rx_power_dbm=-50.0, success_probability=1.0, min_sinr_db=30.0)
    receiver.mac.on_frame_received(frame, info)
    receiver.mac.on_frame_received(frame, info)
    ctx.sim.run(until=0.05)
    assert delivered == [7]


def test_channel_access_failure_under_continuous_energy():
    """A persistently busy channel produces CHANNEL_ACCESS_FAILURE."""
    ctx = deterministic_context()
    sender, receiver = zigbee_pair(ctx)
    results = wire(sender)
    # Saturate the band with continuous ZigBee-band energy from an emitter.
    from repro.devices.interferers import Emitter
    from repro.phy.propagation import Position
    from repro.phy.spectrum import zigbee_channel

    emitter = Emitter(ctx, "jam", Position(2.5, 1.2))

    def jam():
        emitter.emit(1.0, 10.0, zigbee_channel(24), Technology.ZIGBEE)

    ctx.sim.schedule(0.0, jam)
    ctx.sim.schedule(0.001, send_data, ctx, sender)
    ctx.sim.run(until=0.5)
    assert results["fail"] == [(1, CHANNEL_ACCESS_FAILURE)]
    assert sender.mac.channel_access_failures == 1


def test_no_ack_failure_when_receiver_is_deaf():
    ctx = deterministic_context()
    sender, receiver = zigbee_pair(ctx)
    receiver.radio.enabled = False
    results = wire(sender)
    send_data(ctx, sender)
    ctx.sim.run(until=0.5)
    assert results["fail"] == [(1, NO_ACK)]
    assert sender.mac.data_sent_attempts == 4  # 1 + MAX_FRAME_RETRIES


def test_zigbee_defers_to_wifi_cca():
    """ZigBee CCA sees Wi-Fi energy: attempts concentrate in Wi-Fi gaps."""
    ctx = deterministic_context()
    wifi_sender, wifi_receiver = wifi_pair(ctx)
    # Continuous back-to-back Wi-Fi: 1500 B frames, no gap.
    WifiPacketSource(ctx, wifi_sender.mac, "F", payload_bytes=1500, interval=1e-4,
                     queue_limit=1000)
    sender, receiver = zigbee_pair(ctx)
    results = wire(sender)
    for seq in range(1, 21):
        ctx.sim.schedule(0.01 * seq, send_data, ctx, sender, "ZR", 50, seq)
    ctx.sim.run(until=0.5)
    # The channel is busy ~75% of the time, so across 20 packets CCA must
    # report busy at least once (P[all clear] ~ 0.25^20).
    assert sender.mac.cca_busy_count > 0
    assert sender.mac.cca_clear_count > 0  # the gaps are also found


def test_forced_transmission_ignores_busy_channel():
    ctx = deterministic_context()
    sender, receiver = zigbee_pair(ctx)
    from repro.devices.interferers import Emitter
    from repro.phy.propagation import Position
    from repro.phy.spectrum import zigbee_channel

    emitter = Emitter(ctx, "jam", Position(2.5, 1.2))
    ctx.sim.schedule(0.0, lambda: emitter.emit(1.0, 10.0, zigbee_channel(24),
                                               Technology.ZIGBEE))
    control = zigbee_control_frame("ZS", 120)
    done = []
    control.meta["on_complete"] = lambda f: done.append(ctx.sim.now)
    ctx.sim.schedule(0.001, sender.mac.send_forced, control)
    ctx.sim.run(until=0.1)
    assert len(done) == 1
    assert done[0] == pytest.approx(0.001 + control.duration(), abs=1e-6)


def test_forced_control_packet_power_override():
    ctx = deterministic_context()
    sender, receiver = zigbee_pair(ctx, tx_power_dbm=0.0)
    control = zigbee_control_frame("ZS", 120)
    sender.mac.send_forced(control, power_dbm=-3.0)
    ctx.sim.run(until=0.05)
    assert control.meta["tx_power_dbm"] == -3.0


def test_control_frame_duration_covers_two_wifi_packets():
    """120 B control packets last ~4.4 ms >> the 1 ms Wi-Fi packet interval."""
    control = zigbee_control_frame("ZS", 120)
    assert control.duration() > 2 * 1e-3


def test_cancel_pending_clears_state():
    ctx = deterministic_context()
    sender, receiver = zigbee_pair(ctx)
    results = wire(sender)
    send_data(ctx, sender, seq=1)
    send_data(ctx, sender, seq=2)
    sender.mac.cancel_pending()
    ctx.sim.run(until=0.2)
    assert results["ok"] == []
    assert not sender.mac.busy


def test_zigbee_mac_requires_zigbee_radio():
    ctx = deterministic_context()
    from repro.devices import WifiDevice
    from repro.phy.propagation import Position

    w = WifiDevice(ctx, "W", Position(0, 0))
    with pytest.raises(ValueError):
        ZigbeeMac(w.radio, ctx.sim)


def test_ack_failure_under_wifi_interference_matches_paper_setup():
    """Paper Sec. VIII-A: ZigBee at -7 dBm loses >95% under 1 ms Wi-Fi traffic."""
    ctx = deterministic_context(seed=11)
    wifi_sender, wifi_receiver = wifi_pair(ctx)
    WifiPacketSource(ctx, wifi_sender.mac, "F", payload_bytes=100, interval=1e-3)
    sender, receiver = zigbee_pair(ctx, tx_power_dbm=-7.0)
    results = wire(sender)
    for seq in range(1, 31):
        ctx.sim.schedule(0.01 * seq, send_data, ctx, sender, "ZR", 50, seq)
    ctx.sim.run(until=1.0)
    failures = len(results["fail"])
    assert failures / 30 > 0.8

"""Shared builders for protocol-level tests.

Most tests want a deterministic office: no shadowing/fading unless the test
is explicitly about randomness, a Wi-Fi pair 3 m apart, and ZigBee nodes at
controlled distances.
"""

from __future__ import annotations

from repro.context import SimContext, build_context
from repro.devices import WifiDevice, ZigbeeDevice
from repro.phy.propagation import FadingModel, PathLossModel, Position


def deterministic_context(seed: int = 1, **kwargs) -> SimContext:
    """A context with zero shadowing/fading so link budgets are exact."""
    kwargs.setdefault("fading", FadingModel(shadowing_sigma_db=0.0, fading_sigma_db=0.0))
    kwargs.setdefault("path_loss", PathLossModel(pl0_db=40.0, exponent=3.0))
    kwargs.setdefault("trace_kinds", set())
    return build_context(seed=seed, **kwargs)


def wifi_pair(ctx: SimContext, distance: float = 3.0, **kwargs):
    """A Wi-Fi sender/receiver pair; the receiver carries the CSI observer."""
    sender = WifiDevice(ctx, "E", Position(0.0, 0.0), **kwargs)
    receiver = WifiDevice(ctx, "F", Position(distance, 0.0), with_csi=True, **kwargs)
    return sender, receiver


def zigbee_pair(ctx: SimContext, sender_pos=None, receiver_pos=None, tx_power_dbm=0.0):
    sender = ZigbeeDevice(
        ctx, "ZS", sender_pos or Position(2.5, 1.0), tx_power_dbm=tx_power_dbm
    )
    receiver = ZigbeeDevice(ctx, "ZR", receiver_pos or Position(4.0, 1.0))
    return sender, receiver

"""802.15.4 MAC timing sanity and multi-coordinator scenarios."""

import pytest

from repro.core import BicordCoordinator, BicordNode
from repro.devices import WifiDevice, ZigbeeDevice
from repro.experiments.topology import location_powermap
from repro.mac.frames import zigbee_ack_frame, zigbee_data_frame
from repro.mac.zigbee import ACK_WAIT_S, CCA_S, TURNAROUND_S, UNIT_BACKOFF_S
from repro.phy.propagation import Position
from repro.traffic import Burst, WifiPacketSource

from .helpers import deterministic_context, zigbee_pair


def test_timing_constants_match_standard():
    """802.15.4 2.4 GHz: 1 symbol = 16 us."""
    assert UNIT_BACKOFF_S == pytest.approx(20 * 16e-6)
    assert CCA_S == pytest.approx(8 * 16e-6)
    assert TURNAROUND_S == pytest.approx(12 * 16e-6)
    assert ACK_WAIT_S == pytest.approx(54 * 16e-6)


def test_saturated_zigbee_link_throughput_matches_timing():
    """Back-to-back 100 B packets: throughput = payload / exchange time.

    One exchange = backoff (avg 3.5 * 320 us) + CCA + turnaround + data
    (3.74 ms) + turnaround + ACK (0.35 ms): ~5.6 ms -> ~140 kbps of payload.
    """
    ctx = deterministic_context(seed=2)
    sender, receiver = zigbee_pair(ctx)
    delivered = []
    receiver.mac.on_data_received = lambda f, i: delivered.append(f.seq)

    seq = [0]

    def send_next(_frame=None):
        seq[0] += 1
        frame = zigbee_data_frame("ZS", "ZR", 100)
        frame.seq = seq[0]
        sender.mac.send(frame)

    sender.mac.on_send_success = send_next
    send_next()
    duration = 2.0
    ctx.sim.run(until=duration)
    throughput = 8 * 100 * len(delivered) / duration
    data_s = zigbee_data_frame("ZS", "ZR", 100).duration()
    ack_s = zigbee_ack_frame("ZR", "ZS", 0).duration()
    expected_exchange = (
        3.5 * UNIT_BACKOFF_S + CCA_S + TURNAROUND_S + data_s + TURNAROUND_S + ack_s
    )
    expected = 8 * 100 / expected_exchange
    assert throughput == pytest.approx(expected, rel=0.1)


def test_ack_arrives_within_mac_ack_wait():
    """The receiver's turnaround + ACK airtime fits macAckWaitDuration plus
    the ACK frame itself (the sender must never time out on a clean link)."""
    ctx = deterministic_context(seed=3)
    sender, receiver = zigbee_pair(ctx)
    outcomes = []
    sender.mac.on_send_success = lambda f: outcomes.append("ok")
    sender.mac.on_send_failure = lambda f, r: outcomes.append(r)
    frame = zigbee_data_frame("ZS", "ZR", 120)  # largest paper payload
    frame.seq = 1
    sender.mac.send(frame)
    ctx.sim.run(until=0.1)
    assert outcomes == ["ok"]


def test_two_wifi_links_two_coordinators():
    """Two independent Wi-Fi links with their own coordinators both react to
    the same ZigBee node; the node still drains its bursts."""
    ctx = deterministic_context(seed=4)
    # Link 1: E1 -> F1; Link 2: E2 -> F2, same channel, same room.
    e1 = WifiDevice(ctx, "E1", Position(0, 0), data_rate_mbps=1.0)
    f1 = WifiDevice(ctx, "F1", Position(3, 0), data_rate_mbps=1.0, with_csi=True)
    e2 = WifiDevice(ctx, "E2", Position(0, 3), data_rate_mbps=1.0)
    f2 = WifiDevice(ctx, "F2", Position(3, 3), data_rate_mbps=1.0, with_csi=True)
    WifiPacketSource(ctx, e1.mac, "F1", payload_bytes=100, interval=2e-3, name="s1")
    WifiPacketSource(ctx, e2.mac, "F2", payload_bytes=100, interval=2e-3, name="s2")
    c1 = BicordCoordinator(f1)
    c2 = BicordCoordinator(f2)
    zs = ZigbeeDevice(ctx, "ZS", Position(2.4, 1.4), tx_power_dbm=-7.0)
    ZigbeeDevice(ctx, "ZR", Position(3.6, 1.8))
    node = BicordNode(zs, "ZR", powermap=location_powermap("A"))
    for i in range(4):
        node.offer_burst(Burst(created_at=0.0, n_packets=5, payload_bytes=50,
                               burst_id=i + 1))
    ctx.sim.run(until=3.0)
    assert node.packets_delivered == 20
    # At least one coordinator granted; CTS from either silences both links.
    assert c1.grants_issued + c2.grants_issued > 0

"""Tests for the CSI-based ZigBee signal detector (Sec. V algorithm)."""

import pytest

from repro.core import DetectorConfig, ZigbeeSignalDetector
from repro.phy.csi import CsiSample


def sample(t, deviation, zigbee=False):
    return CsiSample(time=t, deviation=deviation, zigbee_overlap=zigbee)


def make(threshold=0.25, n=2, window=5e-3, refractory=4e-3):
    return ZigbeeSignalDetector(
        DetectorConfig(
            fluctuation_threshold=threshold,
            required_samples=n,
            window=window,
            refractory=refractory,
        )
    )


def test_single_high_sample_is_not_enough():
    """An isolated strong-noise spike must not fire — the continuity rule."""
    detector = make()
    assert not detector.observe(sample(0.001, 0.9))
    assert detector.detections == 0


def test_two_high_samples_within_window_fire():
    detector = make()
    detector.observe(sample(0.001, 0.5))
    assert detector.observe(sample(0.003, 0.5))
    assert detector.detections == 1


def test_two_high_samples_outside_window_do_not_fire():
    detector = make()
    detector.observe(sample(0.001, 0.5))
    assert not detector.observe(sample(0.008, 0.5))  # 7 ms apart > T=5 ms


def test_low_samples_never_contribute():
    detector = make()
    for i in range(10):
        assert not detector.observe(sample(i * 1e-3, 0.2))
    assert detector.high_samples == 0


def test_threshold_boundary_is_inclusive():
    detector = make(threshold=0.25)
    detector.observe(sample(0.001, 0.25))
    assert detector.high_samples == 1


def test_refractory_suppresses_repeat_detections():
    detector = make(refractory=4e-3)
    times = [0.0, 0.001, 0.002, 0.003, 0.004]
    fired = [detector.observe(sample(t, 0.5)) for t in times]
    assert fired == [False, True, False, False, False]
    # After the refractory period a sustained signal fires again.
    assert detector.observe(sample(0.0055, 0.5))
    assert detector.detections == 2


def test_callbacks_receive_detection_time():
    detector = make()
    seen = []
    detector.on_detection.append(seen.append)
    detector.observe(sample(0.001, 0.5))
    detector.observe(sample(0.002, 0.5))
    assert seen == [0.002]


def test_required_samples_three():
    detector = make(n=3)
    detector.observe(sample(0.001, 0.5))
    assert not detector.observe(sample(0.002, 0.5))
    assert detector.observe(sample(0.003, 0.5))


def test_reset_clears_window():
    detector = make()
    detector.observe(sample(0.001, 0.5))
    detector.reset()
    assert not detector.observe(sample(0.002, 0.5))  # needs two fresh highs


def test_stats_counters():
    detector = make()
    detector.observe(sample(0.001, 0.1))
    detector.observe(sample(0.002, 0.5))
    detector.observe(sample(0.003, 0.5))
    assert detector.samples_seen == 3
    assert detector.high_samples == 2
    assert detector.detections == 1
    assert detector.last_detection == 0.003


def test_invalid_configs_rejected():
    with pytest.raises(ValueError):
        ZigbeeSignalDetector(DetectorConfig(required_samples=0))
    with pytest.raises(ValueError):
        ZigbeeSignalDetector(DetectorConfig(window=0.0))

"""Tests for unit conversions."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.units import (
    MIN_POWER_DBM,
    db_to_linear,
    dbm_to_mw,
    linear_to_db,
    msec,
    mw_to_dbm,
    thermal_noise_dbm,
    usec,
)


def test_dbm_mw_known_values():
    assert dbm_to_mw(0.0) == pytest.approx(1.0)
    assert dbm_to_mw(10.0) == pytest.approx(10.0)
    assert dbm_to_mw(-30.0) == pytest.approx(1e-3)
    assert mw_to_dbm(1.0) == pytest.approx(0.0)
    assert mw_to_dbm(100.0) == pytest.approx(20.0)


def test_mw_to_dbm_floors_at_min_power():
    assert mw_to_dbm(0.0) == MIN_POWER_DBM
    assert mw_to_dbm(-1.0) == MIN_POWER_DBM
    assert linear_to_db(0.0) == MIN_POWER_DBM


@given(st.floats(min_value=-150.0, max_value=60.0))
def test_dbm_mw_roundtrip(dbm):
    assert mw_to_dbm(dbm_to_mw(dbm)) == pytest.approx(dbm, abs=1e-9)


@given(st.floats(min_value=-100.0, max_value=100.0))
def test_db_linear_roundtrip(db):
    assert linear_to_db(db_to_linear(db)) == pytest.approx(db, abs=1e-9)


def test_thermal_noise_reference_points():
    # kTB at 290K: 2 MHz -> ~-111 dBm, 20 MHz -> ~-101 dBm.
    assert thermal_noise_dbm(2e6) == pytest.approx(-110.99, abs=0.05)
    assert thermal_noise_dbm(20e6) == pytest.approx(-100.99, abs=0.05)
    assert thermal_noise_dbm(20e6, noise_figure_db=7.0) == pytest.approx(-93.99, abs=0.05)


def test_thermal_noise_rejects_nonpositive_bandwidth():
    with pytest.raises(ValueError):
        thermal_noise_dbm(0.0)


def test_time_helpers():
    assert usec(9.0) == pytest.approx(9e-6)
    assert msec(5.0) == pytest.approx(5e-3)


def test_power_sum_in_mw_domain():
    """Two equal powers add to +3 dB — the invariant interference sums rely on."""
    total = mw_to_dbm(dbm_to_mw(-60.0) + dbm_to_mw(-60.0))
    assert total == pytest.approx(-57.0, abs=0.02)

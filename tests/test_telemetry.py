"""Tests for the telemetry subsystem: instruments, scoping, export, sweeps."""

import json
import logging

import pytest

from repro import telemetry
from repro.cli import main
from repro.context import build_context
from repro.experiments import SweepEngine, SweepSpec, run_experiment
from repro.log import configure as configure_logging, get_logger
from repro.serialization import to_dict
from repro.telemetry import (
    MetricsRegistry,
    NullRegistry,
    build_manifest,
    collect,
    export,
    merge_snapshots,
)


# ----------------------------------------------------------------------
# Instruments
# ----------------------------------------------------------------------
def test_counter_gauge_basics():
    registry = MetricsRegistry()
    registry.counter("c").inc()
    registry.counter("c").inc(4)
    registry.gauge("g").set(2.0)
    registry.gauge("g").set_max(1.0)  # lower: ignored
    registry.gauge("g").set_max(7.0)
    snap = registry.snapshot()
    assert snap["counters"]["c"] == 5
    assert snap["gauges"]["g"] == 7.0


def test_histogram_buckets_and_overflow():
    registry = MetricsRegistry()
    hist = registry.histogram("h", (1.0, 2.0, 5.0))
    for value in (0.5, 1.5, 1.7, 4.0, 99.0):
        hist.observe(value)
    snap = registry.snapshot()["histograms"]["h"]
    assert snap["bounds"] == [1.0, 2.0, 5.0]
    assert snap["counts"] == [1, 2, 1, 1]  # last bucket = overflow
    assert snap["count"] == 5
    assert snap["sum"] == pytest.approx(106.7)


def test_histogram_rejects_unsorted_bounds_and_redefinition():
    registry = MetricsRegistry()
    with pytest.raises(ValueError):
        registry.histogram("bad", (2.0, 1.0))
    registry.histogram("h", (1.0, 2.0))
    with pytest.raises(ValueError):
        registry.histogram("h", (1.0, 3.0))


def test_span_timer_aggregates_wall_time():
    registry = MetricsRegistry()
    with registry.span("work"):
        pass
    with registry.span("work"):
        pass
    spans = registry.snapshot(spans=True)["spans"]
    assert spans["work"]["calls"] == 2
    assert spans["work"]["total_s"] >= 0.0


def test_snapshot_without_spans_is_deterministic_section_only():
    registry = MetricsRegistry()
    registry.counter("c").inc()
    registry.observe_span("work", 1.0)
    snap = registry.snapshot(spans=False)
    assert "spans" not in snap
    assert snap["counters"] == {"c": 1}


def test_merge_semantics():
    a = MetricsRegistry()
    a.counter("c").inc(2)
    a.gauge("g").set(3.0)
    a.histogram("h", (1.0,)).observe(0.5)
    a.observe_span("s", 1.0)
    b = MetricsRegistry()
    b.counter("c").inc(3)
    b.gauge("g").set(1.0)
    b.histogram("h", (1.0,)).observe(2.0)
    b.observe_span("s", 0.5)
    merged = merge_snapshots([a.snapshot(), None, b.snapshot()])
    assert merged["counters"]["c"] == 5  # counters add
    assert merged["gauges"]["g"] == 3.0  # gauges keep the max
    assert merged["histograms"]["h"]["counts"] == [1, 1]
    assert merged["spans"]["s"]["total_s"] == pytest.approx(1.5)
    assert merged["spans"]["s"]["calls"] == 2


def test_merge_rejects_mismatched_histogram_bounds():
    a = MetricsRegistry()
    a.histogram("h", (1.0,)).observe(0.5)
    b = MetricsRegistry()
    b.histogram("h", (2.0,)).observe(0.5)
    with pytest.raises(ValueError):
        merge_snapshots([a.snapshot(), b.snapshot()])


def test_null_registry_is_inert_and_falsy():
    registry = NullRegistry()
    assert not registry
    assert not registry.enabled
    registry.counter("c").inc()
    registry.gauge("g").set_max(5.0)
    registry.histogram("h", (1.0,)).observe(2.0)
    with registry.span("s"):
        pass
    snap = registry.snapshot()
    assert snap["counters"] == {} and snap["gauges"] == {}
    assert snap["histograms"] == {} and snap["spans"] == {}


# ----------------------------------------------------------------------
# Collection scoping
# ----------------------------------------------------------------------
def test_collect_scopes_active_registry():
    assert telemetry.active() is telemetry.NULL
    with collect() as outer:
        assert telemetry.active() is outer
        inner_registry = MetricsRegistry()
        with collect(inner_registry):
            assert telemetry.active() is inner_registry
        assert telemetry.active() is outer
    assert telemetry.active() is telemetry.NULL


def test_build_context_captures_active_registry():
    registry = MetricsRegistry()
    with collect(registry):
        ctx = build_context(seed=0)
    assert ctx.telemetry is registry
    outside = build_context(seed=0)
    assert outside.telemetry is telemetry.NULL


# ----------------------------------------------------------------------
# Experiment integration
# ----------------------------------------------------------------------
def test_coexistence_populates_registry():
    registry = MetricsRegistry()
    run_experiment("coexistence", n_bursts=5, seed=1, telemetry=registry)
    snap = registry.snapshot(spans=True)
    assert snap["counters"]["sim.events_executed"] > 0
    assert snap["counters"]["bicord.grants"] > 0
    assert snap["counters"]["detector.samples_seen"] > 0
    assert snap["gauges"]["sim.queue_hwm"] > 0
    assert snap["histograms"]["bicord.grant_ms"]["count"] > 0
    assert "coexist.sim" in snap["spans"]


def test_telemetry_off_results_identical():
    plain = run_experiment("coexistence", n_bursts=5, seed=2)
    collected = run_experiment(
        "coexistence", n_bursts=5, seed=2, telemetry=MetricsRegistry()
    )
    assert to_dict(plain) == to_dict(collected)


def test_telemetry_metrics_reproducible_across_runs():
    def snapshot():
        registry = MetricsRegistry()
        run_experiment("coexistence", n_bursts=5, seed=3, telemetry=registry)
        return registry.snapshot(spans=False)

    assert snapshot() == snapshot()


def test_signaling_reports_false_wakeups():
    registry = MetricsRegistry()
    run_experiment("signaling", n_salvos=5, seed=0, telemetry=registry)
    counters = registry.snapshot()["counters"]
    assert counters["detector.samples_seen"] > 0
    assert "detector.false_wakeups" in counters
    assert "detector.true_detections" in counters


def test_fault_counters_reach_registry():
    from repro.faults import FaultPlan

    registry = MetricsRegistry()
    run_experiment(
        "coexistence", n_bursts=8, seed=4,
        faults=FaultPlan(detection_fn_rate=0.5),
        telemetry=registry,
    )
    counters = registry.snapshot()["counters"]
    assert any(name.startswith("faults.") for name in counters)


# ----------------------------------------------------------------------
# Manifest + export
# ----------------------------------------------------------------------
def test_manifest_fields_and_fault_summary():
    from repro.faults import FaultPlan

    manifest = build_manifest(
        "coexistence",
        config={"scheme": "bicord"},
        seeds=[0, 1],
        faults=FaultPlan(detection_fn_rate=0.25),
        wall_time_s=1.5,
        metrics={"prr": 0.99},
    )
    data = manifest.to_dict()
    assert data["experiment"] == "coexistence"
    assert data["seeds"] == [0, 1]
    assert len(data["config_digest"]) == 64
    assert data["faults"]["detection_fn_rate"] == 0.25
    assert data["code_version"]
    assert data["metrics"] == {"prr": 0.99}


def test_jsonl_export_manifest_line_first(tmp_path):
    registry = MetricsRegistry()
    registry.counter("c").inc(3)
    registry.observe_span("s", 0.5)
    path = tmp_path / "out.jsonl"
    lines = export(path, registry=registry, manifest=build_manifest("x"))
    rows = [json.loads(line) for line in path.read_text().splitlines()]
    assert lines == 2
    assert rows[0]["type"] == "manifest"
    assert {"type": "counter", "name": "c", "value": 3} in rows


def test_csv_export(tmp_path):
    registry = MetricsRegistry()
    registry.histogram("h", (1.0,)).observe(0.5)
    path = tmp_path / "out.csv"
    export(path, registry=registry, manifest=build_manifest("x"))
    text = path.read_text()
    assert text.startswith("kind,name,field,value")
    assert "manifest,experiment,,x" in text
    assert "histogram,h,count,1" in text


# ----------------------------------------------------------------------
# Sweep integration
# ----------------------------------------------------------------------
def _sweep_spec():
    return SweepSpec(
        experiment="coexistence",
        grid={"scheme": ("bicord",)},
        base={"n_bursts": 4},
        seeds=(0, 1),
    )


def test_sweep_records_carry_deterministic_metrics(tmp_path):
    engine = SweepEngine(jobs=1, cache_dir=tmp_path, telemetry=True, quiet=True)
    run = engine.run(_sweep_spec())
    for record in run.records:
        assert record.metrics is not None
        assert "spans" not in record.metrics  # wall clock never cached
        assert record.metrics["counters"]["sim.events_executed"] > 0
    assert run.telemetry["counters"]["sweep.trials"] == 2
    assert run.telemetry["counters"]["sweep.executed"] == 2
    by_combo = run.telemetry_by_combo()
    assert len(by_combo) == 1


def test_cached_sweep_rerun_reproduces_metric_values(tmp_path):
    engine = SweepEngine(jobs=1, cache_dir=tmp_path, telemetry=True, quiet=True)
    first = engine.run(_sweep_spec())
    second = engine.run(_sweep_spec())
    assert second.cached_hits == 2
    firsts = {r.key: r.metrics for r in first.records}
    for record in second.records:
        assert record.metrics == firsts[record.key]


def test_pre_telemetry_cache_entry_is_a_miss_when_telemetry_on(tmp_path):
    plain = SweepEngine(jobs=1, cache_dir=tmp_path, telemetry=False, quiet=True)
    plain.run(_sweep_spec())  # caches entries without metrics
    collecting = SweepEngine(jobs=1, cache_dir=tmp_path, telemetry=True, quiet=True)
    run = collecting.run(_sweep_spec())
    assert run.cached_hits == 0  # metric-less entries re-execute
    assert all(record.metrics is not None for record in run.records)


def test_sweep_without_telemetry_has_no_snapshots(tmp_path):
    engine = SweepEngine(jobs=1, cache_dir=tmp_path, quiet=True)
    run = engine.run(_sweep_spec())
    assert run.telemetry is None
    assert all(record.metrics is None for record in run.records)


@pytest.fixture
def sweep_log_records():
    """Capture repro.sweep records regardless of propagate/configure state."""
    records = []

    class _Capture(logging.Handler):
        def emit(self, record):
            records.append(record)

    logger = logging.getLogger("repro.sweep")
    handler = _Capture(level=logging.DEBUG)
    old_level = logger.level
    logger.addHandler(handler)
    logger.setLevel(logging.DEBUG)
    try:
        yield records
    finally:
        logger.removeHandler(handler)
        logger.setLevel(old_level)


def test_sweep_progress_logs(tmp_path, sweep_log_records):
    engine = SweepEngine(
        jobs=1, cache_dir=tmp_path, quiet=False, progress_interval=0.0
    )
    engine.run(_sweep_spec())
    messages = [r.getMessage() for r in sweep_log_records]
    assert any("2/2 trials" in m for m in messages)


def test_sweep_quiet_suppresses_progress(tmp_path, sweep_log_records):
    engine = SweepEngine(
        jobs=1, cache_dir=tmp_path, quiet=True, progress_interval=0.0
    )
    engine.run(_sweep_spec())
    assert not [r for r in sweep_log_records if "trials" in r.getMessage()]


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_coexist_metrics_out(tmp_path, capsys):
    path = tmp_path / "metrics.jsonl"
    code = main([
        "coexist", "--bursts", "4", "--seed", "5", "--metrics-out", str(path),
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "telemetry" in out
    rows = [json.loads(line) for line in path.read_text().splitlines()]
    assert rows[0]["type"] == "manifest"
    assert rows[0]["experiment"] == "coexistence"
    assert rows[0]["seeds"] == [5]
    kinds = {row["type"] for row in rows[1:]}
    assert "counter" in kinds and "gauge" in kinds and "span" in kinds


def test_cli_sweep_metrics_out(tmp_path, capsys):
    path = tmp_path / "metrics.jsonl"
    code = main([
        "sweep", "--experiment", "coexistence", "--param", "n_bursts=4",
        "--seeds", "2", "--cache-dir", str(tmp_path / "cache"), "--quiet",
        "--metrics-out", str(path),
    ])
    assert code == 0
    capsys.readouterr()
    rows = [json.loads(line) for line in path.read_text().splitlines()]
    assert rows[0]["type"] == "manifest"
    counters = {r["name"]: r["value"] for r in rows if r["type"] == "counter"}
    assert counters["sweep.trials"] == 2


def test_cli_without_metrics_out_writes_nothing(tmp_path, capsys):
    code = main(["coexist", "--bursts", "4", "--seed", "5"])
    out = capsys.readouterr().out
    assert code == 0
    assert "telemetry" not in out
    assert list(tmp_path.iterdir()) == []


# ----------------------------------------------------------------------
# Logging helper
# ----------------------------------------------------------------------
def test_log_configure_levels():
    import io

    stream = io.StringIO()
    configure_logging(verbosity=1, stream=stream, force=True)
    logger = get_logger("probe")
    logger.debug("debug-visible")
    assert "debug-visible" in stream.getvalue()
    stream = io.StringIO()
    configure_logging(quiet=True, stream=stream, force=True)
    logger.info("info-hidden")
    logger.warning("warn-visible")
    text = stream.getvalue()
    assert "info-hidden" not in text and "warn-visible" in text
    configure_logging(force=True)  # restore defaults for other tests

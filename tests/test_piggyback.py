"""Tests for the piggyback extension (paper Sec. VII-B future work).

The extension lets a unicast control packet double as the head-of-line data
packet.  On a clear channel the mechanics must work end to end; under
saturated Wi-Fi the piggybacked copy is usually corrupted (it overlaps the
interference *by design*), so delivery must still happen through the normal
white-space path — the extension may save energy/delay but never packets.
"""

import pytest

from repro.core import BicordConfig, BicordCoordinator, BicordNode
from repro.experiments.topology import build_office, location_powermap
from repro.mac.frames import FrameType, zigbee_control_frame
from repro.traffic import Burst, WifiPacketSource, ZigbeeBurstSource

from .helpers import deterministic_context, zigbee_pair


def test_send_immediate_acked_control_roundtrip():
    """MAC mechanics: unicast control via send_immediate gets ACKed."""
    ctx = deterministic_context()
    sender, receiver = zigbee_pair(ctx)
    control = zigbee_control_frame("ZS", 120)
    control.destination = "ZR"
    control.seq = 5
    outcomes = []
    sender.mac.on_send_success = lambda f: outcomes.append(("ok", f.seq))
    sender.mac.on_send_failure = lambda f, r: outcomes.append((r, f.seq))
    seen = []
    receiver.mac.on_control_received = lambda f, i: seen.append(f.seq)
    sender.mac.send_immediate(control)
    ctx.sim.run(until=0.1)
    assert outcomes == [("ok", 5)]
    assert seen == [5]


def test_send_immediate_rejects_concurrent_transaction():
    ctx = deterministic_context()
    sender, receiver = zigbee_pair(ctx)
    from repro.mac.frames import zigbee_data_frame

    data = zigbee_data_frame("ZS", "ZR", 50)
    data.seq = 1
    sender.mac.send(data)
    control = zigbee_control_frame("ZS", 120)
    control.destination = "ZR"
    with pytest.raises(RuntimeError):
        sender.mac.send_immediate(control)


def test_piggyback_control_deduplicated_at_receiver():
    ctx = deterministic_context()
    sender, receiver = zigbee_pair(ctx)
    seen = []
    receiver.mac.on_control_received = lambda f, i: seen.append(f.seq)
    from repro.devices.base import RxInfo

    control = zigbee_control_frame("ZS", 120)
    control.destination = "ZR"
    control.seq = 9
    info = RxInfo(rx_power_dbm=-50.0, success_probability=1.0, min_sinr_db=30.0)
    receiver.mac.on_frame_received(control, info)
    receiver.mac.on_frame_received(control, info)  # retransmitted copy
    assert seen == [9]


def test_piggyback_delivers_on_clear_channel():
    """Without Wi-Fi the node never signals, so piggyback is unused but the
    burst still drains normally (the flag must not break the plain path)."""
    office = build_office(seed=1, location="A")
    config = BicordConfig()
    config.signaling.piggyback_data = True
    node = BicordNode(office.zigbee_sender, "ZR", config=config,
                      powermap=location_powermap("A"))
    node.offer_burst(Burst(created_at=0.0, n_packets=4, payload_bytes=50, burst_id=1))
    office.sim.run(until=0.5)
    assert node.packets_delivered == 4
    assert node.control_packets_sent == 0


def test_piggyback_never_loses_packets_under_wifi():
    office = build_office(seed=2, location="A")
    cal = office.calibration
    WifiPacketSource(office.ctx, office.wifi_sender.mac, "F",
                     payload_bytes=cal.wifi_payload_bytes, interval=cal.wifi_interval)
    config = BicordConfig()
    config.signaling.piggyback_data = True
    BicordCoordinator(office.wifi_receiver, config=config)
    node = BicordNode(office.zigbee_sender, "ZR", config=config,
                      powermap=location_powermap("A"))
    ZigbeeBurstSource(office.ctx, node.offer_burst, n_packets=5, payload_bytes=50,
                      interval_mean=0.2, poisson=False, max_bursts=6)
    office.sim.run(until=1.6)
    assert node.packets_delivered == 30
    assert node.control_packets_sent > 0


def test_oversized_payload_disables_piggyback():
    """Payloads that do not fit 120 B fall back to broadcast control packets."""
    office = build_office(seed=3, location="A")
    cal = office.calibration
    WifiPacketSource(office.ctx, office.wifi_sender.mac, "F",
                     payload_bytes=cal.wifi_payload_bytes, interval=cal.wifi_interval)
    config = BicordConfig()
    config.signaling.piggyback_data = True
    BicordCoordinator(office.wifi_receiver, config=config)
    node = BicordNode(office.zigbee_sender, "ZR", config=config,
                      powermap=location_powermap("A"))
    # 115 B payload -> 126 B MPDU > 120 B control size: cannot piggyback.
    ZigbeeBurstSource(office.ctx, node.offer_burst, n_packets=3, payload_bytes=115,
                      interval_mean=0.25, poisson=False, max_bursts=4)
    office.sim.run(until=1.5)
    assert node.piggyback_deliveries == 0
    assert node.packets_delivered == 12

"""Tests for the radio receive path: locking, SINR segmentation, collisions."""

import pytest

from repro.devices.base import Radio
from repro.mac.frames import zigbee_data_frame
from repro.phy.medium import Technology
from repro.phy.spectrum import wifi_channel, zigbee_channel
from repro.phy.propagation import Position

from .helpers import deterministic_context


class RecordingMac:
    """Minimal MAC stub that records PHY callbacks."""

    def __init__(self):
        self.received = []
        self.lost = []
        self.medium_events = 0

    def on_frame_received(self, frame, info):
        self.received.append((frame, info))

    def on_frame_lost(self, frame, info):
        self.lost.append((frame, info))

    def on_medium_event(self):
        self.medium_events += 1

    def on_transmit_complete(self, frame):
        pass


def zigbee_radio(ctx, name, pos, **kwargs):
    radio = Radio(
        name=name,
        position=pos,
        band=zigbee_channel(24),
        technology=Technology.ZIGBEE,
        sim=ctx.sim,
        streams=ctx.streams,
        sensitivity_dbm=-95.0,
        noise_figure_db=5.0,
        **kwargs,
    )
    ctx.medium.attach(radio)
    mac = RecordingMac()
    radio.mac = mac
    return radio, mac


def send(ctx, radio, payload=50, power=0.0, seq=0):
    frame = zigbee_data_frame(radio.name, "ZR", payload)
    frame.seq = seq
    return radio.transmit_frame(frame, power)


def test_clean_frame_is_received():
    ctx = deterministic_context()
    tx, _ = zigbee_radio(ctx, "ZS", Position(0, 0))
    rx, mac = zigbee_radio(ctx, "ZR", Position(3, 0))
    send(ctx, tx)
    ctx.sim.run()
    assert len(mac.received) == 1
    frame, info = mac.received[0]
    assert info.rx_power_dbm == pytest.approx(-54.3, abs=0.1)
    assert info.success_probability == pytest.approx(1.0, abs=1e-6)
    assert rx.frames_received == 1


def test_below_sensitivity_frame_is_ignored():
    ctx = deterministic_context()
    tx, _ = zigbee_radio(ctx, "ZS", Position(0, 0))
    rx, mac = zigbee_radio(ctx, "ZR", Position(80, 0))  # ~ -97 dBm < -95
    send(ctx, tx)
    ctx.sim.run()
    assert mac.received == [] and mac.lost == []
    assert rx.frames_received == 0


def test_strong_cochannel_collision_destroys_frame():
    ctx = deterministic_context()
    tx, _ = zigbee_radio(ctx, "ZS", Position(0, 0))
    jammer, _ = zigbee_radio(ctx, "J", Position(3.2, 0.5))
    rx, mac = zigbee_radio(ctx, "ZR", Position(3, 0))
    send(ctx, tx)
    # Jammer starts shortly after, overlapping most of the frame at high power.
    ctx.sim.schedule(0.2e-3, send, ctx, jammer, 50, 0.0, 1)
    ctx.sim.run()
    assert len(mac.lost) == 1
    frame, info = mac.lost[0]
    assert frame.source == "ZS"  # receiver stayed locked on the first frame
    assert info.success_probability < 0.01
    assert info.min_sinr_db < 3.0


def test_receiver_does_not_relock_midframe():
    """Once locked, a second frame is interference, not a new reception."""
    ctx = deterministic_context()
    tx1, _ = zigbee_radio(ctx, "ZS", Position(0, 0))
    tx2, _ = zigbee_radio(ctx, "Z2", Position(0.5, 0))
    rx, mac = zigbee_radio(ctx, "ZR", Position(3, 0))
    send(ctx, tx1, seq=1)
    ctx.sim.schedule(0.1e-3, send, ctx, tx2, 50, 0.0, 2)
    ctx.sim.run()
    outcomes = mac.received + mac.lost
    assert len(outcomes) == 1
    assert outcomes[0][0].seq == 1


def test_weak_interferer_far_away_does_not_kill_frame():
    ctx = deterministic_context()
    tx, _ = zigbee_radio(ctx, "ZS", Position(0, 0))
    far_jammer, _ = zigbee_radio(ctx, "J", Position(60, 0))
    rx, mac = zigbee_radio(ctx, "ZR", Position(2, 0))
    send(ctx, tx)
    ctx.sim.schedule(0.1e-3, send, ctx, far_jammer, 50, 0.0, 1)
    ctx.sim.run()
    assert len(mac.received) == 1


def test_wifi_overlap_recorded_in_rxinfo():
    """Cross-technology overlaps surface in RxInfo (feeds the CSI model)."""
    ctx = deterministic_context()
    tx, _ = zigbee_radio(ctx, "ZS", Position(0, 0))
    rx, mac = zigbee_radio(ctx, "ZR", Position(1.5, 0))
    wifi = Radio(
        name="W",
        position=Position(12, 0),
        band=wifi_channel(11),
        technology=Technology.WIFI,
        sim=ctx.sim,
        streams=ctx.streams,
    )
    ctx.medium.attach(wifi)
    send(ctx, tx)
    ctx.sim.schedule(0.3e-3, lambda: ctx.medium.transmit(
        wifi, 0.5e-3, 20.0, wifi.band, Technology.WIFI))
    ctx.sim.run()
    outcomes = mac.received + mac.lost
    assert len(outcomes) == 1
    info = outcomes[0][1]
    techs = [tech for tech, *_ in info.overlaps]
    assert Technology.WIFI in techs
    _, name, rx_dbm, seconds = next(o for o in info.overlaps if o[0] is Technology.WIFI)
    assert name == "W"
    assert seconds == pytest.approx(0.5e-3, abs=1e-6)


def test_half_duplex_transmit_aborts_reception():
    ctx = deterministic_context()
    tx, _ = zigbee_radio(ctx, "ZS", Position(0, 0))
    rx, mac = zigbee_radio(ctx, "ZR", Position(3, 0))
    send(ctx, tx, seq=1)
    ctx.sim.schedule(0.2e-3, send, ctx, rx, 50, 0.0, 2)
    ctx.sim.run()
    assert mac.received == []  # reception aborted by own transmission
    assert rx.frames_lost == 1
    assert rx.frames_sent == 1


def test_radio_cannot_double_transmit():
    ctx = deterministic_context()
    tx, _ = zigbee_radio(ctx, "ZS", Position(0, 0))
    zigbee_radio(ctx, "ZR", Position(3, 0))
    send(ctx, tx)
    with pytest.raises(RuntimeError):
        send(ctx, tx, seq=2)


def test_disabled_radio_does_not_lock():
    ctx = deterministic_context()
    tx, _ = zigbee_radio(ctx, "ZS", Position(0, 0))
    rx, mac = zigbee_radio(ctx, "ZR", Position(3, 0))
    rx.enabled = False
    send(ctx, tx)
    ctx.sim.run()
    assert mac.received == [] and mac.lost == []


def test_interference_segments_partial_overlap():
    """A jammer overlapping only the tail yields p between 0 and 1 outcomes.

    With a borderline-power jammer only over the last 20% of the frame the
    success probability must be strictly between the clean and fully-jammed
    cases.
    """
    ctx = deterministic_context()
    tx, _ = zigbee_radio(ctx, "ZS", Position(0, 0))
    jammer, _ = zigbee_radio(ctx, "J", Position(9.0, 0.5))
    rx, mac = zigbee_radio(ctx, "ZR", Position(3, 0))
    frame_duration = zigbee_data_frame("ZS", "ZR", 50).duration()
    send(ctx, tx)
    ctx.sim.schedule(frame_duration * 0.8, send, ctx, jammer, 50, 0.0, 1)
    ctx.sim.run()
    outcomes = mac.received + mac.lost
    info = outcomes[0][1]
    assert 0.0 < info.success_probability <= 1.0
    # SINR of ZS at ZR vs jammer at ~6m: positive but finite SINR.
    assert info.min_sinr_db < 30.0

"""Tests for config serialization (dataclass <-> dict/JSON round-trips)."""

import dataclasses

import pytest

from repro.core import BicordConfig
from repro.experiments import Calibration, CoexistenceConfig
from repro.serialization import dumps, from_dict, loads, to_dict


def test_bicord_config_roundtrip():
    config = BicordConfig()
    config.detector.required_samples = 3
    config.allocator.initial_whitespace = 40e-3
    config.signaling.piggyback_data = True
    data = to_dict(config)
    restored = from_dict(BicordConfig, data)
    assert restored == config
    assert restored.detector.required_samples == 3
    assert restored.signaling.piggyback_data is True


def test_coexistence_config_roundtrip_json():
    config = CoexistenceConfig(scheme="ecc", n_bursts=12, ecc_whitespace=30e-3)
    text = dumps(config)
    restored = loads(CoexistenceConfig, text)
    assert restored == config


def test_calibration_roundtrip():
    calibration = Calibration(path_loss_exponent=3.3, csi_noise_spike_prob=0.05)
    assert from_dict(Calibration, to_dict(calibration)) == calibration


def test_missing_keys_use_defaults():
    restored = from_dict(Calibration, {"pl0_db": 42.0})
    assert restored.pl0_db == 42.0
    assert restored.path_loss_exponent == Calibration().path_loss_exponent


def test_unknown_keys_rejected_loudly():
    with pytest.raises(ValueError, match="unknown key"):
        from_dict(Calibration, {"pl0_db": 42.0, "pl0_dbb": 1.0})


def test_nested_unknown_keys_rejected():
    data = to_dict(BicordConfig())
    data["detector"]["windoww"] = 1.0
    with pytest.raises(ValueError, match="windoww"):
        from_dict(BicordConfig, data)


def test_non_dataclass_rejected():
    with pytest.raises(TypeError):
        from_dict(dict, {})
    with pytest.raises(TypeError):
        to_dict(object())


def test_from_dict_requires_mapping():
    with pytest.raises(TypeError):
        from_dict(Calibration, [1, 2, 3])


def test_json_output_is_stable_and_readable():
    text = dumps(Calibration())
    assert '"pl0_db"' in text
    # sorted keys -> deterministic manifests
    assert text == dumps(Calibration())


def test_dict_valued_fields_coerce_typed_values():
    """Dict[str, Dataclass] fields round-trip as dataclasses, not raw dicts."""
    from repro.experiments.metrics import UtilizationSnapshot
    from repro.experiments.scenario import LinkResult, ScenarioResult

    result = ScenarioResult(
        scenario="t", seed=0, scheme="bicord", duration=1.0,
        spec_fingerprint="f",
        utilization=UtilizationSnapshot(
            duration=1.0, wifi_airtime=0.2, zigbee_airtime=0.1),
        links={"z": LinkResult(name="z", offered=4, delivered=3,
                               delays=[0.01, 0.02])},
    )
    restored = from_dict(ScenarioResult, to_dict(result))
    assert isinstance(restored.links["z"], LinkResult)
    assert restored.links["z"].delivery_ratio == pytest.approx(0.75)
    assert restored == result


def test_validation_still_runs_on_deserialization():
    """__post_init__ checks fire when configs are rebuilt from dicts."""
    data = to_dict(CoexistenceConfig())
    data["scheme"] = "smoke-signals"
    with pytest.raises(ValueError):
        from_dict(CoexistenceConfig, data)

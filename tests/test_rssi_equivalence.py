"""Segment-based RSSI capture vs the legacy per-sample reference path.

The segment path (default) must be **bitwise identical** to the per-sample
path it replaced: same sample values, same dtype, same start times, and no
side effects on the rest of the simulation.  These tests run the same busy
scenario under both modes and compare traces element-for-element, across
seeds, capture rates, and an active fault plan.

Also here: the vectorized CTI feature extraction against a straight-line
reference implementation (property-based), and the propagation gain cache
under mobility.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.context import build_context
from repro.core.cti import RssiFeatures, _runs, extract_features
from repro.devices import WifiDevice, ZigbeeDevice
from repro.faults import FaultPlan
from repro.phy.propagation import FadingModel, PathLossModel, Position
from repro.phy.rssi import (
    CAPTURE_MODES,
    DEFAULT_CAPTURE_MODE,
    RssiSampler,
    RssiTrace,
    set_default_capture_mode,
)
from repro.traffic import WifiPacketSource

from .helpers import deterministic_context


# ----------------------------------------------------------------------
# Fast path == legacy path, bit for bit
# ----------------------------------------------------------------------
def _capture_campaign(mode, seed, rate_hz, faults=None, n_captures=5, duration=4e-3):
    """A busy office + a chained capture campaign; returns traces and a
    fingerprint of the *rest* of the simulation (the capture path must not
    perturb it)."""
    ctx = build_context(
        seed=seed,
        path_loss=PathLossModel(),
        fading=FadingModel(),
        trace_kinds=set(),
        faults=faults,
    )
    sender = WifiDevice(ctx, "W1", Position(2.0, 0.0), data_rate_mbps=1.0)
    WifiDevice(ctx, "W2", Position(5.0, 0.0), data_rate_mbps=1.0)
    WifiPacketSource(ctx, sender.mac, "W2", payload_bytes=100, interval=1.3e-3)
    ZigbeeDevice(ctx, "ZB", Position(1.0, 2.0))
    collector = ZigbeeDevice(ctx, "C", Position(0.0, 0.0))
    sampler = RssiSampler(collector.radio, ctx.sim, ctx.streams, mode=mode)
    traces = []

    def chain(i=0):
        if i < n_captures:
            sampler.capture(
                duration,
                rate_hz,
                lambda trace, i=i: (traces.append(trace), chain(i + 1)),
            )

    chain()
    ctx.sim.run(until=0.1)
    fingerprint = (
        sender.radio.frames_sent,
        sender.radio.frames_received,
        sender.radio.frames_lost,
        sender.mac.data_delivered,
        collector.radio.frames_received,
    )
    return traces, fingerprint


@pytest.mark.parametrize("seed", [0, 3, 11])
@pytest.mark.parametrize("rate_hz", [40e3, 10e3])
def test_segment_capture_bitwise_equals_legacy(seed, rate_hz):
    fast, fp_fast = _capture_campaign("segment", seed, rate_hz)
    legacy, fp_legacy = _capture_campaign("per_sample", seed, rate_hz)
    assert len(fast) == len(legacy) == 5
    for a, b in zip(fast, legacy):
        assert a.start_time == b.start_time
        assert a.rate_hz == b.rate_hz
        assert a.samples_dbm.dtype == b.samples_dbm.dtype
        assert np.array_equal(a.samples_dbm, b.samples_dbm)
    # The capture implementation must be invisible to everything else.
    assert fp_fast == fp_legacy


def test_equivalence_holds_under_fault_plan():
    plan = FaultPlan(control_drop_rate=0.3, csi_spurious_rate=0.05)
    fast, _ = _capture_campaign("segment", 7, 40e3, faults=plan)
    legacy, _ = _capture_campaign("per_sample", 7, 40e3, faults=plan)
    for a, b in zip(fast, legacy):
        assert np.array_equal(a.samples_dbm, b.samples_dbm)


def test_equivalence_without_quantization():
    """Raw (float) traces must match exactly too, not just after rounding."""

    def run(mode):
        ctx = deterministic_context(seed=5, fading=FadingModel())
        sender = WifiDevice(ctx, "W1", Position(2.0, 0.0), data_rate_mbps=1.0)
        WifiDevice(ctx, "W2", Position(5.0, 0.0), data_rate_mbps=1.0)
        WifiPacketSource(ctx, sender.mac, "W2", payload_bytes=100, interval=1e-3)
        collector = ZigbeeDevice(ctx, "C", Position(0.0, 0.0))
        sampler = RssiSampler(
            collector.radio, ctx.sim, ctx.streams, quantize=False, mode=mode
        )
        out = []
        sampler.capture(5e-3, 40e3, out.append)
        ctx.sim.run(until=0.02)
        return out[0]

    fast, legacy = run("segment"), run("per_sample")
    assert fast.samples_dbm.dtype == legacy.samples_dbm.dtype == np.float64
    assert np.array_equal(fast.samples_dbm, legacy.samples_dbm)


def test_default_capture_mode_flag():
    assert DEFAULT_CAPTURE_MODE in CAPTURE_MODES
    previous = set_default_capture_mode("per_sample")
    try:
        assert previous == "segment"
        with pytest.raises(ValueError):
            set_default_capture_mode("bogus")
    finally:
        set_default_capture_mode(previous)
    ctx = deterministic_context()
    dev = ZigbeeDevice(ctx, "Z", Position(0, 0))
    with pytest.raises(ValueError):
        RssiSampler(dev.radio, ctx.sim, ctx.streams, mode="bogus")


# ----------------------------------------------------------------------
# Vectorized CTI features vs the straight-line reference
# ----------------------------------------------------------------------
def _runs_reference(mask):
    """Original scalar-loop implementation of core.cti._runs."""
    runs = []
    start = None
    for i, flag in enumerate(mask):
        if flag and start is None:
            start = i
        elif not flag and start is not None:
            runs.append((start, i - start))
            start = None
    if start is not None:
        runs.append((start, len(mask) - start))
    return runs


def _extract_features_reference(trace, noise_floor_dbm, busy_margin_db=8.0):
    """Original implementation of core.cti.extract_features."""
    samples = np.asarray(trace.samples_dbm, dtype=float)
    period = 1.0 / trace.rate_hz
    busy = samples >= noise_floor_dbm + busy_margin_db
    runs = _runs_reference(busy)
    avg_on_air = (sum(r[1] for r in runs) / len(runs)) * period if runs else 0.0
    if len(runs) >= 2:
        gaps = [
            runs[i + 1][0] - (runs[i][0] + runs[i][1]) for i in range(len(runs) - 1)
        ]
        min_interval = min(gaps) * period
    else:
        min_interval = trace.duration
    power_mw = np.asarray([10.0 ** (s / 10.0) for s in samples])
    mean_power = float(power_mw.mean())
    papr = float(power_mw.max() / mean_power) if mean_power > 0 else 1.0
    under_floor = float(np.mean(samples <= noise_floor_dbm + 1.0))
    return RssiFeatures(avg_on_air, min_interval, papr, under_floor)


@given(mask=st.lists(st.booleans(), min_size=0, max_size=200))
@settings(max_examples=200, deadline=None)
def test_runs_matches_reference(mask):
    assert _runs(np.asarray(mask, dtype=bool)) == _runs_reference(mask)


@given(
    samples=st.lists(
        st.integers(min_value=-110, max_value=-20), min_size=1, max_size=300
    ),
    floor=st.integers(min_value=-105, max_value=-80),
)
@settings(max_examples=100, deadline=None)
def test_extract_features_matches_reference(samples, floor):
    trace = RssiTrace(0.0, 40e3, np.asarray(samples))
    got = extract_features(trace, float(floor))
    want = _extract_features_reference(trace, float(floor))
    assert got.avg_on_air_time == want.avg_on_air_time
    assert got.min_packet_interval == want.min_packet_interval
    assert got.peak_to_average_ratio == want.peak_to_average_ratio
    assert got.under_noise_floor == want.under_noise_floor


# ----------------------------------------------------------------------
# Propagation gain cache under mobility
# ----------------------------------------------------------------------
def test_gain_cache_hits_and_mobility_invalidation():
    ctx = deterministic_context(seed=2)
    a = ZigbeeDevice(ctx, "A", Position(0.0, 0.0))
    b = ZigbeeDevice(ctx, "B", Position(3.0, 0.0))
    channel = ctx.channel

    p1 = channel.mean_rx_power_dbm(0.0, "A", a.radio.position, "B", b.radio.position)
    misses = channel.gain_misses
    p2 = channel.mean_rx_power_dbm(0.0, "A", a.radio.position, "B", b.radio.position)
    assert p2 == p1
    assert channel.gain_misses == misses  # second query served from cache
    assert channel.gain_hits >= 1

    epoch = channel.position_epoch
    b.radio.move_to(Position(6.0, 0.0))
    assert channel.position_epoch == epoch + 1

    p3 = channel.mean_rx_power_dbm(0.0, "A", a.radio.position, "B", b.radio.position)
    # Deterministic context: the new value is exactly the log-distance model.
    assert p3 == pytest.approx(0.0 - channel.path_loss.loss_db(6.0))
    assert p3 < p1
    # 3 m -> 6 m at exponent 3.0 costs 10*3*log10(2) ~ 9 dB.
    assert p1 - p3 == pytest.approx(30.0 * math.log10(2.0))


def test_gain_cache_mid_run_mobility_matches_uncached_channel():
    """A mobile scenario's rx powers must equal a cache-cold recomputation."""

    def rx_powers(invalidate_between):
        ctx = deterministic_context(seed=4)
        tx = ZigbeeDevice(ctx, "T", Position(0.0, 0.0))
        rx = ZigbeeDevice(ctx, "R", Position(2.0, 0.0))
        powers = []
        for step in range(5):
            powers.append(
                ctx.channel.mean_rx_power_dbm(
                    0.0, "T", tx.radio.position, "R", rx.radio.position
                )
            )
            rx.radio.move_to(Position(2.0 + step, 0.0))
            if invalidate_between:
                # Extra invalidations must never change values, only timing.
                ctx.channel.invalidate_gains()
        return powers

    assert rx_powers(False) == rx_powers(True)

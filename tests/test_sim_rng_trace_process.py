"""Tests for RNG streams, the trace recorder, and generator processes."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.process import Process
from repro.sim.rng import RandomStreams
from repro.sim.trace import TraceRecorder


# ----------------------------------------------------------------------
# RandomStreams
# ----------------------------------------------------------------------
def test_same_seed_same_draws():
    a = RandomStreams(seed=42).stream("x")
    b = RandomStreams(seed=42).stream("x")
    assert list(a.random(10)) == list(b.random(10))


def test_different_seeds_differ():
    a = RandomStreams(seed=1).stream("x")
    b = RandomStreams(seed=2).stream("x")
    assert list(a.random(10)) != list(b.random(10))


def test_different_names_are_independent():
    streams = RandomStreams(seed=7)
    a = list(streams.stream("a").random(10))
    b = list(streams.stream("b").random(10))
    assert a != b


def test_stream_is_cached():
    streams = RandomStreams(seed=7)
    assert streams.stream("x") is streams.stream("x")


def test_new_consumer_does_not_perturb_existing_stream():
    """Adding a stream must not change what another stream produces."""
    s1 = RandomStreams(seed=5)
    first = list(s1.stream("mac").random(5))
    s2 = RandomStreams(seed=5)
    s2.stream("something-new").random(100)  # interleaved consumer
    second = list(s2.stream("mac").random(5))
    assert first == second


def test_fork_changes_draws_deterministically():
    base = RandomStreams(seed=3)
    f1 = base.fork("rep-1").stream("x").random(5)
    f2 = RandomStreams(seed=3).fork("rep-1").stream("x").random(5)
    assert list(f1) == list(f2)
    assert list(RandomStreams(seed=3).fork("rep-2").stream("x").random(5)) != list(f1)


def test_fork_of_seed_zero_does_not_collide_with_root_seed():
    """Regression: the old affine fork (seed*p + hash(salt)) made
    ``RandomStreams(0).fork(salt)`` land exactly on the root family whose
    seed is ``hash(salt) % 2**63`` — supposedly independent repetitions
    shared every stream."""
    from repro.sim.rng import _stable_hash

    forked = RandomStreams(seed=0).fork("rep-1")
    aliased = RandomStreams(seed=_stable_hash("rep-1") % (2**63))
    assert forked.seed != aliased.seed
    assert list(forked.stream("x").random(5)) != list(aliased.stream("x").random(5))


def test_fork_namespace_disjoint_from_stream_names():
    """fork('a') must not correlate with stream('a') draws of any family."""
    base = RandomStreams(seed=11)
    direct = list(base.stream("rep-1").random(5))
    forked = list(base.fork("rep-1").stream("rep-1").random(5))
    assert direct != forked


# ----------------------------------------------------------------------
# TraceRecorder
# ----------------------------------------------------------------------
def test_trace_records_and_counts():
    trace = TraceRecorder()
    trace.record(1.0, "tx", device="a")
    trace.record(2.0, "tx", device="b")
    trace.record(3.0, "rx", device="a")
    assert trace.count("tx") == 2
    assert [r["device"] for r in trace.of_kind("tx")] == ["a", "b"]


def test_trace_kind_filter_keeps_counters():
    trace = TraceRecorder(enabled_kinds={"rx"})
    trace.record(1.0, "tx", device="a")
    trace.record(2.0, "rx", device="a")
    assert trace.count("tx") == 1
    assert trace.of_kind("tx") == []
    assert len(trace.of_kind("rx")) == 1


def test_trace_between_and_where():
    trace = TraceRecorder()
    for t in [0.5, 1.5, 2.5]:
        trace.record(t, "tick", n=t)
    assert [r.time for r in trace.between(1.0, 3.0)] == [1.5, 2.5]
    assert len(list(trace.where(lambda r: r["n"] > 1.0))) == 2


def test_trace_record_get_and_clear():
    trace = TraceRecorder()
    trace.record(1.0, "x", a=1)
    record = trace.records[0]
    assert record["a"] == 1
    assert record.get("missing", "default") == "default"
    trace.clear()
    assert trace.records == [] and trace.count("x") == 0


# ----------------------------------------------------------------------
# Process
# ----------------------------------------------------------------------
def test_process_runs_steps_at_yielded_delays():
    sim = Simulator()
    times = []

    def gen():
        for _ in range(3):
            times.append(sim.now)
            yield 1.0

    Process(sim, gen())
    sim.run()
    assert times == [0.0, 1.0, 2.0]


def test_process_finishes_on_return():
    sim = Simulator()

    def gen():
        yield 1.0

    process = Process(sim, gen())
    sim.run()
    assert process.finished
    assert not process.running


def test_process_stop_cancels_future_steps():
    sim = Simulator()
    ticks = []

    def gen():
        while True:
            ticks.append(sim.now)
            yield 1.0

    process = Process(sim, gen())
    sim.schedule(2.5, process.stop)
    sim.run(until=10.0)
    assert ticks == [0.0, 1.0, 2.0]
    assert process.finished


def test_process_rejects_bad_yields():
    sim = Simulator()

    def bad_type():
        yield "soon"

    Process(sim, bad_type())
    with pytest.raises(TypeError):
        sim.run()

    sim2 = Simulator()

    def negative():
        yield -1.0

    Process(sim2, negative())
    with pytest.raises(ValueError):
        sim2.run()


def test_process_start_delay():
    sim = Simulator()
    times = []

    def gen():
        times.append(sim.now)
        yield 1.0

    Process(sim, gen(), start_delay=5.0)
    sim.run()
    assert times == [5.0]

"""Tests for the stable repro.api facade and the ExperimentResult contract."""

import dataclasses

import pytest

import repro.api as api
from repro.experiments import (
    EXPERIMENTS,
    ExperimentResult,
    ResultBase,
    check_result_contract,
    get_experiment,
)


# ----------------------------------------------------------------------
# ExperimentResult contract
# ----------------------------------------------------------------------
def test_every_registered_result_satisfies_the_contract():
    for name, spec in EXPERIMENTS.items():
        check_result_contract(spec.result_cls)  # raises on violation


def test_check_result_contract_rejects_untyped_shapes():
    class Bogus:
        pass

    with pytest.raises(TypeError, match="ExperimentResult"):
        check_result_contract(Bogus)


def test_results_roundtrip_and_carry_identity():
    result = api.run("learning", n_bursts=3, seed=11)
    assert isinstance(result, ExperimentResult)
    assert result.seed == 11
    metrics = result.metrics()
    assert metrics and all(isinstance(v, float) for v in metrics.values())
    rebuilt = type(result).from_dict(result.to_dict())
    assert rebuilt == result


def test_scheme_less_results_fall_back_to_neutral_identity():
    result = api.run("cti", n_traces=10, seed=2)
    assert result.scheme == ""  # ResultBase fallback, not a real field
    assert result.seed == 2  # real field, set by the runner


def test_dict_access_shim_warns_and_proxies():
    result = api.run("learning", n_bursts=3, seed=0)
    with pytest.warns(DeprecationWarning, match="dict-style"):
        assert result["iterations"] == result.iterations
    with pytest.warns(DeprecationWarning):
        assert result.get("missing", 42) == 42
    with pytest.warns(DeprecationWarning):
        assert "iterations" in result.keys()
    with pytest.warns(DeprecationWarning):
        with pytest.raises(KeyError):
            result["not_a_field"]


def test_registry_rejects_contract_violations():
    from repro.experiments import ExperimentSpec, register

    @dataclasses.dataclass
    class BadResult:
        value: float = 0.0

    spec = get_experiment("learning")
    with pytest.raises(TypeError, match="ExperimentResult"):
        register(ExperimentSpec(
            name="bad-result-test", runner=spec.runner,
            config_cls=spec.config_cls, result_cls=BadResult,
        ))
    assert "bad-result-test" not in EXPERIMENTS


def test_result_base_getattr_raises_for_unknown_names():
    @dataclasses.dataclass
    class Tiny(ResultBase):
        value: float = 1.0

    tiny = Tiny()
    assert tiny.scheme == "" and tiny.seed == -1
    with pytest.raises(AttributeError):
        tiny.nonexistent


# ----------------------------------------------------------------------
# Facade functions
# ----------------------------------------------------------------------
def test_api_run_matches_registry_contract():
    result = api.run("energy", n_bursts=3, seed=4)
    assert type(result).__name__ == "EnergyResult"
    assert result.seed == 4


def test_api_sweep_caches_and_replays(tmp_path):
    first = api.sweep(
        "learning", grid={"n_bursts": (3,)}, seeds=(0, 1),
        cache_dir=tmp_path,
    )
    assert first.executed == 2 and first.cached_hits == 0
    second = api.sweep(
        "learning", grid={"n_bursts": (3,)}, seeds=(0, 1),
        cache_dir=tmp_path,
    )
    assert second.executed == 0 and second.cached_hits == 2
    assert [r.to_dict() for r in first.results] == \
        [r.to_dict() for r in second.results]


def test_api_get_result_reads_the_cache(tmp_path):
    api.sweep("learning", grid={"n_bursts": (3,)}, seeds=(5,),
              cache_dir=tmp_path)
    hit = api.get_result("learning", {"n_bursts": 3}, seed=5,
                         cache_dir=tmp_path)
    assert hit is not None and hit.seed == 5
    miss = api.get_result("learning", {"n_bursts": 99}, seed=5,
                          cache_dir=tmp_path)
    assert miss is None


def test_api_load_scenario_resolves_specs():
    spec = api.load_scenario("smart-home")
    assert spec.name == "smart-home"
    assert spec.fingerprint() == api.load_scenario("smart-home").fingerprint()
    with pytest.raises(KeyError):
        api.load_scenario("no-such-scenario")


def test_api_campaign_runs_and_resumes(tmp_path):
    spec = {
        "name": "api-camp", "experiment": "learning",
        "grid": {"n_bursts": (3, 4)}, "seeds": (0,),
        "compare_by": "n_bursts",
    }
    run = api.campaign(spec, directory=tmp_path / "camp",
                       cache_dir=tmp_path / "cache", max_trials=1)
    assert not run.complete and run.completed == 1
    resumed = api.campaign(directory=tmp_path / "camp",
                           cache_dir=tmp_path / "cache")
    assert resumed.complete and resumed.executed == 1
    assert set(resumed.summaries) == {3, 4}

"""Fault-injection subsystem: plans, injectors, determinism, robustness runs."""

import dataclasses

import numpy as np
import pytest

from repro.experiments import (
    CoexistenceConfig,
    RobustnessTrialConfig,
    SweepEngine,
    SweepSpec,
    run_coexistence,
    run_experiment,
    run_robustness_trial,
)
from repro.experiments.sweep import trial_key
from repro.faults import (
    DIMENSIONS,
    CsiFaultInjector,
    CtsFaultInjector,
    ControlFaultInjector,
    DetectionFaultInjector,
    FaultPlan,
    NegotiationFaultInjector,
    TimerFaultInjector,
    build_harness,
)
from repro.faults.injectors import DROP_ATTENUATION_DB, MIN_TIMER_S
from repro.mac.frames import wifi_cts_frame, zigbee_control_frame
from repro.serialization import canonical_dumps, from_dict, to_dict
from repro.sim.rng import RandomStreams

pytestmark = pytest.mark.faults


def rng(seed=0):
    return np.random.default_rng(seed)


# ----------------------------------------------------------------------
# FaultPlan: validation, activity, dimensions
# ----------------------------------------------------------------------
def test_default_plan_is_inert():
    plan = FaultPlan()
    assert not plan.active
    assert build_harness(plan, RandomStreams(0)) is None
    assert build_harness(None, RandomStreams(0)) is None


@pytest.mark.parametrize("field,value", [
    ("csi_miss_rate", -0.1),
    ("detection_fn_rate", 1.5),
    ("control_drop_rate", 2.0),
    ("cts_suppress_rate", -1.0),
    ("control_truncate_min_fraction", 0.0),
    ("reestimation_skew", -1.0),
    ("end_silence_skew", -2.0),
    ("timer_jitter", -1e-3),
    ("negotiation_noise_db", -0.5),
])
def test_plan_rejects_out_of_domain_values(field, value):
    with pytest.raises(ValueError):
        FaultPlan(**{field: value})


def test_from_dimension_maps_rates():
    plan = FaultPlan.from_dimension("detection", 0.4)
    assert plan.detection_fn_rate == pytest.approx(0.4)
    assert plan.detection_fp_rate == pytest.approx(0.004)
    assert plan.control_drop_rate == 0.0
    plan = FaultPlan.from_dimension("control", 0.6)
    assert plan.control_drop_rate == pytest.approx(0.6)
    assert plan.control_truncate_rate == pytest.approx(0.3)
    plan = FaultPlan.from_dimension("timers", 1.0)
    assert plan.reestimation_skew == pytest.approx(-0.9)
    assert plan.end_silence_skew == pytest.approx(-0.75)
    combined = FaultPlan.from_dimension("all", 0.5)
    assert combined.detection_fn_rate > 0 and combined.cts_suppress_rate > 0
    assert FaultPlan.from_dimension("all", 0.0) == FaultPlan()


def test_from_dimension_rejects_unknowns():
    with pytest.raises(ValueError):
        FaultPlan.from_dimension("gremlins", 0.5)
    with pytest.raises(ValueError):
        FaultPlan.from_dimension("all", 1.5)
    assert "all" in DIMENSIONS


def test_harness_builds_only_requested_injectors():
    harness = build_harness(FaultPlan(detection_fn_rate=0.5), RandomStreams(0))
    assert harness.detection is not None
    assert harness.csi is None and harness.control is None
    assert harness.cts is None and harness.timers is None
    assert harness.negotiation is None
    assert harness.counters() == {
        "fault_detections_suppressed": 0,
        "fault_detections_injected": 0,
    }


def test_plan_serialization_roundtrip_and_cache_key_sensitivity():
    plan = FaultPlan.from_dimension("all", 0.25)
    assert from_dict(FaultPlan, to_dict(plan)) == plan
    clean = trial_key("robustness", {"dimension": "all", "rate": 0.0}, seed=0)
    faulted = trial_key("robustness", {"dimension": "all", "rate": 0.25}, seed=0)
    assert clean != faulted


# ----------------------------------------------------------------------
# Injector units
# ----------------------------------------------------------------------
def test_control_injector_drop_attenuates_and_stamps():
    injector = ControlFaultInjector(FaultPlan(control_drop_rate=1.0), rng())
    frame = zigbee_control_frame("ZS", 120)
    power = injector.perturb(frame, -1.0)
    assert power == pytest.approx(-1.0 - DROP_ATTENUATION_DB)
    assert frame.meta["fault_control_dropped"] is True
    assert injector.controls_dropped == 1


def test_control_injector_truncation_preserves_mac_overhead():
    injector = ControlFaultInjector(
        FaultPlan(control_truncate_rate=1.0, control_truncate_min_fraction=0.25),
        rng(),
    )
    frame = zigbee_control_frame("ZS", 120)
    orig_payload = frame.payload_bytes  # 120 B MPDU minus MAC overhead
    overhead = frame.mpdu_bytes - frame.payload_bytes
    full_duration = frame.duration()
    power = injector.perturb(frame, -1.0)
    assert power == pytest.approx(-1.0)  # truncation does not touch power
    assert frame.payload_bytes < orig_payload
    assert frame.payload_bytes >= int(orig_payload * 0.25)
    assert frame.mpdu_bytes - frame.payload_bytes == overhead
    assert frame.duration() < full_duration  # shorter on the air, fewer overlaps
    assert frame.meta["fault_control_truncated"] == orig_payload


def test_detection_injector_flips_both_ways():
    fn = DetectionFaultInjector(FaultPlan(detection_fn_rate=1.0), rng())
    assert fn.flip(True) is False and fn.detections_suppressed == 1
    assert fn.flip(False) is False  # fn rate never *creates* detections
    fp = DetectionFaultInjector(FaultPlan(detection_fp_rate=1.0), rng())
    assert fp.flip(False) is True and fp.detections_injected == 1
    assert fp.flip(True) is True  # fp rate never suppresses real ones


def test_cts_injector_stamps():
    drop = CtsFaultInjector(FaultPlan(cts_suppress_rate=1.0), rng())
    assert drop.stamp() == {"fault_cts_drop": True}
    delay = CtsFaultInjector(
        FaultPlan(cts_delay_rate=1.0, cts_delay_max=2e-3), rng()
    )
    stamp = delay.stamp()
    assert 0.0 <= stamp["fault_cts_delay"] <= 2e-3
    clean = CtsFaultInjector(FaultPlan(cts_suppress_rate=0.5), rng())
    clean.plan = FaultPlan()  # zero rates -> no draws, empty stamp
    assert clean.stamp() == {}


def test_timer_injector_skews_and_floors():
    injector = TimerFaultInjector(FaultPlan(reestimation_skew=-0.5), rng())
    assert injector.reestimation_period(10.0) == pytest.approx(5.0)
    fast = TimerFaultInjector(FaultPlan(end_silence_skew=-0.999999), rng())
    assert fast.end_silence(20e-3) == MIN_TIMER_S  # never 0 / negative
    jitter = TimerFaultInjector(FaultPlan(timer_jitter=1e-3), rng())
    values = {jitter.end_silence(20e-3) for _ in range(8)}
    assert len(values) > 1
    assert all(abs(v - 20e-3) <= 1e-3 + 1e-12 for v in values)


def test_csi_injector_miss_and_spurious():
    injector = CsiFaultInjector(
        FaultPlan(csi_miss_rate=1.0, csi_spurious_rate=1.0), rng()
    )
    assert injector.miss_overlap() is True
    spurious = injector.spurious_deviation()
    assert spurious is not None and 0.3 <= spurious <= 0.9
    off = CsiFaultInjector(FaultPlan(csi_miss_rate=1.0), rng())
    assert off.spurious_deviation() is None


def test_negotiation_injector_biases_rssi():
    injector = NegotiationFaultInjector(FaultPlan(negotiation_bias_db=3.0), rng())
    assert injector.perturb_rssi(-60.0) == pytest.approx(-57.0)
    assert injector.negotiations_perturbed == 1


def test_injector_sequences_reproducible_per_seed():
    plan = FaultPlan(control_drop_rate=0.5)
    a = ControlFaultInjector(plan, RandomStreams(9).stream("faults/control"))
    b = ControlFaultInjector(plan, RandomStreams(9).stream("faults/control"))
    fates_a = [a.perturb(zigbee_control_frame("ZS", 120), 0.0) for _ in range(50)]
    fates_b = [b.perturb(zigbee_control_frame("ZS", 120), 0.0) for _ in range(50)]
    assert fates_a == fates_b
    assert a.controls_dropped == b.controls_dropped > 0


# ----------------------------------------------------------------------
# MAC-level CTS fault semantics
# ----------------------------------------------------------------------
def make_office():
    from repro.experiments import build_office

    return build_office(seed=0, location="A")


def test_dropped_cts_never_sets_nav():
    office = make_office()
    mac = office.wifi_sender.mac
    cts = wifi_cts_frame("F", 30e-3, mac.basic_rate, bicord=True, fault_cts_drop=True)
    mac._handle_cts(cts)
    assert mac.nav_until == 0.0


def test_delayed_cts_sets_nav_late_but_ends_on_time():
    office = make_office()
    sim = office.sim
    mac = office.wifi_sender.mac
    cts = wifi_cts_frame(
        "F", 30e-3, mac.basic_rate, bicord=True, fault_cts_delay=1e-3
    )
    mac._handle_cts(cts)
    assert mac.nav_until == 0.0  # not yet decoded
    sim.run(until=2e-3)
    # NAV was applied after the decode delay, ending when the original
    # reservation ends (the white space is not extended by the delay).
    assert mac.nav_until == pytest.approx(30e-3)


def test_clean_cts_still_sets_nav():
    office = make_office()
    mac = office.wifi_sender.mac
    cts = wifi_cts_frame("F", 30e-3, mac.basic_rate, bicord=True)
    mac._handle_cts(cts)
    assert mac.nav_until == pytest.approx(30e-3)


# ----------------------------------------------------------------------
# End-to-end: zero-rate exactness, determinism, degradation accounting
# ----------------------------------------------------------------------
def test_zero_rate_plan_reproduces_fault_free_run_exactly():
    """Acceptance: an inert faults config is bitwise-identical to no faults."""
    clean = run_coexistence(CoexistenceConfig(seed=3, n_bursts=6))
    inert = run_coexistence(CoexistenceConfig(seed=3, n_bursts=6, faults=FaultPlan()))
    assert canonical_dumps(clean) == canonical_dumps(inert)
    zero = run_robustness_trial(
        RobustnessTrialConfig(dimension="all", rate=0.0, n_bursts=6), seed=3
    )
    assert zero.prr == clean.delivery_ratio
    assert zero.mean_delay == clean.mean_delay
    assert zero.p95_delay == clean.p95_delay
    assert zero.fault_counters == {}


def test_faulted_run_is_deterministic_per_seed():
    """Acceptance: same FaultPlan + seed -> bitwise-identical results."""
    cfg = RobustnessTrialConfig(dimension="all", rate=0.5, n_bursts=6)
    a = run_robustness_trial(cfg, seed=7)
    b = run_robustness_trial(cfg, seed=7)
    assert canonical_dumps(a) == canonical_dumps(b)
    assert sum(a.fault_counters.values()) > 0
    c = run_robustness_trial(cfg, seed=8)
    assert canonical_dumps(a) != canonical_dumps(c)


def test_fault_counters_surface_in_coexistence_extra():
    plan = FaultPlan(control_drop_rate=0.8, detection_fn_rate=0.5)
    result = run_coexistence(CoexistenceConfig(seed=2, n_bursts=6, faults=plan))
    assert result.extra.get("fault_controls_dropped", 0) > 0
    assert "fault_detections_suppressed" in result.extra


def test_control_drops_degrade_signaling():
    """Dropping every control packet degrades coordination: the ZigBee node
    burns many more control transmissions and delivery slows down.  (It is
    not fully blinded — colliding *data* frames still disturb CSI, so some
    grants survive; that's the protocol's own redundancy, not a fault leak.)"""
    clean = run_coexistence(CoexistenceConfig(seed=5, n_bursts=6))
    deaf = run_coexistence(CoexistenceConfig(
        seed=5, n_bursts=6, faults=FaultPlan(control_drop_rate=1.0)
    ))
    assert deaf.extra["fault_controls_dropped"] == deaf.control_packets
    assert deaf.control_packets > 2 * clean.control_packets
    assert deaf.mean_delay > clean.mean_delay


def test_explicit_plan_overrides_dimension_axes():
    cfg = RobustnessTrialConfig(
        dimension="all", rate=0.9, faults=FaultPlan(), n_bursts=4
    )
    assert cfg.plan() == FaultPlan()
    result = run_robustness_trial(cfg, seed=0)
    assert result.fault_counters == {}


def test_robustness_config_validation():
    with pytest.raises(ValueError):
        RobustnessTrialConfig(dimension="nope")
    with pytest.raises(ValueError):
        RobustnessTrialConfig(rate=1.2)
    with pytest.raises(ValueError):
        RobustnessTrialConfig(scheme="token-ring")


# ----------------------------------------------------------------------
# Robustness experiment through the registry + sweep cache
# ----------------------------------------------------------------------
def test_robustness_registered_and_runs_via_registry():
    result = run_experiment(
        "robustness", seed=1, dimension="detection", rate=0.3, n_bursts=5
    )
    assert result.dimension == "detection"
    assert 0.0 <= result.prr <= 1.0
    assert result.bursts_offered > 0


def test_robustness_sweep_smoke_with_caching(tmp_path):
    """Acceptance: a tiny robustness grid runs through the sweep engine and
    re-runs entirely from cache."""
    spec = SweepSpec(
        experiment="robustness",
        grid={"rate": (0.0, 0.5)},
        base={"dimension": "control", "n_bursts": 4},
        seeds=(0, 1),
    )
    engine = SweepEngine(jobs=1, cache_dir=tmp_path)
    first = engine.run(spec)
    assert (first.executed, first.cached_hits) == (4, 0)
    second = engine.run(spec)
    assert (second.executed, second.cached_hits) == (0, 4)
    for a, b in zip(first.results, second.results):
        assert canonical_dumps(a) == canonical_dumps(b)


def test_robustness_curve_reports_degradation_points():
    from repro.experiments import robustness_curve

    points = robustness_curve(
        dimension="control", rates=(0.0, 1.0), seeds=(0,),
        base={"n_bursts": 4},
        engine=SweepEngine(jobs=1, cache=False),
    )
    assert [point["rate"] for point in points] == [0.0, 1.0]
    assert all(point["seeds"] == 1 for point in points)
    assert 0.0 <= points[0]["prr_mean"] <= 1.0

"""Scheduler-backend propagation into workers and provenance records.

The scheduler default (``repro.sim.engine.DEFAULT_BACKEND``) is a
module-level global, so a parent's ``set_default_backend()`` never reaches
the fresh interpreters a process pool spawns.  These tests pin the fix:
the sweep engine resolves the parent's default (or an explicit choice) at
run time and ships it to every trial, and the manifest records what
actually ran.
"""

import pytest

from repro.experiments.campaign import CampaignRunner, CampaignSpec
from repro.experiments.sweep import SweepEngine, _execute_trial
from repro.serialization import to_dict
from repro.sim import engine as sim_engine
from repro.telemetry import build_manifest

TINY = {"scenario": "office", "duration": 0.02}


@pytest.fixture
def restore_default_backend():
    previous = sim_engine.DEFAULT_BACKEND
    yield
    sim_engine.set_default_backend(previous)


class TestExecuteTrialBackend:
    def test_backend_pin_is_restored_after_the_trial(
        self, restore_default_backend
    ):
        sim_engine.set_default_backend("calendar")
        _execute_trial("scenario", TINY, 0, None, backend="heap")
        assert sim_engine.DEFAULT_BACKEND == "calendar"

    def test_backend_none_leaves_default_untouched(
        self, restore_default_backend
    ):
        sim_engine.set_default_backend("heap")
        _execute_trial("scenario", TINY, 0, None, backend=None)
        assert sim_engine.DEFAULT_BACKEND == "heap"

    def test_backends_produce_identical_results(self):
        heap, _, _ = _execute_trial("scenario", TINY, 3, None, backend="heap")
        cal, _, _ = _execute_trial(
            "scenario", TINY, 3, None, backend="calendar"
        )
        assert to_dict(heap) == to_dict(cal)


class TestSweepEngineBackend:
    def test_invalid_backend_rejected_eagerly(self, tmp_path):
        with pytest.raises(ValueError, match="unknown scheduler backend"):
            SweepEngine(cache_dir=tmp_path, backend="wheel")

    def test_pool_workers_run_the_parents_default(
        self, tmp_path, restore_default_backend
    ):
        # Flip the parent default, run the pool path, and check the run
        # is bitwise-identical to a serial run under the same default —
        # the propagation guarantee the module global alone cannot give.
        sim_engine.set_default_backend("heap")
        pairs = [(TINY, 0), (TINY, 1)]
        pooled = SweepEngine(
            jobs=2, cache=False, cache_dir=tmp_path / "a"
        ).run_pairs("scenario", pairs)
        serial = SweepEngine(
            jobs=1, cache=False, cache_dir=tmp_path / "b"
        ).run_pairs("scenario", pairs)
        assert [to_dict(r) for r in pooled.results] == \
            [to_dict(r) for r in serial.results]

    def test_explicit_backend_wins_over_default(
        self, tmp_path, restore_default_backend
    ):
        sim_engine.set_default_backend("calendar")
        run = SweepEngine(
            cache=False, cache_dir=tmp_path, backend="heap"
        ).run_pairs("scenario", [(TINY, 0)])
        assert len(run.results) == 1
        # The pin must not leak into the process default afterwards.
        assert sim_engine.DEFAULT_BACKEND == "calendar"


class TestManifestBackend:
    def test_manifest_records_the_process_default(
        self, restore_default_backend
    ):
        sim_engine.set_default_backend("heap")
        assert build_manifest("scenario").backend == "heap"
        sim_engine.set_default_backend("calendar")
        assert build_manifest("scenario").backend == "calendar"

    def test_manifest_records_an_explicit_backend(self):
        assert build_manifest("scenario", backend="heap").backend == "heap"

    def test_campaign_manifest_carries_the_backend(self, tmp_path):
        spec = CampaignSpec(
            name="backend-probe",
            base=TINY,
            seeds=(0,),
        )
        runner = CampaignRunner(
            tmp_path / "camp", cache_dir=tmp_path / "cache",
            quiet=True, backend="heap",
        )
        run = runner.run(spec)
        assert run.complete
        import json

        manifest = json.loads(runner.manifest_path.read_text())
        backends = {m["backend"] for m in manifest["shard_manifests"]}
        assert backends == {"heap"}

"""Tests for the SimContext factory."""

from repro import SimContext, build_context
from repro.phy.propagation import FadingModel, PathLossModel


def test_build_context_wires_everything():
    ctx = build_context(seed=5)
    assert ctx.sim is not None
    assert ctx.medium.sim is ctx.sim
    assert ctx.medium.channel is ctx.channel
    assert ctx.streams.seed == 5
    assert ctx.now == 0.0


def test_custom_models_are_used():
    ctx = build_context(
        seed=1,
        path_loss=PathLossModel(pl0_db=50.0, exponent=2.0),
        fading=FadingModel(shadowing_sigma_db=0.0, fading_sigma_db=0.0),
    )
    assert ctx.channel.path_loss.pl0_db == 50.0
    assert ctx.channel.fading.fading_sigma_db == 0.0


def test_trace_kinds_filtering():
    stores_all = build_context(seed=1, trace_kinds=None)
    stores_none = build_context(seed=1, trace_kinds=set())
    stores_all.trace.record(0.0, "x", a=1)
    stores_none.trace.record(0.0, "x", a=1)
    assert len(stores_all.trace.records) == 1
    assert len(stores_none.trace.records) == 0
    assert stores_none.trace.count("x") == 1  # counters always on


def test_now_tracks_simulator():
    ctx = build_context(seed=2)
    ctx.sim.schedule(1.0, lambda: None)
    ctx.sim.run()
    assert ctx.now == 1.0

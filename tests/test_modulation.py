"""Tests for BER/PER models and frame durations."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.phy.modulation import (
    WIFI_RATES,
    ber_gfsk,
    ber_oqpsk_dsss,
    ble_frame_duration,
    packet_success_probability,
    wifi_frame_duration,
    wifi_rate,
    zigbee_frame_duration,
)


# ----------------------------------------------------------------------
# BER curves
# ----------------------------------------------------------------------
@given(st.floats(min_value=-30.0, max_value=30.0))
def test_oqpsk_ber_bounds(sinr_db):
    ber = ber_oqpsk_dsss(sinr_db)
    assert 0.0 <= ber <= 0.5


def test_oqpsk_ber_monotonic_decreasing():
    points = [ber_oqpsk_dsss(s) for s in range(-10, 11)]
    assert all(a >= b for a, b in zip(points, points[1:]))


def test_oqpsk_spreading_gain_region():
    """O-QPSK/DSSS decodes around 0..3 dB SINR and fails well below."""
    assert ber_oqpsk_dsss(3.0) < 1e-4  # essentially error-free
    assert ber_oqpsk_dsss(-10.0) > 0.1  # hopeless


def test_wifi_rate_ber_ordering_at_fixed_sinr():
    """Faster rates need more SINR: at 10 dB, 54 Mbps is worse than 6 Mbps."""
    ber6 = wifi_rate(6.0).ber(10.0)
    ber54 = wifi_rate(54.0).ber(10.0)
    assert ber6 < ber54


@given(st.sampled_from(sorted(WIFI_RATES)), st.floats(min_value=-10, max_value=40))
def test_wifi_ber_bounds(mbps, sinr_db):
    ber = wifi_rate(mbps).ber(sinr_db)
    assert 0.0 <= ber <= 0.5


def test_wifi_ber_monotonic_in_sinr():
    rate = wifi_rate(24.0)
    points = [rate.ber(float(s)) for s in range(-5, 30)]
    assert all(a >= b - 1e-15 for a, b in zip(points, points[1:]))


def test_unknown_wifi_rate_raises():
    with pytest.raises(ValueError):
        wifi_rate(33.0)  # not an 802.11b/g rate


def test_dsss_rates_available():
    """802.11b rates exist and their durations follow the long-preamble PLCP."""
    from repro.phy.modulation import wifi_frame_duration as dur

    assert dur(100, wifi_rate(1.0)) == pytest.approx(192e-6 + 800e-6)
    assert dur(100, wifi_rate(11.0)) == pytest.approx(192e-6 + 800e-6 / 11.0)


def test_dsss_processing_gain():
    """1 Mbps DSSS decodes at channel SINRs far below what OFDM needs."""
    assert wifi_rate(1.0).ber(-5.0) < 1e-3  # 20x despreading gain
    assert wifi_rate(54.0).ber(-5.0) > 0.1
    # And within DSSS, slower is more robust.
    assert wifi_rate(1.0).ber(-8.0) < wifi_rate(11.0).ber(-8.0)


def test_gfsk_ber_behaviour():
    assert ber_gfsk(-20.0) == pytest.approx(0.5, abs=0.01)
    assert ber_gfsk(20.0) < 1e-10
    points = [ber_gfsk(float(s)) for s in range(-10, 20)]
    assert all(a >= b for a, b in zip(points, points[1:]))


# ----------------------------------------------------------------------
# Packet success probability
# ----------------------------------------------------------------------
@given(
    ber=st.floats(min_value=0.0, max_value=0.5),
    n_bits=st.integers(min_value=0, max_value=20000),
)
def test_packet_success_bounds(ber, n_bits):
    p = packet_success_probability(ber, n_bits)
    assert 0.0 <= p <= 1.0


def test_packet_success_extremes():
    assert packet_success_probability(0.0, 1000) == 1.0
    assert packet_success_probability(1.0, 10) == 0.0
    assert packet_success_probability(0.1, 0) == 1.0


def test_packet_success_matches_direct_formula():
    assert packet_success_probability(1e-3, 800) == pytest.approx((1 - 1e-3) ** 800)


def test_packet_success_monotonic_in_length():
    p_short = packet_success_probability(1e-3, 100)
    p_long = packet_success_probability(1e-3, 1000)
    assert p_long < p_short


# ----------------------------------------------------------------------
# Durations
# ----------------------------------------------------------------------
def test_zigbee_duration_reference():
    # SHR+PHR = 6 bytes = 192 us, then 32 us per MPDU byte.
    assert zigbee_frame_duration(0) == pytest.approx(192e-6)
    assert zigbee_frame_duration(61) == pytest.approx(192e-6 + 61 * 32e-6)


def test_zigbee_50byte_packet_airtime_matches_paper_arithmetic():
    """Sec. III: ~20 ms fits 3 consecutive 50 B packets with ACK.

    One 50 B-payload frame (61 B MPDU) lasts ~2.14 ms; with ACK (5 B MPDU,
    ~0.35 ms), two turnarounds and CSMA overhead, one exchange is roughly
    3-6 ms, so roughly 3 exchanges fit in 20 ms.
    """
    data = zigbee_frame_duration(61)
    ack = zigbee_frame_duration(5)
    exchange = data + ack + 2 * 192e-6 + 2.0e-3  # turnarounds + typical backoff
    assert 3 * exchange < 20e-3 < 5 * exchange


def test_wifi_duration_reference():
    # 100 B at 24 Mbps: 16+4 us preamble + ceil((16+800+6)/96)=9 symbols.
    rate = wifi_rate(24.0)
    assert wifi_frame_duration(100, rate) == pytest.approx(20e-6 + 9 * 4e-6)


def test_wifi_duration_monotonic_in_size_and_rate():
    slow, fast = wifi_rate(6.0), wifi_rate(54.0)
    assert wifi_frame_duration(500, slow) > wifi_frame_duration(500, fast)
    assert wifi_frame_duration(1000, fast) > wifi_frame_duration(100, fast)


def test_ble_duration_reference():
    # 40 us header + (pdu+3 CRC)*8 bits at 1 us/bit.
    assert ble_frame_duration(37) == pytest.approx(40e-6 + 40 * 8e-6)


def test_negative_sizes_raise():
    with pytest.raises(ValueError):
        zigbee_frame_duration(-1)
    with pytest.raises(ValueError):
        wifi_frame_duration(-1, wifi_rate(6.0))
    with pytest.raises(ValueError):
        ble_frame_duration(-1)


@given(st.integers(min_value=0, max_value=2000))
def test_wifi_duration_symbol_aligned(nbytes):
    duration = wifi_frame_duration(nbytes, wifi_rate(24.0))
    symbols = (duration - 20e-6) / 4e-6
    assert symbols == pytest.approx(round(symbols))

"""Assorted coverage: CTI dataset plumbing, CLI slow paths, physics sanity."""

import pytest

from repro.core.powermap import CANDIDATE_POWERS_DBM
from repro.experiments.cti_dataset import collect_traces
from repro.phy.medium import Technology
from repro.phy.propagation import Position

from .helpers import deterministic_context


def test_candidate_powers_are_cc2420_levels():
    assert CANDIDATE_POWERS_DBM[0] == 0.0
    assert CANDIDATE_POWERS_DBM == sorted(CANDIDATE_POWERS_DBM, reverse=True)
    assert min(CANDIDATE_POWERS_DBM) == -25.0


def test_collect_traces_rejects_unknown_source():
    with pytest.raises(ValueError):
        collect_traces("carrier-pigeon", n_traces=1)


def test_collect_traces_each_source_has_distinct_energy_signature():
    """The collector actually hears each source type."""
    import numpy as np

    levels = {}
    for source in ("zigbee", "wifi", "microwave"):
        traces, floor = collect_traces(source, distance_m=2.0, n_traces=3, seed=1)
        busy_fraction = np.mean([
            np.mean(np.asarray(t.samples_dbm) > floor + 8.0) for t in traces
        ])
        levels[source] = busy_fraction
    assert levels["wifi"] > 0.3  # saturated sender
    assert levels["zigbee"] > 0.3  # 50 B every 2 ms
    assert 0.2 < levels["microwave"] < 0.9  # mains duty cycle


def test_cli_cti_small(capsys):
    from repro.cli import main

    code = main(["cti", "--traces", "6", "--seed", "1"])
    out = capsys.readouterr().out
    assert code == 0
    assert "wifi detection accuracy" in out


def test_cli_coexist_dump_and_load_roundtrip(tmp_path, capsys):
    from repro.cli import main

    path = tmp_path / "cfg.json"
    code = main(["coexist", "--scheme", "ecc", "--bursts", "4", "--dump-config"])
    dumped = capsys.readouterr().out
    assert code == 0
    path.write_text(dumped)
    code = main(["coexist", "--config", str(path)])
    out = capsys.readouterr().out
    assert code == 0
    assert "coexistence: ecc" in out


def test_received_power_monotone_with_distance():
    """No fading: moving a receiver away strictly reduces received power."""
    ctx = deterministic_context()
    from repro.devices import ZigbeeDevice

    tx = ZigbeeDevice(ctx, "T", Position(0, 0))
    powers = []
    for i, distance in enumerate((1.0, 2.0, 4.0, 8.0)):
        rx = ZigbeeDevice(ctx, f"R{i}", Position(distance, 0))
        t = ctx.medium.transmit(tx.radio, 1e-4, 0.0, tx.radio.band,
                                Technology.ZIGBEE)
        powers.append(ctx.medium.rx_power_dbm(t, rx.radio))
        ctx.sim.run(until=ctx.sim.now + 1e-3)
    assert all(a > b for a, b in zip(powers, powers[1:]))
    # Log-distance: each doubling costs 10*n*log10(2) ~ 9.03 dB at n=3.
    deltas = [a - b for a, b in zip(powers, powers[1:])]
    for delta in deltas:
        assert delta == pytest.approx(9.03, abs=0.1)


def test_radio_move_affects_future_frames_only():
    ctx = deterministic_context()
    from repro.devices import ZigbeeDevice

    tx = ZigbeeDevice(ctx, "T", Position(0, 0))
    rx = ZigbeeDevice(ctx, "R", Position(2, 0))
    t1 = ctx.medium.transmit(tx.radio, 1e-4, 0.0, tx.radio.band, Technology.ZIGBEE)
    before = ctx.medium.rx_power_dbm(t1, rx.radio)
    rx.radio.move_to(Position(6, 0))
    # Cached for the in-flight frame:
    assert ctx.medium.rx_power_dbm(t1, rx.radio) == before
    ctx.sim.run(until=1e-3)
    t2 = ctx.medium.transmit(tx.radio, 1e-4, 0.0, tx.radio.band, Technology.ZIGBEE)
    after = ctx.medium.rx_power_dbm(t2, rx.radio)
    assert after < before - 10.0

"""Tests for the shared medium: power bookkeeping, notifications, energy."""

import pytest

from repro.devices.base import Radio
from repro.phy.medium import Technology
from repro.phy.spectrum import wifi_channel, zigbee_channel
from repro.sim.units import dbm_to_mw, mw_to_dbm
from repro.phy.propagation import Position

from .helpers import deterministic_context


def make_radio(ctx, name, pos, band, tech, **kwargs):
    radio = Radio(
        name=name,
        position=pos,
        band=band,
        technology=tech,
        sim=ctx.sim,
        streams=ctx.streams,
        trace=ctx.trace,
        **kwargs,
    )
    ctx.medium.attach(radio)
    return radio


def test_duplicate_radio_names_rejected():
    ctx = deterministic_context()
    make_radio(ctx, "a", Position(0, 0), wifi_channel(11), Technology.WIFI)
    with pytest.raises(ValueError):
        make_radio(ctx, "a", Position(1, 0), wifi_channel(11), Technology.WIFI)


def test_radio_by_name():
    ctx = deterministic_context()
    radio = make_radio(ctx, "a", Position(0, 0), wifi_channel(11), Technology.WIFI)
    assert ctx.medium.radio_by_name("a") is radio
    with pytest.raises(KeyError):
        ctx.medium.radio_by_name("ghost")


def test_rx_power_follows_path_loss():
    ctx = deterministic_context()
    a = make_radio(ctx, "a", Position(0, 0), zigbee_channel(24), Technology.ZIGBEE)
    b = make_radio(ctx, "b", Position(10, 0), zigbee_channel(24), Technology.ZIGBEE)
    tx = ctx.medium.transmit(a, 1e-3, 0.0, a.band, Technology.ZIGBEE)
    # 0 dBm - (40 + 30*log10(10)) = -70 dBm
    assert ctx.medium.rx_power_dbm(tx, b) == pytest.approx(-70.0)


def test_energy_is_noise_floor_when_idle():
    ctx = deterministic_context()
    radio = make_radio(ctx, "a", Position(0, 0), zigbee_channel(24), Technology.ZIGBEE,
                       noise_figure_db=5.0)
    assert radio.energy_dbm() == pytest.approx(radio.noise_floor_dbm)
    assert radio.noise_floor_dbm == pytest.approx(-106.0, abs=0.1)


def test_energy_includes_active_transmission_and_clears_after():
    ctx = deterministic_context()
    a = make_radio(ctx, "a", Position(0, 0), zigbee_channel(24), Technology.ZIGBEE)
    b = make_radio(ctx, "b", Position(2, 0), zigbee_channel(24), Technology.ZIGBEE)
    readings = []
    ctx.medium.transmit(a, 1e-3, 0.0, a.band, Technology.ZIGBEE)
    ctx.sim.schedule(0.5e-3, lambda: readings.append(b.energy_dbm()))
    ctx.sim.schedule(2e-3, lambda: readings.append(b.energy_dbm()))
    ctx.sim.run()
    during, after = readings
    assert during == pytest.approx(-49.03, abs=0.2)  # 40 + 30*log10(2)
    assert after == pytest.approx(b.noise_floor_dbm, abs=0.1)


def test_energy_excludes_own_transmission():
    ctx = deterministic_context()
    a = make_radio(ctx, "a", Position(0, 0), zigbee_channel(24), Technology.ZIGBEE)
    make_radio(ctx, "b", Position(2, 0), zigbee_channel(24), Technology.ZIGBEE)
    ctx.medium.transmit(a, 1e-3, 0.0, a.band, Technology.ZIGBEE)
    assert a.energy_dbm() == pytest.approx(a.noise_floor_dbm, abs=0.1)


def test_cross_band_energy_weighted_by_overlap():
    """Wi-Fi power into a ZigBee filter is attenuated by 10 dB (2/20 MHz)."""
    ctx = deterministic_context()
    w = make_radio(ctx, "w", Position(0, 0), wifi_channel(11), Technology.WIFI)
    z = make_radio(ctx, "z", Position(2, 0), zigbee_channel(24), Technology.ZIGBEE)
    ctx.medium.transmit(w, 1e-3, 20.0, w.band, Technology.WIFI)
    # 20 dBm - 49.03 dB path loss - 10 dB overlap = -39.03 dBm in band.
    assert z.energy_dbm() == pytest.approx(-39.03, abs=0.2)


def test_disjoint_band_contributes_nothing():
    ctx = deterministic_context()
    w = make_radio(ctx, "w", Position(0, 0), wifi_channel(1), Technology.WIFI)
    z = make_radio(ctx, "z", Position(2, 0), zigbee_channel(26), Technology.ZIGBEE)
    ctx.medium.transmit(w, 1e-3, 20.0, w.band, Technology.WIFI)
    assert z.energy_dbm() == pytest.approx(z.noise_floor_dbm, abs=0.1)


def test_energy_sums_multiple_transmitters():
    ctx = deterministic_context()
    a = make_radio(ctx, "a", Position(0, 2), zigbee_channel(24), Technology.ZIGBEE)
    b = make_radio(ctx, "b", Position(0, -2), zigbee_channel(24), Technology.ZIGBEE)
    observer = make_radio(ctx, "o", Position(0, 0), zigbee_channel(24), Technology.ZIGBEE)
    ctx.medium.transmit(a, 1e-3, 0.0, a.band, Technology.ZIGBEE)
    ctx.medium.transmit(b, 1e-3, 0.0, b.band, Technology.ZIGBEE)
    single = 0.0 - (40 + 30 * 0.30103)  # each at 2 m
    expected = mw_to_dbm(2 * dbm_to_mw(single) + dbm_to_mw(observer.noise_floor_dbm))
    assert observer.energy_dbm() == pytest.approx(expected, abs=0.1)


def test_technology_filter_on_energy():
    ctx = deterministic_context()
    w = make_radio(ctx, "w", Position(0, 0), wifi_channel(11), Technology.WIFI)
    z = make_radio(ctx, "z", Position(1, 0), zigbee_channel(24), Technology.ZIGBEE)
    observer = make_radio(ctx, "o", Position(0, 1), wifi_channel(11), Technology.WIFI)
    ctx.medium.transmit(w, 1e-3, 20.0, w.band, Technology.WIFI)
    ctx.medium.transmit(z, 1e-3, 0.0, z.band, Technology.ZIGBEE)
    wifi_only = observer.energy_dbm_of({Technology.WIFI})
    zigbee_only = observer.energy_dbm_of({Technology.ZIGBEE})
    both = observer.energy_dbm()
    assert wifi_only > zigbee_only
    assert both >= wifi_only


def test_busy_with_reports_active_technology():
    ctx = deterministic_context()
    a = make_radio(ctx, "a", Position(0, 0), zigbee_channel(24), Technology.ZIGBEE)
    make_radio(ctx, "b", Position(2, 0), zigbee_channel(24), Technology.ZIGBEE)
    ctx.medium.transmit(a, 1e-3, 0.0, a.band, Technology.ZIGBEE)
    assert ctx.medium.busy_with(Technology.ZIGBEE)
    assert not ctx.medium.busy_with(Technology.WIFI)
    ctx.sim.run()
    assert not ctx.medium.busy_with(Technology.ZIGBEE)


def test_transmit_rejects_nonpositive_duration():
    ctx = deterministic_context()
    a = make_radio(ctx, "a", Position(0, 0), zigbee_channel(24), Technology.ZIGBEE)
    with pytest.raises(ValueError):
        ctx.medium.transmit(a, 0.0, 0.0, a.band, Technology.ZIGBEE)

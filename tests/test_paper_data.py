"""Tests for the paper-data module and agreement scoring — plus checks that
our protocol constants match the paper's stated implementation values."""

import pytest

from repro.core import AllocatorConfig, BicordConfig, DetectorConfig, SignalingConfig
from repro.experiments.paper_data import (
    PAPER_HEADLINES,
    PAPER_TABLE1_PRECISION,
    PAPER_TABLE2_RECALL,
    location_ranking,
    packet_count_trend_agreement,
    pairwise_order_agreement,
)


# ----------------------------------------------------------------------
# The dataset itself
# ----------------------------------------------------------------------
def test_tables_are_complete_grids():
    for table in (PAPER_TABLE1_PRECISION, PAPER_TABLE2_RECALL):
        assert len(table) == 4 * 3 * 3
        for value in table.values():
            assert 0.0 < value <= 1.0


def test_paper_c_peaks_at_minus_one():
    """The paper's own data shows C's recall peaking at -1 dBm (4 packets)."""
    recalls = {p: PAPER_TABLE2_RECALL[("C", p, 4)] for p in (0.0, -1.0, -3.0)}
    assert recalls[-1.0] == max(recalls.values())


def test_paper_d_peaks_at_minus_three():
    recalls = {p: PAPER_TABLE2_RECALL[("D", p, 4)] for p in (0.0, -1.0, -3.0)}
    assert recalls[-3.0] == max(recalls.values())


def test_paper_a_is_best_location_at_full_power():
    assert location_ranking(PAPER_TABLE2_RECALL, 0.0, 4)[0] == "A"
    assert location_ranking(PAPER_TABLE1_PRECISION, 0.0, 4)[0] == "A"


def test_paper_trend_mostly_increasing_in_packets():
    score = packet_count_trend_agreement(
        PAPER_TABLE2_RECALL, PAPER_TABLE2_RECALL, tolerance=0.0
    )
    assert score > 0.8  # the paper's own data has a few dips


# ----------------------------------------------------------------------
# Scoring utilities
# ----------------------------------------------------------------------
def test_order_agreement_perfect_and_inverted():
    assert pairwise_order_agreement([1, 2, 3], [10, 20, 30]) == 1.0
    assert pairwise_order_agreement([1, 2, 3], [30, 20, 10]) == 0.0


def test_order_agreement_tolerance():
    # measured ties where the paper orders: forgiven within tolerance.
    assert pairwise_order_agreement([1, 2], [5.0, 5.0], tolerance=0.1) == 1.0
    assert pairwise_order_agreement([1, 2], [5.0, 5.0], tolerance=0.0) == 1.0
    assert pairwise_order_agreement([2, 1], [5.0, 5.2], tolerance=0.1) == 0.0


def test_order_agreement_validates_lengths():
    with pytest.raises(ValueError):
        pairwise_order_agreement([1], [1, 2])


# ----------------------------------------------------------------------
# Our constants match the paper's stated implementation values
# ----------------------------------------------------------------------
def test_detector_constants_match_paper():
    config = DetectorConfig()
    assert config.required_samples == 2  # "we set N = 2"
    assert config.window == pytest.approx(5e-3)  # "and T = 5 ms"


def test_allocator_constants_match_paper():
    config = AllocatorConfig()
    assert config.initial_whitespace in (30e-3, 40e-3)  # "30 or 40 ms"
    assert config.control_packet_time == pytest.approx(8e-3)  # "8 ms"
    assert config.end_silence == pytest.approx(20e-3)  # "20 ms"
    assert config.reestimation_period == pytest.approx(10.0)  # "10 s"
    assert config.estimation_margin_control_packets == 2.0  # "2 * T_c"


def test_signaling_constants_match_paper():
    config = SignalingConfig()
    assert config.control_packet_bytes == 120  # "set as 120 bytes"
    assert config.piggyback_data is False  # future work, off by default


def test_paper_channel_pairing_used_by_default():
    from repro.experiments import Calibration
    from repro.phy.spectrum import wifi_channel, zigbee_channel

    cal = Calibration()
    assert (cal.wifi_channel, cal.zigbee_channel) in ((11, 24), (13, 26))
    assert zigbee_channel(cal.zigbee_channel).overlaps(wifi_channel(cal.wifi_channel))


def test_paper_footnote_powers_available():
    from repro.experiments import LOCATION_POWERS_DBM

    assert LOCATION_POWERS_DBM == {"A": 0.0, "B": 0.0, "C": -1.0, "D": -3.0}


def test_headlines_present():
    assert PAPER_HEADLINES["delay_reduction_vs_ecc"] == pytest.approx(0.842)
    assert PAPER_HEADLINES["utilization_gain_vs_ecc_at_2s"] == pytest.approx(0.506)

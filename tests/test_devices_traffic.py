"""Tests for device wiring, interferers, energy metering, traffic sources."""

import pytest

from repro.devices import BluetoothLink, MicrowaveOven, WifiDevice, ZigbeeDevice
from repro.devices.energy import RX_CURRENT_MA, SUPPLY_VOLTAGE, EnergyMeter, tx_current_ma
from repro.phy.medium import Technology
from repro.phy.propagation import Position
from repro.traffic import PriorityWifiSource, WifiPacketSource, ZigbeeBurstSource

from .helpers import deterministic_context


# ----------------------------------------------------------------------
# Devices
# ----------------------------------------------------------------------
def test_wifi_device_wiring():
    ctx = deterministic_context()
    device = WifiDevice(ctx, "W", Position(0, 0), channel=13, with_csi=True)
    assert device.radio.band.center_mhz == 2472.0
    assert device.radio.mac is device.mac
    assert device.csi is not None
    assert device.position == Position(0, 0)


def test_zigbee_device_wiring():
    ctx = deterministic_context()
    device = ZigbeeDevice(ctx, "Z", Position(1, 1), channel=26, tx_power_dbm=-3.0)
    assert device.radio.band.center_mhz == 2480.0
    assert device.mac.tx_power_dbm == -3.0
    assert device.radio.energy_meter is device.energy
    assert device.rssi is not None


def test_zigbee_tx_charges_energy_meter():
    ctx = deterministic_context()
    sender = ZigbeeDevice(ctx, "ZS", Position(0, 0))
    ZigbeeDevice(ctx, "ZR", Position(2, 0))
    from repro.mac.frames import zigbee_data_frame

    frame = zigbee_data_frame("ZS", "ZR", 50)
    frame.seq = 1
    sender.mac.send(frame)
    ctx.sim.run(until=0.1)
    assert sender.energy.tx_mj > 0
    expected = frame.duration() * tx_current_ma(0.0) * SUPPLY_VOLTAGE
    assert sender.energy.tx_mj == pytest.approx(expected, rel=0.01)


# ----------------------------------------------------------------------
# Energy model
# ----------------------------------------------------------------------
def test_tx_current_interpolation():
    assert tx_current_ma(0.0) == pytest.approx(17.4)
    assert tx_current_ma(-25.0) == pytest.approx(8.5)
    assert tx_current_ma(-40.0) == pytest.approx(8.5)  # clamped below
    assert tx_current_ma(5.0) == pytest.approx(17.4)  # clamped above
    mid = tx_current_ma(-2.0)
    assert 15.2 < mid < 16.5  # between -3 and -1 dBm points


def test_rx_draws_more_than_tx_at_0dbm():
    """CC2420 quirk the paper's energy argument relies on."""
    assert RX_CURRENT_MA > tx_current_ma(0.0)


def test_energy_meter_accumulates_by_label():
    meter = EnergyMeter()
    meter.charge_tx(1e-3, 0.0, label="control")
    meter.charge_tx(2e-3, 0.0, label="data")
    meter.charge_listen(5e-3, label="cca")
    assert meter.total_mj == pytest.approx(meter.tx_mj + meter.listen_mj)
    assert set(meter.by_label) == {"control", "data", "cca"}
    assert meter.by_label["data"] > meter.by_label["control"]


# ----------------------------------------------------------------------
# Interferers
# ----------------------------------------------------------------------
def test_bluetooth_hops_rarely_hit_one_zigbee_channel():
    ctx = deterministic_context()
    link = BluetoothLink(ctx, "bt", Position(1, 0))
    zigbee = ZigbeeDevice(ctx, "Z", Position(0, 0), channel=24)
    readings = []

    def sample():
        readings.append(zigbee.radio.energy_dbm())

    link.start()
    for i in range(400):
        ctx.sim.schedule(i * 1e-3, sample)
    ctx.sim.run(until=0.4)
    link.stop()
    above_floor = sum(1 for r in readings if r > zigbee.radio.noise_floor_dbm + 10)
    # ~1-3 of 40 hop channels overlap ZigBee ch 24, and packets are short:
    # energy lands rarely, but not never.
    assert 0 < above_floor < len(readings) * 0.3


def test_microwave_duty_cycle():
    ctx = deterministic_context()
    oven = MicrowaveOven(ctx, "oven", Position(1, 0))
    zigbee = ZigbeeDevice(ctx, "Z", Position(0, 0), channel=24)
    readings = []
    for i in range(200):
        ctx.sim.schedule(i * 0.5e-3, lambda: readings.append(zigbee.radio.energy_dbm()))
    oven.start()
    ctx.sim.run(until=0.1)
    oven.stop()
    hot = sum(1 for r in readings if r > -60)
    duty = hot / len(readings)
    assert 0.3 < duty < 0.7  # ~50% mains duty cycle


def test_interferer_double_start_rejected():
    ctx = deterministic_context()
    link = BluetoothLink(ctx, "bt", Position(0, 0))
    link.start()
    with pytest.raises(RuntimeError):
        link.start()


# ----------------------------------------------------------------------
# Traffic sources
# ----------------------------------------------------------------------
def test_zigbee_burst_source_fixed_interval():
    ctx = deterministic_context()
    bursts = []
    ZigbeeBurstSource(
        ctx, bursts.append, n_packets=5, payload_bytes=50,
        interval_mean=0.1, poisson=False, max_bursts=5,
    )
    ctx.sim.run(until=1.0)
    assert len(bursts) == 5
    assert [b.created_at for b in bursts] == pytest.approx([0.0, 0.1, 0.2, 0.3, 0.4])
    assert all(b.n_packets == 5 and b.payload_bytes == 50 for b in bursts)
    assert [b.burst_id for b in bursts] == [1, 2, 3, 4, 5]


def test_zigbee_burst_source_poisson_mean():
    ctx = deterministic_context(seed=9)
    bursts = []
    ZigbeeBurstSource(ctx, bursts.append, interval_mean=0.05, max_bursts=200)
    ctx.sim.run(until=100.0)
    assert len(bursts) == 200
    gaps = [b2.created_at - b1.created_at for b1, b2 in zip(bursts, bursts[1:])]
    mean_gap = sum(gaps) / len(gaps)
    assert mean_gap == pytest.approx(0.05, rel=0.25)


def test_wifi_packet_source_respects_queue_limit():
    ctx = deterministic_context()
    device = WifiDevice(ctx, "W", Position(0, 0))
    device.mac.suppress_until(10.0)  # nothing drains
    source = WifiPacketSource(ctx, device.mac, "X", interval=1e-3, queue_limit=10)
    ctx.sim.run(until=0.1)
    assert device.mac.queue_length() == 10
    assert source.packets_dropped_at_source == source.packets_offered - 10


def test_wifi_packet_source_max_packets():
    ctx = deterministic_context()
    device = WifiDevice(ctx, "W", Position(0, 0))
    WifiDevice(ctx, "X", Position(1, 0))
    source = WifiPacketSource(ctx, device.mac, "X", interval=1e-3, max_packets=7)
    ctx.sim.run(until=1.0)
    assert source.packets_offered == 7
    assert device.mac.data_delivered == 7


def test_priority_source_phase_proportion():
    ctx = deterministic_context()
    device = WifiDevice(ctx, "W", Position(0, 0))
    device.mac.suppress_until(100.0)
    source = PriorityWifiSource(
        ctx, device.mac, "X", high_proportion=0.3, total_duration=10.0,
        phase_duration=0.5, queue_limit=10**9,
    )
    high_phases = sum(1 for p in source.phases if p.priority == 1)
    assert high_phases == 6  # 0.3 * 20 phases
    ctx.sim.run(until=10.5)
    frames = list(device.mac.queue)
    high = sum(1 for f in frames if f.priority == 1)
    assert high / len(frames) == pytest.approx(0.3, abs=0.05)


def test_priority_source_rejects_bad_proportion():
    ctx = deterministic_context()
    device = WifiDevice(ctx, "W", Position(0, 0))
    with pytest.raises(ValueError):
        PriorityWifiSource(ctx, device.mac, "X", high_proportion=1.5)


def test_burst_source_stop():
    ctx = deterministic_context()
    bursts = []
    source = ZigbeeBurstSource(ctx, bursts.append, interval_mean=0.1, poisson=False)
    ctx.sim.schedule(0.35, source.stop)
    ctx.sim.run(until=1.0)
    assert len(bursts) == 4  # t=0, 0.1, 0.2, 0.3

"""Tests for the Bianchi DCF model and its agreement with the simulator."""

import math

import pytest

from repro.analysis import saturation_throughput, solve_fixed_point
from repro.devices import WifiDevice
from repro.phy.propagation import Position
from repro.traffic import WifiPacketSource

from .helpers import deterministic_context


# ----------------------------------------------------------------------
# Model sanity
# ----------------------------------------------------------------------
def test_single_station_never_collides():
    tau, p = solve_fixed_point(1)
    assert p == pytest.approx(0.0)
    # With no collisions, tau = 2/(W+1) = 2/17.
    assert tau == pytest.approx(2.0 / 17.0, rel=1e-6)


def test_collision_probability_grows_with_stations():
    ps = [solve_fixed_point(n)[1] for n in (2, 5, 10, 20)]
    assert all(a < b for a, b in zip(ps, ps[1:]))


def test_tau_decreases_with_stations():
    taus = [solve_fixed_point(n)[0] for n in (1, 2, 5, 10, 20)]
    assert all(a > b for a, b in zip(taus, taus[1:]))


def test_throughput_peaks_then_decays():
    thr = [saturation_throughput(n).throughput_bps for n in (1, 2, 5, 10, 30)]
    # Mild non-monotonicity near the top, clear decay at high contention.
    assert thr[-1] < thr[1]
    assert all(t > 0 for t in thr)


def test_throughput_increases_with_payload():
    small = saturation_throughput(5, payload_bytes=200).throughput_bps
    large = saturation_throughput(5, payload_bytes=1500).throughput_bps
    assert large > small


def test_invalid_station_count():
    with pytest.raises(ValueError):
        solve_fixed_point(0)


# ----------------------------------------------------------------------
# Simulator agreement
# ----------------------------------------------------------------------
def simulate_saturated(n, payload=1000, rate=24.0, duration=1.0, seed=1):
    ctx = deterministic_context(seed=seed)
    WifiDevice(ctx, "AP", Position(0, 0), data_rate_mbps=rate)
    senders = []
    for i in range(n):
        angle = 2 * math.pi * i / max(n, 1)
        device = WifiDevice(
            ctx, f"S{i}",
            Position(0.5 * math.cos(angle), 0.5 * math.sin(angle)),
            data_rate_mbps=rate,
        )
        WifiPacketSource(ctx, device.mac, "AP", payload_bytes=payload,
                         interval=1e-4, queue_limit=10**6, name=f"src{i}")
        senders.append(device)
    ctx.sim.run(until=duration)
    bits = 8 * payload * sum(s.mac.data_delivered for s in senders)
    sent = sum(s.mac.data_sent for s in senders)
    missed = sum(s.mac.acks_missed for s in senders)
    return bits / duration, missed / max(sent, 1)


@pytest.mark.parametrize("n", [1, 2, 5])
def test_simulated_dcf_matches_bianchi(n):
    model = saturation_throughput(n, payload_bytes=1000, rate_mbps=24.0)
    throughput, collision_rate = simulate_saturated(n)
    assert throughput == pytest.approx(model.throughput_bps, rel=0.08)
    assert collision_rate == pytest.approx(model.p_collision, abs=0.05)


def test_simulated_collisions_appear_with_contention():
    _thr, collision_rate = simulate_saturated(5)
    assert collision_rate > 0.1

"""Bianchi's saturation model for 802.11 DCF (Bianchi, JSAC 2000).

Used to *validate the MAC substrate*: the analytical saturation throughput
of n contending stations should match what our simulated DCF delivers.  A
coexistence study lives or dies by its MAC model, so this cross-check is
part of the test/benchmark suite rather than documentation hand-waving.

The model solves the classic fixed point

    tau = 2(1-2p) / ((1-2p)(W+1) + p W (1-(2p)^m))
    p   = 1 - (1-tau)^(n-1)

where ``W = CW_min+1`` and ``m`` the number of doublings, then converts the
per-slot transmission/collision probabilities into throughput using the
slot/success/collision durations of our PHY timing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..mac.frames import WIFI_ACK_MPDU_BYTES, WIFI_MAC_OVERHEAD_BYTES
from ..mac.wifi import CW_MAX, CW_MIN, DIFS_S, SIFS_S, SLOT_S
from ..phy.modulation import wifi_frame_duration, wifi_rate


@dataclass(frozen=True)
class BianchiResult:
    n_stations: int
    tau: float  # per-slot transmission probability of one station
    p_collision: float  # conditional collision probability
    throughput_bps: float  # aggregate payload throughput
    channel_busy_fraction: float


def _tau_given_p(p: float, w: int, m: int) -> float:
    """Bianchi's tau(p); handles the removable singularity at p = 1/2."""
    if abs(1.0 - 2.0 * p) < 1e-12:
        # lim_{p->1/2} of the expression: denominator -> (W+1-... ) ; evaluate
        # by the standard closed form with p slightly perturbed.
        p = 0.5 - 1e-9
    denominator = (1 - 2 * p) * (w + 1) + p * w * (1 - (2 * p) ** m)
    if denominator <= 0:
        return 1e-12
    return 2.0 * (1.0 - 2.0 * p) / denominator


def solve_fixed_point(n_stations: int, cw_min: int = CW_MIN, cw_max: int = CW_MAX,
                      tolerance: float = 1e-12):
    """Solve Bianchi's (tau, p) fixed point by bisection.

    ``g(tau) = tau - tau_model(1 - (1-tau)^(n-1))`` is monotone increasing in
    tau (tau_model decreases as collisions grow), so the root is unique and
    bisection always converges — unlike the plain iteration, which oscillates
    at high contention.
    """
    if n_stations < 1:
        raise ValueError("need at least one station")
    w = cw_min + 1
    m = int(round(math.log2((cw_max + 1) / w)))

    def g(tau: float) -> float:
        p = 1.0 - (1.0 - tau) ** (n_stations - 1)
        return tau - _tau_given_p(p, w, m)

    lo, hi = 1e-9, 1.0 - 1e-9
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if g(mid) > 0:
            hi = mid
        else:
            lo = mid
        if hi - lo < tolerance:
            break
    tau = 0.5 * (lo + hi)
    p = 1.0 - (1.0 - tau) ** (n_stations - 1)
    return tau, p


def saturation_throughput(
    n_stations: int,
    payload_bytes: int = 1000,
    rate_mbps: float = 24.0,
    basic_rate_mbps: float = 6.0,
) -> BianchiResult:
    """Aggregate saturation throughput of ``n_stations`` (basic access)."""
    tau, p = solve_fixed_point(n_stations)
    p_tr = 1.0 - (1.0 - tau) ** n_stations  # some station transmits
    if p_tr <= 0.0:
        return BianchiResult(n_stations, tau, p, 0.0, 0.0)
    p_s = n_stations * tau * (1.0 - tau) ** (n_stations - 1) / p_tr  # success | tx

    rate = wifi_rate(rate_mbps)
    basic = wifi_rate(basic_rate_mbps)
    t_data = wifi_frame_duration(payload_bytes + WIFI_MAC_OVERHEAD_BYTES, rate)
    t_ack = wifi_frame_duration(WIFI_ACK_MPDU_BYTES, basic)
    t_success = t_data + SIFS_S + t_ack + DIFS_S
    t_collision = t_data + DIFS_S  # losers time out, then resume after DIFS

    payload_bits = 8.0 * payload_bytes
    expected_slot = (
        (1.0 - p_tr) * SLOT_S
        + p_tr * p_s * t_success
        + p_tr * (1.0 - p_s) * t_collision
    )
    throughput = p_tr * p_s * payload_bits / expected_slot
    busy = (p_tr * p_s * t_success + p_tr * (1 - p_s) * t_collision) / expected_slot
    return BianchiResult(n_stations, tau, p, throughput, busy)

"""White-space (idle-gap) statistics of a channel.

Pre-CTC coexistence schemes live or die by the *natural* idle gaps Wi-Fi
leaves behind (Sec. III-A).  This module reconstructs the busy/idle
structure of a run from the medium trace and computes the gap distribution
— which is also the quantitative "why" behind the predictive baseline's
starvation: under the paper's saturated Wi-Fi workload, essentially no gap
fits a single ZigBee exchange.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..phy.medium import Technology
from ..sim.trace import TraceRecorder


def merge_intervals(intervals: Iterable[Tuple[float, float]]) -> List[Tuple[float, float]]:
    """Union of possibly-overlapping [start, end) intervals, sorted."""
    ordered = sorted((s, e) for s, e in intervals if e > s)
    merged: List[Tuple[float, float]] = []
    for start, end in ordered:
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def busy_intervals_from_trace(
    trace: TraceRecorder,
    technologies: Optional[Sequence[str]] = None,
) -> List[Tuple[float, float]]:
    """Busy intervals recorded as ``medium.tx_start`` events (with durations).

    Requires the run to have stored the ``medium.tx_start`` trace kind.
    """
    wanted = set(technologies) if technologies is not None else None
    intervals = []
    for record in trace.of_kind("medium.tx_start"):
        if wanted is not None and record["technology"] not in wanted:
            continue
        intervals.append((record.time, record.time + record["duration"]))
    return merge_intervals(intervals)


def gaps_between(
    busy: Sequence[Tuple[float, float]],
    start: float,
    end: float,
) -> List[float]:
    """Idle gap lengths within [start, end] around the busy intervals."""
    if end <= start:
        raise ValueError("end must be after start")
    gaps: List[float] = []
    cursor = start
    for lo, hi in busy:
        if hi <= start:
            continue
        if lo >= end:
            break
        if lo > cursor:
            gaps.append(min(lo, end) - cursor)
        cursor = max(cursor, hi)
    if cursor < end:
        gaps.append(end - cursor)
    return gaps


@dataclass(frozen=True)
class GapStatistics:
    """Distribution summary of channel idle gaps."""

    n_gaps: int
    total_idle: float
    mean: float
    median: float
    p90: float
    longest: float
    #: Fraction of *idle time* inside gaps at least ``need`` long.
    usable_fraction: float
    need: float

    @classmethod
    def from_gaps(cls, gaps: Sequence[float], need: float) -> "GapStatistics":
        if not gaps:
            return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, need)
        array = np.asarray(gaps, dtype=float)
        total = float(array.sum())
        usable = float(array[array >= need].sum())
        return cls(
            n_gaps=len(gaps),
            total_idle=total,
            mean=float(array.mean()),
            median=float(np.median(array)),
            p90=float(np.percentile(array, 90.0)),
            longest=float(array.max()),
            usable_fraction=usable / total if total > 0 else 0.0,
            need=need,
        )


def analyze_trace(
    trace: TraceRecorder,
    start: float,
    end: float,
    need: float,
    technologies: Optional[Sequence[str]] = (Technology.WIFI.value,),
) -> GapStatistics:
    """One-call pipeline: trace -> busy intervals -> gap statistics."""
    busy = busy_intervals_from_trace(trace, technologies)
    gaps = gaps_between(busy, start, end)
    return GapStatistics.from_gaps(gaps, need)

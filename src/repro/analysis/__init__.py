"""Analytical models and trace analyses for the simulator substrate."""

from .bianchi import BianchiResult, saturation_throughput, solve_fixed_point
from .gaps import (
    GapStatistics,
    analyze_trace,
    busy_intervals_from_trace,
    gaps_between,
    merge_intervals,
)

__all__ = [
    "BianchiResult",
    "saturation_throughput",
    "solve_fixed_point",
    "GapStatistics",
    "analyze_trace",
    "busy_intervals_from_trace",
    "gaps_between",
    "merge_intervals",
]

"""Passive white-space prediction baseline (no CTC at all).

Pre-CTC systems (e.g. Huang et al., ICNP'10) let ZigBee nodes *locally*
model Wi-Fi idle gaps and transmit only when the predicted remaining gap
fits a packet exchange.  This captures the class of approaches the paper
dismisses first (Sec. III-A): purely local channel assessment, no
interaction with the interferer.

The node samples its RSSI register on a fixed poll interval, segments the
readings into busy/idle runs, and keeps the empirical distribution of the
last ``history`` idle-gap lengths.  When the channel has been idle for a
small guard time it transmits if the q-th percentile of observed gaps
exceeds the exchange time of the head-of-line packet — a conservative
"will the gap last?" predictor.  Under saturated Wi-Fi, gaps are almost
always too short, so the node starves exactly as the paper describes.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

import numpy as np

from ..devices.zigbee_device import ZigbeeDevice
from ..mac.frames import Frame, zigbee_data_frame
from ..sim.process import Process
from ..traffic.generators import Burst


class PredictiveNode:
    """ZigBee sender using local white-space prediction only."""

    def __init__(
        self,
        device: ZigbeeDevice,
        receiver: str,
        poll_interval: float = 0.5e-3,
        history: int = 50,
        percentile: float = 25.0,
        guard_time: float = 1e-3,
        busy_margin_db: float = 10.0,
        inter_packet_gap: float = 2e-3,
    ):
        self.device = device
        self.receiver = receiver
        self.sim = device.ctx.sim
        self.poll_interval = poll_interval
        self.percentile = percentile
        self.guard_time = guard_time
        self.busy_margin_db = busy_margin_db
        self.inter_packet_gap = inter_packet_gap
        self._gaps: Deque[float] = deque(maxlen=history)
        self._idle_since: Optional[float] = None
        self._was_busy = True
        self._pending: Deque[Tuple[int, float, int]] = deque()
        self._seq = 0
        self._inflight: Optional[Frame] = None
        self._outstanding_by_burst = {}
        self._burst_created = {}
        mac = device.mac
        mac.on_send_success = self._on_send_success
        mac.on_send_failure = self._on_send_failure
        # Statistics
        self.packet_delays: List[float] = []
        self.packets_delivered = 0
        self.delivered_payload_bytes = 0
        self.bursts_completed = 0
        self.burst_latencies: List[float] = []
        self.send_failures = 0
        self.transmit_opportunities = 0
        self._process = Process(self.sim, self._poll(), name=f"predictive/{device.name}")

    def stop(self) -> None:
        self._process.stop()

    # ------------------------------------------------------------------
    def offer_burst(self, burst: Burst) -> None:
        for _ in range(burst.n_packets):
            self._pending.append((burst.payload_bytes, burst.created_at, burst.burst_id))
        self._outstanding_by_burst[burst.burst_id] = burst.n_packets
        self._burst_created[burst.burst_id] = burst.created_at

    @property
    def outstanding_packets(self) -> int:
        # The in-flight frame is still at the head of the queue (it is only
        # popped on success), so the queue length alone is the right count.
        return len(self._pending)

    # ------------------------------------------------------------------
    def _channel_busy(self) -> bool:
        radio = self.device.radio
        return radio.energy_dbm() >= radio.noise_floor_dbm + self.busy_margin_db

    def _predicted_gap(self) -> float:
        if len(self._gaps) < 5:
            return 0.0
        return float(np.percentile(np.asarray(self._gaps), self.percentile))

    def _exchange_time(self, payload: int) -> float:
        frame = zigbee_data_frame(self.device.name, self.receiver, payload)
        return frame.duration() + 2.5e-3

    def _poll(self):
        meter = self.device.radio.energy_meter
        while True:
            if meter is not None:
                # Each RSSI poll keeps the receiver on for one measurement
                # (8 symbols) — the idle-listening cost of passive channel
                # assessment the paper's energy argument highlights.
                meter.charge_listen(128e-6, label="rssi_poll")
            busy = self._channel_busy() or self.device.radio.is_transmitting
            now = self.sim.now
            if busy:
                if self._idle_since is not None:
                    self._gaps.append(now - self._idle_since)
                self._idle_since = None
            else:
                if self._idle_since is None:
                    self._idle_since = now
                elif (
                    now - self._idle_since >= self.guard_time
                    and self._pending
                    and self._inflight is None
                ):
                    payload = self._pending[0][0]
                    needed = self._exchange_time(payload)
                    idle_run = now - self._idle_since
                    # Transmit if the gap distribution predicts enough time,
                    # or if the current idle run has itself already lasted
                    # longer than one exchange (covers quiet channels where
                    # no gap statistics exist).
                    if self._predicted_gap() >= needed or idle_run >= needed:
                        self.transmit_opportunities += 1
                        self._send_next()
            yield self.poll_interval

    # ------------------------------------------------------------------
    def _send_next(self) -> None:
        if self._inflight is not None or not self._pending:
            return
        payload, created_at, burst_id = self._pending[0]
        self._seq += 1
        frame = zigbee_data_frame(
            self.device.name, self.receiver, payload, created_at=created_at,
            burst_id=burst_id,
        )
        frame.seq = self._seq
        self._inflight = frame
        self.device.mac.send(frame)

    def _on_send_success(self, frame: Frame) -> None:
        if frame is not self._inflight:
            return
        self._inflight = None
        self._pending.popleft()
        self.packet_delays.append(self.sim.now - frame.created_at)
        self.packets_delivered += 1
        self.delivered_payload_bytes += frame.payload_bytes
        burst_id = frame.meta.get("burst_id")
        if burst_id is not None:
            remaining = self._outstanding_by_burst.get(burst_id, 0) - 1
            self._outstanding_by_burst[burst_id] = remaining
            if remaining == 0:
                self.bursts_completed += 1
                self.burst_latencies.append(
                    self.sim.now - self._burst_created.pop(burst_id)
                )
        if self._pending and not self._channel_busy():
            self.sim.schedule(self.inter_packet_gap, self._send_next)

    def _on_send_failure(self, frame: Frame, reason: str) -> None:
        if frame is not self._inflight:
            return
        self._inflight = None
        self.send_failures += 1
        # Back to watching for the next predicted gap.

"""Bidirectional coordination over *slow* packet-level CTC (Sec. III-B).

The paper's central design argument is that existing ZigBee→Wi-Fi CTC
schemes cannot carry the channel request fast enough: packet-level CTC needs
tight time-window synchronization first (AdaComm's Barker-code sync alone
takes ≈110 ms), which "would neutralize the benefits of the coordination
scheme" — a 5-packet burst only needs ~30 ms of channel time.

This baseline implements exactly that strawman so the claim can be
*measured*: the protocol structure is BiCord's (request → white space →
learning), but each request travels over a modeled packet-level CTC channel
with a synchronization+decode latency and a delivery probability, instead
of BiCord's sub-5 ms CSI signaling.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from ..core.config import BicordConfig
from ..core.whitespace import AdaptiveWhitespaceAllocator
from ..devices.wifi_device import WifiDevice
from ..devices.zigbee_device import ZigbeeDevice
from ..mac.frames import Frame, zigbee_data_frame
from ..phy.medium import WIFI_ONLY
from ..sim.engine import Event
from ..traffic.generators import Burst

#: AdaComm's measured synchronization time (Sec. III-B).
DEFAULT_CTC_LATENCY_S = 110e-3


class SlowCtcCoordinator:
    """Wi-Fi side: grants adaptive white spaces on (late) CTC requests."""

    def __init__(
        self,
        device: WifiDevice,
        config: Optional[BicordConfig] = None,
    ):
        self.device = device
        self.sim = device.ctx.sim
        self.config = config or BicordConfig()
        self.allocator = AdaptiveWhitespaceAllocator(self.config.allocator)
        self._whitespace_until = 0.0
        self._burst_watch: Optional[Event] = None
        self.grants_issued = 0
        self.whitespace_airtime = 0.0
        #: Nodes to notify when a white space opens.  The *downlink* CTC
        #: (Wi-Fi -> ZigBee, WEBee-class emulation) is fast and reliable —
        #: only the uplink request channel is slow in this baseline.
        self.nodes: List["SlowCtcNode"] = []
        device.mac.sent_listeners.append(self._on_frame_sent)

    def register(self, node: "SlowCtcNode") -> None:
        self.nodes.append(node)

    def on_ctc_request(self) -> None:
        """A (delayed) channel request arrived over the CTC side channel."""
        now = self.sim.now
        if now < self._whitespace_until:
            return
        if self._burst_watch is not None and self._burst_watch.pending:
            self._burst_watch.cancel()
            self._burst_watch = None
        duration = self.allocator.grant(now)
        self.grants_issued += 1
        self.device.mac.reserve_whitespace(duration, slow_ctc=True)

    def _on_frame_sent(self, frame: Frame) -> None:
        if not frame.meta.get("slow_ctc"):
            return
        duration = frame.meta.get("nav_duration", 0.0)
        self._whitespace_until = self.sim.now + duration
        self.whitespace_airtime += duration
        for node in self.nodes:
            node.on_whitespace(self.sim.now, self._whitespace_until)
        watch_at = self._whitespace_until + self.config.allocator.end_silence
        self._burst_watch = self.sim.schedule_at(watch_at, self._check_burst_end)

    def _check_burst_end(self) -> None:
        self._burst_watch = None
        self.allocator.on_burst_end(self.sim.now)

    def stop(self) -> None:
        if self._burst_watch is not None:
            self._burst_watch.cancel()


class SlowCtcNode:
    """ZigBee side: BiCord's loop, but requests ride a slow CTC channel."""

    def __init__(
        self,
        device: ZigbeeDevice,
        receiver: str,
        coordinator: SlowCtcCoordinator,
        ctc_latency: float = DEFAULT_CTC_LATENCY_S,
        ctc_reliability: float = 0.9,
        config: Optional[BicordConfig] = None,
    ):
        self.device = device
        self.receiver = receiver
        self.coordinator = coordinator
        coordinator.register(self)
        self.ctc_latency = ctc_latency
        self.ctc_reliability = ctc_reliability
        self.sim = device.ctx.sim
        self.config = config or BicordConfig()
        self._rng = device.ctx.streams.stream(f"slow-ctc/{device.name}")
        mac = device.mac
        mac.max_frame_retries = 1
        mac.max_csma_backoffs = 2
        mac.on_send_success = self._on_send_success
        mac.on_send_failure = self._on_send_failure
        self._pending: Deque[Tuple[int, float, int]] = deque()
        self._seq = 0
        self._inflight: Optional[Frame] = None
        self._request_outstanding = False
        self._outstanding_by_burst = {}
        self._burst_created = {}
        # Statistics
        self.packet_delays: List[float] = []
        self.packets_delivered = 0
        self.delivered_payload_bytes = 0
        self.bursts_completed = 0
        self.burst_latencies: List[float] = []
        self.requests_sent = 0
        self.requests_lost = 0

    # ------------------------------------------------------------------
    def offer_burst(self, burst: Burst) -> None:
        was_idle = not self._pending and self._inflight is None
        for _ in range(burst.n_packets):
            self._pending.append((burst.payload_bytes, burst.created_at, burst.burst_id))
        self._outstanding_by_burst[burst.burst_id] = burst.n_packets
        self._burst_created[burst.burst_id] = burst.created_at
        if was_idle:
            self._send_next()

    @property
    def outstanding_packets(self) -> int:
        return len(self._pending)

    # ------------------------------------------------------------------
    def _send_next(self) -> None:
        if self._inflight is not None or not self._pending:
            return
        payload, created_at, burst_id = self._pending[0]
        self._seq += 1
        frame = zigbee_data_frame(
            self.device.name, self.receiver, payload, created_at=created_at,
            burst_id=burst_id,
        )
        frame.seq = self._seq
        self._inflight = frame
        self.device.mac.send(frame)

    def _on_send_success(self, frame: Frame) -> None:
        if frame is not self._inflight:
            return
        self._inflight = None
        self._pending.popleft()
        self.packet_delays.append(self.sim.now - frame.created_at)
        self.packets_delivered += 1
        self.delivered_payload_bytes += frame.payload_bytes
        burst_id = frame.meta.get("burst_id")
        if burst_id is not None:
            remaining = self._outstanding_by_burst.get(burst_id, 0) - 1
            self._outstanding_by_burst[burst_id] = remaining
            if remaining == 0:
                self.bursts_completed += 1
                self.burst_latencies.append(
                    self.sim.now - self._burst_created.pop(burst_id)
                )
        if self._pending:
            self.sim.schedule(self.config.signaling.inter_packet_gap, self._send_next)

    def _on_send_failure(self, frame: Frame, reason: str) -> None:
        if frame is not self._inflight:
            return
        if self._wifi_present():
            self._request_channel()
        self.sim.schedule(self.config.signaling.retry_backoff, self._retry)

    def _wifi_present(self) -> bool:
        energy = self.device.radio.energy_dbm_of(WIFI_ONLY)
        floor = self.device.radio.noise_floor_dbm
        return energy >= floor + self.config.signaling.wifi_energy_margin_db

    def _request_channel(self) -> None:
        """Send the request over the slow CTC channel (once per outage)."""
        if self._request_outstanding:
            return
        self._request_outstanding = True
        self.requests_sent += 1
        if self._rng.random() < self.ctc_reliability:
            self.sim.schedule(self.ctc_latency, self._request_delivered)
        else:
            self.requests_lost += 1
            # The node notices nothing happened and tries again later.
            self.sim.schedule(self.ctc_latency, self._request_expired)

    def _request_delivered(self) -> None:
        self._request_outstanding = False
        self.coordinator.on_ctc_request()

    def _request_expired(self) -> None:
        self._request_outstanding = False

    def on_whitespace(self, start: float, end: float) -> None:
        """Fast downlink CTC: a white space just opened — use it now."""
        self.sim.schedule(1e-3, self._retry)

    def _retry(self) -> None:
        frame = self._inflight
        if frame is None:
            return
        if self.device.mac._current is not None:
            return
        self.device.mac.send(frame)

"""Baseline coexistence schemes BiCord is compared against."""

from .csma import CsmaNode
from .ecc import EccCoordinator, EccNode
from .fec_csma import FecCsmaNode
from .predictive import PredictiveNode
from .slow_ctc import SlowCtcCoordinator, SlowCtcNode

__all__ = [
    "CsmaNode",
    "EccCoordinator",
    "EccNode",
    "FecCsmaNode",
    "PredictiveNode",
    "SlowCtcCoordinator",
    "SlowCtcNode",
]

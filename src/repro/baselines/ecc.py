"""ECC baseline (Yin et al., MobiSys'18) — unidirectional coordination.

ECC's Wi-Fi device *voluntarily* reserves white spaces of a **fixed,
predefined length** on a **fixed period** and announces each one to nearby
ZigBee nodes through physical-layer CTC (WEBee-style emulation).  ZigBee
nodes cannot ask for the channel; they buffer traffic and wait for the next
announcement, then transmit inside the announced window, stopping early when
the remaining window cannot fit another packet exchange.

This reproduces the two pathologies BiCord attacks (Sec. III-A):

* **waste** — white spaces are reserved whether or not ZigBee has data, and
  may be longer than needed;
* **delay** — a burst arriving just after a white space waits most of a
  period, and a burst longer than the window is smeared across several
  periods.

The CTC announcement is modeled as a broadcast delivered to each registered
node with probability ``ctc_reliability`` (WEBee-class CTC is fast but not
perfect); a missed announcement means the node sits out that white space.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from ..devices.wifi_device import WifiDevice
from ..devices.zigbee_device import ZigbeeDevice
from ..mac.frames import Frame, zigbee_data_frame
from ..sim.process import Process
from ..traffic.generators import Burst


class EccCoordinator:
    """Wi-Fi side of ECC: periodic fixed white spaces + CTC announcements."""

    def __init__(
        self,
        device: WifiDevice,
        whitespace: float = 20e-3,
        period: float = 100e-3,
        ctc_reliability: float = 0.95,
        grant_policy=None,
    ):
        if whitespace >= period:
            raise ValueError("whitespace must be shorter than the period")
        self.device = device
        self.sim = device.ctx.sim
        self.trace = device.ctx.trace
        self.whitespace = whitespace
        self.period = period
        self.ctc_reliability = ctc_reliability
        self.grant_policy = grant_policy
        self.nodes: List["EccNode"] = []
        self._rng = device.ctx.streams.stream(f"ecc/{device.name}")
        self.whitespaces_issued = 0
        self.whitespace_airtime = 0.0
        self.skipped = 0
        self._process = Process(self.sim, self._run(), name=f"ecc/{device.name}")

    def register(self, node: "EccNode") -> None:
        self.nodes.append(node)

    def stop(self) -> None:
        self._process.stop()

    def _run(self):
        while True:
            yield self.period
            if self.grant_policy is not None and not self.grant_policy():
                self.skipped += 1
                continue
            self._issue_whitespace()

    def _issue_whitespace(self) -> None:
        self.whitespaces_issued += 1
        self.whitespace_airtime += self.whitespace
        self.device.mac.reserve_whitespace(self.whitespace, ecc=True)
        # CTC notification: the white space starts once the CTS is on the
        # air; announce a conservative start time (now + CTS access delay).
        start = self.sim.now + 1.5e-3
        end = self.sim.now + self.whitespace
        self.trace.record(self.sim.now, "ecc.whitespace", start=start, end=end)
        for node in self.nodes:
            if self._rng.random() < self.ctc_reliability:
                node.on_ctc_notification(start, end)


class EccNode:
    """ZigBee side of ECC: buffer bursts, transmit inside announced windows."""

    def __init__(self, device: ZigbeeDevice, receiver: str, inter_packet_gap: float = 2e-3):
        self.device = device
        self.receiver = receiver
        self.sim = device.ctx.sim
        self.trace = device.ctx.trace
        self.inter_packet_gap = inter_packet_gap
        self._pending: Deque[Tuple[int, float, int]] = deque()
        self._seq = 0
        self._inflight: Optional[Frame] = None
        self._window_end = 0.0
        self._outstanding_by_burst = {}
        self._burst_created = {}
        mac = device.mac
        mac.on_send_success = self._on_send_success
        mac.on_send_failure = self._on_send_failure
        # Statistics
        self.packet_delays: List[float] = []
        self.packets_delivered = 0
        self.delivered_payload_bytes = 0
        self.bursts_completed = 0
        self.burst_latencies: List[float] = []
        self.windows_used = 0
        self.send_failures = 0

    # ------------------------------------------------------------------
    def offer_burst(self, burst: Burst) -> None:
        for _ in range(burst.n_packets):
            self._pending.append((burst.payload_bytes, burst.created_at, burst.burst_id))
        self._outstanding_by_burst[burst.burst_id] = burst.n_packets
        self._burst_created[burst.burst_id] = burst.created_at

    @property
    def outstanding_packets(self) -> int:
        # The in-flight frame is still at the head of the queue (it is only
        # popped on success), so the queue length alone is the right count.
        return len(self._pending)

    def on_ctc_notification(self, start: float, end: float) -> None:
        """A white space [start, end] was announced via CTC."""
        if not self._pending:
            return
        self.windows_used += 1
        self._window_end = end
        delay = max(0.0, start - self.sim.now)
        self.sim.schedule(delay, self._send_next)

    # ------------------------------------------------------------------
    def _exchange_time(self, payload: int) -> float:
        frame = zigbee_data_frame(self.device.name, self.receiver, payload)
        return frame.duration() + 2.5e-3  # ACK + turnarounds + CSMA margin

    def _send_next(self) -> None:
        if self._inflight is not None or not self._pending:
            return
        payload, created_at, burst_id = self._pending[0]
        if self.sim.now + self._exchange_time(payload) > self._window_end:
            return  # the rest of the burst waits for the next white space
        self._seq += 1
        frame = zigbee_data_frame(
            self.device.name, self.receiver, payload, created_at=created_at,
            burst_id=burst_id,
        )
        frame.seq = self._seq
        self._inflight = frame
        self.device.mac.send(frame)

    def _on_send_success(self, frame: Frame) -> None:
        if frame is not self._inflight:
            return
        self._inflight = None
        self._pending.popleft()
        self.packet_delays.append(self.sim.now - frame.created_at)
        self.packets_delivered += 1
        self.delivered_payload_bytes += frame.payload_bytes
        burst_id = frame.meta.get("burst_id")
        if burst_id is not None:
            remaining = self._outstanding_by_burst.get(burst_id, 0) - 1
            self._outstanding_by_burst[burst_id] = remaining
            if remaining == 0:
                self.bursts_completed += 1
                self.burst_latencies.append(
                    self.sim.now - self._burst_created.pop(burst_id)
                )
        if self._pending:
            self.sim.schedule(self.inter_packet_gap, self._send_next)

    def _on_send_failure(self, frame: Frame, reason: str) -> None:
        if frame is not self._inflight:
            return
        self._inflight = None
        self.send_failures += 1
        # The packet stays at the head of the queue; the next white space
        # (or the rest of this one) will retry it.
        if self._pending:
            self.sim.schedule(self.inter_packet_gap, self._send_next)

"""No-coordination baseline: plain 802.15.4 CSMA/CA under interference.

The ZigBee node simply attempts every packet through the standard MAC with
its full retry budget.  Under saturated Wi-Fi this reproduces the paper's
motivation numbers (packet loss of 95%+, Sec. VIII-A): CCA almost never
finds a long-enough gap, and packets that do launch collide with the next
Wi-Fi frame.

A bounded number of application-level retries (with randomized backoff) is
included, as any real deployment would have; packets that exhaust it are
dropped and counted.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from ..devices.zigbee_device import ZigbeeDevice
from ..mac.frames import Frame, zigbee_data_frame
from ..traffic.generators import Burst


class CsmaNode:
    """ZigBee sender with no cross-technology coordination."""

    def __init__(
        self,
        device: ZigbeeDevice,
        receiver: str,
        app_retries: int = 5,
        retry_backoff: float = 20e-3,
        inter_packet_gap: float = 2e-3,
    ):
        self.device = device
        self.receiver = receiver
        self.sim = device.ctx.sim
        self.app_retries = app_retries
        self.retry_backoff = retry_backoff
        self.inter_packet_gap = inter_packet_gap
        self._pending: Deque[Tuple[int, float, int]] = deque()
        self._seq = 0
        self._inflight: Optional[Frame] = None
        self._attempts = 0
        self._rng = device.ctx.streams.stream(f"csma-node/{device.name}")
        self._outstanding_by_burst = {}
        self._burst_created = {}
        mac = device.mac
        mac.on_send_success = self._on_send_success
        mac.on_send_failure = self._on_send_failure
        # Statistics
        self.packet_delays: List[float] = []
        self.packets_delivered = 0
        self.packets_dropped = 0
        self.delivered_payload_bytes = 0
        self.bursts_completed = 0
        self.burst_latencies: List[float] = []

    def offer_burst(self, burst: Burst) -> None:
        was_idle = not self._pending and self._inflight is None
        for _ in range(burst.n_packets):
            self._pending.append((burst.payload_bytes, burst.created_at, burst.burst_id))
        self._outstanding_by_burst[burst.burst_id] = burst.n_packets
        self._burst_created[burst.burst_id] = burst.created_at
        if was_idle:
            self._send_next()

    @property
    def outstanding_packets(self) -> int:
        # The in-flight frame is still at the head of the queue (it is only
        # popped on success), so the queue length alone is the right count.
        return len(self._pending)

    # ------------------------------------------------------------------
    def _send_next(self) -> None:
        if self._inflight is not None or not self._pending:
            return
        payload, created_at, burst_id = self._pending[0]
        self._seq += 1
        frame = zigbee_data_frame(
            self.device.name, self.receiver, payload, created_at=created_at,
            burst_id=burst_id,
        )
        frame.seq = self._seq
        self._inflight = frame
        self._attempts = 0
        self.device.mac.send(frame)

    def _account_done(self, frame: Frame, delivered: bool) -> None:
        self._inflight = None
        self._pending.popleft()
        burst_id = frame.meta.get("burst_id")
        if burst_id is not None:
            remaining = self._outstanding_by_burst.get(burst_id, 0) - 1
            self._outstanding_by_burst[burst_id] = remaining
            if remaining == 0 and delivered:
                self.bursts_completed += 1
                self.burst_latencies.append(
                    self.sim.now - self._burst_created.pop(burst_id)
                )

    def _on_send_success(self, frame: Frame) -> None:
        if frame is not self._inflight:
            return
        self.packet_delays.append(self.sim.now - frame.created_at)
        self.packets_delivered += 1
        self.delivered_payload_bytes += frame.payload_bytes
        self._account_done(frame, delivered=True)
        if self._pending:
            self.sim.schedule(self.inter_packet_gap, self._send_next)

    def _on_send_failure(self, frame: Frame, reason: str) -> None:
        if frame is not self._inflight:
            return
        self._attempts += 1
        if self._attempts > self.app_retries:
            self.packets_dropped += 1
            self._account_done(frame, delivered=False)
            if self._pending:
                self.sim.schedule(self.inter_packet_gap, self._send_next)
            return
        delay = self.retry_backoff * (0.5 + float(self._rng.random()))
        self.sim.schedule(delay, self._retry, frame)

    def _retry(self, frame: Frame) -> None:
        if frame is self._inflight:
            self.device.mac.send(frame)

"""CSMA with packet-level FEC — the recovery-based coexistence family.

Implements the "recover from interference" school the paper reviews
(Sec. II): each burst carries parity packets so sparse losses are repaired
without retransmission.  Together with :mod:`repro.core.fec` this makes two
paper claims measurable:

* under *mild* interference FEC recovers the odd lost packet — recovery
  schemes work where losses are sparse;
* under the paper's saturated Wi-Fi, whole bursts are lost and parity is
  dead weight — which is why coordination (BiCord), not coding, is the fix;
* BiCord and FEC are *orthogonal*: nothing here conflicts with running the
  same coding on top of a BiCord node.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..core.fec import FecBlock, FecDecoder, FecEncoder
from ..devices.zigbee_device import ZigbeeDevice
from ..mac.frames import Frame, zigbee_data_frame
from ..traffic.generators import Burst


class FecCsmaNode:
    """ZigBee sender: plain CSMA/CA plus per-burst parity packets."""

    def __init__(
        self,
        device: ZigbeeDevice,
        receiver: str,
        n_parity: int = 1,
        app_retries: int = 2,
        mac_retries: int = 0,
        retry_backoff: float = 20e-3,
        inter_packet_gap: float = 2e-3,
    ):
        """``mac_retries`` defaults to 0: FEC trades retransmissions for
        parity (classic coding-vs-ARQ), so per-packet ARQ is off unless the
        caller re-enables it."""
        self.device = device
        self.receiver = receiver
        self.sim = device.ctx.sim
        self.encoder = FecEncoder(n_parity)
        self.app_retries = app_retries
        self.retry_backoff = retry_backoff
        self.inter_packet_gap = inter_packet_gap
        self._rng = device.ctx.streams.stream(f"fec-csma/{device.name}")
        # Queue entries: (payload, created_at, burst_id, kind, index)
        self._pending: Deque[Tuple[int, float, int, str, int]] = deque()
        self._seq = 0
        self._inflight: Optional[Frame] = None
        self._attempts = 0
        self._decoders: Dict[int, FecDecoder] = {}
        self._burst_created: Dict[int, float] = {}
        self._burst_outstanding: Dict[int, int] = {}
        mac = device.mac
        mac.max_frame_retries = mac_retries
        mac.on_send_success = self._on_send_success
        mac.on_send_failure = self._on_send_failure
        # Statistics
        self.packets_delivered = 0  # data packets that arrived directly
        self.packets_recovered = 0  # data packets repaired by parity
        self.packets_lost = 0
        self.parity_sent = 0
        self.delivered_payload_bytes = 0
        self.packet_delays: List[float] = []
        self.bursts_completed = 0

    # ------------------------------------------------------------------
    def offer_burst(self, burst: Burst) -> None:
        was_idle = not self._pending and self._inflight is None
        block = self.encoder.encode(burst.n_packets, burst.burst_id)
        self._decoders[burst.burst_id] = FecDecoder(block)
        self._burst_created[burst.burst_id] = burst.created_at
        self._burst_outstanding[burst.burst_id] = block.total_packets
        for i in range(block.k):
            self._pending.append(
                (burst.payload_bytes, burst.created_at, burst.burst_id, "data", i)
            )
        for j in range(block.m):
            self._pending.append(
                (burst.payload_bytes, burst.created_at, burst.burst_id, "parity", j)
            )
        if was_idle:
            self._send_next()

    @property
    def outstanding_packets(self) -> int:
        return len(self._pending)

    @property
    def effective_delivered(self) -> int:
        return self.packets_delivered + self.packets_recovered

    # ------------------------------------------------------------------
    def _send_next(self) -> None:
        if self._inflight is not None or not self._pending:
            return
        payload, created_at, burst_id, kind, index = self._pending[0]
        self._seq += 1
        frame = zigbee_data_frame(
            self.device.name, self.receiver, payload, created_at=created_at,
            burst_id=burst_id, fec_kind=kind, fec_index=index,
        )
        frame.seq = self._seq
        self._inflight = frame
        self._attempts = 0
        self.device.mac.send(frame)

    def _finish_entry(self, frame: Frame, delivered: bool) -> None:
        self._inflight = None
        self._pending.popleft()
        burst_id = frame.meta["burst_id"]
        decoder = self._decoders[burst_id]
        kind = frame.meta["fec_kind"]
        index = frame.meta["fec_index"]
        if delivered:
            if kind == "data":
                decoder.receive_data(index)
                self.packets_delivered += 1
                self.delivered_payload_bytes += frame.payload_bytes
                self.packet_delays.append(self.sim.now - frame.created_at)
            else:
                decoder.receive_parity(index)
        remaining = self._burst_outstanding[burst_id] - 1
        self._burst_outstanding[burst_id] = remaining
        if remaining == 0:
            self._close_burst(burst_id, frame.payload_bytes)
        if self._pending:
            self.sim.schedule(self.inter_packet_gap, self._send_next)

    def _close_burst(self, burst_id: int, payload_bytes: int) -> None:
        decoder = self._decoders.pop(burst_id)
        missing = decoder.missing_after_recovery()
        directly_missing = decoder.block.k - len(decoder.data_received)
        recovered = directly_missing - len(missing)
        self.packets_recovered += recovered
        self.delivered_payload_bytes += recovered * payload_bytes
        self.packets_lost += len(missing)
        if not missing:
            self.bursts_completed += 1
        self._burst_created.pop(burst_id, None)

    def _on_send_success(self, frame: Frame) -> None:
        if frame is not self._inflight:
            return
        if frame.meta["fec_kind"] == "parity":
            self.parity_sent += 1
        self._finish_entry(frame, delivered=True)

    def _on_send_failure(self, frame: Frame, reason: str) -> None:
        if frame is not self._inflight:
            return
        self._attempts += 1
        if self._attempts > self.app_retries:
            if frame.meta["fec_kind"] == "parity":
                self.parity_sent += 1
            self._finish_entry(frame, delivered=False)
            return
        delay = self.retry_backoff * (0.5 + float(self._rng.random()))
        self.sim.schedule(delay, self._retry, frame)

    def _retry(self, frame: Frame) -> None:
        if frame is self._inflight:
            self.device.mac.send(frame)

"""Simulation context: one object bundling the kernel pieces of a scenario.

Every experiment needs the same five things wired together — a simulator, a
seeded stream factory, a trace recorder, a propagation channel, and the
medium.  :func:`build_context` assembles them so device constructors stay
short and every random draw in a scenario is derived from one seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Set

from . import telemetry as _telemetry
from .faults import FaultHarness, FaultPlan, build_harness
from .phy.medium import Medium
from .phy.propagation import Channel, FadingModel, PathLossModel
from .sim.engine import Simulator
from .sim.rng import RandomStreams
from .sim.trace import TraceRecorder
from .telemetry import MetricsRegistry


@dataclass
class SimContext:
    """The shared plumbing of one simulated scenario."""

    sim: Simulator
    streams: RandomStreams
    trace: TraceRecorder
    channel: Channel
    medium: Medium
    #: Seeded fault injectors for this scenario; ``None`` = fault-free.
    #: Devices and protocol layers consult this at construction time, so the
    #: harness must be installed before devices are built (pass the plan to
    #: :func:`build_context` rather than assigning afterwards).
    faults: Optional[FaultHarness] = None
    #: Metrics registry the scenario reports to.  Captured from the active
    #: :func:`repro.telemetry.collect` scope at build time; outside a scope
    #: this is the shared no-op :data:`repro.telemetry.NULL` registry, so
    #: instrumented components never need a None check.
    telemetry: MetricsRegistry = field(default_factory=lambda: _telemetry.NULL)

    @property
    def now(self) -> float:
        return self.sim.now


def build_context(
    seed: int = 0,
    path_loss: Optional[PathLossModel] = None,
    fading: Optional[FadingModel] = None,
    trace_kinds: Optional[Set[str]] = None,
    faults: Optional[FaultPlan] = None,
    backend: Optional[str] = None,
    medium_kernel: Optional[str] = None,
) -> SimContext:
    """Create a fully wired :class:`SimContext`.

    ``trace_kinds`` restricts which record kinds are *stored* (counters are
    always kept); pass ``None`` to store everything, or an empty set to store
    nothing.  ``faults`` is an optional :class:`~repro.faults.FaultPlan`
    whose injectors are seeded from the same stream family as everything
    else; an inert plan leaves the context exactly fault-free.  ``backend``
    selects the scheduler backend (see
    :data:`repro.sim.engine.SCHEDULER_BACKENDS`); ``None`` uses the
    process-wide default set by :func:`repro.sim.engine.set_default_backend`.
    ``medium_kernel`` likewise selects the medium implementation (see
    :data:`repro.phy.medium.MEDIUM_KERNELS`); ``None`` uses the default set
    by :func:`repro.phy.medium.set_default_medium_kernel`.
    """
    sim = Simulator(backend=backend)
    streams = RandomStreams(seed=seed)
    trace = TraceRecorder(enabled_kinds=trace_kinds)
    channel = Channel(
        path_loss=path_loss or PathLossModel(),
        fading=fading or FadingModel(),
        streams=streams,
    )
    registry = _telemetry.active()
    medium = Medium(sim, channel, trace=trace, kernel=medium_kernel, telemetry=registry)
    return SimContext(
        sim=sim, streams=streams, trace=trace, channel=channel, medium=medium,
        faults=build_harness(faults, streams),
        telemetry=registry,
    )

"""Newline-delimited JSON wire format shared by server and client.

One request per connection: the client sends a single JSON object line
(``{"op": ..., ...}``), the server answers with one response line
(``{"ok": true, ...}`` / ``{"ok": false, "error": ...}``) — except
``watch``, which answers with a *stream* of telemetry snapshot lines and
closes after a final ``{"type": "end"}`` frame.  Keeping the protocol
line-oriented means any language (or ``nc`` + ``jq``) can speak it, and
the telemetry frames reuse :func:`repro.telemetry.jsonl_line`, so a
watched stream is byte-compatible with an exported metrics file.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict

from ..telemetry import jsonl_line

#: Accepted request operations.
OPS = (
    "ping", "submit", "status", "jobs", "result",
    "cancel", "watch", "stats", "shutdown",
)

#: Upper bound on one request line; anything bigger is a protocol error
#: (a grid big enough to exceed this should be a campaign, not one job).
MAX_LINE_BYTES = 4 * 1024 * 1024


class ProtocolError(Exception):
    """Malformed frame (bad JSON, unknown op, oversized line)."""


def ok(**fields: Any) -> Dict[str, Any]:
    return {"ok": True, **fields}


def error(message: str, **fields: Any) -> Dict[str, Any]:
    return {"ok": False, "error": message, **fields}


def encode(payload: Dict[str, Any]) -> bytes:
    """One wire frame: canonical JSONL, utf-8."""
    return jsonl_line(payload).encode("utf-8")


def decode(raw: bytes) -> Dict[str, Any]:
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"bad frame: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError("frame must be a JSON object")
    return payload


async def read_frame(reader: asyncio.StreamReader) -> Dict[str, Any]:
    """Read one request line; raises ProtocolError on garbage/overflow."""
    try:
        raw = await reader.readline()
    except (asyncio.LimitOverrunError, ValueError):
        raise ProtocolError(
            f"request line exceeds {MAX_LINE_BYTES} bytes"
        ) from None
    if not raw:
        raise ProtocolError("connection closed before a request arrived")
    return decode(raw)


async def write_frame(
    writer: asyncio.StreamWriter, payload: Dict[str, Any]
) -> None:
    writer.write(encode(payload))
    await writer.drain()

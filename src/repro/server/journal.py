"""Fsync'd JSONL job journal: the server's crash-safe state record.

The campaign journal idea applied to server state: line 1 is a header
(schema, code version, pid), every further line is one job-state change,
last-wins per ``job_id``.  Appends flush + fsync, so after ``kill -9`` a
line either exists completely or not at all; a torn trailing line is
ignored on read.

Replay semantics on restart: jobs whose last journaled state is
``queued`` *or* ``running`` come back as queued — a running job's
completed trials already landed in the content-addressed sweep cache, so
re-running it re-executes only the trial the kill interrupted.  Terminal
jobs (done/failed/cancelled) are replayed into the record table so
``status``/``result`` keep answering for them across restarts.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from .. import __version__ as _CODE_VERSION
from ..log import get_logger
from .jobs import JobRecord, JobState

#: Journal layout version; a mismatch starts a fresh journal.
SERVER_SCHEMA = 1

_LOG = get_logger("server.journal")


class ServerJournal:
    """Append-only JSONL record of every job the server has accepted."""

    def __init__(self, path: Path):
        self.path = Path(path)
        self._handle = None

    # -- writing -------------------------------------------------------
    def write_header(self) -> None:
        self._append({
            "kind": "header",
            "schema": SERVER_SCHEMA,
            "code": _CODE_VERSION,
            "pid": os.getpid(),
        })

    def record_job(self, record: JobRecord) -> None:
        """Persist a job's current state (called on every transition)."""
        self._append({"kind": "job", **record.to_wire()})

    def _append(self, line: Dict[str, Any]) -> None:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(json.dumps(line, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # -- reading -------------------------------------------------------
    def read(self) -> Tuple[Optional[Dict[str, Any]], Dict[str, Dict[str, Any]]]:
        """(header, {job_id: last job line}) — torn trailing line tolerated."""
        header: Optional[Dict[str, Any]] = None
        jobs: Dict[str, Dict[str, Any]] = {}
        if not self.path.exists():
            return None, {}
        with open(self.path, "r", encoding="utf-8") as handle:
            for raw in handle:
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    line = json.loads(raw)
                except ValueError:
                    continue  # torn trailing line from a kill mid-append
                if line.get("kind") == "header":
                    header = line
                elif line.get("kind") == "job" and "job_id" in line:
                    jobs[str(line["job_id"])] = line
        return header, jobs

    def replay(self) -> List[JobRecord]:
        """Typed records to restore, interrupted work demoted to queued.

        An incompatible schema (or unreadable journal) replays nothing —
        the server starts fresh rather than guessing at old state.
        """
        header, lines = self.read()
        if header is not None and header.get("schema") != SERVER_SCHEMA:
            _LOG.warning(
                "journal %s has schema %r != %d; starting fresh",
                self.path, header.get("schema"), SERVER_SCHEMA,
            )
            return []
        records: List[JobRecord] = []
        for line in lines.values():
            try:
                record = JobRecord.from_wire(line)
            except (KeyError, TypeError, ValueError):
                continue
            if record.state in (JobState.QUEUED, JobState.RUNNING):
                # The drain (or crash) interrupted it: back to the queue.
                record.state = JobState.QUEUED
                record.started_at = None
            records.append(record)
        records.sort(key=lambda r: r.submitted_at)
        return records

"""Bounded priority queue with per-client fairness and backpressure.

Ordering is two-level: lower ``priority`` numbers dispatch first (0 is the
most urgent band), and *within* a band clients take strict round-robin
turns — a client that dumps 50 jobs into band 1 cannot starve another
client's single band-1 job, which waits at most one turn.  Within one
client's entries, FIFO.

Backpressure is explicit: the queue holds at most ``maxsize`` jobs and
:meth:`put` raises :class:`QueueFull` instead of blocking, so the server
can answer a submission with "come back in ~N seconds" rather than letting
latency grow unboundedly.  ``force=True`` bypasses the bound — used only
for journal replay on restart, where refusing previously-accepted work
would turn a graceful drain into data loss.

Single-consumer by design: one dispatcher task calls :meth:`get`; any
number of connection handlers call :meth:`put`/:meth:`remove`.  All
callers share the server's event loop, so plain dict/deque state needs no
locks — only an :class:`asyncio.Event` to park the idle dispatcher.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Deque, Dict, List, Optional

from .jobs import JobRecord


class QueueFull(Exception):
    """The queue is at its depth bound; retry after ``retry_after`` seconds.

    ``retry_after`` is the server's estimate (queued trial count times its
    trial-duration EWMA over the worker count) — advisory, never a promise.
    """

    def __init__(self, depth: int, retry_after: float = 1.0):
        super().__init__(
            f"queue full ({depth} jobs); retry after {retry_after:.1f}s"
        )
        self.depth = depth
        self.retry_after = retry_after


class FairPriorityQueue:
    """Priority bands of per-client FIFO lanes with round-robin dispatch."""

    def __init__(self, maxsize: int = 64):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = int(maxsize)
        #: priority -> client -> that client's jobs, oldest first.
        self._lanes: Dict[int, Dict[str, Deque[JobRecord]]] = {}
        #: priority -> client turn order (head takes the next dispatch).
        self._rotation: Dict[int, Deque[str]] = {}
        self._size = 0
        self._available = asyncio.Event()

    # -- producers ------------------------------------------------------
    def put(
        self, record: JobRecord, force: bool = False,
        retry_after: float = 1.0,
    ) -> None:
        """Enqueue, or raise :class:`QueueFull` when at the bound."""
        if not force and self._size >= self.maxsize:
            raise QueueFull(self._size, retry_after)
        band = self._lanes.setdefault(record.spec.priority, {})
        client = record.spec.client
        if client not in band:
            band[client] = deque()
            self._rotation.setdefault(record.spec.priority, deque()).append(client)
        band[client].append(record)
        self._size += 1
        self._available.set()

    def remove(self, job_id: str) -> Optional[JobRecord]:
        """Pull a queued job out (cancel path); None if not queued."""
        for priority, band in self._lanes.items():
            for client, lane in band.items():
                for record in lane:
                    if record.job_id == job_id:
                        lane.remove(record)
                        self._discard_if_empty(priority, client)
                        self._size -= 1
                        if self._size == 0:
                            self._available.clear()
                        return record
        return None

    # -- the single consumer --------------------------------------------
    async def get(self) -> JobRecord:
        """Next job by (priority band, client round-robin, FIFO)."""
        while True:
            if self._size == 0:
                self._available.clear()
                await self._available.wait()
            record = self._pop()
            if record is not None:
                return record

    def _pop(self) -> Optional[JobRecord]:
        for priority in sorted(self._lanes):
            rotation = self._rotation.get(priority)
            if not rotation:
                continue
            # The head client takes this turn and moves to the back; a
            # client whose lane drained leaves the rotation entirely.
            for _ in range(len(rotation)):
                if not rotation:
                    break
                client = rotation[0]
                lane = self._lanes[priority].get(client)
                if lane:
                    record = lane.popleft()
                    rotation.rotate(-1)
                    self._discard_if_empty(priority, client)
                    self._size -= 1
                    if self._size == 0:
                        self._available.clear()
                    return record
                rotation.popleft()
        return None

    def _discard_if_empty(self, priority: int, client: str) -> None:
        band = self._lanes.get(priority, {})
        if client in band and not band[client]:
            del band[client]
            rotation = self._rotation.get(priority)
            if rotation and client in rotation:
                rotation.remove(client)
        if not band:
            self._lanes.pop(priority, None)
            self._rotation.pop(priority, None)

    # -- inspection ------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @property
    def depth(self) -> int:
        return self._size

    def queued_trials(self) -> int:
        """Total trials waiting — the unit retry-after estimates scale by."""
        return sum(record.total_trials for record in self.snapshot())

    def snapshot(self) -> List[JobRecord]:
        """Every queued job, in no particular order (status/debug views)."""
        return [
            record
            for band in self._lanes.values()
            for lane in band.values()
            for record in lane
        ]

"""Typed job model for the simulation job server.

A *job* is one client submission: an experiment name plus a parameter
grid and seed list, expanded into the same ``(params, seed)`` trial pairs
a sweep would run.  Jobs are content-addressed — :meth:`JobSpec.fingerprint`
hashes the fully-resolved trial keys, so two submissions of the same work
share an identity and the second is served from cache without a worker.

State machine (enforced by :meth:`JobRecord.transition`)::

    queued -> running -> done
           \\         \\-> failed
            \\-> cancelled (from queued or running)

plus ``queued -> done`` for the cache-hit fast path: a submission whose
trials are all cached never enters the queue at all.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..serialization import stable_hash
from ..experiments.sweep import expand_grid, trial_key
from ..experiments.topology import Calibration


class JobState:
    """Job lifecycle states (plain strings so they serialize untouched)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    ALL = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)
    TERMINAL = (DONE, FAILED, CANCELLED)

    #: Legal transitions; cache-hit submissions jump queued -> done.
    _EDGES = {
        QUEUED: (RUNNING, DONE, CANCELLED),
        RUNNING: (DONE, FAILED, CANCELLED),
    }

    @classmethod
    def can_transition(cls, current: str, target: str) -> bool:
        return target in cls._EDGES.get(current, ())


@dataclass(frozen=True)
class JobSpec:
    """What a client asked for: one experiment, a grid, and seeds.

    ``params`` are base parameters applied to every trial; ``grid`` axes
    expand cartesian like a sweep's (so one submission can carry a whole
    campaign-style study); ``seeds`` multiply every combination.  The
    ``backend`` pin travels to worker trials exactly like the sweep
    engine's (provenance, never cache-key input).
    """

    experiment: str = "scenario"
    params: Mapping[str, Any] = field(default_factory=dict)
    grid: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    seeds: Sequence[int] = (0,)
    priority: int = 1
    client: str = "anonymous"
    backend: Optional[str] = None

    def __post_init__(self) -> None:
        if self.priority < 0:
            raise ValueError(f"priority must be >= 0, got {self.priority}")
        if not self.seeds:
            raise ValueError("seeds must be non-empty")

    def trials(self) -> List[Tuple[Dict[str, Any], int]]:
        """The job's ``(params, seed)`` pairs, in deterministic order."""
        pairs: List[Tuple[Dict[str, Any], int]] = []
        for combo in expand_grid(self.grid, self.params):
            for seed in self.seeds:
                pairs.append((combo, int(seed)))
        return pairs

    def trial_keys(self, calibration: Optional[Calibration] = None) -> List[str]:
        """Content addresses of every trial (the sweep cache's keys)."""
        return [
            trial_key(self.experiment, params, seed, calibration)
            for params, seed in self.trials()
        ]

    def fingerprint(self, calibration: Optional[Calibration] = None) -> str:
        """Content address of the whole job: hash of its trial keys.

        Two submissions asking for the same fully-resolved work — however
        they spelled their grids — collide here, which is what lets the
        server treat a duplicate submission as a pure cache lookup.
        """
        return stable_hash({
            "experiment": self.experiment,
            "keys": self.trial_keys(calibration),
        })

    def to_wire(self) -> Dict[str, Any]:
        return {
            "experiment": self.experiment,
            "params": dict(self.params),
            "grid": {name: list(values) for name, values in self.grid.items()},
            "seeds": [int(s) for s in self.seeds],
            "priority": int(self.priority),
            "client": self.client,
            "backend": self.backend,
        }

    @classmethod
    def from_wire(cls, payload: Mapping[str, Any]) -> "JobSpec":
        return cls(
            experiment=str(payload.get("experiment", "scenario")),
            params=dict(payload.get("params", {})),
            grid={
                str(name): tuple(values)
                for name, values in dict(payload.get("grid", {})).items()
            },
            seeds=tuple(int(s) for s in payload.get("seeds", (0,))),
            priority=int(payload.get("priority", 1)),
            client=str(payload.get("client", "anonymous")),
            backend=payload.get("backend"),
        )


@dataclass
class JobRecord:
    """One job's full server-side state (what ``status`` returns)."""

    job_id: str
    spec: JobSpec
    fingerprint: str
    state: str = JobState.QUEUED
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    total_trials: int = 0
    done_trials: int = 0
    cached_hits: int = 0
    error: str = ""
    #: True when the whole job was served from cache at submit time.
    from_cache: bool = False

    def transition(self, target: str) -> None:
        if not JobState.can_transition(self.state, target):
            raise ValueError(
                f"job {self.job_id}: illegal transition "
                f"{self.state!r} -> {target!r}"
            )
        self.state = target
        now = time.time()
        if target == JobState.RUNNING:
            self.started_at = now
        elif target in JobState.TERMINAL:
            self.finished_at = now

    @property
    def terminal(self) -> bool:
        return self.state in JobState.TERMINAL

    def to_wire(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "spec": self.spec.to_wire(),
            "fingerprint": self.fingerprint,
            "state": self.state,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "total_trials": self.total_trials,
            "done_trials": self.done_trials,
            "cached_hits": self.cached_hits,
            "error": self.error,
            "from_cache": self.from_cache,
        }

    @classmethod
    def from_wire(cls, payload: Mapping[str, Any]) -> "JobRecord":
        return cls(
            job_id=str(payload["job_id"]),
            spec=JobSpec.from_wire(payload.get("spec", {})),
            fingerprint=str(payload.get("fingerprint", "")),
            state=str(payload.get("state", JobState.QUEUED)),
            submitted_at=float(payload.get("submitted_at", 0.0)),
            started_at=payload.get("started_at"),
            finished_at=payload.get("finished_at"),
            total_trials=int(payload.get("total_trials", 0)),
            done_trials=int(payload.get("done_trials", 0)),
            cached_hits=int(payload.get("cached_hits", 0)),
            error=str(payload.get("error", "")),
            from_cache=bool(payload.get("from_cache", False)),
        )

"""Coordination-as-a-service: the long-running simulation job server.

BiCord's premise is many coexisting devices sharing one medium under a
coordinator; this package is the evaluation-side analogue — many clients
sharing one simulation cache under a coordinator process.  A
:class:`JobServer` accepts experiment submissions (scenario specs,
campaign-style multi-seed grids) over a local ND-JSON socket protocol,
multiplexes them across a bounded process pool, and serves results by
content fingerprint straight from the sweep cache, so a submission whose
trials are all cached completes without ever touching a worker slot.

The pieces:

* :mod:`jobs`     — the typed job model (:class:`JobSpec` /
  :class:`JobRecord`, states ``queued -> running -> done/failed/cancelled``);
* :mod:`queue`    — a bounded priority queue with per-client round-robin
  fairness and explicit backpressure (:class:`QueueFull` carries a
  ``retry_after`` estimate);
* :mod:`journal`  — the fsync'd JSONL job journal (the campaign journal
  idea applied to server state), making SIGTERM drain resumable;
* :mod:`protocol` — the newline-delimited JSON wire format;
* :mod:`service`  — the asyncio server loop, dispatcher, drain handling,
  and live telemetry snapshot streaming;
* :mod:`client`   — the thin synchronous :class:`Client`
  (submit/status/result/cancel/watch), re-exported as
  :class:`repro.api.Client`.

Everything is stdlib ``asyncio`` + ``socket`` — no new runtime deps.
"""

from .client import Client, ServerError
from .jobs import JobRecord, JobSpec, JobState
from .journal import ServerJournal
from .queue import FairPriorityQueue, QueueFull
from .service import JobServer, ServerConfig

__all__ = [
    "Client",
    "FairPriorityQueue",
    "JobRecord",
    "JobServer",
    "JobSpec",
    "JobState",
    "QueueFull",
    "ServerConfig",
    "ServerError",
    "ServerJournal",
]

"""Thin synchronous client for the job server (stdlib ``socket`` only).

One request per connection keeps the client trivial — no multiplexing, no
background threads; ``watch`` simply holds its connection open and yields
telemetry frames as the server pushes them.  Discover a server either by
``(host, port)`` or from the ``server.json`` the server writes into its
state directory::

    from repro.api import Client

    client = Client.from_state_dir("~/.cache/bicord/server")
    job = client.submit(params={"scenario": "office"}, seeds=[0, 1])
    for frame in client.watch(job["job_id"]):
        print(frame["done_trials"], "/", frame["total_trials"])
    rows = client.result(job["job_id"])["results"]
"""

from __future__ import annotations

import json
import os
import socket
import time
from pathlib import Path
from typing import Any, Dict, Iterator, Mapping, Optional, Sequence, Union

from .jobs import JobState
from .protocol import MAX_LINE_BYTES


class ServerError(RuntimeError):
    """The server answered ``ok: false``; carries the response payload."""

    def __init__(self, payload: Mapping[str, Any]):
        super().__init__(str(payload.get("error", "server error")))
        self.payload = dict(payload)

    @property
    def retry_after(self) -> Optional[float]:
        """Backpressure hint, when the rejection carried one."""
        value = self.payload.get("retry_after")
        return float(value) if value is not None else None


class Client:
    """Submit/status/result/cancel/watch against one running server."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 0,
        timeout: float = 30.0, client_name: str = "",
    ):
        if port <= 0:
            raise ValueError(f"port must be positive, got {port}")
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self.client_name = client_name or f"pid{os.getpid()}"

    @classmethod
    def from_state_dir(
        cls, state_dir: Union[str, Path], timeout: float = 30.0,
        client_name: str = "", retry_for: float = 0.0,
    ) -> "Client":
        """Connect via the ``server.json`` a server wrote at startup.

        ``retry_for`` polls for the discovery file up to that many seconds
        — handy right after spawning a server process.
        """
        path = Path(state_dir).expanduser() / "server.json"
        deadline = time.monotonic() + retry_for
        while True:
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
                return cls(
                    host=payload["host"], port=int(payload["port"]),
                    timeout=timeout, client_name=client_name,
                )
            except (OSError, ValueError, KeyError):
                if time.monotonic() >= deadline:
                    raise ConnectionError(
                        f"no server discovery file at {path}"
                    ) from None
                time.sleep(0.05)

    # -- plumbing --------------------------------------------------------
    def _connect(self) -> socket.socket:
        return socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )

    def _request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        with self._connect() as conn:
            conn.sendall(
                (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
            )
            response = _read_line(conn)
        if not response.get("ok", False):
            raise ServerError(response)
        return response

    # -- operations ------------------------------------------------------
    def ping(self) -> Dict[str, Any]:
        return self._request({"op": "ping"})

    def submit(
        self,
        experiment: str = "scenario",
        params: Optional[Mapping[str, Any]] = None,
        grid: Optional[Mapping[str, Sequence[Any]]] = None,
        seeds: Sequence[int] = (0,),
        priority: int = 1,
        backend: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Submit a job; raises :class:`ServerError` on rejection.

        A full-queue rejection's error carries ``retry_after`` — catch it
        and honor the hint rather than hammering the server.
        """
        return self._request({
            "op": "submit",
            "spec": {
                "experiment": experiment,
                "params": dict(params or {}),
                "grid": {k: list(v) for k, v in dict(grid or {}).items()},
                "seeds": [int(s) for s in seeds],
                "priority": int(priority),
                "client": self.client_name,
                "backend": backend,
            },
        })

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._request({"op": "status", "job_id": job_id})["job"]

    def jobs(self) -> Sequence[Dict[str, Any]]:
        return self._request({"op": "jobs"})["jobs"]

    def result(self, job_id: str) -> Dict[str, Any]:
        return self._request({"op": "result", "job_id": job_id})

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request({"op": "cancel", "job_id": job_id})

    def stats(self) -> Dict[str, Any]:
        return self._request({"op": "stats"})

    def shutdown(self) -> Dict[str, Any]:
        """Ask the server to drain (same path as SIGTERM)."""
        return self._request({"op": "shutdown"})

    def watch(self, job_id: str) -> Iterator[Dict[str, Any]]:
        """Yield telemetry frames until the job reaches a terminal state.

        Frames are the server's ND-JSON snapshots (``type: "snapshot"``);
        the closing ``type: "end"`` frame is yielded too, so consumers see
        the final state without a second ``status`` call.
        """
        with self._connect() as conn:
            conn.sendall(
                (json.dumps({"op": "watch", "job_id": job_id}) + "\n")
                .encode("utf-8")
            )
            ack = _read_line(conn)
            if not ack.get("ok", False):
                raise ServerError(ack)
            buffer = b""
            while True:
                newline = buffer.find(b"\n")
                if newline < 0:
                    chunk = conn.recv(65536)
                    if not chunk:
                        return
                    buffer += chunk
                    continue
                raw, buffer = buffer[:newline], buffer[newline + 1:]
                if not raw.strip():
                    continue
                frame = json.loads(raw.decode("utf-8"))
                yield frame
                if frame.get("type") == "end":
                    return

    def wait(
        self, job_id: str, timeout: float = 300.0, poll: float = 0.1,
    ) -> Dict[str, Any]:
        """Block until the job is terminal; returns its final record."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.status(job_id)
            if record["state"] in JobState.TERMINAL:
                return record
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {record['state']} after {timeout}s"
                )
            time.sleep(poll)


def _read_line(conn: socket.socket) -> Dict[str, Any]:
    """One response line from a blocking socket."""
    buffer = b""
    while b"\n" not in buffer:
        if len(buffer) > MAX_LINE_BYTES:
            raise ConnectionError("response line too long")
        chunk = conn.recv(65536)
        if not chunk:
            raise ConnectionError("server closed the connection mid-response")
        buffer += chunk
    return json.loads(buffer.split(b"\n", 1)[0].decode("utf-8"))

"""The asyncio job server: accept, schedule, execute, stream, drain.

One event loop owns all bookkeeping (records, queue, watchers); simulation
trials execute in a bounded :class:`ProcessPoolExecutor` via
``run_in_executor`` using the sweep engine's ``_execute_trial`` — the same
worker entry point sweeps and campaigns use, so a trial behaves (and
caches) identically whether it came from a CLI sweep or a server job.

Scheduling: the dispatcher acquires a worker *slot* before pulling from
the queue, so priority and fairness are applied at the moment a slot frees
up, not at submission.  A job occupies one slot for its whole trial list
(trials run sequentially within a job; concurrency comes from concurrent
jobs), which keeps per-job telemetry coherent and makes the concurrent-run
ceiling exactly ``workers``.

The content-addressed sweep cache is the result store.  ``submit`` checks
every trial key first and completes the job on the spot when all are
cached (never touching the queue or a worker slot — the pool is not even
spawned until the first real trial); ``result`` answers purely from the
cache, so results survive restarts for free.

Drain: SIGTERM (or the ``shutdown`` op) stops intake, lets in-flight jobs
finish up to ``drain_grace`` seconds, then journals interrupted and queued
jobs as ``queued`` — the next server start replays them, and their
completed trials are cache hits.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Set

from ..experiments.registry import get_experiment
from ..experiments.sweep import SweepEngine, _execute_trial
from ..log import get_logger
from ..telemetry import MetricsRegistry
from .jobs import JobRecord, JobSpec, JobState
from .journal import ServerJournal
from .protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    error,
    ok,
    read_frame,
    write_frame,
)
from .queue import FairPriorityQueue, QueueFull

_LOG = get_logger("server")


@dataclass
class ServerConfig:
    """Everything a :class:`JobServer` needs to run."""

    #: Journal, discovery file, and (by default) the cache live here.
    state_dir: Path
    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the bound port lands in server.json
    workers: int = 2
    queue_depth: int = 16
    cache_dir: Optional[os.PathLike] = None
    #: Scheduler backend shipped to worker trials (None = process default).
    backend: Optional[str] = None
    #: Seconds between telemetry frames pushed to ``watch`` streams.
    snapshot_interval: float = 0.5
    #: Seconds SIGTERM waits for in-flight jobs before journaling them
    #: back to queued.
    drain_grace: float = 30.0

    def __post_init__(self) -> None:
        self.state_dir = Path(self.state_dir)
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.queue_depth < 1:
            raise ValueError(
                f"queue_depth must be >= 1, got {self.queue_depth}"
            )

    @property
    def discovery_path(self) -> Path:
        return self.state_dir / "server.json"

    @property
    def journal_path(self) -> Path:
        return self.state_dir / "jobs.jsonl"


class JobServer:
    """A single-process coordination service over the simulation cache."""

    def __init__(self, config: ServerConfig):
        self.config = config
        self.engine = SweepEngine(
            cache_dir=config.cache_dir, backend=config.backend
        )
        self.queue = FairPriorityQueue(config.queue_depth)
        self.journal = ServerJournal(config.journal_path)
        self.records: Dict[str, JobRecord] = {}
        self.metrics = MetricsRegistry()
        self._counter = 0
        self._running: Dict[str, asyncio.Task] = {}
        self._cancel_requested: Set[str] = set()
        self._watchers: Dict[str, List[asyncio.Queue]] = {}
        self._slots = asyncio.Semaphore(config.workers)
        self._pool: Optional[ProcessPoolExecutor] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._tasks: List[asyncio.Task] = []
        self._shutdown = asyncio.Event()
        self._draining = False
        #: EWMA of executed-trial wall seconds — the retry-after estimator.
        self._trial_ewma = 1.0
        self.port: Optional[int] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def serve(self) -> None:
        """Run until drained: ``start`` + wait for SIGTERM/shutdown."""
        await self.start()
        try:
            await self._shutdown.wait()
        finally:
            await self._drain()

    async def start(self) -> None:
        """Bind, replay the journal, and spawn the service tasks."""
        self.config.state_dir.mkdir(parents=True, exist_ok=True)
        restored = self.journal.replay()
        for record in restored:
            self.records[record.job_id] = record
            self._counter = max(self._counter, _counter_of(record.job_id))
            if record.state == JobState.QUEUED:
                # Previously-accepted work is never re-rejected: replay
                # bypasses the depth bound.
                self.queue.put(record, force=True)
        self.journal.write_header()

        self._server = await asyncio.start_server(
            self._handle_connection,
            self.config.host,
            self.config.port,
            limit=MAX_LINE_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._write_discovery()
        self._install_signal_handlers()

        loop = asyncio.get_running_loop()
        self._tasks = [
            loop.create_task(self._dispatch(), name="dispatcher"),
            loop.create_task(self._broadcast(), name="broadcaster"),
        ]
        _LOG.info(
            "serving on %s:%d (workers=%d, queue_depth=%d, %d job(s) replayed)",
            self.config.host, self.port, self.config.workers,
            self.config.queue_depth, len(restored),
        )

    def initiate_drain(self) -> None:
        """Begin graceful shutdown (idempotent; signal-handler safe)."""
        if not self._draining:
            self._draining = True
            _LOG.info("drain initiated: rejecting new submissions")
        self._shutdown.set()

    def _install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.initiate_drain)
            except (NotImplementedError, RuntimeError, ValueError):
                # Non-main thread (tests) or platforms without signal
                # support in the loop: the shutdown op still drains.
                return

    async def _drain(self) -> None:
        """Stop intake, grace-wait in-flight jobs, journal the rest."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in self._tasks:
            task.cancel()
        if self._running:
            _LOG.info(
                "draining: waiting up to %.1fs for %d in-flight job(s)",
                self.config.drain_grace, len(self._running),
            )
            done, pending = await asyncio.wait(
                set(self._running.values()), timeout=self.config.drain_grace
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        # Journal survivors: anything not terminal goes back to queued so
        # the next start replays it; its finished trials are cache hits.
        interrupted = 0
        for record in self.records.values():
            if not record.terminal:
                record.state = JobState.QUEUED
                record.started_at = None
                self.journal.record_job(record)
                interrupted += 1
        if interrupted:
            _LOG.info("journaled %d interrupted job(s) as queued", interrupted)
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
        self.journal.close()
        try:
            self.config.discovery_path.unlink()
        except OSError:
            pass
        _LOG.info("drained; exiting")

    def _write_discovery(self) -> None:
        payload = {
            "host": self.config.host,
            "port": self.port,
            "pid": os.getpid(),
            "started_at": time.time(),
        }
        tmp = self.config.discovery_path.with_suffix(f".tmp{os.getpid()}")
        tmp.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
        os.replace(tmp, self.config.discovery_path)

    def _get_pool(self) -> ProcessPoolExecutor:
        # Lazy: a server that only ever answers from cache never forks.
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.config.workers)
            self.metrics.counter("server.pool_spawned").inc()
        return self._pool

    # ------------------------------------------------------------------
    # Scheduling + execution
    # ------------------------------------------------------------------
    async def _dispatch(self) -> None:
        """Single consumer: slot first, then queue — so priority applies
        at the moment a worker frees up, not at submission time."""
        loop = asyncio.get_running_loop()
        while True:
            await self._slots.acquire()
            record = await self.queue.get()
            if record.job_id in self._cancel_requested:
                self._cancel_requested.discard(record.job_id)
                record.transition(JobState.CANCELLED)
                self.journal.record_job(record)
                self._notify(record, end=True)
                self._slots.release()
                continue
            task = loop.create_task(
                self._run_job(record), name=f"job:{record.job_id}"
            )
            self._running[record.job_id] = task

    async def _run_job(self, record: JobRecord) -> None:
        loop = asyncio.get_running_loop()
        spec = record.spec
        try:
            record.transition(JobState.RUNNING)
            record.done_trials = 0
            record.cached_hits = 0
            self.journal.record_job(record)
            self._notify(record)

            exp = get_experiment(spec.experiment)
            pairs = spec.trials()
            keys = spec.trial_keys()
            record.total_trials = len(pairs)
            from ..sim.engine import DEFAULT_BACKEND as _default_backend

            backend = spec.backend or self.config.backend or _default_backend
            for (params, seed), key in zip(pairs, keys):
                if record.job_id in self._cancel_requested:
                    self._cancel_requested.discard(record.job_id)
                    record.transition(JobState.CANCELLED)
                    break
                hit = self.engine._cache_load(key, exp.result_cls)
                if hit is not None:
                    record.cached_hits += 1
                    record.done_trials += 1
                    self.metrics.counter("server.trials_cached").inc()
                    continue
                result, elapsed, _snapshot = await loop.run_in_executor(
                    self._get_pool(), _execute_trial,
                    spec.experiment, params, seed, None, False, backend,
                )
                self.engine._cache_store(
                    key, spec.experiment, params, seed, result, elapsed
                )
                record.done_trials += 1
                self.metrics.counter("server.trials_executed").inc()
                self.metrics.histogram(
                    "server.trial_seconds",
                    bounds=(0.01, 0.1, 1.0, 10.0, 60.0),
                ).observe(elapsed)
                self._trial_ewma = 0.3 * elapsed + 0.7 * self._trial_ewma
            else:
                record.transition(JobState.DONE)
        except asyncio.CancelledError:
            # Drain cancelled us mid-trial; _drain journals the record
            # back to queued — swallow so the gather in _drain completes.
            return
        except Exception as exc:  # noqa: BLE001 — job failure is data
            _LOG.warning("job %s failed: %s", record.job_id, exc)
            record.error = f"{type(exc).__name__}: {exc}"
            record.transition(JobState.FAILED)
            self.metrics.counter("server.jobs_failed").inc()
        finally:
            if record.terminal:
                self.journal.record_job(record)
                self._notify(record, end=True)
                self.metrics.counter(f"server.jobs_{record.state}").inc()
            self._running.pop(record.job_id, None)
            self._slots.release()

    # ------------------------------------------------------------------
    # Telemetry streaming
    # ------------------------------------------------------------------
    def _snapshot_frame(self, record: JobRecord) -> Dict[str, Any]:
        elapsed = 0.0
        if record.started_at is not None:
            end = record.finished_at or time.time()
            elapsed = max(0.0, end - record.started_at)
        return {
            "type": "snapshot",
            "job_id": record.job_id,
            "state": record.state,
            "done_trials": record.done_trials,
            "total_trials": record.total_trials,
            "cached_hits": record.cached_hits,
            "elapsed": round(elapsed, 6),
            "queue_depth": self.queue.depth,
        }

    def _notify(self, record: JobRecord, end: bool = False) -> None:
        """Push a snapshot (and optionally the end frame) to watchers."""
        queues = self._watchers.get(record.job_id, [])
        if not queues:
            return
        frame = self._snapshot_frame(record)
        for queue in queues:
            queue.put_nowait(frame)
            if end:
                queue.put_nowait({
                    "type": "end",
                    "job_id": record.job_id,
                    "state": record.state,
                })

    async def _broadcast(self) -> None:
        """Periodic snapshots for running jobs with live watchers."""
        while True:
            await asyncio.sleep(self.config.snapshot_interval)
            for job_id in list(self._watchers):
                record = self.records.get(job_id)
                if record is not None and not record.terminal:
                    self._notify(record)

    # ------------------------------------------------------------------
    # Protocol handlers
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await read_frame(reader)
            except ProtocolError as exc:
                await write_frame(writer, error(str(exc)))
                return
            op = request.get("op")
            if op == "watch":
                await self._handle_watch(request, writer)
                return
            handler = {
                "ping": self._op_ping,
                "submit": self._op_submit,
                "status": self._op_status,
                "jobs": self._op_jobs,
                "result": self._op_result,
                "cancel": self._op_cancel,
                "stats": self._op_stats,
                "shutdown": self._op_shutdown,
            }.get(op)
            if handler is None:
                await write_frame(writer, error(f"unknown op {op!r}"))
                return
            try:
                response = handler(request)
            except Exception as exc:  # noqa: BLE001 — answer, don't die
                _LOG.warning("op %s failed: %s", op, exc)
                response = error(f"{type(exc).__name__}: {exc}")
            await write_frame(writer, response)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to answer
        except asyncio.CancelledError:
            # Drain cancels in-flight connection tasks (watchers parked on
            # a frame queue, mid-read requests).  Swallowing here keeps the
            # CancelledError out of asyncio's connection_made callback,
            # which would print a spurious traceback during shutdown.
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _op_ping(self, request: Dict[str, Any]) -> Dict[str, Any]:
        from .. import __version__

        return ok(
            pid=os.getpid(),
            state="draining" if self._draining else "serving",
            version=__version__,
        )

    def _op_submit(self, request: Dict[str, Any]) -> Dict[str, Any]:
        if self._draining:
            return error(
                "server is draining; resubmit after restart",
                retry_after=self.config.drain_grace,
            )
        spec = JobSpec.from_wire(request.get("spec", {}))
        get_experiment(spec.experiment)  # unknown name -> clean error
        self.metrics.counter("server.submissions").inc()
        fingerprint = spec.fingerprint()

        # Idempotent resubmission: the same work already queued/running
        # attaches to the existing job instead of double-executing.
        for existing in self.records.values():
            if existing.fingerprint == fingerprint and not existing.terminal:
                self.metrics.counter("server.deduplicated").inc()
                return ok(
                    job_id=existing.job_id, state=existing.state,
                    cached=False, deduplicated=True,
                )

        exp = get_experiment(spec.experiment)
        keys = spec.trial_keys()
        record = JobRecord(
            job_id=self._next_job_id(fingerprint),
            spec=spec,
            fingerprint=fingerprint,
            total_trials=len(keys),
        )

        # Cache-hit fast path: every trial already has a cached result —
        # the job completes right here, no queue, no worker slot, and the
        # process pool is never even spawned for it.
        if all(self.engine.cache_has(key, exp.result_cls) for key in keys):
            record.from_cache = True
            record.cached_hits = len(keys)
            record.done_trials = len(keys)
            record.transition(JobState.DONE)
            self.records[record.job_id] = record
            self.journal.record_job(record)
            self.metrics.counter("server.cache_hit_jobs").inc()
            return ok(job_id=record.job_id, state=record.state, cached=True)

        retry_after = self._retry_after(extra_trials=len(keys))
        try:
            self.queue.put(record, retry_after=retry_after)
        except QueueFull as exc:
            self.metrics.counter("server.rejections").inc()
            return error(
                "queue full", retry_after=round(exc.retry_after, 3),
                depth=exc.depth,
            )
        self.records[record.job_id] = record
        self.journal.record_job(record)
        return ok(job_id=record.job_id, state=record.state, cached=False)

    def _op_status(self, request: Dict[str, Any]) -> Dict[str, Any]:
        record = self.records.get(str(request.get("job_id")))
        if record is None:
            return error(f"unknown job {request.get('job_id')!r}")
        return ok(job=record.to_wire())

    def _op_jobs(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return ok(jobs=[
            record.to_wire()
            for record in sorted(
                self.records.values(), key=lambda r: r.submitted_at
            )
        ])

    def _op_result(self, request: Dict[str, Any]) -> Dict[str, Any]:
        record = self.records.get(str(request.get("job_id")))
        if record is None:
            return error(f"unknown job {request.get('job_id')!r}")
        if record.state != JobState.DONE:
            return error(
                f"job {record.job_id} is {record.state}, not done",
                state=record.state,
            )
        exp = get_experiment(record.spec.experiment)
        results = []
        for (params, seed), key in zip(
            record.spec.trials(), record.spec.trial_keys()
        ):
            hit = self.engine._cache_load(key, exp.result_cls)
            if hit is None:
                return error(
                    f"trial {key[:12]} missing from cache (cleared since "
                    "the job ran?); resubmit the job"
                )
            result, elapsed, _metrics = hit
            results.append({
                "params": dict(params),
                "seed": seed,
                "key": key,
                "elapsed": elapsed,
                "metrics": _metrics_of(result),
            })
        return ok(
            job_id=record.job_id, experiment=record.spec.experiment,
            results=results,
        )

    def _op_cancel(self, request: Dict[str, Any]) -> Dict[str, Any]:
        record = self.records.get(str(request.get("job_id")))
        if record is None:
            return error(f"unknown job {request.get('job_id')!r}")
        if record.terminal:
            return error(
                f"job {record.job_id} already {record.state}",
                state=record.state,
            )
        if record.state == JobState.QUEUED:
            self.queue.remove(record.job_id)
            record.transition(JobState.CANCELLED)
            self.journal.record_job(record)
            self._notify(record, end=True)
            self.metrics.counter("server.jobs_cancelled").inc()
            return ok(job_id=record.job_id, state=record.state)
        # Running: the flag is honored between trials (the executing trial
        # cannot be interrupted; at most one trial of work is discarded).
        self._cancel_requested.add(record.job_id)
        self.metrics.counter("server.cancel_requested").inc()
        return ok(job_id=record.job_id, state=record.state, cancelling=True)

    def _op_stats(self, request: Dict[str, Any]) -> Dict[str, Any]:
        snapshot = self.metrics.snapshot()
        return ok(
            queued=self.queue.depth,
            queued_trials=self.queue.queued_trials(),
            running=len(self._running),
            workers=self.config.workers,
            queue_depth_bound=self.config.queue_depth,
            draining=self._draining,
            trial_seconds_ewma=round(self._trial_ewma, 6),
            counters=snapshot.get("counters", {}),
        )

    def _op_shutdown(self, request: Dict[str, Any]) -> Dict[str, Any]:
        self.initiate_drain()
        return ok(state="draining")

    async def _handle_watch(
        self, request: Dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        record = self.records.get(str(request.get("job_id")))
        if record is None:
            await write_frame(
                writer, error(f"unknown job {request.get('job_id')!r}")
            )
            return
        await write_frame(writer, ok(job_id=record.job_id))
        await write_frame(writer, self._snapshot_frame(record))
        if record.terminal:
            await write_frame(writer, {
                "type": "end", "job_id": record.job_id, "state": record.state,
            })
            return
        queue: asyncio.Queue = asyncio.Queue()
        self._watchers.setdefault(record.job_id, []).append(queue)
        try:
            while True:
                frame = await queue.get()
                await write_frame(writer, frame)
                if frame.get("type") == "end":
                    return
        except (ConnectionError, OSError):
            pass  # watcher went away mid-stream
        finally:
            lanes = self._watchers.get(record.job_id, [])
            if queue in lanes:
                lanes.remove(queue)
            if not lanes:
                self._watchers.pop(record.job_id, None)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _next_job_id(self, fingerprint: str) -> str:
        self._counter += 1
        return f"j{self._counter:05d}-{fingerprint[:10]}"

    def _retry_after(self, extra_trials: int = 0) -> float:
        backlog = self.queue.queued_trials() + extra_trials
        return max(
            0.1, backlog * self._trial_ewma / max(1, self.config.workers)
        )


def _counter_of(job_id: str) -> int:
    """The monotonic counter embedded in a job id (0 if unparseable)."""
    try:
        return int(job_id.split("-", 1)[0].lstrip("j"))
    except ValueError:
        return 0


def _metrics_of(result: Any) -> Dict[str, float]:
    """A result's flat numeric metrics (shared with the campaign runner)."""
    from ..experiments.campaign import _metrics_of as impl

    return impl(result)

"""The stable, import-one-name API of the reproduction.

Everything a script, notebook, or downstream harness needs lives behind
five functions::

    import repro.api as bicord

    result = bicord.run("coexistence", scheme="bicord", seed=3)
    run = bicord.sweep("learning", grid={"n_bursts": (20, 40)}, seeds=range(5))
    outcome = bicord.campaign(spec, directory="runs/office", jobs=4)
    spec = bicord.load_scenario("dense-office", n_links=6)
    cached = bicord.get_result("coexistence", {"scheme": "ecc"}, seed=3)

plus the job-server client (``repro serve`` on the other end)::

    client = bicord.Client.from_state_dir("server-state")
    job = client.submit(params={"scenario": "office"}, seeds=[0, 1, 2])
    record = client.wait(job["job_id"])
    rows = client.result(job["job_id"])["results"]

These wrappers are intentionally thin — each delegates to the underlying
subsystem (registry, sweep engine, campaign runner, scenario library,
sweep cache) — but their *signatures* are the compatibility contract:
internals may reorganize; ``repro.api`` does not.  Every experiment result
returned here implements the :class:`repro.experiments.ExperimentResult`
protocol (``scheme``/``seed`` identity, ``to_dict()``, ``metrics()``).
"""

from __future__ import annotations

import os
from typing import Any, Iterable, Mapping, Optional, Sequence, Union

from .experiments.campaign import (
    CampaignRun,
    CampaignRunner,
    CampaignSpec,
    campaign_from_generator,
)
from .experiments.registry import run_experiment
from .experiments.sweep import (
    SweepEngine,
    SweepRun,
    SweepSpec,
    load_cached,
)
from .experiments.topology import Calibration
from .server.client import Client, ServerError

__all__ = [
    "run",
    "sweep",
    "campaign",
    "campaign_from_generator",
    "load_scenario",
    "get_result",
    "CampaignSpec",
    "Calibration",
    "Client",
    "ServerError",
]


def run(
    experiment: str,
    *,
    config: Any = None,
    seed: Optional[int] = None,
    calibration: Optional[Calibration] = None,
    **params: Any,
):
    """Run one trial of any registered experiment; returns its result.

    ``params`` are fields of the experiment's config dataclass (see
    ``repro experiments`` or :func:`repro.experiments.get_experiment`).
    """
    return run_experiment(
        experiment, config=config, seed=seed, calibration=calibration, **params
    )


def sweep(
    experiment: str,
    grid: Optional[Mapping[str, Sequence[Any]]] = None,
    base: Optional[Mapping[str, Any]] = None,
    seeds: Iterable[int] = (0,),
    jobs: int = 1,
    calibration: Optional[Calibration] = None,
    cache: bool = True,
    cache_dir: Optional[os.PathLike] = None,
    telemetry: bool = False,
    quiet: bool = False,
    backend: Optional[str] = None,
) -> SweepRun:
    """Run a parameter grid x seed sweep (parallel, cached); see SweepRun."""
    engine = SweepEngine(
        jobs=jobs, cache=cache, cache_dir=cache_dir,
        telemetry=telemetry, quiet=quiet, backend=backend,
    )
    spec = SweepSpec(
        experiment=experiment,
        grid=dict(grid or {}),
        base=dict(base or {}),
        seeds=tuple(int(s) for s in seeds),
        calibration=calibration,
    )
    return engine.run(spec)


def campaign(
    spec: Optional[Union[CampaignSpec, Mapping[str, Any]]] = None,
    directory: os.PathLike = "campaign",
    jobs: int = 1,
    max_trials: Optional[int] = None,
    calibration: Optional[Calibration] = None,
    cache_dir: Optional[os.PathLike] = None,
    quiet: bool = True,
    backend: Optional[str] = None,
) -> CampaignRun:
    """Run (or resume) a sharded, journaled campaign in ``directory``.

    Pass a :class:`CampaignSpec` (or a plain dict of its fields) to start;
    omit it to resume whatever the directory holds.  Safe to kill at any
    point — re-invoking continues with zero recomputation.
    """
    if isinstance(spec, Mapping):
        spec = CampaignSpec(**spec)
    runner = CampaignRunner(
        directory, jobs=jobs, cache_dir=cache_dir,
        calibration=calibration, quiet=quiet, backend=backend,
    )
    return runner.run(spec, max_trials=max_trials)


def load_scenario(name: str, **params: Any):
    """Resolve a library scenario to its :class:`ScenarioSpec` by name.

    ``params`` are the scenario factory's knobs (``repro scenario
    describe <name>`` lists them); the returned spec is frozen and can be
    compiled (:func:`repro.scenarios.compile_scenario`) or fed to
    :func:`run`/:func:`sweep` as the ``scenario`` experiment.
    """
    from .scenarios import get_scenario  # lazy: scenario lib pulls devices

    return get_scenario(name, **params)


def get_result(
    experiment: str,
    params: Optional[Mapping[str, Any]] = None,
    seed: int = 0,
    calibration: Optional[Calibration] = None,
    cache_dir: Optional[os.PathLike] = None,
):
    """Fetch one trial's cached result without running anything.

    Returns ``None`` when the trial was never executed (or its cache entry
    no longer matches the current code/config version).
    """
    return load_cached(
        experiment, params=params, seed=seed,
        calibration=calibration, cache_dir=cache_dir,
    )

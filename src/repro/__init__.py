"""BiCord: bidirectional coordination among coexisting wireless devices.

A full Python reproduction of the ICDCS 2021 paper, built on a discrete-event
RF coexistence simulator.  Start with :func:`repro.context.build_context` and
the quickstart example, or the pre-wired scenarios in
:mod:`repro.experiments`.
"""

from .context import SimContext, build_context
from .faults import FaultPlan

__version__ = "1.1.0"

__all__ = ["SimContext", "FaultPlan", "build_context", "__version__"]

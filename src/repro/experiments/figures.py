"""Terminal-friendly figures: sparklines, bar charts, interval timelines.

The benchmarks print paper-style tables; these helpers add quick visual
shape checks (e.g. the Fig. 7 learning staircase) without any plotting
dependency.  Everything renders to plain strings.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """One-line sparkline of ``values`` (empty string for no data)."""
    values = list(values)
    if not values:
        return ""
    lo = min(values)
    hi = max(values)
    if hi - lo < 1e-12:
        return _SPARK_LEVELS[0] * len(values)
    span = hi - lo
    chars = []
    for value in values:
        index = int((value - lo) / span * (len(_SPARK_LEVELS) - 1))
        chars.append(_SPARK_LEVELS[index])
    return "".join(chars)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    value_format: str = "{:.3f}",
) -> str:
    """Horizontal bar chart, one row per (label, value)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have the same length")
    if not values:
        return ""
    peak = max(max(values), 1e-12)
    label_width = max(len(label) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = "█" * max(1, int(round(width * value / peak))) if value > 0 else ""
        lines.append(
            f"{label.ljust(label_width)}  {bar.ljust(width)}  {value_format.format(value)}"
        )
    return "\n".join(lines)


def timeline(
    intervals: Iterable[Tuple[float, float]],
    start: float,
    end: float,
    width: int = 80,
    mark: str = "#",
    gap: str = ".",
) -> str:
    """Render busy ``intervals`` within [start, end] as a character strip.

    Useful for eyeballing white-space placement: pass the granted intervals
    and see where they sit in the run.
    """
    if end <= start:
        raise ValueError("end must be after start")
    cells = [gap] * width
    span = end - start
    for lo, hi in intervals:
        lo = max(lo, start)
        hi = min(hi, end)
        if hi <= lo:
            continue
        first = int((lo - start) / span * width)
        last = int((hi - start) / span * width)
        for i in range(first, min(last + 1, width)):
            cells[i] = mark
    return "".join(cells)


def histogram(
    values: Sequence[float],
    n_bins: int = 10,
    width: int = 40,
) -> str:
    """Text histogram with counts per bin."""
    values = list(values)
    if not values:
        return "(no data)"
    lo, hi = min(values), max(values)
    if hi - lo < 1e-12:
        return f"[{lo:.4g}] x{len(values)}"
    bin_width = (hi - lo) / n_bins
    counts = [0] * n_bins
    for value in values:
        index = min(int((value - lo) / bin_width), n_bins - 1)
        counts[index] += 1
    peak = max(counts)
    lines = []
    for i, count in enumerate(counts):
        left = lo + i * bin_width
        bar = "█" * max(0, int(round(width * count / peak)))
        lines.append(f"{left:10.4g}  {bar.ljust(width)}  {count}")
    return "\n".join(lines)

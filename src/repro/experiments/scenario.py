"""The ``scenario`` experiment: run any library scenario via the registry.

This module is the bridge between :mod:`repro.scenarios` and the
experiment registry / sweep engine.  It owns the result dataclasses
(:class:`ScenarioResult` and its per-link breakdowns) and the trial
config (:class:`ScenarioTrialConfig`) so the registry can import them
without importing the scenario subsystem at module load — the heavy
imports happen lazily inside the runner, which breaks the
``experiments <-> scenarios`` cycle.

:class:`ScenarioTrialConfig` resolves its scenario at construction time
and pins the resulting spec's fingerprint into ``spec_fingerprint``.
Because the sweep cache hashes the *fully-resolved* config, the scenario
fingerprint is thereby part of every trial's cache key: editing a library
scenario (or a generator) changes the fingerprint and invalidates exactly
the affected cache entries.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from ..serialization import from_dict
from .compat import effective_seed
from .metrics import UtilizationSnapshot
from .result import ResultBase
from .topology import Calibration


def _mean(values) -> float:
    return float(np.mean(values)) if len(values) else 0.0


def _percentile(values, q: float) -> float:
    return float(np.percentile(np.asarray(values), q)) if len(values) else 0.0


@dataclass
class LinkResult:
    """Per-ZigBee-link outcome of one scenario run."""

    name: str
    offered: int = 0
    delivered: int = 0
    dropped: int = 0
    payload_bytes: int = 0
    control_packets: int = 0
    delays: List[float] = field(default_factory=list)

    @property
    def delivery_ratio(self) -> float:
        return self.delivered / self.offered if self.offered else 0.0

    @property
    def mean_delay(self) -> float:
        return _mean(self.delays)

    @property
    def p95_delay(self) -> float:
        return _percentile(self.delays, 95.0)


@dataclass
class WifiLinkResult:
    """Per-Wi-Fi-link outcome of one scenario run."""

    name: str
    sent: int = 0
    delivered: int = 0
    low_priority_delays: List[float] = field(default_factory=list)
    high_priority_delays: List[float] = field(default_factory=list)

    @property
    def prr(self) -> float:
        return self.delivered / self.sent if self.sent else 0.0

    @property
    def mean_low_priority_delay(self) -> float:
        return _mean(self.low_priority_delays)

    @property
    def mean_high_priority_delay(self) -> float:
        return _mean(self.high_priority_delays)


@dataclass
class ScenarioResult(ResultBase):
    """Everything one compiled-scenario run reports."""

    scenario: str
    seed: int
    scheme: str
    duration: float
    spec_fingerprint: str
    utilization: UtilizationSnapshot
    links: Dict[str, LinkResult] = field(default_factory=dict)
    wifi: Dict[str, WifiLinkResult] = field(default_factory=dict)
    whitespaces_issued: int = 0
    whitespace_airtime: float = 0.0
    current_whitespace: float = 0.0
    events_processed: int = 0
    #: Digest of the trace-kind counters: two runs of the same compiled
    #: scenario are equivalent iff these digests match bitwise.
    trace_digest: str = ""
    extra: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def channel_utilization(self) -> float:
        return self.utilization.channel_utilization

    @property
    def zigbee_utilization(self) -> float:
        return self.utilization.zigbee_utilization

    @property
    def wifi_utilization(self) -> float:
        return self.utilization.wifi_utilization

    @property
    def packets_offered(self) -> int:
        return sum(link.offered for link in self.links.values())

    @property
    def packets_delivered(self) -> int:
        return sum(link.delivered for link in self.links.values())

    @property
    def delivery_ratio(self) -> float:
        offered = self.packets_offered
        return self.packets_delivered / offered if offered else 0.0

    @property
    def all_delays(self) -> List[float]:
        return [d for link in self.links.values() for d in link.delays]

    @property
    def mean_delay(self) -> float:
        return _mean(self.all_delays)

    @property
    def p95_delay(self) -> float:
        return _percentile(self.all_delays, 95.0)

    @property
    def max_delay(self) -> float:
        delays = self.all_delays
        return max(delays) if delays else 0.0

    @property
    def zigbee_throughput_bps(self) -> float:
        if self.duration <= 0:
            return 0.0
        payload = sum(link.payload_bytes for link in self.links.values())
        return 8.0 * payload / self.duration

    @property
    def control_packets(self) -> int:
        return sum(link.control_packets for link in self.links.values())

    @property
    def wifi_prr(self) -> float:
        sent = sum(link.sent for link in self.wifi.values())
        delivered = sum(link.delivered for link in self.wifi.values())
        return delivered / sent if sent else 0.0

    def summary(self) -> Dict[str, float]:
        """Flat dict for sweep tables and manifests."""
        return {
            "utilization": self.channel_utilization,
            "wifi_util": self.wifi_utilization,
            "zigbee_util": self.zigbee_utilization,
            "delivery_ratio": self.delivery_ratio,
            "mean_delay_ms": self.mean_delay * 1e3,
            "p95_delay_ms": self.p95_delay * 1e3,
            "throughput_kbps": self.zigbee_throughput_bps / 1e3,
            "control_packets": float(self.control_packets),
            "whitespaces_issued": float(self.whitespaces_issued),
            "wifi_prr": self.wifi_prr,
            "n_links": float(len(self.links)),
        }


# ======================================================================
# Trial config + runner
# ======================================================================
@dataclass
class ScenarioTrialConfig:
    """One scenario run, addressed by library name + factory parameters.

    ``params`` are keyword arguments of the scenario's factory (see
    ``repro scenario list``); ``duration``/``fault_plan`` override the
    produced spec; ``max_events`` caps the event count (smoke tests).
    ``spec_fingerprint`` is *derived*: it is recomputed from the resolved
    spec on construction, so it lands in the sweep cache key and stale
    values loaded from old cache entries can never lie.
    """

    scenario: str = "office"
    params: Dict[str, Any] = field(default_factory=dict)
    duration: Optional[float] = None
    max_events: Optional[int] = None
    fault_plan: Optional[str] = None
    spec_fingerprint: str = ""

    def __post_init__(self) -> None:
        spec = self.resolve_spec()
        self.spec_fingerprint = spec.fingerprint()

    def resolve_spec(self):
        """Build the effective :class:`~repro.scenarios.ScenarioSpec`."""
        from ..scenarios import get_scenario  # lazy: breaks the import cycle

        spec = get_scenario(self.scenario, **dict(self.params))
        overrides: Dict[str, Any] = {}
        if self.duration is not None:
            overrides["duration"] = float(self.duration)
        if self.fault_plan is not None:
            overrides["fault_plan"] = self.fault_plan
        if overrides:
            spec = dataclasses.replace(spec, **overrides)
        return spec


def run_scenario_trial(
    config: Optional[ScenarioTrialConfig] = None,
    seed: Optional[int] = None,
    calibration: Optional[Calibration] = None,
) -> ScenarioResult:
    """Compile and run one scenario (uniform registry contract)."""
    from ..scenarios import compile_scenario  # lazy: breaks the import cycle

    if config is None:
        cfg = ScenarioTrialConfig()
    elif isinstance(config, dict):
        cfg = from_dict(ScenarioTrialConfig, config)
    else:
        cfg = config
    seed = effective_seed(seed)
    compiled = compile_scenario(cfg.resolve_spec(), seed=seed, calibration=calibration)
    return compiled.run(max_events=cfg.max_events)

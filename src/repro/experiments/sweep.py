"""Parallel sweep engine with deterministic on-disk result caching.

Every paper figure is a sweep — seeds x locations x schemes x parameter
values.  :class:`SweepEngine` runs such grids through the experiment
registry, fanning trials out across worker processes
(``concurrent.futures.ProcessPoolExecutor``) with a serial in-process
fallback for ``jobs=1``.  Because each trial builds its own simulation
context from its own seed, a parallel sweep is bitwise-identical to a
serial one — only wall-clock time changes.

Completed trials are memoized in a content-addressed cache: the key is a
SHA-256 over (experiment name, fully-resolved config, seed, calibration,
code version), so re-running a sweep — or resuming one that died halfway —
re-executes nothing that already finished, while any config change hashes
to a different address and forces a fresh run.

Cache location: ``$BICORD_SWEEP_CACHE`` if set, else
``~/.cache/bicord/sweeps``.  Entries are small JSON files; deleting the
directory (or calling :meth:`SweepEngine.clear_cache`) is always safe.

::

    from repro.experiments import SweepEngine, SweepSpec

    spec = SweepSpec(
        experiment="coexistence",
        grid={"scheme": ("bicord", "ecc"), "location": ("A", "B")},
        base={"n_bursts": 20},
        seeds=(0, 1, 2),
    )
    run = SweepEngine(jobs=4).run(spec)
    run.results            # one CoexistenceResult per (grid point, seed)
    run.cached_hits        # trials served from the cache
"""

from __future__ import annotations

import itertools
import json
import os
import time
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from .. import __version__ as _CODE_VERSION
from ..log import get_logger
from ..serialization import canonical_dumps, from_dict, stable_hash, to_dict
from ..telemetry import MetricsRegistry, collect as telemetry_collect, merge_snapshots
from .registry import get_experiment, resolve_config, run_experiment
from .topology import Calibration

#: Bump when the cache entry layout changes (invalidates old entries).
#: 2: configs grew a ``faults`` block (resolved-config hashes changed).
#: 3: entries carry an optional ``metrics`` telemetry snapshot.
#: 4: scenario experiment added; dict-valued results coerce typed values.
#: 5: results implement the ExperimentResult contract (seed field added).
CACHE_SCHEMA = 5

_LOG = get_logger("sweep")


def default_cache_dir() -> Path:
    """Resolve the cache root: $BICORD_SWEEP_CACHE or ~/.cache/bicord/sweeps."""
    env = os.environ.get("BICORD_SWEEP_CACHE")
    if env:
        return Path(env).expanduser()
    return Path("~/.cache/bicord/sweeps").expanduser()


def expand_grid(
    grid: Mapping[str, Sequence[Any]],
    base: Optional[Mapping[str, Any]] = None,
) -> List[Dict[str, Any]]:
    """Cartesian product of a parameter grid, merged over ``base``.

    Axis order follows the mapping's insertion order, values keep their
    given order, so the expansion is deterministic.  An empty grid yields
    exactly one trial (the base parameters).
    """
    base = dict(base or {})
    axes: List[Tuple[str, List[Any]]] = []
    for name, values in grid.items():
        if isinstance(values, (str, bytes)) or not isinstance(values, (list, tuple)):
            raise TypeError(
                f"grid axis {name!r} must be a list/tuple of values, "
                f"got {type(values).__name__}: {values!r}"
            )
        if not values:
            raise ValueError(f"grid axis {name!r} has no values")
        axes.append((name, list(values)))
    combos = itertools.product(*(values for _, values in axes))
    names = [name for name, _ in axes]
    return [{**base, **dict(zip(names, combo))} for combo in combos]


def trial_key(
    experiment: str,
    params: Mapping[str, Any],
    seed: int,
    calibration: Optional[Calibration] = None,
    code_version: Optional[str] = None,
) -> str:
    """Content address of one trial.

    Hashes the *fully-resolved* config (partial params merged over the
    experiment's defaults), so ``{"n_bursts": 40}`` and an explicit config
    carrying the same values share one cache entry — and any field change,
    including a default changing in a new code version, misses.
    """
    spec = get_experiment(experiment)
    resolved = to_dict(spec.make_config(**dict(params)))
    payload = {
        "schema": CACHE_SCHEMA,
        "code": code_version if code_version is not None else _CODE_VERSION,
        "experiment": spec.name,
        "config": resolved,
        "seed": int(seed),
        "calibration": to_dict(calibration if calibration is not None else Calibration()),
    }
    return stable_hash(payload)


@dataclass
class TrialRecord:
    """One completed trial inside a sweep."""

    index: int
    experiment: str
    params: Dict[str, Any]
    seed: int
    key: str
    result: Any
    elapsed: float  # seconds the trial took when it actually executed
    cached: bool  # served from the on-disk cache?
    #: Deterministic telemetry snapshot (counters/gauges/histograms) of the
    #: trial, when the engine ran with ``telemetry=True``; cached alongside
    #: the result, so re-runs reproduce identical metric values.  Spans
    #: (wall-clock) never appear here — they go to the run-level profile.
    metrics: Optional[Dict[str, Any]] = None


@dataclass
class SweepRun:
    """A finished sweep: ordered records plus execution statistics."""

    experiment: str
    records: List[TrialRecord]
    elapsed: float  # wall-clock of the whole sweep
    executed: int  # trials actually run this time
    cached_hits: int  # trials served from the cache
    jobs: int
    #: Merged telemetry of the whole sweep (every trial snapshot folded
    #: together, plus the engine's own spans), or None when the engine ran
    #: without telemetry.
    telemetry: Optional[Dict[str, Any]] = None

    @property
    def results(self) -> List[Any]:
        return [record.result for record in self.records]

    def telemetry_by_combo(self) -> Dict[Tuple[Tuple[str, Any], ...], Dict[str, Any]]:
        """Merged per-combo metric snapshots (seeds folded together).

        Empty dict when the sweep ran without telemetry.
        """
        merged: Dict[Tuple[Tuple[str, Any], ...], Dict[str, Any]] = {}
        for combo, records in self.combos().items():
            snaps = [r.metrics for r in records if r.metrics is not None]
            if snaps:
                merged[combo] = merge_snapshots(snaps)
        return merged

    def group_by(self, *param_names: str) -> Dict[Tuple[Any, ...], List[TrialRecord]]:
        """Records bucketed by the values of the named parameters (in order)."""
        groups: Dict[Tuple[Any, ...], List[TrialRecord]] = {}
        for record in self.records:
            key = tuple(record.params.get(name) for name in param_names)
            groups.setdefault(key, []).append(record)
        return groups

    def combos(self) -> Dict[Tuple[Tuple[str, Any], ...], List[TrialRecord]]:
        """Records bucketed by their full parameter combination (seeds merged)."""
        groups: Dict[Tuple[Tuple[str, Any], ...], List[TrialRecord]] = {}
        for record in self.records:
            key = tuple(sorted(
                (name, value) for name, value in record.params.items()
                if isinstance(value, (str, int, float, bool)) or value is None
            ))
            groups.setdefault(key, []).append(record)
        return groups


@dataclass(frozen=True)
class SweepSpec:
    """Declarative description of a sweep over one experiment."""

    experiment: str
    grid: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    base: Mapping[str, Any] = field(default_factory=dict)
    seeds: Sequence[int] = (0,)
    calibration: Optional[Calibration] = None


def _execute_trial(
    experiment: str,
    params: Dict[str, Any],
    seed: int,
    calibration: Optional[Calibration],
    telemetry: bool = False,
    backend: Optional[str] = None,
) -> Tuple[Any, float, Optional[Dict[str, Any]]]:
    """Worker entry point: run one trial -> (result, elapsed, snapshot).

    Top-level so ``ProcessPoolExecutor`` can pickle it by reference; also
    used verbatim by the serial path, which keeps the two modes identical.
    With ``telemetry`` the trial runs inside its own registry scope and the
    full snapshot (including the worker's spans) travels back to the
    parent, which splits the deterministic sections from the profiling.

    ``backend`` pins the scheduler backend for this trial.  Worker
    processes are fresh interpreters whose module default would ignore a
    parent's :func:`repro.sim.engine.set_default_backend`, so the engine
    resolves the parent's default and ships it here explicitly; the
    previous default is restored afterwards so the serial in-process path
    never leaks the override.
    """
    from ..sim.engine import set_default_backend

    previous = set_default_backend(backend) if backend is not None else None
    start = time.perf_counter()
    try:
        if telemetry:
            registry = MetricsRegistry()
            with telemetry_collect(registry):
                result = run_experiment(
                    experiment, seed=seed, calibration=calibration, **params
                )
            snapshot = registry.snapshot(spans=True)
        else:
            result = run_experiment(
                experiment, seed=seed, calibration=calibration, **params
            )
            snapshot = None
    finally:
        if previous is not None:
            set_default_backend(previous)
    return result, time.perf_counter() - start, snapshot


ProgressCallback = Callable[[TrialRecord, int, int], None]


def load_cached(
    experiment: str,
    params: Optional[Mapping[str, Any]] = None,
    seed: int = 0,
    calibration: Optional[Calibration] = None,
    cache_dir: Optional[os.PathLike] = None,
):
    """Fetch one trial's cached result, or None if it was never run.

    The read-only counterpart of a sweep: addresses the trial exactly like
    the engine would (same key, same schema checks) without executing
    anything.  Backs :func:`repro.api.get_result`.
    """
    spec = get_experiment(experiment)
    engine = SweepEngine(cache_dir=cache_dir)
    key = trial_key(experiment, dict(params or {}), seed, calibration)
    hit = engine._cache_load(key, spec.result_cls)
    return hit[0] if hit is not None else None


class SweepEngine:
    """Runs parameter sweeps through the registry, in parallel, memoized.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (default) runs serially in-process —
        no pickling, easier debugging, identical results.
    cache_dir / cache:
        Where trial results are memoized; ``cache=False`` disables
        memoization entirely (benchmarks measuring wall time want this).
    progress:
        ``callback(record, n_done, n_total)`` invoked as each trial
        completes (including cache hits), in completion order.
    telemetry:
        Collect per-trial metric snapshots (workers return them with each
        :class:`TrialRecord`; the run exposes the merged aggregate).  Off
        by default — trials then execute the exact pre-telemetry path.
    quiet / progress_interval:
        The engine logs periodic progress (trials done/total, cache hits,
        ETA) through the ``repro.sweep`` logger roughly every
        ``progress_interval`` seconds; ``quiet=True`` silences it.
    backend:
        Scheduler backend every trial runs on (``"heap"``/``"calendar"``).
        ``None`` resolves the parent's current default at run time and ships
        that to workers explicitly — worker processes are fresh interpreters,
        so without this a parent's ``set_default_backend()`` would silently
        not apply to pooled trials.  Backends are proven bitwise-identical,
        so this is provenance (recorded in :class:`RunManifest`), not a
        cache-key input.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: Optional[os.PathLike] = None,
        cache: bool = True,
        progress: Optional[ProgressCallback] = None,
        telemetry: bool = False,
        quiet: bool = False,
        progress_interval: float = 5.0,
        backend: Optional[str] = None,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = int(jobs)
        self.cache_enabled = bool(cache)
        self.cache_dir = Path(cache_dir) if cache_dir is not None else default_cache_dir()
        self.progress = progress
        self.telemetry = bool(telemetry)
        self.quiet = bool(quiet)
        self.progress_interval = float(progress_interval)
        if backend is not None:
            from ..sim.engine import resolve_backend

            resolve_backend(backend)  # validate the name eagerly
        self.backend = backend

    # ------------------------------------------------------------------
    # Cache plumbing
    # ------------------------------------------------------------------
    def _entry_path(self, key: str) -> Path:
        return self.cache_dir / key[:2] / f"{key}.json"

    def _cache_load(
        self, key: str, result_cls: type
    ) -> Optional[Tuple[Any, float, Optional[Dict[str, Any]]]]:
        if not self.cache_enabled:
            return None
        path = self._entry_path(key)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
            if data.get("schema") != CACHE_SCHEMA:
                return None
            if data.get("result_type") != result_cls.__name__:
                return None
            metrics = data.get("metrics")
            if self.telemetry and metrics is None:
                # The entry predates telemetry collection: re-execute so the
                # trial's metric snapshot exists (and gets cached) too.
                return None
            # Results implementing the ExperimentResult contract own their
            # deserialization; plain dataclasses go through serialization.
            loader = getattr(result_cls, "from_dict", None)
            if callable(loader):
                result = loader(data["result"])
            else:
                result = from_dict(result_cls, data["result"])
            return result, float(data.get("elapsed", 0.0)), metrics
        except (OSError, ValueError, TypeError, KeyError):
            # Missing or corrupt entry: treat as a miss, never as an error.
            return None

    def cache_has(self, key: str, result_cls: type) -> bool:
        """Would ``key`` be served from the cache right now?

        Applies the exact `_cache_load` acceptance rules (schema, result
        type, telemetry completeness), so a True answer means a subsequent
        run of that trial costs zero recomputation.
        """
        return self._cache_load(key, result_cls) is not None

    def _cache_store(
        self, key: str, experiment: str, params: Dict[str, Any],
        seed: int, result: Any, elapsed: float,
        metrics: Optional[Dict[str, Any]] = None,
    ) -> None:
        if not self.cache_enabled:
            return
        try:
            entry = {
                "schema": CACHE_SCHEMA,
                "code": _CODE_VERSION,
                "experiment": experiment,
                "config": to_dict(resolve_config(experiment, **params)),
                "seed": int(seed),
                "result_type": type(result).__name__,
                "elapsed": float(elapsed),
                "result": to_dict(result),
            }
            if metrics is not None:
                entry["metrics"] = metrics
        except TypeError as exc:
            warnings.warn(f"sweep result not cacheable: {exc}", RuntimeWarning)
            return
        path = self._entry_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Write-then-rename so readers never observe a half-written entry
        # (a torn write would otherwise poison the address until cleared);
        # the pid suffix keeps concurrent writers off each other's temp
        # file, and os.replace is atomic so whoever renames last wins with
        # a complete entry either way.
        tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(entry, sort_keys=True))
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except OSError as exc:
            warnings.warn(f"sweep cache write failed: {exc}", RuntimeWarning)
            try:
                tmp.unlink()
            except OSError:
                pass

    def clear_cache(self) -> int:
        """Delete every cache entry; returns the number removed.

        Also sweeps up orphaned ``*.tmp*`` files left by writers that died
        between write and rename (not counted in the return value).
        """
        removed = 0
        if self.cache_dir.is_dir():
            for entry in self.cache_dir.glob("*/*.json"):
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    pass
            for orphan in self.cache_dir.glob("*/*.json.tmp*"):
                try:
                    orphan.unlink()
                except OSError:
                    pass
        return removed

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, spec: SweepSpec, jobs: Optional[int] = None) -> SweepRun:
        """Expand a :class:`SweepSpec` grid and run every (params, seed)."""
        params_list = expand_grid(spec.grid, spec.base)
        return self.run_trials(
            spec.experiment, params_list,
            seeds=spec.seeds, calibration=spec.calibration, jobs=jobs,
        )

    def run_trials(
        self,
        experiment: str,
        params_list: Sequence[Mapping[str, Any]],
        seeds: Sequence[int] = (0,),
        calibration: Optional[Calibration] = None,
        jobs: Optional[int] = None,
    ) -> SweepRun:
        """Run an explicit trial list (each params dict x each seed).

        This is the lower-level entry the benchmarks use when their grids
        are not cartesian (e.g. Fig. 10 scales burst counts per interval).
        """
        pairs: List[Tuple[Mapping[str, Any], int]] = []
        for params in params_list:
            reserved = {"seed", "calibration"} & set(params)
            if reserved:
                raise ValueError(
                    f"trial params may not contain {sorted(reserved)}; "
                    "use the seeds=/calibration= arguments instead"
                )
            for seed in seeds:
                pairs.append((params, int(seed)))
        return self.run_pairs(experiment, pairs, calibration=calibration, jobs=jobs)

    def run_pairs(
        self,
        experiment: str,
        pairs: Sequence[Tuple[Mapping[str, Any], int]],
        calibration: Optional[Calibration] = None,
        jobs: Optional[int] = None,
    ) -> SweepRun:
        """Run an explicit ``(params, seed)`` pair list.

        The lowest-level entry: the campaign runner uses it to execute
        arbitrary trial subsets (shards, resumes, ``--max-trials`` caps)
        that are neither cartesian nor grouped by seed.
        """
        spec = get_experiment(experiment)
        jobs = self.jobs if jobs is None else max(1, int(jobs))
        # Resolve the backend once per run: an explicit engine choice wins,
        # otherwise capture the parent's *current* default so pooled workers
        # (fresh interpreters with the module-level default) run the same
        # scheduler the serial path would.
        from ..sim.engine import DEFAULT_BACKEND as _current_default

        backend = self.backend if self.backend is not None else _current_default
        tasks: List[Tuple[int, Dict[str, Any], int, str]] = []
        for index, (params, seed) in enumerate(pairs):
            trial_params = dict(params)
            key = trial_key(experiment, trial_params, seed, calibration)
            tasks.append((index, trial_params, int(seed), key))

        start = time.perf_counter()
        total = len(tasks)
        done = 0
        cached_so_far = 0
        last_report = start
        records: Dict[int, TrialRecord] = {}
        pending: List[Tuple[int, Dict[str, Any], int, str]] = []
        run_registry = MetricsRegistry() if self.telemetry else None

        def report_progress(force: bool = False) -> None:
            """Periodic progress through the telemetry/logging sink."""
            nonlocal last_report
            if self.quiet or done == 0:
                return
            now = time.perf_counter()
            if not force and now - last_report < self.progress_interval:
                return
            last_report = now
            elapsed = now - start
            eta = elapsed / done * (total - done)
            _LOG.info(
                "%s: %d/%d trials (%d cached), %.1fs elapsed, ETA %.1fs",
                experiment, done, total, cached_so_far, elapsed, eta,
            )

        def finish(record: TrialRecord, snapshot: Optional[Dict[str, Any]] = None) -> None:
            nonlocal done, cached_so_far
            if snapshot is not None:
                # Split profiling from metrics: spans are wall-clock and only
                # merge into the run-level profile; the deterministic sections
                # ride on (and cache with) the record.
                spans = snapshot.pop("spans", None)
                record.metrics = snapshot
                if run_registry is not None:
                    run_registry.merge(snapshot)
                    run_registry.merge({"spans": spans} if spans else None)
            elif record.metrics is not None and run_registry is not None:
                run_registry.merge(record.metrics)
            records[record.index] = record
            done += 1
            cached_so_far += int(record.cached)
            if not record.cached:
                self._cache_store(
                    record.key, spec.name, record.params, record.seed,
                    record.result, record.elapsed, metrics=record.metrics,
                )
            if self.progress is not None:
                self.progress(record, done, total)
            report_progress(force=done == total)

        # Pass 1: serve everything the cache already has.
        for idx, params, seed, key in tasks:
            hit = self._cache_load(key, spec.result_cls)
            if hit is not None:
                result, elapsed, metrics = hit
                finish(TrialRecord(idx, spec.name, params, seed, key,
                                   result, elapsed, cached=True, metrics=metrics))
            else:
                pending.append((idx, params, seed, key))

        # Pass 2: execute the misses, serially or across worker processes.
        if pending and (jobs == 1 or len(pending) == 1):
            for idx, params, seed, key in pending:
                result, elapsed, snapshot = _execute_trial(
                    spec.name, params, seed, calibration, self.telemetry, backend
                )
                finish(TrialRecord(idx, spec.name, params, seed, key,
                                   result, elapsed, cached=False), snapshot)
        elif pending:
            workers = min(jobs, len(pending))
            failure: Optional[BaseException] = None
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    pool.submit(_execute_trial, spec.name, params, seed,
                                calibration, self.telemetry, backend):
                        (idx, params, seed, key)
                    for idx, params, seed, key in pending
                }
                remaining = set(futures)
                while remaining:
                    finished, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                    for future in finished:
                        idx, params, seed, key = futures[future]
                        # Drain every finished future before propagating a
                        # failure: trials that DID complete still get cached
                        # and journaled, so a crashed/killed worker (e.g.
                        # BrokenProcessPool) costs only its own trial on
                        # resume, not its siblings'.
                        try:
                            result, elapsed, snapshot = future.result()
                        except BaseException as exc:  # noqa: BLE001
                            if failure is None:
                                failure = exc
                            continue
                        finish(TrialRecord(idx, spec.name, params, seed, key,
                                           result, elapsed, cached=False), snapshot)
            if failure is not None:
                raise failure

        wall = time.perf_counter() - start
        run_telemetry = None
        if run_registry is not None:
            run_registry.counter("sweep.trials").inc(total)
            run_registry.counter("sweep.executed").inc(len(pending))
            run_registry.counter("sweep.cache_hits").inc(total - len(pending))
            run_registry.observe_span("sweep.run", wall)
            run_telemetry = run_registry.snapshot(spans=True)
        ordered = [records[idx] for idx, *_ in tasks]
        return SweepRun(
            experiment=spec.name,
            records=ordered,
            elapsed=wall,
            executed=len(pending),
            cached_hits=total - len(pending),
            jobs=jobs,
            telemetry=run_telemetry,
        )

"""CTI-detection accuracy experiment (Sec. VII-A).

Reproduces the paper's data collection: a ZigBee *collector* records RSSI
segments (40 kHz for 5 ms, 200 repetitions per setting) while exactly one
source is active:

* a ZigBee sender broadcasting 50 B packets every 2 ms;
* a Bluetooth link streaming audio nearby;
* a Wi-Fi sender broadcasting 100 B packets every 1 ms at 1, 3, and 5 m;
* (extension) a microwave oven.

The traces feed two classifiers: the ZiSense-style decision tree answering
"is this Wi-Fi?" (paper: 96.39% accuracy), and the Smoggy-Link k-means
identifier telling Wi-Fi transmitters apart (paper: 89.76% ± 2.14%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..context import SimContext
from ..core.cti import CtiClassifier, InterfererClass, RssiFeatures, extract_features
from ..log import get_logger
from ..core.fingerprint import DeviceIdentifier, Fingerprint, extract_fingerprint
from ..devices import BluetoothLink, MicrowaveOven, WifiDevice, ZigbeeDevice
from ..mac.frames import zigbee_data_frame
from ..ml.kmeans import clustering_accuracy
from ..phy.propagation import Position
from ..phy.rssi import RssiTrace
from ..sim.process import Process
from ..traffic.generators import WifiPacketSource
from .compat import effective_seed, fold_legacy_kwargs
from .result import ResultBase
from .topology import Calibration

TRACE_DURATION = 5e-3
TRACE_RATE_HZ = 40e3
CAPTURE_SPACING = 8e-3

_LOG = get_logger("cti")


def _capture_many(
    ctx: SimContext,
    collector: ZigbeeDevice,
    n_traces: int,
    warmup: float = 50e-3,
) -> List[RssiTrace]:
    """Capture ``n_traces`` back-to-back RSSI traces at the collector."""
    traces: List[RssiTrace] = []

    def driver():
        yield warmup
        while len(traces) < n_traces:
            collector.rssi.capture(TRACE_DURATION, TRACE_RATE_HZ, traces.append)
            yield CAPTURE_SPACING

    Process(ctx.sim, driver(), name="rssi-capture")
    ctx.sim.run(until=warmup + n_traces * CAPTURE_SPACING + 0.1)
    return traces


def collect_traces(
    source: str,
    distance_m: float = 2.0,
    n_traces: int = 200,
    seed: int = 0,
    calibration: Optional[Calibration] = None,
) -> Tuple[List[RssiTrace], float]:
    """Record traces with one active source; returns (traces, noise floor).

    ``source`` is one of ``zigbee``, ``bluetooth``, ``wifi``, ``microwave``.
    """
    cal = calibration or Calibration()
    ctx = cal.context(seed=seed, trace_kinds=set())
    collector = ZigbeeDevice(ctx, "collector", Position(0.0, 0.0), channel=cal.zigbee_channel)

    if source == "zigbee":
        sender = ZigbeeDevice(
            ctx, "zb-sender", Position(distance_m, 0.0), channel=cal.zigbee_channel
        )

        def broadcast():
            while True:
                frame = zigbee_data_frame("zb-sender", "*", 50)
                sender.mac.send_forced(frame)
                yield 2e-3

        Process(ctx.sim, broadcast(), name="zb-broadcast")
    elif source == "bluetooth":
        BluetoothLink(ctx, "headset", Position(distance_m, 0.0)).start()
    elif source == "wifi":
        wifi_sender = WifiDevice(
            ctx, "wifi-sender", Position(distance_m, 0.0),
            channel=cal.wifi_channel, data_rate_mbps=cal.wifi_rate_mbps,
            tx_power_dbm=cal.wifi_tx_power_dbm,
        )
        WifiDevice(
            ctx, "wifi-receiver", Position(distance_m + 3.0, 0.0),
            channel=cal.wifi_channel, data_rate_mbps=cal.wifi_rate_mbps,
        )
        WifiPacketSource(
            ctx, wifi_sender.mac, "wifi-receiver",
            payload_bytes=cal.wifi_payload_bytes, interval=cal.wifi_interval,
        )
    elif source == "microwave":
        MicrowaveOven(ctx, "oven", Position(distance_m, 0.0)).start()
    else:
        raise ValueError(f"unknown source {source!r}")

    traces = _capture_many(ctx, collector, n_traces)
    return traces, collector.radio.noise_floor_dbm


@dataclass
class CtiDataset:
    features: List[RssiFeatures]
    labels: List[InterfererClass]


def build_cti_dataset(
    n_traces: int = 200,
    seed: int = 0,
    wifi_distances: Sequence[float] = (1.0, 3.0, 5.0),
    include_microwave: bool = False,
    calibration: Optional[Calibration] = None,
) -> CtiDataset:
    """The paper's data-collection campaign as one labeled dataset."""
    features: List[RssiFeatures] = []
    labels: List[InterfererClass] = []

    def add(source: str, distance: float, label: InterfererClass, salt: int) -> None:
        traces, floor = collect_traces(
            source, distance_m=distance, n_traces=n_traces,
            seed=seed * 1009 + salt, calibration=calibration,
        )
        _LOG.debug(
            "collected %d %s traces at %.1f m (noise floor %.1f dBm)",
            len(traces), source, distance, floor,
        )
        for trace in traces:
            features.append(extract_features(trace, floor))
            labels.append(label)

    add("zigbee", 2.0, InterfererClass.ZIGBEE, 1)
    add("bluetooth", 2.0, InterfererClass.BLUETOOTH, 2)
    for i, distance in enumerate(wifi_distances):
        add("wifi", distance, InterfererClass.WIFI, 10 + i)
    if include_microwave:
        add("microwave", 2.0, InterfererClass.MICROWAVE, 20)
    _LOG.debug("CTI dataset ready: %d labeled traces", len(features))
    return CtiDataset(features, labels)


@dataclass
class CtiTrialConfig:
    """Parameters of the interferer-classification experiment (Sec. VII-A)."""

    n_traces: int = 100


@dataclass
class CtiAccuracyResult(ResultBase):
    wifi_detection_accuracy: float  # paper: 96.39 %
    multiclass_accuracy: float
    n_train: int
    n_test: int
    seed: int = -1


def run_cti_accuracy(
    config: Optional[CtiTrialConfig] = None,
    seed: Optional[int] = None,
    calibration: Optional[Calibration] = None,
    **legacy,
) -> CtiAccuracyResult:
    """Train/test the interferer classifier on a fresh synthetic campaign."""
    cfg = fold_legacy_kwargs("run_cti_accuracy", CtiTrialConfig, config, legacy)
    seed = effective_seed(seed)
    dataset = build_cti_dataset(n_traces=cfg.n_traces, seed=seed, calibration=calibration)
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(dataset.features))
    split = len(order) // 2
    train_idx, test_idx = order[:split], order[split:]
    train_f = [dataset.features[i] for i in train_idx]
    train_y = [dataset.labels[i] for i in train_idx]
    test_f = [dataset.features[i] for i in test_idx]
    test_y = [dataset.labels[i] for i in test_idx]
    classifier = CtiClassifier().fit(train_f, train_y)
    return CtiAccuracyResult(
        wifi_detection_accuracy=classifier.wifi_detection_accuracy(test_f, test_y),
        multiclass_accuracy=classifier.accuracy(test_f, test_y),
        n_train=len(train_f),
        n_test=len(test_f),
        seed=seed,
    )


@dataclass
class DeviceIdTrialConfig:
    """Parameters of the device-identification experiment (Sec. VII-A)."""

    n_traces: int = 100
    distances: Sequence[float] = (1.0, 3.0, 5.0)


@dataclass
class DeviceIdResult(ResultBase):
    accuracy: float  # paper: 89.76 % +- 2.14
    n_devices: int
    n_traces: int
    seed: int = -1


def run_device_identification(
    config: Optional[DeviceIdTrialConfig] = None,
    seed: Optional[int] = None,
    calibration: Optional[Calibration] = None,
    **legacy,
) -> DeviceIdResult:
    """Cluster Wi-Fi-transmitter fingerprints and score identification."""
    cfg = fold_legacy_kwargs(
        "run_device_identification", DeviceIdTrialConfig, config, legacy
    )
    seed = effective_seed(seed)
    fingerprints: List[Fingerprint] = []
    truth: List[int] = []
    for device_idx, distance in enumerate(cfg.distances):
        traces, floor = collect_traces(
            "wifi", distance_m=distance, n_traces=cfg.n_traces,
            seed=seed * 13 + device_idx, calibration=calibration,
        )
        for trace in traces:
            fingerprints.append(extract_fingerprint(trace, floor))
            truth.append(device_idx)
    identifier = DeviceIdentifier(
        n_devices=len(cfg.distances), rng=np.random.default_rng(seed)
    )
    labels = identifier.fit(fingerprints)
    accuracy = clustering_accuracy(labels, np.asarray(truth))
    return DeviceIdResult(
        accuracy=accuracy, n_devices=len(cfg.distances),
        n_traces=len(fingerprints), seed=seed,
    )

"""Experiment harness: topology, metrics, and per-figure runners."""

from .ble_extension import BleCoexistenceResult, run_ble_coexistence
from .cti_dataset import (
    CtiAccuracyResult,
    CtiDataset,
    DeviceIdResult,
    build_cti_dataset,
    collect_traces,
    run_cti_accuracy,
    run_device_identification,
)
from .metrics import (
    AirtimeProbe,
    CoexistenceResult,
    PrecisionRecall,
    UtilizationSnapshot,
    aggregate,
)
from .reporting import format_series, format_table
from .runner import (
    CoexistenceConfig,
    EnergyResult,
    LearningTrialResult,
    PriorityResult,
    SignalingTrialResult,
    run_coexistence,
    run_energy_trial,
    run_learning_trial,
    run_priority_experiment,
    run_signaling_trial,
)
from .topology import (
    Calibration,
    LOCATIONS,
    LOCATION_POWERS_DBM,
    Office,
    build_office,
    location_powermap,
)

__all__ = [
    "BleCoexistenceResult",
    "run_ble_coexistence",
    "CtiAccuracyResult",
    "CtiDataset",
    "DeviceIdResult",
    "build_cti_dataset",
    "collect_traces",
    "run_cti_accuracy",
    "run_device_identification",
    "AirtimeProbe",
    "CoexistenceResult",
    "PrecisionRecall",
    "UtilizationSnapshot",
    "aggregate",
    "format_series",
    "format_table",
    "CoexistenceConfig",
    "EnergyResult",
    "LearningTrialResult",
    "PriorityResult",
    "SignalingTrialResult",
    "run_coexistence",
    "run_energy_trial",
    "run_learning_trial",
    "run_priority_experiment",
    "run_signaling_trial",
    "Calibration",
    "LOCATIONS",
    "LOCATION_POWERS_DBM",
    "Office",
    "build_office",
    "location_powermap",
]

"""Sec. VII-D extension: ZigBee / Bluetooth coexistence.

The paper argues BiCord's directly-coordinated allocation generalizes to
other technology pairs.  In the BLE world the "white space" is *spectral*
instead of temporal: a BLE master that attributes its connection-event
failures to the channels overlapping a ZigBee transmitter excludes them
from its hop map (AFH), permanently granting the ZigBee node its 2 MHz —
the ZigBee transmissions themselves act as the cross-technology signal.

The experiment runs a fast BLE connection (audio-rate connection events)
next to a busy ZigBee link and reports both sides' health with AFH on and
off, split into an early window (before the hop map adapts) and a late one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..baselines.csma import CsmaNode
from ..devices import ZigbeeDevice
from ..mac.ble import BleConnection
from ..phy.propagation import Position
from ..traffic.generators import ZigbeeBurstSource
from .compat import effective_seed, fold_legacy_kwargs
from .result import ResultBase
from .topology import Calibration


@dataclass
class BleTrialConfig:
    """Parameters of the ZigBee/BLE coexistence extension (Sec. VII-D)."""

    afh_enabled: bool = True
    duration: float = 12.0
    connection_interval: float = 7.5e-3
    burst_interval: float = 50e-3


@dataclass
class BleCoexistenceResult(ResultBase):
    afh_enabled: bool
    duration: float
    ble_events: int
    ble_success_rate: float
    ble_early_success_rate: float  # first fifth of the run
    ble_late_success_rate: float  # last fifth of the run
    excluded_channels: List[int]
    zigbee_delivered: int
    zigbee_offered: int
    zigbee_mean_delay: float
    seed: int = -1

    @property
    def zigbee_delivery_ratio(self) -> float:
        return self.zigbee_delivered / self.zigbee_offered if self.zigbee_offered else 0.0


def run_ble_coexistence(
    config: Optional[BleTrialConfig] = None,
    seed: Optional[int] = None,
    calibration: Optional[Calibration] = None,
    **legacy,
) -> BleCoexistenceResult:
    """One ZigBee link + one BLE connection sharing the 2.4 GHz band."""
    cfg = fold_legacy_kwargs("run_ble_coexistence", BleTrialConfig, config, legacy)
    seed = effective_seed(seed)
    afh_enabled = cfg.afh_enabled
    duration = cfg.duration
    burst_interval = cfg.burst_interval
    cal = calibration or Calibration()
    ctx = cal.context(seed=seed, trace_kinds=set())

    ble = BleConnection(
        ctx, "ble", Position(0.0, 0.0), Position(1.5, 0.0),
        connection_interval=cfg.connection_interval,
        afh_enabled=afh_enabled,
    )
    zigbee_sender = ZigbeeDevice(
        ctx, "ZS", Position(0.8, 0.6), channel=cal.zigbee_channel, tx_power_dbm=0.0
    )
    zigbee_receiver = ZigbeeDevice(
        ctx, "ZR", Position(2.0, 1.0), channel=cal.zigbee_channel
    )
    node = CsmaNode(zigbee_sender, "ZR")
    # A demanding ZigBee workload (~50% duty cycle): heavy enough that the
    # hop channels overlapping its 2 MHz fail consistently.
    source = ZigbeeBurstSource(
        ctx, node.offer_burst, n_packets=8, payload_bytes=80,
        interval_mean=burst_interval, poisson=True,
        max_bursts=int(duration / burst_interval),
    )

    # Sample the BLE success rate in windows to expose the AFH transition.
    checkpoints = []

    def sample():
        checkpoints.append((ble.event_successes, ble.event_failures))

    n_windows = 5
    for i in range(1, n_windows + 1):
        ctx.sim.schedule(duration * i / n_windows - 1e-6, sample)

    ble.start()
    ctx.sim.run(until=duration)
    ble.stop()
    node_delays = node.packet_delays

    def window_rate(index: int) -> float:
        prev = checkpoints[index - 1] if index > 0 else (0, 0)
        cur = checkpoints[index]
        successes = cur[0] - prev[0]
        total = successes + (cur[1] - prev[1])
        return successes / total if total else 0.0

    return BleCoexistenceResult(
        afh_enabled=afh_enabled,
        duration=duration,
        ble_events=ble.events,
        ble_success_rate=ble.event_success_rate,
        ble_early_success_rate=window_rate(0),
        ble_late_success_rate=window_rate(len(checkpoints) - 1),
        excluded_channels=ble.excluded_channels(),
        zigbee_delivered=node.packets_delivered,
        zigbee_offered=source.bursts_generated * 8,
        zigbee_mean_delay=(sum(node_delays) / len(node_delays)) if node_delays else 0.0,
        seed=seed,
    )

"""Unified experiment registry: every runner behind one uniform contract.

The paper's evaluation is eight separate experiments, each historically a
free function with its own signature.  This module fronts all of them with
one API::

    from repro.experiments import run_experiment

    run_experiment("coexistence", scheme="ecc", location="B", seed=3)
    run_experiment("signaling", power_dbm=-1.0, n_salvos=50)
    run_experiment("ble", afh_enabled=False)

Each :class:`ExperimentSpec` binds a name to a runner, its parameter
dataclass (``config_cls``) and its result dataclass (``result_cls``).  The
uniform call contract is ``runner(config, seed, calibration) -> result``:
parameters come from the config object, and the seed/calibration always
travel separately so sweeps can grid over them without knowing anything
about the individual experiment.

The registry is the single source of truth for the CLI (``bicord-sim
sweep --experiment <name>``) and the sweep engine
(:mod:`repro.experiments.sweep`), which also uses ``config_cls`` to resolve
partial parameter dicts to fully-defaulted configs for cache hashing.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple, get_type_hints

from ..serialization import _coerce
from .ble_extension import BleCoexistenceResult, BleTrialConfig, run_ble_coexistence
from .cti_dataset import (
    CtiAccuracyResult,
    CtiTrialConfig,
    DeviceIdResult,
    DeviceIdTrialConfig,
    run_cti_accuracy,
    run_device_identification,
)
from .runner import (
    CoexistenceConfig,
    EnergyResult,
    EnergyTrialConfig,
    LearningTrialConfig,
    LearningTrialResult,
    PriorityResult,
    PriorityTrialConfig,
    SignalingTrialConfig,
    SignalingTrialResult,
    run_coexistence,
    run_energy_trial,
    run_learning_trial,
    run_priority_experiment,
    run_signaling_trial,
)
from .metrics import CoexistenceResult
from .result import check_result_contract
from .roaming import RoamingResult, RoamingTrialConfig, run_roaming_trial
from .robustness import RobustnessResult, RobustnessTrialConfig, run_robustness_trial
from .scenario import ScenarioResult, ScenarioTrialConfig, run_scenario_trial
from .topology import Calibration


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment: name, runner, and its config/result types."""

    name: str
    runner: Callable[..., Any]
    config_cls: type
    result_cls: type
    description: str = ""
    aliases: Tuple[str, ...] = ()

    def param_names(self) -> Tuple[str, ...]:
        return tuple(field.name for field in dataclasses.fields(self.config_cls))

    def make_config(self, config: Any = None, **params: Any):
        """Resolve (config, **params) to a fully-populated config instance.

        ``config`` may be an instance of ``config_cls``, a plain dict, or
        None; ``params`` are field overrides applied on top.  Dict values
        for nested dataclass fields (e.g. ``bicord_config``) are coerced
        recursively.  Unknown parameter names raise ``TypeError`` loudly.
        """
        if config is None:
            config = self.config_cls()
        elif isinstance(config, dict):
            from ..serialization import from_dict

            config = from_dict(self.config_cls, config)
        elif not isinstance(config, self.config_cls):
            raise TypeError(
                f"experiment {self.name!r} expects a {self.config_cls.__name__} "
                f"config, got {type(config).__name__}"
            )
        if params:
            valid = set(self.param_names())
            unknown = sorted(set(params) - valid)
            if unknown:
                raise TypeError(
                    f"unknown parameter(s) {unknown} for experiment "
                    f"{self.name!r}; valid: {sorted(valid)}"
                )
            hints = get_type_hints(self.config_cls)
            coerced = {
                key: _coerce(hints.get(key), value)
                if isinstance(value, (dict, list))
                else value
                for key, value in params.items()
            }
            config = dataclasses.replace(config, **coerced)
        return config


#: Canonical name -> spec.  Populated by :func:`register` below.
EXPERIMENTS: Dict[str, ExperimentSpec] = {}
_ALIASES: Dict[str, str] = {}


def register(spec: ExperimentSpec) -> ExperimentSpec:
    """Add a spec to the registry (also wiring its aliases).

    Every registered result class must satisfy the
    :data:`~repro.experiments.result.RESULT_CONTRACT` — the sweep cache,
    the campaign runner, and ``repro.api`` all rely on it.
    """
    check_result_contract(spec.result_cls)
    EXPERIMENTS[spec.name] = spec
    for alias in spec.aliases:
        _ALIASES[alias] = spec.name
    return spec


def canonical_name(name: str) -> str:
    """Normalize a user-supplied experiment name ('Device_ID' -> 'device-id')."""
    key = name.strip().lower().replace("_", "-")
    return _ALIASES.get(key, key)


def get_experiment(name: str) -> ExperimentSpec:
    """Look up a spec by (canonicalized) name; KeyError lists what exists."""
    key = canonical_name(name)
    try:
        return EXPERIMENTS[key]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; available: "
            f"{', '.join(sorted(EXPERIMENTS))}"
        ) from None


def experiment_names() -> Tuple[str, ...]:
    """All registered canonical names, sorted."""
    return tuple(sorted(EXPERIMENTS))


def resolve_config(name: str, config: Any = None, **params: Any):
    """Build the fully-defaulted config object an experiment would run with."""
    return get_experiment(name).make_config(config=config, **params)


def run_experiment(
    name: str,
    *,
    config: Any = None,
    seed: Optional[int] = None,
    calibration: Optional[Calibration] = None,
    telemetry: Any = None,
    **params: Any,
):
    """Run any registered experiment through the uniform contract.

    ``params`` are fields of the experiment's config dataclass (see
    ``get_experiment(name).param_names()``); ``seed`` and ``calibration``
    are universal and handled identically for every experiment.

    ``telemetry`` is an optional :class:`repro.telemetry.MetricsRegistry`;
    when given, the runner executes inside a collection scope so every
    simulation context it builds reports into that registry.  ``None``
    (the default) leaves telemetry exactly as the caller scoped it —
    usually off, which is the zero-cost pre-telemetry code path.
    """
    spec = get_experiment(name)
    cfg = spec.make_config(config=config, **params)
    if telemetry is None:
        return spec.runner(cfg, seed, calibration)
    from ..telemetry import collect

    with collect(telemetry):
        return spec.runner(cfg, seed, calibration)


# ----------------------------------------------------------------------
# The paper's eight experiments
# ----------------------------------------------------------------------
register(ExperimentSpec(
    name="signaling",
    runner=run_signaling_trial,
    config_cls=SignalingTrialConfig,
    result_cls=SignalingTrialResult,
    description="cross-technology signaling precision/recall (Tables I-II)",
    aliases=("signalling",),
))
register(ExperimentSpec(
    name="coexistence",
    runner=run_coexistence,
    config_cls=CoexistenceConfig,
    result_cls=CoexistenceResult,
    description="scheme comparison: utilization/delay/throughput (Figs. 10-12)",
    aliases=("coexist",),
))
register(ExperimentSpec(
    name="learning",
    runner=run_learning_trial,
    config_cls=LearningTrialConfig,
    result_cls=LearningTrialResult,
    description="white-space learning convergence (Figs. 7-9)",
))
register(ExperimentSpec(
    name="priority",
    runner=run_priority_experiment,
    config_cls=PriorityTrialConfig,
    result_cls=PriorityResult,
    description="prioritized Wi-Fi traffic (Fig. 13)",
))
register(ExperimentSpec(
    name="energy",
    runner=run_energy_trial,
    config_cls=EnergyTrialConfig,
    result_cls=EnergyResult,
    description="signaling energy overhead vs clear channel (Sec. VII-B)",
))
register(ExperimentSpec(
    name="cti",
    runner=run_cti_accuracy,
    config_cls=CtiTrialConfig,
    result_cls=CtiAccuracyResult,
    description="interferer classification accuracy (Sec. VII-A)",
))
register(ExperimentSpec(
    name="device-id",
    runner=run_device_identification,
    config_cls=DeviceIdTrialConfig,
    result_cls=DeviceIdResult,
    description="Wi-Fi transmitter identification (Sec. VII-A)",
    aliases=("device-identification", "deviceid"),
))
register(ExperimentSpec(
    name="robustness",
    runner=run_robustness_trial,
    config_cls=RobustnessTrialConfig,
    result_cls=RobustnessResult,
    description="PRR/latency degradation under injected coordination faults",
    aliases=("faults", "fault-injection"),
))
register(ExperimentSpec(
    name="scenario",
    runner=run_scenario_trial,
    config_cls=ScenarioTrialConfig,
    result_cls=ScenarioResult,
    description="run any library scenario (repro.scenarios) by name",
    aliases=("scenarios",),
))
register(ExperimentSpec(
    name="roaming",
    runner=run_roaming_trial,
    config_cls=RoamingTrialConfig,
    result_cls=RoamingResult,
    description="multi-AP handoff churn vs coexistence quality (mobility)",
    aliases=("roam",),
))
register(ExperimentSpec(
    name="ble",
    runner=run_ble_coexistence,
    config_cls=BleTrialConfig,
    result_cls=BleCoexistenceResult,
    description="ZigBee/BLE spectral coexistence extension (Sec. VII-D)",
))

"""The uniform result contract every registered experiment returns.

Historically each runner returned its own dataclass with its own surface
(some had ``summary()``, some exposed bare fields, and aggregation helpers
passed ad-hoc dicts around).  This module pins the contract down:

* :class:`ExperimentResult` is the *protocol* — what callers may rely on:
  ``scheme``/``seed`` identity, ``to_dict()``/``from_dict()`` round-trip,
  and ``metrics()``, a flat ``{name: float}`` view used by sweep tables,
  campaign aggregation, and manifests.
* :class:`ResultBase` is the mixin the concrete result dataclasses inherit
  to get the contract for free: serialization delegates to
  :mod:`repro.serialization`, ``metrics()`` defaults to the class's own
  ``summary()`` when it defines one and otherwise to a scan of the numeric
  dataclass fields.

The registry (:func:`repro.experiments.registry.register`) rejects result
classes that do not satisfy the contract, so a new experiment cannot
silently regress to an untyped result shape.

Dict-style access to results (``result["prr"]``) was never documented but
leaked into scripts; it keeps working through a :class:`DeprecationWarning`
shim on the mixin and will be removed in a later release — use attribute
access or ``metrics()``.
"""

from __future__ import annotations

import dataclasses
import warnings
from typing import Any, Dict, KeysView, Protocol, runtime_checkable

from .. import serialization as _ser


@runtime_checkable
class ExperimentResult(Protocol):
    """What every registered experiment result guarantees."""

    scheme: str
    seed: int

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict (JSON-ready) rendering of the result."""
        ...

    def metrics(self) -> Dict[str, float]:
        """Flat numeric view: the numbers tables and aggregations consume."""
        ...


#: Method/attribute surface :func:`check_result_contract` enforces.
RESULT_CONTRACT = ("to_dict", "from_dict", "metrics", "scheme", "seed")


#: Neutral fallbacks for the identity attributes on results that do not
#: carry them as real dataclass fields (resolved via ``__getattr__`` so they
#: never become inherited dataclass defaults, which would corrupt subclass
#: field ordering).
_CONTRACT_DEFAULTS: Dict[str, Any] = {"scheme": "", "seed": -1}


def _provides(result_cls: type, name: str) -> bool:
    if hasattr(result_cls, name):
        return True
    if name in getattr(result_cls, "__dataclass_fields__", {}):
        return True
    # ResultBase answers scheme/seed dynamically on instances.
    return name in _CONTRACT_DEFAULTS and issubclass(result_cls, ResultBase)


def check_result_contract(result_cls: type) -> None:
    """Raise ``TypeError`` unless ``result_cls`` satisfies the contract."""
    missing = [name for name in RESULT_CONTRACT if not _provides(result_cls, name)]
    if missing:
        raise TypeError(
            f"{result_cls.__name__} does not implement the ExperimentResult "
            f"contract (missing: {missing}); inherit "
            f"repro.experiments.ResultBase or provide them explicitly"
        )


class ResultBase:
    """Mixin implementing :class:`ExperimentResult` for result dataclasses.

    ``scheme``/``seed`` identity is answered via ``__getattr__`` fallback
    (not class attributes — those would become inherited dataclass defaults
    and corrupt subclass field order): subclasses carrying them as real
    fields (most do) shadow the fallback, and the few scheme-less
    experiments (signaling, cti, energy, ...) read the neutral defaults.
    """

    # ------------------------------------------------------------------
    # Identity fallbacks
    # ------------------------------------------------------------------
    def __getattr__(self, name: str) -> Any:
        try:
            return _CONTRACT_DEFAULTS[name]
        except KeyError:
            raise AttributeError(
                f"{type(self).__name__!r} object has no attribute {name!r}"
            ) from None

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict (JSON-ready) rendering, via :mod:`repro.serialization`."""
        return _ser.to_dict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]):
        """Rebuild an instance from :meth:`to_dict` output (typed, strict)."""
        return _ser.from_dict(cls, data)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def metrics(self) -> Dict[str, float]:
        """Flat ``{name: float}`` view of the result.

        Uses the subclass's ``summary()`` when it defines one (those pick
        the paper-relevant numbers); otherwise every bool/int/float
        dataclass field is surfaced as a float.
        """
        summary = getattr(self, "summary", None)
        if callable(summary):
            return {name: float(value) for name, value in summary().items()}
        out: Dict[str, float] = {}
        for field in dataclasses.fields(self):  # type: ignore[arg-type]
            value = getattr(self, field.name)
            if isinstance(value, (bool, int, float)):
                out[field.name] = float(value)
        return out

    # ------------------------------------------------------------------
    # Deprecated dict-style access (pre-protocol shapes)
    # ------------------------------------------------------------------
    def _warn_dict_access(self) -> None:
        warnings.warn(
            f"dict-style access to {type(self).__name__} is deprecated; use "
            "attribute access or .metrics()",
            DeprecationWarning,
            stacklevel=3,
        )

    def __getitem__(self, key: str) -> Any:
        self._warn_dict_access()
        try:
            return getattr(self, key)
        except AttributeError:
            raise KeyError(key) from None

    def get(self, key: str, default: Any = None) -> Any:
        self._warn_dict_access()
        return getattr(self, key, default)

    def keys(self) -> KeysView[str]:
        self._warn_dict_access()
        return self.to_dict().keys()

"""Roaming experiment: coordination quality under multi-AP handoffs.

The paper evaluates BiCord in static deployments; this experiment asks
what topology churn does to white-space coordination.  One trial runs a
roaming library scenario (``vehicular-corridor`` or ``campus-roaming``)
where the Wi-Fi client physically traverses an ESS and hands off between
APs under a pluggable selection policy; the result pairs the roaming
telemetry (handoffs, ping-pongs, connectivity gap) with the standard
coexistence metrics, so handoff churn can be read directly against
ZigBee PRR and latency.

:func:`roaming_curve` sweeps client speed x AP density x scheme through
the regular sweep engine — cached, parallelizable, and keyed on the
resolved scenario fingerprint like every other grid.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..serialization import from_dict
from .compat import effective_seed
from .result import ResultBase
from .runner import SCHEMES
from .topology import Calibration

#: Library scenarios a roaming trial may run (both expose the
#: ``speed_mps`` / ``n_aps`` / ``scheme`` / ``policy`` factory knobs).
ROAMING_SCENARIOS = ("vehicular-corridor", "campus-roaming")


@dataclass
class RoamingTrialConfig:
    """One roaming run: scenario, motion, AP density, and policy.

    ``speed_mps``/``n_aps``/``scheme``/``policy`` are the sweep axes and
    map onto the scenario factory's parameters; ``params`` passes any
    further factory knobs (spacing, scan cadence, hysteresis...) through
    untouched.  ``spec_fingerprint`` is *derived* — recomputed from the
    resolved spec on construction so it always lands in the sweep cache
    key and a library edit invalidates exactly the affected entries.
    """

    scenario: str = "vehicular-corridor"
    speed_mps: float = 15.0
    n_aps: int = 4
    scheme: str = "bicord"
    policy: str = "strongest-rssi"
    duration: Optional[float] = None
    max_events: Optional[int] = None
    params: Dict[str, Any] = field(default_factory=dict)
    spec_fingerprint: str = ""

    def __post_init__(self) -> None:
        if self.scenario not in ROAMING_SCENARIOS:
            raise ValueError(
                f"unknown roaming scenario {self.scenario!r}; "
                f"expected one of {ROAMING_SCENARIOS}"
            )
        if self.scheme not in SCHEMES:
            raise ValueError(
                f"unknown scheme {self.scheme!r}; expected one of {SCHEMES}"
            )
        spec = self.resolve_spec()
        self.spec_fingerprint = spec.fingerprint()

    def factory_params(self) -> Dict[str, Any]:
        params = dict(self.params)
        params.update(
            speed_mps=self.speed_mps,
            n_aps=self.n_aps,
            scheme=self.scheme,
            policy=self.policy,
        )
        return params

    def resolve_spec(self):
        """Build the effective :class:`~repro.scenarios.ScenarioSpec`."""
        from ..scenarios import get_scenario  # lazy: breaks the import cycle

        spec = get_scenario(self.scenario, **self.factory_params())
        if self.duration is not None:
            spec = dataclasses.replace(spec, duration=float(self.duration))
        return spec


@dataclass
class RoamingResult(ResultBase):
    """Roaming telemetry + coexistence outcome of one trial (flat)."""

    scenario: str
    scheme: str
    policy: str
    speed_mps: float
    n_aps: int
    duration: float
    handoffs: int
    pingpongs: int
    scans: int
    gap_ms: float  # total connectivity gap spent in handoffs
    wifi_prr: float
    prr: float  # ZigBee packet reception ratio
    mean_delay: float
    p95_delay: float
    zigbee_throughput_bps: float
    whitespaces_issued: int
    control_packets: int
    seed: int = -1

    @property
    def handoff_rate_hz(self) -> float:
        return self.handoffs / self.duration if self.duration > 0 else 0.0

    def summary(self) -> Dict[str, float]:
        """The numbers a roaming curve plots."""
        return {
            "handoffs": float(self.handoffs),
            "pingpongs": float(self.pingpongs),
            "gap_ms": self.gap_ms,
            "handoff_rate_hz": self.handoff_rate_hz,
            "wifi_prr": self.wifi_prr,
            "prr": self.prr,
            "mean_delay_ms": self.mean_delay * 1e3,
        }


def run_roaming_trial(
    config: Optional[RoamingTrialConfig] = None,
    seed: Optional[int] = None,
    calibration: Optional[Calibration] = None,
) -> RoamingResult:
    """Compile and run one roaming scenario (uniform registry contract)."""
    from ..scenarios import compile_scenario  # lazy: breaks the import cycle

    if config is None:
        cfg = RoamingTrialConfig()
    elif isinstance(config, dict):
        cfg = from_dict(RoamingTrialConfig, config)
    else:
        cfg = config
    seed = effective_seed(seed)
    compiled = compile_scenario(cfg.resolve_spec(), seed=seed, calibration=calibration)
    result = compiled.run(max_events=cfg.max_events)
    return RoamingResult(
        scenario=cfg.scenario,
        scheme=result.scheme,
        policy=cfg.policy,
        speed_mps=cfg.speed_mps,
        n_aps=cfg.n_aps,
        duration=result.duration,
        handoffs=int(result.extra.get("roam_handoffs", 0.0)),
        pingpongs=int(result.extra.get("roam_pingpongs", 0.0)),
        scans=int(result.extra.get("roam_scans", 0.0)),
        gap_ms=float(result.extra.get("roam_gap_ms", 0.0)),
        wifi_prr=result.wifi_prr,
        prr=result.delivery_ratio,
        mean_delay=result.mean_delay,
        p95_delay=result.p95_delay,
        zigbee_throughput_bps=result.zigbee_throughput_bps,
        whitespaces_issued=result.whitespaces_issued,
        control_packets=result.control_packets,
        seed=seed,
    )


def roaming_curve(
    speeds: Sequence[float] = (1.5, 5.0, 15.0),
    n_aps: Sequence[int] = (2, 4),
    schemes: Sequence[str] = ("bicord", "csma"),
    seeds: Sequence[int] = (0, 1, 2),
    base: Optional[Mapping[str, Any]] = None,
    calibration: Optional[Calibration] = None,
    engine: Optional[Any] = None,
    jobs: int = 1,
    return_run: bool = False,
):
    """Handoff churn vs coexistence quality over speed x density x scheme.

    Runs the grid through the sweep engine (cached + parallelizable) and
    returns one point per (speed, AP count, scheme): mean handoffs,
    ping-pongs, connectivity gap, and the Wi-Fi/ZigBee delivery metrics
    aggregated over seeds.  Pass an existing ``engine`` to share its
    cache configuration; with ``return_run=True`` the underlying
    :class:`SweepRun` is returned alongside the points.
    """
    from .sweep import SweepEngine, SweepSpec  # local: avoids an import cycle

    if engine is None:
        engine = SweepEngine(jobs=jobs)
    spec = SweepSpec(
        experiment="roaming",
        grid={
            "speed_mps": tuple(float(s) for s in speeds),
            "n_aps": tuple(int(n) for n in n_aps),
            "scheme": tuple(schemes),
        },
        base=dict(base or {}),
        seeds=tuple(seeds),
        calibration=calibration,
    )
    run = engine.run(spec)
    points: List[Dict[str, Any]] = []
    for speed in speeds:
        for count in n_aps:
            for scheme in schemes:
                group = [
                    record.result for record in run.records
                    if record.params.get("speed_mps") == speed
                    and record.params.get("n_aps") == count
                    and record.params.get("scheme") == scheme
                ]
                if not group:
                    continue
                n = len(group)
                points.append({
                    "speed_mps": float(speed),
                    "n_aps": int(count),
                    "scheme": scheme,
                    "handoffs_mean": sum(r.handoffs for r in group) / n,
                    "pingpongs_mean": sum(r.pingpongs for r in group) / n,
                    "gap_ms_mean": sum(r.gap_ms for r in group) / n,
                    "wifi_prr_mean": sum(r.wifi_prr for r in group) / n,
                    "prr_mean": sum(r.prr for r in group) / n,
                    "prr_min": min(r.prr for r in group),
                    "mean_delay": sum(r.mean_delay for r in group) / n,
                    "seeds": n,
                })
    if return_run:
        return points, run
    return points

"""Sharded, crash-safe campaign runner with journaled resume.

A *campaign* is the unit of evaluation above a sweep: a declarative
:class:`CampaignSpec` (experiment + parameter grid + scenario grid + seed
range) expanded into a flat trial list, partitioned into logical *shards*,
and executed through the sweep engine's work-stealing worker pool.  Every
completed trial is persisted twice:

* the **result** goes through the content-addressed sweep cache
  (:mod:`repro.experiments.sweep`) — the substrate that makes resumption
  free of recomputation;
* a **journal line** is appended (fsync'd, JSONL) to the campaign
  directory — the provenance record that makes progress observable without
  touching the cache, and survives ``kill -9`` mid-run because a line is
  written only *after* the trial's cache entry landed.

Killing a campaign at any point therefore loses at most the trials that
were mid-flight; ``resume`` re-plans the same spec, skips every journaled
trial, and the cache serves anything that finished between its last cache
write and the kill.  The journal's header pins the spec fingerprint and
code version, so resuming against a changed spec or incompatible code
fails loudly instead of silently mixing incomparable results.

Layout of a campaign directory::

    <dir>/spec.json      # the CampaignSpec, reloadable
    <dir>/journal.jsonl  # header line + one line per completed trial
    <dir>/manifest.json  # written on completion: provenance + telemetry
    <dir>/report.json    # written on completion: per-scheme CI summaries
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .. import __version__ as _CODE_VERSION
from ..log import get_logger
from ..serialization import from_dict, stable_hash, to_dict
from ..telemetry import build_manifest, merge_snapshots
from .registry import get_experiment
from .stats import MetricSummary, aggregate_records, comparison_table
from .sweep import SweepEngine, SweepRun, TrialRecord, expand_grid, trial_key
from .topology import Calibration

#: Journal/manifest layout version; a mismatch refuses to resume.
CAMPAIGN_SCHEMA = 1

_LOG = get_logger("campaign")


class CampaignError(RuntimeError):
    """Campaign directory unusable: corrupt, mismatched, or incomplete."""


# ======================================================================
# Spec + planning
# ======================================================================
@dataclass(frozen=True)
class CampaignSpec:
    """Declarative description of a whole campaign.

    ``grid`` axes are experiment config fields (like a sweep's);
    ``scenario_grid`` axes are *scenario factory* parameters, merged into
    the nested ``params`` dict of the scenario experiment — e.g.
    ``{"n_links": (2, 4), "placement_seed": tuple(range(10))}`` grids over
    generator placements.  ``seeds`` is the simulation seed range applied
    to every combination.  ``shards`` partitions the trial list into
    logical groups (``index % shards``) whose telemetry is merged
    per-shard in the campaign manifest.
    """

    name: str
    experiment: str = "scenario"
    grid: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    base: Mapping[str, Any] = field(default_factory=dict)
    scenario_grid: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    seeds: Sequence[int] = (0,)
    shards: int = 1
    compare_by: str = "scheme"

    def __post_init__(self) -> None:
        get_experiment(self.experiment)  # unknown name fails at build time
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if not self.seeds:
            raise ValueError("seeds must be non-empty")
        if self.scenario_grid and self.experiment != "scenario":
            raise ValueError(
                "scenario_grid only applies to the 'scenario' experiment"
            )

    def fingerprint(self) -> str:
        """Content address of the spec (layout-versioned)."""
        return stable_hash({"schema": CAMPAIGN_SCHEMA, "spec": to_dict(self)})


@dataclass(frozen=True)
class CampaignTrial:
    """One planned trial: position in the campaign plus its cache address."""

    index: int
    shard: int
    params: Mapping[str, Any]
    seed: int
    key: str


def plan_campaign(
    spec: CampaignSpec, calibration: Optional[Calibration] = None
) -> List[CampaignTrial]:
    """Expand a spec into its full deterministic trial list.

    Expansion order is grid x scenario_grid x seeds, all in insertion
    order, so the trial indices — and therefore the shard assignment and
    the journal — are stable across runs of the same spec.
    """
    combos = expand_grid(spec.grid, spec.base)
    if spec.scenario_grid:
        widened: List[Dict[str, Any]] = []
        for combo in combos:
            for inner in expand_grid(spec.scenario_grid):
                merged = dict(combo)
                merged["params"] = {**dict(merged.get("params", {})), **inner}
                widened.append(merged)
        combos = widened
    trials: List[CampaignTrial] = []
    index = 0
    for combo in combos:
        for seed in spec.seeds:
            trials.append(CampaignTrial(
                index=index,
                shard=index % spec.shards,
                params=combo,
                seed=int(seed),
                key=trial_key(spec.experiment, combo, int(seed), calibration),
            ))
            index += 1
    return trials


def campaign_from_generator(
    name: str,
    generator: str,
    count: int,
    axis: str = "placement_seed",
    start: int = 0,
    params: Optional[Mapping[str, Any]] = None,
    grid: Optional[Mapping[str, Sequence[Any]]] = None,
    base: Optional[Mapping[str, Any]] = None,
    seeds: Sequence[int] = (0,),
    shards: int = 1,
    compare_by: str = "scheme",
) -> CampaignSpec:
    """A campaign over ``count`` placements of one scenario generator.

    Closes the generator→campaign gap: "a campaign of 1000 random-uniform
    deployments" becomes one call instead of hand-writing a
    ``scenario_grid``.  ``axis`` is the generator parameter that is swept
    over ``range(start, start + count)`` — by default ``placement_seed``,
    the knob the ``random_uniform``/``clustered`` generators re-roll
    placements with.  ``params`` are fixed generator parameters (density,
    area, ...); ``grid``/``base`` are ordinary experiment-level campaign
    axes (e.g. ``{"scheme": ("bicord", "ecc")}`` via the base params dict).

    The generator and axis are validated against the scenario library up
    front, so a typo — or sweeping ``placement_seed`` on the deterministic
    ``grid`` generator, which has no such knob — fails at build time with
    the generator's actual parameter list, not deep inside a worker.
    """
    from ..scenarios import get_scenario_entry

    entry = get_scenario_entry(generator)
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    fixed = dict(params or {})
    unknown = sorted((set(fixed) | {axis}) - set(entry.param_names))
    if unknown:
        raise ValueError(
            f"scenario generator {entry.name!r} has no parameter(s) {unknown}; "
            f"valid: {sorted(entry.param_names)}"
        )
    if axis in fixed:
        raise ValueError(
            f"axis {axis!r} also appears in params; it is swept, not fixed"
        )
    reserved = {"scenario", "params"} & set(base or {}) | {"scenario", "params"} & set(grid or {})
    if reserved:
        raise ValueError(
            f"base/grid may not set {sorted(reserved)}; the generator call "
            "owns them (use params=/axis= for generator knobs)"
        )
    merged_base = {"scenario": entry.name, "params": fixed, **dict(base or {})}
    return CampaignSpec(
        name=name,
        experiment="scenario",
        grid=dict(grid or {}),
        base=merged_base,
        scenario_grid={axis: tuple(range(int(start), int(start) + int(count)))},
        seeds=tuple(int(s) for s in seeds),
        shards=shards,
        compare_by=compare_by,
    )


def _flat_params(params: Mapping[str, Any]) -> Dict[str, Any]:
    """Lift nested scenario factory params to the top level for grouping."""
    flat = dict(params)
    inner = flat.get("params")
    if isinstance(inner, Mapping):
        flat = {**flat, **inner}
        flat.pop("params", None)
    return flat


# ======================================================================
# Journal
# ======================================================================
class CampaignJournal:
    """Append-only JSONL progress record of one campaign directory.

    Line 1 is the header (schema, spec fingerprint, code version, trial
    count); every further line is one completed trial.  Appends are
    flushed and fsync'd, so a line either exists completely or not at all
    after a crash; a torn trailing line (the write the kill interrupted)
    is tolerated and ignored on read.
    """

    def __init__(self, path: Path):
        self.path = Path(path)
        self._handle = None

    # -- writing -------------------------------------------------------
    def write_header(self, spec: CampaignSpec, total: int) -> None:
        self._append({
            "kind": "header",
            "schema": CAMPAIGN_SCHEMA,
            "fingerprint": spec.fingerprint(),
            "code": _CODE_VERSION,
            "name": spec.name,
            "experiment": spec.experiment,
            "total": int(total),
        })

    def append_trial(
        self, trial: CampaignTrial, record: TrialRecord,
        metrics: Mapping[str, float],
    ) -> None:
        self._append({
            "kind": "trial",
            "index": trial.index,
            "shard": trial.shard,
            "seed": trial.seed,
            "key": trial.key,
            "params": dict(trial.params),
            "cached": bool(record.cached),
            "elapsed": float(record.elapsed),
            "metrics": dict(metrics),
        })

    def _append(self, line: Dict[str, Any]) -> None:
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(json.dumps(line, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # -- reading -------------------------------------------------------
    def read(self) -> Tuple[Optional[Dict[str, Any]], Dict[int, Dict[str, Any]]]:
        """(header, {index: trial line}) — duplicates resolved last-wins."""
        header: Optional[Dict[str, Any]] = None
        trials: Dict[int, Dict[str, Any]] = {}
        if not self.path.exists():
            return None, {}
        with open(self.path, "r", encoding="utf-8") as handle:
            for raw in handle:
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    line = json.loads(raw)
                except ValueError:
                    # Torn trailing line from a kill mid-append: the trial it
                    # described is simply not "done"; resume re-serves it
                    # from the cache.
                    continue
                if line.get("kind") == "header":
                    header = line
                elif line.get("kind") == "trial":
                    trials[int(line["index"])] = line
        return header, trials


# ======================================================================
# Status / run results
# ======================================================================
@dataclass
class CampaignStatus:
    """Progress snapshot of a campaign directory."""

    name: str
    fingerprint: str
    total: int
    done: int
    cached_hits: int
    shards: int
    per_shard: Dict[int, int]  # shard -> completed trials

    @property
    def complete(self) -> bool:
        return self.done >= self.total

    @property
    def remaining(self) -> int:
        return max(0, self.total - self.done)


@dataclass
class CampaignRun:
    """Outcome of one ``run``/``resume`` invocation."""

    spec: CampaignSpec
    directory: Path
    total: int
    completed: int  # journaled trials after this invocation
    executed: int  # trials actually computed this invocation
    cached_hits: int  # trials served from the cache this invocation
    elapsed: float
    telemetry: Optional[Dict[str, Any]] = None
    summaries: Optional[Dict[Any, Dict[str, MetricSummary]]] = None

    @property
    def complete(self) -> bool:
        return self.completed >= self.total


# ======================================================================
# Runner
# ======================================================================
class CampaignRunner:
    """Drives a campaign directory: start, resume, status, report.

    The runner owns no worker state of its own — execution delegates to
    :meth:`SweepEngine.run_pairs`, whose process pool work-steals trials
    in completion order.  Sharding is *logical*: it partitions the trial
    list for telemetry/manifest grouping and lets operators reason about
    progress in units, while the pool keeps every core busy regardless of
    which shard a trial belongs to.
    """

    def __init__(
        self,
        directory: os.PathLike,
        jobs: int = 1,
        cache_dir: Optional[os.PathLike] = None,
        cache: bool = True,
        calibration: Optional[Calibration] = None,
        telemetry: bool = True,
        quiet: bool = False,
        backend: Optional[str] = None,
    ):
        self.directory = Path(directory)
        self.jobs = int(jobs)
        self.cache_dir = cache_dir
        #: Disabling the cache keeps the journal-level resume (completed
        #: trials are never re-planned) but forfeits the zero-recompute
        #: guarantee for trials killed mid-flight.
        self.cache = bool(cache)
        self.calibration = calibration
        self.telemetry = bool(telemetry)
        self.quiet = bool(quiet)
        #: Scheduler backend shipped to every worker trial (None = the
        #: process default at execution time); recorded in the manifest.
        self.backend = backend

    # -- paths ---------------------------------------------------------
    @property
    def spec_path(self) -> Path:
        return self.directory / "spec.json"

    @property
    def journal_path(self) -> Path:
        return self.directory / "journal.jsonl"

    @property
    def manifest_path(self) -> Path:
        return self.directory / "manifest.json"

    @property
    def report_path(self) -> Path:
        return self.directory / "report.json"

    # -- spec persistence ----------------------------------------------
    def save_spec(self, spec: CampaignSpec) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = {"schema": CAMPAIGN_SCHEMA, "spec": to_dict(spec)}
        tmp = self.spec_path.with_name(f"spec.json.tmp{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(payload, sort_keys=True, indent=2))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.spec_path)

    def load_spec(self) -> CampaignSpec:
        try:
            payload = json.loads(self.spec_path.read_text(encoding="utf-8"))
        except OSError as exc:
            raise CampaignError(
                f"no campaign at {self.directory} (missing spec.json): {exc}"
            ) from None
        if payload.get("schema") != CAMPAIGN_SCHEMA:
            raise CampaignError(
                f"campaign schema {payload.get('schema')!r} != {CAMPAIGN_SCHEMA}; "
                "start a new campaign directory"
            )
        return from_dict(CampaignSpec, payload["spec"])

    # -- execution ------------------------------------------------------
    def run(
        self,
        spec: Optional[CampaignSpec] = None,
        max_trials: Optional[int] = None,
        progress: Optional[Any] = None,
    ) -> CampaignRun:
        """Run (or resume) the campaign; returns the invocation's outcome.

        With ``spec`` given, a fresh campaign is started in the directory
        (refusing to clobber a different existing one).  Without it, the
        directory's own spec is loaded — that is a resume.  ``max_trials``
        caps how many *pending* trials execute this invocation (smoke
        tests and incremental fills); the journal keeps the campaign
        resumable past the cap.
        """
        if spec is not None:
            existing = self.spec_path.exists()
            if existing:
                current = self.load_spec()
                if current.fingerprint() != spec.fingerprint():
                    raise CampaignError(
                        f"campaign directory {self.directory} already holds "
                        f"{current.name!r} with a different spec; use a fresh "
                        "directory or resume without --spec overrides"
                    )
            else:
                self.save_spec(spec)
        else:
            spec = self.load_spec()

        trials = plan_campaign(spec, self.calibration)
        journal = CampaignJournal(self.journal_path)
        header, done_lines = journal.read()
        if header is not None:
            if header.get("schema") != CAMPAIGN_SCHEMA:
                raise CampaignError(
                    f"journal schema {header.get('schema')!r} != "
                    f"{CAMPAIGN_SCHEMA}; start a new campaign directory"
                )
            if header.get("fingerprint") != spec.fingerprint():
                raise CampaignError(
                    "journal was written by a different campaign spec; "
                    "refusing to mix results — use a fresh directory"
                )
        by_index = {trial.index: trial for trial in trials}
        stale = [
            idx for idx, line in done_lines.items()
            if idx not in by_index or by_index[idx].key != line.get("key")
        ]
        if stale:
            raise CampaignError(
                f"{len(stale)} journaled trial(s) no longer match the plan "
                "(code or config changed since the journal was written); "
                "start a new campaign directory"
            )

        pending = [trial for trial in trials if trial.index not in done_lines]
        capped = pending if max_trials is None else pending[: int(max_trials)]
        start = time.perf_counter()
        if header is None:
            journal.write_header(spec, len(trials))

        sweep_run: Optional[SweepRun] = None
        try:
            if capped:
                sweep_run = self._execute(spec, capped, journal, progress)
        finally:
            journal.close()

        completed = len(done_lines) + len(capped)
        run = CampaignRun(
            spec=spec,
            directory=self.directory,
            total=len(trials),
            completed=completed,
            executed=sweep_run.executed if sweep_run else 0,
            cached_hits=sweep_run.cached_hits if sweep_run else 0,
            elapsed=time.perf_counter() - start,
            telemetry=sweep_run.telemetry if sweep_run else None,
        )
        if run.complete:
            run.summaries = self.report()
            self._write_manifest(spec, trials, run)
        return run

    def _execute(
        self,
        spec: CampaignSpec,
        capped: Sequence[CampaignTrial],
        journal: CampaignJournal,
        progress: Optional[Any],
    ) -> SweepRun:
        """Fan the pending trials through the sweep engine, journaling each."""
        exp = get_experiment(spec.experiment)
        by_position = {pos: trial for pos, trial in enumerate(capped)}

        def on_trial(record: TrialRecord, n_done: int, n_total: int) -> None:
            # Runs in the parent, strictly after the engine cached the
            # result — the journal line is the *second* persistence step,
            # so its existence implies the cache entry's.
            trial = by_position[record.index]
            journal.append_trial(trial, record, _metrics_of(record.result))
            if progress is not None:
                progress(trial, record, n_done, n_total)

        engine = SweepEngine(
            jobs=self.jobs,
            cache_dir=self.cache_dir,
            cache=self.cache,
            telemetry=self.telemetry,
            progress=on_trial,
            quiet=self.quiet,
            backend=self.backend,
        )
        if not self.quiet:
            _LOG.info(
                "campaign %s: %d pending trial(s) across %d shard(s), jobs=%d",
                spec.name, len(capped), spec.shards, self.jobs,
            )
        run = engine.run_pairs(
            exp.name,
            [(dict(trial.params), trial.seed) for trial in capped],
            calibration=self.calibration,
        )
        return run

    # -- inspection -----------------------------------------------------
    def status(self) -> CampaignStatus:
        """Progress of the campaign directory (plan is re-derived)."""
        spec = self.load_spec()
        trials = plan_campaign(spec, self.calibration)
        _, done_lines = CampaignJournal(self.journal_path).read()
        per_shard: Dict[int, int] = {shard: 0 for shard in range(spec.shards)}
        for line in done_lines.values():
            per_shard[int(line.get("shard", 0))] = (
                per_shard.get(int(line.get("shard", 0)), 0) + 1
            )
        return CampaignStatus(
            name=spec.name,
            fingerprint=spec.fingerprint(),
            total=len(trials),
            done=len(done_lines),
            cached_hits=sum(
                1 for line in done_lines.values() if line.get("cached")
            ),
            shards=spec.shards,
            per_shard=per_shard,
        )

    def verify_cache(self) -> Tuple[int, int]:
        """(still-cached, journaled) — how resumable the campaign is.

        Every journaled trial whose cache entry still loads is free on
        resume; the difference is what a resume would recompute.
        """
        spec = self.load_spec()
        exp = get_experiment(spec.experiment)
        _, done_lines = CampaignJournal(self.journal_path).read()
        engine = SweepEngine(
            cache_dir=self.cache_dir, cache=self.cache,
            telemetry=self.telemetry,
        )
        hits = sum(
            1 for line in done_lines.values()
            if engine.cache_has(line["key"], exp.result_cls)
        )
        return hits, len(done_lines)

    def records(self) -> List[Tuple[Dict[str, Any], Dict[str, float]]]:
        """Flat ``(params, metrics)`` pairs of every journaled trial."""
        _, done_lines = CampaignJournal(self.journal_path).read()
        return [
            (_flat_params(line.get("params", {})), dict(line.get("metrics", {})))
            for _, line in sorted(done_lines.items())
        ]

    def report(
        self, batch: bool = False
    ) -> Dict[Any, Dict[str, MetricSummary]]:
        """Per-group (default: per-scheme) metric summaries with 95% CIs."""
        spec = self.load_spec()
        records = self.records()
        if not records:
            raise CampaignError(
                f"campaign {self.directory} has no completed trials yet"
            )
        return aggregate_records(records, compare_by=spec.compare_by, batch=batch)

    def report_text(self, batch: bool = False) -> str:
        """The report as a fixed-width comparison table."""
        return comparison_table(self.report(batch=batch))

    def load_report(self) -> Dict[str, Dict[str, MetricSummary]]:
        """Read ``report.json`` back as typed :class:`MetricSummary` objects.

        Inverse of the serialization in :meth:`_write_manifest`: every
        metric payload goes through :meth:`MetricSummary.from_dict`, so
        ``n`` comes back as an int and the statistics as floats — a
        completed campaign's report round-trips exactly.
        """
        if not self.report_path.exists():
            raise CampaignError(
                f"campaign {self.directory} has no report.json yet "
                "(reports are written when a run completes)"
            )
        with open(self.report_path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        return {
            group: {
                name: MetricSummary.from_dict(summary)
                for name, summary in metrics.items()
            }
            for group, metrics in payload.items()
        }

    # -- manifest -------------------------------------------------------
    def _write_manifest(
        self, spec: CampaignSpec, trials: Sequence[CampaignTrial],
        run: CampaignRun,
    ) -> None:
        """Merge per-shard provenance + telemetry into one campaign manifest."""
        _, done_lines = CampaignJournal(self.journal_path).read()
        shard_manifests: List[Dict[str, Any]] = []
        shard_snapshots: List[Dict[str, Any]] = []
        for shard in range(spec.shards):
            lines = [
                line for line in done_lines.values()
                if int(line.get("shard", 0)) == shard
            ]
            if not lines:
                continue
            shard_metrics = aggregate_records(
                [
                    (_flat_params(l.get("params", {})), l.get("metrics", {}))
                    for l in lines
                ],
                compare_by=spec.compare_by,
            )
            headline = {
                f"{group}.{name}": summary.mean
                for group, metrics in shard_metrics.items()
                for name, summary in metrics.items()
            }
            manifest = build_manifest(
                experiment=spec.experiment,
                seeds=sorted({int(l["seed"]) for l in lines}),
                calibration=self.calibration,
                wall_time_s=sum(float(l.get("elapsed", 0.0)) for l in lines),
                metrics=headline,
                extra={"campaign": spec.name, "shard": shard,
                       "trials": len(lines)},
                backend=self.backend,
            )
            shard_manifests.append(manifest.to_dict())
        if run.telemetry is not None:
            shard_snapshots.append(run.telemetry)
        payload = {
            "schema": CAMPAIGN_SCHEMA,
            "name": spec.name,
            "fingerprint": spec.fingerprint(),
            "code": _CODE_VERSION,
            "experiment": spec.experiment,
            "trials": len(trials),
            "shards": spec.shards,
            "compare_by": spec.compare_by,
            "executed_last_run": run.executed,
            "cached_hits_last_run": run.cached_hits,
            "shard_manifests": shard_manifests,
            "telemetry": (
                merge_snapshots(shard_snapshots) if shard_snapshots else None
            ),
            "report": {
                str(group): {
                    name: summary.to_dict()
                    for name, summary in metrics.items()
                }
                for group, metrics in (run.summaries or {}).items()
            },
        }
        tmp = self.manifest_path.with_name(f"manifest.json.tmp{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(payload, sort_keys=True, indent=2))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.manifest_path)
        report_tmp = self.report_path.with_name(f"report.json.tmp{os.getpid()}")
        with open(report_tmp, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(payload["report"], sort_keys=True, indent=2))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(report_tmp, self.report_path)


def _metrics_of(result: Any) -> Dict[str, float]:
    """A result's flat metrics; tolerant of pre-contract shapes."""
    metrics = getattr(result, "metrics", None)
    if callable(metrics):
        return {name: float(value) for name, value in metrics().items()}
    if dataclasses.is_dataclass(result):
        return {
            f.name: float(getattr(result, f.name))
            for f in dataclasses.fields(result)
            if isinstance(getattr(result, f.name), (bool, int, float))
        }
    return {}

"""Legacy-call normalization shared by the experiment runners.

Every runner now has the uniform signature::

    run_x(config: XTrialConfig | None = None,
          seed: int | None = None,
          calibration: Calibration | None = None)

i.e. the scheme/config object, the seed, and the calibration always sit in
the same positions, which is what lets the registry
(:mod:`repro.experiments.registry`) and the sweep engine
(:mod:`repro.experiments.sweep`) drive all of them through one contract.

The pre-registry keyword forms (``run_signaling_trial(location="B",
power_dbm=-3.0)``) keep working: bare field keywords are folded into the
config dataclass here, with a :class:`DeprecationWarning` steering callers
toward the config object or :func:`repro.experiments.run_experiment`.
These shims will be removed in a later release.
"""

from __future__ import annotations

import dataclasses
import warnings
from typing import Any, Dict, Optional, Type, TypeVar

C = TypeVar("C")


def fold_legacy_kwargs(
    fn_name: str,
    config_cls: Type[C],
    config: Any,
    legacy: Dict[str, Any],
    positional_str_field: Optional[str] = None,
) -> C:
    """Return a ``config_cls`` instance from (config, legacy-kwargs).

    ``positional_str_field`` supports the old convention of passing a bare
    string first (``run_priority_experiment("ecc", ...)``): the string is
    folded into that field, with a deprecation warning.
    """
    if isinstance(config, str) and positional_str_field is not None:
        warnings.warn(
            f"passing {positional_str_field!r} positionally to {fn_name}() is "
            f"deprecated; pass {config_cls.__name__}({positional_str_field}="
            f"{config!r}) instead",
            DeprecationWarning,
            stacklevel=3,
        )
        legacy = {positional_str_field: config, **legacy}
        config = None
    if config is None:
        config = config_cls()
    elif not isinstance(config, config_cls):
        raise TypeError(
            f"{fn_name}() expected {config_cls.__name__} or None as its first "
            f"argument, got {type(config).__name__}"
        )
    if legacy:
        valid = {field.name for field in dataclasses.fields(config_cls)}
        unknown = sorted(set(legacy) - valid)
        if unknown:
            raise TypeError(
                f"{fn_name}() got unexpected keyword argument(s) {unknown}; "
                f"valid {config_cls.__name__} fields: {sorted(valid)}"
            )
        warnings.warn(
            f"{fn_name}({', '.join(sorted(legacy))}=...) keyword form is "
            f"deprecated; pass {config_cls.__name__}(...) or use "
            f"run_experiment()",
            DeprecationWarning,
            stacklevel=3,
        )
        config = dataclasses.replace(config, **legacy)
    return config


def effective_seed(seed: Optional[int], config: Any = None) -> int:
    """Resolve the trial seed: explicit argument wins, else config, else 0."""
    if seed is not None:
        return int(seed)
    return int(getattr(config, "seed", 0))

"""Experiment metrics: channel utilization, delay, throughput, detection.

Channel utilization follows the paper's definition (Sec. VIII-D): "we
measure the transmission time of both Wi-Fi and ZigBee devices and add them
together", divided by wall-clock time.  A reserved-but-unused white space
therefore *lowers* utilization — the quantity BiCord optimizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..devices.base import Radio
from .result import ResultBase


def _mean(values: Sequence[float]) -> float:
    return float(np.mean(values)) if len(values) else 0.0


def _percentile(values: Sequence[float], q: float) -> float:
    return float(np.percentile(np.asarray(values), q)) if len(values) else 0.0


@dataclass(frozen=True)
class PrecisionRecall:
    """Cross-technology signaling detection quality (Tables I and II)."""

    true_positives: int
    false_positives: int
    salvos: int
    salvos_detected: int

    @property
    def precision(self) -> float:
        total = self.true_positives + self.false_positives
        return self.true_positives / total if total else 0.0

    @property
    def recall(self) -> float:
        return self.salvos_detected / self.salvos if self.salvos else 0.0


class AirtimeProbe:
    """Snapshots radio airtimes to compute utilization over a window."""

    def __init__(self, wifi_radios: Iterable[Radio], zigbee_radios: Iterable[Radio]):
        self.wifi_radios = list(wifi_radios)
        self.zigbee_radios = list(zigbee_radios)
        self._wifi_start = 0.0
        self._zigbee_start = 0.0
        self._time_start = 0.0

    def start(self, now: float) -> None:
        self._time_start = now
        self._wifi_start = sum(r.tx_airtime for r in self.wifi_radios)
        self._zigbee_start = sum(r.tx_airtime for r in self.zigbee_radios)

    def snapshot(self, now: float) -> "UtilizationSnapshot":
        duration = now - self._time_start
        wifi = sum(r.tx_airtime for r in self.wifi_radios) - self._wifi_start
        zigbee = sum(r.tx_airtime for r in self.zigbee_radios) - self._zigbee_start
        return UtilizationSnapshot(duration=duration, wifi_airtime=wifi, zigbee_airtime=zigbee)


@dataclass(frozen=True)
class UtilizationSnapshot:
    duration: float
    wifi_airtime: float
    zigbee_airtime: float

    @property
    def channel_utilization(self) -> float:
        if self.duration <= 0:
            return 0.0
        return (self.wifi_airtime + self.zigbee_airtime) / self.duration

    @property
    def wifi_utilization(self) -> float:
        return self.wifi_airtime / self.duration if self.duration > 0 else 0.0

    @property
    def zigbee_utilization(self) -> float:
        return self.zigbee_airtime / self.duration if self.duration > 0 else 0.0


@dataclass
class CoexistenceResult(ResultBase):
    """Everything a Fig. 10/11/12/13-style run reports."""

    scheme: str
    location: str
    duration: float
    utilization: UtilizationSnapshot
    zigbee_delays: List[float] = field(default_factory=list)
    zigbee_packets_offered: int = 0
    zigbee_packets_delivered: int = 0
    zigbee_packets_dropped: int = 0
    zigbee_payload_bytes: int = 0
    burst_latencies: List[float] = field(default_factory=list)
    control_packets: int = 0
    whitespace_airtime: float = 0.0
    whitespaces_issued: int = 0
    wifi_delays_low_priority: List[float] = field(default_factory=list)
    wifi_delays_high_priority: List[float] = field(default_factory=list)
    wifi_packets_delivered: int = 0
    extra: Dict[str, float] = field(default_factory=dict)
    seed: int = -1

    # ------------------------------------------------------------------
    @property
    def channel_utilization(self) -> float:
        return self.utilization.channel_utilization

    @property
    def zigbee_utilization(self) -> float:
        return self.utilization.zigbee_utilization

    @property
    def wifi_utilization(self) -> float:
        return self.utilization.wifi_utilization

    @property
    def mean_delay(self) -> float:
        return _mean(self.zigbee_delays)

    @property
    def p95_delay(self) -> float:
        return _percentile(self.zigbee_delays, 95.0)

    @property
    def max_delay(self) -> float:
        return max(self.zigbee_delays) if self.zigbee_delays else 0.0

    @property
    def zigbee_throughput_bps(self) -> float:
        if self.duration <= 0:
            return 0.0
        return 8.0 * self.zigbee_payload_bytes / self.duration

    @property
    def delivery_ratio(self) -> float:
        if self.zigbee_packets_offered == 0:
            return 0.0
        return self.zigbee_packets_delivered / self.zigbee_packets_offered

    @property
    def mean_wifi_delay_low_priority(self) -> float:
        return _mean(self.wifi_delays_low_priority)

    @property
    def mean_wifi_delay_high_priority(self) -> float:
        return _mean(self.wifi_delays_high_priority)

    def summary(self) -> Dict[str, float]:
        """Flat dict for table printing."""
        return {
            "utilization": self.channel_utilization,
            "wifi_util": self.wifi_utilization,
            "zigbee_util": self.zigbee_utilization,
            "mean_delay_ms": self.mean_delay * 1e3,
            "p95_delay_ms": self.p95_delay * 1e3,
            "throughput_kbps": self.zigbee_throughput_bps / 1e3,
            "delivery_ratio": self.delivery_ratio,
        }


def aggregate(results: Sequence[CoexistenceResult]) -> Dict[str, float]:
    """Mean of each summary field across repetitions."""
    if not results:
        raise ValueError("no results to aggregate")
    keys = results[0].summary().keys()
    return {
        key: float(np.mean([r.summary()[key] for r in results])) for key in keys
    }

"""Campaign statistics: batch means and confidence intervals.

A campaign's claim — "BiCord beats ECC on delivery ratio" — is only
defensible with an uncertainty estimate attached.  This module turns flat
``(params, metrics)`` trial records into per-scheme summaries: sample mean,
standard deviation, standard error, and the 95% confidence interval
half-width from the Student t distribution (trial counts are small, so the
normal approximation would understate the interval).

``aggregate_records(..., batch=True)`` applies *batch means* first: trials
sharing one parameter combination (different seeds of the same scenario
placement) are averaged into a single batch observation, and the CI is
computed over the batches.  That keeps placements — which are drawn from a
scenario generator and therefore correlated within a combination — from
masquerading as independent samples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..serialization import stable_hash

#: Confidence level all summaries report.
CONFIDENCE = 0.95

#: Two-sided 95% Student t critical values for df = 1..30 (index df-1).
#: Small campaigns (3-5 seeds) land here, where the normal quantile 1.96
#: understates the interval badly: df=4 needs 2.776, a 42% wider CI.
_T95_TABLE = (
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
)


def t_critical(df: int, confidence: float = CONFIDENCE) -> float:
    """Two-sided Student t critical value for ``df`` degrees of freedom.

    Uses scipy when present.  Without scipy, 95% requests with df <= 30 are
    served from a hardcoded t-table and everything else falls back to the
    normal quantile — adequate for df > 30, where t is within 2% of normal.
    (The old fallback returned z=1.96 for *all* df, understating
    small-sample CIs: df=4 needs 2.776.)
    """
    if df <= 0:
        return float("nan")
    try:
        from scipy import stats as _scipy_stats

        return float(_scipy_stats.t.ppf(0.5 + confidence / 2.0, df))
    except ImportError:
        if abs(confidence - 0.95) < 1e-12 and df <= len(_T95_TABLE):
            return _T95_TABLE[df - 1]
        import statistics

        return statistics.NormalDist().inv_cdf(0.5 + confidence / 2.0)


@dataclass(frozen=True)
class MetricSummary:
    """Mean and uncertainty of one metric over n observations."""

    n: int
    mean: float
    std: float  # sample standard deviation (ddof=1)
    stderr: float  # std / sqrt(n)
    ci95: float  # t-based half-width; 0 when n < 2

    @property
    def lo(self) -> float:
        return self.mean - self.ci95

    @property
    def hi(self) -> float:
        return self.mean + self.ci95

    def to_dict(self) -> Dict[str, Any]:
        """JSON payload: ``n`` stays an int, the rest are floats.

        (The return type used to be declared ``Dict[str, float]`` while
        ``n`` was an int — round-trip through :meth:`from_dict` to get the
        fields back typed.)
        """
        return {
            "n": self.n,
            "mean": self.mean,
            "std": self.std,
            "stderr": self.stderr,
            "ci95": self.ci95,
            "lo": self.lo,
            "hi": self.hi,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "MetricSummary":
        """Rebuild a summary from a :meth:`to_dict` payload (e.g. report.json).

        ``n`` is coerced back to int and the statistics to float, so a
        JSON round-trip reproduces the original object exactly; the derived
        ``lo``/``hi`` keys are ignored.
        """
        return cls(
            n=int(payload["n"]),
            mean=float(payload["mean"]),
            std=float(payload["std"]),
            stderr=float(payload["stderr"]),
            ci95=float(payload["ci95"]),
        )


def summarize(values: Sequence[float]) -> MetricSummary:
    """Mean / std / stderr / 95% CI half-width of a sample."""
    n = len(values)
    if n == 0:
        raise ValueError("cannot summarize an empty sample")
    mean = math.fsum(values) / n
    if n < 2:
        return MetricSummary(n=n, mean=mean, std=0.0, stderr=0.0, ci95=0.0)
    var = math.fsum((v - mean) ** 2 for v in values) / (n - 1)
    std = math.sqrt(var)
    stderr = std / math.sqrt(n)
    return MetricSummary(
        n=n, mean=mean, std=std, stderr=stderr,
        ci95=t_critical(n - 1) * stderr,
    )


def _combo_key(params: Mapping[str, Any]) -> str:
    """Stable identity of one parameter combination (order-insensitive)."""
    return stable_hash(dict(params))


def aggregate_records(
    records: Sequence[Tuple[Mapping[str, Any], Mapping[str, float]]],
    compare_by: str = "scheme",
    batch: bool = False,
) -> Dict[Any, Dict[str, MetricSummary]]:
    """Per-group metric summaries over flat ``(params, metrics)`` records.

    Groups records by ``params[compare_by]`` (records missing the key fall
    into the ``None`` group) and summarizes every metric name that appears
    in the group.  With ``batch=True``, records of one group sharing a
    parameter combination (``params`` minus the compare key) are first
    averaged into a single batch observation — see the module docstring.
    """
    groups: Dict[Any, List[Tuple[Mapping[str, Any], Mapping[str, float]]]] = {}
    for params, metrics in records:
        groups.setdefault(params.get(compare_by), []).append((params, metrics))

    out: Dict[Any, Dict[str, MetricSummary]] = {}
    for group_value, members in groups.items():
        samples: Dict[str, List[float]] = {}
        if batch:
            batches: Dict[str, Dict[str, List[float]]] = {}
            for params, metrics in members:
                combo = _combo_key(
                    {k: v for k, v in params.items() if k != compare_by}
                )
                bucket = batches.setdefault(combo, {})
                for name, value in metrics.items():
                    bucket.setdefault(name, []).append(float(value))
            for bucket in batches.values():
                for name, values in bucket.items():
                    samples.setdefault(name, []).append(
                        math.fsum(values) / len(values)
                    )
        else:
            for _, metrics in members:
                for name, value in metrics.items():
                    samples.setdefault(name, []).append(float(value))
        out[group_value] = {
            name: summarize(values) for name, values in sorted(samples.items())
        }
    return out


def comparison_table(
    summaries: Mapping[Any, Mapping[str, MetricSummary]],
    metrics: Optional[Sequence[str]] = None,
) -> str:
    """Fixed-width text table: one row per group, ``mean +- ci95`` cells."""
    if not summaries:
        return "(no records)"
    if metrics is None:
        names: List[str] = []
        for group in summaries.values():
            for name in group:
                if name not in names:
                    names.append(name)
        metrics = names
    header = ["group"] + list(metrics)
    rows: List[List[str]] = []
    for group_value in sorted(summaries, key=lambda v: (v is None, str(v))):
        row = [str(group_value)]
        for name in metrics:
            cell = summaries[group_value].get(name)
            row.append(
                f"{cell.mean:.4g} +- {cell.ci95:.2g}" if cell is not None else "-"
            )
        rows.append(row)
    widths = [
        max(len(header[i]), *(len(row[i]) for row in rows))
        for i in range(len(header))
    ]
    lines = [
        "  ".join(header[i].ljust(widths[i]) for i in range(len(header))),
        "  ".join("-" * widths[i] for i in range(len(header))),
    ]
    for row in rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)

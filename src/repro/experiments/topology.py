"""The paper's office topology (Fig. 6) and its calibration.

Geometry: the Wi-Fi sender **E** and receiver **F** are 3 m apart; the
ZigBee sender is placed at one of four locations **A-D**; the ZigBee
receiver sits 1-2 m away from the sender.  Our coordinates are chosen so
the signaling-quality phenomena of Tables I/II are *geometric consequences*:

* **A** is closest to F (strong CSI disturbance, best signaling) and far
  from E (no CCA back-off at any power);
* **B** is farthest from F (weakest CSI disturbance at a given power, so
  performance degrades visibly when the power drops);
* **C** is close to E: at 0 dBm its control packets sit right at E's
  effective energy-detection threshold, sometimes making E defer (starving
  the CSI stream), so −1 dBm performs best — the paper's observation;
* **D** is closest to E: only −3 dBm reliably avoids tripping E's CCA.

All physics knobs live in :class:`Calibration` so experiments declare what
they depend on.  The defaults reproduce the paper's regime: 802.11b 1 Mbps
Wi-Fi sending 100 B every 1 ms (≈ saturated channel), ZigBee data at −7 dBm
suffering >95% loss without coordination.
"""

from __future__ import annotations

import os
import sys
import warnings
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..context import SimContext, build_context
from ..core import BicordConfig, PowerMap
from ..devices import WifiDevice, ZigbeeDevice
from ..phy.csi import CsiModel
from ..phy.propagation import FadingModel, PathLossModel, Position

#: Wi-Fi endpoints (meters).
WIFI_SENDER_POS = Position(0.0, 0.0)  # E
WIFI_RECEIVER_POS = Position(3.0, 0.0)  # F

#: ZigBee sender locations A-D (Fig. 6).
LOCATIONS: Dict[str, Position] = {
    "A": Position(2.6, 0.9),  # d(F)=0.99 m, d(E)=2.75 m
    "B": Position(4.4, 0.8),  # d(F)=1.61 m, d(E)=4.47 m
    "C": Position(1.8, 1.0),  # d(F)=1.56 m, d(E)=2.06 m
    "D": Position(1.65, 0.58),  # d(F)=1.47 m, d(E)=1.75 m
}

#: The signaling power the paper uses at each location (footnote 3).
LOCATION_POWERS_DBM: Dict[str, float] = {"A": 0.0, "B": 0.0, "C": -1.0, "D": -3.0}

#: ZigBee receiver offset from its sender (1-2 m link).
ZIGBEE_RECEIVER_OFFSET = (1.2, 0.4)


@dataclass
class Calibration:
    """Every physics/PHY knob an experiment depends on, in one place."""

    # Propagation
    pl0_db: float = 40.0
    path_loss_exponent: float = 3.0
    shadowing_sigma_db: float = 1.0
    fading_sigma_db: float = 1.5
    # Wi-Fi link & workload (Sec. VIII-A)
    wifi_rate_mbps: float = 1.0
    wifi_tx_power_dbm: float = 20.0
    wifi_payload_bytes: int = 100
    wifi_interval: float = 1e-3
    wifi_channel: int = 11
    #: Non-Wi-Fi CCA-ED penalty: effective threshold = -70 dBm + penalty.
    nonwifi_ed_penalty_db: float = 20.0
    # ZigBee link
    zigbee_channel: int = 24
    zigbee_data_power_dbm: float = -7.0
    # CSI observable model
    csi_base_sigma: float = 0.06
    csi_noise_spike_prob: float = 0.02
    csi_zigbee_midpoint_dbm: float = -47.5
    csi_zigbee_width_db: float = 2.5

    def csi_model(self) -> CsiModel:
        return CsiModel(
            base_sigma=self.csi_base_sigma,
            noise_spike_prob=self.csi_noise_spike_prob,
            zigbee_midpoint_dbm=self.csi_zigbee_midpoint_dbm,
            zigbee_width_db=self.csi_zigbee_width_db,
        )

    def context(
        self, seed: int, trace_kinds=frozenset(), faults=None, medium_kernel=None
    ) -> SimContext:
        return build_context(
            seed=seed,
            path_loss=PathLossModel(pl0_db=self.pl0_db, exponent=self.path_loss_exponent),
            fading=FadingModel(
                shadowing_sigma_db=self.shadowing_sigma_db,
                fading_sigma_db=self.fading_sigma_db,
            ),
            trace_kinds=set(trace_kinds) if trace_kinds is not None else None,
            faults=faults,
            medium_kernel=medium_kernel,
        )


@dataclass
class Office:
    """A built scenario: context plus the four standard devices."""

    ctx: SimContext
    wifi_sender: WifiDevice  # E
    wifi_receiver: WifiDevice  # F (hosts the CSI observer)
    zigbee_sender: ZigbeeDevice
    zigbee_receiver: ZigbeeDevice
    calibration: Calibration
    location: str

    @property
    def sim(self):
        return self.ctx.sim


def _warn_if_example_caller() -> None:
    """Deprecate hand-wiring from ``examples/``: library scenarios cover it.

    Only fires when the direct caller lives under an ``examples`` tree —
    runners, the scenario compiler, and tests keep calling silently.
    """
    frame = sys._getframe(2)
    module = frame.f_globals.get("__name__", "")
    filename = frame.f_globals.get("__file__", "") or ""
    normalized = filename.replace(os.sep, "/")
    if "examples" in module.split(".") or "/examples/" in normalized or (
        normalized.startswith("examples/")
    ):
        warnings.warn(
            "calling build_office() directly from an examples script is "
            "deprecated: use repro.scenarios.get_scenario('office') (or "
            "another library scenario) and compile_scenario() instead",
            DeprecationWarning,
            stacklevel=3,
        )


def build_office(
    seed: int = 0,
    location: str = "A",
    calibration: Optional[Calibration] = None,
    trace_kinds=frozenset(),
    zigbee_receiver_pos: Optional[Position] = None,
    faults=None,
) -> Office:
    """Assemble the Fig. 6 office: E, F, and a ZigBee pair at ``location``.

    ``faults`` is an optional :class:`~repro.faults.FaultPlan`; its seeded
    injectors land in ``office.ctx.faults`` where the CSI observer,
    coordinator, and node pick them up automatically.
    """
    if location not in LOCATIONS:
        raise ValueError(f"unknown location {location!r}; expected one of {sorted(LOCATIONS)}")
    _warn_if_example_caller()
    cal = calibration or Calibration()
    ctx = cal.context(seed, trace_kinds=trace_kinds, faults=faults)
    sender = WifiDevice(
        ctx, "E", WIFI_SENDER_POS, channel=cal.wifi_channel,
        tx_power_dbm=cal.wifi_tx_power_dbm, data_rate_mbps=cal.wifi_rate_mbps,
        nonwifi_ed_penalty_db=cal.nonwifi_ed_penalty_db,
    )
    receiver = WifiDevice(
        ctx, "F", WIFI_RECEIVER_POS, channel=cal.wifi_channel,
        tx_power_dbm=cal.wifi_tx_power_dbm, data_rate_mbps=cal.wifi_rate_mbps,
        with_csi=True, csi_model=cal.csi_model(),
        nonwifi_ed_penalty_db=cal.nonwifi_ed_penalty_db,
    )
    zs_pos = LOCATIONS[location]
    zr_pos = zigbee_receiver_pos or zs_pos.moved(*ZIGBEE_RECEIVER_OFFSET)
    zigbee_sender = ZigbeeDevice(
        ctx, "ZS", zs_pos, channel=cal.zigbee_channel,
        tx_power_dbm=cal.zigbee_data_power_dbm,
    )
    zigbee_receiver = ZigbeeDevice(ctx, "ZR", zr_pos, channel=cal.zigbee_channel)
    return Office(ctx, sender, receiver, zigbee_sender, zigbee_receiver, cal, location)


def location_powermap(location: str, default: Optional[float] = None) -> PowerMap:
    """PowerMap preloaded with the paper's per-location signaling power."""
    power = default if default is not None else LOCATION_POWERS_DBM[location]
    return PowerMap(default_power_dbm=power)

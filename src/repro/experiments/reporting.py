"""Plain-text tables for benchmark output (paper-style rows/series)."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
    float_format: str = "{:.4f}",
) -> str:
    """Render an aligned text table; floats formatted, others str()'d."""

    def render(cell: object) -> str:
        if isinstance(cell, float):
            return float_format.format(cell)
        return str(cell)

    rendered: List[List[str]] = [[render(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[object], ys: Sequence[float],
                  y_format: str = "{:.3f}") -> str:
    """One figure series as 'name: x=y, x=y, ...'."""
    pairs = ", ".join(f"{x}={y_format.format(y)}" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"

"""The paper's published numbers, as data, plus trend-agreement scoring.

Reproduction on a simulator cannot (and should not) chase absolute values,
but it *can* be scored on structure: does precision rise with the number of
control packets?  Does location C peak at −1 dBm?  This module carries the
paper's Tables I and II verbatim and provides ordering/trend comparators
used by the benchmarks and tests to quantify agreement instead of
hand-waving it.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

#: Table I — precision of cross-technology signaling.
#: Keys: (location, power_dbm, n_control_packets).
PAPER_TABLE1_PRECISION: Dict[Tuple[str, float, int], float] = {
    ("A", 0.0, 3): 0.8548, ("A", 0.0, 4): 0.9355, ("A", 0.0, 5): 0.95,
    ("B", 0.0, 3): 0.8571, ("B", 0.0, 4): 0.9057, ("B", 0.0, 5): 0.9649,
    ("C", 0.0, 3): 0.5862, ("C", 0.0, 4): 0.7333, ("C", 0.0, 5): 0.8,
    ("D", 0.0, 3): 0.6125, ("D", 0.0, 4): 0.71, ("D", 0.0, 5): 0.73,
    ("A", -1.0, 3): 0.8533, ("A", -1.0, 4): 0.93, ("A", -1.0, 5): 0.9714,
    ("B", -1.0, 3): 0.8, ("B", -1.0, 4): 0.8333, ("B", -1.0, 5): 0.9,
    ("C", -1.0, 3): 0.83, ("C", -1.0, 4): 0.8636, ("C", -1.0, 5): 0.9,
    ("D", -1.0, 3): 0.7222, ("D", -1.0, 4): 0.76, ("D", -1.0, 5): 0.83,
    ("A", -3.0, 3): 0.8286, ("A", -3.0, 4): 0.9365, ("A", -3.0, 5): 0.9525,
    ("B", -3.0, 3): 0.7183, ("B", -3.0, 4): 0.8571, ("B", -3.0, 5): 0.9167,
    ("C", -3.0, 3): 0.72, ("C", -3.0, 4): 0.8222, ("C", -3.0, 5): 0.86,
    ("D", -3.0, 3): 0.8, ("D", -3.0, 4): 0.8636, ("D", -3.0, 5): 0.91,
}

#: Table II — recall of cross-technology signaling.
PAPER_TABLE2_RECALL: Dict[Tuple[str, float, int], float] = {
    ("A", 0.0, 3): 0.88, ("A", 0.0, 4): 0.9355, ("A", 0.0, 5): 0.9828,
    ("B", 0.0, 3): 0.7273, ("B", 0.0, 4): 0.8955, ("B", 0.0, 5): 0.8302,
    ("C", 0.0, 3): 0.73, ("C", 0.0, 4): 0.7526, ("C", 0.0, 5): 0.762,
    ("D", 0.0, 3): 0.68, ("D", 0.0, 4): 0.6383, ("D", 0.0, 5): 0.67,
    ("A", -1.0, 3): 0.8889, ("A", -1.0, 4): 0.9538, ("A", -1.0, 5): 0.9839,
    ("B", -1.0, 3): 0.7727, ("B", -1.0, 4): 0.8421, ("B", -1.0, 5): 0.9483,
    ("C", -1.0, 3): 0.87, ("C", -1.0, 4): 0.92, ("C", -1.0, 5): 0.9,
    ("D", -1.0, 3): 0.63, ("D", -1.0, 4): 0.7029, ("D", -1.0, 5): 0.71,
    ("A", -3.0, 3): 0.9155, ("A", -3.0, 4): 0.9219, ("A", -3.0, 5): 0.9825,
    ("B", -3.0, 3): 0.62, ("B", -3.0, 4): 0.7969, ("B", -3.0, 5): 0.8182,
    ("C", -3.0, 3): 0.68, ("C", -3.0, 4): 0.675, ("C", -3.0, 5): 0.75,
    ("D", -3.0, 3): 0.7358, ("D", -3.0, 4): 0.78, ("D", -3.0, 5): 0.82,
}

#: Headline scalars from the abstract / evaluation text.
PAPER_HEADLINES = {
    "utilization_gain_vs_ecc_at_2s": 0.506,
    "delay_reduction_vs_ecc": 0.842,
    "cti_detection_accuracy": 0.9639,
    "device_identification_accuracy": 0.8976,
    "device_identification_std": 0.0214,
    "fig7_converged_whitespace_s": 0.070,
    "fig7_burst_duration_s": 0.0627,
    "fig9_overprovision_5pkt": 0.271,
    "fig9_overprovision_10pkt": 0.125,
    "fig9_overprovision_15pkt": 0.204,
    "zigbee_loss_without_coordination": 0.95,
    "energy_overhead_low": 0.10,
    "energy_overhead_high": 0.21,
    "wifi_prr_impact_low": 0.01,
    "wifi_prr_impact_high": 0.06,
    "adacomm_sync_latency_s": 0.110,
    "mobility_utilization_drop_max": 0.09,
    "device_mobility_drop": 0.046,
    "device_mobility_delay_increase_s": 0.00313,
}


def pairwise_order_agreement(
    paper: Sequence[float], measured: Sequence[float], tolerance: float = 0.0
) -> float:
    """Fraction of pairwise orderings the measured series preserves.

    1.0 means every "a > b" relation in the paper's series holds in the
    measured one (ties within ``tolerance`` count as preserved).  This is a
    Kendall-style score restricted to the paper's strict orderings.
    """
    if len(paper) != len(measured):
        raise ValueError("series lengths differ")
    agree = total = 0
    for i in range(len(paper)):
        for j in range(i + 1, len(paper)):
            if paper[i] == paper[j]:
                continue
            total += 1
            if paper[i] > paper[j]:
                preserved = measured[i] - measured[j] >= -tolerance
            else:
                preserved = measured[j] - measured[i] >= -tolerance
            agree += preserved
    return agree / total if total else 1.0


def packet_count_trend_agreement(
    table: Dict[Tuple[str, float, int], float],
    measured: Dict[Tuple[str, float, int], float],
    tolerance: float = 0.05,
) -> float:
    """How often "more control packets => higher value" holds in both.

    For every (location, power) the paper's 3→4→5-packet series is
    non-decreasing almost everywhere; score the measured series on the same
    cells (a decrease within ``tolerance`` counts as preserved).
    """
    cells = 0
    agree = 0
    for location in "ABCD":
        for power in (0.0, -1.0, -3.0):
            series = [measured[(location, power, n)] for n in (3, 4, 5)]
            for a, b in zip(series, series[1:]):
                cells += 1
                agree += b >= a - tolerance
    return agree / cells if cells else 1.0


def location_ranking(table: Dict[Tuple[str, float, int], float],
                     power: float, n_packets: int) -> List[str]:
    """Locations sorted best-first at one (power, packet-count) cell."""
    return sorted("ABCD", key=lambda loc: table[(loc, power, n_packets)],
                  reverse=True)

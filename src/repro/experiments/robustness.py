"""Robustness experiment: coordination quality under injected faults.

The paper evaluates BiCord with every mechanism working; this experiment
asks how gracefully the protocol degrades when they do not.  One trial is a
standard coexistence run (:func:`~repro.experiments.runner.run_coexistence`)
with a :class:`~repro.faults.FaultPlan` installed; a *curve* sweeps one
fault dimension over a grid of rates and reports PRR and latency
degradation, aggregated over seeds, through the regular sweep engine (so
robustness grids are cached and parallelized like every other figure).

The ``rate=0`` point of every curve runs the inert plan and therefore
reproduces the fault-free coexistence result exactly — a built-in control
that anchors each curve to the paper's numbers.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..faults import DIMENSIONS, FaultPlan
from .compat import effective_seed, fold_legacy_kwargs
from .result import ResultBase
from .runner import SCHEMES, CoexistenceConfig, run_coexistence
from .topology import Calibration


@dataclass
class RobustnessTrialConfig:
    """One faulted coexistence run.

    Either give ``dimension`` + ``rate`` (the sweep axes, expanded via
    :meth:`FaultPlan.from_dimension`) or an explicit ``faults`` plan, which
    takes precedence.  The remaining fields mirror the coexistence workload
    knobs so robustness trials are directly comparable to Figs. 10-12.
    """

    dimension: str = "all"
    rate: float = 0.0
    scheme: str = "bicord"
    location: str = "A"
    burst_packets: int = 5
    payload_bytes: int = 50
    burst_interval: float = 200e-3
    poisson: bool = True
    n_bursts: int = 40
    faults: Optional[FaultPlan] = None
    #: When set, the trial runs a library scenario (``repro.scenarios``)
    #: under the fault plan instead of the standard coexistence workload;
    #: the burst/location knobs above are then ignored.
    scenario: Optional[str] = None
    scenario_params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.dimension not in DIMENSIONS:
            raise ValueError(
                f"unknown fault dimension {self.dimension!r}; "
                f"expected one of {DIMENSIONS}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.scheme not in SCHEMES:
            raise ValueError(f"unknown scheme {self.scheme!r}; expected one of {SCHEMES}")

    def plan(self) -> FaultPlan:
        """The effective fault plan of this trial."""
        if self.faults is not None:
            return self.faults
        return FaultPlan.from_dimension(self.dimension, self.rate)


@dataclass
class RobustnessResult(ResultBase):
    """Degradation metrics of one faulted run (flat, cache-friendly)."""

    dimension: str
    rate: float
    scheme: str
    location: str
    duration: float
    prr: float  # ZigBee packet reception ratio (delivered / offered)
    mean_delay: float
    p95_delay: float
    max_delay: float
    zigbee_throughput_bps: float
    wifi_packets_delivered: int
    control_packets: int
    whitespaces_issued: int
    bursts_offered: int
    #: Flat ``fault_*`` injection counts from the trial's harness.
    fault_counters: Dict[str, float] = field(default_factory=dict)
    seed: int = -1

    def summary(self) -> Dict[str, float]:
        """The numbers a degradation curve plots."""
        return {
            "rate": self.rate,
            "prr": self.prr,
            "mean_delay": self.mean_delay,
            "p95_delay": self.p95_delay,
            "throughput_bps": self.zigbee_throughput_bps,
        }


def run_robustness_trial(
    config: Optional[RobustnessTrialConfig] = None,
    seed: Optional[int] = None,
    calibration: Optional[Calibration] = None,
    **legacy,
) -> RobustnessResult:
    """Run one coexistence trial under the config's fault plan."""
    cfg = fold_legacy_kwargs(
        "run_robustness_trial", RobustnessTrialConfig, config, legacy,
        positional_str_field="dimension",
    )
    seed = effective_seed(seed)
    if cfg.scenario is not None:
        return _run_scenario_robustness(cfg, seed, calibration)
    coex = CoexistenceConfig(
        scheme=cfg.scheme,
        location=cfg.location,
        seed=seed,
        burst_packets=cfg.burst_packets,
        payload_bytes=cfg.payload_bytes,
        burst_interval=cfg.burst_interval,
        poisson=cfg.poisson,
        n_bursts=cfg.n_bursts,
        faults=cfg.plan(),
    )
    if calibration is not None:
        coex = dataclasses.replace(coex, calibration=calibration)
    result = run_coexistence(coex)
    counters = {
        key: value for key, value in result.extra.items() if key.startswith("fault_")
    }
    return RobustnessResult(
        dimension=cfg.dimension,
        rate=cfg.rate,
        scheme=cfg.scheme,
        location=cfg.location,
        duration=result.duration,
        prr=result.delivery_ratio,
        mean_delay=result.mean_delay,
        p95_delay=result.p95_delay,
        max_delay=result.max_delay,
        zigbee_throughput_bps=result.zigbee_throughput_bps,
        wifi_packets_delivered=result.wifi_packets_delivered,
        control_packets=result.control_packets,
        whitespaces_issued=result.whitespaces_issued,
        bursts_offered=result.zigbee_packets_offered,
        fault_counters=counters,
        seed=seed,
    )


def _run_scenario_robustness(
    cfg: RobustnessTrialConfig, seed: int, calibration: Optional[Calibration]
) -> RobustnessResult:
    """Fault-inject an arbitrary library scenario instead of the office."""
    from ..scenarios import compile_scenario, get_scenario  # lazy: import cycle

    spec = get_scenario(cfg.scenario, **dict(cfg.scenario_params))
    compiled = compile_scenario(
        spec, seed=seed, calibration=calibration, faults=cfg.plan()
    )
    result = compiled.run()
    counters = {
        key: value for key, value in result.extra.items() if key.startswith("fault_")
    }
    return RobustnessResult(
        dimension=cfg.dimension,
        rate=cfg.rate,
        scheme=result.scheme,
        location=spec.location,
        duration=result.duration,
        prr=result.delivery_ratio,
        mean_delay=result.mean_delay,
        p95_delay=result.p95_delay,
        max_delay=result.max_delay,
        zigbee_throughput_bps=result.zigbee_throughput_bps,
        wifi_packets_delivered=sum(
            link.delivered for link in result.wifi.values()
        ),
        control_packets=result.control_packets,
        whitespaces_issued=result.whitespaces_issued,
        bursts_offered=result.packets_offered,
        fault_counters=counters,
        seed=seed,
    )


def robustness_curve(
    dimension: str = "all",
    rates: Sequence[float] = (0.0, 0.1, 0.25, 0.5),
    seeds: Sequence[int] = (0, 1, 2),
    base: Optional[Mapping[str, Any]] = None,
    calibration: Optional[Calibration] = None,
    engine: Optional[Any] = None,
    jobs: int = 1,
    return_run: bool = False,
):
    """PRR/latency degradation vs fault rate, aggregated over seeds.

    Runs the grid through the sweep engine (cached + parallelizable) and
    returns one point per rate: mean/min PRR and mean/p95 delay across
    seeds.  Pass an existing ``engine`` to share its cache configuration.
    With ``return_run=True`` the return value is ``(points, run)`` so
    callers can reach the underlying :class:`SweepRun` (cache statistics,
    telemetry snapshot) without re-running the grid.
    """
    from .sweep import SweepEngine, SweepSpec  # local: avoids an import cycle

    if engine is None:
        engine = SweepEngine(jobs=jobs)
    spec = SweepSpec(
        experiment="robustness",
        grid={"rate": tuple(float(rate) for rate in rates)},
        base={"dimension": dimension, **dict(base or {})},
        seeds=tuple(seeds),
        calibration=calibration,
    )
    run = engine.run(spec)
    points: List[Dict[str, float]] = []
    for rate in rates:
        group = [
            record.result for record in run.records
            if record.params.get("rate") == rate
        ]
        if not group:
            continue
        n = len(group)
        points.append({
            "rate": float(rate),
            "prr_mean": sum(r.prr for r in group) / n,
            "prr_min": min(r.prr for r in group),
            "mean_delay": sum(r.mean_delay for r in group) / n,
            "p95_delay": max(r.p95_delay for r in group),
            "throughput_bps": sum(r.zigbee_throughput_bps for r in group) / n,
            "seeds": n,
        })
    if return_run:
        return points, run
    return points

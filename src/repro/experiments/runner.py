"""Experiment runners: one function per evaluation scenario of the paper.

Each runner assembles the Fig. 6 office from :mod:`.topology`, wires the
scheme under test (BiCord or a baseline), drives the paper's workload, and
returns structured results.  Benchmarks and examples call these functions;
they never poke at devices directly.

All runners share the uniform signature ``run_x(config, seed, calibration)``
so the experiment registry (:mod:`.registry`) and the sweep engine
(:mod:`.sweep`) can drive any of them interchangeably.  The old bare-keyword
call forms still work through deprecation shims (see :mod:`.compat`).
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..baselines import (
    CsmaNode,
    EccCoordinator,
    EccNode,
    PredictiveNode,
    SlowCtcCoordinator,
    SlowCtcNode,
)
from ..core import (
    BicordConfig,
    BicordCoordinator,
    BicordNode,
    DetectorConfig,
    ZigbeeSignalDetector,
)
from ..faults import FaultPlan
from ..mac.frames import zigbee_control_frame
from ..sim.process import Process
from ..traffic.generators import PriorityWifiSource, WifiPacketSource, ZigbeeBurstSource
from .compat import effective_seed, fold_legacy_kwargs
from .metrics import AirtimeProbe, CoexistenceResult, PrecisionRecall
from .result import ResultBase
from .topology import (
    Calibration,
    LOCATION_POWERS_DBM,
    Office,
    build_office,
    location_powermap,
)

SCHEMES = ("bicord", "ecc", "csma", "predictive", "slow-ctc")


# ======================================================================
# Cross-technology signaling quality (Tables I and II)
# ======================================================================
@dataclass
class SignalingTrialConfig:
    """Parameters of one precision/recall trial (Sec. VIII-B)."""

    location: str = "A"
    power_dbm: float = 0.0
    n_control_packets: int = 4
    n_salvos: int = 200
    salvo_gap: float = 16e-3
    detector_config: Optional[DetectorConfig] = None


@dataclass
class SignalingTrialResult(ResultBase):
    location: str
    power_dbm: float
    n_control_packets: int
    pr: PrecisionRecall
    wifi_prr: float  # Wi-Fi packet reception ratio during the trial
    seed: int = -1

    def summary(self) -> Dict[str, float]:
        return {
            "precision": self.pr.precision,
            "recall": self.pr.recall,
            "true_positives": float(self.pr.true_positives),
            "false_positives": float(self.pr.false_positives),
            "wifi_prr": self.wifi_prr,
        }


def run_signaling_trial(
    config: Optional[SignalingTrialConfig] = None,
    seed: Optional[int] = None,
    calibration: Optional[Calibration] = None,
    **legacy,
) -> SignalingTrialResult:
    """Measure signaling precision/recall at one (location, power, count).

    The ZigBee sender emits ``n_salvos`` salvos of ``n_control_packets``
    120 B control packets (forced, overlapping Wi-Fi), separated by
    ``salvo_gap`` of silence.  The Wi-Fi receiver runs the CSI detector; no
    white spaces are granted (we only measure detection quality, as in
    Sec. VIII-B).
    """
    cfg = fold_legacy_kwargs(
        "run_signaling_trial", SignalingTrialConfig, config, legacy,
        positional_str_field="location",
    )
    seed = effective_seed(seed)
    office = build_office(seed=seed, location=cfg.location, calibration=calibration)
    ctx = office.ctx
    registry = ctx.telemetry
    cal = office.calibration
    WifiPacketSource(
        ctx, office.wifi_sender.mac, "F",
        payload_bytes=cal.wifi_payload_bytes, interval=cal.wifi_interval,
    )
    detector = ZigbeeSignalDetector(cfg.detector_config)
    office.wifi_receiver.csi.subscribe(detector.observe)
    detections: List[float] = []
    detector.on_detection.append(detections.append)

    windows: List[Tuple[float, float]] = []
    zs_mac = office.zigbee_sender.mac
    control_duration = zigbee_control_frame("ZS", 120).duration()

    def salvo_driver():
        # Let Wi-Fi traffic and the CSI baseline settle first.
        yield 50e-3
        for _ in range(cfg.n_salvos):
            start = ctx.sim.now
            for i in range(cfg.n_control_packets):
                control = zigbee_control_frame("ZS", 120)
                ctx.sim.schedule(
                    i * (control_duration + 0.2e-3),
                    zs_mac.send_forced, control, cfg.power_dbm,
                )
            salvo_span = cfg.n_control_packets * (control_duration + 0.2e-3)
            # Detections may trail the salvo by one detector window.
            windows.append((start, start + salvo_span + 5e-3))
            yield salvo_span + cfg.salvo_gap

    driver = Process(ctx.sim, salvo_driver(), name="salvo-driver")
    horizon = 0.1 + cfg.n_salvos * (
        cfg.n_control_packets * (control_duration + 0.5e-3) + cfg.salvo_gap
    )
    with registry.span("signaling.sim"):
        ctx.sim.run(until=horizon)
    driver.stop()

    tp = fp = 0
    detected_salvos = [False] * len(windows)
    for t in detections:
        hit = False
        for i, (lo, hi) in enumerate(windows):
            if lo <= t <= hi:
                detected_salvos[i] = True
                hit = True
                break
        if hit:
            tp += 1
        else:
            fp += 1
    pr = PrecisionRecall(
        true_positives=tp,
        false_positives=fp,
        salvos=len(windows),
        salvos_detected=sum(detected_salvos),
    )
    sender_mac = office.wifi_sender.mac
    sent = max(sender_mac.data_sent, 1)
    prr = sender_mac.data_delivered / sent
    # Detection-quality telemetry: this runner sees ground truth (salvo
    # windows), so false wakeups are exact here, unlike in coexistence runs.
    registry.counter("detector.samples_seen").inc(detector.samples_seen)
    registry.counter("detector.detections").inc(detector.detections)
    registry.counter("detector.true_detections").inc(tp)
    registry.counter("detector.false_wakeups").inc(fp)
    registry.record_sim(ctx.sim)
    return SignalingTrialResult(
        cfg.location, cfg.power_dbm, cfg.n_control_packets, pr, prr, seed=seed
    )


# ======================================================================
# Coexistence comparison (Figs. 10-13)
# ======================================================================
@dataclass
class CoexistenceConfig:
    """One coexistence run's parameters (defaults = Sec. VIII-D setup)."""

    scheme: str = "bicord"
    location: str = "A"
    seed: int = 0
    burst_packets: int = 5
    payload_bytes: int = 50
    burst_interval: float = 200e-3
    poisson: bool = True
    n_bursts: int = 40
    signaling_power_dbm: Optional[float] = None  # None = paper's per-location
    ecc_whitespace: float = 20e-3
    ecc_period: float = 100e-3
    mobility: str = "none"  # "none" | "person" | "device"
    calibration: Calibration = field(default_factory=Calibration)
    bicord_config: BicordConfig = field(default_factory=BicordConfig)
    grace: float = 2.0
    #: Optional fault-injection plan; ``None`` (or an inert plan) runs
    #: fault-free and is bitwise-identical to the pre-faults behavior.
    faults: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        if self.scheme not in SCHEMES:
            raise ValueError(f"unknown scheme {self.scheme!r}; expected one of {SCHEMES}")
        if self.mobility not in ("none", "person", "device"):
            raise ValueError(f"unknown mobility {self.mobility!r}")


def _attach_person_mobility(office: Office) -> None:
    """A walking person perturbs the Wi-Fi receiver's CSI (Sec. VIII-F)."""
    rng = office.ctx.streams.stream("mobility/person")

    def deviation(_now: float) -> float:
        if rng.random() < 0.012:
            return float(rng.uniform(0.3, 0.6))
        return 0.0

    office.wifi_receiver.csi.environment_deviation = deviation


def _attach_device_mobility(office: Office) -> None:
    """The ZigBee sender wanders within 1 m of its base (Sec. VIII-F)."""
    base = office.zigbee_sender.position
    rng = office.ctx.streams.stream("mobility/device")
    radio = office.zigbee_sender.radio

    def wander():
        while True:
            angle = float(rng.uniform(0.0, 2.0 * math.pi))
            radius = float(rng.uniform(0.0, 1.0))
            radio.move_to(base.moved(radius * math.cos(angle), radius * math.sin(angle)))
            yield 0.1

    Process(office.ctx.sim, wander(), name="device-mobility")


def run_coexistence(
    config: Optional[CoexistenceConfig] = None,
    seed: Optional[int] = None,
    calibration: Optional[Calibration] = None,
    **legacy,
) -> CoexistenceResult:
    """Run one coexistence scenario and report the paper's metrics.

    ``seed`` and ``calibration``, when given, override the config's own
    ``seed``/``calibration`` fields (the registry always passes them
    explicitly so every experiment shares one seeding convention).
    """
    config = fold_legacy_kwargs("run_coexistence", CoexistenceConfig, config, legacy)
    overrides = {}
    if seed is not None:
        overrides["seed"] = int(seed)
    if calibration is not None:
        overrides["calibration"] = calibration
    if overrides:
        config = dataclasses.replace(config, **overrides)
    office = build_office(
        seed=config.seed, location=config.location, calibration=config.calibration,
        faults=config.faults,
    )
    ctx = office.ctx
    registry = ctx.telemetry
    cal = office.calibration
    WifiPacketSource(
        ctx, office.wifi_sender.mac, "F",
        payload_bytes=cal.wifi_payload_bytes, interval=cal.wifi_interval,
    )
    if config.mobility == "person":
        _attach_person_mobility(office)
    elif config.mobility == "device":
        _attach_device_mobility(office)

    coordinator = None
    power = (
        config.signaling_power_dbm
        if config.signaling_power_dbm is not None
        else LOCATION_POWERS_DBM[config.location]
    )
    if config.scheme == "bicord":
        coordinator = BicordCoordinator(office.wifi_receiver, config=config.bicord_config)
        node = BicordNode(
            office.zigbee_sender, "ZR", config=config.bicord_config,
            powermap=location_powermap(config.location, default=power),
        )
    elif config.scheme == "ecc":
        coordinator = EccCoordinator(
            office.wifi_receiver,
            whitespace=config.ecc_whitespace,
            period=config.ecc_period,
        )
        node = EccNode(office.zigbee_sender, "ZR")
        coordinator.register(node)
    elif config.scheme == "csma":
        node = CsmaNode(office.zigbee_sender, "ZR")
    elif config.scheme == "slow-ctc":
        coordinator = SlowCtcCoordinator(office.wifi_receiver, config=config.bicord_config)
        node = SlowCtcNode(
            office.zigbee_sender, "ZR", coordinator, config=config.bicord_config
        )
    else:  # predictive
        node = PredictiveNode(office.zigbee_sender, "ZR")

    source = ZigbeeBurstSource(
        ctx, node.offer_burst,
        n_packets=config.burst_packets, payload_bytes=config.payload_bytes,
        interval_mean=config.burst_interval, poisson=config.poisson,
        max_bursts=config.n_bursts,
    )
    probe = AirtimeProbe(
        wifi_radios=[office.wifi_sender.radio, office.wifi_receiver.radio],
        zigbee_radios=[office.zigbee_sender.radio, office.zigbee_receiver.radio],
    )
    probe.start(0.0)
    horizon = config.n_bursts * config.burst_interval
    with registry.span("coexist.sim"):
        ctx.sim.run(until=horizon)
        # Grace period: let in-flight packets finish (delays count, airtime too).
        deadline = horizon + config.grace
        while node.outstanding_packets and ctx.sim.now < deadline:
            ctx.sim.run(until=min(ctx.sim.now + 50e-3, deadline))
    duration = ctx.sim.now
    snapshot = probe.snapshot(duration)

    result = CoexistenceResult(
        scheme=config.scheme,
        location=config.location,
        duration=duration,
        utilization=snapshot,
        zigbee_delays=list(node.packet_delays),
        zigbee_packets_offered=source.bursts_generated * config.burst_packets,
        zigbee_packets_delivered=node.packets_delivered,
        zigbee_packets_dropped=getattr(node, "packets_dropped", 0),
        zigbee_payload_bytes=node.delivered_payload_bytes,
        burst_latencies=list(node.burst_latencies),
        control_packets=getattr(node, "control_packets_sent", 0),
        wifi_packets_delivered=office.wifi_sender.mac.data_delivered,
        seed=config.seed,
    )
    if coordinator is not None:
        result.whitespace_airtime = coordinator.whitespace_airtime
        result.whitespaces_issued = getattr(
            coordinator, "grants_issued", getattr(coordinator, "whitespaces_issued", 0)
        )
        if hasattr(coordinator, "stop"):
            coordinator.stop()
    if hasattr(node, "stop"):
        node.stop()
    if ctx.faults is not None:
        result.extra.update(ctx.faults.counters())
        registry.record_faults(ctx.faults)
    if registry.enabled:
        registry.record_sim(ctx.sim)
        registry.counter("coexist.zigbee_offered").inc(result.zigbee_packets_offered)
        registry.counter("coexist.zigbee_delivered").inc(result.zigbee_packets_delivered)
        registry.counter("coexist.zigbee_dropped").inc(result.zigbee_packets_dropped)
        registry.counter("coexist.control_packets").inc(result.control_packets)
        registry.counter("coexist.whitespaces_issued").inc(result.whitespaces_issued)
        # Granted vs used white-space time: the allocator's over-provision
        # (Fig. 9) — "used" is the ZigBee airtime that actually ran inside.
        registry.gauge("coexist.whitespace_granted_s").set_max(result.whitespace_airtime)
        registry.gauge("coexist.zigbee_airtime_s").set_max(snapshot.zigbee_airtime)
        registry.gauge("coexist.channel_utilization").set_max(
            snapshot.channel_utilization
        )
    return result


# ======================================================================
# Learning-phase behaviour (Figs. 7, 8, 9)
# ======================================================================
@dataclass
class LearningTrialConfig:
    """Parameters of one white-space learning observation (Sec. VIII-C)."""

    n_packets: int = 10
    step: float = 30e-3
    location: str = "A"
    payload_bytes: int = 50
    burst_interval: float = 200e-3
    n_bursts: int = 15


@dataclass
class LearningTrialResult(ResultBase):
    n_packets: int
    step: float
    location: str
    iterations: int
    converged: bool
    final_whitespace: float
    trajectory: List[float]  # granted lengths over time (Fig. 7 series)
    burst_airtime: float  # data airtime one burst actually needs
    seed: int = -1

    def summary(self) -> Dict[str, float]:
        return {
            "iterations": float(self.iterations),
            "converged": float(self.converged),
            "final_whitespace_ms": self.final_whitespace * 1e3,
            "burst_airtime_ms": self.burst_airtime * 1e3,
        }


def run_learning_trial(
    config: Optional[LearningTrialConfig] = None,
    seed: Optional[int] = None,
    calibration: Optional[Calibration] = None,
    **legacy,
) -> LearningTrialResult:
    """Observe the white-space learning process for one traffic pattern."""
    cfg = fold_legacy_kwargs("run_learning_trial", LearningTrialConfig, config, legacy)
    seed = effective_seed(seed)
    bicord_config = BicordConfig()
    bicord_config.allocator.initial_whitespace = cfg.step
    office = build_office(seed=seed, location=cfg.location, calibration=calibration)
    ctx = office.ctx
    cal = office.calibration
    WifiPacketSource(
        ctx, office.wifi_sender.mac, "F",
        payload_bytes=cal.wifi_payload_bytes, interval=cal.wifi_interval,
    )
    coordinator = BicordCoordinator(office.wifi_receiver, config=bicord_config)
    node = BicordNode(
        office.zigbee_sender, "ZR", config=bicord_config,
        powermap=location_powermap(cfg.location),
    )
    ZigbeeBurstSource(
        ctx, node.offer_burst, n_packets=cfg.n_packets,
        payload_bytes=cfg.payload_bytes,
        interval_mean=cfg.burst_interval, poisson=False, max_bursts=cfg.n_bursts,
    )
    ctx.sim.run(until=cfg.n_bursts * cfg.burst_interval + 1.0)
    coordinator.stop()
    # Data airtime one burst needs (for over-provision accounting, Fig. 9):
    # packet exchange = frame + ACK + 2 turnarounds + pacing gap.
    from ..mac.frames import zigbee_ack_frame, zigbee_data_frame

    exchange = (
        zigbee_data_frame("ZS", "ZR", cfg.payload_bytes).duration()
        + zigbee_ack_frame("ZR", "ZS", 0).duration()
        + 2 * 192e-6
        + bicord_config.signaling.inter_packet_gap
    )
    return LearningTrialResult(
        n_packets=cfg.n_packets,
        step=cfg.step,
        location=cfg.location,
        iterations=coordinator.allocator.learning_iterations,
        converged=coordinator.allocator.converged,
        final_whitespace=coordinator.allocator.current_whitespace,
        trajectory=coordinator.allocator.whitespace_trajectory(),
        burst_airtime=cfg.n_packets * exchange,
        seed=seed,
    )


# ======================================================================
# Priority traffic (Fig. 13)
# ======================================================================
@dataclass
class PriorityTrialConfig:
    """Parameters of the prioritized Wi-Fi traffic scenario (Sec. VIII-G)."""

    scheme: str = "bicord"
    high_proportion: float = 0.3
    total_duration: float = 10.0
    ecc_whitespace: float = 20e-3
    location: str = "A"


@dataclass
class PriorityResult(ResultBase):
    scheme: str
    high_proportion: float
    utilization: float
    zigbee_utilization: float
    low_priority_wifi_delay: float
    high_priority_wifi_delay: float
    zigbee_mean_delay: float
    seed: int = -1


def run_priority_experiment(
    config: Optional[PriorityTrialConfig] = None,
    seed: Optional[int] = None,
    calibration: Optional[Calibration] = None,
    **legacy,
) -> PriorityResult:
    """Sec. VIII-G: Wi-Fi mixes video (high) and file (low) traffic.

    The coordinator ignores ZigBee requests while the Wi-Fi device is in a
    high-priority phase.
    """
    cfg = fold_legacy_kwargs(
        "run_priority_experiment", PriorityTrialConfig, config, legacy,
        positional_str_field="scheme",
    )
    seed = effective_seed(seed)
    office = build_office(seed=seed, location=cfg.location, calibration=calibration)
    ctx = office.ctx
    cal = office.calibration
    source = PriorityWifiSource(
        ctx, office.wifi_sender.mac, "F",
        high_proportion=cfg.high_proportion, total_duration=cfg.total_duration,
        payload_bytes=cal.wifi_payload_bytes, interval=cal.wifi_interval,
    )

    def policy() -> bool:
        return source.current_priority == 0

    if cfg.scheme == "bicord":
        coordinator = BicordCoordinator(office.wifi_receiver, grant_policy=policy)
        node = BicordNode(
            office.zigbee_sender, "ZR", powermap=location_powermap(cfg.location)
        )
    elif cfg.scheme == "ecc":
        coordinator = EccCoordinator(
            office.wifi_receiver, whitespace=cfg.ecc_whitespace, grant_policy=policy
        )
        node = EccNode(office.zigbee_sender, "ZR")
        coordinator.register(node)
    else:
        raise ValueError("priority experiment compares bicord and ecc")

    ZigbeeBurstSource(
        ctx, node.offer_burst, n_packets=5, payload_bytes=50,
        interval_mean=200e-3, poisson=True,
        max_bursts=int(cfg.total_duration / 0.2),
    )
    probe = AirtimeProbe(
        wifi_radios=[office.wifi_sender.radio, office.wifi_receiver.radio],
        zigbee_radios=[office.zigbee_sender.radio, office.zigbee_receiver.radio],
    )
    probe.start(0.0)
    ctx.sim.run(until=cfg.total_duration + 0.5)
    coordinator.stop()
    snapshot = probe.snapshot(cfg.total_duration)
    low = [d for d, p in office.wifi_sender.mac.delay_records if p == 0]
    high = [d for d, p in office.wifi_sender.mac.delay_records if p > 0]
    return PriorityResult(
        scheme=cfg.scheme,
        high_proportion=cfg.high_proportion,
        utilization=snapshot.channel_utilization,
        zigbee_utilization=snapshot.zigbee_utilization,
        low_priority_wifi_delay=float(np.mean(low)) if low else 0.0,
        high_priority_wifi_delay=float(np.mean(high)) if high else 0.0,
        zigbee_mean_delay=float(np.mean(node.packet_delays)) if node.packet_delays else 0.0,
        seed=seed,
    )


# ======================================================================
# Energy overhead (Sec. VII-B)
# ======================================================================
@dataclass
class EnergyTrialConfig:
    """Parameters of the energy-overhead comparison (Sec. VII-B)."""

    n_packets: int = 10
    payload_bytes: int = 120
    n_bursts: int = 10


@dataclass
class EnergyResult(ResultBase):
    bicord_mj: float
    clear_channel_mj: float
    overhead_fraction: float
    control_packets: int
    seed: int = -1


def run_energy_trial(
    config: Optional[EnergyTrialConfig] = None,
    seed: Optional[int] = None,
    calibration: Optional[Calibration] = None,
    **legacy,
) -> EnergyResult:
    """Energy of delivering bursts under Wi-Fi (BiCord) vs a clear channel."""
    cfg = fold_legacy_kwargs("run_energy_trial", EnergyTrialConfig, config, legacy)
    seed = effective_seed(seed)

    def one(with_wifi: bool) -> Tuple[float, int]:
        office = build_office(seed=seed, location="A", calibration=calibration)
        ctx = office.ctx
        cal = office.calibration
        if with_wifi:
            WifiPacketSource(
                ctx, office.wifi_sender.mac, "F",
                payload_bytes=cal.wifi_payload_bytes, interval=cal.wifi_interval,
            )
            BicordCoordinator(office.wifi_receiver)
        node = BicordNode(
            office.zigbee_sender, "ZR", powermap=location_powermap("A")
        )
        ZigbeeBurstSource(
            ctx, node.offer_burst, n_packets=cfg.n_packets,
            payload_bytes=cfg.payload_bytes,
            interval_mean=300e-3, poisson=False, max_bursts=cfg.n_bursts,
        )
        ctx.sim.run(until=cfg.n_bursts * 0.3 + 1.0)
        return office.zigbee_sender.energy.total_mj, node.control_packets_sent

    bicord_mj, control = one(with_wifi=True)
    clear_mj, _ = one(with_wifi=False)
    overhead = (bicord_mj - clear_mj) / clear_mj if clear_mj > 0 else 0.0
    return EnergyResult(bicord_mj, clear_mj, overhead, control, seed=seed)

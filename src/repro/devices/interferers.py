"""Non-protocol interference sources: Bluetooth links and microwave ovens.

These devices never decode anything in our scenarios; what matters is the
energy signature they leave on a ZigBee node's RSSI trace (Sec. VII-A uses a
Bluetooth headset playing music and mentions microwave ovens) and the
interference power they contribute to receptions.

They are implemented as *emitters* — lightweight sources with a name and a
position that put transmissions on the medium without owning a full radio.
"""

from __future__ import annotations

from typing import Optional

from ..context import SimContext
from ..phy.medium import Technology, Transmission
from ..phy.modulation import ble_frame_duration
from ..phy.propagation import Position
from ..phy.spectrum import MICROWAVE_BAND, Band, ble_channel
from ..sim.process import Process


class Emitter:
    """A transmit-only RF source (no receive path, no MAC)."""

    def __init__(self, ctx: SimContext, name: str, position: Position):
        self.ctx = ctx
        self.name = name
        self.position = position
        self.emissions = 0
        self.airtime = 0.0

    def emit(self, duration: float, power_dbm: float, band: Band, technology: Technology) -> Transmission:
        self.emissions += 1
        self.airtime += duration
        return self.ctx.medium.transmit(self, duration, power_dbm, band, technology)

    def on_own_transmission_end(self, tx: Transmission) -> None:  # medium hook
        pass


class BluetoothLink(Emitter):
    """A Bluetooth audio link hopping over the 2.4 GHz band.

    Models the RSSI-visible behaviour of an A2DP stream: packets every
    ``slot_interval`` (default 3.75 ms — a 2-DH5-ish cadence), each on a
    pseudo-random hop channel, so only ~1/40 of them land near any particular
    ZigBee channel.  On a 5 ms RSSI trace this looks like rare, short energy
    pulses — very different from both Wi-Fi and ZigBee.
    """

    def __init__(
        self,
        ctx: SimContext,
        name: str,
        position: Position,
        power_dbm: float = 4.0,
        packet_bytes: int = 120,
        slot_interval: float = 3.75e-3,
        jitter: float = 0.3e-3,
    ):
        super().__init__(ctx, name, position)
        self.power_dbm = power_dbm
        self.packet_bytes = packet_bytes
        self.slot_interval = slot_interval
        self.jitter = jitter
        self._rng = ctx.streams.stream(f"ble/{name}")
        self._process: Optional[Process] = None

    def start(self) -> None:
        if self._process is not None:
            raise RuntimeError(f"{self.name} already started")
        self._process = Process(self.ctx.sim, self._run(), name=f"ble/{self.name}")

    def stop(self) -> None:
        if self._process is not None:
            self._process.stop()
            self._process = None

    def _run(self):
        duration = ble_frame_duration(self.packet_bytes)
        while True:
            hop = int(self._rng.integers(0, 40))
            self.emit(duration, self.power_dbm, ble_channel(hop), Technology.BLE)
            delay = self.slot_interval + float(self._rng.uniform(0.0, self.jitter))
            yield max(delay, duration)


class MicrowaveOven(Emitter):
    """A microwave oven: wideband noise gated at the mains half-cycle.

    The magnetron radiates for roughly half of each 20 ms mains cycle (50 Hz
    grid), sweeping a wide chunk of the ISM band.  On an RSSI trace this is a
    long, continuous plateau — longer on-air time than any packetized
    technology.
    """

    def __init__(
        self,
        ctx: SimContext,
        name: str,
        position: Position,
        power_dbm: float = 30.0,
        mains_hz: float = 50.0,
        duty: float = 0.5,
    ):
        super().__init__(ctx, name, position)
        self.power_dbm = power_dbm
        self.period = 1.0 / mains_hz
        self.duty = duty
        self._rng = ctx.streams.stream(f"microwave/{name}")
        self._process: Optional[Process] = None

    def start(self) -> None:
        if self._process is not None:
            raise RuntimeError(f"{self.name} already started")
        self._process = Process(self.ctx.sim, self._run(), name=f"microwave/{self.name}")

    def stop(self) -> None:
        if self._process is not None:
            self._process.stop()
            self._process = None

    def _run(self):
        while True:
            on_time = self.period * self.duty * float(self._rng.uniform(0.9, 1.1))
            power = self.power_dbm + float(self._rng.normal(0.0, 1.5))
            self.emit(on_time, power, MICROWAVE_BAND, Technology.MICROWAVE)
            yield self.period

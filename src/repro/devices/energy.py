"""CC2420-class energy accounting for ZigBee nodes.

The paper's Sec. VII-B argues BiCord costs 10-21 % extra energy versus a
clear channel, and less than two interference-induced retransmissions.  The
meter reproduces that arithmetic with the CC2420 datasheet currents: the
radio draws slightly *more* in receive/listen mode (18.8 mA) than when
transmitting at 0 dBm (17.4 mA), which is why idle listening — the cost of
passive channel assessment schemes — dominates low-power budgets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

#: CC2420 transmit current (mA) by output power (dBm), from the datasheet.
_TX_CURRENT_MA: List[Tuple[float, float]] = [
    (-25.0, 8.5),
    (-15.0, 9.9),
    (-10.0, 11.0),
    (-7.0, 12.5),
    (-5.0, 13.9),
    (-3.0, 15.2),
    (-1.0, 16.5),
    (0.0, 17.4),
]

RX_CURRENT_MA = 18.8
IDLE_CURRENT_MA = 0.426
SLEEP_CURRENT_MA = 0.02
SUPPLY_VOLTAGE = 3.0


def tx_current_ma(power_dbm: float) -> float:
    """CC2420 transmit current at ``power_dbm`` (linear interpolation)."""
    points = _TX_CURRENT_MA
    if power_dbm <= points[0][0]:
        return points[0][1]
    if power_dbm >= points[-1][0]:
        return points[-1][1]
    for (p0, i0), (p1, i1) in zip(points, points[1:]):
        if p0 <= power_dbm <= p1:
            fraction = (power_dbm - p0) / (p1 - p0)
            return i0 + fraction * (i1 - i0)
    raise AssertionError("unreachable")


@dataclass
class EnergyMeter:
    """Accumulates radio energy in millijoules, split by activity."""

    tx_mj: float = 0.0
    rx_mj: float = 0.0
    listen_mj: float = 0.0
    sleep_mj: float = 0.0
    tx_seconds: float = 0.0
    rx_seconds: float = 0.0
    listen_seconds: float = 0.0
    by_label: Dict[str, float] = field(default_factory=dict)

    def charge_tx(self, duration: float, power_dbm: float, label: str = "") -> None:
        energy = duration * tx_current_ma(power_dbm) * SUPPLY_VOLTAGE
        self.tx_mj += energy
        self.tx_seconds += duration
        if label:
            self.by_label[label] = self.by_label.get(label, 0.0) + energy

    def charge_rx(self, duration: float, label: str = "") -> None:
        energy = duration * RX_CURRENT_MA * SUPPLY_VOLTAGE
        self.rx_mj += energy
        self.rx_seconds += duration
        if label:
            self.by_label[label] = self.by_label.get(label, 0.0) + energy

    def charge_listen(self, duration: float, label: str = "") -> None:
        energy = duration * RX_CURRENT_MA * SUPPLY_VOLTAGE
        self.listen_mj += energy
        self.listen_seconds += duration
        if label:
            self.by_label[label] = self.by_label.get(label, 0.0) + energy

    def charge_sleep(self, duration: float) -> None:
        self.sleep_mj += duration * SLEEP_CURRENT_MA * SUPPLY_VOLTAGE

    @property
    def total_mj(self) -> float:
        return self.tx_mj + self.rx_mj + self.listen_mj + self.sleep_mj

"""Device models: radios, Wi-Fi appliances, ZigBee nodes, interferers."""

from .base import Device, Radio, RxInfo
from .energy import RX_CURRENT_MA, SUPPLY_VOLTAGE, EnergyMeter, tx_current_ma
from .interferers import BluetoothLink, Emitter, MicrowaveOven
from .wifi_device import WifiDevice
from .zigbee_device import ZigbeeDevice

__all__ = [
    "Device",
    "Radio",
    "RxInfo",
    "RX_CURRENT_MA",
    "SUPPLY_VOLTAGE",
    "EnergyMeter",
    "tx_current_ma",
    "BluetoothLink",
    "Emitter",
    "MicrowaveOven",
    "WifiDevice",
    "ZigbeeDevice",
]

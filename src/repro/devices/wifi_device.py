"""A Wi-Fi appliance: radio + DCF MAC (+ optional CSI observer)."""

from __future__ import annotations

from typing import Optional

from ..context import SimContext
from ..phy.csi import CsiModel, CsiObserver
from ..phy.medium import Technology
from ..phy.propagation import Position
from ..phy.spectrum import wifi_channel
from .base import Device, Radio


class WifiDevice(Device):
    """An 802.11g station.

    ``with_csi=True`` attaches a :class:`~repro.phy.csi.CsiObserver` — the
    paper installs the CSI extractor on the *receiver* of the Wi-Fi link,
    which is also where BiCord's detector runs.
    """

    def __init__(
        self,
        ctx: SimContext,
        name: str,
        position: Position,
        channel: int = 11,
        tx_power_dbm: float = 20.0,
        data_rate_mbps: float = 24.0,
        with_csi: bool = False,
        csi_model: Optional[CsiModel] = None,
        nonwifi_ed_penalty_db: float = 20.0,
    ):
        from ..mac.wifi import WifiMac  # local import to avoid cycle at module load

        radio = Radio(
            name=name,
            position=position,
            band=wifi_channel(channel),
            technology=Technology.WIFI,
            sim=ctx.sim,
            streams=ctx.streams,
            trace=ctx.trace,
            sensitivity_dbm=-90.0,
            noise_figure_db=7.0,
        )
        ctx.medium.attach(radio)
        super().__init__(name, radio)
        self.ctx = ctx
        self.mac = WifiMac(
            radio,
            ctx.sim,
            trace=ctx.trace,
            data_rate_mbps=data_rate_mbps,
            tx_power_dbm=tx_power_dbm,
            nonwifi_ed_penalty_db=nonwifi_ed_penalty_db,
        )
        self.csi: Optional[CsiObserver] = None
        if with_csi:
            self.csi = CsiObserver(
                self.mac, ctx.sim, ctx.streams, model=csi_model,
                faults=ctx.faults.csi if ctx.faults is not None else None,
            )

"""A ZigBee node: radio + 802.15.4 MAC + RSSI sampler + energy meter."""

from __future__ import annotations

from ..context import SimContext
from ..phy.medium import Technology
from ..phy.propagation import Position
from ..phy.rssi import RssiSampler
from ..phy.spectrum import zigbee_channel
from .base import Device, Radio
from .energy import EnergyMeter


class ZigbeeDevice(Device):
    """An 802.15.4 node (TelosB-class)."""

    def __init__(
        self,
        ctx: SimContext,
        name: str,
        position: Position,
        channel: int = 24,
        tx_power_dbm: float = 0.0,
    ):
        from ..mac.zigbee import ZigbeeMac  # local import to avoid cycle at module load

        radio = Radio(
            name=name,
            position=position,
            band=zigbee_channel(channel),
            technology=Technology.ZIGBEE,
            sim=ctx.sim,
            streams=ctx.streams,
            trace=ctx.trace,
            sensitivity_dbm=-95.0,
            noise_figure_db=5.0,
        )
        ctx.medium.attach(radio)
        super().__init__(name, radio)
        self.ctx = ctx
        self.mac = ZigbeeMac(radio, ctx.sim, trace=ctx.trace, tx_power_dbm=tx_power_dbm)
        self.rssi = RssiSampler(radio, ctx.sim, ctx.streams, telemetry=ctx.telemetry)
        self.energy = EnergyMeter()
        radio.energy_meter = self.energy

"""Radios and devices.

A :class:`Radio` is the PHY endpoint living on the
:class:`~repro.phy.medium.Medium`: it transmits frames, locks onto incoming
frames of its own technology, tracks the interference each locked frame
experiences (as piecewise-constant segments), and at frame end draws the
reception outcome from the segment SINRs and the frame's BER curve.

A :class:`Device` couples a radio with a MAC object and a position; concrete
devices (Wi-Fi appliance, ZigBee node, interferers) live in sibling modules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from ..phy.medium import Medium, Technology, Transmission
from ..phy.modulation import packet_success_probability
from ..phy.propagation import Position
from ..phy.spectrum import Band
from ..sim.engine import Simulator
from ..sim.rng import RandomStreams
from ..sim.trace import TraceRecorder
from ..sim.units import dbm_to_mw, mw_to_dbm, thermal_noise_dbm


@dataclass
class RxInfo:
    """What the PHY knows about a received (or lost) frame."""

    rx_power_dbm: float
    success_probability: float
    min_sinr_db: float
    #: Non-own-technology transmissions that overlapped the frame:
    #: (technology, source name, unfiltered rx power dBm, overlap seconds).
    overlaps: List[Tuple[Technology, str, float, float]] = field(default_factory=list)


class _ReceptionContext:
    """Tracks one locked frame: its signal power and interference history."""

    __slots__ = ("tx", "signal_dbm", "segments", "segment_start", "overlap_log", "_overlap_open")

    def __init__(self, tx: Transmission, signal_dbm: float, now: float, interference_mw: float):
        self.tx = tx
        self.signal_dbm = signal_dbm
        # Closed segments: (duration_s, interference_mw).
        self.segments: List[Tuple[float, float]] = []
        self.segment_start: Tuple[float, float] = (now, interference_mw)
        # Cross-technology overlaps: source name -> [technology, rx_dbm, accumulated_s]
        self.overlap_log: dict = {}
        self._overlap_open: dict = {}

    def change_interference(self, now: float, interference_mw: float) -> None:
        start, level = self.segment_start
        if now > start:
            self.segments.append((now - start, level))
        self.segment_start = (now, interference_mw)

    def open_overlap(self, now: float, other: Transmission, rx_dbm: float) -> None:
        self._overlap_open[other.tx_id] = (now, other.technology, other.source_name, rx_dbm)

    def close_overlap(self, now: float, other: Transmission) -> None:
        opened = self._overlap_open.pop(other.tx_id, None)
        if opened is None:
            return
        start, technology, source_name, rx_dbm = opened
        entry = self.overlap_log.setdefault(source_name, [technology, rx_dbm, 0.0])
        entry[1] = max(entry[1], rx_dbm)
        entry[2] += now - start

    def finalize(self, now: float) -> None:
        self.change_interference(now, 0.0)
        for tx_id in list(self._overlap_open):
            opened = self._overlap_open.pop(tx_id)
            start, technology, source_name, rx_dbm = opened
            entry = self.overlap_log.setdefault(source_name, [technology, rx_dbm, 0.0])
            entry[1] = max(entry[1], rx_dbm)
            entry[2] += now - start


class Radio:
    """A half-duplex transceiver attached to the medium."""

    def __init__(
        self,
        name: str,
        position: Position,
        band: Band,
        technology: Technology,
        sim: Simulator,
        streams: RandomStreams,
        trace: Optional[TraceRecorder] = None,
        sensitivity_dbm: float = -85.0,
        noise_figure_db: float = 7.0,
    ):
        self.name = name
        self.position = position
        self._band = band
        self.technology = technology
        self.sim = sim
        self.streams = streams
        self.trace = trace or TraceRecorder(enabled_kinds=set())
        self.sensitivity_dbm = sensitivity_dbm
        self.noise_floor_dbm = thermal_noise_dbm(band.bandwidth_hz, noise_figure_db)
        self.medium: Optional[Medium] = None
        self._mac: Any = None  # set by the MAC layer (see the ``mac`` property)
        self.energy_meter: Any = None  # optional; see repro.devices.energy
        self.enabled = True
        self.current_tx: Optional[Transmission] = None
        self._lock: Optional[_ReceptionContext] = None
        # Reception-outcome stream, resolved once (streams.stream caches by
        # name; this skips the f-string per received frame).
        self._rx_rng = streams.stream(f"phy/rx/{name}")
        # PHY statistics
        self.frames_sent = 0
        self.frames_received = 0
        self.frames_lost = 0
        self.tx_airtime = 0.0

    # ------------------------------------------------------------------
    # Tuning
    # ------------------------------------------------------------------
    @property
    def band(self) -> Band:
        """The current receive/transmit band.

        Assigning a different :class:`Band` notifies the medium (see
        :meth:`Medium.on_radio_retuned <repro.phy.medium.Medium.on_radio_retuned>`)
        so kernels that precompute per-band tables can refresh them; prefer
        the explicit :meth:`retune` in new code.
        """
        return self._band

    @band.setter
    def band(self, band: Band) -> None:
        previous = getattr(self, "_band", None)
        self._band = band
        if band is not previous:
            medium = getattr(self, "medium", None)
            if medium is not None:
                medium.on_radio_retuned(self)

    def retune(self, band: Band) -> None:
        """Switch to ``band`` (e.g. a BLE hop).  The noise floor is unchanged:
        all modeled bands share a bandwidth per technology."""
        self.band = band

    @property
    def mac(self) -> Any:
        """The attached MAC layer.

        Assigning notifies the medium (:meth:`Medium.on_radio_mac_changed
        <repro.phy.medium.Medium.on_radio_mac_changed>`): kernels that skip
        no-op medium-event notifications re-read the MAC's
        ``medium_event_sensitive`` flag on every assignment.
        """
        return self._mac

    @mac.setter
    def mac(self, mac: Any) -> None:
        self._mac = mac
        medium = getattr(self, "medium", None)
        if medium is not None:
            medium.on_radio_mac_changed(self)

    # ------------------------------------------------------------------
    # Transmit path
    # ------------------------------------------------------------------
    def transmit_frame(self, frame: Any, power_dbm: float) -> Transmission:
        """Send ``frame`` at ``power_dbm``.  Drops any in-progress reception."""
        if self.medium is None:
            raise RuntimeError(f"radio {self.name} is not attached to a medium")
        if self.current_tx is not None:
            raise RuntimeError(f"radio {self.name} is already transmitting")
        if self._lock is not None:
            # Half duplex: transmitting aborts the frame being received.
            self._abort_lock()
        duration = frame.duration()
        tx = self.medium.transmit(
            self, duration, power_dbm, self.band, self.technology, frame=frame
        )
        self.current_tx = tx
        self.frames_sent += 1
        self.tx_airtime += duration
        if self.energy_meter is not None:
            self.energy_meter.charge_tx(duration, power_dbm)
        return tx

    def on_own_transmission_end(self, tx: Transmission) -> None:
        if self.current_tx is tx:
            self.current_tx = None
        if self.mac is not None and tx.frame is not None:
            self.mac.on_transmit_complete(tx.frame)

    @property
    def is_transmitting(self) -> bool:
        return self.current_tx is not None

    # ------------------------------------------------------------------
    # Receive path (called by the medium)
    # ------------------------------------------------------------------
    def _captured_mw(self, tx: Transmission) -> float:
        return self.medium.captured_power_mw(tx, self)

    def _current_interference_mw(self, exclude_tx_id: int) -> float:
        return self.medium.decoding_interference_mw(self, exclude=(exclude_tx_id,))

    def _decodable(self, tx: Transmission) -> bool:
        return (
            self.enabled
            and tx.frame is not None
            and tx.technology is self.technology
            and tx.band == self.band
            and self.current_tx is None
            and self._lock is None
        )

    def on_transmission_start(self, tx: Transmission) -> None:
        if self.medium is None:
            return
        if self._decodable(tx):
            rx_dbm = self.medium.rx_power_dbm(tx, self)
            if rx_dbm >= self.sensitivity_dbm:
                interference = self._current_interference_mw(tx.tx_id)
                self._set_lock(_ReceptionContext(tx, rx_dbm, self.sim.now, interference))
                # Record any cross-technology transmissions already on the air.
                for other in self.medium.active_transmissions():
                    if other.tx_id != tx.tx_id and other.source is not self:
                        if other.technology is not self.technology:
                            self._lock.open_overlap(
                                self.sim.now, other, self.medium.rx_power_dbm(other, self)
                            )
                self._notify_mac()
                return
        if self._lock is not None and tx.tx_id != self._lock.tx.tx_id:
            self._lock.change_interference(
                self.sim.now, self._current_interference_mw(self._lock.tx.tx_id)
            )
            if tx.technology is not self.technology:
                self._lock.open_overlap(self.sim.now, tx, self.medium.rx_power_dbm(tx, self))
        self._notify_mac()

    def on_transmission_end(self, tx: Transmission) -> None:
        if self._lock is not None:
            if tx.tx_id == self._lock.tx.tx_id:
                self._finish_reception()
                self._notify_mac()
                return
            self._lock.change_interference(
                self.sim.now, self._current_interference_mw(self._lock.tx.tx_id)
            )
            if tx.technology is not self.technology:
                self._lock.close_overlap(self.sim.now, tx)
        self._notify_mac()

    def _set_lock(self, lock: Optional[_ReceptionContext]) -> None:
        """Install/clear the reception lock, keeping the medium informed.

        Kernels that skip no-op notifications track the locked set through
        :meth:`Medium.on_radio_lock_changed
        <repro.phy.medium.Medium.on_radio_lock_changed>`; every lock
        transition must go through here.
        """
        self._lock = lock
        if self.medium is not None:
            self.medium.on_radio_lock_changed(self, lock is not None)

    def _abort_lock(self) -> None:
        if self._lock is None:
            return
        self.frames_lost += 1
        self._set_lock(None)

    def _finish_reception(self) -> None:
        context = self._lock
        assert context is not None
        self._set_lock(None)
        context.finalize(self.sim.now)
        frame = context.tx.frame
        noise_mw = dbm_to_mw(self.noise_floor_dbm)
        total_bits = max(frame.bits, 1)
        duration = max(context.tx.duration, 1e-12)
        success_p = 1.0
        min_sinr = float("inf")
        for seg_duration, interference_mw in context.segments:
            sinr_db = context.signal_dbm - mw_to_dbm(noise_mw + interference_mw)
            min_sinr = min(min_sinr, sinr_db)
            seg_bits = max(1, round(total_bits * seg_duration / duration))
            success_p *= packet_success_probability(frame.ber(sinr_db), seg_bits)
        overlaps = [
            (tech, source_name, rx_dbm, seconds)
            for source_name, (tech, rx_dbm, seconds) in context.overlap_log.items()
        ]
        info = RxInfo(
            rx_power_dbm=context.signal_dbm,
            success_probability=success_p,
            min_sinr_db=min_sinr if min_sinr != float("inf") else 0.0,
            overlaps=overlaps,
        )
        if self.energy_meter is not None:
            self.energy_meter.charge_rx(context.tx.duration)
        delivered = self._rx_rng.random() < success_p
        if delivered:
            self.frames_received += 1
            self.trace.record(
                self.sim.now, "phy.rx_ok", radio=self.name, source=frame.source,
                frame_type=frame.frame_type.value,
            )
            if self.mac is not None:
                self.mac.on_frame_received(frame, info)
        else:
            self.frames_lost += 1
            self.trace.record(
                self.sim.now, "phy.rx_lost", radio=self.name, source=frame.source,
                frame_type=frame.frame_type.value, p=success_p,
            )
            if self.mac is not None:
                self.mac.on_frame_lost(frame, info)

    def _notify_mac(self) -> None:
        if self.mac is not None:
            self.mac.on_medium_event()

    # ------------------------------------------------------------------
    # Measurements
    # ------------------------------------------------------------------
    def energy_dbm(self) -> float:
        """In-band energy as seen by energy-detection CCA (excludes own tx)."""
        return self.medium.inband_energy_dbm(self)

    def energy_dbm_of(self, technologies) -> float:
        """In-band energy restricted to the given technologies (plus noise)."""
        return self.medium.inband_energy_dbm(self, technologies=technologies)

    @property
    def is_receiving(self) -> bool:
        return self._lock is not None

    def receiving_frame(self) -> Optional[Any]:
        return self._lock.tx.frame if self._lock is not None else None

    def receiving_transmission(self) -> Optional[Transmission]:
        """The transmission currently locked for reception, if any."""
        return self._lock.tx if self._lock is not None else None

    def move_to(self, position: Position) -> None:
        """Relocate the radio (mobility experiments).

        Active transmissions keep their cached rx powers — frames are short
        relative to motion, so this is equivalent to sampling the position at
        frame start.  The channel's deterministic gain cache is invalidated
        (position epoch advance) so every *subsequent* frame sees the new
        distance.
        """
        self.position = position
        if self.medium is not None:
            self.medium.channel.invalidate_gains()


class Device:
    """Base class binding a radio and a MAC together."""

    def __init__(self, name: str, radio: Radio):
        self.name = name
        self.radio = radio

    @property
    def position(self) -> Position:
        return self.radio.position

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name}>"

"""Workload generators for coexistence scenarios."""

from .generators import (
    Burst,
    PriorityWifiSource,
    WifiPacketSource,
    ZigbeeBurstSource,
)

__all__ = ["Burst", "PriorityWifiSource", "WifiPacketSource", "ZigbeeBurstSource"]

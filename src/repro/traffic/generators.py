"""Traffic generators.

The paper's workloads:

* the Wi-Fi sender transmits 100-byte packets every 1 ms (Sec. VIII-A);
* the ZigBee sender emits *bursts* of N packets of 50 bytes, with
  Poisson-distributed burst intervals (Sec. VIII-D, "data traffic of ZigBee
  nodes is originated following a Poisson process");
* the priority experiment (Sec. VIII-G) mixes high-priority video segments
  with low-priority file transfer over a 10 s horizon.

Generators push work into sinks (a Wi-Fi MAC queue, a ZigBee protocol node)
and never touch the PHY directly.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, List, Optional

from ..context import SimContext
from ..mac.frames import Frame, wifi_data_frame
from ..mac.wifi import WifiMac
from ..sim.process import Process


@dataclass(frozen=True)
class Burst:
    """One ZigBee application burst: ``n_packets`` of ``payload_bytes`` each."""

    created_at: float
    n_packets: int
    payload_bytes: int
    burst_id: int


class ZigbeeBurstSource:
    """Generates application bursts for a ZigBee sender.

    ``interval_mean`` is the mean gap between bursts; ``poisson=True`` draws
    exponential gaps (the paper's model), otherwise gaps are fixed.  The sink
    is typically ``BicordNode.offer_burst`` or a baseline node's equivalent.
    """

    def __init__(
        self,
        ctx: SimContext,
        sink: Callable[[Burst], None],
        n_packets: int = 5,
        payload_bytes: int = 50,
        interval_mean: float = 0.2,
        poisson: bool = True,
        max_bursts: Optional[int] = None,
        name: str = "zigbee-source",
        start_delay: float = 0.0,
    ):
        self.ctx = ctx
        self.sink = sink
        self.n_packets = n_packets
        self.payload_bytes = payload_bytes
        self.interval_mean = interval_mean
        self.poisson = poisson
        self.max_bursts = max_bursts
        self.bursts_generated = 0
        self._ids = itertools.count(1)
        self._rng = ctx.streams.stream(f"traffic/{name}")
        self._process = Process(ctx.sim, self._run(), start_delay=start_delay, name=name)

    def stop(self) -> None:
        self._process.stop()

    @property
    def finished(self) -> bool:
        return self._process.finished

    def _run(self):
        while self.max_bursts is None or self.bursts_generated < self.max_bursts:
            burst = Burst(
                created_at=self.ctx.sim.now,
                n_packets=self.n_packets,
                payload_bytes=self.payload_bytes,
                burst_id=next(self._ids),
            )
            self.bursts_generated += 1
            self.sink(burst)
            if self.poisson:
                yield float(self._rng.exponential(self.interval_mean))
            else:
                yield self.interval_mean


class WifiPacketSource:
    """Periodic Wi-Fi traffic: one ``payload_bytes`` frame every ``interval``.

    A ``queue_limit`` keeps the MAC queue bounded when the channel is slower
    than the offered load (frames beyond the limit are dropped at the source,
    like a full driver ring).
    """

    def __init__(
        self,
        ctx: SimContext,
        mac: WifiMac,
        destination: str,
        payload_bytes: int = 100,
        interval: float = 1e-3,
        priority: int = 0,
        queue_limit: int = 50,
        max_packets: Optional[int] = None,
        name: str = "wifi-source",
    ):
        self.ctx = ctx
        self.mac = mac
        self.destination = destination
        self.payload_bytes = payload_bytes
        self.interval = interval
        self.priority = priority
        self.queue_limit = queue_limit
        self.max_packets = max_packets
        self.packets_offered = 0
        self.packets_dropped_at_source = 0
        self._seq = itertools.count(1)
        self._process = Process(ctx.sim, self._run(), name=name)

    def stop(self) -> None:
        self._process.stop()

    def _offer(self) -> None:
        self.packets_offered += 1
        if self.mac.queue_length() >= self.queue_limit:
            self.packets_dropped_at_source += 1
            return
        frame = wifi_data_frame(
            self.mac.radio.name,
            self.destination,
            self.payload_bytes,
            self.mac.data_rate,
            created_at=self.ctx.sim.now,
            priority=self.priority,
        )
        frame.seq = next(self._seq)
        self.mac.enqueue(frame)

    def _run(self):
        while self.max_packets is None or self.packets_offered < self.max_packets:
            self._offer()
            yield self.interval


class PriorityPhase:
    """One contiguous phase of Wi-Fi traffic with a fixed priority."""

    def __init__(self, priority: int, duration: float):
        self.priority = priority
        self.duration = duration


class PriorityWifiSource:
    """Two-class Wi-Fi traffic for the Sec. VIII-G experiment.

    The 10 s horizon is divided into alternating high-priority (video) and
    low-priority (file transfer) phases; ``high_proportion`` sets the fraction
    of time spent in high-priority phases.  The coordinator can query
    :attr:`current_priority` to decide whether to honour ZigBee requests.
    """

    def __init__(
        self,
        ctx: SimContext,
        mac: WifiMac,
        destination: str,
        high_proportion: float = 0.3,
        total_duration: float = 10.0,
        phase_duration: float = 0.5,
        payload_bytes: int = 100,
        interval: float = 1e-3,
        queue_limit: int = 50,
        name: str = "wifi-priority-source",
    ):
        if not 0.0 <= high_proportion <= 1.0:
            raise ValueError(f"high_proportion must be in [0,1], got {high_proportion}")
        self.ctx = ctx
        self.mac = mac
        self.destination = destination
        self.high_proportion = high_proportion
        self.total_duration = total_duration
        self.phase_duration = phase_duration
        self.payload_bytes = payload_bytes
        self.interval = interval
        self.queue_limit = queue_limit
        self.current_priority = 0
        self.packets_offered = 0
        self._seq = itertools.count(1)
        self._rng = ctx.streams.stream(f"traffic/{name}")
        self.phases = self._build_phases()
        self._process = Process(ctx.sim, self._run(), name=name)

    def _build_phases(self) -> List[PriorityPhase]:
        n_phases = max(1, round(self.total_duration / self.phase_duration))
        n_high = round(self.high_proportion * n_phases)
        flags = [1] * n_high + [0] * (n_phases - n_high)
        self._rng.shuffle(flags)
        return [PriorityPhase(priority, self.phase_duration) for priority in flags]

    def stop(self) -> None:
        self._process.stop()

    def _offer(self, priority: int) -> None:
        self.packets_offered += 1
        if self.mac.queue_length() >= self.queue_limit:
            return
        frame = wifi_data_frame(
            self.mac.radio.name,
            self.destination,
            self.payload_bytes,
            self.mac.data_rate,
            created_at=self.ctx.sim.now,
            priority=priority,
        )
        frame.seq = next(self._seq)
        self.mac.enqueue(frame)

    def _run(self):
        for phase in self.phases:
            self.current_priority = phase.priority
            end = self.ctx.sim.now + phase.duration
            while self.ctx.sim.now < end - 1e-9:
                self._offer(phase.priority)
                yield min(self.interval, max(end - self.ctx.sim.now, 1e-9))
        self.current_priority = 0

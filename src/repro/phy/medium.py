"""The shared wireless medium.

The medium is the meeting point of every radio in a scenario.  It knows which
transmissions are on the air, computes the power each radio receives from
each transmission (path loss + shadowing + per-frame fading, weighted by
spectral overlap), and notifies attached radios when transmissions start and
end so they can lock onto frames, track interference, and re-evaluate their
clear-channel state.

Two different power questions arise and are answered by two methods:

* :meth:`Medium.rx_power_dbm` — the power of one specific transmission at a
  radio, *before* band filtering.  Receivers combine it with
  :func:`~repro.phy.spectrum.overlap_fraction` to get captured power.
* :meth:`Medium.inband_energy_dbm` — the total power inside a radio's receive
  filter right now (noise floor plus all active transmissions), which is what
  energy-detection CCA measures.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..sim.engine import Simulator
from ..sim.trace import TraceRecorder
from ..sim.units import dbm_to_mw, linear_to_db, mw_to_dbm
from .propagation import Channel
from .spectrum import Band, overlap_fraction


class Technology(Enum):
    """Radio technology of a transmission: decides decodability and BER model."""

    WIFI = "wifi"
    ZIGBEE = "zigbee"
    BLE = "ble"
    MICROWAVE = "microwave"


@dataclass
class Transmission:
    """One frame (or noise burst) on the air."""

    tx_id: int
    source_name: str
    band: Band
    power_dbm: float
    start: float
    duration: float
    technology: Technology
    frame: Any = None
    source: Any = None  # the transmitting Radio, if any

    @property
    def end(self) -> float:
        return self.start + self.duration

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Tx {self.tx_id} {self.technology.value} from {self.source_name} "
            f"[{self.start * 1e3:.3f}..{self.end * 1e3:.3f} ms] {self.power_dbm:.1f} dBm>"
        )


class Medium:
    """Shared channel connecting all radios of a scenario."""

    def __init__(
        self,
        sim: Simulator,
        channel: Channel,
        trace: Optional[TraceRecorder] = None,
    ):
        self.sim = sim
        self.channel = channel
        self.trace = trace or TraceRecorder(enabled_kinds=set())
        self.radios: List[Any] = []
        self._active: Dict[int, Transmission] = {}
        self._tx_ids = itertools.count(1)
        # rx power of each active transmission at each attached radio, dBm.
        self._rx_power: Dict[Tuple[int, str], float] = {}

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def attach(self, radio: Any) -> None:
        """Register a radio.  The radio's ``medium`` attribute is set."""
        if any(r.name == radio.name for r in self.radios):
            raise ValueError(f"duplicate radio name {radio.name!r}")
        self.radios.append(radio)
        radio.medium = self

    def radio_by_name(self, name: str) -> Any:
        for radio in self.radios:
            if radio.name == name:
                return radio
        raise KeyError(name)

    # ------------------------------------------------------------------
    # Transmissions
    # ------------------------------------------------------------------
    def transmit(
        self,
        source: Any,
        duration: float,
        power_dbm: float,
        band: Band,
        technology: Technology,
        frame: Any = None,
    ) -> Transmission:
        """Put a transmission on the air from ``source`` (a Radio or emitter).

        Received powers at every other radio are drawn now (one fading sample
        per link per frame) and cached for the lifetime of the transmission.
        All other radios are notified, then an end event is scheduled.
        """
        if duration <= 0.0:
            raise ValueError(f"duration must be positive, got {duration}")
        tx = Transmission(
            tx_id=next(self._tx_ids),
            source_name=source.name,
            band=band,
            power_dbm=power_dbm,
            start=self.sim.now,
            duration=duration,
            technology=technology,
            frame=frame,
            source=source,
        )
        self._active[tx.tx_id] = tx
        for radio in self.radios:
            if radio is source:
                continue
            rx_dbm = self.channel.rx_power_dbm(
                power_dbm, source.name, source.position, radio.name, radio.position
            )
            self._rx_power[(tx.tx_id, radio.name)] = rx_dbm
        self.trace.record(
            self.sim.now,
            "medium.tx_start",
            source=source.name,
            technology=technology.value,
            duration=duration,
            power_dbm=power_dbm,
        )
        for radio in self.radios:
            if radio is not source:
                radio.on_transmission_start(tx)
        self.sim.schedule(duration, self._finish, tx)
        return tx

    def _finish(self, tx: Transmission) -> None:
        self._active.pop(tx.tx_id, None)
        self.trace.record(self.sim.now, "medium.tx_end", source=tx.source_name)
        for radio in self.radios:
            if radio is not tx.source:
                radio.on_transmission_end(tx)
        for radio in self.radios:
            self._rx_power.pop((tx.tx_id, radio.name), None)
        if tx.source is not None and hasattr(tx.source, "on_own_transmission_end"):
            tx.source.on_own_transmission_end(tx)

    def active_transmissions(self) -> Iterable[Transmission]:
        return self._active.values()

    # ------------------------------------------------------------------
    # Power queries
    # ------------------------------------------------------------------
    def rx_power_dbm(self, tx: Transmission, radio: Any) -> float:
        """Unfiltered received power of ``tx`` at ``radio`` (cached per frame)."""
        try:
            return self._rx_power[(tx.tx_id, radio.name)]
        except KeyError:
            # A radio attached mid-transmission (rare; mobility experiments).
            rx_dbm = self.channel.rx_power_dbm(
                tx.power_dbm, tx.source_name, tx.source.position, radio.name, radio.position
            )
            self._rx_power[(tx.tx_id, radio.name)] = rx_dbm
            return rx_dbm

    def captured_power_mw(self, tx: Transmission, radio: Any) -> float:
        """Power of ``tx`` that enters ``radio``'s receive filter, in mW."""
        fraction = overlap_fraction(tx.band, radio.band)
        if fraction <= 0.0:
            return 0.0
        return dbm_to_mw(self.rx_power_dbm(tx, radio) + linear_to_db(fraction))

    def interference_mw(
        self,
        radio: Any,
        exclude: Tuple[int, ...] = (),
        technologies: Optional[Iterable[Technology]] = None,
    ) -> float:
        """Sum of captured powers of active transmissions at ``radio``, mW.

        The radio's own transmission is always excluded; ``exclude`` lists
        additional transmission ids (typically the frame being received).
        """
        wanted = set(technologies) if technologies is not None else None
        total = 0.0
        for tx in self._active.values():
            if tx.source is radio or tx.tx_id in exclude:
                continue
            if wanted is not None and tx.technology not in wanted:
                continue
            total += self.captured_power_mw(tx, radio)
        return total

    def decoding_interference_mw(
        self,
        radio: Any,
        exclude: Tuple[int, ...] = (),
    ) -> float:
        """Interference power *as seen by the demodulator*, in mW.

        A narrowband interferer inside a wideband receiver corrupts only the
        spectrum it overlaps (a few OFDM subcarriers, a slice of the DSSS
        spread), so its effect on decoding is its captured power diluted by
        ``overlap / receiver_bandwidth``.  A 2 MHz ZigBee signal inside a
        20 MHz Wi-Fi receiver is 10 dB less harmful than a co-channel Wi-Fi
        signal of the same received power — which is why ZigBee control
        packets degrade Wi-Fi PRR by only a few percent (Sec. V) instead of
        destroying every overlapped frame.  Energy-detection CCA, in
        contrast, measures raw in-band power (:meth:`interference_mw`).
        """
        total = 0.0
        for tx in self._active.values():
            if tx.source is radio or tx.tx_id in exclude:
                continue
            captured = self.captured_power_mw(tx, radio)
            if captured <= 0.0:
                continue
            dilution = min(
                1.0, tx.band.overlapped_mhz(radio.band) / radio.band.bandwidth_mhz
            )
            total += captured * dilution
        return total

    def inband_energy_dbm(
        self,
        radio: Any,
        technologies: Optional[Iterable[Technology]] = None,
    ) -> float:
        """Total in-band power at ``radio``: noise floor + interference, dBm."""
        noise_mw = dbm_to_mw(radio.noise_floor_dbm)
        return mw_to_dbm(noise_mw + self.interference_mw(radio, technologies=technologies))

    def busy_with(self, technology: Technology) -> bool:
        """True if any transmission of ``technology`` is currently on the air."""
        return any(tx.technology is technology for tx in self._active.values())

"""The shared wireless medium.

The medium is the meeting point of every radio in a scenario.  It knows which
transmissions are on the air, computes the power each radio receives from
each transmission (path loss + shadowing + per-frame fading, weighted by
spectral overlap), and notifies attached radios when transmissions start and
end so they can lock onto frames, track interference, and re-evaluate their
clear-channel state.

Two different power questions arise and are answered by two methods:

* :meth:`Medium.rx_power_dbm` — the power of one specific transmission at a
  radio, *before* band filtering.  Receivers combine it with
  :func:`~repro.phy.spectrum.overlap_fraction` to get captured power.
* :meth:`Medium.inband_energy_dbm` — the total power inside a radio's receive
  filter right now (noise floor plus all active transmissions), which is what
  energy-detection CCA measures.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Dict, FrozenSet, Iterable, List, Optional, Tuple

from .. import telemetry as _telemetry
from ..sim.engine import Simulator
from ..sim.trace import TraceRecorder
from ..sim.units import dbm_to_mw, linear_to_db, mw_to_dbm
from .propagation import Channel
from .spectrum import Band, overlap_fraction


class Technology(Enum):
    """Radio technology of a transmission: decides decodability and BER model."""

    WIFI = "wifi"
    ZIGBEE = "zigbee"
    BLE = "ble"
    MICROWAVE = "microwave"


#: Pre-frozen technology filters for the common energy queries.  Passing one
#: of these (or any ``frozenset``) to :meth:`Medium.interference_mw` /
#: :meth:`Medium.inband_energy_dbm` skips the per-call set build *and* makes
#: the query cacheable per medium state epoch.
WIFI_ONLY: FrozenSet[Technology] = frozenset((Technology.WIFI,))
ZIGBEE_ONLY: FrozenSet[Technology] = frozenset((Technology.ZIGBEE,))


# ----------------------------------------------------------------------
# Medium kernels
# ----------------------------------------------------------------------
# Like the scheduler backends, the medium hot path has swappable
# implementations behind one constructor: ``Medium(..., kernel="legacy")``
# keeps the reference per-radio Python loops (the bitwise oracle), while
# ``kernel="vector"`` dispatches to the struct-of-arrays kernel in
# :mod:`repro.phy.medium_fast`.  Both produce bit-identical traces; see
# ``tests/test_medium_equivalence.py``.
MEDIUM_KERNELS: Tuple[str, ...] = ("legacy", "vector")

#: Kernel used when ``Medium(...)`` is called without ``kernel=``.
DEFAULT_MEDIUM_KERNEL = "vector"

_KERNEL_CLASSES: Dict[str, type] = {}


def register_medium_kernel(name: str, cls: type) -> None:
    """Register a :class:`Medium` subclass under a kernel name."""
    _KERNEL_CLASSES[name] = cls


def set_default_medium_kernel(name: str) -> str:
    """Set the process-wide default kernel; returns the previous default."""
    global DEFAULT_MEDIUM_KERNEL
    resolve_medium_kernel(name)  # validate eagerly
    previous = DEFAULT_MEDIUM_KERNEL
    DEFAULT_MEDIUM_KERNEL = name
    return previous


def resolve_medium_kernel(name: Optional[str] = None) -> type:
    """The :class:`Medium` subclass implementing ``name`` (default kernel if None)."""
    if name is None:
        name = DEFAULT_MEDIUM_KERNEL
    if name == "vector" and "vector" not in _KERNEL_CLASSES:
        from . import medium_fast  # noqa: F401  (registers on import)
    try:
        return _KERNEL_CLASSES[name]
    except KeyError:
        raise ValueError(
            f"unknown medium kernel {name!r}; expected one of {MEDIUM_KERNELS}"
        ) from None


@dataclass(slots=True)
class Transmission:
    """One frame (or noise burst) on the air."""

    tx_id: int
    source_name: str
    band: Band
    power_dbm: float
    start: float
    duration: float
    technology: Technology
    frame: Any = None
    source: Any = None  # the transmitting Radio, if any

    @property
    def end(self) -> float:
        return self.start + self.duration

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Tx {self.tx_id} {self.technology.value} from {self.source_name} "
            f"[{self.start * 1e3:.3f}..{self.end * 1e3:.3f} ms] {self.power_dbm:.1f} dBm>"
        )


class Medium:
    """Shared channel connecting all radios of a scenario.

    ``Medium(...)`` is a dispatching constructor: the ``kernel`` argument (or
    the process default, see :func:`set_default_medium_kernel`) selects the
    implementation class, exactly like the scheduler's ``backend=``.  This
    base class *is* the ``"legacy"`` kernel — straightforward per-radio
    Python loops that serve as the bitwise oracle for faster kernels.
    """

    kernel_name = "legacy"

    def __new__(
        cls,
        sim: Simulator,
        channel: Channel,
        trace: Optional[TraceRecorder] = None,
        kernel: Optional[str] = None,
        telemetry: Optional[_telemetry.MetricsRegistry] = None,
    ):
        if cls is Medium:
            cls = resolve_medium_kernel(kernel)
        return super().__new__(cls)

    def __init__(
        self,
        sim: Simulator,
        channel: Channel,
        trace: Optional[TraceRecorder] = None,
        kernel: Optional[str] = None,
        telemetry: Optional[_telemetry.MetricsRegistry] = None,
    ):
        self.sim = sim
        self.channel = channel
        self.trace = trace or TraceRecorder(enabled_kinds=set())
        registry = telemetry if telemetry is not None else _telemetry.NULL
        self.telemetry = registry
        self._broadcasts = registry.counter("medium.broadcasts")
        self._vector_links = registry.counter("medium.vector_links")
        self._masked_radios = registry.counter("medium.masked_radios")
        self._accumulator_resyncs = registry.counter("medium.accumulator_resyncs")
        # Link-state rows rebuilt after a position-epoch advance.  The legacy
        # kernel keeps no per-source rows, so it never increments this; the
        # vector kernel counts every row rebuild, making topology-churn cost
        # visible (see ``move_many``).
        self._link_rows_rebuilt = registry.counter("medium.link_rows_rebuilt")
        self.radios: List[Any] = []
        # Name-indexed view of ``radios`` (O(1) lookup and duplicate check);
        # the list is kept for deterministic ordered iteration.
        self._radio_index: Dict[str, Any] = {}
        self._active: Dict[int, Transmission] = {}
        self._tx_ids = itertools.count(1)
        # rx power of each active transmission at each attached radio, dBm.
        self._rx_power: Dict[Tuple[int, str], float] = {}
        # Radio names with per-tx cache entries written, so ``_finish`` pops
        # O(entries written) keys instead of looping over every radio.
        self._tx_touched: Dict[int, set] = {}
        #: Bumped on every transmission start/end.  The in-band energy at any
        #: radio is **piecewise-constant between epochs**, which is what the
        #: segment-based RSSI capture and the per-epoch energy cache rely on.
        self.state_epoch = 0
        self._energy_observers: List[Callable[[], None]] = []
        # Per-technology count of active transmissions (O(1) busy_with).
        self._tech_active: Dict[Technology, int] = {t: 0 for t in Technology}
        # Captured in-filter power of one tx at one radio, keyed by
        # (tx_id, radio name).  The value is pure in (rx power, bands); the
        # stored band reference guards against receivers retuning mid-flight
        # (BLE hops reassign ``radio.band``).
        self._captured_mw: Dict[Tuple[int, str], Tuple[Any, float]] = {}
        # Summed interference per (radio name, technology filter), valid for
        # one state epoch and one receive band: (epoch, band, mw).
        self._interference_cache: Dict[
            Tuple[str, Optional[FrozenSet[Technology]]], Tuple[int, Any, float]
        ] = {}

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def attach(self, radio: Any) -> None:
        """Register a radio.  The radio's ``medium`` attribute is set."""
        if radio.name in self._radio_index:
            raise ValueError(f"duplicate radio name {radio.name!r}")
        self.radios.append(radio)
        self._radio_index[radio.name] = radio
        radio.medium = self

    def radio_by_name(self, name: str) -> Any:
        try:
            return self._radio_index[name]
        except KeyError:
            raise KeyError(name) from None

    def move_many(self, moves: Iterable[Tuple[Any, Any]]) -> None:
        """Relocate several radios with a single gain invalidation.

        Equivalent to calling :meth:`~repro.devices.base.Radio.move_to` on
        each ``(radio, position)`` pair, but the channel's position epoch
        advances **once** for the whole batch instead of once per radio.
        Link-state rebuilds are lazy in every kernel (they happen on the
        next transmission that consults a stale row), so batching a
        trajectory tick's N moves costs one epoch bump and at most one
        rebuild per active source — not N.
        """
        moved = 0
        for radio, position in moves:
            radio.position = position
            moved += 1
        if moved:
            self.channel.invalidate_gains()

    def on_radio_retuned(self, radio: Any) -> None:
        """Hook called by :meth:`Radio.retune` when a radio's band changes.

        The legacy kernel needs no action (its per-(tx, radio) caches store
        the band they were computed for and recompute on mismatch); faster
        kernels override this to refresh their band arrays.
        """

    def on_radio_mac_changed(self, radio: Any) -> None:
        """Hook called when a radio's MAC layer is (re)assigned.

        The legacy kernel notifies every radio on every transmission edge,
        so it never needs to know; the vector kernel re-reads the MAC's
        ``medium_event_sensitive`` flag to decide whether the radio can be
        skipped when its notification would be a no-op.
        """

    def on_radio_lock_changed(self, radio: Any, locked: bool) -> None:
        """Hook called on every reception-lock transition of ``radio``.

        A locked radio must see every transmission edge (interference
        segments, cross-technology overlap log), so kernels that prune
        no-op notifications track the locked set through this hook.
        """

    # ------------------------------------------------------------------
    # State epochs and energy observers
    # ------------------------------------------------------------------
    def add_energy_observer(self, callback: Callable[[], None]) -> None:
        """Register ``callback()`` to run whenever the on-air set changes.

        Observers fire *after* the medium state (active set, cached rx
        powers) reflects the change, so reading any energy query from inside
        the callback sees the new piecewise-constant level.  RSSI samplers
        use this to enumerate the energy-constant segments of a capture
        window without scheduling per-sample events.
        """
        self._energy_observers.append(callback)

    def remove_energy_observer(self, callback: Callable[[], None]) -> None:
        """Unregister a callback added by :meth:`add_energy_observer`."""
        try:
            self._energy_observers.remove(callback)
        except ValueError:
            pass

    def _bump_state(self) -> None:
        self.state_epoch += 1
        if self._energy_observers:
            for callback in tuple(self._energy_observers):
                callback()

    # ------------------------------------------------------------------
    # Transmissions
    # ------------------------------------------------------------------
    def transmit(
        self,
        source: Any,
        duration: float,
        power_dbm: float,
        band: Band,
        technology: Technology,
        frame: Any = None,
    ) -> Transmission:
        """Put a transmission on the air from ``source`` (a Radio or emitter).

        Received powers at every other radio are drawn now (one fading sample
        per link per frame) and cached for the lifetime of the transmission.
        All other radios are notified, then an end event is scheduled.
        """
        if duration <= 0.0:
            raise ValueError(f"duration must be positive, got {duration}")
        tx = Transmission(
            tx_id=next(self._tx_ids),
            source_name=source.name,
            band=band,
            power_dbm=power_dbm,
            start=self.sim.now,
            duration=duration,
            technology=technology,
            frame=frame,
            source=source,
        )
        self._active[tx.tx_id] = tx
        self._tech_active[technology] += 1
        self._broadcasts.inc()
        touched = self._tx_touched[tx.tx_id] = set()
        for radio in self.radios:
            if radio is source:
                continue
            rx_dbm = self.channel.rx_power_dbm(
                power_dbm, source.name, source.position, radio.name, radio.position
            )
            self._rx_power[(tx.tx_id, radio.name)] = rx_dbm
            touched.add(radio.name)
        self._bump_state()
        self.trace.record(
            self.sim.now,
            "medium.tx_start",
            source=source.name,
            technology=technology.value,
            duration=duration,
            power_dbm=power_dbm,
        )
        for radio in self.radios:
            if radio is not source:
                radio.on_transmission_start(tx)
        self.sim.schedule(duration, self._finish, tx)
        return tx

    def _finish(self, tx: Transmission) -> None:
        if self._active.pop(tx.tx_id, None) is not None:
            self._tech_active[tx.technology] -= 1
        self._bump_state()
        self.trace.record(self.sim.now, "medium.tx_end", source=tx.source_name)
        for radio in self.radios:
            if radio is not tx.source:
                radio.on_transmission_end(tx)
        # Only the names actually written at transmit/query time are popped —
        # O(entries) instead of O(radios).
        for name in self._tx_touched.pop(tx.tx_id, ()):
            self._rx_power.pop((tx.tx_id, name), None)
            self._captured_mw.pop((tx.tx_id, name), None)
        if tx.source is not None and hasattr(tx.source, "on_own_transmission_end"):
            tx.source.on_own_transmission_end(tx)

    def active_transmissions(self) -> Iterable[Transmission]:
        return self._active.values()

    # ------------------------------------------------------------------
    # Power queries
    # ------------------------------------------------------------------
    def rx_power_dbm(self, tx: Transmission, radio: Any) -> float:
        """Unfiltered received power of ``tx`` at ``radio`` (cached per frame)."""
        try:
            return self._rx_power[(tx.tx_id, radio.name)]
        except KeyError:
            # A radio attached mid-transmission (rare; mobility experiments).
            rx_dbm = self.channel.rx_power_dbm(
                tx.power_dbm, tx.source_name, tx.source.position, radio.name, radio.position
            )
            self._rx_power[(tx.tx_id, radio.name)] = rx_dbm
            touched = self._tx_touched.get(tx.tx_id)
            if touched is not None:
                touched.add(radio.name)
            return rx_dbm

    def captured_power_mw(self, tx: Transmission, radio: Any) -> float:
        """Power of ``tx`` that enters ``radio``'s receive filter, in mW.

        The value is a pure function of the frozen per-frame rx power and
        the two bands, so it is computed once per (transmission, radio) and
        cached until the transmission ends.  The cache entry remembers the
        receive band it was computed for: a radio that retunes mid-flight
        (BLE hopping) transparently recomputes.
        """
        key = (tx.tx_id, radio.name)
        entry = self._captured_mw.get(key)
        if entry is not None and entry[0] is radio.band:
            return entry[1]
        fraction = overlap_fraction(tx.band, radio.band)
        if fraction <= 0.0:
            value = 0.0
        else:
            value = dbm_to_mw(self.rx_power_dbm(tx, radio) + linear_to_db(fraction))
        if tx.tx_id in self._active:
            self._captured_mw[key] = (radio.band, value)
            touched = self._tx_touched.get(tx.tx_id)
            if touched is not None:
                touched.add(radio.name)
        return value

    def interference_mw(
        self,
        radio: Any,
        exclude: Tuple[int, ...] = (),
        technologies: Optional[Iterable[Technology]] = None,
    ) -> float:
        """Sum of captured powers of active transmissions at ``radio``, mW.

        The radio's own transmission is always excluded; ``exclude`` lists
        additional transmission ids (typically the frame being received).

        ``technologies`` is ideally a ``frozenset`` (see :data:`WIFI_ONLY` /
        :data:`ZIGBEE_ONLY`): other iterables are frozen per call.  Queries
        without ``exclude`` are memoized per medium state epoch — repeated
        CCA checks between transmission boundaries cost one dict probe.
        """
        if technologies is None:
            wanted = None
        elif type(technologies) is frozenset:
            wanted = technologies
        else:
            wanted = frozenset(technologies)
        if not exclude:
            cache_key = (radio.name, wanted)
            cached = self._interference_cache.get(cache_key)
            if (
                cached is not None
                and cached[0] == self.state_epoch
                and cached[1] is radio.band
            ):
                return cached[2]
        total = 0.0
        for tx in self._active.values():
            if tx.source is radio or tx.tx_id in exclude:
                continue
            if wanted is not None and tx.technology not in wanted:
                continue
            total += self.captured_power_mw(tx, radio)
        if not exclude:
            self._interference_cache[cache_key] = (self.state_epoch, radio.band, total)
        return total

    def decoding_interference_mw(
        self,
        radio: Any,
        exclude: Tuple[int, ...] = (),
    ) -> float:
        """Interference power *as seen by the demodulator*, in mW.

        A narrowband interferer inside a wideband receiver corrupts only the
        spectrum it overlaps (a few OFDM subcarriers, a slice of the DSSS
        spread), so its effect on decoding is its captured power diluted by
        ``overlap / receiver_bandwidth``.  A 2 MHz ZigBee signal inside a
        20 MHz Wi-Fi receiver is 10 dB less harmful than a co-channel Wi-Fi
        signal of the same received power — which is why ZigBee control
        packets degrade Wi-Fi PRR by only a few percent (Sec. V) instead of
        destroying every overlapped frame.  Energy-detection CCA, in
        contrast, measures raw in-band power (:meth:`interference_mw`).
        """
        total = 0.0
        for tx in self._active.values():
            if tx.source is radio or tx.tx_id in exclude:
                continue
            captured = self.captured_power_mw(tx, radio)
            if captured <= 0.0:
                continue
            dilution = min(
                1.0, tx.band.overlapped_mhz(radio.band) / radio.band.bandwidth_mhz
            )
            total += captured * dilution
        return total

    def cca_power_mw(
        self,
        radio: Any,
        now: float,
        min_age: float = 0.0,
    ) -> Tuple[float, float]:
        """Carrier-sense power buckets at ``radio``: ``(wifi_mw, other_mw)``.

        Both buckets are seeded with the radio's noise floor and accumulate
        the captured power of every active transmission at least ``min_age``
        old (excluding the radio's own), split by whether the transmitter is
        Wi-Fi.  This is the fold behind Wi-Fi preamble/energy detection
        (``WifiMac._medium_busy``); it lives on the medium so faster kernels
        can serve it from their accumulators.
        """
        noise_mw = dbm_to_mw(radio.noise_floor_dbm)
        wifi_mw = noise_mw
        other_mw = noise_mw
        for tx in self._active.values():
            if tx.source is radio:
                continue
            if now - tx.start < min_age:
                continue
            captured = self.captured_power_mw(tx, radio)
            if tx.technology is Technology.WIFI:
                wifi_mw += captured
            else:
                other_mw += captured
        return wifi_mw, other_mw

    def inband_energy_dbm(
        self,
        radio: Any,
        technologies: Optional[Iterable[Technology]] = None,
    ) -> float:
        """Total in-band power at ``radio``: noise floor + interference, dBm."""
        noise_mw = dbm_to_mw(radio.noise_floor_dbm)
        return mw_to_dbm(noise_mw + self.interference_mw(radio, technologies=technologies))

    def busy_with(self, technology: Technology) -> bool:
        """True if any transmission of ``technology`` is currently on the air.

        O(1): the medium keeps a per-technology count of active
        transmissions instead of scanning the active set.
        """
        return self._tech_active[technology] > 0


register_medium_kernel("legacy", Medium)

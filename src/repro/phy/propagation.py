"""Radio propagation: positions, path loss, shadowing, and fast fading.

The office environment of the paper (Fig. 6) is modeled with the standard
indoor log-distance path-loss model plus two random components:

* **Shadowing** — a log-normal, *per-link static* term capturing walls and
  furniture.  It is drawn once per (transmitter, receiver) pair from a
  deterministic stream so a given topology always sees the same mean link
  budget.
* **Fast fading** — a per-frame term capturing multipath variation, drawn per
  transmission.  A small Gaussian in dB (Rician-like, office LoS) keeps the
  reception thresholds soft, which is what makes the paper's precision/recall
  tables take values strictly between 0 and 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Tuple

from ..sim.rng import RandomStreams

#: Cache entry of :meth:`Channel.link_budget`:
#: (tx position, rx position, path loss dB, shadowing dB, position epoch).
_LinkBudget = Tuple["Position", "Position", float, float, int]


@dataclass(frozen=True)
class Position:
    """A point in the 2-D office plane, meters."""

    x: float
    y: float

    def distance_to(self, other: "Position") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)

    def moved(self, dx: float, dy: float) -> "Position":
        return Position(self.x + dx, self.y + dy)


@dataclass
class PathLossModel:
    """Log-distance path loss: ``PL(d) = pl0 + 10 n log10(d / d0)``.

    Defaults: ``pl0 = 40 dB`` at 1 m (free space at 2.4 GHz is 40.05 dB) and
    exponent ``n = 3.0``, a common office value.  Distances below ``min_distance``
    are clamped so colocated devices do not produce infinite power.
    """

    pl0_db: float = 40.0
    exponent: float = 3.0
    reference_m: float = 1.0
    min_distance_m: float = 0.3

    def loss_db(self, distance_m: float) -> float:
        d = max(distance_m, self.min_distance_m)
        return self.pl0_db + 10.0 * self.exponent * math.log10(d / self.reference_m)


@dataclass
class FadingModel:
    """Random link-budget components.

    ``shadowing_sigma_db`` is the standard deviation of the static per-link
    term; ``fading_sigma_db`` the per-frame term.  Either may be zero for a
    fully deterministic channel (useful in unit tests).
    """

    shadowing_sigma_db: float = 2.0
    fading_sigma_db: float = 2.5


class Channel:
    """Computes received power between positions.

    The channel owns the shadowing cache and the fading streams; it is shared
    by the :class:`~repro.phy.medium.Medium` for all links in a scenario.
    Link identity for shadowing purposes is the *name pair* of the endpoints,
    so a mobile device keeps its shadowing term while its distance changes
    (the distance-dependent part is recomputed every frame).

    The deterministic part of each link budget (log-distance path loss plus
    the static shadowing term) is cached per (tx, rx) name pair and keyed on
    a **position epoch**: static topologies compute the ``log10`` once per
    link and reuse it for every subsequent frame, while a call to
    :meth:`invalidate_gains` (issued by :meth:`Radio.move_to
    <repro.devices.base.Radio.move_to>` whenever an endpoint moves) advances
    the epoch and lazily discards every cached budget.  Entries additionally
    pin the exact :class:`Position` objects they were computed from, so even
    a position swap that bypasses the epoch (e.g. constructing a fresh
    ``Position`` in a unit test) can never be served a stale loss.
    """

    def __init__(
        self,
        path_loss: PathLossModel,
        fading: FadingModel,
        streams: RandomStreams,
    ):
        self.path_loss = path_loss
        self.fading = fading
        self.streams = streams
        self._shadowing_cache: Dict[Tuple[str, str], float] = {}
        # Per-link fading generators, keyed by (tx, rx) to avoid re-deriving
        # the stream name string on every frame.
        self._fading_streams: Dict[Tuple[str, str], Any] = {}
        #: Advanced by :meth:`invalidate_gains`; cached link budgets from
        #: earlier epochs are recomputed on next use.
        self.position_epoch = 0
        self._gain_cache: Dict[Tuple[str, str], _LinkBudget] = {}
        self.gain_hits = 0
        self.gain_misses = 0

    def invalidate_gains(self) -> None:
        """Advance the position epoch after any endpoint moved.

        Mobility updates go through here (see ``Radio.move_to``) so the
        Fig. 12 experiment keeps recomputing distances while static
        topologies pay the path-loss ``log10`` once per link.
        """
        self.position_epoch += 1

    def link_budget(
        self,
        tx_name: str,
        tx_pos: Position,
        rx_name: str,
        rx_pos: Position,
    ) -> Tuple[float, float]:
        """(path loss dB, shadowing dB) for one link, cached per epoch."""
        key = (tx_name, rx_name)
        entry = self._gain_cache.get(key)
        if (
            entry is not None
            and entry[4] == self.position_epoch
            and entry[0] is tx_pos
            and entry[1] is rx_pos
        ):
            self.gain_hits += 1
            return entry[2], entry[3]
        self.gain_misses += 1
        loss = self.path_loss.loss_db(tx_pos.distance_to(rx_pos))
        shadow = self._shadowing_db(tx_name, rx_name)
        self._gain_cache[key] = (tx_pos, rx_pos, loss, shadow, self.position_epoch)
        return loss, shadow

    def ensure_shadowing(self, tx_name: str, rx_names: list) -> None:
        """Prefetch shadowing terms for ``tx_name`` toward ``rx_names``.

        Draws exactly the values later :meth:`_shadowing_db` calls would (one
        normal from each pair's dedicated stream), but batch-seeds the missing
        streams first.  A no-op when shadowing is disabled.
        """
        if self.fading.shadowing_sigma_db <= 0.0:
            return
        missing = []
        seen = set()
        cache = self._shadowing_cache
        for rx_name in rx_names:
            key = (tx_name, rx_name) if tx_name <= rx_name else (rx_name, tx_name)
            if key not in cache and key not in seen:
                seen.add(key)
                missing.append(key)
        if not missing:
            return
        gens = self.streams.stream_many([f"shadowing/{a}|{b}" for a, b in missing])
        for key, rng in zip(missing, gens):
            self._shadowing_cache[key] = float(
                rng.normal(0.0, self.fading.shadowing_sigma_db)
            )

    def _shadowing_db(self, tx_name: str, rx_name: str) -> float:
        key = (tx_name, rx_name) if tx_name <= rx_name else (rx_name, tx_name)
        value = self._shadowing_cache.get(key)
        if value is None:
            if self.fading.shadowing_sigma_db > 0.0:
                rng = self.streams.stream(f"shadowing/{key[0]}|{key[1]}")
                value = float(rng.normal(0.0, self.fading.shadowing_sigma_db))
            else:
                value = 0.0
            self._shadowing_cache[key] = value
        return value

    def mean_rx_power_dbm(
        self,
        tx_power_dbm: float,
        tx_name: str,
        tx_pos: Position,
        rx_name: str,
        rx_pos: Position,
    ) -> float:
        """Received power without the per-frame fading term."""
        loss, shadow = self.link_budget(tx_name, tx_pos, rx_name, rx_pos)
        return tx_power_dbm - loss + shadow

    def fading_generator(self, tx_name: str, rx_name: str) -> Any:
        """The per-link fading stream (created on first use, then cached)."""
        key = (tx_name, rx_name)
        rng = self._fading_streams.get(key)
        if rng is None:
            rng = self.streams.stream(f"fading/{tx_name}->{rx_name}")
            self._fading_streams[key] = rng
        return rng

    def ensure_fading_generators(self, tx_name: str, rx_names: list) -> list:
        """Fading streams for ``tx_name`` toward every name in ``rx_names``.

        Identical streams to per-link :meth:`fading_generator` calls, but
        missing streams are batch-seeded (see ``RandomStreams.stream_many``),
        which matters when a new transmitter lights up O(radios) links at once.
        """
        missing = [rx for rx in rx_names if (tx_name, rx) not in self._fading_streams]
        if missing:
            gens = self.streams.stream_many(
                [f"fading/{tx_name}->{rx}" for rx in missing]
            )
            for rx, gen in zip(missing, gens):
                self._fading_streams[(tx_name, rx)] = gen
        return [self._fading_streams[(tx_name, rx)] for rx in rx_names]

    def frame_fading_db(self, tx_name: str, rx_name: str) -> float:
        """Draw the per-frame fading term for one (frame, link) pair."""
        if self.fading.fading_sigma_db <= 0.0:
            return 0.0
        return float(
            self.fading_generator(tx_name, rx_name).normal(
                0.0, self.fading.fading_sigma_db
            )
        )

    def rx_power_dbm(
        self,
        tx_power_dbm: float,
        tx_name: str,
        tx_pos: Position,
        rx_name: str,
        rx_pos: Position,
    ) -> float:
        """Received power including a fresh per-frame fading draw."""
        return self.mean_rx_power_dbm(
            tx_power_dbm, tx_name, tx_pos, rx_name, rx_pos
        ) + self.frame_fading_db(tx_name, rx_name)

"""Modulation-level abstractions: BER curves, packet error rates, durations.

Receivers in the simulator decide packet success from per-segment SINR via
technology-specific bit-error-rate curves:

* **802.15.4 O-QPSK DSSS** — the standard model from the 802.15.4 spec /
  coexistence literature, with the 32-chip spreading gain baked in.
* **802.11 OFDM** — AWGN formulas for BPSK/QPSK/16-QAM/64-QAM with a simple
  coding-gain offset per convolutional code rate.
* **BLE GFSK** — non-coherent FSK approximation.

Durations follow the corresponding PHY framing (OFDM symbol math for Wi-Fi,
250 kbps plus 6-byte synchronization header for ZigBee).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from functools import lru_cache
from typing import Dict

from scipy.special import erfc

from ..sim.units import USEC, db_to_linear


def _q_function(x: float) -> float:
    """Gaussian tail probability Q(x)."""
    return 0.5 * erfc(x / math.sqrt(2.0))


# ----------------------------------------------------------------------
# 802.15.4 O-QPSK DSSS
# ----------------------------------------------------------------------

_BINOM_16 = [math.comb(16, k) for k in range(17)]


def ber_oqpsk_dsss(sinr_db: float) -> float:
    """Bit error rate of 2.4 GHz 802.15.4 O-QPSK with DSSS.

    Standard formula (e.g. 802.15.4-2006 Annex E):

    ``BER = (8/15) * (1/16) * sum_{k=2}^{16} (-1)^k C(16,k) exp(20*SINR*(1/k - 1))``

    with SINR in linear scale.  The factor 20 reflects the 32-chip/4-bit
    spreading; the curve falls from 0.5 to ~1e-5 between roughly -1 dB and
    +3 dB of SINR, which is what gives ZigBee its ability to decode slightly
    below the noise floor of a wideband observer.
    """
    sinr = db_to_linear(sinr_db)
    total = 0.0
    for k in range(2, 17):
        sign = 1.0 if k % 2 == 0 else -1.0
        exponent = 20.0 * sinr * (1.0 / k - 1.0)
        # exp underflows harmlessly to 0 for high SINR.
        if exponent > -700.0:
            total += sign * _BINOM_16[k] * math.exp(exponent)
    ber = (8.0 / 15.0) * (1.0 / 16.0) * total
    return min(max(ber, 0.0), 0.5)


# ----------------------------------------------------------------------
# 802.11 OFDM
# ----------------------------------------------------------------------


class WifiModulation(Enum):
    BPSK = "bpsk"
    QPSK = "qpsk"
    QAM16 = "qam16"
    QAM64 = "qam64"
    CCK = "cck"  # 802.11b 5.5/11 Mbps complementary code keying


def _ber_uncoded(modulation: WifiModulation, snr_per_bit: float) -> float:
    """AWGN bit error rate of the raw constellation, linear Eb/N0."""
    if snr_per_bit <= 0.0:
        return 0.5
    if modulation is WifiModulation.BPSK:
        return _q_function(math.sqrt(2.0 * snr_per_bit))
    if modulation is WifiModulation.QPSK:
        return _q_function(math.sqrt(2.0 * snr_per_bit))
    if modulation is WifiModulation.QAM16:
        return (3.0 / 8.0) * erfc(math.sqrt(0.4 * snr_per_bit))
    if modulation is WifiModulation.QAM64:
        return (7.0 / 24.0) * erfc(math.sqrt(snr_per_bit / 7.0))
    raise ValueError(f"unknown modulation {modulation}")


#: Approximate convolutional coding gain at useful BERs, by code rate.
_CODING_GAIN_DB: Dict[str, float] = {"1/2": 5.0, "2/3": 4.0, "3/4": 3.5}

_BITS_PER_SUBCARRIER: Dict["WifiModulation", int] = {
    WifiModulation.BPSK: 1,
    WifiModulation.QPSK: 2,
    WifiModulation.QAM16: 4,
    WifiModulation.QAM64: 6,
}


class WifiPhyKind(Enum):
    OFDM = "ofdm"  # 802.11g
    DSSS = "dsss"  # 802.11b (includes CCK)


@dataclass(frozen=True)
class WifiRate:
    """One 802.11 rate.

    OFDM rates (802.11g) carry ``bits_per_symbol`` (N_DBPS per 4 µs symbol)
    and a convolutional code rate.  DSSS/CCK rates (802.11b) spread over the
    whole channel: their per-bit SNR is the channel SINR times the
    bandwidth-to-bitrate ratio (processing gain), which is why 1 Mbps Wi-Fi
    decodes far below the SINR any OFDM rate needs.
    """

    mbps: float
    modulation: WifiModulation
    code_rate: str
    bits_per_symbol: int  # N_DBPS for OFDM; unused for DSSS
    kind: WifiPhyKind = WifiPhyKind.OFDM

    def ber(self, sinr_db: float) -> float:
        """Post-decoding BER approximation at the given channel SINR.

        For OFDM we convert the per-symbol SINR to per-bit SNR with the
        modulation order and fold the convolutional code into a coding-gain
        offset.  For DSSS the despreading gain ``10·log10(20 MHz / bitrate)``
        converts channel SINR to per-bit SNR directly (CCK is approximated as
        QPSK with a 3 dB block-coding penalty).  These are the standard
        first-order link abstractions of packet-level simulators.
        """
        if self.kind is WifiPhyKind.DSSS:
            if self.modulation is WifiModulation.CCK:
                # CCK spreads less; 8-chip codewords ~ QPSK with a penalty.
                snr_per_bit = db_to_linear(sinr_db - 3.0) * (20.0 / self.mbps)
                return min(_ber_uncoded(WifiModulation.QPSK, snr_per_bit), 0.5)
            snr_per_bit = db_to_linear(sinr_db) * (20.0 / self.mbps)
            return min(_ber_uncoded(self.modulation, snr_per_bit), 0.5)
        bits_per_subcarrier = _BITS_PER_SUBCARRIER[self.modulation]
        effective_db = sinr_db + _CODING_GAIN_DB[self.code_rate]
        snr_per_bit = db_to_linear(effective_db) / bits_per_subcarrier
        return min(_ber_uncoded(self.modulation, snr_per_bit), 0.5)


WIFI_RATES: Dict[float, WifiRate] = {
    # 802.11b DSSS/CCK
    1.0: WifiRate(1.0, WifiModulation.BPSK, "-", 0, WifiPhyKind.DSSS),
    2.0: WifiRate(2.0, WifiModulation.QPSK, "-", 0, WifiPhyKind.DSSS),
    5.5: WifiRate(5.5, WifiModulation.CCK, "-", 0, WifiPhyKind.DSSS),
    11.0: WifiRate(11.0, WifiModulation.CCK, "-", 0, WifiPhyKind.DSSS),
    # 802.11g OFDM
    6.0: WifiRate(6.0, WifiModulation.BPSK, "1/2", 24),
    9.0: WifiRate(9.0, WifiModulation.BPSK, "3/4", 36),
    12.0: WifiRate(12.0, WifiModulation.QPSK, "1/2", 48),
    18.0: WifiRate(18.0, WifiModulation.QPSK, "3/4", 72),
    24.0: WifiRate(24.0, WifiModulation.QAM16, "1/2", 96),
    36.0: WifiRate(36.0, WifiModulation.QAM16, "3/4", 144),
    48.0: WifiRate(48.0, WifiModulation.QAM64, "2/3", 192),
    54.0: WifiRate(54.0, WifiModulation.QAM64, "3/4", 216),
}


def wifi_rate(mbps: float) -> WifiRate:
    try:
        return WIFI_RATES[float(mbps)]
    except KeyError:
        raise ValueError(f"unsupported 802.11 rate {mbps} Mbps") from None


# ----------------------------------------------------------------------
# BLE GFSK
# ----------------------------------------------------------------------


def ber_gfsk(sinr_db: float) -> float:
    """BLE 1 Mbps GFSK bit error rate (non-coherent FSK approximation)."""
    sinr = db_to_linear(sinr_db)
    return min(0.5 * math.exp(-0.35 * sinr), 0.5)


# ----------------------------------------------------------------------
# Packet error rates
# ----------------------------------------------------------------------


def packet_success_probability(ber: float, n_bits: int) -> float:
    """``(1 - BER)^n_bits`` computed stably in the log domain."""
    if n_bits <= 0:
        return 1.0
    if ber >= 1.0:
        return 0.0
    if ber <= 0.0:
        return 1.0
    log_p = n_bits * math.log1p(-ber)
    if log_p < -700.0:
        return 0.0
    return math.exp(log_p)


# ----------------------------------------------------------------------
# Frame durations
# ----------------------------------------------------------------------

#: 802.11 OFDM PLCP preamble + SIGNAL field.
WIFI_PLCP_PREAMBLE_S = 16 * USEC
WIFI_PLCP_SIGNAL_S = 4 * USEC
WIFI_SYMBOL_S = 4 * USEC
#: 802.11b long PLCP preamble + header (always sent at 1 Mbps).
WIFI_DSSS_PREAMBLE_S = 192 * USEC

#: 802.15.4 2.4 GHz: 250 kbps -> 32 us per byte; SHR+PHR = 6 bytes = 192 us.
ZIGBEE_BYTE_S = 32 * USEC
ZIGBEE_SHR_PHR_S = 6 * ZIGBEE_BYTE_S

#: BLE 1M: 1 us per bit; preamble+access address = 5 bytes = 40 us.
BLE_BIT_S = 1 * USEC
BLE_HEADER_S = 40 * USEC


@lru_cache(maxsize=1024)
def wifi_frame_duration(mpdu_bytes: int, rate: WifiRate) -> float:
    """Airtime of an 802.11 frame carrying ``mpdu_bytes`` of MPDU.

    OFDM follows the 802.11 TXTIME equation (16 service + 6 tail bits, symbol
    count rounded up); DSSS/CCK is the long-preamble PLCP plus the PSDU at
    the nominal bit rate.  A 100 B MPDU at 1 Mbps lasts ~1 ms — this is what
    makes the paper's "100 bytes every 1 ms" Wi-Fi workload dominate the
    channel.
    """
    if mpdu_bytes < 0:
        raise ValueError("mpdu_bytes must be non-negative")
    if rate.kind is WifiPhyKind.DSSS:
        return WIFI_DSSS_PREAMBLE_S + (8 * mpdu_bytes / rate.mbps) * USEC
    data_bits = 16 + 8 * mpdu_bytes + 6
    n_symbols = math.ceil(data_bits / rate.bits_per_symbol)
    return WIFI_PLCP_PREAMBLE_S + WIFI_PLCP_SIGNAL_S + n_symbols * WIFI_SYMBOL_S


def zigbee_frame_duration(mpdu_bytes: int) -> float:
    """Airtime of an 802.15.4 frame carrying ``mpdu_bytes`` of MPDU."""
    if mpdu_bytes < 0:
        raise ValueError("mpdu_bytes must be non-negative")
    return ZIGBEE_SHR_PHR_S + mpdu_bytes * ZIGBEE_BYTE_S


def ble_frame_duration(pdu_bytes: int) -> float:
    """Airtime of a BLE 1M PHY packet carrying ``pdu_bytes`` plus 3-byte CRC."""
    if pdu_bytes < 0:
        raise ValueError("pdu_bytes must be non-negative")
    return BLE_HEADER_S + (pdu_bytes + 3) * 8 * BLE_BIT_S

"""RF physical layer: spectrum, propagation, modulation, medium, observables."""

from .csi import CsiModel, CsiObserver, CsiSample
from .medium import Medium, Technology, Transmission
from .modulation import (
    WIFI_RATES,
    WifiModulation,
    WifiRate,
    ber_gfsk,
    ber_oqpsk_dsss,
    ble_frame_duration,
    packet_success_probability,
    wifi_frame_duration,
    wifi_rate,
    zigbee_frame_duration,
)
from .propagation import Channel, FadingModel, PathLossModel, Position
from .rssi import RssiSampler, RssiTrace
from .spectrum import (
    BLE_CHANNELS,
    MICROWAVE_BAND,
    WIFI_CHANNELS,
    ZIGBEE_CHANNELS,
    Band,
    ble_channel,
    overlap_fraction,
    overlapping_zigbee_channels,
    wifi_channel,
    zigbee_channel,
)

__all__ = [
    "CsiModel",
    "CsiObserver",
    "CsiSample",
    "Medium",
    "Technology",
    "Transmission",
    "WIFI_RATES",
    "WifiModulation",
    "WifiRate",
    "ber_gfsk",
    "ber_oqpsk_dsss",
    "ble_frame_duration",
    "packet_success_probability",
    "wifi_frame_duration",
    "wifi_rate",
    "zigbee_frame_duration",
    "Channel",
    "FadingModel",
    "PathLossModel",
    "Position",
    "RssiSampler",
    "RssiTrace",
    "BLE_CHANNELS",
    "MICROWAVE_BAND",
    "WIFI_CHANNELS",
    "ZIGBEE_CHANNELS",
    "Band",
    "ble_channel",
    "overlap_fraction",
    "overlapping_zigbee_channels",
    "wifi_channel",
    "zigbee_channel",
]

"""2.4 GHz ISM band model: channels, bands, and spectral overlap.

The coexistence problem BiCord addresses is rooted in spectral asymmetry:
Wi-Fi occupies 20 MHz (or 40 MHz) while ZigBee occupies 2 MHz, so every
ZigBee channel in range is flooded by a fraction of Wi-Fi's power, while a
ZigBee transmission lands entirely inside the Wi-Fi receive filter but only
excites a couple of OFDM subcarriers.

This module provides the frequency bookkeeping: channel maps for 802.11,
802.15.4, and BLE, and the overlap fraction used to weight cross-band
interference power.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class Band:
    """A contiguous slice of spectrum, centered at ``center_mhz``."""

    center_mhz: float
    bandwidth_mhz: float

    def __post_init__(self) -> None:
        if self.bandwidth_mhz <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth_mhz}")

    @property
    def low_mhz(self) -> float:
        return self.center_mhz - self.bandwidth_mhz / 2.0

    @property
    def high_mhz(self) -> float:
        return self.center_mhz + self.bandwidth_mhz / 2.0

    @property
    def bandwidth_hz(self) -> float:
        return self.bandwidth_mhz * 1e6

    def overlaps(self, other: "Band") -> bool:
        """True if the two bands share any spectrum."""
        return self.low_mhz < other.high_mhz and other.low_mhz < self.high_mhz

    def overlapped_mhz(self, other: "Band") -> float:
        """Width of the shared spectrum in MHz (0 if disjoint)."""
        return max(0.0, min(self.high_mhz, other.high_mhz) - max(self.low_mhz, other.low_mhz))


def overlap_fraction(tx_band: Band, rx_band: Band) -> float:
    """Fraction of the transmitter's power that lands in the receive filter.

    We model the transmit power as uniformly spread over the transmit band (a
    flat PSD — a standard first-order model for both OFDM and DSSS signals),
    so the captured fraction is ``overlap_width / tx_bandwidth``:

    * ZigBee (2 MHz) fully inside Wi-Fi's 20 MHz filter → 1.0 (all ZigBee
      power enters the Wi-Fi receiver).
    * Wi-Fi (20 MHz) into a ZigBee 2 MHz filter → 0.1 (-10 dB), which is why
      even attenuated Wi-Fi still swamps a ZigBee receiver given the ~20 dB
      transmit power gap.
    """
    overlap = tx_band.overlapped_mhz(rx_band)
    if overlap <= 0.0:
        return 0.0
    return min(1.0, overlap / tx_band.bandwidth_mhz)


def overlap_profile(tx_band: Band, rx_low, rx_high, rx_bandwidth):
    """Vectorized :func:`overlap_fraction` + decoding dilution for one tx band.

    ``rx_low``/``rx_high``/``rx_bandwidth`` are parallel numpy arrays of
    receiver band edges and widths.  Returns ``(fraction, dilution)`` where
    ``fraction[j]`` equals ``overlap_fraction(tx_band, rx_band_j)`` and
    ``dilution[j]`` equals ``min(1.0, overlapped_mhz / rx_bandwidth_j)`` — the
    two per-pair spectrum weights used by the medium.  The arithmetic mirrors
    the scalar helpers operation-for-operation (max/min chains on IEEE-754
    doubles are exact elementwise), so results are bitwise-identical.
    """
    import numpy as np

    overlap = np.maximum(
        0.0, np.minimum(tx_band.high_mhz, rx_high) - np.maximum(tx_band.low_mhz, rx_low)
    )
    fraction = np.minimum(1.0, overlap / tx_band.bandwidth_mhz)
    fraction[overlap <= 0.0] = 0.0
    dilution = np.minimum(1.0, overlap / rx_bandwidth)
    return fraction, dilution


#: IEEE 802.11b/g/n channel centers (MHz) in the 2.4 GHz band, 20 MHz wide.
WIFI_CHANNELS: Dict[int, Band] = {
    ch: Band(center_mhz=2412.0 + 5.0 * (ch - 1), bandwidth_mhz=20.0) for ch in range(1, 14)
}
# Channel 14 (Japan) sits at 2484 MHz, off the 5 MHz raster.
WIFI_CHANNELS[14] = Band(center_mhz=2484.0, bandwidth_mhz=20.0)

#: IEEE 802.15.4 channels 11-26 (MHz), 2 MHz wide, 5 MHz spacing.
ZIGBEE_CHANNELS: Dict[int, Band] = {
    ch: Band(center_mhz=2405.0 + 5.0 * (ch - 11), bandwidth_mhz=2.0) for ch in range(11, 27)
}

#: Bluetooth LE channels 0-39 (MHz), 2 MHz wide, 2 MHz spacing starting 2402.
BLE_CHANNELS: Dict[int, Band] = {
    ch: Band(center_mhz=2402.0 + 2.0 * ch, bandwidth_mhz=2.0) for ch in range(0, 40)
}

#: A microwave oven emits broadband noise over a large part of the ISM band.
MICROWAVE_BAND = Band(center_mhz=2458.0, bandwidth_mhz=60.0)


def wifi_channel(ch: int) -> Band:
    """Band of 802.11 channel ``ch`` (1-14)."""
    try:
        return WIFI_CHANNELS[ch]
    except KeyError:
        raise ValueError(f"unknown Wi-Fi channel {ch}") from None


def zigbee_channel(ch: int) -> Band:
    """Band of 802.15.4 channel ``ch`` (11-26)."""
    try:
        return ZIGBEE_CHANNELS[ch]
    except KeyError:
        raise ValueError(f"unknown ZigBee channel {ch}") from None


def ble_channel(ch: int) -> Band:
    """Band of BLE channel ``ch`` (0-39)."""
    try:
        return BLE_CHANNELS[ch]
    except KeyError:
        raise ValueError(f"unknown BLE channel {ch}") from None


def overlapping_zigbee_channels(wifi_ch: int) -> list:
    """ZigBee channels whose band overlaps the given Wi-Fi channel.

    The paper pairs Wi-Fi channel 11 with ZigBee channel 24 and Wi-Fi channel
    13 with ZigBee channel 26; both pairs are returned by this helper.
    """
    wband = wifi_channel(wifi_ch)
    return [ch for ch, band in ZIGBEE_CHANNELS.items() if band.overlaps(wband)]

"""Channel State Information (CSI) stream at a Wi-Fi receiver.

The Intel 5300 CSI extractor used in the paper emits one CSI report per
received Wi-Fi frame (~2 kHz under the paper's traffic).  BiCord's detector
does not use the raw subcarrier matrix — only a scalar *deviation* of the CSI
sequence from its recent baseline, classified into "slight jitter" vs "high
fluctuation" (Fig. 3).  We therefore model exactly that scalar per received
frame:

* a small baseline jitter (receiver noise, environment);
* occasional strong noise spikes — the false-positive channel the paper's
  continuity test (N samples within T) is designed to reject;
* a ZigBee-induced fluctuation when a ZigBee frame overlapped the Wi-Fi frame
  in time and frequency, whose probability of crossing the classification
  threshold grows smoothly with the ZigBee power received at the Wi-Fi
  receiver (weak ZigBee signals disturb fewer subcarriers less often);
* an optional environment perturbation hook used by the person-mobility
  experiment (a walking person also disturbs CSI, Sec. VIII-F).

The observer is passive: it registers as a frame listener on a
:class:`~repro.mac.wifi.WifiMac` and forwards samples to subscribers (the
BiCord detector, trace collectors).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional

from ..sim.engine import Simulator
from ..sim.rng import RandomStreams
from .medium import Technology

if TYPE_CHECKING:  # imported lazily to avoid package-init cycles
    from ..devices.base import RxInfo
    from ..faults.injectors import CsiFaultInjector
    from ..mac.frames import Frame
    from ..mac.wifi import WifiMac


def _sigmoid(x: float) -> float:
    if x >= 0:
        z = math.exp(-x)
        return 1.0 / (1.0 + z)
    z = math.exp(x)
    return z / (1.0 + z)


@dataclass(frozen=True)
class CsiSample:
    """One CSI deviation sample."""

    time: float
    deviation: float
    #: True when a ZigBee transmission overlapped this frame (ground truth for
    #: precision/recall accounting; the detector never reads this field).
    zigbee_overlap: bool
    zigbee_source: Optional[str] = None


@dataclass
class CsiModel:
    """Calibration of the CSI deviation statistics.

    ``zigbee_midpoint_dbm``/``zigbee_width_db`` place the sigmoid that maps
    ZigBee received power to the probability that the induced fluctuation
    crosses the classification threshold; they are the main knobs behind the
    Table I/II reproduction.
    """

    base_sigma: float = 0.06
    noise_spike_prob: float = 0.004
    noise_spike_low: float = 0.28
    noise_spike_high: float = 0.65
    zigbee_midpoint_dbm: float = -62.0
    zigbee_width_db: float = 3.0
    zigbee_high_low: float = 0.3
    zigbee_high_high: float = 0.9
    zigbee_low_scale: float = 0.1
    min_overlap_s: float = 20e-6

    def zigbee_high_probability(self, rx_power_dbm: float) -> float:
        """P(induced deviation crosses the threshold) given ZigBee rx power."""
        return _sigmoid((rx_power_dbm - self.zigbee_midpoint_dbm) / self.zigbee_width_db)


class CsiObserver:
    """Produces the CSI deviation stream of one Wi-Fi receiver."""

    def __init__(
        self,
        mac: "WifiMac",
        sim: Simulator,
        streams: RandomStreams,
        model: Optional[CsiModel] = None,
        faults: Optional["CsiFaultInjector"] = None,
    ):
        self.mac = mac
        self.sim = sim
        self.model = model or CsiModel()
        self._rng = streams.stream(f"csi/{mac.radio.name}")
        self.listeners: List[Callable[[CsiSample], None]] = []
        #: Extra deviation source (e.g. person mobility): callable(time) -> float.
        self.environment_deviation: Optional[Callable[[float], float]] = None
        #: Fault injector perturbing the observable (never the ground truth).
        self.faults = faults
        self.samples_emitted = 0
        mac.frame_listeners.append(self._on_frame)

    def subscribe(self, listener: Callable[[CsiSample], None]) -> None:
        self.listeners.append(listener)

    # ------------------------------------------------------------------
    def _on_frame(self, frame: "Frame", info: "RxInfo") -> None:
        model = self.model
        deviation = abs(float(self._rng.normal(0.0, model.base_sigma)))
        if self._rng.random() < model.noise_spike_prob:
            deviation = max(
                deviation,
                float(self._rng.uniform(model.noise_spike_low, model.noise_spike_high)),
            )
        zigbee_overlap = False
        zigbee_source = None
        best_power = None
        for technology, source_name, rx_dbm, seconds in info.overlaps:
            if technology is Technology.ZIGBEE and seconds >= model.min_overlap_s:
                zigbee_overlap = True
                if best_power is None or rx_dbm > best_power:
                    best_power = rx_dbm
                    zigbee_source = source_name
        # Fault injection perturbs what the extractor *reports*, never the
        # zigbee_overlap ground truth (precision/recall accounting stays
        # honest).  The ZigBee contribution draws stay on the csi/* stream
        # even for missed samples so a faulted run's clean samples line up
        # with the fault-free run's.
        visible = zigbee_overlap
        if zigbee_overlap and self.faults is not None and self.faults.miss_overlap():
            visible = False
        if zigbee_overlap and best_power is not None:
            p_high = model.zigbee_high_probability(best_power)
            if self._rng.random() < p_high:
                induced = float(
                    self._rng.uniform(model.zigbee_high_low, model.zigbee_high_high)
                )
            else:
                induced = abs(float(self._rng.normal(0.0, model.zigbee_low_scale)))
            if visible:
                deviation = max(deviation, induced)
        if not zigbee_overlap and self.faults is not None:
            spurious = self.faults.spurious_deviation()
            if spurious is not None:
                deviation = max(deviation, spurious)
        if self.environment_deviation is not None:
            deviation = max(deviation, self.environment_deviation(self.sim.now))
        sample = CsiSample(
            time=self.sim.now,
            deviation=deviation,
            zigbee_overlap=zigbee_overlap,
            zigbee_source=zigbee_source,
        )
        self.samples_emitted += 1
        for listener in self.listeners:
            listener(sample)

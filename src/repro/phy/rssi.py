"""RSSI sampling at a ZigBee node.

ZiSense-style CTI detection reads the radio's RSSI register at high frequency
(the paper samples at 40 kHz for 5 ms) and classifies the interferer from
time-domain features of the trace.  The sampler schedules one simulator event
per sample, reads the in-band energy at the radio, adds measurement noise,
and quantizes to the 1 dB granularity of real RSSI registers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List

import numpy as np

from ..sim.engine import Simulator
from ..sim.rng import RandomStreams

if TYPE_CHECKING:  # imported lazily to avoid package-init cycles
    from ..devices.base import Radio


@dataclass
class RssiTrace:
    """A captured RSSI sequence."""

    start_time: float
    rate_hz: float
    samples_dbm: np.ndarray

    @property
    def duration(self) -> float:
        return len(self.samples_dbm) / self.rate_hz

    def __len__(self) -> int:
        return len(self.samples_dbm)


class RssiSampler:
    """Captures RSSI traces at a ZigBee radio."""

    def __init__(
        self,
        radio: "Radio",
        sim: Simulator,
        streams: RandomStreams,
        measurement_noise_db: float = 1.0,
        quantize: bool = True,
    ):
        self.radio = radio
        self.sim = sim
        self.measurement_noise_db = measurement_noise_db
        self.quantize = quantize
        self._rng = streams.stream(f"rssi/{radio.name}")
        self._active = False

    def capture(
        self,
        duration: float,
        rate_hz: float,
        on_done: Callable[[RssiTrace], None],
    ) -> None:
        """Capture ``duration`` seconds at ``rate_hz``; call ``on_done(trace)``.

        Only one capture may be active at a time (a real radio has one RSSI
        register).
        """
        if self._active:
            raise RuntimeError(f"RSSI sampler on {self.radio.name} is already capturing")
        if duration <= 0 or rate_hz <= 0:
            raise ValueError("duration and rate must be positive")
        n_samples = max(1, round(duration * rate_hz))
        meter = getattr(self.radio, "energy_meter", None)
        if meter is not None:
            # High-rate RSSI sampling keeps the receiver on for the whole
            # capture window.
            meter.charge_listen(duration, label="rssi_capture")
        self._active = True
        samples: List[float] = []
        start_time = self.sim.now
        period = 1.0 / rate_hz

        def _sample() -> None:
            samples.append(self._read())
            if len(samples) >= n_samples:
                self._active = False
                trace = RssiTrace(start_time, rate_hz, np.asarray(samples))
                on_done(trace)
            else:
                self.sim.schedule(period, _sample)

        self.sim.schedule(0.0, _sample)

    def _read(self) -> float:
        value = self.radio.energy_dbm()
        if self.measurement_noise_db > 0.0:
            value += float(self._rng.normal(0.0, self.measurement_noise_db))
        if self.quantize:
            value = round(value)
        return value

    def read_now(self) -> float:
        """One instantaneous RSSI reading (used for quick channel checks)."""
        return self._read()

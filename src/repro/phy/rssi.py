"""RSSI sampling at a ZigBee node.

ZiSense-style CTI detection reads the radio's RSSI register at high frequency
(the paper samples at 40 kHz for 5 ms) and classifies the interferer from
time-domain features of the trace.

Two capture implementations produce bitwise-identical traces:

* **segment** (default) — the in-band energy at a radio is piecewise-constant
  between transmission start/end events, so the sampler registers as a
  :meth:`~repro.phy.medium.Medium.add_energy_observer`, records one
  (time, energy) breakpoint per medium state change, and synthesizes the
  whole trace at the end of the window with one vectorized noise draw and one
  vectorized quantization.  A capture costs **one** simulator event plus one
  energy query per medium transition, instead of one event and one
  full-medium query per sample.
* **per_sample** (legacy) — one simulator event per sample, each reading the
  energy and drawing measurement noise scalar-by-scalar.  Kept behind the
  ``mode`` flag as the reference implementation for equivalence regression
  tests.

Equivalence notes: sample instants are the *accumulated* floating-point sums
the per-sample path produces (``t += period`` per event, not
``start + k*period``); a vectorized ``Generator.normal(0, s, n)`` draw
consumes the PCG64 stream exactly like ``n`` scalar draws; and ``np.rint``
matches Python's banker's rounding.  The one deliberate divergence is the
measure-zero tie case of a sample instant coinciding *exactly* (as a float)
with a medium transition: the segment path reads the post-transition energy,
while the legacy path's reading depends on event-queue insertion order.
Calling :meth:`RssiSampler.read_now` mid-capture would also interleave extra
draws into the noise stream under the legacy path only; no caller does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional

import numpy as np

from .. import telemetry as _telemetry
from ..sim.engine import Simulator
from ..sim.rng import RandomStreams

if TYPE_CHECKING:  # imported lazily to avoid package-init cycles
    from ..devices.base import Radio

#: Valid values of :class:`RssiSampler`'s ``mode``.
CAPTURE_MODES = ("segment", "per_sample")

#: Capture implementation used by samplers constructed without an explicit
#: ``mode``.  Flip to ``"per_sample"`` (e.g. via :func:`set_default_capture_mode`)
#: to run whole experiments on the legacy path.
DEFAULT_CAPTURE_MODE = "segment"


def set_default_capture_mode(mode: str) -> str:
    """Set :data:`DEFAULT_CAPTURE_MODE`; returns the previous value."""
    global DEFAULT_CAPTURE_MODE
    if mode not in CAPTURE_MODES:
        raise ValueError(f"unknown capture mode {mode!r}; expected one of {CAPTURE_MODES}")
    previous = DEFAULT_CAPTURE_MODE
    DEFAULT_CAPTURE_MODE = mode
    return previous


@dataclass
class RssiTrace:
    """A captured RSSI sequence."""

    start_time: float
    rate_hz: float
    samples_dbm: np.ndarray

    @property
    def duration(self) -> float:
        return len(self.samples_dbm) / self.rate_hz

    def __len__(self) -> int:
        return len(self.samples_dbm)


class RssiSampler:
    """Captures RSSI traces at a ZigBee radio."""

    def __init__(
        self,
        radio: "Radio",
        sim: Simulator,
        streams: RandomStreams,
        measurement_noise_db: float = 1.0,
        quantize: bool = True,
        mode: Optional[str] = None,
        telemetry: Optional[_telemetry.MetricsRegistry] = None,
    ):
        if mode is not None and mode not in CAPTURE_MODES:
            raise ValueError(f"unknown capture mode {mode!r}; expected one of {CAPTURE_MODES}")
        self.radio = radio
        self.sim = sim
        self.measurement_noise_db = measurement_noise_db
        self.quantize = quantize
        self.mode = mode  # None -> DEFAULT_CAPTURE_MODE at capture time
        self._rng = streams.stream(f"rssi/{radio.name}")
        self._active = False
        registry = telemetry if telemetry is not None else _telemetry.NULL
        self._captures_counter = registry.counter("rssi.captures")
        self._samples_counter = registry.counter("rssi.samples")
        self._segments_counter = registry.counter("rssi.segments")
        self._events_counter = registry.counter("rssi.capture_events")

    def capture(
        self,
        duration: float,
        rate_hz: float,
        on_done: Callable[[RssiTrace], None],
    ) -> None:
        """Capture ``duration`` seconds at ``rate_hz``; call ``on_done(trace)``.

        Only one capture may be active at a time (a real radio has one RSSI
        register).
        """
        if self._active:
            raise RuntimeError(f"RSSI sampler on {self.radio.name} is already capturing")
        if duration <= 0 or rate_hz <= 0:
            raise ValueError("duration and rate must be positive")
        n_samples = max(1, round(duration * rate_hz))
        meter = getattr(self.radio, "energy_meter", None)
        if meter is not None:
            # High-rate RSSI sampling keeps the receiver on for the whole
            # capture window.
            meter.charge_listen(duration, label="rssi_capture")
        self._active = True
        self._captures_counter.inc()
        self._samples_counter.inc(n_samples)
        mode = self.mode if self.mode is not None else DEFAULT_CAPTURE_MODE
        if mode == "per_sample":
            self._capture_per_sample(n_samples, rate_hz, on_done)
        else:
            self._capture_segment(n_samples, rate_hz, on_done)

    # ------------------------------------------------------------------
    # Legacy reference path: one simulator event per sample
    # ------------------------------------------------------------------
    def _capture_per_sample(
        self, n_samples: int, rate_hz: float, on_done: Callable[[RssiTrace], None]
    ) -> None:
        samples: List[float] = []
        start_time = self.sim.now
        period = 1.0 / rate_hz
        self._events_counter.inc(n_samples)

        def _sample() -> None:
            samples.append(self._read())
            if len(samples) >= n_samples:
                self._active = False
                trace = RssiTrace(start_time, rate_hz, np.asarray(samples))
                on_done(trace)
            else:
                self.sim.schedule(period, _sample)

        self.sim.schedule(0.0, _sample)

    # ------------------------------------------------------------------
    # Segment path: one completion event, vectorized synthesis
    # ------------------------------------------------------------------
    def _capture_segment(
        self, n_samples: int, rate_hz: float, on_done: Callable[[RssiTrace], None]
    ) -> None:
        medium = self.radio.medium
        start_time = self.sim.now
        period = 1.0 / rate_hz
        self._events_counter.inc()
        # Exact per-sample instants of the legacy path: a running float sum,
        # seeded with the start time (cumsum accumulates left to right).
        increments = np.full(n_samples, period)
        increments[0] = start_time
        times = np.cumsum(increments)
        # Energy breakpoints: the level that holds from each time onward.
        bp_times: List[float] = [start_time]
        bp_energy: List[float] = [self.radio.energy_dbm()]

        def _on_change() -> None:
            # Several medium transitions can land on the same instant (a
            # transmission ending exactly as another starts); only the last
            # level at a given time is observable, so overwrite in place
            # rather than growing the breakpoint list with dead entries.
            now = self.sim.now
            if bp_times[-1] == now:
                bp_energy[-1] = self.radio.energy_dbm()
            else:
                bp_times.append(now)
                bp_energy.append(self.radio.energy_dbm())

        if medium is not None:
            medium.add_energy_observer(_on_change)

        def _complete() -> None:
            if medium is not None:
                medium.remove_energy_observer(_on_change)
            self._active = False
            self._segments_counter.inc(len(bp_times))
            trace = RssiTrace(
                start_time, rate_hz, self._synthesize(times, bp_times, bp_energy)
            )
            on_done(trace)

        self.sim.schedule_at(float(times[-1]), _complete)

    def _synthesize(
        self,
        times: np.ndarray,
        bp_times: List[float],
        bp_energy: List[float],
    ) -> np.ndarray:
        """Expand breakpoints to per-sample values; add noise and quantize."""
        # Last breakpoint at-or-before each sample instant.  Duplicated
        # breakpoint times resolve to the latest recorded level.
        idx = np.searchsorted(np.asarray(bp_times), times, side="right") - 1
        values = np.asarray(bp_energy)[idx]
        if self.measurement_noise_db > 0.0:
            values = values + self._rng.normal(
                0.0, self.measurement_noise_db, len(times)
            )
        if self.quantize:
            # Same banker's rounding as the legacy path's builtin round();
            # the legacy trace holds Python ints, i.e. a default-int array.
            return np.rint(values).astype(np.asarray([0]).dtype)
        return values

    def _read(self) -> float:
        value = self.radio.energy_dbm()
        if self.measurement_noise_db > 0.0:
            value += float(self._rng.normal(0.0, self.measurement_noise_db))
        if self.quantize:
            value = round(value)
        return value

    def read_now(self) -> float:
        """One instantaneous RSSI reading (used for quick channel checks)."""
        return self._read()

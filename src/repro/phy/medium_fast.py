"""Struct-of-arrays medium kernel (``Medium(kernel="vector")``).

The legacy :class:`~repro.phy.medium.Medium` runs a Python ``for radio in
self.radios`` loop on every transmission start — per-link stream lookups,
tuple-key dict churn, and float boxing — and answers every interference query
with an O(active × 1) fold per radio.  At the densities of the scale-ceiling
bench (hundreds of radios) those loops dominate the run time.

This kernel keeps the *same numbers* (bit-identical traces, enforced by
``tests/test_medium_equivalence.py``) while restructuring the hot path around
index-aligned numpy arrays:

* **Link matrix rows** (:class:`_SourceRow`) — path loss and shadowing from
  one source to every attached radio, rebuilt only when the position epoch,
  the radio count, or the source's position object changes.  Per-link fading
  generators are batch-seeded and buffered: each transmission consumes one
  pre-drawn sample per link (a single numpy gather) instead of N generator
  calls.
* **Per-band overlap profiles** — ``overlap_fraction`` and its dB form for
  one transmit band against every radio's band, cached per (band, band
  version).  Zero-overlap radios are masked out of all power math.
* **Slots** (:class:`_Slot`) — per-transmission rx-power and captured-power
  arrays indexed by radio position, replacing the ``(tx_id, radio.name)``
  tuple-key dicts.
* **Interference accumulators** (:class:`_Accum`) — per-radio running sums
  per technology filter, updated with one vectorized add at transmission
  start.  Removals re-fold lazily (float addition is not invertible
  bitwise), which is the *drift re-sum policy*: a transmission end marks the
  accumulator dirty and the next query rebuilds it from the surviving slots
  in active-set order, reproducing the legacy left-fold exactly.  Re-sums
  are counted by the ``medium.accumulator_resyncs`` telemetry counter.

Bitwise-exactness notes (all verified empirically): elementwise numpy
add/sub/mul/div/min/max match the equivalent scalar operation sequences;
``10.0 ** x`` does **not** (SIMD), so the mW conversion runs as a scalar loop
over the unmasked radios; batched ``Generator.normal(size=B)`` matches B
scalar draws from the same stream; appending a new term to a running sum
matches re-folding with the term last, but removing one does not.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Tuple

import numpy as np

from ..sim.units import dbm_to_mw, linear_to_db
from .medium import (
    Medium,
    Technology,
    Transmission,
    register_medium_kernel,
)
from .spectrum import overlap_fraction, overlap_profile

#: Pre-drawn fading samples kept per link.  Each refill is one
#: ``Generator.normal(size=_FADING_BATCH)`` call whose output is bit-identical
#: to the same number of scalar draws.
_FADING_BATCH = 16

#: Stable small-int code per technology, for the vectorized decode screen.
_TECH_INDEX = {tech: i for i, tech in enumerate(Technology)}


class _SourceRow:
    """Per-source link state: path loss, shadowing, buffered fading."""

    __slots__ = (
        "n",
        "src_index",
        "epoch",
        "src_pos",
        "loss",
        "shadow",
        "gens",
        "buf",
        "head",
        "count",
        "warm",
    )

    def __init__(self, n: int, src_index: int, epoch: int, src_pos: Any):
        self.n = n
        self.src_index = src_index  # -1 when the source is not an attached radio
        self.epoch = epoch
        self.src_pos = src_pos
        self.loss = np.zeros(n)
        self.shadow = np.zeros(n)
        self.gens: List[Any] = [None] * n
        self.buf = np.zeros((n, _FADING_BATCH))
        self.head = np.zeros(n, dtype=np.intp)
        self.count = np.zeros(n, dtype=np.intp)
        # The first transmission of a row draws scalars (cheap for one-shot
        # sources); buffers engage from the second transmission on.
        self.warm = False


class _Slot:
    """Array state of one active transmission (replaces the tuple-key dicts).

    ``dec`` is the demodulator-weighted power (captured × bandwidth
    dilution), precomputed so ``decoding_interference_mw`` folds over plain
    array reads.
    """

    __slots__ = ("n", "src_index", "rx_dbm", "cap", "dec", "tx")

    def __init__(
        self,
        n: int,
        src_index: int,
        rx_dbm: np.ndarray,
        cap: np.ndarray,
        dec: np.ndarray,
        tx: Transmission,
    ):
        self.n = n
        self.src_index = src_index
        self.rx_dbm = rx_dbm
        self.cap = cap
        self.dec = dec
        self.tx = tx


class _Accum:
    """A per-radio running interference sum for one technology filter.

    ``kind`` selects which transmissions contribute: ``"all"`` (no filter),
    ``"set"`` (technology in ``techs``), ``"wifi"`` / ``"other"`` (the two
    noise-seeded carrier-sense buckets).  ``seed`` is the per-radio base
    value each re-fold starts from (zero, or the noise floor for CCA).
    """

    __slots__ = ("kind", "techs", "seed", "totals", "dirty_all", "dirty")

    def __init__(self, kind: str, techs: Optional[FrozenSet[Technology]], n: int):
        self.kind = kind
        self.techs = techs
        self.seed: Optional[np.ndarray] = None  # None means zeros
        self.totals = np.zeros(n)
        self.dirty_all = True
        self.dirty: set = set()

    def matches(self, technology: Technology) -> bool:
        if self.kind == "all":
            return True
        if self.kind == "set":
            return technology in self.techs
        if self.kind == "wifi":
            return technology is Technology.WIFI
        return technology is not Technology.WIFI


class VectorMedium(Medium):
    """The ``"vector"`` kernel: struct-of-arrays medium hot path."""

    kernel_name = "vector"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._index_of: Dict[str, int] = {}
        self._noise_mw = np.zeros(0)
        self._band_low = np.zeros(0)
        self._band_high = np.zeros(0)
        self._band_bw = np.zeros(0)
        self._sens = np.zeros(0)
        self._tech_code = np.zeros(0, dtype=np.int64)
        #: Radios whose MAC re-plans on medium events (or has no known flag);
        #: they are notified on every transmission edge.
        self._sensitive = np.zeros(0, dtype=bool)
        #: Indices of radios currently holding a reception lock (maintained
        #: through ``on_radio_lock_changed``).
        self._locked: set = set()
        #: Bumped whenever any radio's band changes or a radio attaches;
        #: keys the per-band overlap profiles.
        self._band_version = 0
        self._rows: Dict[str, _SourceRow] = {}
        self._profiles: Dict[Tuple[Any, int], Tuple[np.ndarray, np.ndarray]] = {}
        self._slots: Dict[int, _Slot] = {}
        #: Radios with index >= _cover_n are not covered by every active
        #: slot (attached mid-transmission); their queries take the exact
        #: legacy fallback path.
        self._cover_n = 0
        self._accs: Dict[Any, _Accum] = {}
        self._cca_wifi: Optional[_Accum] = None
        self._cca_other: Optional[_Accum] = None

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def attach(self, radio: Any) -> None:
        super().attach(radio)
        self._index_of[radio.name] = len(self.radios) - 1
        self._noise_mw = np.append(self._noise_mw, dbm_to_mw(radio.noise_floor_dbm))
        band = radio.band
        self._band_low = np.append(self._band_low, band.low_mhz)
        self._band_high = np.append(self._band_high, band.high_mhz)
        self._band_bw = np.append(self._band_bw, band.bandwidth_mhz)
        self._sens = np.append(self._sens, radio.sensitivity_dbm)
        self._tech_code = np.append(
            self._tech_code, _TECH_INDEX.get(radio.technology, -1)
        )
        self._sensitive = np.append(self._sensitive, self._mac_sensitive(radio))
        self._band_version += 1
        for acc in self._all_accs():
            acc.totals = np.append(acc.totals, 0.0)
            if acc.seed is not None:
                acc.seed = self._noise_mw
        if not self._slots:
            self._cover_n = len(self.radios)

    def on_radio_retuned(self, radio: Any) -> None:
        j = self._index_of.get(radio.name)
        if j is None:
            return
        band = radio.band
        self._band_low[j] = band.low_mhz
        self._band_high[j] = band.high_mhz
        self._band_bw[j] = band.bandwidth_mhz
        self._band_version += 1
        # Refresh this radio's captured power in every active slot, exactly
        # as the legacy cache recomputes on its band-identity guard.
        for slot in self._slots.values():
            if j >= slot.n or j == slot.src_index:
                continue
            # slot.tx, not an _active lookup: a slot lingers through its end
            # notifications (matching the legacy dict entries), and a retune
            # from inside one must still refresh it.
            tx = slot.tx
            fraction = overlap_fraction(tx.band, band)
            if fraction <= 0.0:
                slot.cap[j] = 0.0
            else:
                slot.cap[j] = dbm_to_mw(float(slot.rx_dbm[j]) + linear_to_db(fraction))
            slot.dec[j] = float(slot.cap[j]) * min(
                1.0, tx.band.overlapped_mhz(band) / band.bandwidth_mhz
            )
        for acc in self._all_accs():
            acc.dirty.add(j)

    @staticmethod
    def _mac_sensitive(radio: Any) -> bool:
        """Whether ``radio`` must see every transmission edge.

        True when its MAC re-plans on medium events; MACs without the
        ``medium_event_sensitive`` flag are conservatively treated as
        sensitive.  A radio with no MAC at all is insensitive
        (``_notify_mac`` is a no-op), but may become sensitive later —
        MAC assignment re-fires :meth:`on_radio_mac_changed`.
        """
        mac = radio.mac
        if mac is None:
            return False
        return bool(getattr(mac, "medium_event_sensitive", True))

    def on_radio_mac_changed(self, radio: Any) -> None:
        j = self._index_of.get(radio.name)
        if j is not None and self.radios[j] is radio:
            self._sensitive[j] = self._mac_sensitive(radio)

    def on_radio_lock_changed(self, radio: Any, locked: bool) -> None:
        j = self._index_of.get(radio.name)
        if j is None or self.radios[j] is not radio:
            return
        if locked:
            self._locked.add(j)
        else:
            self._locked.discard(j)

    def _all_accs(self) -> Iterable[_Accum]:
        yield from self._accs.values()
        if self._cca_wifi is not None:
            yield self._cca_wifi
        if self._cca_other is not None:
            yield self._cca_other

    # ------------------------------------------------------------------
    # Link rows and band profiles
    # ------------------------------------------------------------------
    def _source_row(self, source: Any) -> _SourceRow:
        name = source.name
        n = len(self.radios)
        epoch = self.channel.position_epoch
        row = self._rows.get(name)
        if (
            row is not None
            and row.n == n
            and row.epoch == epoch
            and row.src_pos is source.position
        ):
            return row
        if row is not None:
            # A true rebuild (stale epoch/position/size), not a first build:
            # this is the per-source cost of topology churn that
            # ``Medium.move_many`` batches down to one epoch advance.
            self._link_rows_rebuilt.inc()
        # Identity check: an emitter sharing a name with a radio must not
        # cause that radio to be skipped (legacy skips by object identity).
        idx = self._index_of.get(name)
        src_index = idx if idx is not None and self.radios[idx] is source else -1
        new = _SourceRow(n, src_index, epoch, source.position)
        channel = self.channel
        radios = self.radios
        channel.ensure_shadowing(name, [r.name for r in radios])
        # Bypass the per-pair ``channel.link_budget`` wrapper: its cache probe
        # and tuple packing dominate a full-row build.  ``loss_db`` is the
        # exact scalar function the wrapper calls, and the shadowing terms
        # were just prefetched by ``ensure_shadowing`` from the same per-pair
        # streams, so the values are bitwise-identical to the legacy path.
        loss_db = channel.path_loss.loss_db
        dist = source.position.distance_to
        if channel.fading.shadowing_sigma_db > 0.0:
            shadow_cache = channel._shadowing_cache
            loss_list = [0.0] * n
            shadow_list = [0.0] * n
            for j, radio in enumerate(radios):
                if j == src_index:
                    continue
                rx_name = radio.name
                loss_list[j] = loss_db(dist(radio.position))
                key = (name, rx_name) if name <= rx_name else (rx_name, name)
                shadow_list[j] = shadow_cache[key]
            new.loss = np.asarray(loss_list)
            new.shadow = np.asarray(shadow_list)
        else:
            loss_list = [0.0] * n
            for j, radio in enumerate(radios):
                if j != src_index:
                    loss_list[j] = loss_db(dist(radio.position))
            new.loss = np.asarray(loss_list)
        if channel.fading.fading_sigma_db > 0.0:
            rx_names = [r.name for j, r in enumerate(self.radios) if j != src_index]
            gens = channel.ensure_fading_generators(name, rx_names)
            it = iter(gens)
            for j in range(n):
                if j != src_index:
                    new.gens[j] = next(it)
        if row is not None:
            # Unconsumed buffered fading samples are already drawn from the
            # per-link streams; they must survive a rebuild (radio indices
            # are append-only, so the old arrays map onto the new prefix).
            old_n = row.n
            new.buf[:old_n] = row.buf
            new.head[:old_n] = row.head
            new.count[:old_n] = row.count
            new.warm = row.warm
        self._rows[name] = new
        return new

    def _band_profile(self, band: Any) -> Tuple[np.ndarray, np.ndarray]:
        key = (band, self._band_version)
        profile = self._profiles.get(key)
        if profile is None:
            fraction, dilution = overlap_profile(
                band, self._band_low, self._band_high, self._band_bw
            )
            mask = fraction <= 0.0
            unique, inverse = np.unique(fraction, return_inverse=True)
            # linear_to_db per *unique* fraction, scalar (bitwise parity with
            # the legacy per-pair call); masked entries never read their ltd.
            ltd = np.array(
                [linear_to_db(v) if v > 0.0 else 0.0 for v in unique.tolist()]
            )[inverse]
            profile = (mask, ltd, dilution)
            if len(self._profiles) > 256:
                self._profiles.clear()
            self._profiles[key] = profile
        return profile

    def _draw_fading_vector(self, row: _SourceRow, sigma: float) -> np.ndarray:
        """One fading sample per link, consumed from the per-link buffers."""
        n = row.n
        if not row.warm:
            row.warm = True
            fading = np.zeros(n)
            for j in range(n):
                if j != row.src_index:
                    fading[j] = row.gens[j].normal(0.0, sigma)
            return fading
        need = row.count == 0
        if row.src_index >= 0:
            need[row.src_index] = False
        if need.any():
            buf = row.buf
            head = row.head
            count = row.count
            gens = row.gens
            for j in np.nonzero(need)[0]:
                buf[j] = gens[j].normal(0.0, sigma, _FADING_BATCH)
                head[j] = 0
                count[j] = _FADING_BATCH
        fading = row.buf[np.arange(n), row.head]
        row.head += 1
        row.count -= 1
        if row.src_index >= 0:
            js = row.src_index
            fading[js] = 0.0
            row.head[js] = 0
            row.count[js] = 0
        return fading

    def _draw_fading_scalar(self, src_name: str, rx_name: str) -> float:
        """Query-time fading draw for one link, buffer-aware.

        Radios attached mid-transmission query rx power lazily; the draw must
        come from the same position in the per-link stream the legacy kernel
        would use, so a buffered sample (if any) is consumed first.
        """
        sigma = self.channel.fading.fading_sigma_db
        if sigma <= 0.0:
            return 0.0
        row = self._rows.get(src_name)
        if row is not None:
            j = self._index_of.get(rx_name)
            if j is not None and j < row.n and j != row.src_index and row.count[j] > 0:
                value = float(row.buf[j, row.head[j]])
                row.head[j] += 1
                row.count[j] -= 1
                return value
        return self.channel.frame_fading_db(src_name, rx_name)

    # ------------------------------------------------------------------
    # Transmissions
    # ------------------------------------------------------------------
    def transmit(
        self,
        source: Any,
        duration: float,
        power_dbm: float,
        band: Any,
        technology: Technology,
        frame: Any = None,
    ) -> Transmission:
        if duration <= 0.0:
            raise ValueError(f"duration must be positive, got {duration}")
        tx = Transmission(
            tx_id=next(self._tx_ids),
            source_name=source.name,
            band=band,
            power_dbm=power_dbm,
            start=self.sim.now,
            duration=duration,
            technology=technology,
            frame=frame,
            source=source,
        )
        self._active[tx.tx_id] = tx
        self._tech_active[technology] += 1
        self._broadcasts.inc()
        self._tx_touched[tx.tx_id] = set()

        row = self._source_row(source)
        n = row.n
        js = row.src_index
        sigma = self.channel.fading.fading_sigma_db
        if sigma > 0.0:
            fading = self._draw_fading_vector(row, sigma)
            # mean + fading, in the legacy operation order:
            # ((power - loss) + shadow) + fading.
            rx_dbm = ((power_dbm - row.loss) + row.shadow) + fading
        else:
            # The legacy path still adds the (zero) fading term.
            rx_dbm = ((power_dbm - row.loss) + row.shadow) + 0.0
        mask, ltd, dilution = self._band_profile(band)
        cap = np.zeros(n)
        active_idx = np.nonzero(~mask)[0]
        scaled = (rx_dbm + ltd) / 10.0
        # Scalar pow: numpy's vectorized 10.0**x takes a SIMD path whose
        # low bits differ from the scalar libm pow the legacy kernel uses.
        cap[active_idx] = [10.0 ** v for v in scaled[active_idx].tolist()]
        if js >= 0:
            cap[js] = 0.0
        slot = _Slot(n, js, rx_dbm, cap, cap * dilution, tx)
        self._slots[tx.tx_id] = slot
        if n < self._cover_n:
            self._cover_n = n
        links = n - 1 if js >= 0 else n
        self._vector_links.inc(links)
        masked = int(mask.sum())
        if js >= 0 and mask[js]:
            masked -= 1
        self._masked_radios.inc(masked)

        # Appending a term to a running float sum is exact; every clean
        # accumulator picks the new transmission up in O(radios).
        for acc in self._all_accs():
            if not acc.dirty_all and acc.matches(technology):
                acc.totals += cap

        self._bump_state()
        self.trace.record(
            self.sim.now,
            "medium.tx_start",
            source=source.name,
            technology=technology.value,
            duration=duration,
            power_dbm=power_dbm,
        )
        # Notification pruning: a start notification only *does* anything for
        # a radio that (a) could lock onto this transmission, (b) already
        # holds a reception lock, or (c) has an event-sensitive MAC.  (a) is
        # screened vectorized with the exact checks Radio.on_transmission_start
        # performs (technology, band equality, rx power vs. sensitivity) —
        # false positives are re-filtered by the radio, false negatives are
        # impossible.  Everyone else would run a provably empty no-op, so the
        # legacy behavior is preserved bit-for-bit.  Index order == attach
        # order, matching the legacy iteration order.
        notify = self._sensitive.copy()
        if frame is not None:
            notify |= (
                (self._tech_code == _TECH_INDEX[technology])
                & (self._band_low == band.low_mhz)
                & (self._band_high == band.high_mhz)
                & (self._band_bw == band.bandwidth_mhz)
                & (rx_dbm >= self._sens)
            )
        for j in self._locked:
            notify[j] = True
        if js >= 0:
            notify[js] = False
        radios = self.radios
        for j in np.nonzero(notify)[0].tolist():
            radios[j].on_transmission_start(tx)
        self.sim.schedule(duration, self._finish, tx)
        return tx

    def _finish(self, tx: Transmission) -> None:
        if self._active.pop(tx.tx_id, None) is not None:
            self._tech_active[tx.technology] -= 1
            if tx.tx_id in self._slots:
                # Float subtraction would not reproduce the legacy left-fold;
                # mark every matching accumulator for a lazy exact re-sum.
                for acc in self._all_accs():
                    if acc.matches(tx.technology):
                        acc.dirty_all = True
                self._cover_n = min(
                    (
                        self._slots[tx_id].n
                        for tx_id in self._active
                        if tx_id in self._slots
                    ),
                    default=len(self.radios),
                )
        self._bump_state()
        self.trace.record(self.sim.now, "medium.tx_end", source=tx.source_name)
        # End notifications are no-ops except for locked radios and
        # event-sensitive MACs (there is no lock-acquisition path on an end
        # edge), so the pruned set needs no decode screen.
        notify = self._sensitive.copy()
        for j in self._locked:
            notify[j] = True
        src_j = self._index_of.get(tx.source_name, -1)
        if src_j >= 0 and self.radios[src_j] is not tx.source:
            src_j = -1
        if src_j >= 0:
            notify[src_j] = False
        radios = self.radios
        for j in np.nonzero(notify)[0].tolist():
            radios[j].on_transmission_end(tx)
        # The slot outlives the end notifications, exactly as the legacy
        # per-tx dict entries do: receivers reading this transmission's power
        # from inside ``on_transmission_end`` must see the frozen values, not
        # a fresh fallback draw.
        self._slots.pop(tx.tx_id, None)
        for name in self._tx_touched.pop(tx.tx_id, ()):
            self._rx_power.pop((tx.tx_id, name), None)
            self._captured_mw.pop((tx.tx_id, name), None)
        if tx.source is not None and hasattr(tx.source, "on_own_transmission_end"):
            tx.source.on_own_transmission_end(tx)

    # ------------------------------------------------------------------
    # Power queries
    # ------------------------------------------------------------------
    def rx_power_dbm(self, tx: Transmission, radio: Any) -> float:
        slot = self._slots.get(tx.tx_id)
        if slot is not None:
            j = self._index_of.get(radio.name)
            if j is not None and j < slot.n and j != slot.src_index:
                return float(slot.rx_dbm[j])
        # Legacy fallback (radio attached mid-transmission, or a query about
        # an already-finished transmission), with a buffer-aware fading draw.
        key = (tx.tx_id, radio.name)
        try:
            return self._rx_power[key]
        except KeyError:
            rx_dbm = self.channel.mean_rx_power_dbm(
                tx.power_dbm,
                tx.source_name,
                tx.source.position,
                radio.name,
                radio.position,
            ) + self._draw_fading_scalar(tx.source_name, radio.name)
            self._rx_power[key] = rx_dbm
            touched = self._tx_touched.get(tx.tx_id)
            if touched is not None:
                touched.add(radio.name)
            return rx_dbm

    def captured_power_mw(self, tx: Transmission, radio: Any) -> float:
        slot = self._slots.get(tx.tx_id)
        if slot is not None:
            j = self._index_of.get(radio.name)
            if j is not None and j < slot.n and j != slot.src_index:
                return float(slot.cap[j])
        return super().captured_power_mw(tx, radio)

    def decoding_interference_mw(
        self,
        radio: Any,
        exclude: Tuple[int, ...] = (),
    ) -> float:
        j = self._index_of.get(radio.name)
        if j is None or j >= self._cover_n:
            return super().decoding_interference_mw(radio, exclude)
        # Fold over the precomputed per-slot demodulator-weighted powers in
        # active-set order.  The radio's own transmissions contribute an
        # exact 0.0 (source column masked), matching the legacy skip; so do
        # zero-capture entries (0.0 × dilution).
        # Fold over the *active* set (a slot lingers through its transmission's
        # end notifications and must not contribute there), in insertion order.
        total = 0.0
        slots = self._slots
        if exclude:
            for tx_id in self._active:
                if tx_id in exclude:
                    continue
                slot = slots.get(tx_id)
                if slot is not None:
                    total += slot.dec[j]
        else:
            for tx_id in self._active:
                slot = slots.get(tx_id)
                if slot is not None:
                    total += slot.dec[j]
        return float(total)

    def _repair(self, acc: _Accum) -> None:
        """Exact re-sum: rebuild ``acc.totals`` from the surviving slots.

        Each slot contributes over its own radio range: a radio outside some
        active slot's range (attached mid-transmission) is below ``_cover_n``
        and served by the legacy fallback, so entries here only need the
        slots that cover them.
        """
        if acc.seed is None:
            totals = np.zeros(len(self.radios))
        else:
            totals = acc.seed.copy()
        for tx_id, tx in self._active.items():
            if not acc.matches(tx.technology):
                continue
            slot = self._slots.get(tx_id)
            if slot is None:
                continue
            totals[: slot.n] += slot.cap
        acc.totals = totals
        acc.dirty_all = False
        acc.dirty.clear()
        self._accumulator_resyncs.inc()

    def _repair_radio(self, acc: _Accum, j: int) -> None:
        if acc.seed is None:
            total = 0.0
        else:
            total = float(acc.seed[j])
        for tx_id, tx in self._active.items():
            if not acc.matches(tx.technology):
                continue
            slot = self._slots.get(tx_id)
            if slot is not None and j < slot.n:
                total += float(slot.cap[j])
        acc.totals[j] = total
        acc.dirty.discard(j)

    def _acc_value(self, acc: _Accum, j: int) -> float:
        if acc.dirty_all:
            self._repair(acc)
        elif j in acc.dirty:
            self._repair_radio(acc, j)
        return float(acc.totals[j])

    def interference_mw(
        self,
        radio: Any,
        exclude: Tuple[int, ...] = (),
        technologies: Optional[Iterable[Technology]] = None,
    ) -> float:
        if exclude:
            return super().interference_mw(radio, exclude, technologies)
        j = self._index_of.get(radio.name)
        if j is None or j >= self._cover_n:
            return super().interference_mw(radio, exclude, technologies)
        if technologies is None:
            wanted = None
        elif type(technologies) is frozenset:
            wanted = technologies
        else:
            wanted = frozenset(technologies)
        acc = self._accs.get(wanted)
        if acc is None:
            if wanted is None:
                acc = _Accum("all", None, len(self.radios))
            else:
                acc = _Accum("set", wanted, len(self.radios))
            self._accs[wanted] = acc
        return self._acc_value(acc, j)

    def cca_power_mw(
        self,
        radio: Any,
        now: float,
        min_age: float = 0.0,
    ) -> Tuple[float, float]:
        j = self._index_of.get(radio.name)
        if min_age != 0.0 or j is None or j >= self._cover_n:
            return super().cca_power_mw(radio, now, min_age)
        if self._cca_wifi is None:
            n = len(self.radios)
            self._cca_wifi = _Accum("wifi", None, n)
            self._cca_wifi.seed = self._noise_mw
            self._cca_other = _Accum("other", None, n)
            self._cca_other.seed = self._noise_mw
        return (
            self._acc_value(self._cca_wifi, j),
            self._acc_value(self._cca_other, j),
        )


register_medium_kernel("vector", VectorMedium)

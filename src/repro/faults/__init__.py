"""Fault injection: evaluate BiCord under imperfect coordination.

``FaultPlan`` declares the rates (pure data, serializable, cache-hashable);
``build_harness`` binds a plan to a trial's seeded random streams and
returns per-concern injectors that the PHY/core/MAC layers consult.  See
``docs/API.md`` ("Fault injection & robustness") for the wiring map.
"""

from .injectors import (
    CsiFaultInjector,
    ControlFaultInjector,
    CtsFaultInjector,
    DetectionFaultInjector,
    FaultHarness,
    NegotiationFaultInjector,
    TimerFaultInjector,
    build_harness,
)
from .plan import DIMENSIONS, FaultPlan
from .presets import FAULT_PLANS, fault_plan_names, get_fault_plan

__all__ = [
    "DIMENSIONS",
    "FAULT_PLANS",
    "FaultPlan",
    "fault_plan_names",
    "get_fault_plan",
    "FaultHarness",
    "build_harness",
    "CsiFaultInjector",
    "ControlFaultInjector",
    "CtsFaultInjector",
    "DetectionFaultInjector",
    "NegotiationFaultInjector",
    "TimerFaultInjector",
]

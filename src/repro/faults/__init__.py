"""Fault injection: evaluate BiCord under imperfect coordination.

``FaultPlan`` declares the rates (pure data, serializable, cache-hashable);
``build_harness`` binds a plan to a trial's seeded random streams and
returns per-concern injectors that the PHY/core/MAC layers consult.  See
``docs/API.md`` ("Fault injection & robustness") for the wiring map.
"""

from .injectors import (
    CsiFaultInjector,
    ControlFaultInjector,
    CtsFaultInjector,
    DetectionFaultInjector,
    FaultHarness,
    NegotiationFaultInjector,
    TimerFaultInjector,
    build_harness,
)
from .plan import DIMENSIONS, FaultPlan

__all__ = [
    "DIMENSIONS",
    "FaultPlan",
    "FaultHarness",
    "build_harness",
    "CsiFaultInjector",
    "ControlFaultInjector",
    "CtsFaultInjector",
    "DetectionFaultInjector",
    "NegotiationFaultInjector",
    "TimerFaultInjector",
]

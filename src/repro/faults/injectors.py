"""Seeded fault injectors: a :class:`FaultPlan` bound to random streams.

Each injector owns one concern of the coordination loop and one named
random stream (``faults/<concern>``) derived from the trial's
:class:`~repro.sim.rng.RandomStreams`.  Streams are independent of every
other consumer in the simulator, so

* the same (plan, seed) always produces the identical fault sequence, and
* switching a fault channel on never perturbs the draws of unrelated
  components — a faulted run differs from the clean run only where the
  faults actually bite.

:func:`build_harness` is the only constructor call sites need: it returns
``None`` for an inert plan (the clean code path stays byte-identical) and a
:class:`FaultHarness` with per-concern injectors otherwise.  Every injector
counts what it injected; :meth:`FaultHarness.counters` flattens the counts
for experiment reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

import numpy as np

from .plan import FaultPlan

if TYPE_CHECKING:  # avoid import cycles; frames are only type-annotated here
    from ..mac.frames import Frame
    from ..sim.rng import RandomStreams

#: Floor applied to faulted timer durations so a skewed timer can never be
#: scheduled in the past or spin the event loop.
MIN_TIMER_S = 1e-4

#: Attenuation applied to a dropped control packet, dB.  The sender still
#: transmits (airtime + energy are spent) but the packet arrives tens of dB
#: below any detection threshold — a lossy control channel, not a muted one.
DROP_ATTENUATION_DB = 80.0


class _Injector:
    """Shared plumbing: plan + private RNG + chance draws."""

    def __init__(self, plan: FaultPlan, rng: np.random.Generator):
        self.plan = plan
        self._rng = rng

    def _chance(self, probability: float) -> bool:
        if probability <= 0.0:
            return False
        return float(self._rng.random()) < probability


class CsiFaultInjector(_Injector):
    """Perturbs the CSI observable below the detector (phy/csi.py).

    Misses erase the ZigBee-induced deviation from an overlapped sample;
    spurious faults raise a clean sample into the high-fluctuation band.
    The sample's ``zigbee_overlap`` ground truth is *not* touched — only
    the observable — so precision/recall accounting stays honest.
    """

    def __init__(self, plan: FaultPlan, rng: np.random.Generator):
        super().__init__(plan, rng)
        self.samples_missed = 0
        self.samples_spurious = 0

    def miss_overlap(self) -> bool:
        """True when this overlapped sample should read as clean baseline."""
        if self._chance(self.plan.csi_miss_rate):
            self.samples_missed += 1
            return True
        return False

    def spurious_deviation(self) -> Optional[float]:
        """A fake high-fluctuation value for a clean sample, or None."""
        if not self._chance(self.plan.csi_spurious_rate):
            return None
        self.samples_spurious += 1
        return float(self._rng.uniform(0.3, 0.9))


class DetectionFaultInjector(_Injector):
    """Flips CSI detection outcomes (core/csi_detector.py)."""

    def __init__(self, plan: FaultPlan, rng: np.random.Generator):
        super().__init__(plan, rng)
        self.detections_suppressed = 0
        self.detections_injected = 0

    def flip(self, natural: bool) -> bool:
        """Map the detector's natural verdict to the faulted one."""
        if natural:
            if self._chance(self.plan.detection_fn_rate):
                self.detections_suppressed += 1
                return False
            return True
        if self._chance(self.plan.detection_fp_rate):
            self.detections_injected += 1
            return True
        return False


class ControlFaultInjector(_Injector):
    """Drops / truncates ZigBee control packets in flight (core/node.py)."""

    def __init__(self, plan: FaultPlan, rng: np.random.Generator):
        super().__init__(plan, rng)
        self.controls_dropped = 0
        self.controls_truncated = 0

    def perturb(self, frame: "Frame", power_dbm: float) -> float:
        """Decide this control packet's fate; returns the effective power.

        A dropped packet is transmitted ``DROP_ATTENUATION_DB`` below the
        negotiated power (invisible at the receiver, airtime still spent);
        a truncated packet keeps a uniform fraction of its payload bytes.
        One draw decides drop-vs-survive, so the fault sequence depends only
        on how many control packets were sent, not on their contents.
        """
        if self._chance(self.plan.control_drop_rate):
            self.controls_dropped += 1
            frame.meta["fault_control_dropped"] = True
            return power_dbm - DROP_ATTENUATION_DB
        if self._chance(self.plan.control_truncate_rate):
            fraction = float(self._rng.uniform(
                self.plan.control_truncate_min_fraction, 1.0
            ))
            truncated = max(1, int(frame.payload_bytes * fraction))
            if truncated < frame.payload_bytes:
                self.controls_truncated += 1
                frame.meta["fault_control_truncated"] = frame.payload_bytes
                overhead = frame.mpdu_bytes - frame.payload_bytes
                frame.payload_bytes = truncated
                frame.mpdu_bytes = truncated + overhead
        return power_dbm


class CtsFaultInjector(_Injector):
    """Marks CTS-to-self broadcasts as unheard or late (mac/wifi.py).

    The decision is made once per CTS at the *sender* (a single draw per
    grant) and stamped into the frame's metadata; contending MACs honor the
    stamp when they would otherwise set their NAV.  The granting device's
    own self-suppression is untouched — exactly the hidden-contender
    scenario: the white space exists, but nobody else respects it.
    """

    def __init__(self, plan: FaultPlan, rng: np.random.Generator):
        super().__init__(plan, rng)
        self.cts_suppressed = 0
        self.cts_delayed = 0

    def stamp(self) -> Dict[str, float]:
        """Metadata to attach to the next CTS-to-self frame."""
        if self._chance(self.plan.cts_suppress_rate):
            self.cts_suppressed += 1
            return {"fault_cts_drop": True}
        if self._chance(self.plan.cts_delay_rate) and self.plan.cts_delay_max > 0.0:
            self.cts_delayed += 1
            delay = float(self._rng.uniform(0.0, self.plan.cts_delay_max))
            return {"fault_cts_delay": delay}
        return {}


class TimerFaultInjector(_Injector):
    """Skews the Wi-Fi-side timers (core/coordinator.py) — clock drift."""

    def __init__(self, plan: FaultPlan, rng: np.random.Generator):
        super().__init__(plan, rng)
        self.timers_skewed = 0

    def _skewed(self, base: float, skew: float) -> float:
        value = base * (1.0 + skew)
        if self.plan.timer_jitter > 0.0:
            value += float(self._rng.uniform(
                -self.plan.timer_jitter, self.plan.timer_jitter
            ))
        if value != base:
            self.timers_skewed += 1
        return max(value, MIN_TIMER_S)

    def reestimation_period(self, base: float) -> float:
        return self._skewed(base, self.plan.reestimation_skew)

    def end_silence(self, base: float) -> float:
        return self._skewed(base, self.plan.end_silence_skew)


class NegotiationFaultInjector(_Injector):
    """Biases the PowerMap negotiation's RSSI estimate (core/negotiation.py)."""

    def __init__(self, plan: FaultPlan, rng: np.random.Generator):
        super().__init__(plan, rng)
        self.negotiations_perturbed = 0

    def perturb_rssi(self, rssi_dbm: float) -> float:
        value = rssi_dbm + self.plan.negotiation_bias_db
        if self.plan.negotiation_noise_db > 0.0:
            value += float(self._rng.normal(0.0, self.plan.negotiation_noise_db))
        if value != rssi_dbm:
            self.negotiations_perturbed += 1
        return value


@dataclass
class FaultHarness:
    """All injectors of one trial, each ``None`` when its channel is off."""

    plan: FaultPlan
    csi: Optional[CsiFaultInjector] = None
    detection: Optional[DetectionFaultInjector] = None
    control: Optional[ControlFaultInjector] = None
    cts: Optional[CtsFaultInjector] = None
    timers: Optional[TimerFaultInjector] = None
    negotiation: Optional[NegotiationFaultInjector] = None

    def counters(self) -> Dict[str, int]:
        """Flat injection counts (reported via ``CoexistenceResult.extra``)."""
        counts: Dict[str, int] = {}
        for injector, names in (
            (self.csi, ("samples_missed", "samples_spurious")),
            (self.detection, ("detections_suppressed", "detections_injected")),
            (self.control, ("controls_dropped", "controls_truncated")),
            (self.cts, ("cts_suppressed", "cts_delayed")),
            (self.timers, ("timers_skewed",)),
            (self.negotiation, ("negotiations_perturbed",)),
        ):
            if injector is None:
                continue
            for name in names:
                counts[f"fault_{name}"] = getattr(injector, name)
        return counts


def build_harness(
    plan: Optional[FaultPlan], streams: "RandomStreams"
) -> Optional[FaultHarness]:
    """Bind a plan to a trial's random streams.

    Returns ``None`` for a missing or inert plan so the fault-free code
    path stays exactly the seed-state code path (no extra stream creation,
    no draws, bitwise-identical results).
    """
    if plan is None or not plan.active:
        return None
    plan.validate()
    harness = FaultHarness(plan=plan)
    if plan.csi_miss_rate > 0.0 or plan.csi_spurious_rate > 0.0:
        harness.csi = CsiFaultInjector(plan, streams.stream("faults/csi"))
    if plan.detection_fn_rate > 0.0 or plan.detection_fp_rate > 0.0:
        harness.detection = DetectionFaultInjector(plan, streams.stream("faults/detection"))
    if plan.control_drop_rate > 0.0 or plan.control_truncate_rate > 0.0:
        harness.control = ControlFaultInjector(plan, streams.stream("faults/control"))
    if plan.cts_suppress_rate > 0.0 or plan.cts_delay_rate > 0.0:
        harness.cts = CtsFaultInjector(plan, streams.stream("faults/cts"))
    if (
        plan.reestimation_skew != 0.0
        or plan.end_silence_skew != 0.0
        or plan.timer_jitter > 0.0
    ):
        harness.timers = TimerFaultInjector(plan, streams.stream("faults/timers"))
    if plan.negotiation_bias_db != 0.0 or plan.negotiation_noise_db > 0.0:
        harness.negotiation = NegotiationFaultInjector(
            plan, streams.stream("faults/negotiation")
        )
    return harness

"""Named fault plans, so scenario specs can reference faults by string.

A :class:`~repro.scenarios.spec.ScenarioSpec` (and the CLI) names its
fault plan instead of embedding rates: either one of the curated presets
below, or the ``dimension:rate`` shorthand that robustness curves use
(``"control:0.3"`` → :meth:`FaultPlan.from_dimension`).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Tuple

from .plan import DIMENSIONS, FaultPlan

#: Curated presets: each stresses one coordination concern at a level
#: where degradation is visible but the link stays serviceable.
FAULT_PLANS: Dict[str, FaultPlan] = {
    # All rates zero: bitwise-identical to running without faults.
    "inert": FaultPlan(),
    "lossy-control": FaultPlan(control_drop_rate=0.3, control_truncate_rate=0.15),
    "blind-detector": FaultPlan(detection_fn_rate=0.4, detection_fp_rate=0.004),
    "hidden-contenders": FaultPlan(cts_suppress_rate=0.35, cts_delay_rate=0.2),
    "drifting-timers": FaultPlan(
        reestimation_skew=-0.5, end_silence_skew=-0.4, timer_jitter=2.5e-3
    ),
}


def fault_plan_names() -> Tuple[str, ...]:
    return tuple(sorted(FAULT_PLANS))


def get_fault_plan(name: str) -> FaultPlan:
    """Resolve a preset name or ``dimension:rate`` spec to a plan copy."""
    key = name.strip().lower()
    if key in FAULT_PLANS:
        return dataclasses.replace(FAULT_PLANS[key])
    if ":" in key:
        dimension, _, rate_text = key.partition(":")
        try:
            rate = float(rate_text)
        except ValueError:
            raise ValueError(
                f"bad fault plan {name!r}: rate {rate_text!r} is not a number"
            ) from None
        return FaultPlan.from_dimension(dimension, rate)
    raise KeyError(
        f"unknown fault plan {name!r}; available: {', '.join(fault_plan_names())} "
        f"or '<dimension>:<rate>' with dimension in {DIMENSIONS}"
    )

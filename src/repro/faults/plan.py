"""Declarative fault plans: *what* can go wrong, at which rate.

BiCord's coordination loop is a chain of best-effort mechanisms — CSI
detection of the ZigBee request, the cross-technology control channel, the
CTS-to-self broadcast that clears the white space, and two Wi-Fi-side
timers.  The paper itself reports non-zero false-positive/false-negative
detection rates (Fig. 5), and CTI surveys stress that coexistence schemes
must be evaluated under imperfect detection and lossy control channels.

A :class:`FaultPlan` is pure data: a set of rates and skews describing how
each link of the chain misbehaves.  It carries no randomness of its own —
:func:`repro.faults.injectors.build_harness` turns a plan into seeded
injector objects driven by the trial's
:class:`~repro.sim.rng.RandomStreams`, so fault sequences are
bit-reproducible per seed and safe to cache by the sweep engine.  An
all-zero plan builds *no* injectors and therefore reproduces the fault-free
simulation exactly (not just statistically).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Tuple

#: Robustness-sweep dimensions understood by :meth:`FaultPlan.from_dimension`.
DIMENSIONS: Tuple[str, ...] = ("detection", "control", "cts", "timers", "all")

#: Per-CSI-sample ghost-detection rate per unit sweep rate.  CSI samples
#: arrive at kHz rates, so the false-positive axis is scaled two orders of
#: magnitude below the per-detection flip rate to keep ``rate`` comparable
#: across dimensions (rate=1.0 -> ~1% of samples spawn a ghost detection).
FP_PER_SAMPLE_SCALE = 0.01


@dataclass
class FaultPlan:
    """Composable fault rates for every stage of the coordination loop.

    All ``*_rate`` fields are probabilities in ``[0, 1]``; skews are
    relative (``-0.5`` = the timer runs 50% fast); the plan with every
    field at its default is inert.
    """

    # --- CSI observable (phy/csi.py) -------------------------------------
    #: P(a ZigBee-overlapped CSI sample reads as clean baseline) — the CSI
    #: extractor missed the disturbance.
    csi_miss_rate: float = 0.0
    #: P(a clean CSI sample reads as a high fluctuation) — spurious
    #: environment noise injected below the detector.
    csi_spurious_rate: float = 0.0

    # --- Detection outcome (core/csi_detector.py) ------------------------
    #: P(a detection that would fire is silently suppressed) — false negative.
    detection_fn_rate: float = 0.0
    #: P(per CSI sample, a detection fires with no ZigBee present) — false
    #: positive.  Applied per sample, so keep it small (samples arrive ~kHz).
    detection_fp_rate: float = 0.0

    # --- ZigBee -> Wi-Fi control channel (core/node.py) ------------------
    #: P(a control packet never reaches the Wi-Fi receiver).  The sender
    #: still burns the airtime and energy; the CSI stream sees nothing.
    control_drop_rate: float = 0.0
    #: P(a control packet is truncated mid-air) — it overlaps fewer Wi-Fi
    #: frames, weakening the continuity evidence.
    control_truncate_rate: float = 0.0
    #: Remaining fraction of a truncated control packet is drawn uniformly
    #: from ``[control_truncate_min_fraction, 1)``.
    control_truncate_min_fraction: float = 0.25

    # --- CTS-to-self broadcast (mac/wifi.py) ------------------------------
    #: P(contending Wi-Fi stations never hear the CTS) — a hidden contender
    #: transmits straight into the granted white space.
    cts_suppress_rate: float = 0.0
    #: P(contenders decode the CTS late) — they keep transmitting into the
    #: head of the white space.
    cts_delay_rate: float = 0.0
    #: Maximum CTS decode delay, seconds (uniform in ``(0, cts_delay_max]``).
    cts_delay_max: float = 2e-3

    # --- Wi-Fi-side timers (core/coordinator.py) --------------------------
    #: Relative clock drift on the 10 s re-estimation timer (-0.5 = fires
    #: twice as often, +0.5 = 50% late).
    reestimation_skew: float = 0.0
    #: Relative drift on the end-of-burst silence window (negative values
    #: declare bursts over prematurely, splitting one burst into several).
    end_silence_skew: float = 0.0
    #: Additional +/- uniform jitter, seconds, drawn each time a Wi-Fi-side
    #: timer is armed.
    timer_jitter: float = 0.0

    # --- PowerMap negotiation (core/negotiation.py) -----------------------
    #: Systematic error added to the measured Wi-Fi RSSI, dB (a miscalibrated
    #: front end biases every negotiated power).
    negotiation_bias_db: float = 0.0
    #: Per-negotiation Gaussian measurement noise, dB std-dev.
    negotiation_noise_db: float = 0.0

    # ------------------------------------------------------------------
    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Raise ``ValueError`` on rates/fractions outside their domains."""
        for name in (
            "csi_miss_rate", "csi_spurious_rate",
            "detection_fn_rate", "detection_fp_rate",
            "control_drop_rate", "control_truncate_rate",
            "cts_suppress_rate", "cts_delay_rate",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if not 0.0 < self.control_truncate_min_fraction <= 1.0:
            raise ValueError(
                "control_truncate_min_fraction must be in (0, 1], got "
                f"{self.control_truncate_min_fraction}"
            )
        if self.cts_delay_max < 0.0:
            raise ValueError(f"cts_delay_max must be >= 0, got {self.cts_delay_max}")
        if self.timer_jitter < 0.0:
            raise ValueError(f"timer_jitter must be >= 0, got {self.timer_jitter}")
        for name in ("reestimation_skew", "end_silence_skew"):
            if getattr(self, name) <= -1.0:
                raise ValueError(f"{name} must be > -1 (timers cannot run backwards)")
        if self.negotiation_noise_db < 0.0:
            raise ValueError(
                f"negotiation_noise_db must be >= 0, got {self.negotiation_noise_db}"
            )

    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """True when any fault channel is switched on."""
        inert = FaultPlan()
        return any(
            getattr(self, field.name) != getattr(inert, field.name)
            for field in dataclasses.fields(self)
            if field.name not in ("control_truncate_min_fraction", "cts_delay_max")
        )

    def rates(self) -> Dict[str, float]:
        """Flat name -> value view (reporting, manifests)."""
        return {
            field.name: float(getattr(self, field.name))
            for field in dataclasses.fields(self)
        }

    # ------------------------------------------------------------------
    @classmethod
    def from_dimension(cls, dimension: str, rate: float) -> "FaultPlan":
        """Build the plan one robustness-sweep dimension maps to.

        ``rate`` in ``[0, 1]`` scales the dimension's fault channels:

        * ``detection`` — false negatives at ``rate``, per-sample false
          positives at ``rate * FP_PER_SAMPLE_SCALE``;
        * ``control``   — drops at ``rate``, truncation at ``rate / 2``;
        * ``cts``       — broadcast suppression at ``rate``, decode delay at
          ``rate / 2``;
        * ``timers``    — the re-estimation timer runs up to ``90%`` fast and
          the end-of-burst window up to ``75%`` short, plus 5 ms jitter, all
          scaled by ``rate``;
        * ``all``       — every channel above at once.
        """
        if dimension not in DIMENSIONS:
            raise ValueError(
                f"unknown fault dimension {dimension!r}; expected one of {DIMENSIONS}"
            )
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        fields: Dict[str, float] = {}
        if dimension in ("detection", "all"):
            fields.update(
                detection_fn_rate=rate,
                detection_fp_rate=rate * FP_PER_SAMPLE_SCALE,
            )
        if dimension in ("control", "all"):
            fields.update(
                control_drop_rate=rate,
                control_truncate_rate=rate / 2.0,
            )
        if dimension in ("cts", "all"):
            fields.update(
                cts_suppress_rate=rate,
                cts_delay_rate=rate / 2.0,
            )
        if dimension in ("timers", "all"):
            fields.update(
                reestimation_skew=-0.9 * rate,
                end_silence_skew=-0.75 * rate,
                timer_jitter=5e-3 * rate,
            )
        return cls(**fields)

"""MAC layers: 802.11 DCF, 802.15.4 unslotted CSMA/CA, shared frame types."""

from .frames import (
    BROADCAST,
    Frame,
    FrameType,
    wifi_ack_frame,
    wifi_cts_frame,
    wifi_data_frame,
    zigbee_ack_frame,
    zigbee_control_frame,
    zigbee_data_frame,
)
from .wifi import DIFS_S, SIFS_S, SLOT_S, WifiMac
from .zigbee import (
    ACK_WAIT_S,
    CCA_S,
    CHANNEL_ACCESS_FAILURE,
    NO_ACK,
    TURNAROUND_S,
    UNIT_BACKOFF_S,
    ZigbeeMac,
)

__all__ = [
    "BROADCAST",
    "Frame",
    "FrameType",
    "wifi_ack_frame",
    "wifi_cts_frame",
    "wifi_data_frame",
    "zigbee_ack_frame",
    "zigbee_control_frame",
    "zigbee_data_frame",
    "DIFS_S",
    "SIFS_S",
    "SLOT_S",
    "WifiMac",
    "ACK_WAIT_S",
    "CCA_S",
    "CHANNEL_ACCESS_FAILURE",
    "NO_ACK",
    "TURNAROUND_S",
    "UNIT_BACKOFF_S",
    "ZigbeeMac",
]

"""IEEE 802.11 DCF MAC (distributed coordination function).

Implements the subset of 802.11 that matters for coexistence studies:

* carrier sensing with the *asymmetry* the paper builds on — Wi-Fi preamble
  detection is sensitive (−82 dBm) for other Wi-Fi frames, but plain energy
  detection for non-Wi-Fi signals is poor (−70 dBm threshold *plus* a
  configurable narrowband penalty modeling ED averaging over the 20 MHz
  channel), so Wi-Fi routinely talks over ZigBee unless the ZigBee node is
  very close;
* DIFS + slotted random backoff with contention-window doubling and freezing
  while the medium is busy;
* unicast ACKs with retransmission up to a retry limit;
* NAV (virtual carrier sensing) honoring CTS frames — the mechanism both
  BiCord and ECC use to carve white spaces out of Wi-Fi airtime;
* transmission suppression windows (the CTS *sender* must also stay silent
  during the white space it granted).

The backoff countdown is scheduled analytically (one event per completion or
freeze) instead of per 9 µs slot, so event counts scale with traffic.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, List, Optional

from ..devices.base import Radio, RxInfo
from ..phy.medium import Technology
from ..phy.modulation import WifiRate, wifi_rate
from ..sim.engine import Event, Simulator
from ..sim.trace import TraceRecorder
from ..sim.units import mw_to_dbm, usec
from .frames import BROADCAST, Frame, FrameType, wifi_ack_frame, wifi_cts_frame

#: 802.11g OFDM MAC timings.
SLOT_S = usec(9.0)
SIFS_S = usec(16.0)
DIFS_S = SIFS_S + 2 * SLOT_S  # 34 us
ACK_TIMEOUT_MARGIN_S = usec(25.0)
#: Carrier-sense vulnerability window: a station whose backoff expires cannot
#: see transmissions that started less than this long ago (CCA assessment +
#: RX/TX turnaround).  This is what makes two stations whose counters reach
#: zero in the same slot *collide* instead of magically yielding — without
#: it the simulated DCF would be collision-free and overshoot Bianchi's
#: saturation throughput.
SENSE_DELAY_S = usec(4.0)

CW_MIN = 15
CW_MAX = 1023
RETRY_LIMIT = 7


class WifiMac:
    """DCF MAC bound to one Wi-Fi radio."""

    #: DCF re-evaluates its pending backoff/transmit plan on every medium
    #: event, so Wi-Fi radios must always be notified.
    medium_event_sensitive = True

    def __init__(
        self,
        radio: Radio,
        sim: Simulator,
        trace: Optional[TraceRecorder] = None,
        data_rate_mbps: float = 24.0,
        basic_rate_mbps: float = 6.0,
        tx_power_dbm: float = 20.0,
        preamble_threshold_dbm: float = -82.0,
        ed_threshold_dbm: float = -70.0,
        nonwifi_ed_penalty_db: float = 20.0,
    ):
        if radio.technology is not Technology.WIFI:
            raise ValueError("WifiMac requires a Wi-Fi radio")
        self.radio = radio
        self.sim = sim
        self.trace = trace or TraceRecorder(enabled_kinds=set())
        self.data_rate: WifiRate = wifi_rate(data_rate_mbps)
        self.basic_rate: WifiRate = wifi_rate(basic_rate_mbps)
        self.tx_power_dbm = tx_power_dbm
        self.preamble_threshold_dbm = preamble_threshold_dbm
        #: Effective CCA-ED threshold applied to non-Wi-Fi in-band energy.
        self.effective_ed_dbm = ed_threshold_dbm + nonwifi_ed_penalty_db
        radio.mac = self

        self.queue: Deque[Frame] = deque()
        self.nav_until = 0.0
        self.suppressed_until = 0.0
        self._cw = CW_MIN
        self._retries = 0
        self._backoff_slots: Optional[int] = None
        self._countdown_event: Optional[Event] = None
        self._countdown_started: Optional[float] = None
        self._wakeup_event: Optional[Event] = None
        self._ack_timer: Optional[Event] = None
        self._awaiting_ack_for: Optional[Frame] = None
        # Carrier-sense verdict memo, valid for one medium state epoch (the
        # active set — and hence the sensed power — is frozen between epochs).
        self._sense_epoch = -1
        self._sense_busy = False
        self._was_busy = self._medium_busy()
        # Hooks
        self.frame_listeners: List[Callable[[Frame, RxInfo], None]] = []
        self.sent_listeners: List[Callable[[Frame], None]] = []
        self.on_nav_set: Optional[Callable[[Frame, float], None]] = None
        # Statistics
        self.data_sent = 0
        self.data_delivered = 0
        self.data_dropped = 0
        self.acks_missed = 0
        self.delays: List[float] = []
        #: (delay, priority) per delivered frame — feeds the Fig. 13 split.
        self.delay_records: List[tuple] = []
        self.delivered_payload_bytes = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def enqueue(self, frame: Frame) -> None:
        """Queue a frame for DCF transmission."""
        self.queue.append(frame)
        self._evaluate()

    def enqueue_front(self, frame: Frame) -> None:
        """Queue a frame ahead of everything else (used for CTS-to-self)."""
        self.queue.appendleft(frame)
        self._evaluate()

    def reserve_whitespace(self, duration: float, **meta: Any) -> Frame:
        """Issue a CTS-to-self that silences Wi-Fi for ``duration`` seconds.

        The sender suppresses itself for the same window once the CTS is on
        the air.  Returns the CTS frame (its ``meta`` carries the caller's
        annotations, e.g. which coordination round this white space serves).
        """
        cts = wifi_cts_frame(self.radio.name, duration, self.basic_rate, **meta)
        self.enqueue_front(cts)
        return cts

    def suppress_until(self, time: float) -> None:
        """Forbid transmissions (but not reception) until ``time``."""
        if time > self.suppressed_until:
            self.suppressed_until = time
            self._schedule_wakeup(time)
        self._evaluate()

    def queue_length(self) -> int:
        return len(self.queue)

    @property
    def busy_with_traffic(self) -> bool:
        """True if the MAC currently holds frames or awaits an ACK."""
        return bool(self.queue) or self._awaiting_ack_for is not None

    def highest_queued_priority(self) -> int:
        """Max priority among queued frames (0 when empty)."""
        if not self.queue:
            return 0
        return max(f.priority for f in self.queue)

    # ------------------------------------------------------------------
    # Carrier sensing
    # ------------------------------------------------------------------
    def _medium_busy(self, min_age: float = 0.0) -> bool:
        """Carrier sensing.  ``min_age > 0`` ignores transmissions (and frame
        locks) younger than the sense delay — the state a station actually
        perceives at the instant its backoff expires."""
        radio = self.radio
        if radio.is_transmitting:
            return True
        now = self.sim.now
        if now < self.nav_until:
            return True
        if radio.is_receiving:
            lock = radio.receiving_transmission()
            if lock is None or now - lock.start >= min_age:
                return True
        medium = radio.medium
        cacheable = min_age == 0.0
        if cacheable and self._sense_epoch == medium.state_epoch:
            return self._sense_busy
        wifi_mw, other_mw = medium.cca_power_mw(radio, now, min_age)
        busy = (
            mw_to_dbm(wifi_mw) >= self.preamble_threshold_dbm
            or mw_to_dbm(other_mw) >= self.effective_ed_dbm
        )
        if cacheable:
            self._sense_epoch = medium.state_epoch
            self._sense_busy = busy
        return busy

    def _tx_allowed(self) -> bool:
        return self.sim.now >= self.suppressed_until

    # ------------------------------------------------------------------
    # Backoff engine
    # ------------------------------------------------------------------
    def _evaluate(self) -> None:
        """Re-plan the countdown after any state change."""
        busy = self._medium_busy() or not self._tx_allowed()
        if busy:
            if self._countdown_event is not None:
                self._freeze()
            self._was_busy = True
            return
        self._was_busy = False
        if self._countdown_event is not None:
            return  # countdown already running
        if self._awaiting_ack_for is not None:
            return  # transaction in progress
        if not self.queue:
            return
        if self._backoff_slots is None:
            rng = self.radio.streams.stream(f"mac/wifi/{self.radio.name}")
            self._backoff_slots = int(rng.integers(0, self._cw + 1))
        delay = DIFS_S + self._backoff_slots * SLOT_S
        self._countdown_started = self.sim.now
        self._countdown_event = self.sim.schedule(delay, self._countdown_complete)

    def _freeze(self) -> None:
        assert self._countdown_event is not None and self._countdown_started is not None
        if self._countdown_event.time - self.sim.now <= SENSE_DELAY_S:
            # The backoff expires within the carrier-sense window: the
            # decision to transmit has effectively been made already.  Let
            # the completion fire; it will ignore same-slot transmissions
            # and collide, exactly as real slotted DCF does.
            return
        self._countdown_event.cancel()
        elapsed = self.sim.now - self._countdown_started - DIFS_S
        if elapsed > 0 and self._backoff_slots:
            decremented = min(self._backoff_slots, int(elapsed / SLOT_S))
            self._backoff_slots -= decremented
        self._countdown_event = None
        self._countdown_started = None

    def _countdown_complete(self) -> None:
        self._countdown_event = None
        self._countdown_started = None
        self._backoff_slots = None
        if not self.queue:
            return
        if self._medium_busy(min_age=SENSE_DELAY_S) or not self._tx_allowed():
            self._evaluate()
            return
        frame = self.queue.popleft()
        self._transmit(frame)

    def _transmit(self, frame: Frame) -> None:
        if frame.frame_type is FrameType.DATA:
            self.data_sent += 1
        self.trace.record(
            self.sim.now, "wifi.tx", mac=self.radio.name,
            frame_type=frame.frame_type.value, dest=frame.destination, seq=frame.seq,
        )
        self.radio.transmit_frame(frame, self.tx_power_dbm)

    # ------------------------------------------------------------------
    # Radio callbacks
    # ------------------------------------------------------------------
    def on_medium_event(self) -> None:
        self._evaluate()

    def on_transmit_complete(self, frame: Frame) -> None:
        if frame.frame_type is FrameType.DATA and not frame.is_broadcast:
            self._awaiting_ack_for = frame
            ack_duration = wifi_ack_frame("", "", self.basic_rate).duration()
            timeout = SIFS_S + ack_duration + ACK_TIMEOUT_MARGIN_S
            self._ack_timer = self.sim.schedule(timeout, self._ack_timeout)
        elif frame.frame_type is FrameType.CTS:
            nav = frame.meta.get("nav_duration", 0.0)
            self.suppress_until(self.sim.now + nav)
            self._finish_transaction()
        else:
            self._finish_transaction()
        for listener in self.sent_listeners:
            listener(frame)

    def _finish_transaction(self) -> None:
        self._cw = CW_MIN
        self._retries = 0
        self._awaiting_ack_for = None
        self._evaluate()

    def _ack_timeout(self) -> None:
        self._ack_timer = None
        frame = self._awaiting_ack_for
        if frame is None:
            return
        self._awaiting_ack_for = None
        self.acks_missed += 1
        self._retries += 1
        if self._retries > RETRY_LIMIT:
            self.data_dropped += 1
            self.trace.record(self.sim.now, "wifi.drop", mac=self.radio.name, seq=frame.seq)
            self._cw = CW_MIN
            self._retries = 0
        else:
            self._cw = min(2 * self._cw + 1, CW_MAX)
            self.queue.appendleft(frame)
        self._evaluate()

    def on_frame_received(self, frame: Frame, info: RxInfo) -> None:
        mine = frame.destination in (self.radio.name, BROADCAST)
        if frame.frame_type is FrameType.ACK and frame.destination == self.radio.name:
            self._handle_ack(frame)
        elif frame.frame_type is FrameType.DATA and frame.destination == self.radio.name:
            self._send_ack(frame)
        elif frame.frame_type is FrameType.CTS:
            self._handle_cts(frame)
        if mine or frame.frame_type is FrameType.DATA:
            for listener in self.frame_listeners:
                listener(frame, info)

    def _handle_ack(self, ack: Frame) -> None:
        pending = self._awaiting_ack_for
        if pending is None or ack.meta.get("acked_seq") != pending.seq:
            return
        if self._ack_timer is not None:
            self._ack_timer.cancel()
            self._ack_timer = None
        self.data_delivered += 1
        self.delivered_payload_bytes += pending.payload_bytes
        delay = self.sim.now - pending.created_at
        self.delays.append(delay)
        self.delay_records.append((delay, pending.priority))
        self.trace.record(self.sim.now, "wifi.delivered", mac=self.radio.name, seq=pending.seq)
        self._finish_transaction()

    def _send_ack(self, data: Frame) -> None:
        ack = wifi_ack_frame(self.radio.name, data.source, self.basic_rate)
        ack.meta["acked_seq"] = data.seq
        self.sim.schedule(SIFS_S, self._forced_tx, ack)

    def _handle_cts(self, cts: Frame) -> None:
        nav = cts.meta.get("nav_duration", 0.0)
        if cts.source == self.radio.name:
            return
        new_nav = self.sim.now + nav
        # Fault stamps (set once at the sender, honored by every *other*
        # station): a dropped CTS never sets this NAV; a delayed one sets it
        # late but still ending at the original time — either way this
        # station may transmit into the granted white space, modeling the
        # hidden-contender failures of imperfect CTS-to-self coverage.
        if cts.meta.get("fault_cts_drop"):
            self.trace.record(
                self.sim.now, "wifi.nav_dropped", mac=self.radio.name,
                source=cts.source,
            )
            self._evaluate()
            return
        delay = cts.meta.get("fault_cts_delay", 0.0)
        if delay > 0.0:
            self.trace.record(
                self.sim.now, "wifi.nav_delayed", mac=self.radio.name,
                source=cts.source, delay=delay,
            )
            self.sim.schedule(delay, self._apply_nav, cts, new_nav)
            self._evaluate()
            return
        self._apply_nav(cts, new_nav)

    def _apply_nav(self, cts: Frame, until: float) -> None:
        if until > self.nav_until and until > self.sim.now:
            self.nav_until = until
            self._schedule_wakeup(until)
            self.trace.record(
                self.sim.now, "wifi.nav_set", mac=self.radio.name,
                source=cts.source, until=until,
            )
            if self.on_nav_set is not None:
                self.on_nav_set(cts, until)
        self._evaluate()

    def _forced_tx(self, frame: Frame) -> None:
        """Transmit without CCA (ACKs are sent after SIFS regardless)."""
        if self.radio.is_transmitting:
            return  # shouldn't happen; drop the ACK rather than crash
        self.radio.transmit_frame(frame, self.tx_power_dbm)

    def on_frame_lost(self, frame: Frame, info: RxInfo) -> None:
        self.trace.record(
            self.sim.now, "wifi.rx_corrupt", mac=self.radio.name,
            frame_type=frame.frame_type.value, source=frame.source,
        )

    def _schedule_wakeup(self, time: float) -> None:
        if self._wakeup_event is not None and self._wakeup_event.pending:
            if self._wakeup_event.time <= time:
                pass  # keep earliest wakeup; a later one will be rescheduled then
            else:
                self._wakeup_event.cancel()
                self._wakeup_event = self.sim.schedule_at(time, self._wakeup)
            return
        self._wakeup_event = self.sim.schedule_at(time, self._wakeup)

    def _wakeup(self) -> None:
        self._wakeup_event = None
        pending = [t for t in (self.nav_until, self.suppressed_until) if t > self.sim.now]
        if pending:
            self._schedule_wakeup(min(pending))
        self._evaluate()

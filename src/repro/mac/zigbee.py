"""IEEE 802.15.4 unslotted CSMA/CA MAC.

Implements the CC2420-class MAC behaviour the paper's TelosB motes exhibit:

* unslotted CSMA/CA: random backoff of ``0..2^BE-1`` unit periods (320 µs),
  one CCA (128 µs) per attempt, backoff exponent growing from 3 to 5, at most
  4 CCA failures per frame (``CHANNEL_ACCESS_FAILURE``);
* energy-detection CCA at −82 dBm — ZigBee defers to *any* energy, which is
  exactly why it starves under Wi-Fi and needs coordination;
* 192 µs RX/TX turnaround, ACKed unicast with up to 3 retransmissions;
* *forced* transmissions that bypass CSMA — used for ACKs (per the standard)
  and for BiCord's cross-technology control packets, which must deliberately
  overlap Wi-Fi traffic.

Clients (the BiCord node, baseline nodes) receive completion callbacks:
``on_send_success(frame)``, ``on_send_failure(frame, reason)`` with reason
``"channel_access_failure"`` or ``"no_ack"``, and ``on_data_received(frame)``
on the receiver side.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional

from ..devices.base import Radio, RxInfo
from ..phy.medium import Technology
from ..sim.engine import Event, Simulator
from ..sim.trace import TraceRecorder
from ..sim.units import usec
from .frames import BROADCAST, Frame, FrameType, zigbee_ack_frame

#: 802.15.4 2.4 GHz timings (1 symbol = 16 us).
UNIT_BACKOFF_S = usec(320.0)  # 20 symbols
CCA_S = usec(128.0)  # 8 symbols
TURNAROUND_S = usec(192.0)  # 12 symbols
ACK_WAIT_S = usec(864.0)  # macAckWaitDuration = 54 symbols

MAC_MIN_BE = 3
MAC_MAX_BE = 5
MAX_CSMA_BACKOFFS = 4
MAX_FRAME_RETRIES = 3

CHANNEL_ACCESS_FAILURE = "channel_access_failure"
NO_ACK = "no_ack"


class ZigbeeMac:
    """Unslotted CSMA/CA MAC bound to one ZigBee radio."""

    #: ZigBee CCA is sampled at scheduled instants, never re-planned on
    #: medium events (``on_medium_event`` is a no-op), so the medium may
    #: skip this MAC's radio when nothing else needs the notification.
    medium_event_sensitive = False

    def __init__(
        self,
        radio: Radio,
        sim: Simulator,
        trace: Optional[TraceRecorder] = None,
        tx_power_dbm: float = 0.0,
        cca_threshold_dbm: float = -82.0,
    ):
        if radio.technology is not Technology.ZIGBEE:
            raise ValueError("ZigbeeMac requires a ZigBee radio")
        self.radio = radio
        self.sim = sim
        self.trace = trace or TraceRecorder(enabled_kinds=set())
        self.tx_power_dbm = tx_power_dbm
        self.cca_threshold_dbm = cca_threshold_dbm
        #: Per-frame retransmission budget; BiCord lowers it because its
        #: signaling loop owns retries (a missing ACK means "signal Wi-Fi").
        self.max_frame_retries = MAX_FRAME_RETRIES
        #: CCA attempts per frame; BiCord lowers it so a busy channel is
        #: reported within a few ms instead of after the full BE ladder.
        self.max_csma_backoffs = MAX_CSMA_BACKOFFS
        radio.mac = self

        self.queue: Deque[Frame] = deque()
        self._current: Optional[Frame] = None
        self._nb = 0  # CSMA backoff attempts for the current frame
        self._be = MAC_MIN_BE
        self._retries = 0
        self._pending_event: Optional[Event] = None
        self._ack_timer: Optional[Event] = None
        self._awaiting_ack = False
        self._forced_queue: Deque[Frame] = deque()
        self._rx_dedup: Dict[str, int] = {}
        # Backoff stream, resolved once (streams.stream caches by name; this
        # skips the f-string + dict probe on every CSMA backoff).
        self._backoff_rng = radio.streams.stream(f"mac/zigbee/{radio.name}")

        # Client callbacks (set by the device / protocol layer).
        self.on_send_success: Optional[Callable[[Frame], None]] = None
        self.on_send_failure: Optional[Callable[[Frame, str], None]] = None
        self.on_data_received: Optional[Callable[[Frame, RxInfo], None]] = None
        self.on_control_received: Optional[Callable[[Frame, RxInfo], None]] = None

        # Statistics
        self.data_sent_attempts = 0
        self.data_delivered = 0
        self.channel_access_failures = 0
        self.ack_failures = 0
        self.cca_busy_count = 0
        self.cca_clear_count = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def send(self, frame: Frame) -> None:
        """Queue ``frame`` for CSMA/CA transmission."""
        self.queue.append(frame)
        self._maybe_start()

    def send_forced(self, frame: Frame, power_dbm: Optional[float] = None) -> None:
        """Transmit without CSMA (control packets, ACKs).

        Forced frames wait only for the radio to become free (our own ongoing
        transmission), never for the channel.  No ACK is awaited.
        """
        if power_dbm is not None:
            frame.meta["tx_power_dbm"] = power_dbm
        self._forced_queue.append(frame)
        self._maybe_start_forced()

    def send_immediate(self, frame: Frame, power_dbm: Optional[float] = None) -> None:
        """Transmit without CSMA but *with* the ACK/retry machinery.

        Used by BiCord's piggyback extension: a unicast control packet that
        doubles as a data packet must overlap the Wi-Fi traffic (no CCA) yet
        still be acknowledged.  The frame becomes the MAC's current
        transaction; completion is reported through the usual
        ``on_send_success`` / ``on_send_failure`` callbacks.
        """
        if self._current is not None:
            raise RuntimeError(
                f"MAC {self.radio.name} already has a transaction in progress"
            )
        if power_dbm is not None:
            frame.meta["tx_power_dbm"] = power_dbm
        self._current = frame
        self._nb = 0
        self._be = MAC_MIN_BE
        self._retries = self.max_frame_retries  # single attempt
        self._pending_event = self.sim.schedule(TURNAROUND_S, self._transmit_current)

    def cancel_pending(self) -> None:
        """Abort the current CSMA attempt and clear the data queue."""
        if self._pending_event is not None:
            self._pending_event.cancel()
            self._pending_event = None
        if self._ack_timer is not None:
            self._ack_timer.cancel()
            self._ack_timer = None
        self._awaiting_ack = False
        self._current = None
        self.queue.clear()

    def cca(self) -> bool:
        """One clear-channel assessment: True if the channel is idle.

        Each assessment costs 8 symbols (128 µs) of receiver current — the
        idle-listening energy that dominates low-power budgets and that the
        paper's energy argument (Sec. VII-B) charges against passive
        channel-assessment schemes.
        """
        meter = self.radio.energy_meter
        if meter is not None:
            meter.charge_listen(CCA_S, label="cca")
        idle = (
            not self.radio.is_receiving
            and self.radio.energy_dbm() < self.cca_threshold_dbm
        )
        if idle:
            self.cca_clear_count += 1
        else:
            self.cca_busy_count += 1
        return idle

    @property
    def busy(self) -> bool:
        return (
            self._current is not None
            or bool(self.queue)
            or bool(self._forced_queue)
            or self.radio.is_transmitting
        )

    # ------------------------------------------------------------------
    # Forced path
    # ------------------------------------------------------------------
    def _maybe_start_forced(self) -> None:
        if not self._forced_queue or self.radio.is_transmitting:
            return
        frame = self._forced_queue.popleft()
        power = frame.meta.get("tx_power_dbm", self.tx_power_dbm)
        self.trace.record(
            self.sim.now, "zigbee.tx_forced", mac=self.radio.name,
            frame_type=frame.frame_type.value,
        )
        self.radio.transmit_frame(frame, power)

    # ------------------------------------------------------------------
    # CSMA/CA state machine
    # ------------------------------------------------------------------
    def _maybe_start(self) -> None:
        if self._current is not None or not self.queue:
            return
        if self.radio.is_transmitting:
            return
        self._current = self.queue.popleft()
        self._nb = 0
        self._be = MAC_MIN_BE
        self._retries = 0
        self._backoff()

    def _backoff(self) -> None:
        periods = int(self._backoff_rng.integers(0, 2**self._be))
        delay = periods * UNIT_BACKOFF_S + CCA_S
        self._pending_event = self.sim.schedule(delay, self._after_cca)

    def _after_cca(self) -> None:
        self._pending_event = None
        frame = self._current
        if frame is None:
            return
        if self.cca():
            self._pending_event = self.sim.schedule(TURNAROUND_S, self._transmit_current)
            return
        self._nb += 1
        self._be = min(self._be + 1, MAC_MAX_BE)
        if self._nb > self.max_csma_backoffs:
            self.channel_access_failures += 1
            self._current = None
            self.trace.record(
                self.sim.now, "zigbee.access_failure", mac=self.radio.name, seq=frame.seq
            )
            if self.on_send_failure is not None:
                self.on_send_failure(frame, CHANNEL_ACCESS_FAILURE)
            self._maybe_start()
            return
        self._backoff()

    def _transmit_current(self) -> None:
        self._pending_event = None
        frame = self._current
        if frame is None:
            return
        if self.radio.is_transmitting:
            # A forced frame (ACK/control) grabbed the radio during our
            # turnaround; retry shortly after it finishes.
            self._pending_event = self.sim.schedule(UNIT_BACKOFF_S, self._transmit_current)
            return
        if frame.frame_type is FrameType.DATA:
            self.data_sent_attempts += 1
        power = frame.meta.get("tx_power_dbm", self.tx_power_dbm)
        self.trace.record(
            self.sim.now, "zigbee.tx", mac=self.radio.name, seq=frame.seq,
            frame_type=frame.frame_type.value,
        )
        self.radio.transmit_frame(frame, power)

    def on_transmit_complete(self, frame: Frame) -> None:
        if frame is self._current:
            if (
                frame.frame_type in (FrameType.DATA, FrameType.CONTROL)
                and not frame.is_broadcast
            ):
                self._awaiting_ack = True
                self._ack_timer = self.sim.schedule(ACK_WAIT_S, self._ack_timeout)
            else:
                self._complete_success(frame)
        on_complete = frame.meta.get("on_complete")
        if on_complete is not None:
            on_complete(frame)
        self._maybe_start_forced()
        # A data frame queued while the radio was busy (e.g. during a forced
        # control packet) must be able to start its CSMA procedure now.
        self._maybe_start()

    def _complete_success(self, frame: Frame) -> None:
        self._current = None
        self._awaiting_ack = False
        if frame.frame_type is FrameType.DATA:
            self.data_delivered += 1
        if self.on_send_success is not None:
            self.on_send_success(frame)
        self._maybe_start()

    def _ack_timeout(self) -> None:
        self._ack_timer = None
        if not self._awaiting_ack or self._current is None:
            return
        meter = self.radio.energy_meter
        if meter is not None:
            # The radio listened for the whole ACK wait and heard nothing.
            meter.charge_listen(ACK_WAIT_S, label="ack_wait")
        self._awaiting_ack = False
        frame = self._current
        self._retries += 1
        if self._retries > self.max_frame_retries:
            self.ack_failures += 1
            self._current = None
            self.trace.record(self.sim.now, "zigbee.no_ack", mac=self.radio.name, seq=frame.seq)
            if self.on_send_failure is not None:
                self.on_send_failure(frame, NO_ACK)
            self._maybe_start()
            return
        # Retransmission runs the CSMA procedure again (802.15.4 §7.5.6.4).
        self._nb = 0
        self._be = MAC_MIN_BE
        self._backoff()

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def on_frame_received(self, frame: Frame, info: RxInfo) -> None:
        if frame.frame_type is FrameType.ACK and frame.destination == self.radio.name:
            self._handle_ack(frame)
            return
        if frame.frame_type is FrameType.DATA and frame.destination == self.radio.name:
            self.sim.schedule(TURNAROUND_S, self._send_ack, frame)
            last_seq = self._rx_dedup.get(frame.source)
            if last_seq == frame.seq:
                return  # duplicate of an already-delivered frame
            self._rx_dedup[frame.source] = frame.seq
            if self.on_data_received is not None:
                self.on_data_received(frame, info)
            return
        if frame.frame_type is FrameType.CONTROL:
            if frame.destination == self.radio.name:
                # Piggybacked control packet: acknowledge like data, dedupe.
                self.sim.schedule(TURNAROUND_S, self._send_ack, frame)
                last_seq = self._rx_dedup.get(frame.source)
                if last_seq == frame.seq:
                    return
                self._rx_dedup[frame.source] = frame.seq
            if self.on_control_received is not None:
                self.on_control_received(frame, info)

    def _send_ack(self, data: Frame) -> None:
        ack = zigbee_ack_frame(self.radio.name, data.source, data.seq)
        self.send_forced(ack)

    def _handle_ack(self, ack: Frame) -> None:
        if not self._awaiting_ack or self._current is None:
            return
        if ack.meta.get("acked_seq") != self._current.seq:
            return
        if self._ack_timer is not None:
            self._ack_timer.cancel()
            self._ack_timer = None
        self._complete_success(self._current)

    def on_frame_lost(self, frame: Frame, info: RxInfo) -> None:
        self.trace.record(
            self.sim.now, "zigbee.rx_corrupt", mac=self.radio.name,
            frame_type=frame.frame_type.value, source=frame.source,
        )

    def on_medium_event(self) -> None:
        """ZigBee CCA is sampled, not event-driven; nothing to re-plan here."""

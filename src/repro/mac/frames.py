"""Frame definitions shared by the MAC layers.

A :class:`Frame` is deliberately technology-agnostic: the MAC that creates it
fills in the sizes and (for Wi-Fi) the OFDM rate; the PHY only needs the bit
count and, via :meth:`Frame.ber`, a BER curve to evaluate reception.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Optional

from ..phy.medium import Technology
from ..phy.modulation import (
    WifiRate,
    ber_gfsk,
    ber_oqpsk_dsss,
    ble_frame_duration,
    wifi_frame_duration,
    zigbee_frame_duration,
)

#: Destination of broadcast frames.
BROADCAST = "*"

_frame_ids = itertools.count(1)


class FrameType(Enum):
    DATA = "data"
    ACK = "ack"
    CTS = "cts"  # CTS-to-self: reserves the channel (NAV) for its duration field
    CONTROL = "control"  # BiCord cross-technology signaling packet
    CTC_NOTIFY = "ctc_notify"  # ECC's white-space announcement (emulated CTC)
    MGMT = "mgmt"  # Wi-Fi management (reassociation during roaming)


#: MAC overhead added to the payload to form the MPDU.
WIFI_MAC_OVERHEAD_BYTES = 28  # 24 B header + 4 B FCS
WIFI_ACK_MPDU_BYTES = 14
WIFI_CTS_MPDU_BYTES = 14
WIFI_MGMT_MPDU_BYTES = 28  # header-only management frame (reassoc request)
ZIGBEE_MAC_OVERHEAD_BYTES = 11  # 9 B header + 2 B FCS (short addressing)
ZIGBEE_ACK_MPDU_BYTES = 5


@dataclass
class Frame:
    """A MAC frame in flight (or queued)."""

    frame_type: FrameType
    technology: Technology
    source: str
    destination: str
    payload_bytes: int = 0
    mpdu_bytes: int = 0
    rate: Optional[WifiRate] = None
    created_at: float = 0.0
    seq: int = 0
    priority: int = 0  # higher = more important (Wi-Fi traffic classes)
    meta: Dict[str, Any] = field(default_factory=dict)
    frame_id: int = field(default_factory=lambda: next(_frame_ids))

    @property
    def is_broadcast(self) -> bool:
        return self.destination == BROADCAST

    @property
    def bits(self) -> int:
        """Bits whose errors can kill the frame (MPDU; headers included)."""
        return 8 * self.mpdu_bytes

    def duration(self) -> float:
        """Airtime of the frame."""
        if self.technology is Technology.WIFI:
            if self.rate is None:
                raise ValueError("Wi-Fi frame needs a rate")
            return wifi_frame_duration(self.mpdu_bytes, self.rate)
        if self.technology is Technology.ZIGBEE:
            return zigbee_frame_duration(self.mpdu_bytes)
        if self.technology is Technology.BLE:
            return ble_frame_duration(self.mpdu_bytes)
        raise ValueError(f"no duration rule for {self.technology}")

    def ber(self, sinr_db: float) -> float:
        """Bit error rate of this frame's modulation at the given SINR."""
        if self.technology is Technology.WIFI:
            assert self.rate is not None
            return self.rate.ber(sinr_db)
        if self.technology is Technology.ZIGBEE:
            return ber_oqpsk_dsss(sinr_db)
        if self.technology is Technology.BLE:
            return ber_gfsk(sinr_db)
        raise ValueError(f"no BER model for {self.technology}")


def wifi_data_frame(
    source: str,
    destination: str,
    payload_bytes: int,
    rate: WifiRate,
    created_at: float = 0.0,
    priority: int = 0,
    **meta: Any,
) -> Frame:
    """Build a Wi-Fi DATA frame with standard MAC overhead."""
    return Frame(
        FrameType.DATA,
        Technology.WIFI,
        source,
        destination,
        payload_bytes=payload_bytes,
        mpdu_bytes=payload_bytes + WIFI_MAC_OVERHEAD_BYTES,
        rate=rate,
        created_at=created_at,
        priority=priority,
        meta=dict(meta),
    )


def wifi_ack_frame(source: str, destination: str, rate: WifiRate) -> Frame:
    return Frame(
        FrameType.ACK,
        Technology.WIFI,
        source,
        destination,
        mpdu_bytes=WIFI_ACK_MPDU_BYTES,
        rate=rate,
    )


def wifi_cts_frame(source: str, nav_duration: float, rate: WifiRate, **meta: Any) -> Frame:
    """CTS-to-self reserving the channel for ``nav_duration`` seconds."""
    fields = dict(meta)
    fields["nav_duration"] = nav_duration
    return Frame(
        FrameType.CTS,
        Technology.WIFI,
        source,
        BROADCAST,
        mpdu_bytes=WIFI_CTS_MPDU_BYTES,
        rate=rate,
        meta=fields,
    )


def wifi_mgmt_frame(
    source: str,
    destination: str,
    rate: WifiRate,
    created_at: float = 0.0,
    **meta: Any,
) -> Frame:
    """A minimal Wi-Fi management frame (reassociation during a handoff).

    Sent at the basic rate like control traffic; it is not ACKed and does
    not count toward the MAC's DATA statistics, so roaming overhead stays
    visible as airtime without polluting per-link delivery metrics.
    """
    return Frame(
        FrameType.MGMT,
        Technology.WIFI,
        source,
        destination,
        mpdu_bytes=WIFI_MGMT_MPDU_BYTES,
        rate=rate,
        created_at=created_at,
        meta=dict(meta),
    )


def zigbee_data_frame(
    source: str,
    destination: str,
    payload_bytes: int,
    created_at: float = 0.0,
    **meta: Any,
) -> Frame:
    """Build a ZigBee DATA frame with standard MAC overhead."""
    return Frame(
        FrameType.DATA,
        Technology.ZIGBEE,
        source,
        destination,
        payload_bytes=payload_bytes,
        mpdu_bytes=payload_bytes + ZIGBEE_MAC_OVERHEAD_BYTES,
        created_at=created_at,
        meta=dict(meta),
    )


def zigbee_ack_frame(source: str, destination: str, acked_seq: int) -> Frame:
    return Frame(
        FrameType.ACK,
        Technology.ZIGBEE,
        source,
        destination,
        mpdu_bytes=ZIGBEE_ACK_MPDU_BYTES,
        meta={"acked_seq": acked_seq},
    )


def zigbee_control_frame(source: str, total_bytes: int, **meta: Any) -> Frame:
    """BiCord cross-technology signaling packet.

    ``total_bytes`` is the full frame length on the air (the paper uses 120 B
    so that the frame spans at least two consecutive Wi-Fi packets); it is
    carried as the MPDU size directly.
    """
    return Frame(
        FrameType.CONTROL,
        Technology.ZIGBEE,
        source,
        BROADCAST,
        payload_bytes=max(0, total_bytes - ZIGBEE_MAC_OVERHEAD_BYTES),
        mpdu_bytes=total_bytes,
        meta=dict(meta),
    )

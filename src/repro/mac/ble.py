"""A BLE connection with adaptive frequency hopping (AFH).

Sec. VII-D argues BiCord's directly-coordinated channel allocation extends
to other technology pairs, e.g. ZigBee and Bluetooth.  The BLE-world
equivalent of a Wi-Fi white space is *channel exclusion*: a BLE master that
keeps losing packets on the hop channels overlapping a ZigBee transmitter
removes those channels from its hop map, permanently clearing the spectrum
the ZigBee node asked for — the ZigBee transmissions themselves are the
cross-technology signal, exactly like BiCord's control packets.

This module implements the substrate: a master/slave connection exchanging
one poll/response per connection event on a hopping data channel, per-channel
CRC statistics, and the AFH classifier that maps failure concentration to
channel exclusions (with probation so transient interference heals).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..context import SimContext
from ..devices.base import Radio, RxInfo
from ..phy.medium import Technology
from ..phy.spectrum import ble_channel
from ..sim.process import Process
from ..sim.units import usec
from .frames import Frame, FrameType

#: BLE inter-frame space.
T_IFS_S = usec(150.0)
#: LE requires at least two data channels in the map.
MIN_USED_CHANNELS = 2
#: BLE data channels (0-36; 37-39 are advertising).
DATA_CHANNELS = tuple(range(37))


class _BleEndpoint:
    """Minimal MAC adapter connecting a radio to the connection object."""

    #: BLE is TDMA: connection events are clock-driven, never re-planned on
    #: medium activity, so notifications to an idle endpoint are no-ops.
    medium_event_sensitive = False

    def __init__(self, connection: "BleConnection", role: str):
        self.connection = connection
        self.role = role

    def on_frame_received(self, frame: Frame, info: RxInfo) -> None:
        self.connection._on_frame(self.role, frame, info)

    def on_frame_lost(self, frame: Frame, info: RxInfo) -> None:
        self.connection._on_loss(self.role, frame, info)

    def on_medium_event(self) -> None:  # BLE is TDMA: nothing to re-plan
        pass

    def on_transmit_complete(self, frame: Frame) -> None:
        pass


@dataclass
class ChannelStats:
    attempts: int = 0
    failures: int = 0

    @property
    def failure_rate(self) -> float:
        return self.failures / self.attempts if self.attempts else 0.0


class BleConnection:
    """One BLE master/slave link running connection events over a hop map."""

    def __init__(
        self,
        ctx: SimContext,
        name: str,
        master_pos,
        slave_pos,
        connection_interval: float = 30e-3,
        payload_bytes: int = 30,
        tx_power_dbm: float = 4.0,
        hop_increment: int = 7,
        afh_enabled: bool = True,
        afh_check_interval: float = 0.5,
        afh_failure_threshold: float = 0.4,
        afh_min_samples: int = 4,
        afh_probation: float = 5.0,
    ):
        self.ctx = ctx
        self.name = name
        self.connection_interval = connection_interval
        self.payload_bytes = payload_bytes
        self.tx_power_dbm = tx_power_dbm
        self.hop_increment = hop_increment
        self.afh_enabled = afh_enabled
        self.afh_check_interval = afh_check_interval
        self.afh_failure_threshold = afh_failure_threshold
        self.afh_min_samples = afh_min_samples
        self.afh_probation = afh_probation

        def make_radio(role: str, pos) -> Radio:
            radio = Radio(
                name=f"{name}-{role}",
                position=pos,
                band=ble_channel(0),
                technology=Technology.BLE,
                sim=ctx.sim,
                streams=ctx.streams,
                trace=ctx.trace,
                sensitivity_dbm=-90.0,
                noise_figure_db=6.0,
            )
            ctx.medium.attach(radio)
            return radio

        self.master = make_radio("master", master_pos)
        self.slave = make_radio("slave", slave_pos)
        self.master.mac = _BleEndpoint(self, "master")
        self.slave.mac = _BleEndpoint(self, "slave")

        self.used_channels: List[int] = list(DATA_CHANNELS)
        self.excluded_until: Dict[int, float] = {}
        self.stats: Dict[int, ChannelStats] = {ch: ChannelStats() for ch in DATA_CHANNELS}
        self._last_unmapped = 0
        self._event_channel: Optional[int] = None
        self._poll_answered = False
        self._seq = 0

        # Statistics
        self.events = 0
        self.event_successes = 0
        self.event_failures = 0
        self.exclusions = 0
        self._event_process: Optional[Process] = None
        self._afh_process: Optional[Process] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._event_process is not None:
            raise RuntimeError(f"{self.name} already started")
        self._event_process = Process(
            self.ctx.sim, self._run_events(), name=f"ble/{self.name}"
        )
        if self.afh_enabled:
            self._afh_process = Process(
                self.ctx.sim, self._run_afh(), start_delay=self.afh_check_interval,
                name=f"ble-afh/{self.name}",
            )

    def stop(self) -> None:
        if self._event_process is not None:
            self._event_process.stop()
            self._event_process = None
        if self._afh_process is not None:
            self._afh_process.stop()
            self._afh_process = None

    # ------------------------------------------------------------------
    # Hopping
    # ------------------------------------------------------------------
    def _next_channel(self) -> int:
        """Channel-selection algorithm #1 with a remapping table."""
        self._last_unmapped = (self._last_unmapped + self.hop_increment) % len(
            DATA_CHANNELS
        )
        channel = self._last_unmapped
        if channel in self.used_channels:
            return channel
        remap_index = channel % len(self.used_channels)
        return self.used_channels[remap_index]

    def _tune(self, channel: int) -> None:
        band = ble_channel(channel)
        self.master.retune(band)
        self.slave.retune(band)

    # ------------------------------------------------------------------
    # Connection events
    # ------------------------------------------------------------------
    def _run_events(self):
        while True:
            self._begin_event()
            yield self.connection_interval

    def _begin_event(self) -> None:
        channel = self._next_channel()
        self._event_channel = channel
        self._poll_answered = False
        self._tune(channel)
        self.events += 1
        self.stats[channel].attempts += 1
        self._seq += 1
        poll = Frame(
            FrameType.DATA,
            Technology.BLE,
            self.master.name,
            self.slave.name,
            payload_bytes=self.payload_bytes,
            mpdu_bytes=self.payload_bytes + 10,
            seq=self._seq,
        )
        if self.master.is_transmitting:
            return  # previous event overran; count as failure at close
        self.master.transmit_frame(poll, self.tx_power_dbm)
        # Close the books shortly before the next event.
        self.ctx.sim.schedule(self.connection_interval * 0.9, self._close_event, channel)

    def _close_event(self, channel: int) -> None:
        if self._poll_answered:
            self.event_successes += 1
        else:
            self.event_failures += 1
            self.stats[channel].failures += 1

    def _on_frame(self, role: str, frame: Frame, info: RxInfo) -> None:
        if role == "slave" and frame.destination == self.slave.name:
            response = Frame(
                FrameType.DATA,
                Technology.BLE,
                self.slave.name,
                self.master.name,
                payload_bytes=0,
                mpdu_bytes=10,
                seq=frame.seq,
            )
            self.ctx.sim.schedule(T_IFS_S, self._slave_respond, response)
        elif role == "master" and frame.destination == self.master.name:
            if frame.seq == self._seq:
                self._poll_answered = True

    def _slave_respond(self, response: Frame) -> None:
        if not self.slave.is_transmitting:
            self.slave.transmit_frame(response, self.tx_power_dbm)

    def _on_loss(self, role: str, frame: Frame, info: RxInfo) -> None:
        pass  # the event-level bookkeeping in _close_event covers losses

    # ------------------------------------------------------------------
    # Adaptive frequency hopping
    # ------------------------------------------------------------------
    def _run_afh(self):
        while True:
            self._reclassify()
            yield self.afh_check_interval

    def _reclassify(self) -> None:
        now = self.ctx.sim.now
        # Probation: re-admit channels whose exclusion expired (the
        # interferer may be gone; they will be re-excluded if not).
        for channel, until in list(self.excluded_until.items()):
            if now >= until:
                del self.excluded_until[channel]
                self.stats[channel] = ChannelStats()
        bad = set()
        for channel, stats in self.stats.items():
            if channel in self.excluded_until:
                bad.add(channel)
                continue
            if (
                stats.attempts >= self.afh_min_samples
                and stats.failure_rate >= self.afh_failure_threshold
            ):
                bad.add(channel)
                if channel not in self.excluded_until:
                    self.excluded_until[channel] = now + self.afh_probation
                    self.exclusions += 1
                    self.ctx.trace.record(
                        now, "ble.afh_exclude", connection=self.name,
                        channel=channel, failure_rate=stats.failure_rate,
                    )
        good = [ch for ch in DATA_CHANNELS if ch not in bad]
        if len(good) >= MIN_USED_CHANNELS:
            self.used_channels = good

    # ------------------------------------------------------------------
    @property
    def event_success_rate(self) -> float:
        closed = self.event_successes + self.event_failures
        return self.event_successes / closed if closed else 0.0

    def excluded_channels(self) -> List[int]:
        return sorted(self.excluded_until)

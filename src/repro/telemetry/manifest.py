"""Run manifests: one provenance record per executed run.

A :class:`RunManifest` captures everything needed to say *what produced
these numbers*: experiment name, digest of the fully-resolved config, the
seed(s), calibration digest, code version, a fault-plan summary, and the
headline metrics — plus the only wall-clock fields telemetry is allowed to
carry (``started_at`` / ``wall_time_s``).  Manifests are provenance, not
cache input: they are written to the metrics export but never hashed into
sweep ``trial_key``s, so re-running a cached sweep reproduces identical
metric values even though the manifest's timing fields differ.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence, Tuple

from ..serialization import stable_hash, to_dict


@dataclass
class RunManifest:
    """Provenance of one experiment run (or one whole sweep)."""

    experiment: str
    config_digest: str
    seeds: Tuple[int, ...]
    calibration_digest: str
    code_version: str
    #: Non-zero fault-plan rates, or None when the run was fault-free.
    faults: Optional[Dict[str, float]]
    #: ISO-8601 local start time — wall clock, manifest-only by design.
    started_at: str
    wall_time_s: float
    #: The headline numbers of the run (result summary / aggregate).
    metrics: Dict[str, float] = field(default_factory=dict)
    extra: Dict[str, Any] = field(default_factory=dict)
    #: Library scenario identity, when the run compiled one ("" otherwise):
    #: the canonical name plus the content address of the resolved spec.
    scenario: str = ""
    scenario_fingerprint: str = ""
    #: Scheduler backend the trials actually ran on ("heap"/"calendar").
    #: Provenance only — backends are proven bitwise-identical, so this never
    #: enters a cache key, but it pins what workers executed even when a
    #: parent changed its in-process default.
    backend: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return to_dict(self)


def _fault_summary(plan: Any) -> Optional[Dict[str, float]]:
    """Non-zero numeric fields of a FaultPlan-like dataclass, or None."""
    if plan is None or not dataclasses.is_dataclass(plan):
        return None
    rates = {
        f.name: float(getattr(plan, f.name))
        for f in dataclasses.fields(plan)
        if isinstance(getattr(plan, f.name), (int, float)) and getattr(plan, f.name)
    }
    return rates or None


def build_manifest(
    experiment: str,
    config: Any = None,
    seeds: Sequence[int] = (),
    calibration: Any = None,
    faults: Any = None,
    wall_time_s: float = 0.0,
    metrics: Optional[Dict[str, float]] = None,
    extra: Optional[Dict[str, Any]] = None,
    started_at: Optional[float] = None,
    scenario: str = "",
    scenario_fingerprint: str = "",
    backend: Optional[str] = None,
) -> RunManifest:
    """Assemble a manifest from the objects a runner already has in hand.

    ``config`` and ``calibration`` may be dataclasses, plain dicts, or
    ``None``; only their content digests are stored (the config itself is
    reproducible from the CLI/registry, the digest pins *which* one it was).
    """
    # Imported lazily: repro/__init__ -> context -> telemetry would otherwise
    # form a cycle before __version__ is bound.
    from .. import __version__ as code_version

    if backend is None:
        # Default to whatever scheduler this process would hand new
        # Simulators — the same resolution the sweep engine ships to workers.
        from ..sim.engine import DEFAULT_BACKEND as backend  # noqa: N811

    stamp = time.time() if started_at is None else started_at
    return RunManifest(
        experiment=experiment,
        config_digest=stable_hash(to_dict(config)) if config is not None else "",
        seeds=tuple(int(s) for s in seeds),
        calibration_digest=(
            stable_hash(to_dict(calibration)) if calibration is not None else ""
        ),
        code_version=code_version,
        faults=_fault_summary(faults),
        started_at=time.strftime("%Y-%m-%dT%H:%M:%S", time.localtime(stamp)),
        wall_time_s=float(wall_time_s),
        metrics=dict(metrics or {}),
        extra=dict(extra or {}),
        scenario=scenario,
        scenario_fingerprint=scenario_fingerprint,
        backend=str(backend),
    )

"""Telemetry: metrics, span profiling, and run manifests.

The subsystem has three pieces:

* a **metrics registry** (:class:`MetricsRegistry`) of counters, gauges,
  and fixed-bucket histograms, plus wall-clock **span** timers;
* a **run manifest** (:class:`RunManifest`) capturing per-run provenance
  (config digest, seed, code version, fault summary, wall time, headline
  metrics);
* an **exporter** (:func:`export`) writing both as JSONL or CSV.

Collection is opt-in and scoped::

    from repro import telemetry

    registry = telemetry.MetricsRegistry()
    with telemetry.collect(registry):
        result = run_experiment("coexistence", seed=0)
    registry.snapshot()["counters"]["sim.events_executed"]

Inside the ``collect`` scope, :func:`repro.context.build_context` captures
the active registry into ``SimContext.telemetry``, and every instrumented
component (simulator, coordinator, detector, fault harness, runners) feeds
it.  Outside the scope the active registry is :data:`NULL` — a shared
:class:`NullRegistry` whose instruments are do-nothing singletons, so a
run without telemetry executes the exact pre-telemetry code path and is
bitwise-identical to one.

Determinism contract: counter/gauge/histogram values are pure functions of
the simulation (safe to cache and compare across runs); wall-clock time
only ever appears in the ``spans`` snapshot section and in the manifest.
"""

from contextlib import contextmanager
from typing import Iterator, Optional

from .export import export, jsonl_line
from .manifest import RunManifest, build_manifest
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    merge_snapshots,
)

#: The shared disabled registry (all instruments are no-ops).
NULL = NullRegistry()

_ACTIVE: MetricsRegistry = NULL


def active() -> MetricsRegistry:
    """The registry new simulation contexts will report to (NULL when off)."""
    return _ACTIVE


@contextmanager
def collect(registry: Optional[MetricsRegistry] = None) -> Iterator[MetricsRegistry]:
    """Scope within which telemetry is collected into ``registry``.

    Creates a fresh :class:`MetricsRegistry` when none is given; restores
    the previous active registry on exit (scopes nest).
    """
    global _ACTIVE
    if registry is None:
        registry = MetricsRegistry()
    previous = _ACTIVE
    _ACTIVE = registry
    try:
        yield registry
    finally:
        _ACTIVE = previous


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL",
    "RunManifest",
    "active",
    "build_manifest",
    "collect",
    "export",
    "jsonl_line",
    "merge_snapshots",
]

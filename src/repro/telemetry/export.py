"""Telemetry export: registry + manifest -> JSONL or CSV on disk.

JSONL (the default) writes one self-describing object per line — a
``manifest`` line first, then one line per counter/gauge/histogram/span —
so the file streams into ``jq``/pandas without a schema.  A path ending in
``.csv`` instead writes flat ``kind,name,field,value`` rows (histograms
and spans explode into one row per field).
"""

from __future__ import annotations

import csv
import json
import os
from typing import Any, Dict, Optional, Union

from .manifest import RunManifest
from .metrics import MetricsRegistry


def export(
    path: Union[str, os.PathLike],
    registry: Optional[MetricsRegistry] = None,
    manifest: Optional[RunManifest] = None,
    snapshot: Optional[Dict[str, Any]] = None,
) -> int:
    """Write telemetry to ``path``; returns the number of metric lines.

    Pass either a live ``registry`` or a pre-merged ``snapshot`` (a sweep's
    aggregate); ``manifest`` is optional but recommended.  Format is chosen
    by extension: ``.csv`` -> CSV, anything else -> JSONL.
    """
    if registry is not None and snapshot is None:
        snapshot = registry.snapshot(spans=True)
    snapshot = snapshot or {}
    path = os.fspath(path)
    if path.endswith(".csv"):
        return _export_csv(path, manifest, snapshot)
    return _export_jsonl(path, manifest, snapshot)


def jsonl_line(payload: Dict[str, Any]) -> str:
    """One canonical ND-JSON line: compact, key-sorted, newline-terminated.

    The single serialization used everywhere telemetry is streamed rather
    than written to disk (the job server's ``watch`` frames use it), so a
    consumer can byte-compare lines from either source.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"


def _iter_lines(snapshot: Dict[str, Any]):
    for name, value in snapshot.get("counters", {}).items():
        yield "counter", name, {"value": value}
    for name, value in snapshot.get("gauges", {}).items():
        yield "gauge", name, {"value": value}
    for name, data in snapshot.get("histograms", {}).items():
        yield "histogram", name, dict(data)
    for name, data in snapshot.get("spans", {}).items():
        yield "span", name, dict(data)


def _export_jsonl(path: str, manifest: Optional[RunManifest], snapshot: Dict[str, Any]) -> int:
    lines = 0
    with open(path, "w", encoding="utf-8") as handle:
        if manifest is not None:
            handle.write(json.dumps(
                {"type": "manifest", **manifest.to_dict()}, sort_keys=True
            ) + "\n")
        for kind, name, payload in _iter_lines(snapshot):
            handle.write(json.dumps(
                {"type": kind, "name": name, **payload}, sort_keys=True
            ) + "\n")
            lines += 1
    return lines


def _export_csv(path: str, manifest: Optional[RunManifest], snapshot: Dict[str, Any]) -> int:
    lines = 0
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["kind", "name", "field", "value"])
        if manifest is not None:
            for key, value in sorted(manifest.to_dict().items()):
                if isinstance(value, (dict, list)):
                    value = json.dumps(value, sort_keys=True)
                writer.writerow(["manifest", key, "", value])
        for kind, name, payload in _iter_lines(snapshot):
            for key, value in sorted(payload.items()):
                if isinstance(value, list):
                    value = json.dumps(value)
                writer.writerow([kind, name, key, value])
                lines += 1
    return lines
